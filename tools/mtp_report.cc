/**
 * @file
 * mtp-report: offline analysis of mtp-sim run artifacts (the StatSet
 * JSON written by --stats --json, optionally the JSONL written by
 * --events).
 *
 *   mtp-report show <stats.json> [more.json ...]
 *       per-run stall-breakdown table (DESIGN.md §9 taxonomy)
 *   mtp-report compare <baseline.json> <run.json> [more.json ...]
 *       speedup vs. the baseline, prefetch benefit attributed to
 *       removed memory-stall cycles, and the measured effect checked
 *       against the MTAML prediction (paper Sec. IV)
 *   mtp-report diff <A.json> <B.json> [--gate <pct>]
 *       regression gate: exit 1 when B's cycles exceed A's by more
 *       than <pct> percent (default 0)
 *   mtp-report campaign show <BENCH_campaign.json>
 *       provenance + per-figure summary of a campaign manifest
 *   mtp-report campaign diff <golden.json> <current.json> [--gate]
 *       [--tol-rel <pct>] [--tol-abs <v>] [--tol <pattern>=<pct>]...
 *       figure-drift check against a golden snapshot under the
 *       per-metric tolerance schema (DESIGN.md §11); --gate makes
 *       drift exit 1
 *   mtp-report host <host.jsonl>
 *       host-profiler report (DESIGN.md §12): per-worker busy/wait/
 *       idle fractions of the profiling window plus a self-time phase
 *       table, from the JSONL written by --host-profile
 *   --jsonl <events.jsonl>   attach a sampled time-series summary
 *
 * Exit status: 0 on success, 1 on a detected regression (diff mode)
 * or gated figure drift (campaign diff --gate), other nonzero on
 * usage or input errors.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/campaign_diff.hh"
#include "mtprefetch/mtprefetch.hh"
#include "sim/cycle_accounting.hh"

namespace {

using namespace mtp;

/** One loaded stats file. */
struct Run
{
    std::string path;
    std::string label; //!< basename without extension
    std::map<std::string, double> stats;

    double
    get(const std::string &name) const
    {
        auto it = stats.find(name);
        if (it == stats.end())
            MTP_FATAL("'", path, "' has no statistic '", name,
                      "' — was it written by mtp-sim --stats --json?");
        return it->second;
    }

    double
    getOr(const std::string &name, double fallback) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? fallback : it->second;
    }

    /** Sum of every "core<i><suffix>" entry (all cores). */
    double
    coreSum(const std::string &suffix) const
    {
        double total = 0.0;
        for (unsigned c = 0;; ++c) {
            auto it = stats.find("core" + std::to_string(c) + suffix);
            if (it == stats.end())
                return total;
            total += it->second;
        }
    }

    /** Total core-cycles: elapsed cycles times the core count. */
    double
    coreCycles() const
    {
        return get("sim.cycles") * get("sim.numCores");
    }

    /** Memory-side stall cycles: stall-mem + MSHR-full + icnt. */
    double
    memStallCycles() const
    {
        return get("sim.cycles.stallMem") +
               get("sim.cycles.stallMshrFull") +
               get("sim.cycles.stallIcnt");
    }
};

std::string
basenameNoExt(const std::string &path)
{
    auto slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    auto dot = base.find_last_of('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

Run
loadStats(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        MTP_FATAL("cannot read '", path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    obs::JsonValue doc;
    std::string error;
    if (!obs::parseJson(ss.str(), doc, &error))
        MTP_FATAL("'", path, "': invalid JSON: ", error);
    if (!doc.isObject())
        MTP_FATAL("'", path, "': expected a top-level JSON object");
    Run run;
    run.path = path;
    run.label = basenameNoExt(path);
    for (const auto &[name, entry] : doc.object) {
        const obs::JsonValue *value =
            entry.isObject() ? entry.find("value") : &entry;
        if (value && value->isNumber())
            run.stats.emplace(name, value->number);
    }
    if (run.stats.empty())
        MTP_FATAL("'", path, "': no numeric statistics found");
    return run;
}

/** Stall-breakdown table: one category per row, one run per column. */
void
printBreakdown(const std::vector<Run> &runs)
{
    std::printf("%-18s", "category");
    for (const auto &run : runs)
        std::printf("  %20s", run.label.c_str());
    std::printf("\n");
    for (unsigned k = 0; k < numCycleCats; ++k) {
        auto cat = static_cast<CycleCat>(k);
        std::printf("%-18s", cycleCatName(cat));
        for (const auto &run : runs) {
            double v =
                run.get(std::string("sim.cycles.") + cycleCatName(cat));
            double frac = run.coreCycles() > 0
                              ? 100.0 * v / run.coreCycles()
                              : 0.0;
            std::printf("  %13.0f %5.1f%%", v, frac);
        }
        std::printf("\n");
    }
    std::printf("%-18s", "total core-cycles");
    for (const auto &run : runs)
        std::printf("  %13.0f       ", run.coreCycles());
    std::printf("\n%-18s", "cycles");
    for (const auto &run : runs)
        std::printf("  %13.0f       ", run.get("sim.cycles"));
    std::printf("\n");
}

/**
 * Host-scheduler section of `show`: how the run was simulated
 * (sim.sched.*, emitted by mtp-sim --stats). Older stats files predate
 * these counters, so the section prints only when at least one run
 * carries them and every read tolerates absence.
 */
void
printScheduler(const std::vector<Run> &runs)
{
    bool any = false;
    for (const auto &run : runs)
        any = any || run.stats.count("sim.sched.cyclesStepped") > 0;
    if (!any)
        return;
    std::printf("\n%-18s", "scheduler");
    for (const auto &run : runs)
        std::printf("  %20s", run.label.c_str());
    std::printf("\n");
    auto row = [&](const char *label, auto fn) {
        std::printf("%-18s", label);
        for (const auto &run : runs)
            std::printf("  %20s", fn(run).c_str());
        std::printf("\n");
    };
    auto count = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return std::string(buf);
    };
    auto pct = [](double num, double den) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f%%",
                      den > 0 ? 100.0 * num / den : 0.0);
        return std::string(buf);
    };
    row("cycles stepped", [&](const Run &r) {
        return count(r.getOr("sim.sched.cyclesStepped", 0.0));
    });
    row("cycles skipped", [&](const Run &r) {
        double stepped = r.getOr("sim.sched.cyclesStepped", 0.0);
        double skipped = r.getOr("sim.sched.cyclesSkipped", 0.0);
        return count(skipped) + " (" + pct(skipped, stepped + skipped) +
               ")";
    });
    row("skip success", [&](const Run &r) {
        return pct(r.getOr("sim.sched.skipSuccesses", 0.0),
                   r.getOr("sim.sched.skipAttempts", 0.0));
    });
    row("core ticks elided", [&](const Run &r) {
        double ticks = r.getOr("sim.sched.coreTicks", 0.0);
        double elided = r.getOr("sim.sched.coreTicksElided", 0.0);
        return count(elided) + " (" + pct(elided, ticks + elided) + ")";
    });
    row("queue pushes/pops", [&](const Run &r) {
        return count(r.getOr("sim.sched.queuePushes", 0.0)) + "/" +
               count(r.getOr("sim.sched.queuePops", 0.0));
    });
    row("horizon hit rate", [&](const Run &r) {
        double hits = r.getOr("sim.sched.horizonHits", 0.0);
        return pct(hits, hits + r.getOr("sim.sched.horizonMisses", 0.0));
    });
    // Epoch-sharded runs (shards > 1) carry barrier counters; serial
    // runs and older stats files don't, so the rows print only when at
    // least one run was sharded.
    bool sharded = false;
    for (const auto &run : runs)
        sharded = sharded || run.getOr("sim.sched.shards", 1.0) > 1.0;
    if (!sharded)
        return;
    row("shards", [&](const Run &r) {
        return count(r.getOr("sim.sched.shards", 1.0));
    });
    row("barrier epochs", [&](const Run &r) {
        return count(r.getOr("sim.sched.barrierEpochs", 0.0));
    });
    row("epoch cycles", [&](const Run &r) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.1f mean / %.0f max",
                      r.getOr("sim.sched.barrierEpochCyclesMean", 0.0),
                      r.getOr("sim.sched.barrierEpochCyclesMax", 0.0));
        return std::string(buf);
    });
    row("barrier wait", [&](const Run &r) {
        // Coordinator vs. the worst worker, in milliseconds blocked.
        double coord =
            r.getOr("sim.sched.barrierWaitNs.coordinator", 0.0);
        double worst = 0.0;
        for (unsigned s = 1;; ++s) {
            std::string key =
                "sim.sched.barrierWaitNs.shard" + std::to_string(s);
            if (!r.stats.count(key))
                break;
            worst = std::max(worst, r.getOr(key, 0.0));
        }
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.1f/%.1f ms", coord / 1e6,
                      worst / 1e6);
        return std::string(buf);
    });
}

/** Demand-latency mean over all cores (histogram-count weighted). */
double
avgDemandLatency(const Run &run)
{
    double count = run.coreSum(".demandLatency.count");
    if (count <= 0)
        return 0.0;
    double sum = 0.0;
    for (unsigned c = 0;; ++c) {
        std::string p = "core" + std::to_string(c);
        auto it = run.stats.find(p + ".demandLatency.count");
        if (it == run.stats.end())
            break;
        sum += it->second * run.getOr(p + ".demandLatency.mean", 0.0);
    }
    return sum / count;
}

/** Measured effect, in MTAML's vocabulary. */
const char *
measuredEffect(double speedup)
{
    if (speedup > 1.02)
        return "useful";
    if (speedup < 0.98)
        return "harmful";
    return "no effect";
}

void
printCompare(const Run &base, const std::vector<Run> &runs)
{
    double base_cycles = base.get("sim.cycles");
    double base_core_cycles = base.coreCycles();
    double base_mem_stall = base.memStallCycles();
    double base_lat = avgDemandLatency(base);

    // MTAML inputs come from the baseline's instruction mix: branches
    // count as computation (they occupy the pipeline, not memory).
    MtamlInputs in;
    in.compInsts =
        base.coreSum(".compInsts") + base.coreSum(".branchInsts");
    in.memInsts = base.coreSum(".memInsts");
    in.activeWarps = base.get("sim.avgActiveWarps");

    std::printf("baseline %s: %.0f cycles, %.1f%% mem-stall, "
                "avg demand latency %.1f\n",
                base.label.c_str(), base_cycles,
                base_core_cycles > 0
                    ? 100.0 * base_mem_stall / base_core_cycles
                    : 0.0,
                base_lat);
    std::printf("MTAML (no prefetch) = %.1f cycles tolerable\n\n",
                mtaml(in));
    std::printf("%-20s %8s %10s %10s %12s %12s\n", "run", "speedup",
                "memstall%", "benefit%", "measured", "MTAML");
    for (const auto &run : runs) {
        double cycles = run.get("sim.cycles");
        double speedup = cycles > 0 ? base_cycles / cycles : 0.0;
        double mem_stall = run.memStallCycles();
        double mem_frac = run.coreCycles() > 0
                              ? 100.0 * mem_stall / run.coreCycles()
                              : 0.0;
        // Prefetch benefit attributed to removed memory-stall cycles,
        // as a fraction of the baseline's total core-cycles.
        double benefit =
            base_core_cycles > 0
                ? 100.0 * (base_mem_stall - mem_stall) / base_core_cycles
                : 0.0;
        double hits = run.coreSum(".prefCacheHitTxns");
        double demands = run.coreSum(".demandTxns");
        MtamlInputs pin = in;
        pin.prefHitProb =
            hits + demands > 0 ? hits / (hits + demands) : 0.0;
        PrefEffect predicted =
            classify(pin, base_lat, avgDemandLatency(run));
        std::printf("%-20s %7.3fx %9.1f%% %9.1f%% %12s %12s\n",
                    run.label.c_str(), speedup, mem_frac, benefit,
                    measuredEffect(speedup),
                    toString(predicted).c_str());
    }
}

int
printDiff(const Run &a, const Run &b, double gatePct)
{
    double ca = a.get("sim.cycles");
    double cb = b.get("sim.cycles");
    double delta = ca > 0 ? 100.0 * (cb - ca) / ca : 0.0;
    std::printf("cycles: %s %.0f -> %s %.0f (%+.3f%%)\n",
                a.label.c_str(), ca, b.label.c_str(), cb, delta);

    // Largest per-category movements, for context.
    for (unsigned k = 0; k < numCycleCats; ++k) {
        std::string name =
            std::string("sim.cycles.") +
            cycleCatName(static_cast<CycleCat>(k));
        double va = a.getOr(name, 0.0);
        double vb = b.getOr(name, 0.0);
        if (va != vb)
            std::printf("  %-28s %13.0f -> %13.0f\n", name.c_str(), va,
                        vb);
    }
    std::size_t only_a = 0;
    std::size_t only_b = 0;
    for (const auto &[name, v] : a.stats)
        only_a += b.stats.find(name) == b.stats.end() ? 1 : 0;
    for (const auto &[name, v] : b.stats)
        only_b += a.stats.find(name) == a.stats.end() ? 1 : 0;
    if (only_a || only_b)
        std::printf("  (schema drift: %zu stats only in A, %zu only "
                    "in B)\n",
                    only_a, only_b);

    // The plain diff gates exactly one metric — sim.cycles — so a
    // regression names it with both the absolute and relative excess.
    if (delta > gatePct) {
        std::printf("REGRESSION: sim.cycles %.0f -> %.0f "
                    "(+%.0f absolute, +%.3f%% relative) exceeds the "
                    "%.3f%% gate by %.3f points\n",
                    ca, cb, cb - ca, delta, gatePct, delta - gatePct);
        return 1;
    }
    std::printf("OK: sim.cycles within the %.3f%% gate (%+.3f%%)\n",
                gatePct, delta);
    return 0;
}

/** `campaign show`: provenance + per-figure summary of a manifest. */
void
campaignShow(const std::string &path)
{
    obs::JsonValue doc;
    std::string error;
    if (!bench::loadManifest(path, doc, &error))
        MTP_FATAL(error);

    if (const obs::JsonValue *p = doc.find("provenance")) {
        auto field = [&](const char *key) -> std::string {
            const obs::JsonValue *v = p->find(key);
            if (!v)
                return "?";
            if (v->isString())
                return v->str;
            if (v->isNumber()) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.0f", v->number);
                return buf;
            }
            return "?";
        };
        std::printf("campaign %s\n", path.c_str());
        std::printf("  git %s on %s, scale 1/%s, throttle period %s\n",
                    field("gitSha").c_str(), field("host").c_str(),
                    field("scaleDiv").c_str(),
                    field("throttlePeriod").c_str());
    }
    if (const obs::JsonValue *s = doc.find("session")) {
        const obs::JsonValue *wall = s->find("wallSeconds");
        const obs::JsonValue *runs = s->find("runsExecuted");
        const obs::JsonValue *hits = s->find("cacheHits");
        const obs::JsonValue *jobs = s->find("jobs");
        std::printf("  session: %.0f runs (%.0f cache hits) in %.1fs "
                    "at --jobs %.0f\n",
                    runs && runs->isNumber() ? runs->number : 0.0,
                    hits && hits->isNumber() ? hits->number : 0.0,
                    wall && wall->isNumber() ? wall->number : 0.0,
                    jobs && jobs->isNumber() ? jobs->number : 0.0);
    }

    const obs::JsonValue *figs = doc.find("figures");
    if (!figs || !figs->isArray())
        MTP_FATAL("'", path, "' has no figures array — was it written "
                  "by mtp-campaign?");
    std::printf("\n%-24s %-18s %6s  %s\n", "figure", "anchor", "runs",
                "summary");
    for (const auto &f : figs->array) {
        const obs::JsonValue *name = f.find("name");
        const obs::JsonValue *anchor = f.find("anchor");
        const obs::JsonValue *runs = f.find("runs");
        const obs::JsonValue *vol = f.find("volatile");
        bool isVol = vol && vol->kind == obs::JsonValue::Kind::Bool &&
                     vol->boolean;
        std::string summary;
        if (isVol) {
            summary = "(volatile: not gated)";
        } else if (const obs::JsonValue *s = f.find("summary")) {
            for (const auto &[metric, value] : s->object) {
                if (!summary.empty())
                    summary += ", ";
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%s=%.4g",
                              metric.c_str(),
                              value.isNumber() ? value.number : 0.0);
                summary += buf;
                if (summary.size() > 120) {
                    summary += ", ...";
                    break;
                }
            }
        }
        std::printf("%-24s %-18s %6.0f  %s\n",
                    name && name->isString() ? name->str.c_str() : "?",
                    anchor && anchor->isString() ? anchor->str.c_str()
                                                 : "?",
                    runs && runs->isNumber() ? runs->number : 0.0,
                    summary.c_str());
    }
}

/**
 * `campaign diff`: compare a manifest against a golden snapshot under
 * the tolerance schema; with gate=true any drift exits 1.
 */
int
campaignDiff(const std::string &goldenPath,
             const std::string &currentPath,
             const bench::Tolerances &tol, bool gate)
{
    obs::JsonValue golden, current;
    std::string error;
    if (!bench::loadManifest(goldenPath, golden, &error))
        MTP_FATAL(error);
    if (!bench::loadManifest(currentPath, current, &error))
        MTP_FATAL(error);

    std::vector<bench::DiffViolation> violations;
    bool ok = bench::diffManifests(golden, current, tol, violations);
    if (ok) {
        std::printf("OK: %s matches %s (tolerance %.3f%% rel / "
                    "%.3g abs, %zu per-metric rules)\n",
                    currentPath.c_str(), goldenPath.c_str(), tol.relPct,
                    tol.abs, tol.rules.size());
        return 0;
    }
    std::printf("DRIFT: %zu metric%s differ%s from the golden "
                "snapshot:\n",
                violations.size(), violations.size() == 1 ? "" : "s",
                violations.size() == 1 ? "s" : "");
    for (const auto &v : violations)
        std::printf("  %s\n", v.describe().c_str());
    return gate ? 1 : 0;
}

/** Summarize a JSONL events file: counts + mean sampled stall mix. */
void
summarizeJsonl(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        MTP_FATAL("cannot read '", path, "'");
    std::string line;
    std::uint64_t samples = 0;
    std::uint64_t events = 0;
    Cycle last_cycle = 0;
    std::map<std::string, double> sums; //!< per sampled column
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        obs::JsonValue doc;
        std::string error;
        if (!obs::parseJson(line, doc, &error))
            MTP_FATAL("'", path, "': invalid JSONL line: ", error);
        const obs::JsonValue *t = doc.find("t");
        if (!t || !t->isString())
            continue;
        if (t->str == "sample") {
            ++samples;
            if (const obs::JsonValue *cyc = doc.find("cycle"))
                last_cycle = static_cast<Cycle>(cyc->number);
            if (const obs::JsonValue *v = doc.find("v")) {
                for (const auto &[name, val] : v->object) {
                    if (val.isNumber())
                        sums[name] += val.number;
                }
            }
        } else if (t->str != "schema") {
            ++events;
        }
    }
    std::printf("\n%s: %llu samples (through cycle %llu), %llu events\n",
                path.c_str(), static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(last_cycle),
                static_cast<unsigned long long>(events));
    if (samples == 0)
        return;
    // Mean per-period stall mix across all cores: average the
    // "core<i>.cycles.<cat>" rate columns (fractions of each period).
    std::printf("mean sampled cycle mix (all cores):");
    bool any = false;
    for (unsigned k = 0; k < numCycleCats; ++k) {
        std::string suffix =
            std::string(".cycles.") +
            cycleCatName(static_cast<CycleCat>(k));
        double total = 0.0;
        std::uint64_t cols = 0;
        for (const auto &[name, sum] : sums) {
            if (name.size() > suffix.size() &&
                name.compare(name.size() - suffix.size(), suffix.size(),
                             suffix) == 0) {
                total += sum;
                ++cols;
            }
        }
        if (cols > 0) {
            any = true;
            std::printf(" %s=%.1f%%",
                        cycleCatName(static_cast<CycleCat>(k)),
                        100.0 * total /
                            (static_cast<double>(cols) * samples));
        }
    }
    std::printf(any ? "\n" : " (no cycle-accounting columns sampled)\n");
}

/**
 * `host`: render a host-profile JSONL artifact (mtp-sim/mtp-campaign
 * --host-profile, DESIGN.md §12) as per-worker utilization and a
 * phase table. Per thread over the profiling window W:
 * busy = active - wait, wait = wait, idle = W - active — the three
 * fractions sum to 100% (up to scopes still open at snapshot time).
 */
void
reportHost(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        MTP_FATAL("cannot read '", path, "'");

    struct HostThread
    {
        std::string name;
        double activeNs = 0.0;
        double waitNs = 0.0;
        std::vector<std::pair<std::string, double>> phases; //!< self ns
    };
    double wallNs = 0.0;
    std::vector<HostThread> threads;
    std::vector<std::pair<std::string, double>> counters;

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        obs::JsonValue doc;
        std::string error;
        if (!obs::parseJson(line, doc, &error))
            MTP_FATAL("'", path, "': invalid JSONL line: ", error);
        const obs::JsonValue *type = doc.find("type");
        if (!type || !type->isString())
            continue;
        if (type->str == "host.meta") {
            if (const obs::JsonValue *w = doc.find("wallNs"))
                wallNs = w->number;
        } else if (type->str == "host.thread") {
            HostThread t;
            if (const obs::JsonValue *n = doc.find("name"))
                t.name = n->isString() ? n->str : "?";
            if (const obs::JsonValue *a = doc.find("activeNs"))
                t.activeNs = a->number;
            if (const obs::JsonValue *w = doc.find("waitNs"))
                t.waitNs = w->number;
            if (const obs::JsonValue *p = doc.find("phases")) {
                for (const auto &[phase, v] : p->object) {
                    const obs::JsonValue *ns = v.find("ns");
                    if (ns && ns->isNumber())
                        t.phases.emplace_back(phase, ns->number);
                }
            }
            threads.push_back(std::move(t));
        } else if (type->str == "host.counter") {
            const obs::JsonValue *n = doc.find("name");
            const obs::JsonValue *v = doc.find("value");
            if (n && n->isString() && v && v->isNumber())
                counters.emplace_back(n->str, v->number);
        }
    }
    if (wallNs <= 0.0 || threads.empty())
        MTP_FATAL("'", path, "' has no host.meta/host.thread records — "
                  "was it written by --host-profile?");

    std::printf("host profile %s: %.3f s wall, %zu threads\n\n",
                path.c_str(), wallNs / 1e9, threads.size());
    std::printf("%-10s %6s %6s %6s %9s  %s\n", "thread", "busy%",
                "wait%", "idle%", "busy s", "top phases (self time)");
    for (const auto &t : threads) {
        double busy = t.activeNs > t.waitNs ? t.activeNs - t.waitNs : 0.0;
        double idle = wallNs > t.activeNs ? wallNs - t.activeNs : 0.0;
        auto pct = [&](double ns) { return 100.0 * ns / wallNs; };
        // Top three phases by self time, wait-class included (they
        // show up in wait%, not busy%, but are still "where the time
        // went" for this thread).
        std::vector<std::pair<std::string, double>> top = t.phases;
        std::sort(top.begin(), top.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        std::string detail;
        for (std::size_t i = 0; i < top.size() && i < 3; ++i) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%s%s %.1f%%",
                          i ? ", " : "", top[i].first.c_str(),
                          t.activeNs > 0
                              ? 100.0 * top[i].second / t.activeNs
                              : 0.0);
            detail += buf;
        }
        std::printf("%-10s %5.1f%% %5.1f%% %5.1f%% %9.3f  %s\n",
                    t.name.c_str(), pct(busy), pct(t.waitNs), pct(idle),
                    busy / 1e9, detail.c_str());
    }

    // Aggregate phase table: self time summed over threads. The busy
    // total equals sum(active - wait) by the §12 accounting identity.
    std::map<std::string, double> phaseTotals;
    double activeTotal = 0.0;
    for (const auto &t : threads) {
        activeTotal += t.activeNs;
        for (const auto &[phase, ns] : t.phases)
            phaseTotals[phase] += ns;
    }
    std::vector<std::pair<std::string, double>> rows(phaseTotals.begin(),
                                                     phaseTotals.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    std::printf("\n%-16s %12s %7s\n", "phase (all thr)", "self ms",
                "active%");
    for (const auto &[phase, ns] : rows)
        std::printf("%-16s %12.3f %6.1f%%\n", phase.c_str(), ns / 1e6,
                    activeTotal > 0 ? 100.0 * ns / activeTotal : 0.0);

    if (!counters.empty()) {
        std::printf("\n%-24s %s\n", "counter", "value");
        for (const auto &[name, value] : counters)
            std::printf("%-24s %.6g\n", name.c_str(), value);
    }
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <mode> [args]\n"
        "  show <stats.json>...                stall-breakdown table\n"
        "  compare <baseline.json> <run.json>... speedup + MTAML check\n"
        "  diff <A.json> <B.json> [--gate pct] regression gate (exit 1)\n"
        "  campaign show <BENCH_campaign.json> manifest summary\n"
        "  campaign diff <golden> <current> [--gate] [--tol-rel pct]\n"
        "      [--tol-abs v] [--tol pattern=pct]... figure-drift check\n"
        "  host <host.jsonl>                   host-profiler report\n"
        "      (per-worker busy/wait/idle, phase table; written by\n"
        "       mtp-sim/mtp-campaign --host-profile, DESIGN.md §12)\n"
        "  any mode: --jsonl <events.jsonl>    time-series summary\n"
        "Inputs are mtp-sim artifacts (--stats <f> --json, --events "
        "<f>)\nor mtp-campaign manifests.\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    std::string mode = argv[1];
    if (mode == "--help" || mode == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (mode == "campaign") {
        // Campaign subcommands parse their own flags: --gate here is
        // boolean, unlike the plain diff's --gate <pct>.
        std::string sub = argc > 2 ? argv[2] : "";
        std::vector<std::string> files;
        bench::Tolerances tol;
        bool gate = false;
        for (int i = 3; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&](const char *what) -> std::string {
                if (i + 1 >= argc)
                    MTP_FATAL(what, " needs an argument");
                return argv[++i];
            };
            if (arg == "--gate") {
                gate = true;
            } else if (arg == "--tol-rel") {
                tol.relPct = std::stod(next("--tol-rel"));
            } else if (arg == "--tol-abs") {
                tol.abs = std::stod(next("--tol-abs"));
            } else if (arg == "--tol") {
                std::string rule = next("--tol");
                auto eq = rule.find_last_of('=');
                if (eq == std::string::npos || eq == 0)
                    MTP_FATAL("--tol expects <pattern>=<pct>, got '",
                              rule, "'");
                tol.rules.push_back(
                    {rule.substr(0, eq),
                     std::stod(rule.substr(eq + 1))});
            } else if (arg == "--help" || arg == "-h") {
                usage(argv[0]);
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                std::fprintf(stderr, "unknown option '%s'\n",
                             arg.c_str());
                usage(argv[0]);
                return 2;
            } else {
                files.push_back(arg);
            }
        }
        if (sub == "show" && files.size() == 1) {
            campaignShow(files[0]);
            return 0;
        }
        if (sub == "diff" && files.size() == 2)
            return campaignDiff(files[0], files[1], tol, gate);
        usage(argv[0]);
        return 2;
    }
    std::vector<std::string> files;
    std::string jsonl;
    double gate = 0.0;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                MTP_FATAL(what, " needs an argument");
            return argv[++i];
        };
        if (arg == "--gate") {
            gate = std::stod(next("--gate"));
        } else if (arg == "--jsonl") {
            jsonl = next("--jsonl");
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    int status = 0;
    if (mode == "show") {
        if (files.empty()) {
            usage(argv[0]);
            return 2;
        }
        std::vector<Run> runs;
        for (const auto &f : files)
            runs.push_back(loadStats(f));
        printBreakdown(runs);
        printScheduler(runs);
    } else if (mode == "compare") {
        if (files.size() < 2) {
            usage(argv[0]);
            return 2;
        }
        Run base = loadStats(files.front());
        std::vector<Run> runs;
        for (std::size_t i = 1; i < files.size(); ++i)
            runs.push_back(loadStats(files[i]));
        printCompare(base, runs);
    } else if (mode == "diff") {
        if (files.size() != 2) {
            usage(argv[0]);
            return 2;
        }
        status = printDiff(loadStats(files[0]), loadStats(files[1]),
                           gate);
    } else if (mode == "host") {
        if (files.size() != 1) {
            usage(argv[0]);
            return 2;
        }
        reportHost(files[0]);
    } else {
        std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
        usage(argv[0]);
        return 2;
    }
    if (!jsonl.empty())
        summarizeJsonl(jsonl);
    return status;
}
