/**
 * @file
 * mtp-campaign: reproduce the paper's whole evaluation in one command.
 *
 * Runs every registered figure/table harness (bench/harnesses.hh)
 * through one shared Runner — one work-stealing executor, one
 * RunCache, so a baseline shared by five figures simulates once — and
 * writes the consolidated BENCH_campaign.json manifest: provenance
 * (git sha, host, scale, overrides), per-figure tables and summary
 * metrics, normalized run fingerprints, and a volatile "session"
 * block with wall-clock and cache statistics.
 *
 * While the campaign runs, a live status line on stderr (when stderr
 * is a terminal) streams the §8 sampler forwarding: figure progress,
 * runs completed vs. scheduled, in-flight count, cache-hit total and
 * simulated-cycle throughput. Each completed figure prints its table
 * to stdout unless --quiet.
 *
 * The two self-timing harnesses (bench_simrate, bench_obs_overhead)
 * measure wall-clock performance, which no shared-executor run can do
 * fairly while other simulations compete for cores. They run as serial
 * subprocesses after the deterministic figures, write their usual
 * BENCH_*.json next to --out, and are embedded in the manifest marked
 * "volatile": true — present for the record, ignored by the diff gate.
 *
 * Usage:
 *   mtp-campaign [--out FILE] [--only a,b] [--list] [--smoke]
 *                [--skip-volatile] [--bench-dir DIR] [--no-session]
 *                + the common harness flags (--scale, --bench, --jobs,
 *                  --shards, --quiet, key=value overrides)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/campaign.hh"
#include "bench/campaign_diff.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"

namespace {

using namespace mtp;
using namespace mtp::bench;

std::string
dirnameOf(const std::string &path)
{
    auto slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

/** Render the live status line from one progress snapshot. */
std::string
statusLine(const CampaignProgress::View &v, double totalSeconds)
{
    std::uint64_t figDone = v.executed - v.figStartExecuted;
    std::uint64_t figSched = v.misses - v.figStartMisses;
    std::uint64_t inFlight = v.misses - v.executed;
    double gcycles = static_cast<double>(v.samples) *
                     static_cast<double>(v.samplePeriod) / 1e9;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "[%zu/%zu] %-22s runs %llu/%llu (%llu in flight) | "
                  "%llu cache hits | %.2f Gcyc sampled | %.1fs",
                  v.figIndex + 1, v.figTotal, v.figure.c_str(),
                  static_cast<unsigned long long>(figDone),
                  static_cast<unsigned long long>(figSched),
                  static_cast<unsigned long long>(inFlight),
                  static_cast<unsigned long long>(v.hits), gcycles,
                  totalSeconds);
    return buf;
}

/**
 * Background stderr ticker: redraws the status line a few times a
 * second while the campaign runs. Only used when stderr is a terminal
 * — in CI the per-figure completion lines are the progress record.
 */
class Ticker
{
  public:
    explicit Ticker(const CampaignProgress &progress)
        : progress_(progress), t0_(std::chrono::steady_clock::now()),
          thread_([this] { loop(); })
    {
    }

    ~Ticker()
    {
        stop_.store(true);
        thread_.join();
        std::fprintf(stderr, "\r%*s\r", width_, "");
    }

  private:
    void
    loop()
    {
        while (!stop_.load()) {
            CampaignProgress::View v = progress_.view();
            if (v.active) {
                double total =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
                std::string line = statusLine(v, total);
                if (static_cast<int>(line.size()) > width_)
                    width_ = static_cast<int>(line.size());
                std::fprintf(stderr, "\r%-*s", width_, line.c_str());
                std::fflush(stderr);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
        }
    }

    const CampaignProgress &progress_;
    std::chrono::steady_clock::time_point t0_;
    std::atomic<bool> stop_{false};
    int width_ = 0;
    std::thread thread_;
};

/**
 * Run one self-timing harness as a subprocess and embed its JSON
 * artifact. Returns false (with a warning) when the binary is missing
 * or fails — an absent perf harness must not sink the whole campaign.
 */
bool
runVolatile(const std::string &benchDir, const std::string &binary,
            const std::string &extraFlags, const std::string &title,
            const std::string &anchor, const Options &opts, bool smoke,
            const std::string &artifact, std::vector<RawFigure> &out)
{
    std::string bin = benchDir + "/" + binary;
    if (::access(bin.c_str(), X_OK) != 0) {
        std::fprintf(stderr,
                     "mtp-campaign: skipping %s (no executable at %s; "
                     "use --bench-dir)\n",
                     binary.c_str(), bin.c_str());
        return false;
    }
    std::string cmd = "\"" + bin + "\" --quiet --out \"" + artifact +
                      "\"" + extraFlags;
    if (smoke)
        cmd += " --smoke";
    else
        cmd += " --scale " + std::to_string(opts.scaleDiv);

    auto t0 = std::chrono::steady_clock::now();
    int rc = std::system(cmd.c_str());
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (rc != 0) {
        std::fprintf(stderr, "mtp-campaign: %s failed (%s)\n",
                     binary.c_str(), cmd.c_str());
        return false;
    }

    RawFigure fig;
    fig.name = binary;
    fig.title = title;
    fig.anchor = anchor;
    fig.wallSeconds = wall;
    std::string error;
    if (!loadManifest(artifact, fig.raw, &error)) {
        std::fprintf(stderr, "mtp-campaign: cannot embed %s: %s\n",
                     artifact.c_str(), error.c_str());
        return false;
    }
    out.push_back(std::move(fig));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_campaign.json";
    std::string benchDir;
    std::vector<std::string> only;
    bool list = false;
    bool skipVolatile = false;
    bool noSession = false;
    bool smoke = false;
    bool hostProfile = false;
    std::string hostProfileOut;
    double watchdogSec = 0.0;

    std::vector<FlagSpec> extra = {
        {"--out", true, [&](const std::string &v) { out = v; }},
        {"--only", true,
         [&](const std::string &v) {
             std::stringstream ss(v);
             std::string name;
             while (std::getline(ss, name, ','))
                 only.push_back(name);
         }},
        {"--bench-dir", true,
         [&](const std::string &v) { benchDir = v; }},
        {"--list", false, [&](const std::string &) { list = true; }},
        {"--skip-volatile", false,
         [&](const std::string &) { skipVolatile = true; }},
        {"--no-session", false,
         [&](const std::string &) { noSession = true; }},
        {"--smoke", false, [&](const std::string &) { smoke = true; }},
        {"--host-profile", false,
         [&](const std::string &) { hostProfile = true; }},
        {"--host-profile-out", true,
         [&](const std::string &v) {
             hostProfile = true;
             hostProfileOut = v;
         }},
        {"--watchdog-sec", true,
         [&](const std::string &v) { watchdogSec = std::stod(v); }},
    };
    Options opts = parseArgs(
        argc, argv, extra,
        "[--out FILE] [--only a,b] [--list] [--smoke] "
        "[--skip-volatile] [--bench-dir DIR] [--no-session] "
        "[--host-profile] [--host-profile-out FILE] "
        "[--watchdog-sec N]");

    if (list) {
        for (const auto &spec : campaignSpecs())
            std::printf("%-24s %-18s %s\n", spec.name.c_str(),
                        spec.anchor.c_str(), spec.title.c_str());
        std::printf("%-24s %-18s %s\n", "bench_simrate", "(volatile)",
                    "simulation-rate benchmark, run as a subprocess");
        std::printf("%-24s %-18s %s\n", "bench_obs_overhead",
                    "(volatile)",
                    "observability overhead guard, run as a subprocess");
        return 0;
    }

    if (smoke) {
        // The reduced campaign behind the CI gate and the unit tests:
        // 1/64 geometry and a class-covering benchmark subset keep the
        // full figure set under a minute on one core.
        opts.scaleDiv = 64;
        opts.throttlePeriod = std::max<Cycle>(1000, 40000 / 64);
        if (opts.benchmarks.empty())
            opts.benchmarks = {"scalar", "stream", "backprop", "cfd"};
    }
    if (benchDir.empty())
        benchDir = dirnameOf(argv[0]) + "/../bench";

    // Host observability (DESIGN.md §12): the profiler window opens
    // before the Runner spawns its executor so worker threads name
    // themselves; the watchdog's heartbeat comes from executor tasks
    // and every simulation's sampler boundaries (CampaignProgress).
    if (hostProfile) {
        obs::HostProfiler::enable();
        obs::HostProfiler::nameThread("main");
        if (hostProfileOut.empty())
            hostProfileOut = out + ".host.jsonl";
    }
    if (watchdogSec < 0.0 || watchdogSec != watchdogSec)
        MTP_FATAL("--watchdog-sec must be > 0");
    std::unique_ptr<obs::Watchdog> watchdog;
    if (watchdogSec > 0.0) {
        obs::FlightRecorder::installCrashHandler();
        watchdog = std::make_unique<obs::Watchdog>(watchdogSec,
                                                   hostProfileOut);
    }

    CampaignProgress progress;
    std::unique_ptr<Ticker> ticker;
    if (!opts.quiet && ::isatty(::fileno(stderr)))
        ticker.reset(new Ticker(progress));

    auto t0 = std::chrono::steady_clock::now();
    CampaignResult res = runCampaign(
        opts, only, &progress, [&](const FigureRun &f) {
            std::fprintf(stderr, "mtp-campaign: %-24s done in %.1fs "
                         "(%zu distinct runs)\n",
                         f.spec->name.c_str(), f.wallSeconds,
                         f.fingerprints.size());
            if (!opts.quiet) {
                renderFigure(stdout, *f.spec, f.result);
                std::fflush(stdout);
            }
        });

    // The wall-clock harnesses run serially after the deterministic
    // figures: their timings are only meaningful on an idle machine.
    if (!skipVolatile && only.empty()) {
        std::string dir = dirnameOf(out);
        runVolatile(benchDir, "bench_simrate", "",
                    "Simulation rate: naive loop vs event-driven "
                    "fast-forward + shard scaling",
                    "DESIGN.md §10", opts, smoke,
                    dir + "/BENCH_simrate.json", res.rawFigures);
        std::string noobs = benchDir + "/bench_obs_overhead_noobs";
        std::string flags;
        if (::access(noobs.c_str(), X_OK) == 0)
            flags = " --compare-with \"" + noobs + "\"";
        runVolatile(benchDir, "bench_obs_overhead", flags,
                    "Observability overhead: disabled hooks vs no-obs "
                    "build",
                    "DESIGN.md §8", opts, smoke,
                    dir + "/BENCH_obs_overhead.json", res.rawFigures);
    }
    res.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    ticker.reset(); // clear the status line before the summary

    if (hostProfile) {
        obs::HostProfiler::Snapshot snap =
            obs::HostProfiler::snapshot();
        std::vector<std::pair<std::string, double>> counters = {
            {"host.cache.hits", static_cast<double>(res.cacheHits)},
            {"host.cache.misses",
             static_cast<double>(res.cacheMisses)},
            {"host.cache.evictions",
             static_cast<double>(res.cacheEvictions)},
            {"host.exec.threads",
             static_cast<double>(res.executorThreads)},
            {"host.exec.steals", static_cast<double>(res.steals)},
            {"host.wallSeconds", res.wallSeconds},
            {"host.runsPerSec", res.runsPerSec},
        };
        std::FILE *f = std::fopen(hostProfileOut.c_str(), "w");
        if (!f)
            MTP_FATAL("cannot write '", hostProfileOut, "'");
        obs::writeHostProfileJsonl(f, snap, counters);
        std::fclose(f);
        std::printf("wrote %s (mtp-report host renders it)\n",
                    hostProfileOut.c_str());
    }

    std::ofstream os(out, std::ios::binary);
    if (!os)
        MTP_FATAL("cannot open --out path '", out, "'");
    writeManifest(os, res, !noSession);
    os.flush();
    if (!os)
        MTP_FATAL("writing '", out, "' failed");

    std::printf("\nmtp-campaign: %zu figures, %llu distinct runs "
                "(%llu cache hits) in %.1fs at --jobs %u --shards %u\n",
                res.figures.size() + res.rawFigures.size(),
                static_cast<unsigned long long>(res.runsExecuted),
                static_cast<unsigned long long>(res.cacheHits),
                res.wallSeconds, res.jobs, res.shards);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
