/**
 * @file
 * mtp-sim: command-line front end of the mtprefetch simulator.
 *
 *   mtp-sim --list
 *   mtp-sim --bench backprop --hw mthwp --throttle --scale 8
 *   mtp-sim --bench scalar --sw stride_ip --stats stats.txt --csv
 *   mtp-sim --kernel my_kernel.mtk --hw stride_pc numCores=20
 *   mtp-sim --bench sepia --dump-kernel sepia.mtk
 *
 * Runs one simulation and prints the headline summary; optionally
 * dumps the complete hierarchical statistics as text or CSV.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mtprefetch/mtprefetch.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "trace/kernel_io.hh"

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options] [key=value ...]\n"
        "  --list                 list available benchmarks and exit\n"
        "  --bench <a,b,...>      run suite benchmarks (comma list)\n"
        "  --kernel <file>        run a kernel description file\n"
        "  --sw <kind>            software prefetch transform\n"
        "                         (none|register|stride|ip|stride_ip)\n"
        "  --hw <kind>            hardware prefetcher\n"
        "                         (none|stride_rpt|stride_pc|stream|\n"
        "                          ghb|mthwp)\n"
        "  --throttle             enable the adaptive throttle engine\n"
        "  --scale <N>            grid divisor vs. the paper (default 8)\n"
        "  --jobs <N>             parallel simulations (default: all\n"
        "                         cores); results are identical for\n"
        "                         every N\n"
        "  --shards <N>           worker threads inside each simulation\n"
        "                         (epoch-sharded cores/channels,\n"
        "                         default 1); results are bit-identical\n"
        "                         for every N. Size jobs x shards to\n"
        "                         the host cores; with --shards and no\n"
        "                         --jobs the job count is derated so\n"
        "                         the product stays at the core count\n"
        "  --stats <file>         dump full statistics to <file>\n"
        "  --csv                  CSV statistics instead of text\n"
        "  --json                 JSON statistics instead of text\n"
        "  --sample-period <N>    sample time-series probes every N cycles\n"
        "  --timeseries <file>    write sampled time series as CSV\n"
        "  --events <file>        write lifecycle/throttle events as JSONL\n"
        "  --trace-out <file>     write a Chrome trace-event JSON file\n"
        "                         (open in Perfetto / chrome://tracing)\n"
        "  --host-profile [file]  profile host threads (wall-clock per\n"
        "                         engine phase, DESIGN.md §12); merged\n"
        "                         into --trace-out, JSONL to [file]\n"
        "  --watchdog-sec <N>     dump flight-recorder state and abort\n"
        "                         diagnosis to stderr if the process\n"
        "                         makes no progress for N seconds\n"
        "  --dump-kernel <file>   write the (transformed) kernel and exit\n"
        "  --quiet                suppress the summary (stats only)\n"
        "  key=value              override any SimConfig field\n"
        "With several benchmarks, observability paths get a per-kernel\n"
        "tag inserted before the extension (out.json -> out.mp.json).\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtp;

    std::vector<std::string> benches;
    std::string kernel_file;
    std::string stats_file;
    std::string dump_kernel;
    SwPrefKind sw = SwPrefKind::None;
    bool throttle = false;
    bool csv = false;
    bool json = false;
    bool quiet = false;
    bool hostProfile = false;
    std::string hostProfileOut;
    double watchdogSec = 0.0;
    unsigned scale = 8;
    unsigned jobs = 0; // 0 = all cores
    SimConfig cfg;
    obs::ObsConfig ocfg;
    cfg.throttlePeriod = 5000; // scaled default; overridable below

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                MTP_FATAL(what, " needs an argument");
            return argv[++i];
        };
        if (arg == "--list") {
            std::printf("memory-intensive (Table III):\n");
            for (const auto &n : Suite::memoryIntensiveNames()) {
                Workload w = Suite::get(n, 64);
                std::printf("  %-10s %-8s %s\n", n.c_str(),
                            toString(w.info.type).c_str(),
                            w.info.suite.c_str());
            }
            std::printf("non-memory-intensive (Table IV):\n");
            for (const auto &n : Suite::computeNames())
                std::printf("  %-10s\n", n.c_str());
            return 0;
        } else if (arg == "--bench") {
            std::stringstream ss(next("--bench"));
            std::string name;
            while (std::getline(ss, name, ','))
                benches.push_back(name);
        } else if (arg == "--kernel") {
            kernel_file = next("--kernel");
        } else if (arg == "--sw") {
            sw = parseSwPrefKind(next("--sw"));
        } else if (arg == "--hw") {
            cfg.hwPref = parseHwPrefKind(next("--hw"));
        } else if (arg == "--throttle") {
            throttle = true;
        } else if (arg == "--scale") {
            scale = static_cast<unsigned>(
                std::stoul(next("--scale")));
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(next("--jobs")));
            if (jobs == 0)
                MTP_FATAL("--jobs must be >= 1");
        } else if (arg == "--shards") {
            cfg.shards = static_cast<unsigned>(
                std::stoul(next("--shards")));
            if (cfg.shards == 0)
                MTP_FATAL("--shards must be >= 1");
        } else if (arg == "--stats") {
            stats_file = next("--stats");
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--sample-period") {
            ocfg.samplePeriod = static_cast<Cycle>(
                std::stoull(next("--sample-period")));
        } else if (arg == "--timeseries") {
            ocfg.timeSeriesCsv = next("--timeseries");
        } else if (arg == "--events") {
            ocfg.jsonlPath = next("--events");
        } else if (arg == "--trace-out") {
            ocfg.chromePath = next("--trace-out");
        } else if (arg == "--host-profile") {
            hostProfile = true;
            // Optional output path: consume the next token unless it
            // is another flag or a key=value override.
            if (i + 1 < argc && argv[i + 1][0] != '-' &&
                std::string(argv[i + 1]).find('=') == std::string::npos)
                hostProfileOut = argv[++i];
        } else if (arg == "--watchdog-sec") {
            watchdogSec = std::stod(next("--watchdog-sec"));
            if (watchdogSec <= 0.0)
                MTP_FATAL("--watchdog-sec must be > 0");
        } else if (arg == "--dump-kernel") {
            dump_kernel = next("--dump-kernel");
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg.find('=') != std::string::npos) {
            cfg.applyOverride(arg);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    cfg.throttleEnable = throttle || cfg.throttleEnable;

    // Share the thread budget between the two parallelism axes: with
    // intra-run sharding and no explicit --jobs, derate the executor so
    // jobs x shards stays near the host core count instead of
    // oversubscribing it.
    jobs = driver::ParallelExecutor::budgetedThreads(jobs, cfg.shards);

    if (benches.empty() == kernel_file.empty()) {
        std::fprintf(stderr,
                     "exactly one of --bench or --kernel is required\n");
        usage(argv[0]);
        return 1;
    }

    // Host observability (DESIGN.md §12): the profiler window opens
    // before kernel assembly so build time is attributed too; the
    // watchdog and crash handler cover the whole run.
    ocfg.hostProfile = hostProfile;
    if (hostProfile) {
        obs::HostProfiler::enable();
        obs::HostProfiler::nameThread("main");
    }
    std::unique_ptr<obs::Watchdog> watchdog;
    if (watchdogSec > 0.0) {
        obs::FlightRecorder::installCrashHandler();
        watchdog = std::make_unique<obs::Watchdog>(watchdogSec,
                                                   hostProfileOut);
    }

    // Assemble the run matrix: every benchmark named by --bench (or
    // the one --kernel file), each with the requested SW transform.
    std::vector<KernelDesc> kernels;
    {
        obs::HostScope kernelBuild(obs::HostPhase::KernelBuild);
        if (!benches.empty()) {
            for (const auto &bench : benches) {
                if (!Suite::has(bench)) {
                    std::fprintf(stderr, "unknown benchmark '%s'\n",
                                 bench.c_str());
                    return 1;
                }
                Workload w = Suite::get(bench, scale);
                KernelDesc kernel = w.kernel;
                if (sw != SwPrefKind::None)
                    kernel = applySwPrefetch(kernel, sw, w.info.swpOpts);
                kernels.push_back(std::move(kernel));
            }
        } else {
            KernelDesc kernel = readKernelFile(kernel_file);
            if (sw != SwPrefKind::None)
                kernel = applySwPrefetch(kernel, sw, SwPrefetchOptions{});
            kernels.push_back(std::move(kernel));
        }
    }

    if (!dump_kernel.empty()) {
        if (kernels.size() != 1)
            MTP_FATAL("--dump-kernel needs exactly one benchmark");
        std::ofstream out(dump_kernel);
        if (!out)
            MTP_FATAL("cannot write '", dump_kernel, "'");
        writeKernel(out, kernels.front());
        std::printf("wrote %s\n", dump_kernel.c_str());
        return 0;
    }
    if (!stats_file.empty() && kernels.size() != 1)
        MTP_FATAL("--stats needs exactly one benchmark");

    if (ocfg.wantsSampling() && ocfg.timeSeriesCsv.empty() &&
        ocfg.jsonlPath.empty() && ocfg.chromePath.empty()) {
        std::fprintf(stderr,
                     "--sample-period without --timeseries/--events/"
                     "--trace-out produces no output\n");
        return 1;
    }

    // With several kernels each run needs its own output files: derive
    // per-kernel paths by tagging the requested ones with the kernel
    // name ("out.json" -> "out.mp.json"). Kernels sharing a name get a
    // content-hash suffix so distinct runs never write the same file.
    std::vector<std::string> runTags;
    {
        std::vector<std::string> names;
        std::vector<std::uint64_t> hashes;
        for (const KernelDesc &kernel : kernels) {
            names.push_back(kernel.name);
            hashes.push_back(driver::hashKernel(kernel));
        }
        runTags = obs::uniqueRunTags(names, hashes);
    }
    auto obsFor = [&](std::size_t idx) {
        obs::ObsConfig o = ocfg;
        if (kernels.size() > 1) {
            const std::string &tag = runTags[idx];
            if (!o.timeSeriesCsv.empty())
                o.timeSeriesCsv = obs::perRunPath(o.timeSeriesCsv, tag);
            if (!o.jsonlPath.empty())
                o.jsonlPath = obs::perRunPath(o.jsonlPath, tag);
            if (!o.chromePath.empty())
                o.chromePath = obs::perRunPath(o.chromePath, tag);
        }
        return o;
    };

    // Submit the whole matrix up front, then print in submission
    // order; with any --jobs value the output is byte-identical.
    driver::ParallelExecutor exec(jobs);
    driver::RunCache cache(exec);
    for (std::size_t i = 0; i < kernels.size(); ++i)
        cache.submit(cfg, kernels[i], obsFor(i));

    bool first = true;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelDesc &kernel = kernels[i];
        const RunResult &r = cache.result(cfg, kernel);

        if (!quiet) {
            if (!first)
                std::printf("\n");
            first = false;
            std::printf("kernel      %s\n", kernel.name.c_str());
            std::printf("machine     %u cores, hw=%s%s, sw=%s\n",
                        cfg.numCores, toString(cfg.hwPref).c_str(),
                        cfg.throttleEnable ? "+throttle" : "",
                        toString(sw).c_str());
            std::printf("cycles      %llu\n",
                        static_cast<unsigned long long>(r.cycles));
            std::printf("warp insts  %llu (CPI %.3f)\n",
                        static_cast<unsigned long long>(r.warpInsts),
                        r.cpi);
            std::printf("mem latency %.1f cycles (prefetch %.1f)\n",
                        r.avgDemandLatency, r.avgPrefetchLatency);
            std::printf("dram bytes  %llu (%.2f B/cycle)\n",
                        static_cast<unsigned long long>(r.dramBytes),
                        static_cast<double>(r.dramBytes) / r.cycles);
            if (r.prefFills > 0) {
                std::printf(
                    "prefetching %llu fills, accuracy %.1f%%, "
                    "coverage %.1f%%, late %.1f%%, early %.1f%%\n",
                    static_cast<unsigned long long>(r.prefFills),
                    100.0 * r.accuracy(), 100.0 * r.prefCoverage(),
                    100.0 * r.lateRatio(), 100.0 * r.earlyRatio());
            }
        }

        if (!stats_file.empty()) {
            std::ofstream out(stats_file);
            if (!out)
                MTP_FATAL("cannot write '", stats_file, "'");
            // Simulation stats plus the host-side scheduler counters
            // (sim.sched.* and host.*, kept separate in RunResult so
            // bit-identity comparisons never see them).
            StatSet full = r.stats;
            full.merge(r.sched, "");
            full.add("host.cache.hits",
                     static_cast<double>(cache.hits()),
                     "run-cache submissions served from an entry");
            full.add("host.cache.misses",
                     static_cast<double>(cache.misses()),
                     "distinct runs scheduled");
            full.add("host.cache.evictions",
                     static_cast<double>(cache.evictions()),
                     "entries discarded (0 by contract)");
            full.add("host.cache.entries",
                     static_cast<double>(cache.size()),
                     "distinct entries resident");
            full.add("host.exec.threads",
                     static_cast<double>(exec.threads()),
                     "executor worker threads");
            full.add("host.exec.executed",
                     static_cast<double>(exec.executed()),
                     "tasks finished so far");
            full.add("host.exec.steals",
                     static_cast<double>(exec.steals()),
                     "tasks stolen across worker deques");
            if (csv)
                full.dumpCsv(out);
            else if (json)
                full.dumpJson(out);
            else
                full.dumpText(out);
            if (!quiet)
                std::printf("stats       %s (%zu entries)\n",
                            stats_file.c_str(), full.size());
        }

        if (!quiet) {
            obs::ObsConfig o = obsFor(i);
            if (!o.timeSeriesCsv.empty())
                std::printf("timeseries  %s\n", o.timeSeriesCsv.c_str());
            if (!o.jsonlPath.empty())
                std::printf("events      %s\n", o.jsonlPath.c_str());
            if (!o.chromePath.empty())
                std::printf("trace       %s\n", o.chromePath.c_str());
        }
    }

    if (hostProfile && !hostProfileOut.empty()) {
        obs::HostProfiler::Snapshot snap =
            obs::HostProfiler::snapshot();
        double wallSec =
            static_cast<double>(snap.takenAtNs - snap.enabledAtNs) /
            1e9;
        std::vector<std::pair<std::string, double>> counters = {
            {"host.cache.hits", static_cast<double>(cache.hits())},
            {"host.cache.misses", static_cast<double>(cache.misses())},
            {"host.cache.evictions",
             static_cast<double>(cache.evictions())},
            {"host.cache.entries", static_cast<double>(cache.size())},
            {"host.exec.threads", static_cast<double>(exec.threads())},
            {"host.exec.executed", static_cast<double>(exec.executed())},
            {"host.exec.steals", static_cast<double>(exec.steals())},
            {"host.wallSeconds", wallSec},
            {"host.runsPerSec",
             wallSec > 0.0
                 ? static_cast<double>(exec.executed()) / wallSec
                 : 0.0},
        };
        std::FILE *f = std::fopen(hostProfileOut.c_str(), "w");
        if (!f)
            MTP_FATAL("cannot write '", hostProfileOut, "'");
        obs::writeHostProfileJsonl(f, snap, counters);
        std::fclose(f);
        if (!quiet)
            std::printf("host        %s (mtp-report host renders it)\n",
                        hostProfileOut.c_str());
    }
    return 0;
}
