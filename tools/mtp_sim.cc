/**
 * @file
 * mtp-sim: command-line front end of the mtprefetch simulator.
 *
 *   mtp-sim --list
 *   mtp-sim --bench backprop --hw mthwp --throttle --scale 8
 *   mtp-sim --bench scalar --sw stride_ip --stats stats.txt --csv
 *   mtp-sim --kernel my_kernel.mtk --hw stride_pc numCores=20
 *   mtp-sim --bench sepia --dump-kernel sepia.mtk
 *
 * Runs one simulation and prints the headline summary; optionally
 * dumps the complete hierarchical statistics as text or CSV.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mtprefetch/mtprefetch.hh"
#include "trace/kernel_io.hh"

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options] [key=value ...]\n"
        "  --list                 list available benchmarks and exit\n"
        "  --bench <a,b,...>      run suite benchmarks (comma list)\n"
        "  --kernel <file>        run a kernel description file\n"
        "  --sw <kind>            software prefetch transform\n"
        "                         (none|register|stride|ip|stride_ip)\n"
        "  --hw <kind>            hardware prefetcher\n"
        "                         (none|stride_rpt|stride_pc|stream|\n"
        "                          ghb|mthwp)\n"
        "  --throttle             enable the adaptive throttle engine\n"
        "  --scale <N>            grid divisor vs. the paper (default 8)\n"
        "  --jobs <N>             parallel simulations (default: all\n"
        "                         cores); results are identical for\n"
        "                         every N\n"
        "  --stats <file>         dump full statistics to <file>\n"
        "  --csv                  CSV statistics instead of text\n"
        "  --dump-kernel <file>   write the (transformed) kernel and exit\n"
        "  --quiet                suppress the summary (stats only)\n"
        "  key=value              override any SimConfig field\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtp;

    std::vector<std::string> benches;
    std::string kernel_file;
    std::string stats_file;
    std::string dump_kernel;
    SwPrefKind sw = SwPrefKind::None;
    bool throttle = false;
    bool csv = false;
    bool quiet = false;
    unsigned scale = 8;
    unsigned jobs = 0; // 0 = all cores
    SimConfig cfg;
    cfg.throttlePeriod = 5000; // scaled default; overridable below

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                MTP_FATAL(what, " needs an argument");
            return argv[++i];
        };
        if (arg == "--list") {
            std::printf("memory-intensive (Table III):\n");
            for (const auto &n : Suite::memoryIntensiveNames()) {
                Workload w = Suite::get(n, 64);
                std::printf("  %-10s %-8s %s\n", n.c_str(),
                            toString(w.info.type).c_str(),
                            w.info.suite.c_str());
            }
            std::printf("non-memory-intensive (Table IV):\n");
            for (const auto &n : Suite::computeNames())
                std::printf("  %-10s\n", n.c_str());
            return 0;
        } else if (arg == "--bench") {
            std::stringstream ss(next("--bench"));
            std::string name;
            while (std::getline(ss, name, ','))
                benches.push_back(name);
        } else if (arg == "--kernel") {
            kernel_file = next("--kernel");
        } else if (arg == "--sw") {
            sw = parseSwPrefKind(next("--sw"));
        } else if (arg == "--hw") {
            cfg.hwPref = parseHwPrefKind(next("--hw"));
        } else if (arg == "--throttle") {
            throttle = true;
        } else if (arg == "--scale") {
            scale = static_cast<unsigned>(
                std::stoul(next("--scale")));
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(next("--jobs")));
            if (jobs == 0)
                MTP_FATAL("--jobs must be >= 1");
        } else if (arg == "--stats") {
            stats_file = next("--stats");
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--dump-kernel") {
            dump_kernel = next("--dump-kernel");
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg.find('=') != std::string::npos) {
            cfg.applyOverride(arg);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    cfg.throttleEnable = throttle || cfg.throttleEnable;

    if (benches.empty() == kernel_file.empty()) {
        std::fprintf(stderr,
                     "exactly one of --bench or --kernel is required\n");
        usage(argv[0]);
        return 1;
    }

    // Assemble the run matrix: every benchmark named by --bench (or
    // the one --kernel file), each with the requested SW transform.
    std::vector<KernelDesc> kernels;
    if (!benches.empty()) {
        for (const auto &bench : benches) {
            if (!Suite::has(bench)) {
                std::fprintf(stderr, "unknown benchmark '%s'\n",
                             bench.c_str());
                return 1;
            }
            Workload w = Suite::get(bench, scale);
            KernelDesc kernel = w.kernel;
            if (sw != SwPrefKind::None)
                kernel = applySwPrefetch(kernel, sw, w.info.swpOpts);
            kernels.push_back(std::move(kernel));
        }
    } else {
        KernelDesc kernel = readKernelFile(kernel_file);
        if (sw != SwPrefKind::None)
            kernel = applySwPrefetch(kernel, sw, SwPrefetchOptions{});
        kernels.push_back(std::move(kernel));
    }

    if (!dump_kernel.empty()) {
        if (kernels.size() != 1)
            MTP_FATAL("--dump-kernel needs exactly one benchmark");
        std::ofstream out(dump_kernel);
        if (!out)
            MTP_FATAL("cannot write '", dump_kernel, "'");
        writeKernel(out, kernels.front());
        std::printf("wrote %s\n", dump_kernel.c_str());
        return 0;
    }
    if (!stats_file.empty() && kernels.size() != 1)
        MTP_FATAL("--stats needs exactly one benchmark");

    // Submit the whole matrix up front, then print in submission
    // order; with any --jobs value the output is byte-identical.
    driver::ParallelExecutor exec(jobs);
    driver::RunCache cache(exec);
    for (const KernelDesc &kernel : kernels)
        cache.submit(cfg, kernel);

    bool first = true;
    for (const KernelDesc &kernel : kernels) {
        const RunResult &r = cache.result(cfg, kernel);

        if (!quiet) {
            if (!first)
                std::printf("\n");
            first = false;
            std::printf("kernel      %s\n", kernel.name.c_str());
            std::printf("machine     %u cores, hw=%s%s, sw=%s\n",
                        cfg.numCores, toString(cfg.hwPref).c_str(),
                        cfg.throttleEnable ? "+throttle" : "",
                        toString(sw).c_str());
            std::printf("cycles      %llu\n",
                        static_cast<unsigned long long>(r.cycles));
            std::printf("warp insts  %llu (CPI %.3f)\n",
                        static_cast<unsigned long long>(r.warpInsts),
                        r.cpi);
            std::printf("mem latency %.1f cycles (prefetch %.1f)\n",
                        r.avgDemandLatency, r.avgPrefetchLatency);
            std::printf("dram bytes  %llu (%.2f B/cycle)\n",
                        static_cast<unsigned long long>(r.dramBytes),
                        static_cast<double>(r.dramBytes) / r.cycles);
            if (r.prefFills > 0) {
                std::printf(
                    "prefetching %llu fills, accuracy %.1f%%, "
                    "coverage %.1f%%, late %.1f%%, early %.1f%%\n",
                    static_cast<unsigned long long>(r.prefFills),
                    100.0 * r.accuracy(), 100.0 * r.prefCoverage(),
                    100.0 * r.lateRatio(), 100.0 * r.earlyRatio());
            }
        }

        if (!stats_file.empty()) {
            std::ofstream out(stats_file);
            if (!out)
                MTP_FATAL("cannot write '", stats_file, "'");
            if (csv)
                r.stats.dumpCsv(out);
            else
                r.stats.dumpText(out);
            if (!quiet)
                std::printf("stats       %s (%zu entries)\n",
                            stats_file.c_str(), r.stats.size());
        }
    }
    return 0;
}
