file(REMOVE_RECURSE
  "libmtp_trace.a"
)
