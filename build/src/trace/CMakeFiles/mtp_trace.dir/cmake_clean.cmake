file(REMOVE_RECURSE
  "CMakeFiles/mtp_trace.dir/address_pattern.cc.o"
  "CMakeFiles/mtp_trace.dir/address_pattern.cc.o.d"
  "CMakeFiles/mtp_trace.dir/coalescer.cc.o"
  "CMakeFiles/mtp_trace.dir/coalescer.cc.o.d"
  "CMakeFiles/mtp_trace.dir/kernel.cc.o"
  "CMakeFiles/mtp_trace.dir/kernel.cc.o.d"
  "CMakeFiles/mtp_trace.dir/kernel_io.cc.o"
  "CMakeFiles/mtp_trace.dir/kernel_io.cc.o.d"
  "libmtp_trace.a"
  "libmtp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
