
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/address_pattern.cc" "src/trace/CMakeFiles/mtp_trace.dir/address_pattern.cc.o" "gcc" "src/trace/CMakeFiles/mtp_trace.dir/address_pattern.cc.o.d"
  "/root/repo/src/trace/coalescer.cc" "src/trace/CMakeFiles/mtp_trace.dir/coalescer.cc.o" "gcc" "src/trace/CMakeFiles/mtp_trace.dir/coalescer.cc.o.d"
  "/root/repo/src/trace/kernel.cc" "src/trace/CMakeFiles/mtp_trace.dir/kernel.cc.o" "gcc" "src/trace/CMakeFiles/mtp_trace.dir/kernel.cc.o.d"
  "/root/repo/src/trace/kernel_io.cc" "src/trace/CMakeFiles/mtp_trace.dir/kernel_io.cc.o" "gcc" "src/trace/CMakeFiles/mtp_trace.dir/kernel_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
