
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ghb.cc" "src/core/CMakeFiles/mtp_core.dir/ghb.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/ghb.cc.o.d"
  "/root/repo/src/core/mt_hwp.cc" "src/core/CMakeFiles/mtp_core.dir/mt_hwp.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/mt_hwp.cc.o.d"
  "/root/repo/src/core/mtaml.cc" "src/core/CMakeFiles/mtp_core.dir/mtaml.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/mtaml.cc.o.d"
  "/root/repo/src/core/prefetcher.cc" "src/core/CMakeFiles/mtp_core.dir/prefetcher.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/prefetcher.cc.o.d"
  "/root/repo/src/core/stream_prefetcher.cc" "src/core/CMakeFiles/mtp_core.dir/stream_prefetcher.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/stream_prefetcher.cc.o.d"
  "/root/repo/src/core/stride_pc.cc" "src/core/CMakeFiles/mtp_core.dir/stride_pc.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/stride_pc.cc.o.d"
  "/root/repo/src/core/stride_rpt.cc" "src/core/CMakeFiles/mtp_core.dir/stride_rpt.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/stride_rpt.cc.o.d"
  "/root/repo/src/core/sw_prefetch.cc" "src/core/CMakeFiles/mtp_core.dir/sw_prefetch.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/sw_prefetch.cc.o.d"
  "/root/repo/src/core/throttle.cc" "src/core/CMakeFiles/mtp_core.dir/throttle.cc.o" "gcc" "src/core/CMakeFiles/mtp_core.dir/throttle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mtp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mtp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
