file(REMOVE_RECURSE
  "CMakeFiles/mtp_core.dir/ghb.cc.o"
  "CMakeFiles/mtp_core.dir/ghb.cc.o.d"
  "CMakeFiles/mtp_core.dir/mt_hwp.cc.o"
  "CMakeFiles/mtp_core.dir/mt_hwp.cc.o.d"
  "CMakeFiles/mtp_core.dir/mtaml.cc.o"
  "CMakeFiles/mtp_core.dir/mtaml.cc.o.d"
  "CMakeFiles/mtp_core.dir/prefetcher.cc.o"
  "CMakeFiles/mtp_core.dir/prefetcher.cc.o.d"
  "CMakeFiles/mtp_core.dir/stream_prefetcher.cc.o"
  "CMakeFiles/mtp_core.dir/stream_prefetcher.cc.o.d"
  "CMakeFiles/mtp_core.dir/stride_pc.cc.o"
  "CMakeFiles/mtp_core.dir/stride_pc.cc.o.d"
  "CMakeFiles/mtp_core.dir/stride_rpt.cc.o"
  "CMakeFiles/mtp_core.dir/stride_rpt.cc.o.d"
  "CMakeFiles/mtp_core.dir/sw_prefetch.cc.o"
  "CMakeFiles/mtp_core.dir/sw_prefetch.cc.o.d"
  "CMakeFiles/mtp_core.dir/throttle.cc.o"
  "CMakeFiles/mtp_core.dir/throttle.cc.o.d"
  "libmtp_core.a"
  "libmtp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
