# Empty dependencies file for mtp_workloads.
# This may be replaced when dependencies are built.
