
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/compute_suite.cc" "src/workloads/CMakeFiles/mtp_workloads.dir/compute_suite.cc.o" "gcc" "src/workloads/CMakeFiles/mtp_workloads.dir/compute_suite.cc.o.d"
  "/root/repo/src/workloads/mp_suite.cc" "src/workloads/CMakeFiles/mtp_workloads.dir/mp_suite.cc.o" "gcc" "src/workloads/CMakeFiles/mtp_workloads.dir/mp_suite.cc.o.d"
  "/root/repo/src/workloads/stride_suite.cc" "src/workloads/CMakeFiles/mtp_workloads.dir/stride_suite.cc.o" "gcc" "src/workloads/CMakeFiles/mtp_workloads.dir/stride_suite.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/mtp_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/mtp_workloads.dir/suite.cc.o.d"
  "/root/repo/src/workloads/uncoal_suite.cc" "src/workloads/CMakeFiles/mtp_workloads.dir/uncoal_suite.cc.o" "gcc" "src/workloads/CMakeFiles/mtp_workloads.dir/uncoal_suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mtp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mtp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
