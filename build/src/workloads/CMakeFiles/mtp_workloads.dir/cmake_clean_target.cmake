file(REMOVE_RECURSE
  "libmtp_workloads.a"
)
