file(REMOVE_RECURSE
  "CMakeFiles/mtp_workloads.dir/compute_suite.cc.o"
  "CMakeFiles/mtp_workloads.dir/compute_suite.cc.o.d"
  "CMakeFiles/mtp_workloads.dir/mp_suite.cc.o"
  "CMakeFiles/mtp_workloads.dir/mp_suite.cc.o.d"
  "CMakeFiles/mtp_workloads.dir/stride_suite.cc.o"
  "CMakeFiles/mtp_workloads.dir/stride_suite.cc.o.d"
  "CMakeFiles/mtp_workloads.dir/suite.cc.o"
  "CMakeFiles/mtp_workloads.dir/suite.cc.o.d"
  "CMakeFiles/mtp_workloads.dir/uncoal_suite.cc.o"
  "CMakeFiles/mtp_workloads.dir/uncoal_suite.cc.o.d"
  "libmtp_workloads.a"
  "libmtp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
