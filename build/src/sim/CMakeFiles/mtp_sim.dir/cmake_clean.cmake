file(REMOVE_RECURSE
  "CMakeFiles/mtp_sim.dir/core.cc.o"
  "CMakeFiles/mtp_sim.dir/core.cc.o.d"
  "CMakeFiles/mtp_sim.dir/gpu.cc.o"
  "CMakeFiles/mtp_sim.dir/gpu.cc.o.d"
  "libmtp_sim.a"
  "libmtp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
