
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/mtp_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/mtp_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/mtp_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/mtp_sim.dir/gpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mtp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mtp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
