file(REMOVE_RECURSE
  "CMakeFiles/mtp_common.dir/config.cc.o"
  "CMakeFiles/mtp_common.dir/config.cc.o.d"
  "CMakeFiles/mtp_common.dir/log.cc.o"
  "CMakeFiles/mtp_common.dir/log.cc.o.d"
  "CMakeFiles/mtp_common.dir/stats.cc.o"
  "CMakeFiles/mtp_common.dir/stats.cc.o.d"
  "libmtp_common.a"
  "libmtp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
