file(REMOVE_RECURSE
  "libmtp_common.a"
)
