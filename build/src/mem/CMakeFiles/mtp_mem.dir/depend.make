# Empty dependencies file for mtp_mem.
# This may be replaced when dependencies are built.
