file(REMOVE_RECURSE
  "CMakeFiles/mtp_mem.dir/cache.cc.o"
  "CMakeFiles/mtp_mem.dir/cache.cc.o.d"
  "CMakeFiles/mtp_mem.dir/dram.cc.o"
  "CMakeFiles/mtp_mem.dir/dram.cc.o.d"
  "CMakeFiles/mtp_mem.dir/icnt.cc.o"
  "CMakeFiles/mtp_mem.dir/icnt.cc.o.d"
  "CMakeFiles/mtp_mem.dir/mem_system.cc.o"
  "CMakeFiles/mtp_mem.dir/mem_system.cc.o.d"
  "CMakeFiles/mtp_mem.dir/mrq.cc.o"
  "CMakeFiles/mtp_mem.dir/mrq.cc.o.d"
  "CMakeFiles/mtp_mem.dir/mshr.cc.o"
  "CMakeFiles/mtp_mem.dir/mshr.cc.o.d"
  "CMakeFiles/mtp_mem.dir/prefetch_cache.cc.o"
  "CMakeFiles/mtp_mem.dir/prefetch_cache.cc.o.d"
  "libmtp_mem.a"
  "libmtp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
