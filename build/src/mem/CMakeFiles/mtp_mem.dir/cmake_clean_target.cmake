file(REMOVE_RECURSE
  "libmtp_mem.a"
)
