
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_ghb.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_ghb.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_ghb.cc.o.d"
  "/root/repo/tests/core/test_lru_table.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_lru_table.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_lru_table.cc.o.d"
  "/root/repo/tests/core/test_mt_hwp.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_mt_hwp.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_mt_hwp.cc.o.d"
  "/root/repo/tests/core/test_mtaml.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_mtaml.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_mtaml.cc.o.d"
  "/root/repo/tests/core/test_stream.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_stream.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_stream.cc.o.d"
  "/root/repo/tests/core/test_stride_pc.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_stride_pc.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_stride_pc.cc.o.d"
  "/root/repo/tests/core/test_stride_rpt.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_stride_rpt.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_stride_rpt.cc.o.d"
  "/root/repo/tests/core/test_sw_prefetch.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_sw_prefetch.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_sw_prefetch.cc.o.d"
  "/root/repo/tests/core/test_throttle.cc" "tests/CMakeFiles/test_prefetchers.dir/core/test_throttle.cc.o" "gcc" "tests/CMakeFiles/test_prefetchers.dir/core/test_throttle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mtp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mtp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mtp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mtp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
