file(REMOVE_RECURSE
  "CMakeFiles/test_prefetchers.dir/core/test_ghb.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_ghb.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/core/test_lru_table.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_lru_table.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/core/test_mt_hwp.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_mt_hwp.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/core/test_mtaml.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_mtaml.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/core/test_stream.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_stream.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/core/test_stride_pc.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_stride_pc.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/core/test_stride_rpt.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_stride_rpt.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/core/test_sw_prefetch.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_sw_prefetch.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/core/test_throttle.cc.o"
  "CMakeFiles/test_prefetchers.dir/core/test_throttle.cc.o.d"
  "test_prefetchers"
  "test_prefetchers.pdb"
  "test_prefetchers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
