file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_cache.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_cache.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_dram.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_dram.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_icnt.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_icnt.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_mem_system.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_mem_system.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_mrq.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_mrq.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_mshr.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_mshr.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_prefetch_cache.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_prefetch_cache.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
