# Empty dependencies file for mtp-sim.
# This may be replaced when dependencies are built.
