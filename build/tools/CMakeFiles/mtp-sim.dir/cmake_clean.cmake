file(REMOVE_RECURSE
  "CMakeFiles/mtp-sim.dir/mtp_sim.cc.o"
  "CMakeFiles/mtp-sim.dir/mtp_sim.cc.o.d"
  "mtp-sim"
  "mtp-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
