file(REMOVE_RECURSE
  "CMakeFiles/throttling_adaptive.dir/throttling_adaptive.cpp.o"
  "CMakeFiles/throttling_adaptive.dir/throttling_adaptive.cpp.o.d"
  "throttling_adaptive"
  "throttling_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throttling_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
