# Empty dependencies file for throttling_adaptive.
# This may be replaced when dependencies are built.
