file(REMOVE_RECURSE
  "CMakeFiles/mtp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/mtp_bench_common.dir/bench_common.cc.o.d"
  "libmtp_bench_common.a"
  "libmtp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
