file(REMOVE_RECURSE
  "libmtp_bench_common.a"
)
