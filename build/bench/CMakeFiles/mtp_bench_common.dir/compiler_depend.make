# Empty compiler generated dependencies file for mtp_bench_common.
# This may be replaced when dependencies are built.
