# Empty dependencies file for bench_fig07_mtaml.
# This may be replaced when dependencies are built.
