file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_mtaml.dir/bench_fig07_mtaml.cc.o"
  "CMakeFiles/bench_fig07_mtaml.dir/bench_fig07_mtaml.cc.o.d"
  "bench_fig07_mtaml"
  "bench_fig07_mtaml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_mtaml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
