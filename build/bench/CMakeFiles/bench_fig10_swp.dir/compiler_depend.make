# Empty compiler generated dependencies file for bench_fig10_swp.
# This may be replaced when dependencies are built.
