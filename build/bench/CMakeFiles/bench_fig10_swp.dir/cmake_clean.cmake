file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_swp.dir/bench_fig10_swp.cc.o"
  "CMakeFiles/bench_fig10_swp.dir/bench_fig10_swp.cc.o.d"
  "bench_fig10_swp"
  "bench_fig10_swp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_swp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
