file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_hw_throttle.dir/bench_fig15_hw_throttle.cc.o"
  "CMakeFiles/bench_fig15_hw_throttle.dir/bench_fig15_hw_throttle.cc.o.d"
  "bench_fig15_hw_throttle"
  "bench_fig15_hw_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_hw_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
