file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_throttle_metrics.dir/bench_abl_throttle_metrics.cc.o"
  "CMakeFiles/bench_abl_throttle_metrics.dir/bench_abl_throttle_metrics.cc.o.d"
  "bench_abl_throttle_metrics"
  "bench_abl_throttle_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_throttle_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
