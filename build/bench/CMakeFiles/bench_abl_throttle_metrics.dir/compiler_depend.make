# Empty compiler generated dependencies file for bench_abl_throttle_metrics.
# This may be replaced when dependencies are built.
