# Empty dependencies file for bench_fig11_swp_throttle.
# This may be replaced when dependencies are built.
