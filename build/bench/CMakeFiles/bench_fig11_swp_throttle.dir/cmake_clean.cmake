file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_swp_throttle.dir/bench_fig11_swp_throttle.cc.o"
  "CMakeFiles/bench_fig11_swp_throttle.dir/bench_fig11_swp_throttle.cc.o.d"
  "bench_fig11_swp_throttle"
  "bench_fig11_swp_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_swp_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
