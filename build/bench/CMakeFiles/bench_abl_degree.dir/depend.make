# Empty dependencies file for bench_abl_degree.
# This may be replaced when dependencies are built.
