file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_degree.dir/bench_abl_degree.cc.o"
  "CMakeFiles/bench_abl_degree.dir/bench_abl_degree.cc.o.d"
  "bench_abl_degree"
  "bench_abl_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
