
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_early_bw.cc" "bench/CMakeFiles/bench_fig12_early_bw.dir/bench_fig12_early_bw.cc.o" "gcc" "bench/CMakeFiles/bench_fig12_early_bw.dir/bench_fig12_early_bw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mtp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mtp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mtp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mtp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mtp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
