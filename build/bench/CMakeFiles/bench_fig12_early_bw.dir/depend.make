# Empty dependencies file for bench_fig12_early_bw.
# This may be replaced when dependencies are built.
