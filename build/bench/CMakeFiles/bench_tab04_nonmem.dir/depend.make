# Empty dependencies file for bench_tab04_nonmem.
# This may be replaced when dependencies are built.
