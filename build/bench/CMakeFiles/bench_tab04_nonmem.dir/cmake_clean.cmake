file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_nonmem.dir/bench_tab04_nonmem.cc.o"
  "CMakeFiles/bench_tab04_nonmem.dir/bench_tab04_nonmem.cc.o.d"
  "bench_tab04_nonmem"
  "bench_tab04_nonmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_nonmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
