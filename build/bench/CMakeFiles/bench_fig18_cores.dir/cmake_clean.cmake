file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_cores.dir/bench_fig18_cores.cc.o"
  "CMakeFiles/bench_fig18_cores.dir/bench_fig18_cores.cc.o.d"
  "bench_fig18_cores"
  "bench_fig18_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
