# Empty compiler generated dependencies file for bench_fig18_cores.
# This may be replaced when dependencies are built.
