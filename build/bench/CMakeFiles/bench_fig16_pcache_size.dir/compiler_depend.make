# Empty compiler generated dependencies file for bench_fig16_pcache_size.
# This may be replaced when dependencies are built.
