# Empty dependencies file for bench_tab03_characteristics.
# This may be replaced when dependencies are built.
