file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_characteristics.dir/bench_tab03_characteristics.cc.o"
  "CMakeFiles/bench_tab03_characteristics.dir/bench_tab03_characteristics.cc.o.d"
  "bench_tab03_characteristics"
  "bench_tab03_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
