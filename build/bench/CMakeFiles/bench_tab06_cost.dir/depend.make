# Empty dependencies file for bench_tab06_cost.
# This may be replaced when dependencies are built.
