file(REMOVE_RECURSE
  "CMakeFiles/bench_tab06_cost.dir/bench_tab06_cost.cc.o"
  "CMakeFiles/bench_tab06_cost.dir/bench_tab06_cost.cc.o.d"
  "bench_tab06_cost"
  "bench_tab06_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab06_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
