# Empty dependencies file for bench_fig17_distance.
# This may be replaced when dependencies are built.
