/**
 * @file
 * Cycle-accounting taxonomy: every core cycle is attributed to exactly
 * one exclusive category (DESIGN.md §9). The categories reproduce the
 * issue/stall breakdowns the paper's Sec. IV narratives rely on —
 * memory stalls removed by timely prefetches vs. new stalls introduced
 * by pollution and DRAM contention — and are shared between the core
 * (per-cycle classification), the GPU (bulk attribution across skipped
 * windows), the sampler probes and tools/mtp-report.
 */

#ifndef MTP_SIM_CYCLE_ACCOUNTING_HH
#define MTP_SIM_CYCLE_ACCOUNTING_HH

#include <array>
#include <cstdint>

namespace mtp {

/**
 * Where one core cycle went. Classification is first-match in the
 * order below (the priority order DESIGN.md §9 documents), evaluated
 * after the issue stage so an issuing cycle always counts as Issued.
 */
enum class CycleCat : std::uint8_t
{
    Issued = 0,        //!< a warp instruction issued this cycle
    IdleNoWarps,       //!< no resident warps and no LSU work
    StallMem,          //!< resident warps all waiting on outstanding
                       //!< loads (or a ready mem inst behind the LSU)
    StallExecBusy,     //!< SIMD unit occupied by a previous instruction
    StallOperand,      //!< earliest candidate inside its own latency
    StallMshrFull,     //!< LSU retrying a demand against a full MSHR
    StallIcnt,         //!< LSU retrying against a full MRQ (injection
                       //!< backpressure from the interconnect/DRAM)
    StallFetchBranch,  //!< earliest candidate in a branch decode bubble
    ThrottleInhibited, //!< software-prefetch txns occupying the LSU
};

inline constexpr unsigned numCycleCats = 9;

/** Per-core cycle tally, indexed by CycleCat. */
using CycleBreakdown = std::array<std::uint64_t, numCycleCats>;

/** Stat-name slug of @p cat ("cycles.<slug>"). */
constexpr const char *
cycleCatName(CycleCat cat)
{
    switch (cat) {
      case CycleCat::Issued:
        return "issued";
      case CycleCat::IdleNoWarps:
        return "idleNoWarps";
      case CycleCat::StallMem:
        return "stallMem";
      case CycleCat::StallExecBusy:
        return "stallExecBusy";
      case CycleCat::StallOperand:
        return "stallOperand";
      case CycleCat::StallMshrFull:
        return "stallMshrFull";
      case CycleCat::StallIcnt:
        return "stallIcnt";
      case CycleCat::StallFetchBranch:
        return "stallFetchBranch";
      case CycleCat::ThrottleInhibited:
        return "throttleInhibited";
    }
    return "unknown";
}

/** Human description of @p cat for StatSet entries. */
constexpr const char *
cycleCatDesc(CycleCat cat)
{
    switch (cat) {
      case CycleCat::Issued:
        return "cycles that issued a warp instruction";
      case CycleCat::IdleNoWarps:
        return "cycles with no resident warps";
      case CycleCat::StallMem:
        return "cycles stalled on outstanding memory requests";
      case CycleCat::StallExecBusy:
        return "cycles the SIMD unit was occupied";
      case CycleCat::StallOperand:
        return "cycles waiting on operand/RAW latency";
      case CycleCat::StallMshrFull:
        return "cycles the LSU retried against a full MSHR";
      case CycleCat::StallIcnt:
        return "cycles the LSU retried against a full MRQ "
               "(interconnect backpressure)";
      case CycleCat::StallFetchBranch:
        return "cycles waiting on a branch decode bubble";
      case CycleCat::ThrottleInhibited:
        return "cycles software-prefetch transactions held the LSU";
    }
    return "";
}

/** Sum of all categories (must equal elapsed cycles). */
inline std::uint64_t
breakdownTotal(const CycleBreakdown &b)
{
    std::uint64_t sum = 0;
    for (auto v : b)
        sum += v;
    return sum;
}

} // namespace mtp

#endif // MTP_SIM_CYCLE_ACCOUNTING_HH
