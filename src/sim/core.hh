/**
 * @file
 * One SIMT core (streaming multiprocessor) of the baseline GPGPU
 * (Fig. 1, Table II): in-order warp scheduler issuing one warp
 * instruction per cycle onto 8-wide SIMD units (4-cycle occupancy per
 * 32-thread warp; IMUL 16, FDIV 32), a 5-cycle stall-on-branch front
 * end, an LSU that coalesces warp accesses and pushes one transaction
 * per cycle into the MRQ, plus the prefetch machinery this paper adds:
 * a prefetch cache, a hardware prefetcher and the throttle engine.
 */

#ifndef MTP_SIM_CORE_HH
#define MTP_SIM_CORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitutils.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/prefetcher.hh"
#include "core/throttle.hh"
#include "mem/mem_system.hh"
#include "mem/mshr.hh"
#include "mem/prefetch_cache.hh"
#include "obs/trace.hh"
#include "sim/cycle_accounting.hh"
#include "sim/warp.hh"

namespace mtp {

/** One GPGPU core. */
class Core
{
  public:
    /** Per-core statistics. */
    struct Counters
    {
        std::uint64_t warpInstsIssued = 0;
        std::uint64_t compInsts = 0;
        std::uint64_t memInsts = 0;   //!< demand loads + stores
        std::uint64_t prefInsts = 0;  //!< software prefetch instructions
        std::uint64_t branchInsts = 0;
        std::uint64_t demandTxns = 0; //!< demand transactions attempted
        std::uint64_t prefCacheHitTxns = 0; //!< demand txns served by PC
        std::uint64_t swPrefTxnsIssued = 0;
        std::uint64_t swPrefDroppedThrottle = 0;
        std::uint64_t swPrefDroppedResident = 0;
        std::uint64_t hwPrefIssued = 0;
        std::uint64_t hwPrefDroppedThrottle = 0;
        std::uint64_t hwPrefDroppedResident = 0;
        std::uint64_t hwPrefDroppedMrqFull = 0;
        std::uint64_t issueCycles = 0; //!< cycles that issued an inst
        std::uint64_t blocksCompleted = 0;
        std::uint64_t warpsCompleted = 0;
        std::uint64_t demandCount = 0;      //!< demand completions
        std::uint64_t demandLatencySum = 0; //!< cycles, per waiter
        std::uint64_t prefCount = 0;        //!< prefetch completions
        std::uint64_t prefLatencySum = 0;   //!< cycles, per fill
    };

    /**
     * @param cfg simulator configuration
     * @param id this core's index
     * @param kernel the (transformed) kernel being executed
     * @param mem shared memory system
     */
    Core(const SimConfig &cfg, CoreId id, const KernelDesc *kernel,
         MemSystem *mem);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** @return free thread-block slots (occupancy limit). */
    bool hasBlockCapacity() const { return activeBlocks_ < maxBlocks_; }

    /** Install the warps of grid block @p block into free warp slots. */
    void dispatchBlock(BlockId block);

    /** @return true iff no live warp or pending LSU work remains. */
    bool idle() const;

    /** Number of live warps. O(1): a maintained counter. */
    unsigned activeWarps() const;

    /**
     * Earliest cycle >= @p now at which this core might change state on
     * its own: issue an instruction (execution unit free and an
     * issuable warp ready), or run an observable periodic update. A
     * pending LSU operation pins the bound to @p now (stalled LSUs
     * retry — and count MSHR-full stalls — every cycle). Memory
     * completions are accounted by MemSystem::nextEventAt(). Never
     * later than the true next state change (the event-horizon
     * contract).
     */
    Cycle nextEventAt(Cycle now) const;

    /** Peak concurrently-resident warps seen so far. */
    unsigned maxActiveWarps() const { return maxActiveWarps_; }

    /**
     * Bulk-attribute the skipped window [@p from, @p to) to cycle
     * categories. Valid only for a window the event horizon skipped:
     * the LSU is idle, the core state is frozen, and nextEventAt(from)
     * >= @p to — so the window splits analytically into an exec-busy
     * span followed by an operand/branch wait on the earliest-ready
     * issuable warp (or is wholly idle / memory-stalled). Under
     * MTP_SLOW_CHECKS the result is cross-checked against the naive
     * per-cycle classifier.
     */
    void accountSkip(Cycle from, Cycle to);

    /** Cycles attributed to @p cat so far. */
    std::uint64_t
    cycleCount(CycleCat cat) const
    {
        return cycleCat_[static_cast<unsigned>(cat)];
    }

    /** The full per-category tally. */
    const CycleBreakdown &cycleBreakdown() const { return cycleCat_; }

    /**
     * Enforce the accounting invariants after @p elapsed simulated
     * cycles: categories sum exactly to @p elapsed, and the Issued
     * count equals Counters::issueCycles.
     */
    void verifyCycleAccounting(Cycle elapsed) const;

    const Counters &counters() const { return counters_; }
    const Mshr &mshr() const { return mshr_; }
    const PrefetchCache &prefCache() const { return prefCache_; }
    const ThrottleEngine *throttle() const { return throttle_.get(); }
    const HwPrefetcher *prefetcher() const { return prefetcher_.get(); }

    /** Export core + prefetch machinery stats under "<prefix>.". */
    void exportStats(StatSet &set, const std::string &prefix) const;

    /**
     * Attach a lifecycle trace recorder (borrowed; may be null). Also
     * forwarded to the throttle engine for its period-update stream.
     */
    void setTracer(obs::TraceRecorder *tracer);

  private:
    /** Occupancy in cycles of one warp instruction. */
    Cycle occupancy(const StaticInst &inst) const;

    /** Deliver returned memory responses to scoreboards/prefetch cache. */
    void drainCompletions(Cycle now);

    /** Push pending LSU transactions into the MRQ (1/cycle). */
    void processLsu(Cycle now);

    /** Pick and issue one ready warp instruction. */
    void issue(Cycle now);

    /** Begin LSU processing of a just-issued memory instruction. */
    void startMemInst(const StaticInst &inst, std::uint32_t warpIdx,
                      Cycle now);

    /** Run the hardware prefetcher on a completed demand observation. */
    void runHwPrefetcher(Cycle now);

    /** Issue one prefetch block address (throttles + dedup + MRQ). */
    void issuePrefetch(Addr blockAddr, ReqType type, Cycle now,
                       std::uint16_t bytes = blockBytes);

    /** Retire finished warps, free block slots. */
    void retireWarps();

    /**
     * Recompute warp @p idx's cached issuable/retirable bits. Must be
     * called wherever the warp's scoreboard or cursor changes: block
     * dispatch, instruction issue, completion drain, prefetch-cache
     * hits, and retirement.
     */
    void refreshWarp(std::uint32_t idx);

    /** Periodic throttle / feedback updates. */
    void periodUpdate(Cycle now);

    /** Why the LSU made no progress this cycle (reset every tick). */
    enum class LsuBlock : std::uint8_t
    {
        None,     //!< not blocked (or no pending op)
        MshrFull, //!< demand retry against a full MSHR
        MrqFull,  //!< demand retry against a full MRQ (icnt pressure)
    };

    /** A classified non-issue cycle: category + blamed warp slot. */
    struct StallClass
    {
        CycleCat cat;
        std::uint32_t blame; //!< warp slot, or noBlame
    };
    static constexpr std::uint32_t noBlame = UINT32_MAX;

    /**
     * Classify a cycle that issued nothing, from end-of-tick state.
     * Also the naive per-cycle oracle for accountSkip(): during a
     * skipped window the LSU is idle and lsuBlock_ is None, so the
     * same decision tree applies with only the time-dependent terms
     * (execBusyUntil_, readyAt) varying across the window.
     */
    StallClass classifyStall(Cycle now) const;

    /** Attribute the cycle just simulated to exactly one category. */
    void accountCycle(Cycle now, bool issued);

    const SimConfig &cfg_;
    CoreId id_;
    const KernelDesc *kernel_;
    MemSystem *mem_;

    unsigned maxBlocks_;
    unsigned activeBlocks_ = 0;
    unsigned maxActiveWarps_ = 0;
    std::vector<Warp> warps_;
    std::vector<std::uint32_t> blockRemaining_; //!< per warp-slot group
    std::vector<BlockId> blockIds_;             //!< block per block slot
    std::uint32_t lastIssued_ = 0; //!< round-robin pointer

    /**
     * Incremental scheduler state. The bitsets cache per-warp
     * predicates that depend only on warp-local state (scoreboard +
     * cursor), so issue() and retireWarps() visit only plausible
     * candidates and idle()/activeWarps() are O(1). Time (readyAt) and
     * structural (LSU) hazards are cheap and stay checked at visit.
     */
    unsigned activeWarpCount_ = 0;
    DynBitset issuable_;  //!< active, not done, scoreboard permits issue
    DynBitset retirable_; //!< finished program and drained
    DynBitset freeBlockSlots_; //!< block slots with no resident warps
    bool periodObservable_ = false; //!< periodUpdate() mutates state

    Cycle execBusyUntil_ = 0;

    /** In-progress warp memory instruction at the LSU. */
    struct LsuOp
    {
        std::vector<MemTxn> txns;
        std::size_t next = 0;
        ReqType type = ReqType::DemandLoad;
        std::uint32_t warpIdx = 0;
        std::int8_t slot = -1;
        Pc pc = 0;
        Addr leadAddr = 0;
        bool valid = false;
    };
    LsuOp lsu_;

    Mshr mshr_;
    PrefetchCache prefCache_;
    std::unique_ptr<HwPrefetcher> prefetcher_;
    std::unique_ptr<ThrottleEngine> throttle_;
    std::unique_ptr<LatenessThrottle> lateThrottle_;
    std::vector<Addr> prefScratch_;

    Cycle nextPeriodAt_;
    PrefetchCache::Counters lastFeedbackPc_{};
    Mshr::Counters lastFeedbackMshr_{};

    /** Demand-load round-trip distribution (64 buckets to 4K cycles). */
    Histogram demandLatencyHist_{0.0, 4096.0, 64};

    obs::TraceRecorder *tracer_ = nullptr;
    Counters counters_;

    /** Exclusive per-category cycle tally (DESIGN.md §9). */
    CycleBreakdown cycleCat_{};
    LsuBlock lsuBlock_ = LsuBlock::None;

    /** Per warp slot: cycles that issued from this slot. */
    std::vector<std::uint64_t> warpIssueCycles_;
    /** Per warp slot: operand/branch stall cycles blamed on it. */
    std::vector<std::uint64_t> warpStallCycles_;
};

} // namespace mtp

#endif // MTP_SIM_CORE_HH
