/**
 * @file
 * Top-level GPU: the block dispatcher, the cycle loop and the run
 * summary every bench/example consumes.
 */

#ifndef MTP_SIM_GPU_HH
#define MTP_SIM_GPU_HH

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/epoch_barrier.hh"
#include "common/stats.hh"
#include "mem/mem_system.hh"
#include "obs/observer.hh"
#include "sim/core.hh"
#include "sim/event_queue.hh"
#include "trace/kernel.hh"

namespace mtp {

/** Summary of one kernel simulation. */
struct RunResult
{
    Cycle cycles = 0;               //!< total execution cycles
    std::uint64_t warpInsts = 0;    //!< warp instructions issued (all cores)
    double cpi = 0.0;               //!< per-core cycles per warp instruction
    double avgDemandLatency = 0.0;  //!< mean demand round trip (cycles)
    double avgPrefetchLatency = 0.0; //!< mean prefetch round trip (cycles)
    std::uint64_t dramBytes = 0;    //!< DRAM data-bus traffic
    std::uint64_t prefFills = 0;    //!< prefetched blocks filled
    std::uint64_t prefUseful = 0;   //!< prefetched blocks used
    std::uint64_t prefEarlyEvicted = 0; //!< evicted before first use
    std::uint64_t prefLate = 0;     //!< demands merged into prefetches
    std::uint64_t prefCacheHits = 0; //!< demand txns served by pref. cache
    std::uint64_t demandTxns = 0;   //!< demand transactions to memory
    double avgActiveWarps = 0.0;    //!< mean resident warps per busy core
    StatSet stats;                  //!< full hierarchical statistics

    /**
     * Scheduler introspection ("sim.sched.*": queue pushes/pops, skip
     * attempts vs. successes, cycles skipped, horizon-cache hit rate).
     * Kept out of `stats` on purpose: these counters describe how the
     * host simulated the run, differ across scheduler modes and build
     * types by design, and must not participate in the bit-identity
     * comparisons that cover `stats`.
     */
    StatSet sched;

    /** Prefetch accuracy: useful / fills (1 when no prefetching). */
    double
    accuracy() const
    {
        return prefFills ? static_cast<double>(prefUseful) / prefFills
                         : 1.0;
    }

    /** Ratio of early prefetches: early evictions / fills (0 when no
     *  prefetching — a run without fills evicted nothing early). */
    double
    earlyRatio() const
    {
        return prefFills
                   ? static_cast<double>(prefEarlyEvicted) / prefFills
                   : 0.0;
    }

    /** Fraction of prefetches that were late: merged demand / fills
     *  (0 when no prefetching — nothing issued, nothing late). */
    double
    lateRatio() const
    {
        return prefFills ? static_cast<double>(prefLate) / prefFills : 0.0;
    }

    /** Fraction of demand transactions hitting the prefetch cache. */
    double
    prefCoverage() const
    {
        std::uint64_t total = prefCacheHits + demandTxns;
        return total ? static_cast<double>(prefCacheHits) / total : 0.0;
    }
};

/** The simulated GPU. */
class Gpu
{
  public:
    /**
     * @param cfg simulator configuration (copied)
     * @param kernel finalized kernel to execute (copied)
     * @param obs optional observer (borrowed; must outlive the Gpu).
     *        Observation is read-only: results are bit-identical with
     *        or without it, so ObsConfig never enters SimConfig or the
     *        run-cache fingerprint. When null and the legacy
     *        MTP_THROTTLE_TRACE alias is set (with throttling enabled),
     *        an internal stderr-bound observer is created.
     */
    Gpu(const SimConfig &cfg, const KernelDesc &kernel,
        obs::Observer *obs = nullptr);

    // Cores hold references into this object; it must stay put.
    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /**
     * Run the kernel to completion and return the summary. With
     * cfg.fastForward (the default) the loop skips stretches of cycles
     * in which no component can act: cfg.eventQueue (the default)
     * selects the event-queue schedule — components self-arm their
     * next tick and only due components tick each stepped cycle —
     * while eventQueue = false keeps the legacy loop that ticks
     * everything and polls every nextEventAt() bound between steps.
     * Results are bit-identical across all three; the naive
     * cycle-by-cycle loop remains the oracle with fastForward = false.
     */
    RunResult run();

    /** Advance one cycle (exposed for fine-grained tests). */
    void step();

    /**
     * @return true when all blocks completed and memory drained.
     * O(1): pending-block / busy-core counters plus the memory
     * system's in-transit counters.
     */
    bool done() const;

    /** Exhaustive recomputation of done() (oracle for the counters). */
    bool doneScan() const;

    /**
     * Earliest cycle >= now() at which any component might act: a
     * dispatchable block, a memory-system event, or a core event. Never
     * later than the true next state change (the event-horizon
     * contract, DESIGN.md); invalidCycle when fully drained.
     */
    Cycle nextEventAt() const;

    Cycle now() const { return now_; }
    Core &core(CoreId id) { return *cores_[id]; }
    MemSystem &mem() { return *mem_; }
    const SimConfig &config() const { return cfg_; }

  private:
    /** Naive oracle loop: step every cycle (fastForward = false). */
    void runNaive();

    /** Legacy fast-forward: tick everything, poll bounds, skip. */
    void runLegacy();

    /**
     * Event-queue schedule (DESIGN.md §7): each component self-arms
     * its next tick in queue_; every stepped cycle ticks only the due
     * components (in the naive loop's phase order, for bit-identity)
     * and then jumps straight to the earliest armed cycle. Parked
     * cores' cycles are bulk-attributed via Core::accountSkip() when
     * they next tick (coreSettledTo_ cursors).
     */
    void runQueued();

    /**
     * Epoch-sharded event-queue schedule (DESIGN.md §10): cores and
     * DRAM channels are partitioned into @p numShards shards, each
     * with its own EventQueue; every stepped cycle runs the core and
     * mem phases across all shards in parallel (the coordinator thread
     * executes shard 0) with EpochBarrier rendezvous between phases,
     * then skips to the joint cross-shard horizon. Bit-identical to
     * runQueued() for every shard count.
     */
    void runSharded(unsigned numShards);

    /**
     * Shards the run loop will actually use: cfg_.shards clamped to
     * the core count, and 1 when a lifecycle tracer is attached (its
     * hooks would fire inside parallel phases).
     */
    unsigned effectiveShards() const;

    /** One shard's core phase of stepped cycle @p t. */
    void shardCoreTick(unsigned s, Cycle t);

    /** One shard's mem phase of stepped cycle @p t. */
    void shardMemTick(unsigned s, Cycle t);

    /** Body of worker thread for shard @p s (s >= 1). */
    void shardWorker(unsigned s);

    /** Hand out grid blocks to cores with free occupancy slots. */
    void dispatchBlocks();

    /** @return true iff some core could accept a pending block now. */
    bool dispatchPossible() const;

    /** @return true iff undispatched blocks exist for core @p c. */
    bool blocksPendingFor(CoreId c) const;

    /**
     * Account the (cycle & 127) == 0 active-warp samples of the fully
     * skipped window [@p from, @p to): no component acts inside it, so
     * every sample sees the current state.
     */
    void bulkWarpSamples(Cycle from, Cycle to);

    /** Register probes/tracks and wire the tracer into components. */
    void attachObserver(obs::Observer *obs);

    /**
     * Jump the clock to @p target (> now()), accounting for everything
     * the skipped per-cycle loop would have done: the (now & 127)
     * active-warp samples (state is constant across a skipped window)
     * and the round-robin dispatch origin rotation.
     */
    void skipTo(Cycle target);

    /** Assemble the RunResult after the loop finishes. */
    RunResult summarize() const;

    SimConfig cfg_;
    KernelDesc kernel_;
    std::unique_ptr<MemSystem> mem_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<BlockId> nextBlockOfCore_; //!< per-core block cursor
    std::vector<BlockId> endBlockOfCore_;  //!< per-core range end
    unsigned rrStartCore_ = 0; //!< rotating scan origin (rr dispatch)
    Cycle now_ = 0;
    std::uint64_t pendingBlocks_ = 0; //!< grid blocks not yet dispatched
    unsigned busyCores_ = 0;          //!< cores with !idle()
    std::uint64_t activeWarpSamples_ = 0;
    std::uint64_t activeWarpSum_ = 0;

    // Event-queue scheduler state (runQueued()).
    EventQueue queue_;
    /**
     * Per core: the first cycle not yet attributed to cycle-accounting
     * categories. A parked core's window [coreSettledTo_[c], t) is
     * bulk-attributed when it next ticks at t.
     */
    std::vector<Cycle> coreSettledTo_;
    /** Cycle rrStartCore_ is synchronized to (rr dispatch rotates
     *  once per cycle even while the dispatcher is parked). */
    Cycle rrSyncedAt_ = 0;
    /** Cores handed a block by the last dispatchBlocks() call. */
    std::vector<CoreId> dispatchedScratch_;

    /** Scheduler introspection counters (RunResult::sched). */
    struct SchedCounters
    {
        std::uint64_t cyclesStepped = 0;
        std::uint64_t cyclesSkipped = 0;
        std::uint64_t skipAttempts = 0;
        std::uint64_t skipSuccesses = 0;
        std::uint64_t coreTicks = 0;
    };
    SchedCounters sched_;

    // Sharded-schedule state (runSharded(); empty for serial runs).
    /**
     * One shard's partition, event queue and per-phase scratch.
     * Cacheline-aligned: the owning thread re-arms its queue and
     * updates its counters inside parallel phases, and adjacent
     * shards' state must not false-share.
     */
    struct alignas(64) ShardState
    {
        unsigned coreLo = 0, coreHi = 0; //!< owned cores [lo, hi)
        unsigned chanLo = 0, chanHi = 0; //!< owned channels [lo, hi)
        EventQueue queue; //!< slot i = core coreLo + i
        std::uint64_t coreTicks = 0;
        /** Cores gone busy->idle during the last core phase. */
        unsigned busyDelta = 0;
        /** A core freed an occupancy slot with blocks still pending. */
        bool wakeDispatch = false;
    };
    std::vector<ShardState> shards_;
    std::vector<unsigned> shardOfCore_;
    std::unique_ptr<EpochBarrier> barrier_;
    std::vector<std::thread> workers_;
    unsigned ranShards_ = 1; //!< shards the last run() actually used
    bool tracerAttached_ = false;

    // Epoch accounting (sim.sched.barrier*): one epoch per coordinator
    // iteration — a stepped cycle plus the joint-horizon skip after it.
    std::uint64_t epochCount_ = 0;
    std::uint64_t epochCycleSum_ = 0;
    std::uint64_t epochCycleMax_ = 0;

    obs::Observer *obs_ = nullptr;
    std::unique_ptr<obs::Observer> ownedObs_; //!< env-alias fallback

    /**
     * Flight-recorder namespace for this run's liveness gauges
     * ("run<seq>.cycle" etc., DESIGN.md §12); assigned from a global
     * sequence at the start of each run loop so concurrent runs never
     * collide. Diagnostic only — never read by the simulation.
     */
    std::uint64_t hostRunSeq_ = 0;
};

/** Convenience: construct, run, summarize. */
RunResult simulate(const SimConfig &cfg, const KernelDesc &kernel);

/**
 * Construct, observe, run, summarize. Identical results to the 2-arg
 * overload (observation is read-only); @p ocfg only adds outputs.
 */
RunResult simulate(const SimConfig &cfg, const KernelDesc &kernel,
                   const obs::ObsConfig &ocfg);

} // namespace mtp

#endif // MTP_SIM_GPU_HH
