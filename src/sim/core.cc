#include "sim/core.hh"

#include "common/log.hh"
#include "trace/coalescer.hh"

namespace mtp {

Core::Core(const SimConfig &cfg, CoreId id, const KernelDesc *kernel,
           MemSystem *mem)
    : cfg_(cfg),
      id_(id),
      kernel_(kernel),
      mem_(mem),
      maxBlocks_(std::min(cfg.maxBlocksPerCore, kernel->maxBlocksPerCore)),
      mshr_(cfg.mshrEntries, cfg.prefMshrEntries),
      prefCache_(cfg.prefCacheBytes, cfg.prefCacheAssoc),
      nextPeriodAt_(cfg.throttlePeriod)
{
    MTP_ASSERT(kernel_->finalized(), "core built on unfinalized kernel");
    warps_.resize(static_cast<std::size_t>(maxBlocks_) *
                  kernel_->warpsPerBlock);
    blockRemaining_.assign(maxBlocks_, 0);
    blockIds_.assign(maxBlocks_, 0);
    prefetcher_ = makeHwPrefetcher(cfg);
    if (cfg.throttleEnable)
        throttle_ = std::make_unique<ThrottleEngine>(cfg);
    if (cfg.stridePcLateThrottle)
        lateThrottle_ = std::make_unique<LatenessThrottle>();
    warpIssueCycles_.assign(warps_.size(), 0);
    warpStallCycles_.assign(warps_.size(), 0);
    issuable_.resize(warps_.size());
    retirable_.resize(warps_.size());
    freeBlockSlots_.resize(maxBlocks_);
    for (unsigned s = 0; s < maxBlocks_; ++s)
        freeBlockSlots_.set(s);
    // Without a throttle engine, prefetcher or lateness throttle, the
    // periodic update has no observable effect and never bounds a skip.
    periodObservable_ = throttle_ || prefetcher_ || lateThrottle_;
}

void
Core::setTracer(obs::TraceRecorder *tracer)
{
    tracer_ = tracer;
    if (throttle_)
        throttle_->setTrace(tracer, id_);
}

void
Core::refreshWarp(std::uint32_t idx)
{
    const Warp &warp = warps_[idx];
    bool issuable = warp.active && !warp.cursor.done() &&
                    warp.canIssue(warp.cursor.inst());
    issuable_.assign(idx, issuable);
    retirable_.assign(idx, warp.retirable());
}

Cycle
Core::occupancy(const StaticInst &inst) const
{
    switch (inst.op) {
      case Opcode::Imul:
        return cfg_.latencyImul;
      case Opcode::Fdiv:
        return cfg_.latencyFdiv;
      default:
        return cfg_.latencyOther;
    }
}

void
Core::dispatchBlock(BlockId block)
{
    MTP_ASSERT(hasBlockCapacity(), "dispatch to a full core");
    // Lowest free slot, as the original linear scan picked.
    std::size_t found = freeBlockSlots_.findNextSet(0);
    MTP_ASSERT(found != DynBitset::npos && found < maxBlocks_,
               "no free block slot despite capacity");
    auto slot = static_cast<unsigned>(found);
    MTP_ASSERT(blockRemaining_[slot] == 0,
               "free-slot bit set on an occupied block slot");
    freeBlockSlots_.clear(slot);

    blockRemaining_[slot] = kernel_->warpsPerBlock;
    blockIds_[slot] = block;
    ++activeBlocks_;
    for (unsigned w = 0; w < kernel_->warpsPerBlock; ++w) {
        std::uint32_t widx = slot * kernel_->warpsPerBlock + w;
        MTP_ASSERT(!warps_[widx].active, "dispatch onto a live warp");
        GlobalWarpId gwid = block * kernel_->warpsPerBlock + w;
        warps_[widx].assign(kernel_, gwid, block);
        ++activeWarpCount_;
        refreshWarp(widx);
    }
    maxActiveWarps_ = std::max(maxActiveWarps_, activeWarps());
}

unsigned
Core::activeWarps() const
{
#if MTP_SLOW_CHECKS
    unsigned n = 0;
    for (const auto &w : warps_)
        n += w.active ? 1 : 0;
    MTP_ASSERT(n == activeWarpCount_, "active-warp counter out of sync");
#endif
    return activeWarpCount_;
}

bool
Core::idle() const
{
    return activeWarps() == 0 && !lsu_.valid;
}

void
Core::tick(Cycle now)
{
    drainCompletions(now);
    periodUpdate(now);
    lsuBlock_ = LsuBlock::None;
    const std::uint64_t issuedBefore = counters_.issueCycles;
    processLsu(now);
    issue(now);
    accountCycle(now, counters_.issueCycles != issuedBefore);
    retireWarps();
}

void
Core::drainCompletions(Cycle now)
{
    const auto &list = mem_->completions(id_);
    for (const auto &req : list) {
        Mshr::Entry entry = mshr_.retire(req.addr);
        if (entry.prefetch) {
            Addr earlyEvicted = invalidAddr;
            prefCache_.fill(req.addr, &earlyEvicted);
            MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::Fill, req.addr,
                                       id_, now));
            if (earlyEvicted != invalidAddr)
                MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::EarlyEvict,
                                           earlyEvicted, id_, now));
            ++counters_.prefCount;
            counters_.prefLatencySum += now - entry.created;
        }
        for (const auto &waiter : entry.waiters) {
            Warp &warp = warps_[waiter.warpIdx];
            auto s = static_cast<unsigned>(waiter.slot);
            MTP_ASSERT(warp.active && warp.outstanding[s] > 0,
                       "completion for a slot with no outstanding load");
            --warp.outstanding[s];
            refreshWarp(waiter.warpIdx);
            ++counters_.demandCount;
            counters_.demandLatencySum += now - waiter.issued;
            demandLatencyHist_.sample(
                static_cast<double>(now - waiter.issued));
        }
    }
    mem_->clearCompletions(id_);
}

void
Core::processLsu(Cycle now)
{
    if (!lsu_.valid)
        return;
    while (lsu_.next < lsu_.txns.size()) {
        Addr addr = lsu_.txns[lsu_.next].addr;
        std::uint16_t bytes = lsu_.txns[lsu_.next].bytes;
        if (lsu_.type == ReqType::DemandLoad) {
            bool firstUse = false;
            if (prefCache_.demandAccess(addr, &firstUse)) {
                // Prefetch-cache hits cost the same as computational
                // instructions (Sec. IV-A): no memory request at all.
                if (firstUse)
                    MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::Useful,
                                               addr, id_, now));
                ++counters_.prefCacheHitTxns;
                Warp &warp = warps_[lsu_.warpIdx];
                auto s = static_cast<unsigned>(lsu_.slot);
                MTP_ASSERT(warp.outstanding[s] > 0,
                           "prefetch-cache hit with no outstanding load");
                --warp.outstanding[s];
                refreshWarp(lsu_.warpIdx);
                ++lsu_.next;
                continue;
            }
            Mshr::Entry *inflight = mshr_.find(addr);
            if (!inflight && (mshr_.full() || mem_->mrq(id_).full())) {
                if (mshr_.full()) {
                    mshr_.noteFullStall();
                    lsuBlock_ = LsuBlock::MshrFull;
                } else {
                    mem_->mrq(id_).noteGatedStall();
                    lsuBlock_ = LsuBlock::MrqFull;
                }
                return; // retry next cycle
            }
            ++counters_.demandTxns;
            bool intoPref = inflight && inflight->prefetch;
            Mshr::Waiter waiter{lsu_.warpIdx, lsu_.slot, now};
            bool merged = mshr_.demandAccess(addr, waiter, now);
            if (merged) {
                // Joined an in-flight block (a late prefetch if that
                // block was prefetched): make sure the queued request
                // has demand priority, and move on without a new fetch.
                if (intoPref)
                    MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::LateMerge,
                                               addr, id_, now));
                mem_->upgradeToDemand(id_, addr);
                ++lsu_.next;
                continue;
            }
            bool ok = mem_->issue(id_, addr, ReqType::DemandLoad, now,
                                  bytes);
            MTP_ASSERT(ok, "MRQ rejected a gated demand push");
            MTP_OBS_HOOK(tracer_, stage(obs::Stage::MrqEnqueue, addr, 0,
                                        id_, 0, now));
            ++lsu_.next;
            break; // one MRQ push per cycle
        }
        if (lsu_.type == ReqType::DemandStore) {
            if (!mem_->issue(id_, addr, ReqType::DemandStore, now, bytes)) {
                // The push itself counted an MRQ fullStall.
                lsuBlock_ = LsuBlock::MrqFull;
                return;
            }
            ++counters_.demandTxns;
            MTP_OBS_HOOK(tracer_, stage(obs::Stage::MrqEnqueue, addr, 1,
                                        id_, 0, now));
            ++lsu_.next;
            break;
        }
        // Software prefetch transaction.
        bool drop = false;
        if (throttle_ && throttle_->shouldDrop()) {
            ++counters_.swPrefDroppedThrottle;
            MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedThrottle,
                                       addr, id_, now));
            drop = true;
        } else if (prefCache_.contains(addr)) {
            ++counters_.swPrefDroppedResident;
            MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedResident,
                                       addr, id_, now));
            drop = true;
        } else if (mshr_.prefetchFull() || mem_->mrq(id_).full()) {
            // Never stall the pipeline for a prefetch.
            ++counters_.swPrefDroppedResident;
            MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedFull, addr,
                                       id_, now));
            drop = true;
        } else if (mshr_.prefetchAccess(addr, now)) {
            ++counters_.swPrefDroppedResident;
            MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedResident,
                                       addr, id_, now));
            drop = true;
        }
        if (drop) {
            ++lsu_.next;
            continue; // dropped prefetches consume no MRQ bandwidth
        }
        bool ok = mem_->issue(id_, addr, ReqType::SwPrefetch, now, bytes);
        MTP_ASSERT(ok, "MRQ rejected a gated prefetch push");
        ++counters_.swPrefTxnsIssued;
        MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::Issued, addr, id_,
                                   now));
        MTP_OBS_HOOK(tracer_, stage(obs::Stage::MrqEnqueue, addr, 2, id_,
                                    0, now));
        ++lsu_.next;
        break;
    }
    if (lsu_.next >= lsu_.txns.size()) {
        if (lsu_.type == ReqType::DemandLoad)
            runHwPrefetcher(now);
        lsu_.valid = false;
    }
}

void
Core::startMemInst(const StaticInst &inst, std::uint32_t warpIdx, Cycle now)
{
    Warp &warp = warps_[warpIdx];
    coalesceWarpAccess(inst.pattern, warp.lane0Tid, warp.cursor.iter(),
                       lsu_.txns);
    lsu_.next = 0;
    lsu_.warpIdx = warpIdx;
    lsu_.pc = inst.pc;
    lsu_.slot = inst.destSlot;
    lsu_.leadAddr = inst.pattern.laneAddr(warp.lane0Tid,
                                          warp.cursor.iter());
    lsu_.valid = true;
    switch (inst.op) {
      case Opcode::Load:
        lsu_.type = ReqType::DemandLoad;
        break;
      case Opcode::Store:
        lsu_.type = ReqType::DemandStore;
        break;
      default:
        lsu_.type = ReqType::SwPrefetch;
        break;
    }
    MTP_OBS_HOOK(tracer_,
                 coalesce(id_, lsu_.leadAddr,
                          static_cast<std::uint8_t>(lsu_.type),
                          lsu_.txns.size(), now));
    if (inst.op == Opcode::Load) {
        auto s = static_cast<unsigned>(inst.destSlot);
        MTP_ASSERT(inst.destSlot >= 0, "load without a destination slot");
        MTP_ASSERT(warp.outstanding[s] + lsu_.txns.size() <= 255,
                   "scoreboard counter overflow");
        warp.outstanding[s] += static_cast<std::uint8_t>(lsu_.txns.size());
        warp.relaxedSlot[s] = inst.regPrefetch;
    }
}

void
Core::runHwPrefetcher(Cycle now)
{
    if (!prefetcher_)
        return;
    const Warp &warp = warps_[lsu_.warpIdx];
    PrefObservation obs{lsu_.pc, lsu_.warpIdx, warp.globalWid,
                        lsu_.leadAddr, &lsu_.txns};
    prefScratch_.clear();
    prefetcher_->observe(obs, prefScratch_);
    // Prefetches inherit the triggering access's transaction
    // granularity: a sparse (32 B) demand stream is prefetched as
    // sparse segments, not full blocks.
    std::uint16_t bytes =
        lsu_.txns.empty() ? blockBytes : lsu_.txns.front().bytes;
    for (Addr addr : prefScratch_)
        issuePrefetch(addr, ReqType::HwPrefetch, now, bytes);
}

void
Core::issuePrefetch(Addr blockAddr, ReqType type, Cycle now,
                    std::uint16_t bytes)
{
    if (throttle_ && throttle_->shouldDrop()) {
        ++counters_.hwPrefDroppedThrottle;
        MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedThrottle,
                                   blockAddr, id_, now));
        return;
    }
    if (lateThrottle_ && lateThrottle_->shouldDrop()) {
        ++counters_.hwPrefDroppedThrottle;
        MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedThrottle,
                                   blockAddr, id_, now));
        return;
    }
    if (prefCache_.contains(blockAddr)) {
        ++counters_.hwPrefDroppedResident;
        MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedResident,
                                   blockAddr, id_, now));
        return;
    }
    if (mshr_.prefetchFull() || mem_->mrq(id_).full()) {
        ++counters_.hwPrefDroppedMrqFull;
        MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedFull, blockAddr,
                                   id_, now));
        return;
    }
    if (mshr_.prefetchAccess(blockAddr, now)) {
        ++counters_.hwPrefDroppedResident;
        MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::DroppedResident,
                                   blockAddr, id_, now));
        return;
    }
    bool ok = mem_->issue(id_, blockAddr, type, now, bytes);
    MTP_ASSERT(ok, "MRQ rejected a gated hardware prefetch");
    ++counters_.hwPrefIssued;
    MTP_OBS_HOOK(tracer_, pref(obs::PrefEvent::Issued, blockAddr, id_,
                               now));
    MTP_OBS_HOOK(tracer_, stage(obs::Stage::MrqEnqueue, blockAddr,
                                static_cast<std::uint8_t>(type), id_, 0,
                                now));
}

void
Core::issue(Cycle now)
{
    if (execBusyUntil_ > now)
        return;
    const auto n = static_cast<std::uint32_t>(warps_.size());
    if (n == 0)
        return;
#if MTP_SLOW_CHECKS
    for (std::uint32_t i = 0; i < n; ++i) {
        const Warp &w = warps_[i];
        bool expect = w.active && !w.cursor.done() &&
                      w.canIssue(w.cursor.inst());
        MTP_ASSERT(issuable_.test(i) == expect,
                   "issuable bit out of sync for warp ", i);
    }
#endif
    if (!issuable_.any())
        return;
    // Greedy-then-round-robin: keep issuing from the current warp until
    // it stalls (Table II: "executes instructions from one warp,
    // switching to another warp if source operands are not ready").
    // The pure round-robin ablation always moves to the next warp.
    // Visiting the issuable bitset in index order from `first` with
    // wraparound reproduces the original (first + k) % n scan exactly;
    // time (readyAt) and structural (LSU) hazards are re-checked here.
    std::uint32_t first =
        (cfg_.schedGreedy ? lastIssued_ : lastIssued_ + 1) % n;
    auto tryIssue = [&](std::uint32_t idx) -> bool {
        Warp &warp = warps_[idx];
        if (warp.readyAt > now)
            return false;
        const StaticInst &inst = warp.cursor.inst();
        bool is_mem = isMemOp(inst.op) && !cfg_.perfectMemory;
        if (is_mem && lsu_.valid)
            return false; // LSU structural hazard

        // Issue.
        Cycle occ = occupancy(inst);
        execBusyUntil_ = now + occ;
        warp.readyAt = now + occ;
        warp.branchWait = inst.op == Opcode::Branch;
        if (inst.op == Opcode::Branch)
            warp.readyAt += cfg_.decodeCycles;

        ++counters_.warpInstsIssued;
        ++counters_.issueCycles;
        ++warpIssueCycles_[idx];
        switch (inst.op) {
          case Opcode::Load:
          case Opcode::Store:
            ++counters_.memInsts;
            break;
          case Opcode::Prefetch:
            ++counters_.prefInsts;
            break;
          case Opcode::Branch:
            ++counters_.branchInsts;
            break;
          default:
            ++counters_.compInsts;
            break;
        }

        if (is_mem)
            startMemInst(inst, idx, now);

        warp.cursor.advance();
        refreshWarp(idx);
        lastIssued_ = idx;
        return true;
    };
    for (std::size_t idx = issuable_.findNextSet(first);
         idx != DynBitset::npos; idx = issuable_.findNextSet(idx + 1)) {
        if (tryIssue(static_cast<std::uint32_t>(idx)))
            return;
    }
    for (std::size_t idx = issuable_.findNextSet(0);
         idx != DynBitset::npos && idx < first;
         idx = issuable_.findNextSet(idx + 1)) {
        if (tryIssue(static_cast<std::uint32_t>(idx)))
            return;
    }
}

void
Core::retireWarps()
{
#if MTP_SLOW_CHECKS
    for (std::uint32_t i = 0; i < warps_.size(); ++i)
        MTP_ASSERT(retirable_.test(i) == warps_[i].retirable(),
                   "retirable bit out of sync for warp ", i);
#endif
    // Word-at-a-time scan; clearing the visited bit is safe (each word
    // is iterated from a copy), and the ascending order matches the
    // original findNextSet() loop.
    retirable_.forEachSet([&](std::size_t found) {
        auto idx = static_cast<std::uint32_t>(found);
        Warp &warp = warps_[idx];
        MTP_ASSERT(warp.retirable(), "retirable bit on a live warp");
        if (lsu_.valid && lsu_.warpIdx == idx)
            return; // trailing stores/prefetches still at the LSU
        warp.active = false;
        retirable_.clear(idx);
        issuable_.clear(idx);
        MTP_ASSERT(activeWarpCount_ > 0, "active-warp underflow");
        --activeWarpCount_;
        ++counters_.warpsCompleted;
        unsigned slot = idx / kernel_->warpsPerBlock;
        MTP_ASSERT(blockRemaining_[slot] > 0, "retire underflow");
        if (--blockRemaining_[slot] == 0) {
            MTP_ASSERT(activeBlocks_ > 0, "block accounting underflow");
            --activeBlocks_;
            freeBlockSlots_.set(slot);
            ++counters_.blocksCompleted;
        }
    });
}

Cycle
Core::nextEventAt(Cycle now) const
{
    // A pending LSU operation retries every cycle (and a full MSHR
    // counts a stall per retry cycle): never skip past it.
    if (lsu_.valid)
        return now;
    Cycle e = invalidCycle;
    if (periodObservable_)
        e = nextPeriodAt_;
    if (e > now) {
        // Earliest possible issue: execution unit free AND some
        // issuable warp past its readyAt, i.e. max(execBusyUntil_,
        // min readyAt). Any readyAt at or below the floor
        // max(now, execBusyUntil_) pins the result to the floor
        // exactly (min_ready <= floor clamps the max to it), so the
        // word-at-a-time scan exits early on the first such warp —
        // same return value as the exhaustive minimum.
        Cycle floor = std::max(now, execBusyUntil_);
        Cycle min_ready = invalidCycle;
        bool pinned = !issuable_.forEachSet([&](std::size_t idx) {
            Cycle r = warps_[idx].readyAt;
            if (r <= floor)
                return false;
            if (r < min_ready)
                min_ready = r;
            return true;
        });
        if (pinned)
            min_ready = floor;
        if (min_ready != invalidCycle) {
            Cycle at = std::max(execBusyUntil_, min_ready);
            if (at < e)
                e = at;
        }
    }
    return e <= now ? now : e;
}

void
Core::periodUpdate(Cycle now)
{
    // With no throttle engine, prefetcher or lateness throttle the
    // update would only reschedule itself: skip it entirely so
    // nextEventAt() need not bound skips at period boundaries.
    if (!periodObservable_)
        return;
    if (now < nextPeriodAt_)
        return;
    nextPeriodAt_ = now + cfg_.throttlePeriod;

    const auto &pc = prefCache_.counters();
    const auto &mshr = mshr_.counters();

    if (throttle_) {
        ThrottleEngine::Snapshot snap;
        snap.earlyEvictions = pc.earlyEvictions;
        snap.useful = pc.useful;
        snap.fills = pc.fills;
        snap.merges = mshr.merges;
        snap.totalRequests = mshr.totalRequests;
        snap.prefCacheHits = pc.demandHits;
        throttle_->updatePeriod(snap, now);
    }

    if (prefetcher_ || lateThrottle_) {
        std::uint64_t d_fills = pc.fills - lastFeedbackPc_.fills;
        std::uint64_t d_useful = pc.useful - lastFeedbackPc_.useful;
        std::uint64_t d_late =
            mshr.demandIntoPref - lastFeedbackMshr_.demandIntoPref;
        lastFeedbackPc_ = pc;
        lastFeedbackMshr_ = mshr;
        if (d_fills > 0) {
            double acc = static_cast<double>(d_useful) /
                         static_cast<double>(d_fills);
            double late = static_cast<double>(d_late) /
                          static_cast<double>(d_fills);
            if (prefetcher_)
                prefetcher_->feedback(acc, late);
            if (lateThrottle_)
                lateThrottle_->updatePeriod(late);
        }
    }
}

Core::StallClass
Core::classifyStall(Cycle now) const
{
    // First-match priority order of DESIGN.md §9. The LSU block
    // reasons and the software-prefetch occupancy outrank the
    // scheduler-side reasons: when the memory path consumed the cycle,
    // that is where the cycle went, whatever the warps were doing.
    if (activeWarpCount_ == 0 && !lsu_.valid)
        return {CycleCat::IdleNoWarps, noBlame};
    if (lsuBlock_ == LsuBlock::MshrFull)
        return {CycleCat::StallMshrFull, noBlame};
    if (lsuBlock_ == LsuBlock::MrqFull)
        return {CycleCat::StallIcnt, noBlame};
    if (lsu_.valid && lsu_.type == ReqType::SwPrefetch)
        return {CycleCat::ThrottleInhibited, noBlame};
    if (execBusyUntil_ > now)
        return {CycleCat::StallExecBusy, noBlame};
    if (!issuable_.any()) {
        // Every resident warp is scoreboard-blocked on its own
        // outstanding loads (or already finished and draining).
        return {CycleCat::StallMem, noBlame};
    }
    // Scoreboard-issuable warps exist and the SIMD unit is free. Either
    // a ready memory instruction sits behind the busy LSU (a memory
    // stall), or every candidate is inside its own issue latency: blame
    // the earliest-ready one (lowest slot on ties, matching the
    // scheduler's scan order).
    std::uint32_t blame = noBlame;
    Cycle min_ready = invalidCycle;
    bool lsu_pinned = !issuable_.forEachSet([&](std::size_t idx) {
        Cycle r = warps_[idx].readyAt;
        if (r <= now)
            return false; // ready mem inst behind the busy LSU
        if (r < min_ready) {
            min_ready = r;
            blame = static_cast<std::uint32_t>(idx);
        }
        return true;
    });
    if (lsu_pinned)
        return {CycleCat::StallMem, noBlame};
    return {warps_[blame].branchWait ? CycleCat::StallFetchBranch
                                     : CycleCat::StallOperand,
            blame};
}

void
Core::accountCycle(Cycle now, bool issued)
{
    if (issued) {
        ++cycleCat_[static_cast<unsigned>(CycleCat::Issued)];
        return;
    }
    StallClass sc = classifyStall(now);
    ++cycleCat_[static_cast<unsigned>(sc.cat)];
    if (sc.blame != noBlame)
        ++warpStallCycles_[sc.blame];
}

void
Core::accountSkip(Cycle from, Cycle to)
{
    MTP_ASSERT(to > from, "accountSkip() over an empty window");
    // The event horizon only skips windows in which this core is
    // quiescent: a pending LSU op pins nextEventAt() to now, so the
    // LSU categories (and issues) can only occur in stepped cycles,
    // and the block reason was reset by the last stepped tick.
    MTP_ASSERT(!lsu_.valid, "skipped a window with a pending LSU op");
    MTP_ASSERT(lsuBlock_ == LsuBlock::None,
               "stale LSU block reason across a skip");
    const std::uint64_t len = to - from;
#if MTP_SLOW_CHECKS
    const CycleBreakdown before = cycleCat_;
#endif
    if (activeWarpCount_ == 0) {
        cycleCat_[static_cast<unsigned>(CycleCat::IdleNoWarps)] += len;
    } else {
        // Exec-busy outranks the memory/operand waits in the per-cycle
        // classifier, so the window is an exec-busy prefix followed by
        // either a memory wait (no issuable warp) or an operand/branch
        // wait on the earliest-ready issuable warp.
        Cycle exec_end = std::min(std::max(execBusyUntil_, from), to);
        cycleCat_[static_cast<unsigned>(CycleCat::StallExecBusy)] +=
            exec_end - from;
        if (exec_end < to && !issuable_.any()) {
            cycleCat_[static_cast<unsigned>(CycleCat::StallMem)] +=
                to - exec_end;
        } else if (exec_end < to) {
            // nextEventAt(from) >= to, so min readyAt >= to: the rest
            // of the window waits on the earliest-ready issuable warp.
            std::uint32_t blame = noBlame;
            Cycle min_ready = invalidCycle;
            issuable_.forEachSet([&](std::size_t idx) {
                Cycle r = warps_[idx].readyAt;
                if (r < min_ready) {
                    min_ready = r;
                    blame = static_cast<std::uint32_t>(idx);
                }
            });
            MTP_ASSERT(min_ready >= to,
                       "skipped past a ready warp (event-horizon bug)");
            CycleCat cat = warps_[blame].branchWait
                               ? CycleCat::StallFetchBranch
                               : CycleCat::StallOperand;
            cycleCat_[static_cast<unsigned>(cat)] += to - exec_end;
            warpStallCycles_[blame] += to - exec_end;
        }
    }
#if MTP_SLOW_CHECKS
    // Cross-check the analytic split against the naive per-cycle
    // classifier the fastForward=false loop would have run.
    CycleBreakdown naive{};
    for (Cycle c = from; c < to; ++c)
        ++naive[static_cast<unsigned>(classifyStall(c).cat)];
    for (unsigned k = 0; k < numCycleCats; ++k)
        MTP_ASSERT(cycleCat_[k] - before[k] == naive[k],
                   "bulk attribution diverges from per-cycle "
                   "classification for category ",
                   cycleCatName(static_cast<CycleCat>(k)));
#endif
}

void
Core::verifyCycleAccounting(Cycle elapsed) const
{
    MTP_ASSERT(breakdownTotal(cycleCat_) == elapsed,
               "core ", id_, " cycle categories sum to ",
               breakdownTotal(cycleCat_), ", not the ", elapsed,
               " elapsed cycles");
    MTP_ASSERT(cycleCount(CycleCat::Issued) == counters_.issueCycles,
               "core ", id_, " Issued category (",
               cycleCount(CycleCat::Issued),
               ") out of sync with issueCycles (", counters_.issueCycles,
               ")");
    std::uint64_t per_warp = 0;
    for (auto v : warpIssueCycles_)
        per_warp += v;
    MTP_ASSERT(per_warp == counters_.issueCycles,
               "per-warp issue cycles out of sync");
}

void
Core::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".warpInsts",
            static_cast<double>(counters_.warpInstsIssued),
            "warp instructions issued");
    set.add(prefix + ".compInsts", static_cast<double>(counters_.compInsts),
            "computational warp instructions");
    set.add(prefix + ".memInsts", static_cast<double>(counters_.memInsts),
            "demand memory warp instructions");
    set.add(prefix + ".prefInsts", static_cast<double>(counters_.prefInsts),
            "software prefetch warp instructions");
    set.add(prefix + ".branchInsts",
            static_cast<double>(counters_.branchInsts),
            "branch warp instructions");
    set.add(prefix + ".demandTxns",
            static_cast<double>(counters_.demandTxns),
            "demand transactions sent to memory");
    set.add(prefix + ".prefCacheHitTxns",
            static_cast<double>(counters_.prefCacheHitTxns),
            "demand transactions served by the prefetch cache");
    set.add(prefix + ".swPrefIssued",
            static_cast<double>(counters_.swPrefTxnsIssued),
            "software prefetch transactions sent to memory");
    set.add(prefix + ".swPrefDroppedThrottle",
            static_cast<double>(counters_.swPrefDroppedThrottle),
            "software prefetches dropped by the throttle engine");
    set.add(prefix + ".swPrefDroppedResident",
            static_cast<double>(counters_.swPrefDroppedResident),
            "software prefetches to already-resident blocks");
    set.add(prefix + ".hwPrefIssued",
            static_cast<double>(counters_.hwPrefIssued),
            "hardware prefetches sent to memory");
    set.add(prefix + ".hwPrefDroppedThrottle",
            static_cast<double>(counters_.hwPrefDroppedThrottle),
            "hardware prefetches dropped by throttling");
    set.add(prefix + ".hwPrefDroppedResident",
            static_cast<double>(counters_.hwPrefDroppedResident),
            "hardware prefetches to already-resident blocks");
    set.add(prefix + ".hwPrefDroppedMrqFull",
            static_cast<double>(counters_.hwPrefDroppedMrqFull),
            "hardware prefetches dropped on a full MRQ");
    set.add(prefix + ".blocksCompleted",
            static_cast<double>(counters_.blocksCompleted),
            "thread blocks completed");
    set.add(prefix + ".warpsCompleted",
            static_cast<double>(counters_.warpsCompleted),
            "warps completed");
    set.add(prefix + ".maxActiveWarps",
            static_cast<double>(maxActiveWarps_),
            "peak concurrently-resident warps");
    for (unsigned k = 0; k < numCycleCats; ++k) {
        auto cat = static_cast<CycleCat>(k);
        set.add(prefix + ".cycles." + cycleCatName(cat),
                static_cast<double>(cycleCat_[k]), cycleCatDesc(cat));
    }
    set.add(prefix + ".cycles.total",
            static_cast<double>(breakdownTotal(cycleCat_)),
            "attributed cycles (sum of all categories)");
    for (std::size_t w = 0; w < warpIssueCycles_.size(); ++w) {
        std::string wp = prefix + ".warp" + std::to_string(w);
        set.add(wp + ".issuedCycles",
                static_cast<double>(warpIssueCycles_[w]),
                "cycles this warp slot issued");
        set.add(wp + ".blamedStallCycles",
                static_cast<double>(warpStallCycles_[w]),
                "operand/branch stall cycles blamed on this slot");
    }
    set.add(prefix + ".avgDemandLatency",
            counters_.demandCount
                ? static_cast<double>(counters_.demandLatencySum) /
                      static_cast<double>(counters_.demandCount)
                : 0.0,
            "mean demand-load round trip in cycles");
    demandLatencyHist_.exportTo(set, prefix + ".demandLatency",
                                "demand round-trip distribution");
    mshr_.exportStats(set, prefix + ".mshr");
    prefCache_.exportStats(set, prefix + ".prefCache");
    if (throttle_)
        throttle_->exportStats(set, prefix + ".throttle");
    if (prefetcher_)
        prefetcher_->exportStats(set, prefix + ".hwPref");
}

} // namespace mtp
