#include "sim/gpu.hh"

#include <algorithm>

#include "common/log.hh"

#if MTP_OBS_ENABLED
#include <atomic>
#include <string>

#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"

// Host-profiler scope against the per-run-loop hoisted `hp` bool: the
// per-iteration disabled cost is a predicted branch, and the noobs
// overhead-gate stack compiles the hook out entirely.
#define MTP_HOST_SCOPE(var, phase) \
    obs::HostScope var(obs::HostPhase::phase, hp)
#else
#define MTP_HOST_SCOPE(var, phase) \
    do { \
    } while (0)
#endif

namespace mtp {

#if MTP_OBS_ENABLED
namespace {

/** Global run sequence for flight-recorder gauge namespaces. */
std::uint64_t
nextHostRunSeq()
{
    static std::atomic<std::uint64_t> seq{0};
    return seq.fetch_add(1, std::memory_order_relaxed);
}

} // namespace
#endif

Gpu::Gpu(const SimConfig &cfg, const KernelDesc &kernel,
         obs::Observer *obs)
    : cfg_(cfg), kernel_(kernel)
{
    cfg_.validate();
    if (!kernel_.finalized())
        kernel_.finalize();
    mem_ = std::make_unique<MemSystem>(cfg_);
    cores_.reserve(cfg_.numCores);
    for (CoreId c = 0; c < cfg_.numCores; ++c)
        cores_.push_back(std::make_unique<Core>(cfg_, c, &kernel_,
                                                mem_.get()));

    // Contiguous block partitioning: core c executes a consecutive
    // range of block ids, in order. Consecutive blocks therefore run
    // consecutively in time on the same core — the locality
    // inter-thread prefetching depends on (Sec. III-A2: an IP prefetch
    // is wasted exactly when the target warp's block lands on a
    // different core).
    std::uint64_t blocks = kernel_.numBlocks;
    pendingBlocks_ = blocks;
    unsigned n = cfg_.numCores;
    nextBlockOfCore_.resize(n);
    endBlockOfCore_.resize(n);
    for (unsigned c = 0; c < n; ++c) {
        nextBlockOfCore_[c] = blocks * c / n;
        endBlockOfCore_[c] = blocks * (c + 1) / n;
    }
    if (!cfg_.dispatchContiguous) {
        // Round-robin ablation: one shared cursor over the whole grid.
        for (unsigned c = 0; c < n; ++c) {
            nextBlockOfCore_[c] = 0;
            endBlockOfCore_[c] = 0;
        }
        nextBlockOfCore_[0] = 0;
        endBlockOfCore_[0] = blocks;
    }

#if MTP_OBS_ENABLED
    if (!obs && cfg_.throttleEnable && obs::throttleTraceEnvEnabled()) {
        // Legacy MTP_THROTTLE_TRACE alias: throttle period updates to
        // stderr, now as JSONL through the sink API.
        obs::ObsConfig alias;
        alias.throttleToStderr = true;
        ownedObs_ = std::make_unique<obs::Observer>(alias);
        obs = ownedObs_.get();
    }
    if (obs && obs->config().enabled())
        attachObserver(obs);
#else
    (void)obs;
#endif
}

void
Gpu::attachObserver(obs::Observer *obs)
{
    obs_ = obs;
    obs::TraceRecorder *tracer = obs->tracer();
    if (tracer) {
        // Lifecycle hooks fire inside component ticks; a traced run
        // falls back to the serial schedule (effectiveShards() == 1).
        tracerAttached_ = true;
        mem_->setTracer(tracer);
        for (auto &core : cores_)
            core->setTracer(tracer);
    }

    for (CoreId c = 0; c < cores_.size(); ++c)
        obs->declareTrack(obs::trackForCore(c),
                          "core" + std::to_string(c));
    for (unsigned ch = 0; ch < mem_->numChannels(); ++ch)
        obs->declareTrack(obs::trackForChannel(ch),
                          "dram" + std::to_string(ch));
    obs->declareTrack(obs::trackGlobal, "memSystem");

    if (!obs->config().wantsSampling())
        return;

    // Probes close over live component state; every reader is
    // side-effect free, so sampling cannot change simulated results.
    using Kind = obs::Sampler::Kind;
    obs::Sampler &s = obs->sampler();
    for (CoreId c = 0; c < cores_.size(); ++c) {
        std::string p = "core" + std::to_string(c) + ".";
        int pid = obs::trackForCore(c);
        const Core *core = cores_[c].get();
        s.addProbe(p + "ipc", pid, Kind::Rate, [core](Cycle) {
            return static_cast<double>(core->counters().warpInstsIssued);
        });
        const MemSystem *mem = mem_.get();
        s.addProbe(p + "mrqOcc", pid, Kind::Gauge, [mem, c](Cycle) {
            return static_cast<double>(mem->mrq(c).size());
        });
        s.addProbe(p + "mshrOcc", pid, Kind::Gauge, [core](Cycle) {
            return static_cast<double>(core->mshr().size());
        });
        auto fills = [core](Cycle) {
            return static_cast<double>(core->prefCache().counters().fills);
        };
        s.addProbe(
            p + "prefAccuracy", pid, Kind::Ratio,
            [core](Cycle) {
                return static_cast<double>(
                    core->prefCache().counters().useful);
            },
            fills);
        s.addProbe(
            p + "prefLateness", pid, Kind::Ratio,
            [core](Cycle) {
                return static_cast<double>(
                    core->mshr().counters().demandIntoPref);
            },
            fills);
        s.addProbe(
            p + "prefPollution", pid, Kind::Ratio,
            [core](Cycle) {
                return static_cast<double>(
                    core->prefCache().counters().earlyEvictions);
            },
            fills);
        if (core->throttle()) {
            s.addProbe(p + "throttleDegree", pid, Kind::Gauge,
                       [core](Cycle) {
                           return static_cast<double>(
                               core->throttle()->degree());
                       });
        }
        // Cycle-accounting categories as per-period fractions: the
        // delta of each exclusive tally divided by the period, so the
        // nine tracks of one core sum to 1 in every sample row.
        for (unsigned k = 0; k < numCycleCats; ++k) {
            auto cat = static_cast<CycleCat>(k);
            s.addProbe(p + "cycles." + cycleCatName(cat), pid,
                       Kind::Rate, [core, cat](Cycle) {
                           return static_cast<double>(
                               core->cycleCount(cat));
                       });
        }
    }
    for (unsigned ch = 0; ch < mem_->numChannels(); ++ch) {
        std::string p = "dram" + std::to_string(ch) + ".";
        int pid = obs::trackForChannel(ch);
        const DramChannel *channel = &mem_->channel(ch);
        s.addProbe(
            p + "rowHitRate", pid, Kind::Ratio,
            [channel](Cycle) {
                return static_cast<double>(channel->counters().rowHits);
            },
            [channel](Cycle) {
                return static_cast<double>(channel->counters().reads +
                                           channel->counters().writes);
            });
        s.addProbe(p + "blp", pid, Kind::Gauge, [channel](Cycle now) {
            return static_cast<double>(channel->busyBanks(now));
        });
        s.addProbe(p + "bufOcc", pid, Kind::Gauge, [channel](Cycle) {
            return static_cast<double>(channel->bufferOccupancy());
        });
    }
    s.addProbe("mem.injCreditStalls", obs::trackGlobal, Kind::Rate,
               [mem = mem_.get()](Cycle) {
                   return static_cast<double>(mem->injCreditStalls());
               });
    s.start(obs->config().samplePeriod);
}

void
Gpu::dispatchBlocks()
{
    dispatchedScratch_.clear();
    if (!cfg_.dispatchContiguous) {
        // Round-robin ablation: hand the globally next block to each
        // core with a free slot. The scan origin rotates every cycle —
        // a fixed origin would always favour core 0 when blocks are
        // scarce, which is first-fit, not round-robin.
        unsigned n = static_cast<unsigned>(cores_.size());
        for (unsigned k = 0; k < n; ++k) {
            CoreId c = (rrStartCore_ + k) % n;
            if (nextBlockOfCore_[0] < endBlockOfCore_[0] &&
                cores_[c]->hasBlockCapacity()) {
                if (cores_[c]->idle())
                    ++busyCores_;
                cores_[c]->dispatchBlock(nextBlockOfCore_[0]++);
                MTP_ASSERT(pendingBlocks_ > 0, "pending-block underflow");
                --pendingBlocks_;
                dispatchedScratch_.push_back(c);
            }
        }
        rrStartCore_ = (rrStartCore_ + 1) % n;
        return;
    }
    // Each core pulls the next block of its contiguous range (one
    // dispatch per core per cycle).
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (nextBlockOfCore_[c] < endBlockOfCore_[c] &&
            cores_[c]->hasBlockCapacity()) {
            if (cores_[c]->idle())
                ++busyCores_;
            cores_[c]->dispatchBlock(nextBlockOfCore_[c]++);
            MTP_ASSERT(pendingBlocks_ > 0, "pending-block underflow");
            --pendingBlocks_;
            dispatchedScratch_.push_back(c);
        }
    }
}

bool
Gpu::blocksPendingFor(CoreId c) const
{
    // In round-robin mode every core draws from the shared cursor.
    return cfg_.dispatchContiguous
               ? nextBlockOfCore_[c] < endBlockOfCore_[c]
               : pendingBlocks_ > 0;
}

bool
Gpu::dispatchPossible() const
{
    if (pendingBlocks_ == 0)
        return false;
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (blocksPendingFor(c) && cores_[c]->hasBlockCapacity())
            return true;
    }
    return false;
}

void
Gpu::step()
{
    ++sched_.cyclesStepped;
    dispatchBlocks();
    for (auto &core : cores_) {
        bool was_busy = !core->idle();
        ++sched_.coreTicks;
        core->tick(now_);
        if (was_busy && core->idle()) {
            MTP_ASSERT(busyCores_ > 0, "busy-core underflow");
            --busyCores_;
        }
    }
    mem_->tick(now_);
    if ((now_ & 127) == 0) {
        for (auto &core : cores_) {
            unsigned a = core->activeWarps();
            if (a > 0) {
                activeWarpSum_ += a;
                ++activeWarpSamples_;
            }
        }
    }
#if MTP_OBS_ENABLED
    // Sample after every component ticked this cycle: the row reflects
    // end-of-cycle state. Reading counters has no side effects, so the
    // step stays bit-identical with sampling on or off.
    if (obs_ && obs_->sampler().due(now_))
        obs_->sampler().sample(now_);
#endif
    ++now_;
}

bool
Gpu::done() const
{
    bool fast = pendingBlocks_ == 0 && busyCores_ == 0 && mem_->drained();
#if MTP_SLOW_CHECKS
    MTP_ASSERT(fast == doneScan(),
               "done() counters disagree with exhaustive scan");
#endif
    return fast;
}

bool
Gpu::doneScan() const
{
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (nextBlockOfCore_[c] < endBlockOfCore_[c])
            return false;
    }
    for (const auto &core : cores_) {
        if (!core->idle())
            return false;
    }
    return mem_->drainedScan();
}

Cycle
Gpu::nextEventAt() const
{
    // A dispatchable block is an immediate event.
    if (pendingBlocks_ > 0) {
        if (!cfg_.dispatchContiguous) {
            for (const auto &core : cores_) {
                if (core->hasBlockCapacity())
                    return now_;
            }
        } else {
            for (CoreId c = 0; c < cores_.size(); ++c) {
                if (nextBlockOfCore_[c] < endBlockOfCore_[c] &&
                    cores_[c]->hasBlockCapacity())
                    return now_;
            }
        }
    }
    Cycle e = mem_->nextEventAt(now_);
    if (e <= now_)
        return now_;
    for (const auto &core : cores_) {
        Cycle c = core->nextEventAt(now_);
        if (c <= now_)
            return now_;
        if (c < e)
            e = c;
    }
#if MTP_OBS_ENABLED
    // Sampling is an observable event: a skip must stop at the next
    // sample boundary so the sampler runs at exactly the same cycles as
    // in the naive loop (invalidCycle when inactive — no effect).
    if (obs_) {
        Cycle sample = obs_->sampler().nextSampleAt();
        if (sample < e)
            e = sample;
    }
#endif
    return e;
}

void
Gpu::bulkWarpSamples(Cycle from, Cycle to)
{
    // The active-warp samples the skipped per-cycle loop would have
    // taken at each (cycle & 127) == 0 in [from, to): no component
    // acts in the window, so every sample sees the current state.
    Cycle first = (from + 127) & ~Cycle{127};
    if (first < to) {
        std::uint64_t m = (to - 1 - first) / 128 + 1;
        for (const auto &core : cores_) {
            unsigned a = core->activeWarps();
            if (a > 0) {
                activeWarpSum_ += static_cast<std::uint64_t>(a) * m;
                activeWarpSamples_ += m;
            }
        }
    }
}

void
Gpu::skipTo(Cycle target)
{
    MTP_ASSERT(target > now_, "skipTo() not moving forward");
#if MTP_SLOW_CHECKS && MTP_OBS_ENABLED
    if (obs_)
        MTP_ASSERT(target <= obs_->sampler().nextSampleAt(),
                   "cycle skip would jump a sample boundary");
#endif
    bulkWarpSamples(now_, target);
    if (!cfg_.dispatchContiguous) {
        // The round-robin dispatch origin rotates every cycle, even
        // when nothing dispatches.
        auto n = static_cast<unsigned>(cores_.size());
        rrStartCore_ = static_cast<unsigned>(
            (rrStartCore_ + (target - now_)) % n);
    }
    // Attribute the skipped cycles of every core to stall categories;
    // the analytic split mirrors the nextEventAt() reasoning that
    // justified the skip.
    for (auto &core : cores_)
        core->accountSkip(now_, target);
    now_ = target;
}

unsigned
Gpu::effectiveShards() const
{
    unsigned s = std::min(cfg_.shards,
                          static_cast<unsigned>(cores_.size()));
    if (s == 0)
        s = 1;
    if (tracerAttached_)
        s = 1;
    return s;
}

RunResult
Gpu::run()
{
    if (!cfg_.fastForward) {
        runNaive();
    } else if (!cfg_.eventQueue) {
        runLegacy();
    } else {
        ranShards_ = effectiveShards();
        if (ranShards_ > 1) {
            mem_->setSharded(true);
            runSharded(ranShards_);
            mem_->setSharded(false);
        } else {
            runQueued();
        }
    }
    RunResult result = summarize();
#if MTP_OBS_ENABLED
    if (obs_)
        obs_->finish();
#endif
    return result;
}

void
Gpu::runNaive()
{
    while (!done()) {
        if (now_ >= cfg_.maxCycles)
            MTP_FATAL("simulation of '", kernel_.name, "' exceeded ",
                      cfg_.maxCycles, " cycles; likely deadlock or ",
                      "an unreasonable configuration");
        step();
    }
}

void
Gpu::runLegacy()
{
    // Failed skip attempts (an event due this very cycle) back off
    // exponentially so event-dense phases don't pay the bound
    // computation every cycle. Stepping through skippable cycles is
    // exactly what the naive loop does, so attempting less often can
    // never change results — only forgo some speedup.
    SkipBackoff backoff;
    while (!done()) {
        if (now_ >= cfg_.maxCycles)
            MTP_FATAL("simulation of '", kernel_.name, "' exceeded ",
                      cfg_.maxCycles, " cycles; likely deadlock or ",
                      "an unreasonable configuration");
        step();
        if (!done() && backoff.shouldAttempt()) {
            // Skip cycles in which no component can act. Capping at
            // maxCycles keeps the deadlock diagnostic identical.
            ++sched_.skipAttempts;
            Cycle target = std::min(nextEventAt(), cfg_.maxCycles);
            if (target > now_) {
                sched_.cyclesSkipped += target - now_;
                ++sched_.skipSuccesses;
                skipTo(target);
                backoff.noteSuccess();
            } else {
                backoff.noteFailure();
            }
        }
    }
}

void
Gpu::runQueued()
{
    const auto n = static_cast<unsigned>(cores_.size());
    // Queue slots: one per core, then the memory system, the block
    // dispatcher, and the observer sampler.
    const std::size_t memId = n;
    const std::size_t dispatchId = n + 1;
    const std::size_t samplerId = n + 2;
    queue_.reset(n + 3); // everything due at cycle 0
    coreSettledTo_.assign(n, 0);
    rrSyncedAt_ = 0;
    queue_.arm(samplerId, invalidCycle);
#if MTP_OBS_ENABLED
    if (obs_)
        queue_.arm(samplerId, obs_->sampler().nextSampleAt());
    const bool hp = obs::HostProfiler::enabled();
    hostRunSeq_ = nextHostRunSeq();
    obs::FlightRecorder::Gauge gCycle = obs::FlightRecorder::acquireGauge(
        "run" + std::to_string(hostRunSeq_) + ".cycle");
#endif
    while (!done()) {
        if (now_ >= cfg_.maxCycles)
            MTP_FATAL("simulation of '", kernel_.name, "' exceeded ",
                      cfg_.maxCycles, " cycles; likely deadlock or ",
                      "an unreasonable configuration");
        const Cycle t = now_;
        ++sched_.cyclesStepped;
#if MTP_SLOW_CHECKS
        // Parked components must be provably non-actionable: ticking
        // them would be a no-op, which is exactly why the queued loop
        // may leave them unticked.
        for (CoreId c = 0; c < n; ++c) {
            if (queue_.key(c) > t)
                MTP_ASSERT(cores_[c]->nextEventAt(t) > t &&
                               mem_->completions(c).empty(),
                           "parked core ", c, " is actionable at ", t);
        }
        if (queue_.key(memId) > t)
            MTP_ASSERT(mem_->mrqOccupancy() == 0 &&
                           mem_->nextSelfEventAt(t) > t,
                       "parked memory system is actionable at ", t);
        if (queue_.key(dispatchId) > t)
            MTP_ASSERT(!dispatchPossible(),
                       "parked dispatcher is actionable at ", t);
#endif
        // Phase order matches step(): dispatch, cores in ascending id,
        // memory, warp sample, observer sample.
        if (queue_.key(dispatchId) <= t) {
            MTP_HOST_SCOPE(hostDispatch, Dispatch);
            queue_.notePop();
            // Catch the round-robin origin up with the cycles the
            // dispatcher sat parked (it rotates once per cycle even
            // when nothing dispatches).
            if (!cfg_.dispatchContiguous && t > rrSyncedAt_)
                rrStartCore_ = static_cast<unsigned>(
                    (rrStartCore_ + (t - rrSyncedAt_)) % n);
            dispatchBlocks();
            rrSyncedAt_ = t + 1; // dispatchBlocks rotated once itself
            for (CoreId c : dispatchedScratch_)
                queue_.armEarlier(c, t);
            queue_.arm(dispatchId,
                       dispatchPossible() ? t + 1 : invalidCycle);
        }
        {
            MTP_HOST_SCOPE(hostCores, CoreTick);
            for (CoreId c = 0; c < n; ++c) {
                if (queue_.key(c) > t)
                    continue;
                queue_.notePop();
                Core &core = *cores_[c];
                // Settle the parked window first: its cycles carry the
                // same stall attribution a skipTo() would have applied.
                if (coreSettledTo_[c] < t)
                    core.accountSkip(coreSettledTo_[c], t);
                bool was_busy = !core.idle();
                bool had_capacity = core.hasBlockCapacity();
                ++sched_.coreTicks;
                core.tick(t);
                if (was_busy && core.idle()) {
                    MTP_ASSERT(busyCores_ > 0, "busy-core underflow");
                    --busyCores_;
                }
                coreSettledTo_[c] = t + 1;
                queue_.arm(c, core.nextEventAt(t + 1));
                // Freeing an occupancy slot revives the dispatcher.
                if (!had_capacity && core.hasBlockCapacity() &&
                    blocksPendingFor(c))
                    queue_.armEarlier(dispatchId, t + 1);
            }
        }
        // Cores run before memory within a cycle, so a request pushed
        // into an MRQ this very cycle is visible to the occupancy
        // check — no wake edge needed for core -> mem.
        if (queue_.key(memId) <= t || mem_->mrqOccupancy() > 0) {
            MTP_HOST_SCOPE(hostMem, MemTick);
            queue_.notePop();
            mem_->tickQueued(t);
            for (CoreId c : mem_->deliveredCores())
                queue_.armEarlier(c, t + 1);
            queue_.arm(memId, mem_->nextSelfEventAt(t + 1));
        }
        if ((t & 127) == 0) {
            for (auto &core : cores_) {
                unsigned a = core->activeWarps();
                if (a > 0) {
                    activeWarpSum_ += a;
                    ++activeWarpSamples_;
                }
            }
#if MTP_OBS_ENABLED
            obs::FlightRecorder::beat();
            gCycle.set(t);
#endif
        }
#if MTP_OBS_ENABLED
        if (obs_ && queue_.key(samplerId) <= t) {
            MTP_HOST_SCOPE(hostSample, Sample);
            queue_.notePop();
            // Sample rows read per-core cycle-accounting counters, which
            // this loop attributes lazily; settle every parked core's
            // window through this cycle (the attribution is the same
            // split its no-op ticks would have recorded) so the row
            // matches the naive loop's end-of-cycle state.
            for (CoreId c = 0; c < n; ++c) {
                if (coreSettledTo_[c] <= t) {
                    cores_[c]->accountSkip(coreSettledTo_[c], t + 1);
                    coreSettledTo_[c] = t + 1;
                }
            }
            obs_->sampler().sample(t);
            obs_->recordHostSync(t);
            queue_.arm(samplerId, obs_->sampler().nextSampleAt());
        }
#endif
        now_ = t + 1;
        if (done())
            break;
        {
            MTP_HOST_SCOPE(hostSkip, HorizonSkip);
            // Jump straight to the earliest armed event. Capping at
            // maxCycles keeps the deadlock diagnostic identical.
            ++sched_.skipAttempts;
            Cycle next = queue_.earliest();
            Cycle target = std::min(next, cfg_.maxCycles);
            if (target > now_) {
                bulkWarpSamples(now_, target);
                sched_.cyclesSkipped += target - now_;
                ++sched_.skipSuccesses;
                now_ = target;
            }
        }
    }
    // Settle every core's trailing parked window so summarize()'s
    // cycle-accounting verification sees all elapsed cycles attributed.
    for (CoreId c = 0; c < n; ++c)
        if (coreSettledTo_[c] < now_)
            cores_[c]->accountSkip(coreSettledTo_[c], now_);
#if MTP_OBS_ENABLED
    obs::FlightRecorder::releaseGauge(gCycle);
#endif
}

namespace {

// EpochBarrier commands: the cycle to execute, tagged with the phase.
constexpr std::uint64_t kCmdCoreTick = 0;
constexpr std::uint64_t kCmdMemTick = 1;
constexpr std::uint64_t kCmdExit = 2;

inline std::uint64_t
encodeCmd(Cycle t, std::uint64_t op)
{
    return (static_cast<std::uint64_t>(t) << 2) | op;
}

} // namespace

void
Gpu::shardCoreTick(unsigned s, Cycle t)
{
    ShardState &sh = shards_[s];
    EventQueue &q = sh.queue;
    unsigned busy_delta = 0;
    bool wake = false;
    // The exact per-core body of runQueued()'s core phase, restricted
    // to the owned range: everything it touches — the core, its MRQ,
    // its settle cursor, its queue slot — is shard-local; the issue()
    // counters it bumps are relaxed atomics (commutative sums).
    for (CoreId c = sh.coreLo; c < sh.coreHi; ++c) {
        if (q.key(c - sh.coreLo) > t)
            continue;
        q.notePop();
        Core &core = *cores_[c];
        if (coreSettledTo_[c] < t)
            core.accountSkip(coreSettledTo_[c], t);
        bool was_busy = !core.idle();
        bool had_capacity = core.hasBlockCapacity();
        ++sh.coreTicks;
        core.tick(t);
        if (was_busy && core.idle())
            ++busy_delta;
        coreSettledTo_[c] = t + 1;
        q.arm(c - sh.coreLo, core.nextEventAt(t + 1));
        if (!had_capacity && core.hasBlockCapacity() &&
            blocksPendingFor(c))
            wake = true;
    }
    sh.busyDelta = busy_delta;
    sh.wakeDispatch = wake;
}

void
Gpu::shardMemTick(unsigned s, Cycle t)
{
    const ShardState &sh = shards_[s];
    if (sh.chanLo < sh.chanHi)
        mem_->tickShardChannels(sh.chanLo, sh.chanHi, t);
}

void
Gpu::shardWorker(unsigned s)
{
    // Workers serve shards 1..S-1; barrier slot ids are 0-based.
    const unsigned slot = s - 1;
#if MTP_OBS_ENABLED
    const bool hp = obs::HostProfiler::enabled();
    if (hp)
        obs::HostProfiler::nameThread(
            ("shard" + std::to_string(s)).c_str());
    // Liveness gauge: the last epoch cycle this shard started work on.
    obs::FlightRecorder::Gauge gCycle = obs::FlightRecorder::acquireGauge(
        "run" + std::to_string(hostRunSeq_) + ".shard" +
        std::to_string(s) + ".cycle");
#endif
    for (;;) {
        std::uint64_t cmd;
        {
            MTP_HOST_SCOPE(hostWait, BarrierWait);
            cmd = barrier_->awaitCommand(slot);
        }
        Cycle t = static_cast<Cycle>(cmd >> 2);
#if MTP_OBS_ENABLED
        gCycle.set(static_cast<std::uint64_t>(t));
#endif
        switch (cmd & 3) {
          case kCmdCoreTick: {
            MTP_HOST_SCOPE(hostCore, CoreTick);
            shardCoreTick(s, t);
            break;
          }
          case kCmdMemTick: {
            MTP_HOST_SCOPE(hostMem, MemTick);
            shardMemTick(s, t);
            break;
          }
          default:
#if MTP_OBS_ENABLED
            obs::FlightRecorder::releaseGauge(gCycle);
#endif
            return;
        }
        barrier_->arrive(slot);
    }
}

void
Gpu::runSharded(unsigned numShards)
{
    const auto n = static_cast<unsigned>(cores_.size());
    const unsigned S = numShards;
    const unsigned C = mem_->numChannels();
    MTP_ASSERT(S > 1 && S <= n, "bad shard count ", S);

    // Coordinator queue slots; cores live in the shard queues.
    constexpr std::size_t memId = 0;
    constexpr std::size_t dispatchId = 1;
    constexpr std::size_t samplerId = 2;
    queue_.reset(3);
    coreSettledTo_.assign(n, 0);
    rrSyncedAt_ = 0;
    queue_.arm(samplerId, invalidCycle);
#if MTP_OBS_ENABLED
    if (obs_)
        queue_.arm(samplerId, obs_->sampler().nextSampleAt());
#endif

    // Balanced contiguous partitions; trailing shards may own zero
    // channels when C < S (their mem phase is then a no-op).
    shards_.assign(S, ShardState{});
    shardOfCore_.assign(n, 0);
    for (unsigned s = 0; s < S; ++s) {
        ShardState &sh = shards_[s];
        sh.coreLo = n * s / S;
        sh.coreHi = n * (s + 1) / S;
        sh.chanLo = C * s / S;
        sh.chanHi = C * (s + 1) / S;
        sh.queue.reset(sh.coreHi - sh.coreLo); // all due at cycle 0
        for (CoreId c = sh.coreLo; c < sh.coreHi; ++c)
            shardOfCore_[c] = s;
    }
#if MTP_OBS_ENABLED
    const bool hp = obs::HostProfiler::enabled();
    hostRunSeq_ = nextHostRunSeq(); // before workers read it
    obs::FlightRecorder::Gauge gCycle = obs::FlightRecorder::acquireGauge(
        "run" + std::to_string(hostRunSeq_) + ".cycle");
    obs::FlightRecorder::Gauge gEpoch = obs::FlightRecorder::acquireGauge(
        "run" + std::to_string(hostRunSeq_) + ".epoch");
#endif
    barrier_ = std::make_unique<EpochBarrier>(S - 1);
    workers_.clear();
    workers_.reserve(S - 1);
    for (unsigned s = 1; s < S; ++s)
        workers_.emplace_back([this, s] { shardWorker(s); });

    while (!done()) {
        if (now_ >= cfg_.maxCycles)
            MTP_FATAL("simulation of '", kernel_.name, "' exceeded ",
                      cfg_.maxCycles, " cycles; likely deadlock or ",
                      "an unreasonable configuration");
        const Cycle t = now_;
        ++sched_.cyclesStepped;
#if MTP_SLOW_CHECKS
        // Same parked-component invariants as runQueued(); checked at
        // the coordinator while every worker is parked at the barrier.
        for (CoreId c = 0; c < n; ++c) {
            const ShardState &sh = shards_[shardOfCore_[c]];
            if (sh.queue.key(c - sh.coreLo) > t)
                MTP_ASSERT(cores_[c]->nextEventAt(t) > t &&
                               mem_->completions(c).empty(),
                           "parked core ", c, " is actionable at ", t);
        }
        MTP_ASSERT(!mem_->hasDeferredUpgrades(),
                   "upgrade mailboxes survived a cycle boundary");
        if (queue_.key(memId) > t)
            MTP_ASSERT(mem_->mrqOccupancy() == 0 &&
                           mem_->nextSelfEventAt(t) > t,
                       "parked memory system is actionable at ", t);
        if (queue_.key(dispatchId) > t)
            MTP_ASSERT(!dispatchPossible(),
                       "parked dispatcher is actionable at ", t);
#endif
        // Dispatch stays serial (one shared grid cursor set); it arms
        // dispatched cores on their owning shard's queue.
        if (queue_.key(dispatchId) <= t) {
            MTP_HOST_SCOPE(hostDispatch, Dispatch);
            queue_.notePop();
            if (!cfg_.dispatchContiguous && t > rrSyncedAt_)
                rrStartCore_ = static_cast<unsigned>(
                    (rrStartCore_ + (t - rrSyncedAt_)) % n);
            dispatchBlocks();
            rrSyncedAt_ = t + 1; // dispatchBlocks rotated once itself
            for (CoreId c : dispatchedScratch_) {
                ShardState &sh = shards_[shardOfCore_[c]];
                sh.queue.armEarlier(c - sh.coreLo, t);
            }
            queue_.arm(dispatchId,
                       dispatchPossible() ? t + 1 : invalidCycle);
        }
        // Core phase: every shard in parallel, coordinator as shard 0.
        {
            MTP_HOST_SCOPE(hostCores, CoreTick);
            barrier_->release(encodeCmd(t, kCmdCoreTick));
            shardCoreTick(0, t);
            {
                MTP_HOST_SCOPE(hostWait, BarrierWait);
                barrier_->awaitAll();
            }
        }
        for (ShardState &sh : shards_) {
            MTP_ASSERT(busyCores_ >= sh.busyDelta, "busy-core underflow");
            busyCores_ -= sh.busyDelta;
            if (sh.wakeDispatch)
                queue_.armEarlier(dispatchId, t + 1);
        }
        // Mem phase: the runQueued() gate plus deferred upgrades —
        // running it then is a no-op except the upgrade application
        // (which the serial loop performed inside this same cycle).
        if (queue_.key(memId) <= t || mem_->mrqOccupancy() > 0 ||
            mem_->hasDeferredUpgrades()) {
            queue_.notePop();
            {
                MTP_HOST_SCOPE(hostMem, MemTick);
                barrier_->release(encodeCmd(t, kCmdMemTick));
                shardMemTick(0, t);
                {
                    MTP_HOST_SCOPE(hostWait, BarrierWait);
                    barrier_->awaitAll();
                }
            }
            {
                MTP_HOST_SCOPE(hostDrain, MailboxDrain);
                mem_->finishShardedTick(t);
            }
            for (CoreId c : mem_->deliveredCores()) {
                ShardState &sh = shards_[shardOfCore_[c]];
                sh.queue.armEarlier(c - sh.coreLo, t + 1);
            }
            queue_.arm(memId, mem_->nextSelfEventAt(t + 1));
        }
        if ((t & 127) == 0) {
            for (auto &core : cores_) {
                unsigned a = core->activeWarps();
                if (a > 0) {
                    activeWarpSum_ += a;
                    ++activeWarpSamples_;
                }
            }
        }
#if MTP_OBS_ENABLED
        if (obs_ && queue_.key(samplerId) <= t) {
            MTP_HOST_SCOPE(hostSample, Sample);
            queue_.notePop();
            for (CoreId c = 0; c < n; ++c) {
                if (coreSettledTo_[c] <= t) {
                    cores_[c]->accountSkip(coreSettledTo_[c], t + 1);
                    coreSettledTo_[c] = t + 1;
                }
            }
            obs_->sampler().sample(t);
            obs_->recordHostSync(t);
            queue_.arm(samplerId, obs_->sampler().nextSampleAt());
        }
#endif
        now_ = t + 1;
        bool finished = done();
        if (!finished) {
            MTP_HOST_SCOPE(hostSkip, HorizonSkip);
            // Jump to the joint cross-shard horizon: the earliest
            // armed cycle over the coordinator queue and every shard
            // queue. No component of any shard can act before it, so
            // the whole window is barrier-free.
            ++sched_.skipAttempts;
            Cycle next = queue_.earliest();
            for (ShardState &sh : shards_)
                next = std::min(next, sh.queue.earliest());
            Cycle target = std::min(next, cfg_.maxCycles);
            if (target > now_) {
                bulkWarpSamples(now_, target);
                sched_.cyclesSkipped += target - now_;
                ++sched_.skipSuccesses;
                now_ = target;
            }
        }
        ++epochCount_;
        const Cycle len = now_ - t;
        epochCycleSum_ += len;
        if (len > epochCycleMax_)
            epochCycleMax_ = len;
#if MTP_OBS_ENABLED
        // Liveness: one beat per epoch — a hung epoch (a worker stuck
        // in a phase, a lost wakeup) freezes the beat counter and the
        // watchdog dumps these gauges.
        obs::FlightRecorder::beat();
        gCycle.set(static_cast<std::uint64_t>(now_));
        gEpoch.set(epochCount_);
#endif
        if (finished)
            break;
    }
    // Park the workers for good, then settle trailing core windows.
    barrier_->release(encodeCmd(now_, kCmdExit));
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    for (CoreId c = 0; c < n; ++c)
        if (coreSettledTo_[c] < now_)
            cores_[c]->accountSkip(coreSettledTo_[c], now_);
#if MTP_OBS_ENABLED
    obs::FlightRecorder::releaseGauge(gCycle);
    obs::FlightRecorder::releaseGauge(gEpoch);
#endif
}

RunResult
Gpu::summarize() const
{
#if MTP_OBS_ENABLED
    obs::HostScope hostScope(obs::HostPhase::Summarize);
#endif
    RunResult r;
    r.cycles = now_;
    std::uint64_t demand_count = 0;
    std::uint64_t demand_sum = 0;
    std::uint64_t pref_count = 0;
    std::uint64_t pref_sum = 0;
    for (CoreId id = 0; id < cores_.size(); ++id) {
        const auto &c = cores_[id]->counters();
        r.warpInsts += c.warpInstsIssued;
        r.prefCacheHits += c.prefCacheHitTxns;
        r.demandTxns += c.demandTxns;
        demand_count += c.demandCount;
        demand_sum += c.demandLatencySum;
        pref_count += c.prefCount;
        pref_sum += c.prefLatencySum;
        const auto &pc = cores_[id]->prefCache().counters();
        r.prefFills += pc.fills;
        r.prefUseful += pc.useful;
        r.prefEarlyEvicted += pc.earlyEvictions;
        r.prefLate += cores_[id]->mshr().counters().demandIntoPref;
    }
    r.cpi = r.warpInsts
                ? static_cast<double>(r.cycles) * cfg_.numCores /
                      static_cast<double>(r.warpInsts)
                : 0.0;
    r.avgDemandLatency =
        demand_count ? static_cast<double>(demand_sum) / demand_count
                     : 0.0;
    r.avgPrefetchLatency =
        pref_count ? static_cast<double>(pref_sum) / pref_count : 0.0;
    r.dramBytes = mem_->dramBytes();
    r.avgActiveWarps =
        activeWarpSamples_
            ? static_cast<double>(activeWarpSum_) / activeWarpSamples_
            : 0.0;

    r.stats.add("sim.cycles", static_cast<double>(r.cycles),
                "total execution cycles");
    r.stats.add("sim.warpInsts", static_cast<double>(r.warpInsts),
                "warp instructions issued");
    r.stats.add("sim.cpi", r.cpi, "per-core cycles per warp instruction");
    r.stats.add("sim.avgActiveWarps", r.avgActiveWarps,
                "mean resident warps per busy core");
    r.stats.add("sim.numCores", static_cast<double>(cfg_.numCores),
                "cores simulated");
    // Cycle-accounting invariants (DESIGN.md §9): every elapsed cycle
    // of every core attributed to exactly one category, and the Issued
    // category reconciled against Counters::issueCycles.
    for (const auto &core : cores_)
        core->verifyCycleAccounting(now_);
    for (unsigned k = 0; k < numCycleCats; ++k) {
        auto cat = static_cast<CycleCat>(k);
        std::uint64_t sum = 0;
        for (const auto &core : cores_)
            sum += core->cycleCount(cat);
        r.stats.add(std::string("sim.cycles.") + cycleCatName(cat),
                    static_cast<double>(sum), cycleCatDesc(cat));
    }
    for (CoreId c = 0; c < cores_.size(); ++c)
        cores_[c]->exportStats(r.stats, "core" + std::to_string(c));
    mem_->exportStats(r.stats, "mem");

    // Scheduler introspection: how the host simulated the run. Kept in
    // the separate RunResult::sched set — see its doc comment.
    r.sched.add("sim.sched.cyclesStepped",
                static_cast<double>(sched_.cyclesStepped),
                "cycles executed by the per-cycle loop");
    r.sched.add("sim.sched.cyclesSkipped",
                static_cast<double>(sched_.cyclesSkipped),
                "cycles fast-forwarded without stepping");
    r.sched.add("sim.sched.skipAttempts",
                static_cast<double>(sched_.skipAttempts),
                "fast-forward bound computations");
    r.sched.add("sim.sched.skipSuccesses",
                static_cast<double>(sched_.skipSuccesses),
                "fast-forward jumps that moved the clock");
    // In sharded mode core ticks and queue traffic happen on the
    // per-shard queues; fold them into the run-wide totals.
    std::uint64_t core_ticks = sched_.coreTicks;
    std::uint64_t pushes = queue_.pushes();
    std::uint64_t pops = queue_.pops();
    for (const ShardState &sh : shards_) {
        core_ticks += sh.coreTicks;
        pushes += sh.queue.pushes();
        pops += sh.queue.pops();
    }
    r.sched.add("sim.sched.coreTicks", static_cast<double>(core_ticks),
                "per-core tick() calls executed");
    std::uint64_t elided =
        sched_.cyclesStepped * cores_.size() - core_ticks;
    r.sched.add("sim.sched.coreTicksElided", static_cast<double>(elided),
                "core ticks skipped by the event queue");
    r.sched.add("sim.sched.queuePushes", static_cast<double>(pushes),
                "event-queue arm operations");
    r.sched.add("sim.sched.queuePops", static_cast<double>(pops),
                "event-queue due-component pops");
    r.sched.add("sim.sched.horizonHits",
                static_cast<double>(mem_->horizonHits()),
                "DRAM channel horizon-cache hits");
    r.sched.add("sim.sched.horizonMisses",
                static_cast<double>(mem_->horizonMisses()),
                "DRAM channel horizon-cache recomputes");
    r.sched.add("sim.sched.shards", static_cast<double>(ranShards_),
                "worker shards used by the run loop");
    if (barrier_) {
        r.sched.add("sim.sched.barrierEpochs",
                    static_cast<double>(epochCount_),
                    "epoch-barrier rounds (stepped cycles + skips)");
        double mean = epochCount_ ? static_cast<double>(epochCycleSum_) /
                                        static_cast<double>(epochCount_)
                                  : 0.0;
        r.sched.add("sim.sched.barrierEpochCyclesMean", mean,
                    "mean simulated cycles covered per epoch");
        r.sched.add("sim.sched.barrierEpochCyclesMax",
                    static_cast<double>(epochCycleMax_),
                    "largest simulated-cycle span of one epoch");
        r.sched.add("sim.sched.barrierWaitNs.coordinator",
                    static_cast<double>(barrier_->coordinatorWaitNs()),
                    "coordinator ns blocked awaiting shard arrivals");
        // Spin vs futex-park split (DESIGN.md §12): mostly-spin means
        // shards arrive nearly together; mostly-park means imbalance
        // or an oversubscribed host.
        r.sched.add("sim.sched.barrierSpinNs.coordinator",
                    static_cast<double>(barrier_->coordinatorSpinNs()),
                    "coordinator barrier ns spent busy-polling");
        r.sched.add("sim.sched.barrierParkNs.coordinator",
                    static_cast<double>(barrier_->coordinatorParkNs()),
                    "coordinator barrier ns spent futex-parked");
        std::uint64_t spin = 0, park = 0;
        for (unsigned w = 0; w < barrier_->workers(); ++w) {
            r.sched.add("sim.sched.barrierWaitNs.shard" +
                            std::to_string(w + 1),
                        static_cast<double>(barrier_->workerWaitNs(w)),
                        "shard ns blocked awaiting epoch commands");
            spin += barrier_->workerSpinNs(w);
            park += barrier_->workerParkNs(w);
        }
        r.sched.add("sim.sched.barrierSpinNs.workers",
                    static_cast<double>(spin),
                    "all-shard barrier ns spent busy-polling");
        r.sched.add("sim.sched.barrierParkNs.workers",
                    static_cast<double>(park),
                    "all-shard barrier ns spent futex-parked");
    }
    return r;
}

RunResult
simulate(const SimConfig &cfg, const KernelDesc &kernel)
{
    Gpu gpu(cfg, kernel);
    return gpu.run();
}

RunResult
simulate(const SimConfig &cfg, const KernelDesc &kernel,
         const obs::ObsConfig &ocfg)
{
#if MTP_OBS_ENABLED
    if (ocfg.enabled()) {
        obs::Observer observer(ocfg);
        Gpu gpu(cfg, kernel, &observer);
        return gpu.run();
    }
#else
    (void)ocfg;
#endif
    return simulate(cfg, kernel);
}

} // namespace mtp
