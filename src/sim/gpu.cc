#include "sim/gpu.hh"

#include <algorithm>

#include "common/log.hh"

namespace mtp {

Gpu::Gpu(const SimConfig &cfg, const KernelDesc &kernel,
         obs::Observer *obs)
    : cfg_(cfg), kernel_(kernel)
{
    cfg_.validate();
    if (!kernel_.finalized())
        kernel_.finalize();
    mem_ = std::make_unique<MemSystem>(cfg_);
    cores_.reserve(cfg_.numCores);
    for (CoreId c = 0; c < cfg_.numCores; ++c)
        cores_.push_back(std::make_unique<Core>(cfg_, c, &kernel_,
                                                mem_.get()));

    // Contiguous block partitioning: core c executes a consecutive
    // range of block ids, in order. Consecutive blocks therefore run
    // consecutively in time on the same core — the locality
    // inter-thread prefetching depends on (Sec. III-A2: an IP prefetch
    // is wasted exactly when the target warp's block lands on a
    // different core).
    std::uint64_t blocks = kernel_.numBlocks;
    pendingBlocks_ = blocks;
    unsigned n = cfg_.numCores;
    nextBlockOfCore_.resize(n);
    endBlockOfCore_.resize(n);
    for (unsigned c = 0; c < n; ++c) {
        nextBlockOfCore_[c] = blocks * c / n;
        endBlockOfCore_[c] = blocks * (c + 1) / n;
    }
    if (!cfg_.dispatchContiguous) {
        // Round-robin ablation: one shared cursor over the whole grid.
        for (unsigned c = 0; c < n; ++c) {
            nextBlockOfCore_[c] = 0;
            endBlockOfCore_[c] = 0;
        }
        nextBlockOfCore_[0] = 0;
        endBlockOfCore_[0] = blocks;
    }

#if MTP_OBS_ENABLED
    if (!obs && cfg_.throttleEnable && obs::throttleTraceEnvEnabled()) {
        // Legacy MTP_THROTTLE_TRACE alias: throttle period updates to
        // stderr, now as JSONL through the sink API.
        obs::ObsConfig alias;
        alias.throttleToStderr = true;
        ownedObs_ = std::make_unique<obs::Observer>(alias);
        obs = ownedObs_.get();
    }
    if (obs && obs->config().enabled())
        attachObserver(obs);
#else
    (void)obs;
#endif
}

void
Gpu::attachObserver(obs::Observer *obs)
{
    obs_ = obs;
    obs::TraceRecorder *tracer = obs->tracer();
    if (tracer) {
        mem_->setTracer(tracer);
        for (auto &core : cores_)
            core->setTracer(tracer);
    }

    for (CoreId c = 0; c < cores_.size(); ++c)
        obs->declareTrack(obs::trackForCore(c),
                          "core" + std::to_string(c));
    for (unsigned ch = 0; ch < mem_->numChannels(); ++ch)
        obs->declareTrack(obs::trackForChannel(ch),
                          "dram" + std::to_string(ch));
    obs->declareTrack(obs::trackGlobal, "memSystem");

    if (!obs->config().wantsSampling())
        return;

    // Probes close over live component state; every reader is
    // side-effect free, so sampling cannot change simulated results.
    using Kind = obs::Sampler::Kind;
    obs::Sampler &s = obs->sampler();
    for (CoreId c = 0; c < cores_.size(); ++c) {
        std::string p = "core" + std::to_string(c) + ".";
        int pid = obs::trackForCore(c);
        const Core *core = cores_[c].get();
        s.addProbe(p + "ipc", pid, Kind::Rate, [core](Cycle) {
            return static_cast<double>(core->counters().warpInstsIssued);
        });
        const MemSystem *mem = mem_.get();
        s.addProbe(p + "mrqOcc", pid, Kind::Gauge, [mem, c](Cycle) {
            return static_cast<double>(mem->mrq(c).size());
        });
        s.addProbe(p + "mshrOcc", pid, Kind::Gauge, [core](Cycle) {
            return static_cast<double>(core->mshr().size());
        });
        auto fills = [core](Cycle) {
            return static_cast<double>(core->prefCache().counters().fills);
        };
        s.addProbe(
            p + "prefAccuracy", pid, Kind::Ratio,
            [core](Cycle) {
                return static_cast<double>(
                    core->prefCache().counters().useful);
            },
            fills);
        s.addProbe(
            p + "prefLateness", pid, Kind::Ratio,
            [core](Cycle) {
                return static_cast<double>(
                    core->mshr().counters().demandIntoPref);
            },
            fills);
        s.addProbe(
            p + "prefPollution", pid, Kind::Ratio,
            [core](Cycle) {
                return static_cast<double>(
                    core->prefCache().counters().earlyEvictions);
            },
            fills);
        if (core->throttle()) {
            s.addProbe(p + "throttleDegree", pid, Kind::Gauge,
                       [core](Cycle) {
                           return static_cast<double>(
                               core->throttle()->degree());
                       });
        }
        // Cycle-accounting categories as per-period fractions: the
        // delta of each exclusive tally divided by the period, so the
        // nine tracks of one core sum to 1 in every sample row.
        for (unsigned k = 0; k < numCycleCats; ++k) {
            auto cat = static_cast<CycleCat>(k);
            s.addProbe(p + "cycles." + cycleCatName(cat), pid,
                       Kind::Rate, [core, cat](Cycle) {
                           return static_cast<double>(
                               core->cycleCount(cat));
                       });
        }
    }
    for (unsigned ch = 0; ch < mem_->numChannels(); ++ch) {
        std::string p = "dram" + std::to_string(ch) + ".";
        int pid = obs::trackForChannel(ch);
        const DramChannel *channel = &mem_->channel(ch);
        s.addProbe(
            p + "rowHitRate", pid, Kind::Ratio,
            [channel](Cycle) {
                return static_cast<double>(channel->counters().rowHits);
            },
            [channel](Cycle) {
                return static_cast<double>(channel->counters().reads +
                                           channel->counters().writes);
            });
        s.addProbe(p + "blp", pid, Kind::Gauge, [channel](Cycle now) {
            return static_cast<double>(channel->busyBanks(now));
        });
        s.addProbe(p + "bufOcc", pid, Kind::Gauge, [channel](Cycle) {
            return static_cast<double>(channel->bufferOccupancy());
        });
    }
    s.addProbe("mem.injCreditStalls", obs::trackGlobal, Kind::Rate,
               [mem = mem_.get()](Cycle) {
                   return static_cast<double>(mem->injCreditStalls());
               });
    s.start(obs->config().samplePeriod);
}

void
Gpu::dispatchBlocks()
{
    if (!cfg_.dispatchContiguous) {
        // Round-robin ablation: hand the globally next block to each
        // core with a free slot. The scan origin rotates every cycle —
        // a fixed origin would always favour core 0 when blocks are
        // scarce, which is first-fit, not round-robin.
        unsigned n = static_cast<unsigned>(cores_.size());
        for (unsigned k = 0; k < n; ++k) {
            CoreId c = (rrStartCore_ + k) % n;
            if (nextBlockOfCore_[0] < endBlockOfCore_[0] &&
                cores_[c]->hasBlockCapacity()) {
                if (cores_[c]->idle())
                    ++busyCores_;
                cores_[c]->dispatchBlock(nextBlockOfCore_[0]++);
                MTP_ASSERT(pendingBlocks_ > 0, "pending-block underflow");
                --pendingBlocks_;
            }
        }
        rrStartCore_ = (rrStartCore_ + 1) % n;
        return;
    }
    // Each core pulls the next block of its contiguous range (one
    // dispatch per core per cycle).
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (nextBlockOfCore_[c] < endBlockOfCore_[c] &&
            cores_[c]->hasBlockCapacity()) {
            if (cores_[c]->idle())
                ++busyCores_;
            cores_[c]->dispatchBlock(nextBlockOfCore_[c]++);
            MTP_ASSERT(pendingBlocks_ > 0, "pending-block underflow");
            --pendingBlocks_;
        }
    }
}

void
Gpu::step()
{
    dispatchBlocks();
    for (auto &core : cores_) {
        bool was_busy = !core->idle();
        core->tick(now_);
        if (was_busy && core->idle()) {
            MTP_ASSERT(busyCores_ > 0, "busy-core underflow");
            --busyCores_;
        }
    }
    mem_->tick(now_);
    if ((now_ & 127) == 0) {
        for (auto &core : cores_) {
            unsigned a = core->activeWarps();
            if (a > 0) {
                activeWarpSum_ += a;
                ++activeWarpSamples_;
            }
        }
    }
#if MTP_OBS_ENABLED
    // Sample after every component ticked this cycle: the row reflects
    // end-of-cycle state. Reading counters has no side effects, so the
    // step stays bit-identical with sampling on or off.
    if (obs_ && obs_->sampler().due(now_))
        obs_->sampler().sample(now_);
#endif
    ++now_;
}

bool
Gpu::done() const
{
    bool fast = pendingBlocks_ == 0 && busyCores_ == 0 && mem_->drained();
#if MTP_SLOW_CHECKS
    MTP_ASSERT(fast == doneScan(),
               "done() counters disagree with exhaustive scan");
#endif
    return fast;
}

bool
Gpu::doneScan() const
{
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (nextBlockOfCore_[c] < endBlockOfCore_[c])
            return false;
    }
    for (const auto &core : cores_) {
        if (!core->idle())
            return false;
    }
    return mem_->drainedScan();
}

Cycle
Gpu::nextEventAt() const
{
    // A dispatchable block is an immediate event.
    if (pendingBlocks_ > 0) {
        if (!cfg_.dispatchContiguous) {
            for (const auto &core : cores_) {
                if (core->hasBlockCapacity())
                    return now_;
            }
        } else {
            for (CoreId c = 0; c < cores_.size(); ++c) {
                if (nextBlockOfCore_[c] < endBlockOfCore_[c] &&
                    cores_[c]->hasBlockCapacity())
                    return now_;
            }
        }
    }
    Cycle e = mem_->nextEventAt(now_);
    if (e <= now_)
        return now_;
    for (const auto &core : cores_) {
        Cycle c = core->nextEventAt(now_);
        if (c <= now_)
            return now_;
        if (c < e)
            e = c;
    }
#if MTP_OBS_ENABLED
    // Sampling is an observable event: a skip must stop at the next
    // sample boundary so the sampler runs at exactly the same cycles as
    // in the naive loop (invalidCycle when inactive — no effect).
    if (obs_) {
        Cycle sample = obs_->sampler().nextSampleAt();
        if (sample < e)
            e = sample;
    }
#endif
    return e;
}

void
Gpu::skipTo(Cycle target)
{
    MTP_ASSERT(target > now_, "skipTo() not moving forward");
#if MTP_SLOW_CHECKS && MTP_OBS_ENABLED
    if (obs_)
        MTP_ASSERT(target <= obs_->sampler().nextSampleAt(),
                   "cycle skip would jump a sample boundary");
#endif
    // Account for the active-warp samples the skipped per-cycle loop
    // would have taken at each (cycle & 127) == 0 in [now_, target):
    // no component acts in the window, so every sample sees the
    // current state.
    Cycle first = (now_ + 127) & ~Cycle{127};
    if (first < target) {
        std::uint64_t m = (target - 1 - first) / 128 + 1;
        for (const auto &core : cores_) {
            unsigned a = core->activeWarps();
            if (a > 0) {
                activeWarpSum_ += static_cast<std::uint64_t>(a) * m;
                activeWarpSamples_ += m;
            }
        }
    }
    if (!cfg_.dispatchContiguous) {
        // The round-robin dispatch origin rotates every cycle, even
        // when nothing dispatches.
        auto n = static_cast<unsigned>(cores_.size());
        rrStartCore_ = static_cast<unsigned>(
            (rrStartCore_ + (target - now_)) % n);
    }
    // Attribute the skipped cycles of every core to stall categories;
    // the analytic split mirrors the nextEventAt() reasoning that
    // justified the skip.
    for (auto &core : cores_)
        core->accountSkip(now_, target);
    now_ = target;
}

RunResult
Gpu::run()
{
    // Failed skip attempts (an event due this very cycle) back off
    // exponentially so event-dense phases don't pay the bound
    // computation every cycle. Stepping through skippable cycles is
    // exactly what the naive loop does, so attempting less often can
    // never change results — only forgo some speedup.
    unsigned backoff = 0;
    unsigned failedAttempts = 0;
    while (!done()) {
        if (now_ >= cfg_.maxCycles)
            MTP_FATAL("simulation of '", kernel_.name, "' exceeded ",
                      cfg_.maxCycles, " cycles; likely deadlock or ",
                      "an unreasonable configuration");
        step();
        if (cfg_.fastForward && !done()) {
            if (backoff > 0) {
                --backoff;
                continue;
            }
            // Skip cycles in which no component can act. Capping at
            // maxCycles keeps the deadlock diagnostic identical.
            Cycle target = std::min(nextEventAt(), cfg_.maxCycles);
            if (target > now_) {
                skipTo(target);
                failedAttempts = 0;
            } else {
                failedAttempts = std::min(failedAttempts + 1, 3u);
                backoff = 1u << failedAttempts;
            }
        }
    }
    RunResult result = summarize();
#if MTP_OBS_ENABLED
    if (obs_)
        obs_->finish();
#endif
    return result;
}

RunResult
Gpu::summarize() const
{
    RunResult r;
    r.cycles = now_;
    std::uint64_t demand_count = 0;
    std::uint64_t demand_sum = 0;
    std::uint64_t pref_count = 0;
    std::uint64_t pref_sum = 0;
    for (CoreId id = 0; id < cores_.size(); ++id) {
        const auto &c = cores_[id]->counters();
        r.warpInsts += c.warpInstsIssued;
        r.prefCacheHits += c.prefCacheHitTxns;
        r.demandTxns += c.demandTxns;
        demand_count += c.demandCount;
        demand_sum += c.demandLatencySum;
        pref_count += c.prefCount;
        pref_sum += c.prefLatencySum;
        const auto &pc = cores_[id]->prefCache().counters();
        r.prefFills += pc.fills;
        r.prefUseful += pc.useful;
        r.prefEarlyEvicted += pc.earlyEvictions;
        r.prefLate += cores_[id]->mshr().counters().demandIntoPref;
    }
    r.cpi = r.warpInsts
                ? static_cast<double>(r.cycles) * cfg_.numCores /
                      static_cast<double>(r.warpInsts)
                : 0.0;
    r.avgDemandLatency =
        demand_count ? static_cast<double>(demand_sum) / demand_count
                     : 0.0;
    r.avgPrefetchLatency =
        pref_count ? static_cast<double>(pref_sum) / pref_count : 0.0;
    r.dramBytes = mem_->dramBytes();
    r.avgActiveWarps =
        activeWarpSamples_
            ? static_cast<double>(activeWarpSum_) / activeWarpSamples_
            : 0.0;

    r.stats.add("sim.cycles", static_cast<double>(r.cycles),
                "total execution cycles");
    r.stats.add("sim.warpInsts", static_cast<double>(r.warpInsts),
                "warp instructions issued");
    r.stats.add("sim.cpi", r.cpi, "per-core cycles per warp instruction");
    r.stats.add("sim.avgActiveWarps", r.avgActiveWarps,
                "mean resident warps per busy core");
    r.stats.add("sim.numCores", static_cast<double>(cfg_.numCores),
                "cores simulated");
    // Cycle-accounting invariants (DESIGN.md §9): every elapsed cycle
    // of every core attributed to exactly one category, and the Issued
    // category reconciled against Counters::issueCycles.
    for (const auto &core : cores_)
        core->verifyCycleAccounting(now_);
    for (unsigned k = 0; k < numCycleCats; ++k) {
        auto cat = static_cast<CycleCat>(k);
        std::uint64_t sum = 0;
        for (const auto &core : cores_)
            sum += core->cycleCount(cat);
        r.stats.add(std::string("sim.cycles.") + cycleCatName(cat),
                    static_cast<double>(sum), cycleCatDesc(cat));
    }
    for (CoreId c = 0; c < cores_.size(); ++c)
        cores_[c]->exportStats(r.stats, "core" + std::to_string(c));
    mem_->exportStats(r.stats, "mem");
    return r;
}

RunResult
simulate(const SimConfig &cfg, const KernelDesc &kernel)
{
    Gpu gpu(cfg, kernel);
    return gpu.run();
}

RunResult
simulate(const SimConfig &cfg, const KernelDesc &kernel,
         const obs::ObsConfig &ocfg)
{
#if MTP_OBS_ENABLED
    if (ocfg.enabled()) {
        obs::Observer observer(ocfg);
        Gpu gpu(cfg, kernel, &observer);
        return gpu.run();
    }
#else
    (void)ocfg;
#endif
    return simulate(cfg, kernel);
}

} // namespace mtp
