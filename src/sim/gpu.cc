#include "sim/gpu.hh"

#include "common/log.hh"

namespace mtp {

Gpu::Gpu(const SimConfig &cfg, const KernelDesc &kernel)
    : cfg_(cfg), kernel_(kernel)
{
    cfg_.validate();
    if (!kernel_.finalized())
        kernel_.finalize();
    mem_ = std::make_unique<MemSystem>(cfg_);
    cores_.reserve(cfg_.numCores);
    for (CoreId c = 0; c < cfg_.numCores; ++c)
        cores_.push_back(std::make_unique<Core>(cfg_, c, &kernel_,
                                                mem_.get()));

    // Contiguous block partitioning: core c executes a consecutive
    // range of block ids, in order. Consecutive blocks therefore run
    // consecutively in time on the same core — the locality
    // inter-thread prefetching depends on (Sec. III-A2: an IP prefetch
    // is wasted exactly when the target warp's block lands on a
    // different core).
    std::uint64_t blocks = kernel_.numBlocks;
    unsigned n = cfg_.numCores;
    nextBlockOfCore_.resize(n);
    endBlockOfCore_.resize(n);
    for (unsigned c = 0; c < n; ++c) {
        nextBlockOfCore_[c] = blocks * c / n;
        endBlockOfCore_[c] = blocks * (c + 1) / n;
    }
    if (!cfg_.dispatchContiguous) {
        // Round-robin ablation: one shared cursor over the whole grid.
        for (unsigned c = 0; c < n; ++c) {
            nextBlockOfCore_[c] = 0;
            endBlockOfCore_[c] = 0;
        }
        nextBlockOfCore_[0] = 0;
        endBlockOfCore_[0] = blocks;
    }
}

void
Gpu::dispatchBlocks()
{
    if (!cfg_.dispatchContiguous) {
        // Round-robin ablation: hand the globally next block to each
        // core with a free slot. The scan origin rotates every cycle —
        // a fixed origin would always favour core 0 when blocks are
        // scarce, which is first-fit, not round-robin.
        unsigned n = static_cast<unsigned>(cores_.size());
        for (unsigned k = 0; k < n; ++k) {
            CoreId c = (rrStartCore_ + k) % n;
            if (nextBlockOfCore_[0] < endBlockOfCore_[0] &&
                cores_[c]->hasBlockCapacity())
                cores_[c]->dispatchBlock(nextBlockOfCore_[0]++);
        }
        rrStartCore_ = (rrStartCore_ + 1) % n;
        return;
    }
    // Each core pulls the next block of its contiguous range (one
    // dispatch per core per cycle).
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (nextBlockOfCore_[c] < endBlockOfCore_[c] &&
            cores_[c]->hasBlockCapacity())
            cores_[c]->dispatchBlock(nextBlockOfCore_[c]++);
    }
}

void
Gpu::step()
{
    dispatchBlocks();
    for (auto &core : cores_)
        core->tick(now_);
    mem_->tick(now_);
    if ((now_ & 127) == 0) {
        for (auto &core : cores_) {
            unsigned a = core->activeWarps();
            if (a > 0) {
                activeWarpSum_ += a;
                ++activeWarpSamples_;
            }
        }
    }
    ++now_;
}

bool
Gpu::done() const
{
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (nextBlockOfCore_[c] < endBlockOfCore_[c])
            return false;
    }
    for (const auto &core : cores_) {
        if (!core->idle())
            return false;
    }
    return mem_->drained();
}

RunResult
Gpu::run()
{
    while (!done()) {
        if (now_ >= cfg_.maxCycles)
            MTP_FATAL("simulation of '", kernel_.name, "' exceeded ",
                      cfg_.maxCycles, " cycles; likely deadlock or ",
                      "an unreasonable configuration");
        step();
    }
    return summarize();
}

RunResult
Gpu::summarize() const
{
    RunResult r;
    r.cycles = now_;
    std::uint64_t demand_count = 0;
    std::uint64_t demand_sum = 0;
    std::uint64_t pref_count = 0;
    std::uint64_t pref_sum = 0;
    for (CoreId id = 0; id < cores_.size(); ++id) {
        const auto &c = cores_[id]->counters();
        r.warpInsts += c.warpInstsIssued;
        r.prefCacheHits += c.prefCacheHitTxns;
        r.demandTxns += c.demandTxns;
        demand_count += c.demandCount;
        demand_sum += c.demandLatencySum;
        pref_count += c.prefCount;
        pref_sum += c.prefLatencySum;
        const auto &pc = cores_[id]->prefCache().counters();
        r.prefFills += pc.fills;
        r.prefUseful += pc.useful;
        r.prefEarlyEvicted += pc.earlyEvictions;
        r.prefLate += cores_[id]->mshr().counters().demandIntoPref;
    }
    r.cpi = r.warpInsts
                ? static_cast<double>(r.cycles) * cfg_.numCores /
                      static_cast<double>(r.warpInsts)
                : 0.0;
    r.avgDemandLatency =
        demand_count ? static_cast<double>(demand_sum) / demand_count
                     : 0.0;
    r.avgPrefetchLatency =
        pref_count ? static_cast<double>(pref_sum) / pref_count : 0.0;
    r.dramBytes = mem_->dramBytes();
    r.avgActiveWarps =
        activeWarpSamples_
            ? static_cast<double>(activeWarpSum_) / activeWarpSamples_
            : 0.0;

    r.stats.add("sim.cycles", static_cast<double>(r.cycles),
                "total execution cycles");
    r.stats.add("sim.warpInsts", static_cast<double>(r.warpInsts),
                "warp instructions issued");
    r.stats.add("sim.cpi", r.cpi, "per-core cycles per warp instruction");
    r.stats.add("sim.avgActiveWarps", r.avgActiveWarps,
                "mean resident warps per busy core");
    for (CoreId c = 0; c < cores_.size(); ++c)
        cores_[c]->exportStats(r.stats, "core" + std::to_string(c));
    mem_->exportStats(r.stats, "mem");
    return r;
}

RunResult
simulate(const SimConfig &cfg, const KernelDesc &kernel)
{
    Gpu gpu(cfg, kernel);
    return gpu.run();
}

} // namespace mtp
