/**
 * @file
 * Hardware warp state: the per-warp cursor into the kernel program plus
 * the scoreboard that lets a warp run ahead of its own outstanding
 * memory requests until a dependent instruction is reached (Sec. II-B1).
 */

#ifndef MTP_SIM_WARP_HH
#define MTP_SIM_WARP_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "trace/kernel.hh"

namespace mtp {

/** One hardware warp slot of a core. */
struct Warp
{
    WarpCursor cursor;        //!< position in the kernel program
    GlobalWarpId globalWid = 0; //!< grid-wide warp id
    std::uint64_t lane0Tid = 0; //!< global thread id of lane 0
    BlockId block = 0;        //!< grid block this warp belongs to
    Cycle readyAt = 0;        //!< earliest cycle the next inst may issue
    bool active = false;      //!< slot holds a live warp
    bool branchWait = false;  //!< current readyAt wait is a branch bubble

    /** In-flight loads per value slot (scoreboard). */
    std::array<std::uint8_t, numValueSlots> outstanding{};

    /** Slots whose latest writer is a binding register prefetch. */
    std::array<bool, numValueSlots> relaxedSlot{};

    /** @return total in-flight loads of this warp. */
    unsigned
    outstandingTotal() const
    {
        unsigned n = 0;
        for (auto v : outstanding)
            n += v;
        return n;
    }

    /**
     * Scoreboard check: can @p inst issue now? A source slot blocks
     * issue while it has outstanding writers, except that a consumer of
     * a register-prefetched (binding, one-iteration-ahead) load
     * tolerates a single in-flight writer — it consumes the value the
     * previous iteration loaded.
     */
    bool
    depsReady(const StaticInst &inst) const
    {
        for (auto s : inst.srcSlots) {
            if (s < 0)
                continue;
            unsigned limit = relaxedSlot[static_cast<unsigned>(s)] ? 1 : 0;
            if (outstanding[static_cast<unsigned>(s)] > limit)
                return false;
        }
        return true;
    }

    /**
     * Full scoreboard check: may @p inst issue now, ignoring time
     * (readyAt) and structural (LSU busy) hazards? Combines depsReady()
     * with the write-after-write rule: a second write to a value slot
     * waits for the first, except the one-deep pipelining of binding
     * register prefetches. This predicate depends only on per-warp
     * scoreboard state, so the core caches it per warp and refreshes it
     * exactly where that state changes.
     */
    bool
    canIssue(const StaticInst &inst) const
    {
        if (!depsReady(inst))
            return false;
        if (inst.destSlot >= 0) {
            auto s = static_cast<unsigned>(inst.destSlot);
            unsigned waw_limit = inst.regPrefetch ? 1 : 0;
            if (outstanding[s] > waw_limit)
                return false;
        }
        return true;
    }

    /** @return true iff the warp finished its program and drained. */
    bool
    retirable() const
    {
        return active && cursor.done() && outstandingTotal() == 0;
    }

    /** Reset the slot for a fresh warp. */
    void
    assign(const KernelDesc *kernel, GlobalWarpId gwid, BlockId blk)
    {
        cursor = WarpCursor(kernel);
        globalWid = gwid;
        lane0Tid = gwid * warpSize;
        block = blk;
        readyAt = 0;
        active = true;
        branchWait = false;
        outstanding.fill(0);
        relaxedSlot.fill(false);
    }
};

} // namespace mtp

#endif // MTP_SIM_WARP_HH
