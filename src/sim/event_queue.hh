/**
 * @file
 * Scheduling infrastructure for the event-queue cycle loop (DESIGN.md
 * §7): an indexed priority structure over the GPU's components plus
 * the backoff policy the legacy polling loop uses between failed skip
 * attempts.
 */

#ifndef MTP_SIM_EVENT_QUEUE_HH
#define MTP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace mtp {

/**
 * Indexed min-priority queue over a fixed, small set of component ids,
 * keyed by the cycle at which each component next needs to tick
 * (invalidCycle = parked). Components re-arm themselves after every
 * tick and are armed earlier by cross-component wakeups (a completion
 * delivery, a block dispatch, a freed occupancy slot).
 *
 * The id universe is tiny (cores + mem + dispatcher + sampler, a few
 * dozen entries), and in event-dense phases most components re-arm
 * every cycle — a binary heap would churn O(log n) per re-arm for
 * nothing. Keys therefore live in a flat array (O(1) arm, O(1) key
 * lookup for due checks) with a lazily maintained minimum: arm()
 * keeps the cached min when keys only move down, and earliest() pays
 * one O(n) rescan only after the current minimum was re-armed later —
 * exactly once per stepped cycle in the dense case.
 */
class EventQueue
{
  public:
    /** Reset to @p n components, all armed at cycle 0. */
    void
    reset(std::size_t n)
    {
        keys_.assign(n, 0);
        minKey_ = 0;
        minDirty_ = false;
        pushes_ = 0;
        pops_ = 0;
    }

    std::size_t size() const { return keys_.size(); }

    /** Cycle component @p id is armed for (invalidCycle = parked). */
    Cycle key(std::size_t id) const { return keys_[id]; }

    /** Arm component @p id for cycle @p at (replacing its key). */
    void
    arm(std::size_t id, Cycle at)
    {
        Cycle old = keys_[id];
        if (old == at)
            return;
        keys_[id] = at;
        ++pushes_;
        if (at < minKey_)
            minKey_ = at;
        else if (old <= minKey_)
            minDirty_ = true; // the minimum may have moved later
    }

    /** Arm component @p id no later than cycle @p at. */
    void
    armEarlier(std::size_t id, Cycle at)
    {
        if (at < keys_[id])
            arm(id, at);
    }

    /** Record that a due component was processed (stats only). */
    void notePop() { ++pops_; }

    /** Earliest armed cycle over all components (invalidCycle if all
     *  parked). */
    Cycle
    earliest() const
    {
        if (minDirty_) {
            minKey_ = invalidCycle;
            for (Cycle k : keys_)
                minKey_ = std::min(minKey_, k);
            minDirty_ = false;
        }
#if MTP_SLOW_CHECKS
        Cycle scan = invalidCycle;
        for (Cycle k : keys_)
            scan = std::min(scan, k);
        MTP_ASSERT(scan == minKey_,
                   "EventQueue cached minimum out of sync");
#endif
        return minKey_;
    }

    /** Key updates that changed a component's armed cycle. */
    std::uint64_t pushes() const { return pushes_; }

    /** Due components processed. */
    std::uint64_t pops() const { return pops_; }

  private:
    std::vector<Cycle> keys_;
    mutable Cycle minKey_ = invalidCycle;
    mutable bool minDirty_ = false;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
};

/**
 * Exponential backoff between failed skip attempts of the legacy
 * polling loop: after a failed attempt (the event bound landed on the
 * very next cycle) the loop steps a growing number of cycles before
 * re-evaluating the bound, so event-dense phases don't pay the O(n)
 * poll every cycle. The exponent is capped — an unbounded
 * `1u << failures` shifts past the width of unsigned on long dense
 * runs, which is undefined behaviour — and stepping through skippable
 * cycles is exactly what the naive loop does, so backing off can never
 * change results, only forgo some speedup.
 */
class SkipBackoff
{
  public:
    /** Largest exponent: pauses cap at 2^maxExponent cycles. */
    static constexpr unsigned maxExponent = 3;

    /**
     * @return true when the loop should evaluate the event bound this
     * cycle; false consumes one cycle of the current pause.
     */
    bool
    shouldAttempt()
    {
        if (pause_ > 0) {
            --pause_;
            return false;
        }
        return true;
    }

    /** A skip succeeded: reset the pause schedule. */
    void
    noteSuccess()
    {
        failures_ = 0;
        pause_ = 0;
    }

    /** A skip attempt failed: back off exponentially (capped). */
    void
    noteFailure()
    {
        failures_ = std::min(failures_ + 1, maxExponent);
        pause_ = 1u << failures_;
    }

    /** Cycles left in the current pause (exposed for tests). */
    unsigned pause() const { return pause_; }

  private:
    unsigned failures_ = 0;
    unsigned pause_ = 0;
};

} // namespace mtp

#endif // MTP_SIM_EVENT_QUEUE_HH
