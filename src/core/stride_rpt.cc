#include "core/stride_rpt.hh"

namespace mtp {

StrideRptPrefetcher::StrideRptPrefetcher(const SimConfig &cfg)
    : HwPrefetcher(cfg),
      regionBits_(cfg.strideRptRegionBits),
      table_(cfg.strideRptEntries)
{
}

void
StrideRptPrefetcher::observe(const PrefObservation &obs,
                             std::vector<Addr> &out)
{
    ++counters_.observations;
    // The region plays the role of the PC in the PcWid key.
    PcWid key{regionOf(obs.leadAddr), warpTraining_ ? obs.hwWid : 0u};
    auto &entry = table_.findOrInsert(key);
    Stride stride = StridePcPrefetcher::train(entry, obs.leadAddr);
    if (stride != 0) {
        ++counters_.trainedHits;
        emitStride(obs, stride, out);
    }
}

std::string
StrideRptPrefetcher::name() const
{
    return warpTraining_ ? "stride_rpt.warp" : "stride_rpt";
}

void
StrideRptPrefetcher::exportStats(StatSet &set,
                                 const std::string &prefix) const
{
    HwPrefetcher::exportStats(set, prefix);
    set.add(prefix + ".tableEvictions",
            static_cast<double>(table_.evictions()),
            "region entries evicted (LRU)");
}

} // namespace mtp
