/**
 * @file
 * Global History Buffer prefetcher, AC/DC organization (Table V, after
 * Nesbit & Smith): an n-entry FIFO of recent access addresses with
 * per-CZone link pointers, plus an index table mapping CZone tags to
 * the newest entry of each zone's chain. Prediction is by delta
 * correlation with a constant-stride fallback.
 *
 * The optional feedback mode (GHB+F, Fig. 15) adjusts the prefetch
 * degree from the measured prefetch accuracy, after Srinath et al.
 */

#ifndef MTP_CORE_GHB_HH
#define MTP_CORE_GHB_HH

#include <cstdint>
#include <vector>

#include "core/lru_table.hh"
#include "core/prefetcher.hh"

namespace mtp {

/** GHB AC/DC prefetcher with optional accuracy feedback. */
class GhbPrefetcher : public HwPrefetcher
{
  public:
    explicit GhbPrefetcher(const SimConfig &cfg);

    void observe(const PrefObservation &obs,
                 std::vector<Addr> &out) override;

    /** GHB+F: grow the degree when accuracy is high, shrink when low. */
    void feedback(double accuracy, double lateFraction) override;

    std::string name() const override;

    void exportStats(StatSet &set, const std::string &prefix) const override;

    /** History addresses examined per prediction. */
    static constexpr unsigned historyLen = 8;
    /** Feedback degree bounds (Srinath-style aggressiveness levels). */
    static constexpr unsigned minDegree = 1;
    static constexpr unsigned maxDegree = 4;
    /** Feedback accuracy thresholds. */
    static constexpr double accHigh = 0.5;
    static constexpr double accLow = 0.2;

  private:
    /** One FIFO slot. */
    struct GhbEntry
    {
        Addr addr = 0;
        std::uint64_t prevPos = 0; //!< absolute position of chain predecessor
        bool hasPrev = false;
    };

    /** CZone tag of an address (czoneBits wide, 64 KB zones). */
    std::uint64_t czoneOf(Addr addr) const;

    bool feedbackEnabled_;
    unsigned czoneBits_;
    std::vector<GhbEntry> fifo_;
    std::uint64_t pos_ = 0; //!< absolute position of the next slot
    LruTable<PcWid, std::uint64_t, PcWidHash> index_;
    std::uint64_t deltaCorrelations_ = 0;
    std::uint64_t strideFallbacks_ = 0;

    /** Address-space shift defining a CZone (64 KB). */
    static constexpr unsigned czoneShift = 16;
};

} // namespace mtp

#endif // MTP_CORE_GHB_HH
