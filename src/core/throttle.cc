#include "core/throttle.hh"

#include <algorithm>
#include <limits>

namespace mtp {

ThrottleEngine::ThrottleEngine(const SimConfig &cfg)
    : earlyHigh_(cfg.earlyEvictHigh),
      earlyLow_(cfg.earlyEvictLow),
      mergeHigh_(cfg.mergeHigh),
      degree_(cfg.throttleInitDegree)
{
}

void
ThrottleEngine::updatePeriod(const Snapshot &cumulative, Cycle now)
{
    ++updates_;
    std::uint64_t d_early = cumulative.earlyEvictions - last_.earlyEvictions;
    std::uint64_t d_useful = cumulative.useful - last_.useful;
    std::uint64_t d_fills = cumulative.fills - last_.fills;
    std::uint64_t d_merges = (cumulative.merges + cumulative.prefCacheHits) -
                             (last_.merges + last_.prefCacheHits);
    std::uint64_t d_total =
        (cumulative.totalRequests + cumulative.prefCacheHits) -
        (last_.totalRequests + last_.prefCacheHits);
    last_ = cumulative;

    // Merge ratio is meaningful with or without prefetch activity;
    // update it every period (Eq. 8: average with the previous value,
    // seeded with the first observation rather than zero).
    double monitored_merge =
        d_total ? static_cast<double>(d_merges) /
                      static_cast<double>(d_total)
                : 0.0;
    curMerge_ = updates_ == 1 ? monitored_merge
                              : (curMerge_ + monitored_merge) / 2.0;

    // Emitted after the merge-ratio update and before the Table I
    // decision, exactly where the old stderr hook sat: `degree` is the
    // degree the period ran with, not the one about to be chosen.
    MTP_OBS_HOOK(tracer_,
                 throttleUpdate(coreId_, now, updates_, d_fills, d_early,
                                d_useful, curMerge_, degree_));

    if (d_fills < observableFills || (d_useful == 0 && d_early == 0)) {
        // Too little prefetch flow this period for the early-eviction
        // metric to mean anything — cold start (fills issued but none
        // consumed yet), or the engine throttled everything off. Probe:
        // walk the degree down so flow returns and a later period can
        // be judged on real data. Each time the heuristics re-confirm
        // that prefetching is harmful the probe interval doubles, so a
        // persistently bad benchmark is barely perturbed.
        ++idlePeriods_;
        if (++idleSinceProbe_ >= probeBackoff_) {
            idleSinceProbe_ = 0;
            if (degree_ > 0)
                --degree_;
        }
        return;
    }
    idleSinceProbe_ = 0;

    // Eq. 5 / Eq. 7: the monitored early-eviction rate replaces the
    // previous value.
    curEarly_ = d_useful
                    ? static_cast<double>(d_early) /
                          static_cast<double>(d_useful)
                    : (d_early ? std::numeric_limits<double>::infinity()
                               : 0.0);

    // Table I heuristics.
    if (curEarly_ > earlyHigh_) {
        degree_ = noPrefetchDegree; // High -> No Prefetch
        probeBackoff_ = std::min<std::uint64_t>(probeBackoff_ * 2,
                                                maxProbeBackoff);
    } else if (curEarly_ >= earlyLow_) {
        // Medium -> fewer prefetches; but while the merge ratio says
        // the flow is clearly productive, hold instead of ratcheting
        // (throttling itself orphans fills and inflates the early
        // rate, which would otherwise feed back into more throttling).
        if (curMerge_ <= mergeHigh_ && degree_ < noPrefetchDegree)
            ++degree_;
    } else if (curMerge_ > mergeHigh_) {
        if (degree_ > 0) // Low/High -> more prefetches
            --degree_;
        probeBackoff_ = 1; // prefetching confirmed healthy
    } else {
        degree_ = noPrefetchDegree; // Low/Low -> No Prefetch
        probeBackoff_ = std::min<std::uint64_t>(probeBackoff_ * 2,
                                                maxProbeBackoff);
    }
}

bool
ThrottleEngine::shouldDrop()
{
    ++dropCounter_;
    bool drop = (dropCounter_ % noPrefetchDegree) < degree_;
    if (drop)
        ++dropped_;
    else
        ++allowed_;
    return drop;
}

void
ThrottleEngine::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".degree", static_cast<double>(degree_),
            "final throttle degree (0=all prefetches, 5=none)");
    set.add(prefix + ".dropped", static_cast<double>(dropped_),
            "prefetch requests dropped");
    set.add(prefix + ".allowed", static_cast<double>(allowed_),
            "prefetch requests allowed");
    set.add(prefix + ".updates", static_cast<double>(updates_),
            "period updates performed");
    set.add(prefix + ".idlePeriods", static_cast<double>(idlePeriods_),
            "periods without prefetch flow");
    set.add(prefix + ".earlyRate", curEarly_,
            "current early eviction rate (Eq. 5/7)");
    set.add(prefix + ".mergeRatio", curMerge_,
            "current merge ratio (Eq. 6/8)");
}

} // namespace mtp
