/**
 * @file
 * Fixed-capacity fully-associative table with true-LRU replacement —
 * the storage idiom of every prefetcher table in the paper (PWS, GS,
 * IP, RPT, stream and GHB index tables all "use a LRU replacement
 * policy", Sec. III-B1).
 */

#ifndef MTP_CORE_LRU_TABLE_HH
#define MTP_CORE_LRU_TABLE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/log.hh"
#include "common/types.hh"

namespace mtp {

/**
 * LRU-replaced key/value table of fixed capacity.
 *
 * @tparam Key hashable lookup key (e.g. PC, (PC, warp id), region)
 * @tparam Value entry payload
 * @tparam Hash hash functor for Key
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruTable
{
  public:
    explicit LruTable(unsigned capacity) : capacity_(capacity)
    {
        MTP_ASSERT(capacity_ > 0, "LruTable capacity must be > 0");
    }

    /**
     * Look up @p key, making it most-recently-used on a hit.
     * @return pointer to the value or nullptr. Invalidated by the next
     *         findOrInsert()/erase().
     */
    Value *
    find(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /** Look up without touching LRU order or counters. */
    const Value *
    peek(const Key &key) const
    {
        auto it = index_.find(key);
        return it == index_.end() ? nullptr : &it->second->second;
    }

    /**
     * Look up @p key, inserting a default-constructed value (evicting
     * the LRU entry at capacity) on miss.
     * @param inserted set to true iff a new entry was created
     */
    Value &
    findOrInsert(const Key &key, bool *inserted = nullptr)
    {
        if (Value *v = find(key)) {
            if (inserted)
                *inserted = false;
            return *v;
        }
        if (order_.size() >= capacity_) {
            index_.erase(order_.back().first);
            order_.pop_back();
            ++evictions_;
        }
        order_.emplace_front(key, Value{});
        index_[key] = order_.begin();
        if (inserted)
            *inserted = true;
        return order_.front().second;
    }

    /** Remove @p key if present. @return true if removed. */
    bool
    erase(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return false;
        order_.erase(it->second);
        index_.erase(it);
        return true;
    }

    /** Visit every (key, value) pair, most-recent first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &kv : order_)
            fn(kv.first, kv.second);
    }

    std::size_t size() const { return order_.size(); }
    unsigned capacity() const { return capacity_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    void
    clear()
    {
        order_.clear();
        index_.clear();
    }

  private:
    using Entry = std::pair<Key, Value>;
    using Order = std::list<Entry>;

    unsigned capacity_;
    Order order_; //!< front = MRU, back = LRU
    std::unordered_map<Key, typename Order::iterator, Hash> index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

/** Composite (PC, warp id) key for per-warp-trained tables. */
struct PcWid
{
    Pc pc;
    std::uint64_t wid;

    bool
    operator==(const PcWid &o) const
    {
        return pc == o.pc && wid == o.wid;
    }
};

/** Hash for PcWid. */
struct PcWidHash
{
    std::size_t
    operator()(const PcWid &k) const
    {
        return std::hash<std::uint64_t>()(k.pc * 0x9e3779b97f4a7c15ULL ^
                                          k.wid);
    }
};

} // namespace mtp

#endif // MTP_CORE_LRU_TABLE_HH
