/**
 * @file
 * Region-indexed stride prefetcher (Table V "Stride", after Iacobovici
 * et al.): tracks the delta between successive accesses falling in the
 * same memory region rather than the same PC.
 */

#ifndef MTP_CORE_STRIDE_RPT_HH
#define MTP_CORE_STRIDE_RPT_HH

#include "core/lru_table.hh"
#include "core/prefetcher.hh"
#include "core/stride_pc.hh"

namespace mtp {

/** Stride prefetcher trained per memory region. */
class StrideRptPrefetcher : public HwPrefetcher
{
  public:
    explicit StrideRptPrefetcher(const SimConfig &cfg);

    void observe(const PrefObservation &obs,
                 std::vector<Addr> &out) override;

    std::string name() const override;

    void exportStats(StatSet &set, const std::string &prefix) const override;

  private:
    /** Region id of @p addr: the address above regionBits low bits. */
    std::uint64_t regionOf(Addr addr) const { return addr >> regionBits_; }

    unsigned regionBits_;
    LruTable<PcWid, StridePcPrefetcher::Entry, PcWidHash> table_;
};

} // namespace mtp

#endif // MTP_CORE_STRIDE_RPT_HH
