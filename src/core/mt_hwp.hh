/**
 * @file
 * Many-Thread aware Hardware Prefetcher (MT-HWP, Sec. III-B, Fig. 6).
 *
 * Three tables:
 *  - PWS (per-warp stride): a stride RPT indexed by (PC, warp id);
 *  - GS (global stride): PC-indexed strides promoted from the PWS table
 *    once `gsPromoteCount` warps agree on the same stride for a PC —
 *    yet-to-be-trained warps then prefetch immediately and PWS accesses
 *    (and their energy) are saved;
 *  - IP (inter-thread prefetch): PC-indexed cross-warp strides; once
 *    trained, each demand access also prefetches the corresponding
 *    access of a warp `distance` warps ahead.
 *
 * Lookup priority is GS > IP > PWS (Fig. 6: GS and IP are probed in
 * parallel, GS wins ties; PWS is probed only when both miss).
 */

#ifndef MTP_CORE_MT_HWP_HH
#define MTP_CORE_MT_HWP_HH

#include "core/lru_table.hh"
#include "core/prefetcher.hh"
#include "core/stride_pc.hh"

namespace mtp {

/** The paper's MT-HWP with per-table enables for the Fig. 14 ablation. */
class MtHwpPrefetcher : public HwPrefetcher
{
  public:
    /** Which tables are instantiated (ablation knobs). */
    struct Tables
    {
        bool pws = true;
        bool gs = true;
        bool ip = true;
    };

    /** Global-stride table entry. */
    struct GsEntry
    {
        Stride stride = 0;
    };

    /** Inter-thread prefetch table entry (Table VI: PC, stride, train
     *  bit, two warp ids, two addresses). */
    struct IpEntry
    {
        Stride stride = 0;       //!< address delta per +1 warp id
        std::uint64_t lastWid = ~0ULL;
        Addr lastAddr = invalidAddr;
        unsigned conf = 0;
    };

    /** Full MT-HWP: all three tables. */
    explicit MtHwpPrefetcher(const SimConfig &cfg);

    /** Ablation constructor: instantiate only the selected tables. */
    MtHwpPrefetcher(const SimConfig &cfg, Tables tables);

    void observe(const PrefObservation &obs,
                 std::vector<Addr> &out) override;

    std::string name() const override;

    void exportStats(StatSet &set, const std::string &prefix) const override;

    // ---- Table VI hardware cost model --------------------------------

    /** Bits per PWS entry: PC(4B) + wid(1B) + train(1b) + last(4B) +
     *  stride(20b) = 93. */
    static constexpr unsigned pwsEntryBits = 32 + 8 + 1 + 32 + 20;
    /** Bits per GS entry: PC(4B) + stride(20b) = 52. */
    static constexpr unsigned gsEntryBits = 32 + 20;
    /** Bits per IP entry: PC(4B) + stride(20b) + train(1b) + 2 wid(2B) +
     *  2 addr(8B) = 133. */
    static constexpr unsigned ipEntryBits = 32 + 20 + 1 + 16 + 64;

    /** Total storage in bits for a configuration. */
    static std::uint64_t costBits(const SimConfig &cfg);
    /** Total storage in bytes (rounded up). */
    static std::uint64_t costBytes(const SimConfig &cfg);

    // ---- introspection for tests and the ablation bench --------------

    std::uint64_t gsHits() const { return gsHits_; }
    std::uint64_t ipHits() const { return ipHits_; }
    std::uint64_t pwsHits() const { return pwsHits_; }
    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t pwsAccessesSaved() const { return pwsAccessesSaved_; }
    std::uint64_t pwsAccesses() const { return pwsAccesses_; }

    /** @return true iff the IP table holds a trained entry for @p pc. */
    bool ipTrained(Pc pc) const;

    /** @return the GS stride for @p pc, or 0 when absent. */
    Stride gsStride(Pc pc) const;

  private:
    /** Train the IP entry for @p obs (called when GS missed). */
    void trainIp(const PrefObservation &obs);

    /** Promote @p pc's stride to the GS table if enough warps agree. */
    void maybePromote(Pc pc, Stride stride);

    Tables tables_;
    unsigned promoteCount_;
    unsigned ipTrainCount_;
    unsigned ipDistanceWarps_;

    LruTable<PcWid, StridePcPrefetcher::Entry, PcWidHash> pws_;
    LruTable<Pc, GsEntry> gs_;
    LruTable<Pc, IpEntry> ip_;

    std::uint64_t gsHits_ = 0;
    std::uint64_t ipHits_ = 0;
    std::uint64_t pwsHits_ = 0;
    std::uint64_t promotions_ = 0;
    std::uint64_t pwsAccesses_ = 0;
    std::uint64_t pwsAccessesSaved_ = 0;
};

} // namespace mtp

#endif // MTP_CORE_MT_HWP_HH
