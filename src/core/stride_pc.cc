#include "core/stride_pc.hh"

namespace mtp {

StridePcPrefetcher::StridePcPrefetcher(const SimConfig &cfg,
                                       unsigned entries)
    : HwPrefetcher(cfg),
      table_(entries ? entries : cfg.stridePcEntries)
{
}

Stride
StridePcPrefetcher::train(Entry &entry, Addr addr)
{
    if (entry.lastAddr == invalidAddr) {
        entry.lastAddr = addr;
        return 0;
    }
    Stride delta = static_cast<Stride>(addr) -
                   static_cast<Stride>(entry.lastAddr);
    entry.lastAddr = addr;
    if (delta == entry.stride && delta != 0) {
        if (entry.conf < confMax)
            ++entry.conf;
    } else {
        entry.stride = delta;
        entry.conf = delta != 0 ? 1 : 0;
    }
    return entry.conf >= confThreshold ? entry.stride : 0;
}

void
StridePcPrefetcher::observe(const PrefObservation &obs,
                            std::vector<Addr> &out)
{
    ++counters_.observations;
    // Naive indexing ignores the warp id, so interleaved warps train a
    // single entry (Fig. 5 right); enhanced indexing keys on (PC, warp).
    PcWid key{obs.pc, warpTraining_ ? obs.hwWid : 0u};
    Entry &entry = table_.findOrInsert(key);
    Stride stride = train(entry, obs.leadAddr);
    if (stride != 0) {
        ++counters_.trainedHits;
        emitStride(obs, stride, out);
    }
}

std::string
StridePcPrefetcher::name() const
{
    return warpTraining_ ? "stride_pc.warp" : "stride_pc";
}

void
StridePcPrefetcher::exportStats(StatSet &set,
                                const std::string &prefix) const
{
    HwPrefetcher::exportStats(set, prefix);
    set.add(prefix + ".tableEvictions",
            static_cast<double>(table_.evictions()),
            "RPT entries evicted (LRU)");
}

} // namespace mtp
