#include "core/sw_prefetch.hh"

#include "common/log.hh"

namespace mtp {

namespace {

/** @return true iff @p inst is a load a transform may target. */
bool
targetLoad(const StaticInst &inst)
{
    return inst.op == Opcode::Load && inst.swPrefetchable;
}

} // namespace

KernelDesc
applyStridePrefetch(const KernelDesc &kernel, const SwPrefetchOptions &opts)
{
    KernelDesc out = kernel;
    out.name = kernel.name + "+swp_stride";
    for (auto &seg : out.segments) {
        if (!seg.isLoop())
            continue;
        std::vector<StaticInst> body;
        body.reserve(seg.insts.size() * 2);
        for (const auto &inst : seg.insts) {
            if (targetLoad(inst) && inst.pattern.iterStride != 0) {
                body.push_back(StaticInst::prefetch(
                    inst.pattern.shiftedByIters(
                        static_cast<int>(opts.strideDistance))));
            }
            body.push_back(inst);
        }
        seg.insts = std::move(body);
    }
    out.finalize();
    return out;
}

KernelDesc
applyInterThreadPrefetch(const KernelDesc &kernel,
                         const SwPrefetchOptions &opts,
                         bool skipStrideCovered)
{
    KernelDesc out = kernel;
    out.name = kernel.name + "+swp_ip";
    for (auto &seg : out.segments) {
        std::vector<StaticInst> body;
        body.reserve(seg.insts.size() * 2);
        for (const auto &inst : seg.insts) {
            bool covered = skipStrideCovered && seg.isLoop() &&
                           inst.pattern.iterStride != 0;
            // Each prefetch sits right before its load (Fig. 4a): it
            // needs no loaded value, so it issues even when the load
            // itself is waiting on a chained index.
            if (targetLoad(inst) && !covered) {
                body.push_back(StaticInst::prefetch(
                    inst.pattern.shiftedByWarps(
                        static_cast<int>(opts.ipDistanceWarps))));
            }
            body.push_back(inst);
        }
        seg.insts = std::move(body);
    }
    out.finalize();
    return out;
}

KernelDesc
applyRegisterPrefetch(const KernelDesc &kernel,
                      const SwPrefetchOptions &opts)
{
    KernelDesc out = kernel;
    out.name = kernel.name + "+swp_reg";
    for (auto &seg : out.segments) {
        if (!seg.isLoop())
            continue;
        unsigned marked = 0;
        for (auto &inst : seg.insts) {
            if (targetLoad(inst)) {
                inst.regPrefetch = true;
                ++marked;
            }
        }
        // One next-iteration address computation per pipelined load.
        if (marked > 0)
            seg.insts.insert(seg.insts.begin(), StaticInst::comp(marked));
    }
    if (opts.registerBlocksLost > 0) {
        unsigned lost = opts.registerBlocksLost;
        out.maxBlocksPerCore = out.maxBlocksPerCore > lost
                                   ? out.maxBlocksPerCore - lost
                                   : 1;
    }
    out.finalize();
    return out;
}

KernelDesc
applySwPrefetch(const KernelDesc &kernel, SwPrefKind kind,
                const SwPrefetchOptions &opts)
{
    switch (kind) {
      case SwPrefKind::None: {
        KernelDesc out = kernel;
        out.finalize();
        return out;
      }
      case SwPrefKind::Register:
        return applyRegisterPrefetch(kernel, opts);
      case SwPrefKind::Stride:
        return applyStridePrefetch(kernel, opts);
      case SwPrefKind::IP:
        return applyInterThreadPrefetch(kernel, opts);
      case SwPrefKind::StrideIP:
        // MT-SWP: stride prefetching covers loop loads; inter-thread
        // prefetching covers the rest.
        return applyInterThreadPrefetch(applyStridePrefetch(kernel, opts),
                                        opts, /*skipStrideCovered=*/true);
    }
    MTP_PANIC("bad SwPrefKind ", static_cast<int>(kind));
}

} // namespace mtp
