/**
 * @file
 * PC-indexed stride prefetcher (Table V "StridePC", after Chen & Baer
 * and Fu et al.). With warp-id training enabled the table is indexed by
 * (PC, warp id) — which is exactly the PWS (per-warp stride) table of
 * MT-HWP; Sec. VIII-B notes "the enhanced version of StridePC is
 * essentially the same as the PWS table only configuration".
 */

#ifndef MTP_CORE_STRIDE_PC_HH
#define MTP_CORE_STRIDE_PC_HH

#include "core/lru_table.hh"
#include "core/prefetcher.hh"

namespace mtp {

/** Classic two-bit-confidence stride prefetcher, PC(-and-warp) indexed. */
class StridePcPrefetcher : public HwPrefetcher
{
  public:
    /** Reference-prediction-table entry. */
    struct Entry
    {
        Addr lastAddr = invalidAddr;
        Stride stride = 0;
        unsigned conf = 0; //!< consecutive matching deltas (saturates)
    };

    /**
     * @param cfg simulator configuration
     * @param entries table capacity (defaults from cfg when 0)
     */
    explicit StridePcPrefetcher(const SimConfig &cfg, unsigned entries = 0);

    void observe(const PrefObservation &obs,
                 std::vector<Addr> &out) override;

    std::string name() const override;

    void exportStats(StatSet &set, const std::string &prefix) const override;

    /** Confidence needed before prefetches are issued. */
    static constexpr unsigned confThreshold = 2;
    /** Confidence saturation value. */
    static constexpr unsigned confMax = 3;

    /**
     * Train @p entry with a new lead address.
     * @return the entry's stride if it is trained (conf >= threshold)
     *         after the update, otherwise 0.
     *
     * Shared with MT-HWP's PWS table.
     */
    static Stride train(Entry &entry, Addr addr);

    const LruTable<PcWid, Entry, PcWidHash> &table() const
    {
        return table_;
    }

  private:
    LruTable<PcWid, Entry, PcWidHash> table_;
};

} // namespace mtp

#endif // MTP_CORE_STRIDE_PC_HH
