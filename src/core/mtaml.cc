#include "core/mtaml.hh"

#include <limits>

#include "common/log.hh"

namespace mtp {

double
mtaml(const MtamlInputs &in)
{
    if (in.memInsts <= 0.0)
        return std::numeric_limits<double>::infinity();
    double warps = in.activeWarps > 1.0 ? in.activeWarps - 1.0 : 0.0;
    return in.compInsts / in.memInsts * warps;
}

double
mtamlPref(const MtamlInputs &in)
{
    MTP_ASSERT(in.prefHitProb >= 0.0 && in.prefHitProb <= 1.0,
               "prefetch hit probability must be in [0,1]");
    double comp_new = in.compInsts + in.prefHitProb * in.memInsts;
    double mem_new = (1.0 - in.prefHitProb) * in.memInsts;
    if (mem_new <= 0.0)
        return std::numeric_limits<double>::infinity();
    double warps = in.activeWarps > 1.0 ? in.activeWarps - 1.0 : 0.0;
    return comp_new / mem_new * warps;
}

PrefEffect
classify(const MtamlInputs &in, double avgLatency, double avgLatencyPref)
{
    double bar = mtaml(in);
    double bar_pref = mtamlPref(in);
    if (avgLatency < bar && avgLatencyPref < bar_pref)
        return PrefEffect::NoEffect;
    if (avgLatency > bar && avgLatencyPref < bar_pref)
        return PrefEffect::Useful;
    return PrefEffect::Mixed;
}

std::string
toString(PrefEffect effect)
{
    switch (effect) {
      case PrefEffect::NoEffect: return "no-effect";
      case PrefEffect::Useful:   return "useful";
      case PrefEffect::Mixed:    return "useful-or-harmful";
    }
    MTP_PANIC("bad PrefEffect ", static_cast<int>(effect));
}

} // namespace mtp
