#include "core/mt_hwp.hh"

namespace mtp {

MtHwpPrefetcher::MtHwpPrefetcher(const SimConfig &cfg)
    : MtHwpPrefetcher(cfg, Tables{})
{
}

MtHwpPrefetcher::MtHwpPrefetcher(const SimConfig &cfg, Tables tables)
    : HwPrefetcher(cfg),
      tables_(tables),
      promoteCount_(cfg.gsPromoteCount),
      ipTrainCount_(cfg.ipTrainCount),
      ipDistanceWarps_(cfg.ipDistanceWarps),
      pws_(cfg.pwsEntries),
      gs_(cfg.gsEntries),
      ip_(cfg.ipEntries)
{
    // MT-HWP is defined by per-warp training; the naive/enhanced split
    // of Fig. 13 applies to the baseline prefetchers only.
    warpTraining_ = true;
}

std::uint64_t
MtHwpPrefetcher::costBits(const SimConfig &cfg)
{
    return static_cast<std::uint64_t>(cfg.pwsEntries) * pwsEntryBits +
           static_cast<std::uint64_t>(cfg.gsEntries) * gsEntryBits +
           static_cast<std::uint64_t>(cfg.ipEntries) * ipEntryBits;
}

std::uint64_t
MtHwpPrefetcher::costBytes(const SimConfig &cfg)
{
    return (costBits(cfg) + 7) / 8;
}

bool
MtHwpPrefetcher::ipTrained(Pc pc) const
{
    const IpEntry *e = ip_.peek(pc);
    return e && e->conf >= ipTrainCount_ && e->stride != 0;
}

Stride
MtHwpPrefetcher::gsStride(Pc pc) const
{
    const GsEntry *e = gs_.peek(pc);
    return e ? e->stride : 0;
}

void
MtHwpPrefetcher::trainIp(const PrefObservation &obs)
{
    IpEntry &entry = ip_.findOrInsert(obs.pc);
    if (entry.lastWid != ~0ULL && obs.globalWid != entry.lastWid &&
        entry.lastAddr != invalidAddr) {
        auto dw = static_cast<Stride>(obs.globalWid) -
                  static_cast<Stride>(entry.lastWid);
        Stride da = static_cast<Stride>(obs.leadAddr) -
                    static_cast<Stride>(entry.lastAddr);
        if (dw != 0 && da % dw == 0) {
            Stride cand = da / dw;
            if (cand != 0 && cand == entry.stride) {
                if (entry.conf < ipTrainCount_)
                    ++entry.conf;
            } else {
                entry.stride = cand;
                entry.conf = cand != 0 ? 1 : 0;
            }
        } else {
            entry.conf = 0;
        }
    }
    entry.lastWid = obs.globalWid;
    entry.lastAddr = obs.leadAddr;
}

void
MtHwpPrefetcher::maybePromote(Pc pc, Stride stride)
{
    if (!tables_.gs || stride == 0)
        return;
    if (gs_.peek(pc))
        return;
    unsigned agree = 0;
    pws_.forEach([&](const PcWid &key, const StridePcPrefetcher::Entry &e) {
        if (key.pc == pc && e.stride == stride &&
            e.conf >= StridePcPrefetcher::confThreshold)
            ++agree;
    });
    if (agree >= promoteCount_) {
        gs_.findOrInsert(pc).stride = stride;
        ++promotions_;
    }
}

void
MtHwpPrefetcher::observe(const PrefObservation &obs, std::vector<Addr> &out)
{
    ++counters_.observations;

    // Cycle 0: GS and IP probed in parallel; GS has priority (promoted
    // strides are trained longer and intra-warp strides dominate).
    if (tables_.gs) {
        if (GsEntry *g = gs_.find(obs.pc)) {
            ++gsHits_;
            ++counters_.trainedHits;
            ++pwsAccessesSaved_;
            emitStride(obs, g->stride, out);
            return;
        }
    }

    bool ip_hit = false;
    if (tables_.ip) {
        if (IpEntry *e = ip_.find(obs.pc)) {
            if (e->conf >= ipTrainCount_ && e->stride != 0) {
                ip_hit = true;
                ++ipHits_;
                ++counters_.trainedHits;
                // Per-warp stride scaled to the IP target distance
                // (roughly the corresponding warp of a later block).
                emitStride(obs,
                           e->stride *
                               static_cast<Stride>(ipDistanceWarps_),
                           out);
            }
        }
        trainIp(obs);
    }
    if (ip_hit)
        return;

    // Cycle 1: PWS probe (train + possibly emit).
    if (tables_.pws) {
        ++pwsAccesses_;
        PcWid key{obs.pc, obs.hwWid};
        auto &entry = pws_.findOrInsert(key);
        Stride stride = StridePcPrefetcher::train(entry, obs.leadAddr);
        if (stride != 0) {
            ++pwsHits_;
            ++counters_.trainedHits;
            emitStride(obs, stride, out);
            maybePromote(obs.pc, stride);
        }
    }
}

std::string
MtHwpPrefetcher::name() const
{
    std::string n = "mthwp:";
    if (tables_.pws)
        n += "pws";
    if (tables_.gs)
        n += "+gs";
    if (tables_.ip)
        n += "+ip";
    return n;
}

void
MtHwpPrefetcher::exportStats(StatSet &set, const std::string &prefix) const
{
    HwPrefetcher::exportStats(set, prefix);
    set.add(prefix + ".gsHits", static_cast<double>(gsHits_),
            "observations served by the GS table");
    set.add(prefix + ".ipHits", static_cast<double>(ipHits_),
            "observations served by the IP table");
    set.add(prefix + ".pwsHits", static_cast<double>(pwsHits_),
            "observations served by the PWS table");
    set.add(prefix + ".promotions", static_cast<double>(promotions_),
            "strides promoted from PWS to GS");
    set.add(prefix + ".pwsAccesses", static_cast<double>(pwsAccesses_),
            "PWS table probes");
    set.add(prefix + ".pwsAccessesSaved",
            static_cast<double>(pwsAccessesSaved_),
            "PWS probes avoided by GS hits");
}

} // namespace mtp
