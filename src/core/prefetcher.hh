/**
 * @file
 * Hardware prefetcher interface. A per-core prefetcher observes demand
 * loads (one observation per warp memory-instruction execution, carrying
 * the lead lane address plus all coalesced block transactions) and emits
 * prefetch candidate block addresses. The core pushes survivors of the
 * throttle filter into the MRQ as ReqType::HwPrefetch.
 */

#ifndef MTP_CORE_PREFETCHER_HH
#define MTP_CORE_PREFETCHER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/coalescer.hh"

namespace mtp {

/**
 * One demand-load observation. The prefetcher trains on the lead (lane
 * 0) byte address — one representative per execution, which is what
 * makes per-warp training meaningful (Fig. 5 shows one address per
 * (PC, warp) access) — and replicates any trained stride over all
 * coalesced transactions so uncoalesced accesses get full coverage.
 */
struct PrefObservation
{
    Pc pc;                 //!< static PC of the load
    std::uint32_t hwWid;   //!< hardware warp slot within the core
    std::uint64_t globalWid; //!< grid-wide warp id (IP stride arithmetic)
    Addr leadAddr;         //!< lane-0 byte address
    const std::vector<MemTxn> *txns; //!< transactions of this execution
};

/** Abstract per-core hardware prefetcher. */
class HwPrefetcher
{
  public:
    /** Common counters kept by every implementation. */
    struct Counters
    {
        std::uint64_t observations = 0;
        std::uint64_t trainedHits = 0; //!< observations hitting a trained entry
        std::uint64_t generated = 0;   //!< prefetch addresses emitted
    };

    explicit HwPrefetcher(const SimConfig &cfg)
        : distance_(cfg.prefDistance), degree_(cfg.prefDegree),
          warpTraining_(cfg.hwPrefWarpTraining)
    {
    }

    virtual ~HwPrefetcher() = default;

    /**
     * Observe a demand load and append prefetch candidates (block-
     * aligned addresses) to @p out. @p out is not cleared.
     */
    virtual void observe(const PrefObservation &obs,
                         std::vector<Addr> &out) = 0;

    /**
     * Periodic feedback hook (GHB+F and similar): called once per
     * feedback period with the prefetch accuracy (useful/fills) and the
     * late fraction (demand-merged/fills) of the elapsed period.
     */
    virtual void feedback(double accuracy, double lateFraction)
    {
        (void)accuracy;
        (void)lateFraction;
    }

    /** Short identifier, e.g. "stride_pc". */
    virtual std::string name() const = 0;

    /** Export implementation counters under "<prefix>.". */
    virtual void exportStats(StatSet &set, const std::string &prefix) const;

    const Counters &counters() const { return counters_; }

    unsigned distance() const { return distance_; }
    unsigned degree() const { return degree_; }

  protected:
    /**
     * Emit `degree` prefetches per transaction of @p obs, each advanced
     * by @p stride x (distance + k). Zero strides emit nothing.
     */
    void emitStride(const PrefObservation &obs, Stride stride,
                    std::vector<Addr> &out);

    unsigned distance_;
    unsigned degree_;
    bool warpTraining_;
    Counters counters_;
};

/**
 * Instantiate the configured prefetcher for one core.
 * @return nullptr for HwPrefKind::None.
 */
std::unique_ptr<HwPrefetcher> makeHwPrefetcher(const SimConfig &cfg);

} // namespace mtp

#endif // MTP_CORE_PREFETCHER_HH
