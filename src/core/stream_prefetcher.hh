/**
 * @file
 * Stream prefetcher (Table V "Stream", after the Power5 prefetcher):
 * monitors cache-block streams within small memory zones, detects a
 * constant access direction and, once confirmed, fetches ahead along
 * the stream. Operates at block granularity (it has no PC), so
 * uncoalesced access patterns defeat it — as the paper observes.
 */

#ifndef MTP_CORE_STREAM_PREFETCHER_HH
#define MTP_CORE_STREAM_PREFETCHER_HH

#include "core/lru_table.hh"
#include "core/prefetcher.hh"

namespace mtp {

/** Direction-detecting stream prefetcher. */
class StreamPrefetcher : public HwPrefetcher
{
  public:
    /** One tracked stream. */
    struct Entry
    {
        std::uint64_t lastBlock = ~0ULL; //!< last block index seen
        int dir = 0;                     //!< +1 ascending, -1 descending
        unsigned conf = 0;               //!< consecutive same-direction hits
    };

    explicit StreamPrefetcher(const SimConfig &cfg);

    void observe(const PrefObservation &obs,
                 std::vector<Addr> &out) override;

    std::string name() const override;

    void exportStats(StatSet &set, const std::string &prefix) const override;

    /** Blocks per monitoring zone (zone = blockIndex >> zoneShift). */
    static constexpr unsigned zoneShift = 4;
    /** Maximum block delta still considered the same stream. */
    static constexpr std::uint64_t window = 16;
    /** Direction confirmations needed before prefetching. */
    static constexpr unsigned confThreshold = 2;

  private:
    /** Zone key of block index @p block for warp @p wid. */
    PcWid key(std::uint64_t block, std::uint32_t wid) const
    {
        return {block >> zoneShift, warpTraining_ ? wid : 0u};
    }

    LruTable<PcWid, Entry, PcWidHash> table_;
};

} // namespace mtp

#endif // MTP_CORE_STREAM_PREFETCHER_HH
