/**
 * @file
 * Adaptive prefetch throttling (Sec. V). The per-core throttle engine
 * monitors two metrics over 100K-cycle periods:
 *
 *  - early eviction rate = early evictions / useful prefetches (Eq. 5),
 *    updated by replacement (Eq. 7);
 *  - merge ratio = intra-core merges / total MRQ requests (Eq. 6),
 *    updated by averaging with the previous value (Eq. 8);
 *
 * and maps them through the Table I heuristics onto a throttle degree
 * in [0, 5], where degree d deterministically drops d out of every 5
 * prefetch requests (5 = "No Prefetch").
 *
 * LatenessThrottle is the simpler lateness-driven controller used by
 * the StridePC+T baseline of Fig. 15.
 */

#ifndef MTP_CORE_THROTTLE_HH
#define MTP_CORE_THROTTLE_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "obs/trace.hh"

namespace mtp {

/** The paper's adaptive throttle engine (Table I). */
class ThrottleEngine
{
  public:
    /** Cumulative counters sampled at each period boundary. */
    struct Snapshot
    {
        std::uint64_t earlyEvictions = 0; //!< prefetch cache
        std::uint64_t useful = 0;         //!< prefetch cache
        std::uint64_t fills = 0;          //!< prefetch cache
        std::uint64_t merges = 0;         //!< MSHR intra-core merges
        std::uint64_t totalRequests = 0;  //!< MSHR lookups
        /**
         * Demand transactions served by the prefetch cache. A hit is
         * the limiting case of a merge — the prefetch simply completed
         * before the demand arrived — so it counts toward the merge
         * ratio; otherwise perfectly timely prefetching would read as
         * "no merging" and be throttled off by the Low/Low rule.
         */
        std::uint64_t prefCacheHits = 0;
    };

    explicit ThrottleEngine(const SimConfig &cfg);

    /**
     * Period-boundary update: compute the monitored metrics from the
     * delta against the previous snapshot and apply Table I.
     * @param now current cycle, for the optional trace event
     */
    void updatePeriod(const Snapshot &cumulative, Cycle now = 0);

    /**
     * Emit one trace event per period update to @p tracer (borrowed;
     * may be null to detach). Replaces the old MTP_THROTTLE_TRACE
     * stderr hook; the environment variable survives as an alias that
     * routes this stream to stderr (see obs::throttleTraceEnvEnabled).
     */
    void
    setTrace(obs::TraceRecorder *tracer, CoreId core)
    {
        tracer_ = tracer;
        coreId_ = core;
    }

    /**
     * Per-prefetch-request filter.
     * @return true iff this prefetch must be dropped.
     */
    bool shouldDrop();

    unsigned degree() const { return degree_; }
    double currentEarlyRate() const { return curEarly_; }
    double currentMergeRatio() const { return curMerge_; }

    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t allowed() const { return allowed_; }

    /** Export counters under "<prefix>.". */
    void exportStats(StatSet &set, const std::string &prefix) const;

    /** Maximum degree == "No Prefetch". */
    static constexpr unsigned noPrefetchDegree = 5;

    /** Minimum fills per period for the metrics to be observable. */
    static constexpr std::uint64_t observableFills = 16;

    /** Longest probe interval (periods) for harmful benchmarks. */
    static constexpr std::uint64_t maxProbeBackoff = 32;

  private:
    double earlyHigh_;
    double earlyLow_;
    double mergeHigh_;

    unsigned degree_;
    Snapshot last_;
    double curEarly_ = 0.0;
    double curMerge_ = 0.0;
    std::uint64_t dropCounter_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t allowed_ = 0;
    std::uint64_t updates_ = 0;
    std::uint64_t idlePeriods_ = 0;
    std::uint64_t idleSinceProbe_ = 0;
    std::uint64_t probeBackoff_ = 1;
    obs::TraceRecorder *tracer_ = nullptr;
    CoreId coreId_ = 0;
};

/**
 * Lateness-driven throttle (the StridePC+T baseline): raises the drop
 * level while the fraction of late prefetches (prefetches a demand
 * merged into) stays high, lowers it when prefetches become timely.
 */
class LatenessThrottle
{
  public:
    /** @param initLevel initial drop level in [0, 5]. */
    explicit LatenessThrottle(unsigned initLevel = 0)
        : level_(initLevel)
    {
    }

    /** Period-boundary update with the period's late fraction. */
    void
    updatePeriod(double lateFraction)
    {
        if (lateFraction > lateHigh) {
            if (level_ < maxLevel)
                ++level_;
        } else if (lateFraction < lateLow) {
            if (level_ > 0)
                --level_;
        }
    }

    /** Per-prefetch-request filter. */
    bool
    shouldDrop()
    {
        ++counter_;
        return (counter_ % maxLevel) < level_;
    }

    unsigned level() const { return level_; }

    static constexpr unsigned maxLevel = 5;
    static constexpr double lateHigh = 0.5;
    static constexpr double lateLow = 0.2;

  private:
    unsigned level_;
    std::uint64_t counter_ = 0;
};

} // namespace mtp

#endif // MTP_CORE_THROTTLE_HH
