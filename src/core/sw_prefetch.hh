/**
 * @file
 * Software-prefetch transforms (Sec. II-C1, III-A). These are the
 * source-level schemes the paper evaluates, applied to synthetic
 * kernels as data transformations:
 *
 *  - stride prefetching: inside loops, prefetch the access `distance`
 *    iterations ahead into the prefetch cache;
 *  - inter-thread prefetching (IP): prefetch the corresponding access
 *    of the thread `32 x distance` thread ids ahead (the same-lane
 *    thread of a warp `distance` warps ahead, Fig. 4);
 *  - register prefetching (Ryoo et al.): binding loads one iteration
 *    ahead into registers, at the cost of extra instructions and
 *    register pressure (reduced thread-block occupancy);
 *  - MT-SWP: stride + IP combined.
 */

#ifndef MTP_CORE_SW_PREFETCH_HH
#define MTP_CORE_SW_PREFETCH_HH

#include "common/config.hh"
#include "trace/kernel.hh"

namespace mtp {

/** Per-workload software-prefetch tuning knobs. */
struct SwPrefetchOptions
{
    /** Stride-prefetch distance in loop iterations. */
    unsigned strideDistance = 1;
    /**
     * Inter-thread prefetch distance in warps. Programmers prefetch
     * for `tid + k`; the profitable k is about one thread block
     * (`tid + blockDim`), since that is the work that runs next on the
     * same core rather than a co-resident warp whose demand has
     * already issued.
     */
    unsigned ipDistanceWarps = 1;
    /**
     * Thread blocks per core lost to the extra register pressure of
     * register prefetching (0: occupancy unaffected).
     */
    unsigned registerBlocksLost = 0;
};

/**
 * Insert stride prefetches into every loop of @p kernel (loads with a
 * non-zero iteration stride only; short straight-line kernels have no
 * insertion points, Fig. 3). @return the transformed, finalized kernel.
 */
KernelDesc applyStridePrefetch(const KernelDesc &kernel,
                               const SwPrefetchOptions &opts);

/**
 * Insert inter-thread prefetches for prefetchable loads.
 * @param skipStrideCovered skip loads a stride prefetch already covers
 *        (loop loads with a non-zero iteration stride) — used by the
 *        combined MT-SWP transform so each load gets one prefetch.
 * @return the transformed, finalized kernel.
 */
KernelDesc applyInterThreadPrefetch(const KernelDesc &kernel,
                                    const SwPrefetchOptions &opts,
                                    bool skipStrideCovered = false);

/**
 * Apply register (binding) prefetching to every load inside a loop:
 * consumers use the previous iteration's value, one extra address
 * computation per load is charged, and occupancy drops by
 * `registerBlocksLost` blocks per core.
 * @return the transformed, finalized kernel.
 */
KernelDesc applyRegisterPrefetch(const KernelDesc &kernel,
                                 const SwPrefetchOptions &opts);

/** Dispatch on @p kind (StrideIP composes stride then IP). */
KernelDesc applySwPrefetch(const KernelDesc &kernel, SwPrefKind kind,
                           const SwPrefetchOptions &opts);

} // namespace mtp

#endif // MTP_CORE_SW_PREFETCH_HH
