#include "core/stream_prefetcher.hh"

#include <cstdlib>

namespace mtp {

StreamPrefetcher::StreamPrefetcher(const SimConfig &cfg)
    : HwPrefetcher(cfg), table_(cfg.streamEntries)
{
}

void
StreamPrefetcher::observe(const PrefObservation &obs, std::vector<Addr> &out)
{
    ++counters_.observations;
    std::uint64_t block = blockIndex(obs.leadAddr);

    // The stream may have crossed into a neighbouring zone since its
    // last access; probe the current zone first, then both neighbours.
    Entry *entry = nullptr;
    PcWid found_key{0, 0};
    for (int dz = 0; dz <= 2 && !entry; ++dz) {
        std::uint64_t probe_block =
            block + (dz == 1 ? (1ULL << zoneShift)
                             : dz == 2 ? -(1ULL << zoneShift) : 0);
        PcWid k = key(probe_block, obs.hwWid);
        if (Entry *e = table_.find(k)) {
            entry = e;
            found_key = k;
        }
    }

    if (!entry) {
        Entry &fresh = table_.findOrInsert(key(block, obs.hwWid));
        fresh.lastBlock = block;
        fresh.dir = 0;
        fresh.conf = 0;
        return;
    }

    auto delta = static_cast<std::int64_t>(block) -
                 static_cast<std::int64_t>(entry->lastBlock);
    if (delta == 0)
        return;
    if (static_cast<std::uint64_t>(std::llabs(delta)) > window) {
        // Too far: restart tracking at the new location.
        entry->lastBlock = block;
        entry->dir = 0;
        entry->conf = 0;
        return;
    }

    int dir = delta > 0 ? 1 : -1;
    if (entry->dir == dir) {
        ++entry->conf;
    } else {
        entry->dir = dir;
        entry->conf = 1;
    }
    entry->lastBlock = block;

    // Re-key the entry if the stream moved zones.
    PcWid new_key = key(block, obs.hwWid);
    if (!(new_key == found_key)) {
        Entry moved = *entry;
        table_.erase(found_key);
        table_.findOrInsert(new_key) = moved;
        entry = table_.find(new_key);
    }

    if (entry->conf >= confThreshold) {
        ++counters_.trainedHits;
        for (unsigned k = 0; k < degree_; ++k) {
            std::int64_t ahead =
                static_cast<std::int64_t>(distance_ + k) * entry->dir;
            Addr target = static_cast<Addr>(
                (static_cast<std::int64_t>(block) + ahead))
                << blockOffsetBits;
            out.push_back(target);
            ++counters_.generated;
        }
    }
}

std::string
StreamPrefetcher::name() const
{
    return warpTraining_ ? "stream.warp" : "stream";
}

void
StreamPrefetcher::exportStats(StatSet &set, const std::string &prefix) const
{
    HwPrefetcher::exportStats(set, prefix);
    set.add(prefix + ".tableEvictions",
            static_cast<double>(table_.evictions()),
            "stream entries evicted (LRU)");
}

} // namespace mtp
