#include "core/prefetcher.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/ghb.hh"
#include "core/mt_hwp.hh"
#include "core/stream_prefetcher.hh"
#include "core/stride_pc.hh"
#include "core/stride_rpt.hh"

namespace mtp {

void
HwPrefetcher::emitStride(const PrefObservation &obs, Stride stride,
                         std::vector<Addr> &out)
{
    if (stride == 0)
        return;
    for (const MemTxn &txn : *obs.txns) {
        for (unsigned k = 0; k < degree_; ++k) {
            Stride ahead = stride * static_cast<Stride>(distance_ + k);
            Addr target = blockAlign(static_cast<Addr>(
                static_cast<Stride>(txn.addr) + ahead));
            // Sub-block strides can map several transactions onto the
            // same target block; suppress duplicates within this burst.
            if (std::find(out.begin(), out.end(), target) != out.end())
                continue;
            out.push_back(target);
            ++counters_.generated;
        }
    }
}

void
HwPrefetcher::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".observations",
            static_cast<double>(counters_.observations),
            "demand loads observed");
    set.add(prefix + ".trainedHits",
            static_cast<double>(counters_.trainedHits),
            "observations hitting a trained entry");
    set.add(prefix + ".generated",
            static_cast<double>(counters_.generated),
            "prefetch addresses emitted");
}

std::unique_ptr<HwPrefetcher>
makeHwPrefetcher(const SimConfig &cfg)
{
    switch (cfg.hwPref) {
      case HwPrefKind::None:
        return nullptr;
      case HwPrefKind::StrideRPT:
        return std::make_unique<StrideRptPrefetcher>(cfg);
      case HwPrefKind::StridePC:
        return std::make_unique<StridePcPrefetcher>(cfg);
      case HwPrefKind::Stream:
        return std::make_unique<StreamPrefetcher>(cfg);
      case HwPrefKind::GHB:
        return std::make_unique<GhbPrefetcher>(cfg);
      case HwPrefKind::MTHWP:
        return std::make_unique<MtHwpPrefetcher>(
            cfg, MtHwpPrefetcher::Tables{cfg.mthwpPws, cfg.mthwpGs,
                                         cfg.mthwpIp});
    }
    MTP_PANIC("bad HwPrefKind ", static_cast<int>(cfg.hwPref));
}

} // namespace mtp
