/**
 * @file
 * MTAML — the Minimum Tolerable Average Memory Latency analytical model
 * of Sec. IV (Eq. 1-4) and the useful / no-effect / possibly-harmful
 * classification of Fig. 7.
 */

#ifndef MTP_CORE_MTAML_HH
#define MTP_CORE_MTAML_HH

#include <string>

namespace mtp {

/** Inputs of the MTAML model for one kernel on one core. */
struct MtamlInputs
{
    double compInsts;   //!< non-memory warp-instructions
    double memInsts;    //!< demand memory warp-instructions
    double activeWarps; //!< warps concurrently resident on a core
    double prefHitProb = 0.0; //!< probability a demand hits the pref. cache
};

/** Overall effect of prefetching predicted by the model (Sec. IV-A). */
enum class PrefEffect
{
    NoEffect, //!< multithreading already hides all latency (case 1)
    Useful,   //!< prefetching lifts the app over the tolerance bar (case 2)
    Mixed,    //!< latency tolerated in neither case; may help or harm
};

/**
 * Eq. 1: MTAML = (#comp / #mem) * (#warps - 1). The minimum average
 * memory latency per request that causes no stalls.
 */
double mtaml(const MtamlInputs &in);

/**
 * Eq. 2-4: MTAML under prefetching. Prefetch-cache hits move work from
 * the memory column to the compute column:
 *   comp_new = comp + P(hit) * mem,  mem_new = (1 - P(hit)) * mem.
 */
double mtamlPref(const MtamlInputs &in);

/**
 * Classify the effect of prefetching given measured average latencies
 * without (@p avgLatency) and with (@p avgLatencyPref) prefetching.
 */
PrefEffect classify(const MtamlInputs &in, double avgLatency,
                    double avgLatencyPref);

/** Human-readable name of a PrefEffect. */
std::string toString(PrefEffect effect);

} // namespace mtp

#endif // MTP_CORE_MTAML_HH
