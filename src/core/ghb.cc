#include "core/ghb.hh"

namespace mtp {

GhbPrefetcher::GhbPrefetcher(const SimConfig &cfg)
    : HwPrefetcher(cfg),
      feedbackEnabled_(cfg.ghbFeedback),
      czoneBits_(cfg.ghbCzoneBits),
      fifo_(cfg.ghbEntries),
      index_(cfg.ghbIndexEntries)
{
}

std::uint64_t
GhbPrefetcher::czoneOf(Addr addr) const
{
    std::uint64_t zone = addr >> czoneShift;
    return zone & ((1ULL << czoneBits_) - 1);
}

void
GhbPrefetcher::observe(const PrefObservation &obs, std::vector<Addr> &out)
{
    ++counters_.observations;
    PcWid key{czoneOf(obs.leadAddr), warpTraining_ ? obs.hwWid : 0u};

    // Link the new entry into its zone's chain and advance the FIFO.
    std::uint64_t *last = index_.find(key);
    GhbEntry &slot = fifo_[pos_ % fifo_.size()];
    slot.addr = obs.leadAddr;
    slot.hasPrev = last && (pos_ - *last) < fifo_.size();
    slot.prevPos = slot.hasPrev ? *last : 0;
    index_.findOrInsert(key) = pos_;
    std::uint64_t head = pos_++;

    // Collect the zone's recent addresses, newest first.
    Addr hist[historyLen];
    unsigned n = 0;
    std::uint64_t p = head;
    while (n < historyLen) {
        const GhbEntry &e = fifo_[p % fifo_.size()];
        hist[n++] = e.addr;
        if (!e.hasPrev || (head - e.prevPos) >= fifo_.size())
            break;
        p = e.prevPos;
    }
    if (n < 3)
        return;

    // Delta stream, newest first: d[i] = hist[i] - hist[i+1].
    Stride d[historyLen - 1];
    for (unsigned i = 0; i + 1 < n; ++i)
        d[i] = static_cast<Stride>(hist[i]) -
               static_cast<Stride>(hist[i + 1]);
    unsigned nd = n - 1;

    // Delta correlation: find an earlier occurrence of the most recent
    // delta pair (d[1], d[0]) and replay the deltas that followed it.
    if (nd >= 2) {
        for (unsigned k = 2; k + 1 < nd; ++k) {
            if (d[k] == d[0] && d[k + 1] == d[1]) {
                ++deltaCorrelations_;
                ++counters_.trainedHits;
                Addr target = obs.leadAddr;
                unsigned emitted = 0;
                for (int j = static_cast<int>(k) - 1;
                     j >= 0 && emitted < degree_; --j, ++emitted) {
                    target = static_cast<Addr>(
                        static_cast<Stride>(target) + d[j]);
                    out.push_back(blockAlign(target));
                    ++counters_.generated;
                }
                return;
            }
        }
    }

    // Constant-stride fallback.
    if (nd >= 2 && d[0] == d[1] && d[0] != 0) {
        ++strideFallbacks_;
        ++counters_.trainedHits;
        for (unsigned k = 0; k < degree_; ++k) {
            Stride ahead = d[0] * static_cast<Stride>(distance_ + k);
            out.push_back(blockAlign(static_cast<Addr>(
                static_cast<Stride>(obs.leadAddr) + ahead)));
            ++counters_.generated;
        }
    }
}

void
GhbPrefetcher::feedback(double accuracy, double lateFraction)
{
    (void)lateFraction;
    if (!feedbackEnabled_)
        return;
    if (accuracy >= accHigh && degree_ < maxDegree)
        ++degree_;
    else if (accuracy < accLow && degree_ > minDegree)
        --degree_;
}

std::string
GhbPrefetcher::name() const
{
    std::string n = warpTraining_ ? "ghb.warp" : "ghb";
    return feedbackEnabled_ ? n + "+f" : n;
}

void
GhbPrefetcher::exportStats(StatSet &set, const std::string &prefix) const
{
    HwPrefetcher::exportStats(set, prefix);
    set.add(prefix + ".deltaCorrelations",
            static_cast<double>(deltaCorrelations_),
            "predictions from delta correlation");
    set.add(prefix + ".strideFallbacks",
            static_cast<double>(strideFallbacks_),
            "predictions from the constant-stride fallback");
    set.add(prefix + ".degree", static_cast<double>(degree_),
            "final prefetch degree (GHB+F adjusts it)");
}

} // namespace mtp
