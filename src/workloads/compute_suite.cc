/**
 * @file
 * The twelve non-memory-intensive benchmarks of Table IV. Their CPIs
 * sit close to the perfect-memory CPI, so neither hardware prefetching
 * nor a perfect memory moves them much — the property the table
 * documents. All share a compute-loop template with a low
 * memory-instruction density.
 */

#include "workloads/builders.hh"

namespace mtp {
namespace workloads {

namespace {

/** Template for a compute-bound kernel. */
struct ComputeSpec
{
    unsigned warpsPerBlock = 8;
    std::uint64_t blocks = 256;
    unsigned maxBlocksPerCore = 3;
    unsigned trips = 8;       //!< loop iterations
    unsigned compPerIter = 24; //!< plain ALU instructions per iteration
    unsigned imulPerIter = 1;
    unsigned fdivPerIter = 0;
    unsigned loadEvery = 1;   //!< one strided load per iteration
    Stride iterStride = 4096;
    unsigned benchSalt = 16;
};

KernelDesc
computeKernel(const std::string &name, const ComputeSpec &s,
              unsigned scaleDiv)
{
    KernelDesc k;
    k.name = name;
    k.warpsPerBlock = s.warpsPerBlock;
    k.numBlocks = scaledBlocks(s.blocks, scaleDiv, s.maxBlocksPerCore);
    k.maxBlocksPerCore = s.maxBlocksPerCore;

    Segment preamble;
    preamble.insts.push_back(StaticInst::comp(2));
    preamble.insts.push_back(
        StaticInst::load(coalesced(arrayBase(s.benchSalt, 0)), 0));
    k.segments.push_back(preamble);

    Segment loop;
    loop.trips = s.trips;
    if (s.loadEvery > 0) {
        loop.insts.push_back(StaticInst::load(
            coalesced(arrayBase(s.benchSalt, 1), s.iterStride), 1));
    }
    loop.insts.push_back(StaticInst::compUse(0, 1, s.compPerIter));
    for (unsigned i = 0; i < s.imulPerIter; ++i)
        loop.insts.push_back(StaticInst::imul(1));
    for (unsigned i = 0; i < s.fdivPerIter; ++i)
        loop.insts.push_back(StaticInst::fdiv(1));
    loop.insts.push_back(StaticInst::branch());
    k.segments.push_back(loop);

    Segment epilogue;
    epilogue.insts.push_back(
        StaticInst::store(coalesced(arrayBase(s.benchSalt, 2)), 1));
    k.segments.push_back(epilogue);

    k.finalize();
    return k;
}

Workload
makeCompute(const std::string &name, const std::string &suite,
            double base_cpi, double pmem_cpi, double hwp_cpi,
            const ComputeSpec &s, unsigned scaleDiv)
{
    WorkloadInfo info;
    info.name = name;
    info.suite = suite;
    info.type = WorkloadType::Compute;
    info.paperBaseCpi = base_cpi;
    info.paperPmemCpi = pmem_cpi;
    info.paperHwpCpi = hwp_cpi;
    info.paperWarps = s.blocks * s.warpsPerBlock;
    info.paperBlocks = s.blocks;
    return {info, computeKernel(name, s, scaleDiv)};
}

} // namespace

Workload
buildBinomial(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 16;
    s.trips = 12;
    s.compPerIter = 28;
    return makeCompute("binomial", "sdk", 4.29, 4.27, 4.25, s, scaleDiv);
}

Workload
buildDwtHaar1d(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 17;
    s.trips = 6;
    s.compPerIter = 20;
    s.imulPerIter = 1;
    return makeCompute("dwthaar1d", "sdk", 4.6, 4.37, 4.45, s, scaleDiv);
}

Workload
buildEigenvalue(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 18;
    s.trips = 16;
    s.compPerIter = 30;
    s.imulPerIter = 0;
    return makeCompute("eigenvalue", "sdk", 4.73, 4.72, 4.73, s,
                       scaleDiv);
}

Workload
buildGaussian(unsigned scaleDiv)
{
    // Slightly memory-sensitive (Table IV: 6.36 base vs 4.18 PMEM).
    ComputeSpec s{};
    s.benchSalt = 19;
    s.trips = 8;
    s.compPerIter = 10;
    s.warpsPerBlock = 4;
    s.maxBlocksPerCore = 2;
    return makeCompute("gaussian", "rodinia", 6.36, 4.18, 5.94, s,
                       scaleDiv);
}

Workload
buildHistogram(unsigned scaleDiv)
{
    // Elevated PMEM CPI (5.17): multiply-heavy binning.
    ComputeSpec s{};
    s.benchSalt = 20;
    s.trips = 8;
    s.compPerIter = 10;
    s.imulPerIter = 3;
    return makeCompute("histogram", "sdk", 6.29, 5.17, 6.31, s, scaleDiv);
}

Workload
buildLeukocyte(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 21;
    s.trips = 10;
    s.compPerIter = 32;
    return makeCompute("leukocyte", "rodinia", 4.23, 4.2, 4.23, s,
                       scaleDiv);
}

Workload
buildMatrix(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 22;
    s.trips = 8;
    s.compPerIter = 16;
    s.imulPerIter = 1;
    return makeCompute("matrix", "sdk", 5.14, 4.14, 4.98, s, scaleDiv);
}

Workload
buildMriFhd(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 23;
    s.trips = 12;
    s.compPerIter = 26;
    return makeCompute("mri-fhd", "parboil", 4.36, 4.26, 4.33, s,
                       scaleDiv);
}

Workload
buildMriQ(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 24;
    s.trips = 12;
    s.compPerIter = 28;
    return makeCompute("mri-q", "parboil", 4.31, 4.23, 4.31, s, scaleDiv);
}

Workload
buildNbody(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 25;
    s.trips = 16;
    s.compPerIter = 24;
    s.fdivPerIter = 1;
    return makeCompute("nbody", "sdk", 4.72, 4.54, 4.72, s, scaleDiv);
}

Workload
buildQuasirandom(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 26;
    s.trips = 20;
    s.compPerIter = 30;
    s.loadEvery = 0;
    return makeCompute("quasirandom", "sdk", 4.12, 4.12, 4.12, s,
                       scaleDiv);
}

Workload
buildSad(unsigned scaleDiv)
{
    ComputeSpec s{};
    s.benchSalt = 27;
    s.trips = 8;
    s.compPerIter = 14;
    s.imulPerIter = 2;
    return makeCompute("sad", "rodinia", 5.28, 4.17, 5.18, s, scaleDiv);
}

} // namespace workloads
} // namespace mtp
