/**
 * @file
 * The three mp-type (massively parallel) benchmarks of Table III:
 * enormous grids of loop-free threads, each touching only a few
 * elements. There is no place to put conventional (intra-thread)
 * prefetches — these are the benchmarks inter-thread prefetching was
 * designed for (Sec. III-A2).
 */

#include "workloads/builders.hh"

namespace mtp {
namespace workloads {

namespace {

/** Common shape of an mp-type kernel: one straight-line segment. */
struct MpSpec
{
    unsigned warpsPerBlock;
    std::uint64_t blocks;
    unsigned maxBlocksPerCore;
    unsigned loads;       //!< coalesced loads (slots 0..n-1)
    bool chainLoads;      //!< each load depends on the previous one
    unsigned loadElem;    //!< bytes per lane per load
    Stride loadLaneStride; //!< 0: coalesced; else bytes between lanes
    unsigned compPre;     //!< ALU work before the loads (index math)
    unsigned compPost;    //!< ALU work consuming the loaded values
    unsigned imuls;       //!< 16-cycle multiplies after the loads
    bool store;           //!< write the per-thread result
    unsigned storeElem;   //!< bytes per lane for the store
    unsigned benchSalt;
};

KernelDesc
mpKernel(const std::string &name, const MpSpec &s, unsigned scaleDiv)
{
    KernelDesc k;
    k.name = name;
    k.warpsPerBlock = s.warpsPerBlock;
    k.numBlocks = scaledBlocks(s.blocks, scaleDiv, s.maxBlocksPerCore);
    k.maxBlocksPerCore = s.maxBlocksPerCore;

    Segment body;
    body.insts.push_back(StaticInst::comp(s.compPre));
    for (unsigned l = 0; l < s.loads; ++l) {
        AddressPattern p = coalesced(arrayBase(s.benchSalt, l));
        p.elemBytes = s.loadElem;
        p.threadStride =
            s.loadLaneStride ? s.loadLaneStride : s.loadElem;
        StaticInst ld = StaticInst::load(p, static_cast<int>(l));
        if (s.chainLoads && l > 0)
            ld.srcSlots = {static_cast<std::int8_t>(l - 1), -1};
        body.insts.push_back(ld);
    }
    int src_b = s.loads > 1 ? static_cast<int>(s.loads) - 1 : -1;
    body.insts.push_back(StaticInst::compUse(0, src_b, s.compPost));
    for (unsigned i = 0; i < s.imuls; ++i)
        body.insts.push_back(StaticInst::imul(0));
    if (s.store) {
        AddressPattern st = coalesced(arrayBase(s.benchSalt, 8));
        st.elemBytes = s.storeElem;
        st.threadStride = s.storeElem;
        body.insts.push_back(StaticInst::store(st, 0));
    }
    k.segments.push_back(body);
    k.finalize();
    return k;
}

WorkloadInfo
mpInfo(const std::string &name, const std::string &suite, double base_cpi,
       double pmem_cpi, std::uint64_t warps, std::uint64_t blocks,
       unsigned del_ip, unsigned warps_per_block)
{
    WorkloadInfo info;
    info.name = name;
    info.suite = suite;
    info.type = WorkloadType::Mp;
    info.paperBaseCpi = base_cpi;
    info.paperPmemCpi = pmem_cpi;
    info.paperWarps = warps;
    info.paperBlocks = blocks;
    info.paperDelinquentStride = 0;
    info.paperDelinquentIp = del_ip;
    // Inter-thread prefetches target the corresponding warp one block
    // ahead (tid + blockDim), which runs next on the same core.
    info.swpOpts.ipDistanceWarps = warps_per_block;
    return info;
}

} // namespace

Workload
buildBackprop(unsigned scaleDiv)
{
    // Rodinia backprop: layer-weight updates. Each thread walks the
    // connection list: node -> weight -> delta lookups chain through
    // indices (Table III counts five IP-delinquent loads), so per-warp
    // MLP is 1 and the baseline is badly latency-bound.
    MpSpec s{};
    s.warpsPerBlock = 8;
    s.blocks = 2048;
    s.maxBlocksPerCore = 2;
    s.loads = 5;
    s.chainLoads = true;
    s.loadElem = 2;
    s.loadLaneStride = 0;
    s.compPre = 1;
    s.compPost = 5;
    s.imuls = 0;
    s.store = true;
    s.storeElem = 2;
    s.benchSalt = 7;
    return {mpInfo("backprop", "rodinia", 21.47, 4.16, 16384, 2048, 5, 8),
            mpKernel("backprop", s, scaleDiv)};
}

Workload
buildCell(unsigned scaleDiv)
{
    // Rodinia cell (Leukocyte tracking stage): one load per thread but
    // a comparatively fat compute tail.
    MpSpec s{};
    s.warpsPerBlock = 16;
    s.blocks = 1331;
    s.maxBlocksPerCore = 1;
    s.loads = 1;
    s.chainLoads = false;
    s.loadElem = 4;
    s.loadLaneStride = 0;
    s.compPre = 2;
    s.compPost = 12;
    s.imuls = 1;
    s.store = true;
    s.storeElem = 4;
    s.benchSalt = 8;
    return {mpInfo("cell", "rodinia", 8.81, 4.19, 21296, 1331, 1, 16),
            mpKernel("cell", s, scaleDiv)};
}

Workload
buildOcean(unsigned scaleDiv)
{
    // oceanFFT surface update: a huge grid of two-warp blocks doing a
    // transposed (power-of-two strided) read — every lane of a warp
    // lands in the same DRAM channel, serializing on two banks. The
    // most memory-bound mp benchmark, and one prefetching cannot fix
    // (the paper observes IP slightly degrades it).
    MpSpec s{};
    s.warpsPerBlock = 2;
    s.blocks = 16384;
    s.maxBlocksPerCore = 8;
    s.loads = 1;
    s.chainLoads = false;
    s.loadElem = 4;
    s.loadLaneStride = 16448; // FFT transpose: row-pitch strided
    s.compPre = 1;
    s.compPost = 2;
    s.imuls = 0;
    s.store = true;
    s.storeElem = 4;
    s.benchSalt = 9;
    return {mpInfo("ocean", "sdk", 62.63, 4.19, 32768, 16384, 1, 2),
            mpKernel("ocean", s, scaleDiv)};
}

} // namespace workloads
} // namespace mtp
