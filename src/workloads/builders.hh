/**
 * @file
 * Internal declarations shared by the per-class benchmark builder
 * translation units. Not part of the public API.
 */

#ifndef MTP_WORKLOADS_BUILDERS_HH
#define MTP_WORKLOADS_BUILDERS_HH

#include <cstdint>

#include "workloads/workload.hh"

namespace mtp {
namespace workloads {

/**
 * Base address of array @p arrayIdx of benchmark @p benchSalt. Arrays
 * are spaced 256 MB apart so streams never collide.
 */
constexpr Addr
arrayBase(unsigned benchSalt, unsigned arrayIdx)
{
    return 0x1000'0000ULL +
           (static_cast<Addr>(benchSalt) * 16 + arrayIdx) * 0x1000'0000ULL;
}

/**
 * Scale a grid's block count down by @p scaleDiv, keeping at least
 * three dispatch waves on a 14-core machine so steady-state behaviour
 * is preserved.
 */
std::uint64_t scaledBlocks(std::uint64_t paper_blocks, unsigned scaleDiv,
                           unsigned maxBlocksPerCore);

/** A coalesced pattern: 4-byte elements, optional per-iteration stride. */
AddressPattern coalesced(Addr base, Stride iterStride = 0);

/**
 * An uncoalesced pattern: each lane @p laneStride bytes apart, so one
 * warp access touches up to 32 distinct blocks.
 */
AddressPattern uncoalesced(Addr base, Stride laneStride,
                           Stride iterStride = 0);

/**
 * A data-dependent pattern: like uncoalesced() but a fraction of lane
 * addresses scatters pseudo-randomly over @p span bytes.
 */
AddressPattern scattered(Addr base, Stride laneStride, double frac,
                         Addr span, std::uint64_t salt);

// Builders, one per benchmark (Tables III and IV). Each returns the
// fully-described baseline workload at grid scale 1/scaleDiv.
Workload buildBlack(unsigned scaleDiv);
Workload buildConv(unsigned scaleDiv);
Workload buildMersenne(unsigned scaleDiv);
Workload buildMonte(unsigned scaleDiv);
Workload buildPns(unsigned scaleDiv);
Workload buildScalar(unsigned scaleDiv);
Workload buildStream(unsigned scaleDiv);

Workload buildBackprop(unsigned scaleDiv);
Workload buildCell(unsigned scaleDiv);
Workload buildOcean(unsigned scaleDiv);

Workload buildBfs(unsigned scaleDiv);
Workload buildCfd(unsigned scaleDiv);
Workload buildLinear(unsigned scaleDiv);
Workload buildSepia(unsigned scaleDiv);

Workload buildBinomial(unsigned scaleDiv);
Workload buildDwtHaar1d(unsigned scaleDiv);
Workload buildEigenvalue(unsigned scaleDiv);
Workload buildGaussian(unsigned scaleDiv);
Workload buildHistogram(unsigned scaleDiv);
Workload buildLeukocyte(unsigned scaleDiv);
Workload buildMatrix(unsigned scaleDiv);
Workload buildMriFhd(unsigned scaleDiv);
Workload buildMriQ(unsigned scaleDiv);
Workload buildNbody(unsigned scaleDiv);
Workload buildQuasirandom(unsigned scaleDiv);
Workload buildSad(unsigned scaleDiv);

} // namespace workloads
} // namespace mtp

#endif // MTP_WORKLOADS_BUILDERS_HH
