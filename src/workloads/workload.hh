/**
 * @file
 * Benchmark workloads. Each of the paper's 26 CUDA benchmarks
 * (Tables III and IV) is reproduced as a synthetic kernel whose launch
 * geometry (warps, blocks, occupancy) comes straight from Table III and
 * whose instruction mix and address patterns are tuned so the baseline
 * and perfect-memory CPIs land in the regime the paper reports.
 * See DESIGN.md for the substitution rationale.
 */

#ifndef MTP_WORKLOADS_WORKLOAD_HH
#define MTP_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/sw_prefetch.hh"
#include "trace/kernel.hh"

namespace mtp {

/** Benchmark class (Sec. VI-B). */
enum class WorkloadType
{
    Stride,  //!< strong (possibly multi-dimensional) stride behaviour
    Mp,      //!< massively parallel: huge thread count, loop-free threads
    Uncoal,  //!< dominated by uncoalesced accesses
    Compute, //!< non-memory-intensive (Table IV)
};

/** Printable name of a WorkloadType. */
std::string toString(WorkloadType type);

/** Static metadata of one benchmark. */
struct WorkloadInfo
{
    std::string name;   //!< paper's short name, e.g. "backprop"
    std::string suite;  //!< sdk / rodinia / parboil / merge
    WorkloadType type = WorkloadType::Stride;

    // Published characteristics (Tables III / IV), kept for reporting.
    double paperBaseCpi = 0.0;
    double paperPmemCpi = 0.0;
    double paperHwpCpi = 0.0; //!< Table IV only (0 when unpublished)
    std::uint64_t paperWarps = 0;
    std::uint64_t paperBlocks = 0;
    unsigned paperDelinquentStride = 0; //!< stride-delinquent loads
    unsigned paperDelinquentIp = 0;     //!< IP-delinquent loads

    /** Per-benchmark software-prefetch tuning. */
    SwPrefetchOptions swpOpts;
};

/** A benchmark: metadata plus its baseline kernel. */
struct Workload
{
    WorkloadInfo info;
    KernelDesc kernel; //!< finalized baseline kernel

    /** Kernel with the given software-prefetch transform applied. */
    KernelDesc
    variant(SwPrefKind kind) const
    {
        return applySwPrefetch(kernel, kind, info.swpOpts);
    }
};

/** Registry of all reproduced benchmarks. */
class Suite
{
  public:
    /** The 14 memory-intensive benchmarks, in Table III order. */
    static const std::vector<std::string> &memoryIntensiveNames();

    /** The 12 non-memory-intensive benchmarks, in Table IV order. */
    static const std::vector<std::string> &computeNames();

    /** Names of memory-intensive benchmarks of one class, paper order. */
    static std::vector<std::string> namesOfType(WorkloadType type);

    /**
     * Build a benchmark.
     * @param name a name from the lists above
     * @param scaleDiv divide the grid's block count by this factor to
     *        shorten simulations (occupancy and per-warp behaviour are
     *        unchanged; a floor keeps every core busy). 1 = the paper's
     *        full geometry.
     */
    static Workload get(const std::string &name, unsigned scaleDiv = 1);

    /** @return true iff @p name names a known benchmark. */
    static bool has(const std::string &name);
};

} // namespace mtp

#endif // MTP_WORKLOADS_WORKLOAD_HH
