#include "workloads/workload.hh"

#include <algorithm>
#include <functional>
#include <map>

#include "common/log.hh"
#include "workloads/builders.hh"

namespace mtp {

std::string
toString(WorkloadType type)
{
    switch (type) {
      case WorkloadType::Stride:  return "stride";
      case WorkloadType::Mp:      return "mp";
      case WorkloadType::Uncoal:  return "uncoal";
      case WorkloadType::Compute: return "compute";
    }
    MTP_PANIC("bad WorkloadType ", static_cast<int>(type));
}

namespace workloads {

std::uint64_t
scaledBlocks(std::uint64_t paper_blocks, unsigned scaleDiv,
             unsigned maxBlocksPerCore)
{
    MTP_ASSERT(scaleDiv > 0, "scaleDiv must be >= 1");
    std::uint64_t floor_blocks =
        3ULL * 14 * std::max(1u, maxBlocksPerCore);
    std::uint64_t scaled = paper_blocks / scaleDiv;
    return std::max<std::uint64_t>(1,
                                   std::min(paper_blocks,
                                            std::max(scaled,
                                                     floor_blocks)));
}

AddressPattern
coalesced(Addr base, Stride iterStride)
{
    AddressPattern p;
    p.base = base;
    p.threadStride = 4;
    p.iterStride = iterStride;
    p.elemBytes = 4;
    return p;
}

AddressPattern
uncoalesced(Addr base, Stride laneStride, Stride iterStride)
{
    AddressPattern p;
    p.base = base;
    p.threadStride = laneStride;
    p.iterStride = iterStride;
    p.elemBytes = 4;
    return p;
}

AddressPattern
scattered(Addr base, Stride laneStride, double frac, Addr span,
          std::uint64_t salt)
{
    AddressPattern p = uncoalesced(base, laneStride);
    p.scatterFrac = frac;
    p.scatterSpan = span;
    p.scatterSalt = salt;
    return p;
}

} // namespace workloads

namespace {

using Builder = std::function<Workload(unsigned)>;

const std::map<std::string, Builder> &
builders()
{
    using namespace workloads;
    static const std::map<std::string, Builder> table = {
        {"black", buildBlack},
        {"conv", buildConv},
        {"mersenne", buildMersenne},
        {"monte", buildMonte},
        {"pns", buildPns},
        {"scalar", buildScalar},
        {"stream", buildStream},
        {"backprop", buildBackprop},
        {"cell", buildCell},
        {"ocean", buildOcean},
        {"bfs", buildBfs},
        {"cfd", buildCfd},
        {"linear", buildLinear},
        {"sepia", buildSepia},
        {"binomial", buildBinomial},
        {"dwthaar1d", buildDwtHaar1d},
        {"eigenvalue", buildEigenvalue},
        {"gaussian", buildGaussian},
        {"histogram", buildHistogram},
        {"leukocyte", buildLeukocyte},
        {"matrix", buildMatrix},
        {"mri-fhd", buildMriFhd},
        {"mri-q", buildMriQ},
        {"nbody", buildNbody},
        {"quasirandom", buildQuasirandom},
        {"sad", buildSad},
    };
    return table;
}

} // namespace

const std::vector<std::string> &
Suite::memoryIntensiveNames()
{
    static const std::vector<std::string> names = {
        "black", "conv", "mersenne", "monte", "pns", "scalar", "stream",
        "backprop", "cell", "ocean", "bfs", "cfd", "linear", "sepia",
    };
    return names;
}

const std::vector<std::string> &
Suite::computeNames()
{
    static const std::vector<std::string> names = {
        "binomial", "dwthaar1d", "eigenvalue", "gaussian", "histogram",
        "leukocyte", "matrix", "mri-fhd", "mri-q", "nbody", "quasirandom",
        "sad",
    };
    return names;
}

std::vector<std::string>
Suite::namesOfType(WorkloadType type)
{
    std::vector<std::string> out;
    const auto &pool = type == WorkloadType::Compute
                           ? computeNames()
                           : memoryIntensiveNames();
    for (const auto &name : pool) {
        if (get(name, 64).info.type == type)
            out.push_back(name);
    }
    return out;
}

Workload
Suite::get(const std::string &name, unsigned scaleDiv)
{
    auto it = builders().find(name);
    if (it == builders().end())
        MTP_FATAL("unknown benchmark '", name, "'");
    Workload w = it->second(scaleDiv);
    if (!w.kernel.finalized())
        w.kernel.finalize();
    return w;
}

bool
Suite::has(const std::string &name)
{
    return builders().find(name) != builders().end();
}

} // namespace mtp
