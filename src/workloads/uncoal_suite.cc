/**
 * @file
 * The four uncoal-type benchmarks of Table III: dominated by
 * uncoalesced accesses, where a single warp load touches many distinct
 * cache blocks (sparse 32 B segments) and serializes through the LSU.
 * Their loads chain through index lookups, so the baselines are badly
 * latency-bound; the regular cross-thread structure still gives
 * inter-thread prefetching something to train on. bfs adds
 * data-dependent scatter.
 */

#include "workloads/builders.hh"

namespace mtp {
namespace workloads {

namespace {

WorkloadInfo
uncoalInfo(const std::string &name, const std::string &suite,
           double base_cpi, double pmem_cpi, std::uint64_t warps,
           std::uint64_t blocks, unsigned del_stride, unsigned del_ip)
{
    WorkloadInfo info;
    info.name = name;
    info.suite = suite;
    info.type = WorkloadType::Uncoal;
    info.paperBaseCpi = base_cpi;
    info.paperPmemCpi = pmem_cpi;
    info.paperWarps = warps;
    info.paperBlocks = blocks;
    info.paperDelinquentStride = del_stride;
    info.paperDelinquentIp = del_ip;
    return info;
}

/**
 * Set the benchmark's profitable inter-thread prefetch distance: far
 * enough ahead that the target warp has not issued its demand yet,
 * near enough that the fill survives in the 16 KB prefetch cache.
 */
WorkloadInfo
withIpDistance(WorkloadInfo info, unsigned warps_ahead)
{
    info.swpOpts.ipDistanceWarps = warps_ahead;
    return info;
}

} // namespace

Workload
buildBfs(unsigned scaleDiv)
{
    // Rodinia bfs: frontier-driven graph traversal. The frontier array
    // is read coalesced; neighbour and visited lookups depend on it and
    // scatter with the graph structure (deterministic pseudo-random
    // here). Loops over a few levels, so both stride- and
    // IP-delinquent loads exist (Table III: 4 stride / 3 IP).
    KernelDesc k;
    k.name = "bfs";
    k.warpsPerBlock = 16;
    k.numBlocks = scaledBlocks(128, scaleDiv, 1);
    k.maxBlocksPerCore = 1;

    Segment preamble;
    preamble.insts.push_back(StaticInst::comp(2));
    k.segments.push_back(preamble);

    Segment level;
    level.trips = 4;
    // Frontier read: coalesced, advances a node tile per level.
    level.insts.push_back(StaticInst::load(
        coalesced(arrayBase(10, 0), 65536), 0));
    // Edge-offset, neighbour, visited and cost lookups chain through
    // each other (graph indirection) within one adjacency structure;
    // lanes land 48 B apart with 10% data-dependent scatter over the
    // frontier's working set.
    for (unsigned l = 1; l <= 4; ++l) {
        StaticInst ld = StaticInst::load(
            scattered(arrayBase(10, 1), 48, 0.1, 4u << 20, 10 + l),
            static_cast<int>(l));
        ld.pattern.base += (l - 1) * 2048; // next adjacency field
        ld.srcSlots = {static_cast<std::int8_t>(l - 1), -1};
        level.insts.push_back(ld);
    }
    level.insts.push_back(StaticInst::compUse(3, 4, 12));
    level.insts.push_back(StaticInst::store(
        coalesced(arrayBase(10, 8), 65536), 1));
    level.insts.push_back(StaticInst::branch());
    k.segments.push_back(level);

    k.finalize();
    return {withIpDistance(uncoalInfo("bfs", "rodinia", 102.02, 4.19,
                                      2048, 128, 4, 3), 1),
            k};
}

Workload
buildCfd(unsigned scaleDiv)
{
    // Rodinia cfd (Euler3D): per-cell flux computation reading many
    // neighbour fields through an element-of-structure layout — lanes
    // land 8 B apart, spreading one warp access over four sparse
    // transactions. The eight flux-field loads chain through the
    // neighbour index (Table III counts 36 IP-delinquent loads; we
    // model eight with the same aggregate behaviour).
    KernelDesc k;
    k.name = "cfd";
    k.warpsPerBlock = 6;
    k.numBlocks = scaledBlocks(1212, scaleDiv, 1);
    k.maxBlocksPerCore = 1;

    Segment body;
    body.insts.push_back(StaticInst::comp(2));
    // The eight flux-field loads walk one cell-record array (fields
    // 2 KB apart, inside a warp's row stripe) and chain through the
    // neighbour index.
    for (unsigned l = 0; l < 8; ++l) {
        StaticInst ld = StaticInst::load(
            uncoalesced(arrayBase(11, 0), 8), static_cast<int>(l));
        ld.pattern.base += l * 2048; // next field of the cell record
        if (l > 0)
            ld.srcSlots = {static_cast<std::int8_t>(l - 1), -1};
        body.insts.push_back(ld);
    }
    body.insts.push_back(StaticInst::compUse(6, 7, 14));
    body.insts.push_back(StaticInst::fdiv(2));
    body.insts.push_back(StaticInst::compUse(3, 4, 2));
    body.insts.push_back(StaticInst::store(
        uncoalesced(arrayBase(11, 12), 8), 0));
    body.insts.push_back(StaticInst::store(
        uncoalesced(arrayBase(11, 13), 8), 1));
    k.segments.push_back(body);

    k.finalize();
    return {withIpDistance(uncoalInfo("cfd", "rodinia", 29.01, 4.37,
                                      7272, 1212, 0, 36), 3),
            k};
}

Workload
buildLinear(unsigned scaleDiv)
{
    // Merge linear regression: each thread walks a column of a
    // row-major image, so every lane of a warp touches its own row —
    // fully uncoalesced 32-transaction loads. Nine neighbourhood loads
    // form three dependent chains (Table III: 27 IP-delinquent loads;
    // the paper's kernel reads a 3x3 neighbourhood of three images).
    KernelDesc k;
    k.name = "linear";
    k.warpsPerBlock = 8;
    k.numBlocks = scaledBlocks(1024, scaleDiv, 2);
    k.maxBlocksPerCore = 2;

    Segment body;
    body.insts.push_back(StaticInst::comp(2));
    // Four neighbourhood samples form one long dependent walk (each
    // sample's address comes from the previous pixel record). Lanes sit
    // 48 B apart — every lane a sparse transaction, warp footprints
    // row-local.
    for (unsigned l = 0; l < 4; ++l) {
        StaticInst ld = StaticInst::load(
            uncoalesced(arrayBase(12, 0), 48), static_cast<int>(l));
        ld.pattern.base += l * 12; // neighbour offset within the record
        if (l > 0)
            ld.srcSlots = {static_cast<std::int8_t>(l - 1), -1};
        body.insts.push_back(ld);
    }
    body.insts.push_back(StaticInst::compUse(0, 2, 4));
    body.insts.push_back(StaticInst::compUse(3, -1, 2));
    body.insts.push_back(StaticInst::store(
        coalesced(arrayBase(12, 8)), 0));
    k.segments.push_back(body);

    k.finalize();
    return {withIpDistance(uncoalInfo("linear", "merge", 408.9, 4.18,
                                      8192, 1024, 0, 27), 4),
            k};
}

Workload
buildSepia(unsigned scaleDiv)
{
    // Merge sepia filter: RGB pixel records at 48 B per lane leave
    // every lane in (nearly) its own block; the three channel loads
    // chain through the pixel pointer.
    KernelDesc k;
    k.name = "sepia";
    k.warpsPerBlock = 8;
    k.numBlocks = scaledBlocks(1024, scaleDiv, 3);
    k.maxBlocksPerCore = 3;

    Segment body;
    body.insts.push_back(StaticInst::comp(1));
    for (unsigned l = 0; l < 3; ++l) {
        StaticInst ld = StaticInst::load(
            uncoalesced(arrayBase(13, 0), 48), static_cast<int>(l));
        ld.pattern.base += l * 16; // channel offset within the record
        if (l > 0)
            ld.srcSlots = {static_cast<std::int8_t>(l - 1), -1};
        body.insts.push_back(ld);
    }
    body.insts.push_back(StaticInst::compUse(0, 1, 6));
    body.insts.push_back(StaticInst::compUse(2, -1, 2));
    body.insts.push_back(StaticInst::store(
        uncoalesced(arrayBase(13, 8), 48), 0));
    k.segments.push_back(body);

    k.finalize();
    return {withIpDistance(uncoalInfo("sepia", "merge", 149.46, 4.19,
                                      8192, 1024, 0, 2), 8),
            k};
}

} // namespace workloads
} // namespace mtp
