/**
 * @file
 * The seven stride-type benchmarks of Table III. All have loops whose
 * loads advance by a constant per-thread stride each iteration, which
 * is what stride software prefetching and PC-based hardware stride
 * prefetchers exploit. Several chain their loads (index -> data
 * lookups), which is what keeps their baselines latency-bound — the
 * regime the paper's Sec. IV identifies as the prefetching opportunity.
 */

#include "workloads/builders.hh"

namespace mtp {
namespace workloads {

namespace {

/**
 * Common shape of a stride-type kernel: preamble, a loop of loads /
 * compute / store / back-edge branch, and a result-store epilogue.
 */
struct StrideSpec
{
    unsigned warpsPerBlock;
    std::uint64_t blocks;
    unsigned maxBlocksPerCore;
    unsigned trips;        //!< loop iterations per thread
    unsigned loads;        //!< strided loads per iteration (slots 0..n-1)
    bool chainLoads;       //!< each load depends on the previous one
    unsigned loadElem;     //!< bytes per lane per load
    unsigned compPerIter;  //!< plain ALU instructions per iteration
    unsigned imulPerIter;  //!< 16-cycle multiplies per iteration
    unsigned fdivPerIter;  //!< 32-cycle divides per iteration
    bool storePerIter;     //!< streaming store inside the loop
    unsigned storeElem;    //!< bytes per lane for the store
    Stride iterStride;     //!< bytes each load advances per iteration
    unsigned benchSalt;    //!< array address namespace
};

KernelDesc
strideKernel(const std::string &name, const StrideSpec &s,
             unsigned scaleDiv)
{
    KernelDesc k;
    k.name = name;
    k.warpsPerBlock = s.warpsPerBlock;
    k.numBlocks = scaledBlocks(s.blocks, scaleDiv, s.maxBlocksPerCore);
    k.maxBlocksPerCore = s.maxBlocksPerCore;

    Segment preamble;
    preamble.insts.push_back(StaticInst::comp(2));
    k.segments.push_back(preamble);

    Segment loop;
    loop.trips = s.trips;
    for (unsigned l = 0; l < s.loads; ++l) {
        AddressPattern p = coalesced(arrayBase(s.benchSalt, l),
                                     s.iterStride);
        p.elemBytes = s.loadElem;
        p.threadStride = s.loadElem;
        StaticInst ld = StaticInst::load(p, static_cast<int>(l));
        if (s.chainLoads && l > 0)
            ld.srcSlots = {static_cast<std::int8_t>(l - 1), -1};
        loop.insts.push_back(ld);
    }
    int src_b = s.loads > 1 ? static_cast<int>(s.loads) - 1 : -1;
    loop.insts.push_back(StaticInst::compUse(0, src_b, s.compPerIter));
    for (unsigned i = 0; i < s.imulPerIter; ++i)
        loop.insts.push_back(StaticInst::imul(0));
    for (unsigned i = 0; i < s.fdivPerIter; ++i)
        loop.insts.push_back(StaticInst::fdiv(0));
    if (s.storePerIter) {
        AddressPattern st = coalesced(arrayBase(s.benchSalt, 8),
                                      s.iterStride);
        st.elemBytes = s.storeElem;
        st.threadStride = s.storeElem;
        loop.insts.push_back(StaticInst::store(st, 0));
    }
    loop.insts.push_back(StaticInst::branch());
    k.segments.push_back(loop);

    Segment epilogue;
    epilogue.insts.push_back(
        StaticInst::store(coalesced(arrayBase(s.benchSalt, 9)), 0));
    k.segments.push_back(epilogue);

    k.finalize();
    return k;
}

WorkloadInfo
strideInfo(const std::string &name, const std::string &suite,
           double base_cpi, double pmem_cpi, std::uint64_t warps,
           std::uint64_t blocks, unsigned del_stride, unsigned del_ip,
           unsigned reg_blocks_lost)
{
    WorkloadInfo info;
    info.name = name;
    info.suite = suite;
    info.type = WorkloadType::Stride;
    info.paperBaseCpi = base_cpi;
    info.paperPmemCpi = pmem_cpi;
    info.paperWarps = warps;
    info.paperBlocks = blocks;
    info.paperDelinquentStride = del_stride;
    info.paperDelinquentIp = del_ip;
    info.swpOpts.registerBlocksLost = reg_blocks_lost;
    // Stride-type kernels prefetch for the next warp (Fig. 4) when the
    // IP transform is applied; their loops make larger distances stale
    // by the time the target block arrives.
    info.swpOpts.ipDistanceWarps = 1;
    return info;
}

} // namespace

Workload
buildBlack(unsigned scaleDiv)
{
    // BlackScholes: option pricing; three chained half-word input
    // streams (strike/price/time lookups feed each other's index math).
    StrideSpec s{};
    s.warpsPerBlock = 4;
    s.blocks = 480;
    s.maxBlocksPerCore = 3;
    s.trips = 8;
    s.loads = 3;
    s.chainLoads = true;
    s.loadElem = 2;
    s.compPerIter = 12;
    s.imulPerIter = 1;
    s.fdivPerIter = 0;
    s.storePerIter = true;
    s.storeElem = 2;
    s.iterStride = 61440;
    s.benchSalt = 0;
    return {strideInfo("black", "sdk", 8.86, 4.15, 1920, 480, 3, 0, 2),
            strideKernel("black", s, scaleDiv)};
}

Workload
buildConv(unsigned scaleDiv)
{
    // convolutionSeparable: one strided image stream, filter compute.
    StrideSpec s{};
    s.warpsPerBlock = 6;
    s.blocks = 688;
    s.maxBlocksPerCore = 2;
    s.trips = 6;
    s.loads = 1;
    s.chainLoads = false;
    s.loadElem = 4;
    s.compPerIter = 8;
    s.imulPerIter = 1;
    s.fdivPerIter = 0;
    s.storePerIter = true;
    s.storeElem = 2;
    s.iterStride = 131072;
    s.benchSalt = 1;
    return {strideInfo("conv", "sdk", 7.98, 4.21, 4128, 688, 1, 0, 1),
            strideKernel("conv", s, scaleDiv)};
}

Workload
buildMersenne(unsigned scaleDiv)
{
    // MersenneTwister: few blocks, long state-update loops; the state
    // reload depends on the twist vector read (chained pair).
    StrideSpec s{};
    s.warpsPerBlock = 4;
    s.blocks = 32;
    s.maxBlocksPerCore = 2;
    s.trips = 48;
    s.loads = 2;
    s.chainLoads = true;
    s.loadElem = 4;
    s.compPerIter = 20;
    s.imulPerIter = 2;
    s.fdivPerIter = 0;
    s.storePerIter = true;
    s.storeElem = 4;
    s.iterStride = 16384;
    s.benchSalt = 2;
    return {strideInfo("mersenne", "sdk", 7.09, 4.99, 128, 32, 2, 0, 1),
            strideKernel("mersenne", s, scaleDiv)};
}

Workload
buildMonte(unsigned scaleDiv)
{
    // MonteCarlo: one strided sample stream whose value feeds a
    // divide-heavy path sum; per-warp MLP is 1, so the baseline is
    // firmly latency-bound (the paper's biggest stride-prefetch win).
    StrideSpec s{};
    s.warpsPerBlock = 8;
    s.blocks = 256;
    s.maxBlocksPerCore = 2;
    s.trips = 16;
    s.loads = 1;
    s.chainLoads = false;
    s.loadElem = 2;
    s.compPerIter = 6;
    s.imulPerIter = 0;
    s.fdivPerIter = 1;
    s.storePerIter = false;
    s.storeElem = 4;
    s.iterStride = 262144;
    s.benchSalt = 3;
    return {strideInfo("monte", "sdk", 13.69, 5.36, 2048, 256, 1, 0, 1),
            strideKernel("monte", s, scaleDiv)};
}

Workload
buildPns(unsigned scaleDiv)
{
    // Petri-net simulation (Parboil): small grid (18 blocks, one per
    // core) with chained place/transition lookups.
    StrideSpec s{};
    s.warpsPerBlock = 8;
    s.blocks = 18;
    s.maxBlocksPerCore = 1;
    s.trips = 32;
    s.loads = 2;
    s.chainLoads = true;
    s.loadElem = 4;
    s.compPerIter = 14;
    s.imulPerIter = 2;
    s.fdivPerIter = 0;
    s.storePerIter = true;
    s.storeElem = 4;
    s.iterStride = 32768;
    s.benchSalt = 4;
    return {strideInfo("pns", "parboil", 18.87, 5.25, 144, 18, 1, 1, 0),
            strideKernel("pns", s, scaleDiv)};
}

Workload
buildScalar(unsigned scaleDiv)
{
    // scalarProd: dot products — a chained index/data stream pair with
    // very little compute per element.
    StrideSpec s{};
    s.warpsPerBlock = 8;
    s.blocks = 128;
    s.maxBlocksPerCore = 2;
    s.trips = 16;
    s.loads = 2;
    s.chainLoads = true;
    s.loadElem = 2;
    s.compPerIter = 4;
    s.imulPerIter = 0;
    s.fdivPerIter = 0;
    s.storePerIter = false;
    s.storeElem = 4;
    s.iterStride = 131072;
    s.benchSalt = 5;
    return {strideInfo("scalar", "sdk", 19.25, 4.19, 1024, 128, 2, 0, 1),
            strideKernel("scalar", s, scaleDiv)};
}

Workload
buildStream(unsigned scaleDiv)
{
    // streamcluster: streaming distance computations; two chained
    // streams (point then centre), minimal compute — the memory system
    // saturates, so distance-1 prefetches are chronically late
    // (Sec. VII-A, IX-B).
    StrideSpec s{};
    s.warpsPerBlock = 16;
    s.blocks = 128;
    s.maxBlocksPerCore = 1;
    s.trips = 24;
    s.loads = 2;
    s.chainLoads = true;
    s.loadElem = 4;
    s.compPerIter = 3;
    s.imulPerIter = 0;
    s.fdivPerIter = 0;
    s.storePerIter = true;
    s.storeElem = 4;
    s.iterStride = 262144;
    s.benchSalt = 6;
    return {strideInfo("stream", "rodinia", 18.93, 4.21, 2048, 128, 2, 5,
                       0),
            strideKernel("stream", s, scaleDiv)};
}

} // namespace workloads
} // namespace mtp
