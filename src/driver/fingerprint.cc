#include "driver/fingerprint.hh"

#include <sstream>

namespace mtp {
namespace driver {

void
Fnv1a::update(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash_ ^= bytes[i];
        hash_ *= prime;
    }
}

void
Fnv1a::add(const std::string &s)
{
    std::uint64_t len = s.size();
    update(&len, sizeof(len));
    update(s.data(), s.size());
}

namespace {

void
hashPattern(Fnv1a &h, const AddressPattern &p)
{
    h.add(p.base);
    h.add(p.threadStride);
    h.add(p.iterStride);
    h.add(p.elemBytes);
    h.add(p.scatterFrac);
    h.add(p.scatterSpan);
    h.add(p.scatterSalt);
}

void
hashInst(Fnv1a &h, const StaticInst &inst)
{
    h.add(static_cast<std::uint8_t>(inst.op));
    hashPattern(h, inst.pattern);
    h.add(inst.destSlot);
    h.add(inst.srcSlots[0]);
    h.add(inst.srcSlots[1]);
    h.add(inst.regPrefetch);
    h.add(inst.repeat);
    h.add(inst.swPrefetchable);
    // inst.pc is derived by finalize(); deliberately excluded.
}

} // namespace

std::uint64_t
hashKernel(const KernelDesc &kernel)
{
    Fnv1a h;
    h.add(kernel.name);
    h.add(kernel.warpsPerBlock);
    h.add(kernel.numBlocks);
    h.add(kernel.maxBlocksPerCore);
    h.add(static_cast<std::uint64_t>(kernel.segments.size()));
    for (const auto &seg : kernel.segments) {
        h.add(seg.trips);
        h.add(static_cast<std::uint64_t>(seg.insts.size()));
        for (const auto &inst : seg.insts)
            hashInst(h, inst);
    }
    return h.value();
}

Fingerprint
fingerprint(const SimConfig &cfg, const KernelDesc &kernel)
{
    Fingerprint fp;
    std::ostringstream os;
    cfg.dump(os);
    fp.config = os.str();
    fp.kernelName = kernel.name;
    fp.kernelHash = hashKernel(kernel);
    return fp;
}

std::size_t
FingerprintHash::operator()(const Fingerprint &fp) const
{
    Fnv1a h;
    h.add(fp.config);
    h.add(fp.kernelName);
    h.add(fp.kernelHash);
    return static_cast<std::size_t>(h.value());
}

} // namespace driver
} // namespace mtp
