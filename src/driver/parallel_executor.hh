/**
 * @file
 * Work-stealing thread pool for run-level parallelism.
 *
 * The simulator is strictly single-threaded *within* one run (a `Gpu`
 * is non-copyable and owns all of its state), but independent
 * `(SimConfig, KernelDesc)` runs share nothing — the cheapest large
 * win for a trace-driven simulator is therefore to execute whole runs
 * concurrently ("Parallelizing a modern GPU simulator", Huerta et al.).
 *
 * ParallelExecutor implements a work-stealing shape tuned for flat
 * fan-out: every worker owns a deque, runs it FIFO from the front
 * (harnesses consume results in submission order, so oldest-first
 * minimizes result() blocking — and a 1-worker pool degenerates to
 * exactly the sequential submission order), and when empty steals
 * from the *back* of a victim's deque to keep owner/thief contention
 * on opposite ends. External submissions are dealt round-robin across
 * the worker deques so a cold pool starts balanced.
 *
 * Futures returned by submit() are ordinary std::futures: block on
 * them in whatever order you want to consume results. Blocking on a
 * future from *inside* a worker task is not supported (a single-thread
 * pool would deadlock); the driver's RunCache never does.
 */

#ifndef MTP_DRIVER_PARALLEL_EXECUTOR_HH
#define MTP_DRIVER_PARALLEL_EXECUTOR_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/flight_recorder.hh"

namespace mtp {
namespace driver {

class ParallelExecutor
{
  public:
    /**
     * @param threads worker count; 0 picks defaultThreads().
     */
    explicit ParallelExecutor(unsigned threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Number of worker threads. */
    unsigned threads() const { return static_cast<unsigned>(queues_.size()); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned defaultThreads();

    /**
     * Executor width for two-level parallelism (jobs × intra-run
     * shards, DESIGN.md §10): an explicit @p jobs wins untouched;
     * otherwise the default width is divided by @p shards so the two
     * axes share one thread budget — jobs × shards stays near the
     * host core count instead of multiplying past it. Returns 0
     * ("pick the default") when neither axis asks for anything.
     */
    static unsigned budgetedThreads(unsigned jobs, unsigned shards);

    /** Tasks executed so far (for tests / reporting). */
    std::uint64_t executed() const { return executed_.load(); }

    /** Tasks stolen from another worker's deque (for tests). */
    std::uint64_t steals() const { return steals_.load(); }

    /**
     * Enqueue @p fn and return a future for its result. Safe to call
     * from any thread, including worker threads (a worker pushes onto
     * its own deque, avoiding cross-thread round-robin traffic).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        // packaged_task is move-only; std::function needs copyable.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task]() { (*task)(); });
        return fut;
    }

  private:
    /** One worker's deque; owner pops the front, thieves the back. */
    struct Queue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void enqueue(std::function<void()> fn);
    void workerLoop(unsigned self);
    bool popOwn(unsigned self, std::function<void()> &out);
    bool steal(unsigned self, std::function<void()> &out);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    // Sleep/wake machinery: pending_ counts queued-but-unstarted tasks;
    // workers sleep on cv_ when every deque is empty.
    std::mutex sleepMutex_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
    bool shutdown_ = false;

    std::atomic<std::uint64_t> nextQueue_{0}; //!< external round-robin
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> steals_{0};

    /** Flight-recorder liveness gauge mirroring pending_. */
    obs::FlightRecorder::Gauge pendingGauge_;

    // Worker threads look their own index up here.
    static thread_local int workerIndex_;
};

} // namespace driver
} // namespace mtp

#endif // MTP_DRIVER_PARALLEL_EXECUTOR_HH
