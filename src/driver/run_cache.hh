/**
 * @file
 * Thread-safe memoizing cache of simulation runs on top of the
 * ParallelExecutor.
 *
 * submit() files a (config, kernel) pair under its Fingerprint and, if
 * the pair is new, enqueues the simulation on the executor; duplicate
 * submissions — sequential or concurrent — attach to the existing
 * entry and never run the simulator twice. result() blocks until the
 * entry's run finishes and returns a reference that stays valid for
 * the cache's lifetime.
 *
 * The intended shape is two-phase: a harness submits its entire run
 * matrix up front (the executor's workers start chewing immediately),
 * then walks the matrix again calling result() in print order. With a
 * single worker that degenerates to exactly the old sequential
 * behaviour; with N workers the wall clock approaches the critical
 * path. Results are bit-identical either way because each run is
 * single-threaded and deterministic.
 *
 * result() must not be called from executor worker threads (it blocks;
 * see ParallelExecutor's header).
 */

#ifndef MTP_DRIVER_RUN_CACHE_HH
#define MTP_DRIVER_RUN_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "driver/fingerprint.hh"
#include "driver/parallel_executor.hh"
#include "obs/observer.hh"
#include "sim/gpu.hh"

namespace mtp {
namespace driver {

class RunCache
{
  public:
    /** @param exec executor the simulations are scheduled on (borrowed). */
    explicit RunCache(ParallelExecutor &exec) : exec_(exec) {}

    RunCache(const RunCache &) = delete;
    RunCache &operator=(const RunCache &) = delete;

    /**
     * Ensure a run for (cfg, kernel) is scheduled (or already done).
     * Returns immediately. Thread-safe.
     *
     * The optional @p ocfg attaches observation (sampling/tracing) to
     * the run if — and only if — this submission is the cache miss
     * that schedules it. Observation is read-only and never part of
     * the Fingerprint, so a later submission of the same (cfg, kernel)
     * with a different ObsConfig hits the existing entry and its
     * ObsConfig is ignored: first submission wins. Callers that need
     * guaranteed trace output for a key must therefore submit it with
     * the ObsConfig before any plain submission of that key.
     */
    void submit(const SimConfig &cfg, const KernelDesc &kernel,
                const obs::ObsConfig &ocfg = {});

    /**
     * Blocking lookup: submit if needed, wait for the run, return the
     * cached result. The reference remains valid until destruction.
     * Thread-safe; concurrent callers of the same key get the same
     * object. @p ocfg follows the same first-submission-wins rule as
     * submit().
     */
    const RunResult &result(const SimConfig &cfg,
                            const KernelDesc &kernel,
                            const obs::ObsConfig &ocfg = {});

    /** Distinct runs scheduled (cache misses). */
    std::uint64_t misses() const { return misses_.load(); }

    /** Submissions served from an existing entry. */
    std::uint64_t hits() const { return hits_.load(); }

    /**
     * Entries discarded to bound memory. Always 0: result() hands out
     * references that must stay valid for the cache's lifetime, so the
     * cache never evicts by contract. Exposed anyway so host-side
     * telemetry (host.cache.*) reports the full hit/miss/eviction
     * triple and a future bounded cache changes one number, not the
     * schema.
     */
    std::uint64_t evictions() const { return 0; }

    /** Number of distinct entries. */
    std::size_t size() const;

  private:
    struct Entry
    {
        std::shared_future<RunResult> future;
    };

    /** Find-or-create the entry, scheduling the run on a miss. */
    Entry &lookup(const SimConfig &cfg, const KernelDesc &kernel,
                  const obs::ObsConfig &ocfg);

    ParallelExecutor &exec_;
    mutable std::mutex mutex_;
    // unique_ptr values: rehashing must not move Entry objects, the
    // shared_futures handed out alias them.
    std::unordered_map<Fingerprint, std::unique_ptr<Entry>,
                       FingerprintHash>
        entries_;
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> hits_{0};
};

} // namespace driver
} // namespace mtp

#endif // MTP_DRIVER_RUN_CACHE_HH
