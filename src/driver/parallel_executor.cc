#include "driver/parallel_executor.hh"

#include <algorithm>
#include <string>

#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"

namespace mtp {
namespace driver {

thread_local int ParallelExecutor::workerIndex_ = -1;

unsigned
ParallelExecutor::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, hw);
}

unsigned
ParallelExecutor::budgetedThreads(unsigned jobs, unsigned shards)
{
    if (jobs != 0 || shards <= 1)
        return jobs;
    return std::max(1u, defaultThreads() / shards);
}

ParallelExecutor::ParallelExecutor(unsigned threads)
{
    unsigned n = threads ? threads : defaultThreads();
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<Queue>());
    // Flight-recorder liveness gauge: queued-but-unstarted tasks.
    // Distinguish executors (tests build several) by a global seq.
    static std::atomic<std::uint64_t> execSeq{0};
    pendingGauge_ = obs::FlightRecorder::acquireGauge(
        "exec" + std::to_string(execSeq.fetch_add(1)) + ".pending");
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
    obs::FlightRecorder::releaseGauge(pendingGauge_);
}

void
ParallelExecutor::enqueue(std::function<void()> fn)
{
    // A worker pushes onto its own back; external threads deal
    // round-robin so a burst of submissions lands spread out.
    unsigned target =
        workerIndex_ >= 0
            ? static_cast<unsigned>(workerIndex_)
            : static_cast<unsigned>(nextQueue_.fetch_add(1) %
                                    queues_.size());
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(fn));
    }
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        ++pending_;
        pendingGauge_.set(pending_);
    }
    cv_.notify_one();
}

bool
ParallelExecutor::popOwn(unsigned self, std::function<void()> &out)
{
    // Owner runs its deque FIFO: harnesses consume results in
    // submission order, so executing oldest-first minimizes how long
    // the next result() blocks (and makes a 1-worker pool exactly the
    // sequential order --jobs 1 promises).
    std::lock_guard<std::mutex> lock(queues_[self]->mutex);
    if (queues_[self]->tasks.empty())
        return false;
    out = std::move(queues_[self]->tasks.front());
    queues_[self]->tasks.pop_front();
    return true;
}

bool
ParallelExecutor::steal(unsigned self, std::function<void()> &out)
{
    unsigned n = static_cast<unsigned>(queues_.size());
    // Scan victims starting just past ourselves so thieves spread out.
    for (unsigned k = 1; k < n; ++k) {
        unsigned victim = (self + k) % n;
        std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
        if (queues_[victim]->tasks.empty())
            continue;
        // Thieves take from the opposite end (the newest task) so
        // they contend with the owner as little as possible.
        out = std::move(queues_[victim]->tasks.back());
        queues_[victim]->tasks.pop_back();
        steals_.fetch_add(1);
        return true;
    }
    return false;
}

void
ParallelExecutor::workerLoop(unsigned self)
{
    workerIndex_ = static_cast<int>(self);
    // Lazy naming: the profiler is usually enabled after the pool
    // spins up, so (re)try until a profiling session exists.
    bool named = false;
    for (;;) {
        if (!named && obs::HostProfiler::enabled()) {
            obs::HostProfiler::nameThread(
                ("exec" + std::to_string(self)).c_str());
            named = true;
        }
        std::function<void()> task;
        if (popOwn(self, task) || steal(self, task)) {
            {
                std::lock_guard<std::mutex> lock(sleepMutex_);
                --pending_;
                pendingGauge_.set(pending_);
            }
            {
                obs::HostScope hostTask(obs::HostPhase::RunTask);
                task();
            }
            executed_.fetch_add(1);
            // One beat per finished task: the watchdog treats a
            // draining executor as live.
            obs::FlightRecorder::beat();
            continue;
        }
        // Park time is wait-class for the host profiler: worker
        // utilization is (active - wait) / wall.
        obs::HostScope hostWait(obs::HostPhase::ExecWait);
        std::unique_lock<std::mutex> lock(sleepMutex_);
        // The destructor drains: exit only once nothing is pending.
        if (shutdown_ && pending_ == 0)
            return;
        if (pending_ == 0)
            cv_.wait(lock,
                     [this] { return pending_ > 0 || shutdown_; });
        // pending_ > 0: loop around and race for the task.
    }
}

} // namespace driver
} // namespace mtp
