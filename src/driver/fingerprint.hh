/**
 * @file
 * Run fingerprinting: the cache key a memoized simulation is filed
 * under. A key must change whenever *anything* that can change the
 * simulated outcome changes:
 *
 *   - every SimConfig field (taken from SimConfig::dump(), which
 *     prints all of them), and
 *   - the kernel's full content: name, launch geometry and the entire
 *     static instruction stream, hashed with FNV-1a.
 *
 * The previous bench cache keyed on name + counts only, so two
 * same-named kernel variants with equal instruction *counts* but
 * different bodies (e.g. a Fig. 14 ablation toggling one table, or a
 * software-prefetch variant changing only an address pattern) silently
 * shared an entry and returned the wrong RunResult. Hashing the stream
 * content closes that hole.
 */

#ifndef MTP_DRIVER_FINGERPRINT_HH
#define MTP_DRIVER_FINGERPRINT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/config.hh"
#include "trace/kernel.hh"

namespace mtp {
namespace driver {

/** FNV-1a 64-bit streaming hasher. */
class Fnv1a
{
  public:
    /** Fold @p len raw bytes into the hash. */
    void update(const void *data, std::size_t len);

    /** Fold a trivially-copyable value's object representation. */
    template <typename T>
    void
    add(const T &value)
    {
        update(&value, sizeof(value));
    }

    /** Fold a length-prefixed string (prefix avoids concat collisions). */
    void add(const std::string &s);

    std::uint64_t value() const { return hash_; }

  private:
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t prime = 0x100000001b3ULL;
    std::uint64_t hash_ = offsetBasis;
};

/**
 * FNV-1a hash of a kernel's complete content: name, geometry and every
 * field of every static instruction (including address patterns).
 * Finalization-derived PCs are excluded, so hashing before or after
 * finalize() gives the same value.
 */
std::uint64_t hashKernel(const KernelDesc &kernel);

/** Cache key: full config dump + kernel content hash. */
struct Fingerprint
{
    std::string config;       //!< SimConfig::dump() text, all fields
    std::string kernelName;   //!< kept readable for diagnostics
    std::uint64_t kernelHash = 0; //!< hashKernel() of the full stream

    bool operator==(const Fingerprint &other) const = default;
};

/** Build the fingerprint of one (config, kernel) run. */
Fingerprint fingerprint(const SimConfig &cfg, const KernelDesc &kernel);

/** Hash functor so Fingerprint can key an unordered_map. */
struct FingerprintHash
{
    std::size_t operator()(const Fingerprint &fp) const;
};

} // namespace driver
} // namespace mtp

#endif // MTP_DRIVER_FINGERPRINT_HH
