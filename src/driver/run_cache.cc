#include "driver/run_cache.hh"

#include "obs/host_profiler.hh"

namespace mtp {
namespace driver {

RunCache::Entry &
RunCache::lookup(const SimConfig &cfg, const KernelDesc &kernel,
                 const obs::ObsConfig &ocfg)
{
    obs::HostScope hostLookup(obs::HostPhase::CacheLookup);
    Fingerprint fp = fingerprint(cfg, kernel);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(fp);
    if (it != entries_.end()) {
        hits_.fetch_add(1);
        return *it->second;
    }
    misses_.fetch_add(1);
    // Insert time nests inside the lookup span; the profiler's
    // self-time accounting keeps the two rows disjoint.
    obs::HostScope hostInsert(obs::HostPhase::CacheInsert);
    auto entry = std::make_unique<Entry>();
    // The job owns copies: the caller's cfg/kernel/ocfg may die before
    // the worker runs. Observation is attached only here, on the miss
    // (first submission wins); it is read-only and keeps results
    // bit-identical, so cache hits stay valid regardless of ocfg.
    entry->future = exec_.submit(
        [cfg, kernel, ocfg]() { return simulate(cfg, kernel, ocfg); });
    auto [pos, inserted] = entries_.emplace(std::move(fp),
                                            std::move(entry));
    (void)inserted;
    return *pos->second;
}

void
RunCache::submit(const SimConfig &cfg, const KernelDesc &kernel,
                 const obs::ObsConfig &ocfg)
{
    lookup(cfg, kernel, ocfg);
}

const RunResult &
RunCache::result(const SimConfig &cfg, const KernelDesc &kernel,
                 const obs::ObsConfig &ocfg)
{
    return lookup(cfg, kernel, ocfg).future.get();
}

std::size_t
RunCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace driver
} // namespace mtp
