/**
 * @file
 * Host-side wall-clock profiler for the simulation *engine* itself
 * (DESIGN.md §12). The PR-3 observability stack answers "what is the
 * simulated GPU doing"; this layer answers "where does the simulator's
 * own wall-clock go" — per executor worker, per shard worker, per
 * engine phase (dispatch, core tick, memory tick, mailbox drain,
 * barrier wait, cache lookup, summarize, ...).
 *
 * Design constraints, in order:
 *
 *  1. Observer-only. Nothing here feeds back into simulation state;
 *     enabling the profiler cannot perturb simulated results, and its
 *     configuration never enters the RunCache fingerprint.
 *  2. Near-zero cost when disabled. A HostScope on the disabled path
 *     is one relaxed atomic load and a branch — no clock read, no TLS
 *     write. Engine hot loops additionally hoist the enabled check
 *     into a local bool once per run (the `HostScope(phase, on)`
 *     overload), making the disabled cost a predicted branch.
 *  3. Thread-safe and TSan-clean when enabled. Each thread owns its
 *     accumulators and ring buffer; cross-thread readers (snapshot,
 *     the watchdog) touch only atomics. Ring-buffer slots are plain
 *     relaxed atomic words, so a reader racing the owner can observe
 *     a torn *event* (start from one event, duration from another) —
 *     tolerated, the ring is diagnostic — but never a data race.
 *  4. Async-signal-safe dumping. dumpLastEvents() walks a fixed slot
 *     table and writes with write(2) and hand-rolled formatting, so
 *     the flight recorder can call it from a SIGSEGV handler.
 *
 * Wall-clock accounting contract (what `mtp-report host` sums):
 * per thread, every *outermost* scope span accrues to `activeNs`, and
 * every wait-class span (BarrierWait, ExecWait) accrues to `waitNs`
 * regardless of nesting depth. Therefore per thread over a profiling
 * window of W ns:
 *
 *     busy = activeNs - waitNs,  wait = waitNs,  idle = W - activeNs
 *
 * partition W exactly (up to scopes still open at snapshot time).
 * Per-phase tables use *self* time — a scope's span minus its nested
 * children — so phase rows also sum to activeNs exactly.
 */

#ifndef MTP_OBS_HOST_PROFILER_HH
#define MTP_OBS_HOST_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace mtp {
namespace obs {

/** Engine phases the host profiler attributes wall-clock to. */
enum class HostPhase : std::uint8_t
{
    KernelBuild,  //!< workload/kernel construction before simulation
    CacheLookup,  //!< RunCache fingerprint hash + map probe
    CacheInsert,  //!< RunCache miss path: entry insert + task submit
    RunTask,      //!< one whole executor task (usually one simulate())
    Dispatch,     //!< block-dispatcher phase of the cycle loop
    CoreTick,     //!< core tick phase (per shard)
    MemTick,      //!< memory-system tick phase (per shard)
    MailboxDrain, //!< serial cross-shard mailbox drain
    HorizonSkip,  //!< joint event-horizon computation + fast-forward
    BarrierWait,  //!< EpochBarrier wait (spin + futex park)
    ExecWait,     //!< executor worker idle, parked on the task condvar
    Sample,       //!< observability sampling / warp-sample bookkeeping
    Summarize,    //!< end-of-run stat summarize
};

constexpr int kNumHostPhases = static_cast<int>(HostPhase::Summarize) + 1;

/** Stable lower-case name ("core_tick") used in JSONL and traces. */
const char *toString(HostPhase p);

/** Phases that represent waiting rather than doing work. */
constexpr bool
isWaitPhase(HostPhase p)
{
    return p == HostPhase::BarrierWait || p == HostPhase::ExecWait;
}

/**
 * Process-wide host profiler. All state is static: the engine has
 * exactly one wall-clock, and instrumentation sites (executor loops,
 * shard workers) outlive any single run.
 */
class HostProfiler
{
  public:
    static constexpr std::uint32_t kDefaultRingCapacity = 4096;
    static constexpr int kMaxThreads = 256;

    /** One completed scope, read back from a thread's ring buffer. */
    struct Event
    {
        HostPhase phase;
        std::uint64_t startNs; //!< monotonic clock, see nowNs()
        std::uint64_t durNs;
    };

    /** Copied accumulators + ring tail for one registered thread. */
    struct ThreadSnapshot
    {
        std::string name;
        std::uint64_t activeNs = 0; //!< sum of outermost scope spans
        std::uint64_t waitNs = 0;   //!< sum of wait-class scope spans
        std::uint64_t phaseNs[kNumHostPhases] = {};    //!< self time
        std::uint64_t phaseCount[kNumHostPhases] = {};
        std::vector<Event> events; //!< oldest-first ring tail
    };

    struct Snapshot
    {
        std::uint64_t enabledAtNs = 0; //!< when enable() was called
        std::uint64_t takenAtNs = 0;   //!< when snapshot() was called
        std::vector<ThreadSnapshot> threads;
    };

    /** Cheap global check — this is the disabled-path cost. */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Start a profiling session. Threads register lazily on their
     * first scope after this call; re-enabling starts a fresh
     * generation (prior per-thread state is retired, not freed, so
     * scopes racing the transition stay safe). Idempotent while
     * already enabled.
     */
    static void enable(std::uint32_t ringCapacity = kDefaultRingCapacity);

    /** Stop accruing. Accumulated state stays readable. */
    static void disable();

    /**
     * Name the calling thread in reports ("exec0", "shard2"). First
     * call wins; later calls on a named thread are ignored (the name
     * is published once so readers never race a rewrite).
     */
    static void nameThread(const char *name);

    /** Monotonic wall-clock in ns (CLOCK_MONOTONIC). */
    static std::uint64_t nowNs();

    /** nowNs() recorded by the most recent enable() (0 if never). */
    static std::uint64_t enabledAtNs();

    /** Copy out every current-generation thread's accumulators. */
    static Snapshot snapshot(bool includeEvents = false);

    /**
     * Async-signal-safe: write the last @p perThread ring events of
     * every registered thread to @p fd using only write(2).
     */
    static void dumpLastEvents(int fd, int perThread);

    /** Opaque per-thread state; defined in the .cc only. */
    struct ThreadState;

  private:
    friend class HostScope;

    /** Register-or-fetch the calling thread's state (null if the
     *  slot table is full — scopes then no-op). */
    static ThreadState *threadState();

    static std::atomic<bool> enabled_;
};

/**
 * RAII scoped timer. Construct at a phase boundary; destruction
 * records the span into the calling thread's accumulators and ring.
 */
class HostScope
{
  public:
    explicit HostScope(HostPhase p) : on_(HostProfiler::enabled())
    {
        if (on_)
            begin(p);
    }

    /**
     * Hot-loop variant: @p on is typically
     * `HostProfiler::enabled()` hoisted into a local once per run, so
     * the per-iteration disabled cost is a predicted branch with no
     * atomic load.
     */
    HostScope(HostPhase p, bool on) : on_(on)
    {
        if (on_)
            begin(p);
    }

    ~HostScope()
    {
        if (on_)
            end();
    }

    HostScope(const HostScope &) = delete;
    HostScope &operator=(const HostScope &) = delete;

  private:
    void begin(HostPhase p); //!< may clear on_ (slot table full)
    void end();

    bool on_;
};

/**
 * Serialize a snapshot (plus caller-supplied scalar counters such as
 * cache hit rates and runs/sec) as `host.*` JSONL records — the
 * artifact `mtp-report host` consumes. Layout:
 *
 *   {"type":"host.meta","enabledNs":...,"wallNs":...,"threads":N}
 *   {"type":"host.thread","name":...,"activeNs":...,"waitNs":...,
 *    "phases":{"core_tick":{"ns":...,"count":...},...}}   (per thread)
 *   {"type":"host.counter","name":...,"value":...}        (per counter)
 */
void writeHostProfileJsonl(
    std::FILE *f, const HostProfiler::Snapshot &snap,
    const std::vector<std::pair<std::string, double>> &counters);

namespace detail {

/** write(2) a NUL-terminated string; async-signal-safe. */
void writeFd(int fd, const char *s);

/** write(2) @p v in decimal; async-signal-safe. */
void writeFdU64(int fd, std::uint64_t v);

} // namespace detail

} // namespace obs
} // namespace mtp

#endif // MTP_OBS_HOST_PROFILER_HH
