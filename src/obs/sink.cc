#include "obs/sink.hh"

#include <cinttypes>
#include <cstring>

#include "common/log.hh"
#include "obs/json.hh"

namespace mtp {
namespace obs {

namespace {

/** Shortest round-trippable representation of a double for JSON/CSV. */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) {
        // Try shorter forms; the first that round-trips wins.
        for (int prec = 1; prec <= 16; ++prec) {
            char s[40];
            std::snprintf(s, sizeof(s), "%.*g", prec, v);
            std::sscanf(s, "%lf", &parsed);
            if (parsed == v)
                return s;
        }
    }
    return buf;
}

std::FILE *
openOrDie(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        MTP_FATAL("cannot open trace output '", path, "'");
    return f;
}

/** Append the Chrome JSON body of @p ev (no surrounding braces). */
void
appendEventBody(std::string &out, const TraceEvent &ev)
{
    out += "\"name\":\"";
    out += jsonEscape(ev.name);
    out += "\",\"ph\":\"";
    out += ev.ph;
    out += "\",\"pid\":";
    out += std::to_string(ev.pid);
    out += ",\"tid\":";
    out += std::to_string(ev.tid);
    if (ev.ph != 'M') {
        out += ",\"ts\":";
        out += std::to_string(ev.ts);
    }
    if (ev.ph == 'X') {
        out += ",\"dur\":";
        out += std::to_string(ev.dur);
    }
    if (!ev.args.empty() || !ev.sargs.empty()) {
        out += ",\"args\":{";
        bool first = true;
        for (const auto &[key, value] : ev.args) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(key);
            out += "\":";
            out += formatDouble(value);
        }
        for (const auto &[key, value] : ev.sargs) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(key);
            out += "\":\"";
            out += jsonEscape(value);
            out += '"';
        }
        out += '}';
    }
}

} // namespace

// --- CsvTimeSeriesSink ---------------------------------------------------

CsvTimeSeriesSink::CsvTimeSeriesSink(const std::string &path)
    : file_(openOrDie(path))
{
}

CsvTimeSeriesSink::~CsvTimeSeriesSink()
{
    close();
}

void
CsvTimeSeriesSink::sampleSchema(const std::vector<SampleColumn> &columns)
{
    std::string header = "cycle";
    for (const auto &col : columns) {
        header += ',';
        header += col.name;
    }
    header += '\n';
    std::fwrite(header.data(), 1, header.size(), file_);
}

void
CsvTimeSeriesSink::sample(Cycle cycle, const std::vector<double> &values)
{
    std::string row = std::to_string(cycle);
    for (double v : values) {
        row += ',';
        row += formatDouble(v);
    }
    row += '\n';
    std::fwrite(row.data(), 1, row.size(), file_);
}

void
CsvTimeSeriesSink::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

// --- JsonlSink -----------------------------------------------------------

JsonlSink::JsonlSink(const std::string &path)
    : file_(openOrDie(path)), owned_(true)
{
}

JsonlSink::JsonlSink(std::FILE *borrowed) : file_(borrowed), owned_(false)
{
}

JsonlSink::~JsonlSink()
{
    close();
}

void
JsonlSink::writeLine(const std::string &line)
{
    // One fwrite per record: POSIX stream writes are locked, so whole
    // lines never interleave even when runs share the stream.
    std::fwrite(line.data(), 1, line.size(), file_);
}

void
JsonlSink::event(const TraceEvent &ev)
{
    std::string line = "{\"t\":\"event\",";
    appendEventBody(line, ev);
    line += "}\n";
    writeLine(line);
}

void
JsonlSink::sampleSchema(const std::vector<SampleColumn> &columns)
{
    columns_.clear();
    std::string line = "{\"t\":\"schema\",\"columns\":[";
    for (std::size_t i = 0; i < columns.size(); ++i) {
        columns_.push_back(columns[i].name);
        if (i)
            line += ',';
        line += '"';
        line += jsonEscape(columns[i].name);
        line += '"';
    }
    line += "]}\n";
    writeLine(line);
}

void
JsonlSink::sample(Cycle cycle, const std::vector<double> &values)
{
    std::string line = "{\"t\":\"sample\",\"cycle\":";
    line += std::to_string(cycle);
    line += ",\"v\":{";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            line += ',';
        line += '"';
        line += i < columns_.size() ? jsonEscape(columns_[i])
                                    : "col" + std::to_string(i);
        line += "\":";
        line += formatDouble(values[i]);
    }
    line += "}}\n";
    writeLine(line);
}

void
JsonlSink::histogram(const std::string &name, const Histogram &h)
{
    std::string line = "{\"t\":\"hist\",\"name\":\"";
    line += jsonEscape(name);
    line += "\",\"count\":";
    line += std::to_string(h.count());
    line += ",\"mean\":";
    line += formatDouble(h.mean());
    line += ",\"min\":";
    line += formatDouble(h.minValue());
    line += ",\"max\":";
    line += formatDouble(h.maxValue());
    line += ",\"underflow\":";
    line += std::to_string(h.underflow());
    line += ",\"overflow\":";
    line += std::to_string(h.overflow());
    line += ",\"buckets\":[";
    for (unsigned i = 0; i < h.buckets(); ++i) {
        if (i)
            line += ',';
        line += std::to_string(h.bucketCount(i));
    }
    line += "]}\n";
    writeLine(line);
}

void
JsonlSink::close()
{
    if (!file_)
        return;
    if (owned_)
        std::fclose(file_);
    else
        std::fflush(file_);
    file_ = nullptr;
}

// --- ChromeTraceSink -----------------------------------------------------

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : file_(openOrDie(path))
{
    const char *head = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    std::fwrite(head, 1, std::strlen(head), file_);
}

ChromeTraceSink::~ChromeTraceSink()
{
    close();
}

void
ChromeTraceSink::emit(const std::string &record)
{
    std::string out;
    out.reserve(record.size() + 2);
    if (!first_)
        out += ",\n";
    first_ = false;
    out += record;
    std::fwrite(out.data(), 1, out.size(), file_);
}

void
ChromeTraceSink::event(const TraceEvent &ev)
{
    std::string record = "{";
    appendEventBody(record, ev);
    record += '}';
    emit(record);
}

void
ChromeTraceSink::sampleSchema(const std::vector<SampleColumn> &columns)
{
    columns_ = columns;
}

void
ChromeTraceSink::sample(Cycle cycle, const std::vector<double> &values)
{
    // One counter event per column, on the column's track.
    for (std::size_t i = 0; i < values.size() && i < columns_.size();
         ++i) {
        TraceEvent ev;
        ev.name = columns_[i].name;
        ev.ph = 'C';
        ev.ts = cycle;
        ev.pid = columns_[i].pid;
        ev.args.emplace_back("value", values[i]);
        event(ev);
    }
}

void
ChromeTraceSink::close()
{
    if (!file_)
        return;
    const char *tail = "]}\n";
    std::fwrite(tail, 1, std::strlen(tail), file_);
    std::fclose(file_);
    file_ = nullptr;
}

// --- CaptureSink ---------------------------------------------------------

int
CaptureSink::column(const std::string &name) const
{
    for (std::size_t i = 0; i < schema.size(); ++i) {
        if (schema[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace obs
} // namespace mtp
