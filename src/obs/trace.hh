/**
 * @file
 * Request/prefetch lifecycle tracing. Simulation components call the
 * recorder at each lifecycle transition; the recorder emits one trace
 * event per transition to the attached sinks, tracks per-address
 * in-flight timestamps, and folds the stage-to-stage deltas into
 * latency-breakdown Histograms (MRQ wait, interconnect, DRAM queueing,
 * DRAM service, response network, total round trip).
 *
 * Zero cost when disabled: hot paths hold a TraceRecorder pointer that
 * stays null unless an event stream is configured, and every call site
 * goes through MTP_OBS_HOOK — a null check when MTP_OBS_ENABLED (the
 * default), compiled out entirely with -DMTP_OBS_ENABLED=0.
 *
 * The recorder is an observer only: it never feeds values back into
 * the simulation, so enabling it cannot change simulated results.
 */

#ifndef MTP_OBS_TRACE_HH
#define MTP_OBS_TRACE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/sink.hh"

#ifndef MTP_OBS_ENABLED
#define MTP_OBS_ENABLED 1
#endif

#if MTP_OBS_ENABLED
/** Invoke @p call on tracer pointer @p ptr when tracing is attached. */
#define MTP_OBS_HOOK(ptr, call) \
    do { \
        if (ptr) \
            (ptr)->call; \
    } while (0)
#else
#define MTP_OBS_HOOK(ptr, call) \
    do { \
    } while (0)
#endif

namespace mtp {
namespace obs {

/**
 * Memory-request lifecycle stages, in pipeline order. Type codes in
 * the stage API follow mtp::ReqType's enumerator order (0 = demand
 * load, 1 = demand store, 2 = software prefetch, 3 = hardware
 * prefetch); obs deliberately doesn't include mem headers.
 */
enum class Stage : std::uint8_t
{
    Coalesce,     //!< warp access coalesced into transactions (core)
    MrqEnqueue,   //!< accepted into the core's MRQ
    IcntInject,   //!< won injection into the request network
    DramEnqueue,  //!< arrived in the channel's request buffer
    DramSchedule, //!< picked by the FR-FCFS scheduler
    DramDone,     //!< data transfer + pipeline latency finished
    Return,       //!< response delivered to a core
};

/** Prefetch-block lifecycle events. */
enum class PrefEvent : std::uint8_t
{
    Issued,          //!< sent to the memory system
    DroppedThrottle, //!< dropped by a throttle engine
    DroppedResident, //!< dropped: already resident or in flight
    DroppedFull,     //!< dropped: MSHR or MRQ full
    LateMerge,       //!< a demand merged into the in-flight prefetch
    Fill,            //!< returned data filled the prefetch cache
    Useful,          //!< first demand hit on a prefetched block
    EarlyEvict,      //!< evicted before any use
};

const char *toString(Stage s);
const char *toString(PrefEvent ev);
const char *reqTypeName(std::uint8_t type);

/** Collects lifecycle events; fan-out to sinks + latency histograms. */
class TraceRecorder
{
  public:
    /**
     * @param lifecycle emit request/prefetch lifecycle streams
     * @param throttle emit throttle period-update events
     */
    TraceRecorder(bool lifecycle, bool throttle);

    /** Attach a sink (borrowed; must outlive the recorder). */
    void addSink(EventSink *sink);

    bool lifecycleEnabled() const { return lifecycle_; }
    bool throttleEnabled() const { return throttle_; }

    /** A warp access was coalesced into @p txns transactions. */
    void coalesce(CoreId core, Addr leadAddr, std::uint8_t type,
                  std::size_t txns, Cycle now);

    /** Request @p addr reached lifecycle stage @p s. */
    void stage(Stage s, Addr addr, std::uint8_t type, CoreId core,
               unsigned channel, Cycle now);

    /** Prefetch lifecycle event for block @p addr on @p core. */
    void pref(PrefEvent ev, Addr addr, CoreId core, Cycle now);

    /** One throttle-engine period update on @p core. */
    void throttleUpdate(CoreId core, Cycle now, std::uint64_t update,
                        std::uint64_t dFills, std::uint64_t dEarly,
                        std::uint64_t dUseful, double mergeRatio,
                        unsigned degree);

    /** Latency breakdown histograms (cycles). */
    const Histogram &histMrqWait() const { return histMrq_; }
    const Histogram &histIcntReq() const { return histIcntReq_; }
    const Histogram &histDramQueue() const { return histDramQueue_; }
    const Histogram &histDramService() const { return histDramSvc_; }
    const Histogram &histIcntResp() const { return histIcntResp_; }
    const Histogram &histTotal() const { return histTotal_; }

    /** Requests whose full round trip was observed. */
    std::uint64_t completedRequests() const { return completed_; }

    /** Emit histogram summaries to the sinks; idempotent. */
    void finish();

  private:
    static constexpr std::size_t numStages = 7;

    void emit(const TraceEvent &ev);

    /** Close out @p addr's in-flight record at @p lastStage. */
    void finalize(Addr addr, std::uint8_t type, CoreId core,
                  unsigned channel, Stage lastStage, Cycle now);

    bool lifecycle_;
    bool throttle_;
    bool finished_ = false;
    std::vector<EventSink *> sinks_;

    /** Per-address stage timestamps (invalidCycle = not reached). */
    std::unordered_map<Addr, std::array<Cycle, numStages>> inflight_;

    std::uint64_t completed_ = 0;
    Histogram histMrq_{0.0, 1024.0, 64};
    Histogram histIcntReq_{0.0, 256.0, 32};
    Histogram histDramQueue_{0.0, 2048.0, 64};
    Histogram histDramSvc_{0.0, 1024.0, 64};
    Histogram histIcntResp_{0.0, 256.0, 32};
    Histogram histTotal_{0.0, 4096.0, 64};
};

} // namespace obs
} // namespace mtp

#endif // MTP_OBS_TRACE_HH
