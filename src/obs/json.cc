#include "obs/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mtp {
namespace obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace {

/** Recursive-descent parser over a string_view with offset tracking. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    static constexpr unsigned maxDepth = 64;

    bool
    fail(const std::string &what)
    {
        if (error_ && error_->empty())
            *error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    // Validation only needs a placeholder, not UTF-8.
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(double &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        return true;
    }

    bool
    parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.object[key] = std::move(member);
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return expect('}');
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue element;
                if (!parseValue(element, depth + 1))
                    return false;
                out.array.push_back(std::move(element));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return expect(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        out.kind = JsonValue::Kind::Number;
        return parseNumber(out.number);
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

bool
validationFail(std::string *error, const std::string &what)
{
    if (error && error->empty())
        *error = what;
    return false;
}

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.parseDocument(out);
}

bool
validateChromeTrace(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    JsonValue doc;
    if (!parseJson(text, doc, error))
        return false;
    if (!doc.isObject())
        return validationFail(error, "top level is not an object");
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray())
        return validationFail(error, "missing traceEvents array");
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &ev = events->array[i];
        std::string at = "traceEvents[" + std::to_string(i) + "]";
        if (!ev.isObject())
            return validationFail(error, at + " is not an object");
        const JsonValue *name = ev.find("name");
        if (!name || !name->isString())
            return validationFail(error, at + " missing string name");
        const JsonValue *ph = ev.find("ph");
        if (!ph || !ph->isString() || ph->str.size() != 1)
            return validationFail(error,
                                  at + " missing one-character ph");
        const JsonValue *pid = ev.find("pid");
        if (!pid || !pid->isNumber())
            return validationFail(error, at + " missing numeric pid");
        const JsonValue *tid = ev.find("tid");
        if (!tid || !tid->isNumber())
            return validationFail(error, at + " missing numeric tid");
        char phase = ph->str[0];
        if (phase != 'M') {
            const JsonValue *ts = ev.find("ts");
            if (!ts || !ts->isNumber())
                return validationFail(error, at + " missing numeric ts");
        }
        if (phase == 'X') {
            const JsonValue *dur = ev.find("dur");
            if (!dur || !dur->isNumber() || dur->number < 0)
                return validationFail(
                    error, at + " complete event without dur >= 0");
        }
        if (phase == 'C') {
            const JsonValue *args = ev.find("args");
            if (!args || !args->isObject() || args->object.empty())
                return validationFail(
                    error, at + " counter event without args");
            for (const auto &[key, value] : args->object) {
                if (!value.isNumber())
                    return validationFail(error, at + " counter arg '" +
                                                     key +
                                                     "' not numeric");
            }
        }
        if (phase == 'M') {
            const JsonValue *args = ev.find("args");
            if (!args || !args->isObject())
                return validationFail(
                    error, at + " metadata event without args");
        }
    }
    return true;
}

} // namespace obs
} // namespace mtp
