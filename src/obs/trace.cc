#include "obs/trace.hh"

#include <cinttypes>
#include <cstdio>

#include "common/log.hh"

namespace mtp {
namespace obs {

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64,
                  static_cast<std::uint64_t>(addr));
    return buf;
}

constexpr std::size_t
stageIndex(Stage s)
{
    return static_cast<std::size_t>(s);
}

/** Does this stage's event belong on the channel track? */
constexpr bool
isChannelStage(Stage s)
{
    return s == Stage::DramEnqueue || s == Stage::DramSchedule ||
           s == Stage::DramDone;
}

} // namespace

const char *
toString(Stage s)
{
    switch (s) {
      case Stage::Coalesce:
        return "coalesce";
      case Stage::MrqEnqueue:
        return "mrq_enq";
      case Stage::IcntInject:
        return "icnt_inject";
      case Stage::DramEnqueue:
        return "dram_enq";
      case Stage::DramSchedule:
        return "dram_sched";
      case Stage::DramDone:
        return "dram_done";
      case Stage::Return:
        return "return";
    }
    return "?";
}

const char *
toString(PrefEvent ev)
{
    switch (ev) {
      case PrefEvent::Issued:
        return "issued";
      case PrefEvent::DroppedThrottle:
        return "dropped_throttle";
      case PrefEvent::DroppedResident:
        return "dropped_resident";
      case PrefEvent::DroppedFull:
        return "dropped_full";
      case PrefEvent::LateMerge:
        return "late_merge";
      case PrefEvent::Fill:
        return "fill";
      case PrefEvent::Useful:
        return "useful";
      case PrefEvent::EarlyEvict:
        return "early_evict";
    }
    return "?";
}

const char *
reqTypeName(std::uint8_t type)
{
    switch (type) {
      case 0:
        return "load";
      case 1:
        return "store";
      case 2:
        return "sw_pref";
      case 3:
        return "hw_pref";
    }
    return "?";
}

TraceRecorder::TraceRecorder(bool lifecycle, bool throttle)
    : lifecycle_(lifecycle), throttle_(throttle)
{
}

void
TraceRecorder::addSink(EventSink *sink)
{
    MTP_ASSERT(sink, "null sink");
    sinks_.push_back(sink);
}

void
TraceRecorder::emit(const TraceEvent &ev)
{
    for (auto *sink : sinks_)
        sink->event(ev);
}

void
TraceRecorder::coalesce(CoreId core, Addr leadAddr, std::uint8_t type,
                        std::size_t txns, Cycle now)
{
    if (!lifecycle_)
        return;
    TraceEvent ev;
    ev.name = std::string("req:") + toString(Stage::Coalesce);
    ev.ph = 'i';
    ev.ts = now;
    ev.pid = trackForCore(core);
    ev.args.emplace_back("txns", static_cast<double>(txns));
    ev.sargs.emplace_back("addr", hexAddr(leadAddr));
    ev.sargs.emplace_back("type", reqTypeName(type));
    emit(ev);
}

void
TraceRecorder::stage(Stage s, Addr addr, std::uint8_t type, CoreId core,
                     unsigned channel, Cycle now)
{
    if (!lifecycle_)
        return;
    MTP_ASSERT(s != Stage::Coalesce, "use coalesce() for that stage");

    auto [it, fresh] = inflight_.try_emplace(addr);
    if (fresh)
        it->second.fill(invalidCycle);
    it->second[stageIndex(s)] = now;

    TraceEvent ev;
    ev.name = std::string("req:") + toString(s);
    ev.ph = 'i';
    ev.ts = now;
    ev.pid = isChannelStage(s) ? trackForChannel(channel)
                               : trackForCore(core);
    ev.sargs.emplace_back("addr", hexAddr(addr));
    ev.sargs.emplace_back("type", reqTypeName(type));
    emit(ev);

    // Stores complete at the controller (no response); everything else
    // closes out when its response reaches a core.
    if (s == Stage::Return || (s == Stage::DramDone && type == 1))
        finalize(addr, type, core, channel, s, now);
}

void
TraceRecorder::finalize(Addr addr, std::uint8_t type, CoreId core,
                        unsigned channel, Stage lastStage, Cycle now)
{
    auto it = inflight_.find(addr);
    if (it == inflight_.end())
        return; // a later sharer of an already-finalized response
    const auto &ts = it->second;

    auto at = [&](Stage s) { return ts[stageIndex(s)]; };
    auto span = [&](Stage from, Stage to, Histogram &h) {
        if (at(from) != invalidCycle && at(to) != invalidCycle)
            h.sample(static_cast<double>(at(to) - at(from)));
    };
    span(Stage::MrqEnqueue, Stage::IcntInject, histMrq_);
    span(Stage::IcntInject, Stage::DramEnqueue, histIcntReq_);
    span(Stage::DramEnqueue, Stage::DramSchedule, histDramQueue_);
    span(Stage::DramSchedule, Stage::DramDone, histDramSvc_);
    if (lastStage == Stage::Return)
        span(Stage::DramDone, Stage::Return, histIcntResp_);

    if (at(Stage::DramSchedule) != invalidCycle &&
        at(Stage::DramDone) != invalidCycle) {
        TraceEvent ev;
        ev.name = std::string("dram:") + reqTypeName(type);
        ev.ph = 'X';
        ev.ts = at(Stage::DramSchedule);
        ev.dur = at(Stage::DramDone) - at(Stage::DramSchedule);
        ev.pid = trackForChannel(channel);
        ev.sargs.emplace_back("addr", hexAddr(addr));
        emit(ev);
    }
    if (at(Stage::MrqEnqueue) != invalidCycle) {
        Cycle total = now - at(Stage::MrqEnqueue);
        histTotal_.sample(static_cast<double>(total));
        TraceEvent ev;
        ev.name = std::string("mem:") + reqTypeName(type);
        ev.ph = 'X';
        ev.ts = at(Stage::MrqEnqueue);
        ev.dur = total;
        ev.pid = trackForCore(core);
        ev.sargs.emplace_back("addr", hexAddr(addr));
        emit(ev);
        ++completed_;
    }
    inflight_.erase(it);
}

void
TraceRecorder::pref(PrefEvent evKind, Addr addr, CoreId core, Cycle now)
{
    if (!lifecycle_)
        return;
    TraceEvent ev;
    ev.name = std::string("pref:") + toString(evKind);
    ev.ph = 'i';
    ev.ts = now;
    ev.pid = trackForCore(core);
    ev.sargs.emplace_back("addr", hexAddr(addr));
    emit(ev);
}

void
TraceRecorder::throttleUpdate(CoreId core, Cycle now, std::uint64_t update,
                              std::uint64_t dFills, std::uint64_t dEarly,
                              std::uint64_t dUseful, double mergeRatio,
                              unsigned degree)
{
    if (!throttle_)
        return;
    TraceEvent ev;
    ev.name = "throttle:update";
    ev.ph = 'i';
    ev.ts = now;
    ev.pid = trackForCore(core);
    ev.args.emplace_back("update", static_cast<double>(update));
    ev.args.emplace_back("fills", static_cast<double>(dFills));
    ev.args.emplace_back("early", static_cast<double>(dEarly));
    ev.args.emplace_back("useful", static_cast<double>(dUseful));
    ev.args.emplace_back("mergeRatio", mergeRatio);
    ev.args.emplace_back("degree", static_cast<double>(degree));
    emit(ev);
}

void
TraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (!lifecycle_)
        return;
    for (auto *sink : sinks_) {
        sink->histogram("latency.mrqWait", histMrq_);
        sink->histogram("latency.icntReq", histIcntReq_);
        sink->histogram("latency.dramQueue", histDramQueue_);
        sink->histogram("latency.dramService", histDramSvc_);
        sink->histogram("latency.icntResp", histIcntResp_);
        sink->histogram("latency.total", histTotal_);
    }
}

} // namespace obs
} // namespace mtp
