/**
 * @file
 * Pluggable observability sinks. Producers (the periodic Sampler and
 * the lifecycle TraceRecorder) emit two kinds of records:
 *
 *  - discrete trace events (request lifecycle stages, prefetch
 *    outcomes, throttle decisions), modelled on the Chrome trace-event
 *    format so one record maps onto Perfetto phases directly;
 *  - periodic samples: one row of probe values per sample boundary.
 *
 * Three concrete sinks cover the tooling paths: CSV time series for
 * spreadsheets/plotting, JSONL for ad-hoc scripting, and Chrome
 * trace-event JSON loadable in Perfetto / chrome://tracing (one track
 * per core and per DRAM channel, selected by the record's pid).
 */

#ifndef MTP_OBS_SINK_HH
#define MTP_OBS_SINK_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mtp {
namespace obs {

/** Track (Perfetto "process") ids: one per core, one per channel. */
constexpr int trackForCore(CoreId core)
{
    return static_cast<int>(core);
}
constexpr int trackForChannel(unsigned channel)
{
    return 1000 + static_cast<int>(channel);
}
constexpr int trackGlobal = 2000;

/**
 * Host-thread tracks (DESIGN.md §12): one per profiled host thread,
 * plus a clock-sync track carrying `host.simCycle` counter samples
 * that correlate the host-time tracks (real microseconds since the
 * profiling window opened) with the sim tracks (one microsecond per
 * simulated cycle).
 */
constexpr int trackForHostThread(int thread)
{
    return 3000 + thread;
}
constexpr int trackHostClock = 2999;

/** One discrete trace record (Chrome trace-event phases). */
struct TraceEvent
{
    std::string name;
    char ph = 'i'; //!< 'i' instant, 'X' complete, 'C' counter, 'M' meta
    Cycle ts = 0;  //!< core cycle (exported as microseconds 1:1)
    Cycle dur = 0; //!< duration in cycles, 'X' only
    int pid = trackGlobal;
    int tid = 0;
    std::vector<std::pair<std::string, double>> args;
    std::vector<std::pair<std::string, std::string>> sargs;
};

/** One column of the periodic sample row. */
struct SampleColumn
{
    std::string name;
    int pid = trackGlobal; //!< track the value belongs to
};

/** Abstract sink; implementations may ignore record kinds. */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** A discrete trace event. */
    virtual void
    event(const TraceEvent &ev)
    {
        (void)ev;
    }

    /** The sample schema, sent once before the first sample() call. */
    virtual void
    sampleSchema(const std::vector<SampleColumn> &columns)
    {
        (void)columns;
    }

    /** One sample row; values align with the schema columns. */
    virtual void
    sample(Cycle cycle, const std::vector<double> &values)
    {
        (void)cycle;
        (void)values;
    }

    /** A finished latency-breakdown histogram (end of run). */
    virtual void
    histogram(const std::string &name, const Histogram &h)
    {
        (void)name;
        (void)h;
    }

    /** Flush and finalize the output; idempotent. */
    virtual void close() {}
};

/** Periodic samples as CSV: "cycle,<probe>,<probe>,..." rows. */
class CsvTimeSeriesSink : public EventSink
{
  public:
    explicit CsvTimeSeriesSink(const std::string &path);
    ~CsvTimeSeriesSink() override;

    void sampleSchema(const std::vector<SampleColumn> &columns) override;
    void sample(Cycle cycle, const std::vector<double> &values) override;
    void close() override;

  private:
    std::FILE *file_ = nullptr;
};

/**
 * Every record as one JSON object per line. Each line is written with
 * a single fwrite(), so concurrent runs sharing the stream (e.g. the
 * stderr throttle-trace alias under the parallel driver) never
 * interleave partial lines.
 */
class JsonlSink : public EventSink
{
  public:
    /** Open @p path for writing. */
    explicit JsonlSink(const std::string &path);

    /** Write to a borrowed stream (not closed), e.g. stderr. */
    explicit JsonlSink(std::FILE *borrowed);

    ~JsonlSink() override;

    void event(const TraceEvent &ev) override;
    void sampleSchema(const std::vector<SampleColumn> &columns) override;
    void sample(Cycle cycle, const std::vector<double> &values) override;
    void histogram(const std::string &name, const Histogram &h) override;
    void close() override;

  private:
    void writeLine(const std::string &line);

    std::FILE *file_ = nullptr;
    bool owned_ = false;
    std::vector<std::string> columns_;
};

/**
 * Chrome trace-event JSON ({"traceEvents": [...]}). Trace events map
 * 1:1; sample rows become one counter ('C') event per column on the
 * column's track. Cycle timestamps are exported as microseconds 1:1,
 * so one Perfetto microsecond is one core cycle.
 */
class ChromeTraceSink : public EventSink
{
  public:
    explicit ChromeTraceSink(const std::string &path);
    ~ChromeTraceSink() override;

    void event(const TraceEvent &ev) override;
    void sampleSchema(const std::vector<SampleColumn> &columns) override;
    void sample(Cycle cycle, const std::vector<double> &values) override;
    void close() override;

  private:
    void emit(const std::string &record);

    std::FILE *file_ = nullptr;
    bool first_ = true;
    std::vector<SampleColumn> columns_;
};

/** In-memory sink for tests and programmatic consumers. */
class CaptureSink : public EventSink
{
  public:
    struct SampleRow
    {
        Cycle cycle;
        std::vector<double> values;
    };

    void
    event(const TraceEvent &ev) override
    {
        events.push_back(ev);
    }

    void
    sampleSchema(const std::vector<SampleColumn> &columns) override
    {
        schema = columns;
    }

    void
    sample(Cycle cycle, const std::vector<double> &values) override
    {
        samples.push_back({cycle, values});
    }

    void
    histogram(const std::string &name, const Histogram &h) override
    {
        histograms.emplace_back(name, &h);
    }

    /** Index of column @p name in the schema, or -1. */
    int column(const std::string &name) const;

    std::vector<TraceEvent> events;
    std::vector<SampleColumn> schema;
    std::vector<SampleRow> samples;
    std::vector<std::pair<std::string, const Histogram *>> histograms;
};

} // namespace obs
} // namespace mtp

#endif // MTP_OBS_SINK_HH
