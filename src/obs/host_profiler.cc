#include "obs/host_profiler.hh"

#include <time.h>
#include <unistd.h>

#include <cstring>
#include <mutex>

#include "obs/json.hh"

namespace mtp {
namespace obs {

const char *
toString(HostPhase p)
{
    switch (p) {
      case HostPhase::KernelBuild: return "kernel_build";
      case HostPhase::CacheLookup: return "cache_lookup";
      case HostPhase::CacheInsert: return "cache_insert";
      case HostPhase::RunTask: return "run_task";
      case HostPhase::Dispatch: return "dispatch";
      case HostPhase::CoreTick: return "core_tick";
      case HostPhase::MemTick: return "mem_tick";
      case HostPhase::MailboxDrain: return "mailbox_drain";
      case HostPhase::HorizonSkip: return "horizon_skip";
      case HostPhase::BarrierWait: return "barrier_wait";
      case HostPhase::ExecWait: return "exec_wait";
      case HostPhase::Sample: return "sample";
      case HostPhase::Summarize: return "summarize";
    }
    return "?";
}

/**
 * Per-thread profiling state. Owner-only fields (the scope stack) are
 * plain; everything a cross-thread reader touches is atomic. States
 * are allocated on first use, published into a fixed slot table, and
 * never freed — a thread exiting or a new generation starting leaves
 * the old state readable forever, so snapshot() and the signal-time
 * dump can never chase a dangling pointer.
 */
struct HostProfiler::ThreadState
{
    // ---- cross-thread readable ------------------------------------
    std::atomic<std::uint64_t> activeNs{0};
    std::atomic<std::uint64_t> waitNs{0};
    std::atomic<std::uint64_t> phaseNs[kNumHostPhases] = {};
    std::atomic<std::uint64_t> phaseCount[kNumHostPhases] = {};

    // Name: written at most once, published via the release flag.
    char name[32] = {};
    std::atomic<bool> named{false};

    // Ring of completed scopes: 2 relaxed-atomic words per slot,
    // word0 = startNs, word1 = phase<<56 | durNs. head_ counts total
    // events ever recorded (slot = head % capacity).
    std::atomic<std::uint64_t> *ring = nullptr;
    std::uint32_t ringCap = 0;
    std::atomic<std::uint64_t> ringHead{0};

    std::uint64_t generation = 0;

    // ---- owner-only -----------------------------------------------
    static constexpr int kMaxDepth = 16;
    struct Frame
    {
        HostPhase phase;
        std::uint64_t startNs;
        std::uint64_t childNs; //!< spans of completed nested scopes
    };
    Frame stack[kMaxDepth];
    int depth = 0;
    int waitDepth = 0;

    void
    record(HostPhase p, std::uint64_t start, std::uint64_t dur)
    {
        if (!ringCap)
            return;
        std::uint64_t h = ringHead.load(std::memory_order_relaxed);
        std::atomic<std::uint64_t> *slot = ring + 2 * (h % ringCap);
        slot[0].store(start, std::memory_order_relaxed);
        slot[1].store((static_cast<std::uint64_t>(p) << 56) |
                          (dur & ((1ull << 56) - 1)),
                      std::memory_order_relaxed);
        ringHead.store(h + 1, std::memory_order_release);
    }
};

namespace {

// Registration table. Slots are published with a release store and
// only ever transition null -> non-null, so lock-free readers (the
// watchdog, the crash handler) can walk [0, threadCount) safely.
std::atomic<HostProfiler::ThreadState *>
    g_slots[HostProfiler::kMaxThreads] = {};
std::atomic<int> g_threadCount{0};

std::atomic<std::uint64_t> g_generation{0};
std::atomic<std::uint64_t> g_enabledAtNs{0};
std::atomic<std::uint32_t> g_ringCap{HostProfiler::kDefaultRingCapacity};

std::mutex g_registerMutex;

struct TlsRef
{
    HostProfiler::ThreadState *state = nullptr;
    std::uint64_t generation = 0;
};
thread_local TlsRef t_ref;

} // namespace

std::atomic<bool> HostProfiler::enabled_{false};

std::uint64_t
HostProfiler::nowNs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

void
HostProfiler::enable(std::uint32_t ringCapacity)
{
    std::lock_guard<std::mutex> lock(g_registerMutex);
    if (enabled_.load(std::memory_order_relaxed))
        return;
    g_ringCap.store(ringCapacity ? ringCapacity : 1,
                    std::memory_order_relaxed);
    // A new generation: threads re-register on their next scope, so
    // counters start from zero without touching (possibly still
    // in-use) prior states.
    g_generation.fetch_add(1, std::memory_order_relaxed);
    g_enabledAtNs.store(nowNs(), std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
}

void
HostProfiler::disable()
{
    enabled_.store(false, std::memory_order_release);
}

std::uint64_t
HostProfiler::enabledAtNs()
{
    return g_enabledAtNs.load(std::memory_order_relaxed);
}

HostProfiler::ThreadState *
HostProfiler::threadState()
{
    std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
    if (t_ref.state && t_ref.generation == gen)
        return t_ref.state;

    std::lock_guard<std::mutex> lock(g_registerMutex);
    int idx = g_threadCount.load(std::memory_order_relaxed);
    if (idx >= kMaxThreads)
        return nullptr; // table full: profile without this thread
    auto *state = new ThreadState();
    state->generation = gen;
    std::uint32_t cap = g_ringCap.load(std::memory_order_relaxed);
    state->ring = new std::atomic<std::uint64_t>[2 * cap]();
    state->ringCap = cap;
    // Carry a prior name forward across generations: the thread is
    // the same even though its counters restarted.
    if (t_ref.state &&
        t_ref.state->named.load(std::memory_order_acquire)) {
        std::memcpy(state->name, t_ref.state->name, sizeof(state->name));
        state->named.store(true, std::memory_order_release);
    }
    g_slots[idx].store(state, std::memory_order_release);
    g_threadCount.store(idx + 1, std::memory_order_release);
    t_ref.state = state;
    t_ref.generation = gen;
    return state;
}

void
HostProfiler::nameThread(const char *name)
{
    ThreadState *state = threadState();
    if (!state || state->named.load(std::memory_order_acquire))
        return;
    std::strncpy(state->name, name, sizeof(state->name) - 1);
    state->named.store(true, std::memory_order_release);
}

void
HostScope::begin(HostPhase p)
{
    HostProfiler::ThreadState *ts = HostProfiler::threadState();
    if (!ts || ts->depth >= HostProfiler::ThreadState::kMaxDepth) {
        on_ = false;
        return;
    }
    ts->stack[ts->depth++] = {p, HostProfiler::nowNs(), 0};
    if (isWaitPhase(p))
        ++ts->waitDepth;
}

void
HostScope::end()
{
    HostProfiler::ThreadState *ts = HostProfiler::threadState();
    if (!ts || ts->depth == 0)
        return;
    auto &frame = ts->stack[--ts->depth];
    std::uint64_t end = HostProfiler::nowNs();
    std::uint64_t span = end - frame.startNs;
    std::uint64_t self = span > frame.childNs ? span - frame.childNs : 0;
    int p = static_cast<int>(frame.phase);
    ts->phaseNs[p].fetch_add(self, std::memory_order_relaxed);
    ts->phaseCount[p].fetch_add(1, std::memory_order_relaxed);
    if (ts->depth > 0)
        ts->stack[ts->depth - 1].childNs += span;
    else
        ts->activeNs.fetch_add(span, std::memory_order_relaxed);
    if (isWaitPhase(frame.phase)) {
        if (--ts->waitDepth == 0)
            ts->waitNs.fetch_add(span, std::memory_order_relaxed);
    }
    ts->record(frame.phase, frame.startNs, span);
}

HostProfiler::Snapshot
HostProfiler::snapshot(bool includeEvents)
{
    Snapshot snap;
    snap.enabledAtNs = enabledAtNs();
    snap.takenAtNs = nowNs();
    std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
    int count = g_threadCount.load(std::memory_order_acquire);
    int anon = 0;
    for (int i = 0; i < count; ++i) {
        ThreadState *ts = g_slots[i].load(std::memory_order_acquire);
        if (!ts || ts->generation != gen)
            continue;
        ThreadSnapshot out;
        if (ts->named.load(std::memory_order_acquire))
            out.name = ts->name;
        else
            out.name = "thread" + std::to_string(anon++);
        out.activeNs = ts->activeNs.load(std::memory_order_relaxed);
        out.waitNs = ts->waitNs.load(std::memory_order_relaxed);
        for (int p = 0; p < kNumHostPhases; ++p) {
            out.phaseNs[p] =
                ts->phaseNs[p].load(std::memory_order_relaxed);
            out.phaseCount[p] =
                ts->phaseCount[p].load(std::memory_order_relaxed);
        }
        if (includeEvents && ts->ringCap) {
            std::uint64_t head =
                ts->ringHead.load(std::memory_order_acquire);
            std::uint64_t n = std::min<std::uint64_t>(head, ts->ringCap);
            out.events.reserve(n);
            for (std::uint64_t k = head - n; k < head; ++k) {
                std::atomic<std::uint64_t> *slot =
                    ts->ring + 2 * (k % ts->ringCap);
                Event ev;
                ev.startNs = slot[0].load(std::memory_order_relaxed);
                std::uint64_t w = slot[1].load(std::memory_order_relaxed);
                unsigned p = static_cast<unsigned>(w >> 56);
                ev.phase = static_cast<HostPhase>(
                    p < static_cast<unsigned>(kNumHostPhases) ? p : 0);
                ev.durNs = w & ((1ull << 56) - 1);
                out.events.push_back(ev);
            }
        }
        snap.threads.push_back(std::move(out));
    }
    return snap;
}

namespace detail {

void
writeFd(int fd, const char *s)
{
    std::size_t len = std::strlen(s);
    while (len > 0) {
        ssize_t n = ::write(fd, s, len);
        if (n <= 0)
            return;
        s += n;
        len -= static_cast<std::size_t>(n);
    }
}

void
writeFdU64(int fd, std::uint64_t v)
{
    char buf[24];
    char *p = buf + sizeof(buf);
    *--p = '\0';
    do {
        *--p = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    writeFd(fd, p);
}

} // namespace detail

void
HostProfiler::dumpLastEvents(int fd, int perThread)
{
    using detail::writeFd;
    using detail::writeFdU64;
    std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
    int count = g_threadCount.load(std::memory_order_acquire);
    for (int i = 0; i < count; ++i) {
        ThreadState *ts = g_slots[i].load(std::memory_order_acquire);
        if (!ts || ts->generation != gen)
            continue;
        writeFd(fd, "  thread ");
        writeFdU64(fd, static_cast<std::uint64_t>(i));
        if (ts->named.load(std::memory_order_acquire)) {
            writeFd(fd, " (");
            writeFd(fd, ts->name);
            writeFd(fd, ")");
        }
        writeFd(fd, " last events:\n");
        if (!ts->ringCap)
            continue;
        std::uint64_t head = ts->ringHead.load(std::memory_order_acquire);
        std::uint64_t n = head < ts->ringCap ? head : ts->ringCap;
        if (n > static_cast<std::uint64_t>(perThread))
            n = static_cast<std::uint64_t>(perThread);
        for (std::uint64_t k = head - n; k < head; ++k) {
            std::atomic<std::uint64_t> *slot =
                ts->ring + 2 * (k % ts->ringCap);
            std::uint64_t start = slot[0].load(std::memory_order_relaxed);
            std::uint64_t w = slot[1].load(std::memory_order_relaxed);
            unsigned p = static_cast<unsigned>(w >> 56);
            writeFd(fd, "    ");
            writeFd(fd, toString(static_cast<HostPhase>(
                             p < static_cast<unsigned>(kNumHostPhases)
                                 ? p
                                 : 0)));
            writeFd(fd, " start_ns=");
            writeFdU64(fd, start);
            writeFd(fd, " dur_ns=");
            writeFdU64(fd, w & ((1ull << 56) - 1));
            writeFd(fd, "\n");
        }
    }
}

void
writeHostProfileJsonl(
    std::FILE *f, const HostProfiler::Snapshot &snap,
    const std::vector<std::pair<std::string, double>> &counters)
{
    std::uint64_t wallNs = snap.takenAtNs > snap.enabledAtNs
                               ? snap.takenAtNs - snap.enabledAtNs
                               : 0;
    std::fprintf(f,
                 "{\"type\":\"host.meta\",\"enabledNs\":%llu,"
                 "\"wallNs\":%llu,\"threads\":%zu}\n",
                 static_cast<unsigned long long>(snap.enabledAtNs),
                 static_cast<unsigned long long>(wallNs),
                 snap.threads.size());
    for (const auto &t : snap.threads) {
        std::fprintf(f,
                     "{\"type\":\"host.thread\",\"name\":\"%s\","
                     "\"activeNs\":%llu,\"waitNs\":%llu,\"phases\":{",
                     jsonEscape(t.name).c_str(),
                     static_cast<unsigned long long>(t.activeNs),
                     static_cast<unsigned long long>(t.waitNs));
        bool first = true;
        for (int p = 0; p < kNumHostPhases; ++p) {
            if (!t.phaseCount[p])
                continue;
            std::fprintf(f, "%s\"%s\":{\"ns\":%llu,\"count\":%llu}",
                         first ? "" : ",",
                         toString(static_cast<HostPhase>(p)),
                         static_cast<unsigned long long>(t.phaseNs[p]),
                         static_cast<unsigned long long>(t.phaseCount[p]));
            first = false;
        }
        std::fprintf(f, "}}\n");
    }
    for (const auto &c : counters)
        std::fprintf(f,
                     "{\"type\":\"host.counter\",\"name\":\"%s\","
                     "\"value\":%.17g}\n",
                     jsonEscape(c.first).c_str(), c.second);
}

} // namespace obs
} // namespace mtp
