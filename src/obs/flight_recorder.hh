/**
 * @file
 * Flight recorder + hung-run watchdog (DESIGN.md §12). The host
 * profiler answers "where did the time go" after a run finishes; the
 * flight recorder answers "what was the engine doing *right now*"
 * when a run crashes or stops making progress:
 *
 *  - Gauges: a fixed pool of named atomic cells that long-lived
 *    engine loops keep current (per-run simulated cycle and epoch,
 *    per-shard last command, executor queue depth). Updating a held
 *    gauge is one relaxed store.
 *  - Progress beats: a global counter bumped at coarse liveness
 *    points (every epoch, every completed executor task, every
 *    campaign progress sample). A healthy engine beats continuously;
 *    a deadlocked or livelocked one stops.
 *  - Watchdog: a deadline thread that fires once when the beat
 *    counter stays frozen for a full deadline window, dumping gauges,
 *    beats, and the profiler's last ring events to stderr and
 *    (optionally) a JSONL artifact — turning a hung campaign into a
 *    diagnosable artifact instead of a killed job.
 *  - Crash handler: on SIGSEGV/SIGBUS/SIGABRT, the same dump via
 *    async-signal-safe write(2) before re-raising.
 *
 * Everything here is observer-only: gauges and beats are sampled by
 * the dump paths, never read back by the simulation, so arming the
 * recorder cannot perturb simulated results.
 */

#ifndef MTP_OBS_FLIGHT_RECORDER_HH
#define MTP_OBS_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

namespace mtp {
namespace obs {

class FlightRecorder
{
  public:
    static constexpr int kGaugeSlots = 256;

    /**
     * Handle to a pooled gauge cell. Default-constructed (or
     * pool-exhausted) handles are inert: set() is a branch and
     * nothing else. Copyable; the pool slot is freed explicitly via
     * releaseGauge(), not by destruction, because engine loops hand
     * copies around.
     */
    class Gauge
    {
      public:
        Gauge() = default;

        bool valid() const { return idx_ >= 0; }

        void set(std::uint64_t v) const;
        void add(std::uint64_t delta) const;

      private:
        friend class FlightRecorder;
        explicit Gauge(int idx) : idx_(idx) {}
        int idx_ = -1;
    };

    /**
     * Claim a pool slot under @p name. Returns an inert handle when
     * the pool is exhausted — callers never need to check.
     */
    static Gauge acquireGauge(const std::string &name);

    /** Free @p g's slot for reuse and make the handle inert. */
    static void releaseGauge(Gauge &g);

    /** Liveness beat — relaxed increment, call at coarse points. */
    static void
    beat()
    {
        beats_.fetch_add(1, std::memory_order_relaxed);
    }

    static std::uint64_t
    beats()
    {
        return beats_.load(std::memory_order_relaxed);
    }

    /**
     * Async-signal-safe plain-text dump of beats + live gauges to
     * @p fd (does not include profiler events; crash/watchdog paths
     * chain HostProfiler::dumpLastEvents themselves).
     */
    static void dump(int fd);

    /** JSONL dump of beats + live gauges (not signal-safe). */
    static void dumpJsonl(std::FILE *f, const char *reason);

    /**
     * Install SIGSEGV/SIGBUS/SIGABRT handlers that dump(2) and the
     * profiler's last events to stderr, then re-raise with default
     * disposition. Idempotent.
     */
    static void installCrashHandler();

  private:
    static std::atomic<std::uint64_t> beats_;
};

/**
 * Deadline thread: fires once if FlightRecorder::beats() stays
 * unchanged for @p deadlineSec. The dump goes to stderr; when
 * @p jsonlPath is non-empty, a structured copy (flight.* records plus
 * host.thread ring events) is appended there too.
 */
class Watchdog
{
  public:
    explicit Watchdog(double deadlineSec, std::string jsonlPath = "");
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    bool
    fired() const
    {
        return fired_.load(std::memory_order_acquire);
    }

  private:
    struct Impl;
    Impl *impl_;
    std::atomic<bool> fired_{false};
};

} // namespace obs
} // namespace mtp

#endif // MTP_OBS_FLIGHT_RECORDER_HH
