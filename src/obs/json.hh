/**
 * @file
 * Minimal JSON support for the observability layer: string escaping for
 * the writers and a small recursive-descent parser used to validate
 * generated Chrome trace-event files in tests and tooling (no external
 * JSON dependency is available in the build image).
 */

#ifndef MTP_OBS_JSON_HH
#define MTP_OBS_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mtp {
namespace obs {

/** Escape @p s for embedding between JSON double quotes. */
std::string jsonEscape(std::string_view s);

/** Parsed JSON value (tree-owning; good enough for validation). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    // std::map keeps validation output deterministic.
    std::map<std::string, JsonValue> object;

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text as one JSON document.
 * @return true on success; on failure @p error (if non-null) describes
 * the first problem and its offset.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string *error = nullptr);

/**
 * Validate @p text against the Chrome trace-event JSON schema subset
 * this layer emits (and Perfetto consumes): a top-level object with a
 * "traceEvents" array whose entries carry name/ph/pid/tid, a numeric
 * "ts" for timed phases, a numeric "dur" for complete ("X") events and
 * an "args" object for counter ("C") events.
 */
bool validateChromeTrace(std::string_view text,
                         std::string *error = nullptr);

} // namespace obs
} // namespace mtp

#endif // MTP_OBS_JSON_HH
