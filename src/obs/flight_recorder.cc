#include "obs/flight_recorder.hh"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/host_profiler.hh"
#include "obs/json.hh"

namespace mtp {
namespace obs {

namespace {

// Gauge pool. Slot lifecycle: kFree -CAS-> kClaimed (owner writes the
// name) -release-> kLive. Readers only look at kLive slots, so they
// never observe a half-written name; the name chars are relaxed
// atomics anyway so a release/re-acquire race is at worst a garbled
// diagnostic label, never a data race.
constexpr int kFree = 0, kClaimed = 1, kLive = 2;
constexpr int kGaugeNameLen = 48;

struct GaugeSlot
{
    std::atomic<int> state{kFree};
    std::atomic<char> name[kGaugeNameLen] = {};
    std::atomic<std::uint64_t> value{0};
};

GaugeSlot g_gauges[FlightRecorder::kGaugeSlots];

void
readGaugeName(const GaugeSlot &slot, char out[kGaugeNameLen])
{
    for (int i = 0; i < kGaugeNameLen; ++i)
        out[i] = slot.name[i].load(std::memory_order_relaxed);
    out[kGaugeNameLen - 1] = '\0';
}

} // namespace

std::atomic<std::uint64_t> FlightRecorder::beats_{0};

void
FlightRecorder::Gauge::set(std::uint64_t v) const
{
    if (idx_ >= 0)
        g_gauges[idx_].value.store(v, std::memory_order_relaxed);
}

void
FlightRecorder::Gauge::add(std::uint64_t delta) const
{
    if (idx_ >= 0)
        g_gauges[idx_].value.fetch_add(delta, std::memory_order_relaxed);
}

FlightRecorder::Gauge
FlightRecorder::acquireGauge(const std::string &name)
{
    for (int i = 0; i < kGaugeSlots; ++i) {
        int expected = kFree;
        if (!g_gauges[i].state.compare_exchange_strong(
                expected, kClaimed, std::memory_order_acquire))
            continue;
        GaugeSlot &slot = g_gauges[i];
        int len = static_cast<int>(name.size());
        if (len > kGaugeNameLen - 1)
            len = kGaugeNameLen - 1;
        for (int k = 0; k < len; ++k)
            slot.name[k].store(name[static_cast<std::size_t>(k)],
                               std::memory_order_relaxed);
        slot.name[len].store('\0', std::memory_order_relaxed);
        slot.value.store(0, std::memory_order_relaxed);
        slot.state.store(kLive, std::memory_order_release);
        return Gauge(i);
    }
    return Gauge(); // pool exhausted: inert handle
}

void
FlightRecorder::releaseGauge(Gauge &g)
{
    if (g.idx_ >= 0)
        g_gauges[g.idx_].state.store(kFree, std::memory_order_release);
    g.idx_ = -1;
}

void
FlightRecorder::dump(int fd)
{
    using detail::writeFd;
    using detail::writeFdU64;
    writeFd(fd, "  beats=");
    writeFdU64(fd, beats());
    writeFd(fd, "\n");
    for (int i = 0; i < kGaugeSlots; ++i) {
        if (g_gauges[i].state.load(std::memory_order_acquire) != kLive)
            continue;
        char name[kGaugeNameLen];
        readGaugeName(g_gauges[i], name);
        writeFd(fd, "  gauge ");
        writeFd(fd, name);
        writeFd(fd, "=");
        writeFdU64(fd,
                   g_gauges[i].value.load(std::memory_order_relaxed));
        writeFd(fd, "\n");
    }
}

void
FlightRecorder::dumpJsonl(std::FILE *f, const char *reason)
{
    std::fprintf(f,
                 "{\"type\":\"flight.dump\",\"reason\":\"%s\","
                 "\"beats\":%llu}\n",
                 jsonEscape(reason).c_str(),
                 static_cast<unsigned long long>(beats()));
    for (int i = 0; i < kGaugeSlots; ++i) {
        if (g_gauges[i].state.load(std::memory_order_acquire) != kLive)
            continue;
        char name[kGaugeNameLen];
        readGaugeName(g_gauges[i], name);
        std::fprintf(f,
                     "{\"type\":\"flight.gauge\",\"name\":\"%s\","
                     "\"value\":%llu}\n",
                     jsonEscape(name).c_str(),
                     static_cast<unsigned long long>(
                         g_gauges[i].value.load(
                             std::memory_order_relaxed)));
    }
    HostProfiler::Snapshot snap = HostProfiler::snapshot(true);
    for (const auto &t : snap.threads) {
        std::fprintf(f,
                     "{\"type\":\"flight.thread\",\"name\":\"%s\","
                     "\"events\":[",
                     jsonEscape(t.name).c_str());
        // Last few events are what matters for a hang; cap the line.
        std::size_t first =
            t.events.size() > 32 ? t.events.size() - 32 : 0;
        for (std::size_t k = first; k < t.events.size(); ++k) {
            const auto &ev = t.events[k];
            std::fprintf(
                f, "%s{\"phase\":\"%s\",\"startNs\":%llu,\"durNs\":%llu}",
                k == first ? "" : ",", toString(ev.phase),
                static_cast<unsigned long long>(ev.startNs),
                static_cast<unsigned long long>(ev.durNs));
        }
        std::fprintf(f, "]}\n");
    }
}

namespace {

void
crashHandler(int sig)
{
    using detail::writeFd;
    using detail::writeFdU64;
    writeFd(2, "\n=== mtp flight recorder: fatal signal ");
    writeFdU64(2, static_cast<std::uint64_t>(sig));
    writeFd(2, " ===\n");
    FlightRecorder::dump(2);
    HostProfiler::dumpLastEvents(2, 16);
    writeFd(2, "=== end flight recorder ===\n");
    signal(sig, SIG_DFL);
    raise(sig);
}

} // namespace

void
FlightRecorder::installCrashHandler()
{
    static std::atomic<bool> installed{false};
    if (installed.exchange(true))
        return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_NODEFER; // re-raise from inside the handler
    sigaction(SIGSEGV, &sa, nullptr);
    sigaction(SIGBUS, &sa, nullptr);
    sigaction(SIGABRT, &sa, nullptr);
}

struct Watchdog::Impl
{
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
};

Watchdog::Watchdog(double deadlineSec, std::string jsonlPath)
    : impl_(new Impl)
{
    if (deadlineSec <= 0)
        deadlineSec = 1e-3;
    impl_->thread = std::thread([this, deadlineSec,
                                 path = std::move(jsonlPath)]() {
        // Poll at a fraction of the deadline; fire only after the
        // beat counter has been frozen for one *full* deadline
        // window (frozenSince is re-anchored on every beat).
        auto poll = std::chrono::duration<double>(
            std::min(deadlineSec / 4.0, 0.2));
        std::uint64_t lastBeats = FlightRecorder::beats();
        auto frozenSince = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lock(impl_->mutex);
        while (!impl_->stop) {
            impl_->cv.wait_for(lock, poll,
                               [this] { return impl_->stop; });
            if (impl_->stop)
                break;
            std::uint64_t now = FlightRecorder::beats();
            auto t = std::chrono::steady_clock::now();
            if (now != lastBeats) {
                lastBeats = now;
                frozenSince = t;
                continue;
            }
            double frozen =
                std::chrono::duration<double>(t - frozenSince).count();
            if (frozen < deadlineSec)
                continue;
            using detail::writeFd;
            writeFd(2, "\n=== mtp watchdog: no progress beats for ");
            detail::writeFdU64(
                2, static_cast<std::uint64_t>(frozen * 1000));
            writeFd(2, " ms ===\n");
            FlightRecorder::dump(2);
            HostProfiler::dumpLastEvents(2, 16);
            writeFd(2, "=== end watchdog dump ===\n");
            if (!path.empty()) {
                if (std::FILE *f = std::fopen(path.c_str(), "a")) {
                    FlightRecorder::dumpJsonl(f, "watchdog");
                    std::fclose(f);
                }
            }
            fired_.store(true, std::memory_order_release);
            break; // fire once
        }
    });
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    impl_->thread.join();
    delete impl_;
}

} // namespace obs
} // namespace mtp
