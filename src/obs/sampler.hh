/**
 * @file
 * Periodic counter sampler. Components register probes — closures over
 * their live counters — and the GPU's cycle loop calls sample() at
 * every period boundary, producing one time-series row across all
 * attached sinks.
 *
 * Interaction with event-driven cycle skipping: sampling is read-only,
 * but it must *happen* at the right cycles, so the sampler exposes
 * nextSampleAt() and the GPU folds it into its nextEventAt() bound —
 * a skip never jumps a sample boundary (the same event-horizon
 * contract every component obeys; DESIGN.md §7/§8). Because a skipped
 * cycle's step() is a no-op for every component, stopping a skip at a
 * boundary and stepping through it cannot change simulation state, so
 * end-of-run results stay bit-identical with sampling on or off.
 */

#ifndef MTP_OBS_SAMPLER_HH
#define MTP_OBS_SAMPLER_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/sink.hh"

namespace mtp {
namespace obs {

/** Registry of probes + the periodic snapshot loop. */
class Sampler
{
  public:
    /** How a probe's reading is turned into a sample value. */
    enum class Kind
    {
        Gauge,   //!< instantaneous value at the boundary
        Counter, //!< delta of a cumulative counter since last sample
        Rate,    //!< delta / period (e.g. IPC)
        Ratio,   //!< delta(fn) / delta(den), 0 when den is flat
    };

    using Fn = std::function<double(Cycle)>;

    /**
     * Register a probe.
     * @param name column name in the emitted time series
     * @param pid track id (trackForCore/trackForChannel/trackGlobal)
     * @param kind value transformation
     * @param fn reads the underlying value (cumulative for
     *        Counter/Rate/Ratio numerators)
     * @param den Ratio denominator reader; unused otherwise
     */
    void addProbe(std::string name, int pid, Kind kind, Fn fn,
                  Fn den = {});

    /** Attach a sink (borrowed; must outlive the sampler). */
    void addSink(EventSink *sink);

    /**
     * Arm the sampler: first boundary at cycle @p period, then every
     * @p period cycles. Emits the column schema to all sinks.
     */
    void start(Cycle period);

    bool active() const { return period_ > 0; }
    Cycle period() const { return period_; }

    /**
     * The next sample boundary, or invalidCycle when inactive. The
     * GPU's nextEventAt() takes the min with this so cycle skipping
     * stops at every boundary.
     */
    Cycle
    nextSampleAt() const
    {
        return active() ? next_ : invalidCycle;
    }

    /** @return true iff @p now is at (or past) the next boundary. */
    bool
    due(Cycle now) const
    {
        return active() && now >= next_;
    }

    /** Take one sample at @p now and advance the boundary. */
    void sample(Cycle now);

    /** Boundaries sampled so far. */
    std::uint64_t samplesTaken() const { return samples_; }

    std::size_t probes() const { return probes_.size(); }

  private:
    struct Probe
    {
        std::string name;
        int pid;
        Kind kind;
        Fn fn;
        Fn den;
        double last = 0.0;
        double lastDen = 0.0;
    };

    std::vector<Probe> probes_;
    std::vector<EventSink *> sinks_;
    std::vector<double> row_;
    Cycle period_ = 0;
    Cycle next_ = invalidCycle;
    std::uint64_t samples_ = 0;
};

} // namespace obs
} // namespace mtp

#endif // MTP_OBS_SAMPLER_HH
