#include "obs/sampler.hh"

#include "common/log.hh"

namespace mtp {
namespace obs {

void
Sampler::addProbe(std::string name, int pid, Kind kind, Fn fn, Fn den)
{
    MTP_ASSERT(!active(), "probes must be registered before start()");
    MTP_ASSERT(fn, "probe '", name, "' without a reader");
    MTP_ASSERT(kind != Kind::Ratio || den,
               "ratio probe '", name, "' without a denominator");
    probes_.push_back(
        {std::move(name), pid, kind, std::move(fn), std::move(den)});
}

void
Sampler::addSink(EventSink *sink)
{
    MTP_ASSERT(sink, "null sink");
    sinks_.push_back(sink);
}

void
Sampler::start(Cycle period)
{
    MTP_ASSERT(period > 0, "sample period must be positive");
    MTP_ASSERT(!active(), "sampler started twice");
    period_ = period;
    next_ = period;
    std::vector<SampleColumn> columns;
    columns.reserve(probes_.size());
    for (const auto &p : probes_)
        columns.push_back({p.name, p.pid});
    for (auto *sink : sinks_)
        sink->sampleSchema(columns);
}

void
Sampler::sample(Cycle now)
{
    MTP_ASSERT(active(), "sample() on an inactive sampler");
    row_.clear();
    row_.reserve(probes_.size());
    for (auto &p : probes_) {
        double cur = p.fn(now);
        double value = 0.0;
        switch (p.kind) {
          case Kind::Gauge:
            value = cur;
            break;
          case Kind::Counter:
            value = cur - p.last;
            break;
          case Kind::Rate:
            value = (cur - p.last) / static_cast<double>(period_);
            break;
          case Kind::Ratio: {
            double den = p.den(now);
            double d = den - p.lastDen;
            value = d != 0.0 ? (cur - p.last) / d : 0.0;
            p.lastDen = den;
            break;
          }
        }
        p.last = cur;
        row_.push_back(value);
    }
    for (auto *sink : sinks_)
        sink->sample(now, row_);
    ++samples_;
    // The loop may overshoot a boundary only when sampling was armed
    // after the fact; normally next_ advances by exactly one period.
    while (next_ <= now)
        next_ += period_;
}

} // namespace obs
} // namespace mtp
