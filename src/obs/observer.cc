#include "obs/observer.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "obs/host_profiler.hh"

namespace mtp {
namespace obs {

Observer::Observer(const ObsConfig &cfg) : cfg_(cfg)
{
    if (cfg_.hostProfile) {
        HostProfiler::enable();
        hostStartNs_ = HostProfiler::nowNs();
    }
    if (cfg_.wantsTracer())
        tracer_ = std::make_unique<TraceRecorder>(cfg_.wantsLifecycle(),
                                                  true);

    if (!cfg_.timeSeriesCsv.empty()) {
        addSink(std::make_unique<CsvTimeSeriesSink>(cfg_.timeSeriesCsv),
                /*forSampler=*/true, /*forTracer=*/false);
    }
    if (!cfg_.jsonlPath.empty()) {
        addSink(std::make_unique<JsonlSink>(cfg_.jsonlPath),
                /*forSampler=*/true, /*forTracer=*/true);
    }
    if (!cfg_.chromePath.empty()) {
        addSink(std::make_unique<ChromeTraceSink>(cfg_.chromePath),
                /*forSampler=*/true, /*forTracer=*/true);
    }
    if (cfg_.throttleToStderr) {
        // The legacy MTP_THROTTLE_TRACE stream: throttle events only,
        // so it joins the tracer but not the sampler.
        addSink(std::make_unique<JsonlSink>(stderr),
                /*forSampler=*/false, /*forTracer=*/true);
    }
    if (cfg_.forwardSink) {
        // Borrowed: joins the sampler only, stays out of all_ so
        // finish() never close()s it (it outlives this run).
        sampler_.addSink(cfg_.forwardSink);
    }
}

Observer::~Observer()
{
    finish();
}

void
Observer::addSink(std::unique_ptr<EventSink> sink, bool forSampler,
                  bool forTracer)
{
    EventSink *raw = sink.get();
    owned_.push_back(std::move(sink));
    all_.push_back(raw);
    if (forSampler)
        sampler_.addSink(raw);
    if (forTracer && tracer_)
        tracer_->addSink(raw);
}

CaptureSink *
Observer::addCapture()
{
    auto sink = std::make_unique<CaptureSink>();
    CaptureSink *raw = sink.get();
    addSink(std::move(sink), /*forSampler=*/true, /*forTracer=*/true);
    return raw;
}

void
Observer::declareTrack(int pid, const std::string &name)
{
    TraceEvent ev;
    ev.name = "process_name";
    ev.ph = 'M';
    ev.pid = pid;
    ev.sargs.emplace_back("name", name);
    for (auto *sink : all_)
        sink->event(ev);
}

void
Observer::recordHostSync(Cycle simCycle)
{
    if (!cfg_.hostProfile)
        return;
    hostSync_.emplace_back(HostProfiler::nowNs(), simCycle);
}

void
Observer::emitHostTracks()
{
    HostProfiler::Snapshot snap =
        HostProfiler::snapshot(/*includeEvents=*/true);

    // Clock-sync track: host.simCycle counter samples place the sim
    // timeline on the host timeline (both in this run's window).
    declareTrack(trackHostClock, "host clock sync");
    for (const auto &[hostNs, cycle] : hostSync_) {
        if (hostNs < hostStartNs_)
            continue;
        TraceEvent ev;
        ev.name = "host.simCycle";
        ev.ph = 'C';
        ev.ts = (hostNs - hostStartNs_) / 1000;
        ev.pid = trackHostClock;
        ev.args.emplace_back("cycle", static_cast<double>(cycle));
        for (auto *sink : all_)
            sink->event(ev);
    }

    int index = 0;
    for (const auto &t : snap.threads) {
        int pid = trackForHostThread(index++);
        declareTrack(pid, "host: " + t.name);
        for (const auto &e : t.events) {
            // Window to this run: the profiler is process-global and
            // its rings may hold events from before this observer.
            if (e.startNs < hostStartNs_)
                continue;
            TraceEvent ev;
            ev.name = toString(e.phase);
            ev.ph = 'X';
            ev.ts = (e.startNs - hostStartNs_) / 1000;
            ev.dur = e.durNs / 1000;
            ev.pid = pid;
            for (auto *sink : all_)
                sink->event(ev);
        }
    }
}

void
Observer::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (tracer_)
        tracer_->finish();
    if (cfg_.hostProfile && !all_.empty())
        emitHostTracks();
    for (auto *sink : all_)
        sink->close();
}

std::string
perRunPath(const std::string &base, const std::string &runTag)
{
    if (base.empty() || runTag.empty())
        return base;
    auto slash = base.find_last_of('/');
    auto dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return base + "." + runTag;
    }
    return base.substr(0, dot) + "." + runTag + base.substr(dot);
}

std::vector<std::string>
uniqueRunTags(const std::vector<std::string> &names,
              const std::vector<std::uint64_t> &fingerprints)
{
    MTP_ASSERT(names.size() == fingerprints.size(),
               "uniqueRunTags: ", names.size(), " names vs ",
               fingerprints.size(), " fingerprints");
    std::vector<std::string> tags;
    tags.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        bool dup = false;
        for (std::size_t j = 0; j < names.size() && !dup; ++j)
            dup = j != i && names[j] == names[i];
        if (!dup) {
            tags.push_back(names[i]);
            continue;
        }
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(fingerprints[i]));
        tags.push_back(names[i] + "-" + hex);
    }
    return tags;
}

bool
throttleTraceEnvEnabled()
{
    const char *env = std::getenv("MTP_THROTTLE_TRACE");
    return env && *env && std::strcmp(env, "0") != 0;
}

} // namespace obs
} // namespace mtp
