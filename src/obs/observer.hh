/**
 * @file
 * The per-run observability façade. An Observer owns the sinks chosen
 * by an ObsConfig, the periodic Sampler, and (when any event stream is
 * configured) the lifecycle TraceRecorder. The GPU registers its
 * probes against the sampler and hands the tracer pointer to the
 * components that emit lifecycle events; everything tears down
 * together in finish().
 *
 * ObsConfig deliberately lives outside SimConfig: observation never
 * changes simulated results, so it must not enter the run-cache
 * fingerprint (two runs differing only in trace outputs share one
 * cache entry).
 */

#ifndef MTP_OBS_OBSERVER_HH
#define MTP_OBS_OBSERVER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/trace.hh"

namespace mtp {
namespace obs {

/** What to observe and where to write it. All off by default. */
struct ObsConfig
{
    /** Sample period in cycles; 0 disables periodic sampling. */
    Cycle samplePeriod = 0;

    /** CSV time-series output path ("" = off). */
    std::string timeSeriesCsv;

    /** JSONL event/sample output path ("" = off). */
    std::string jsonlPath;

    /** Chrome trace-event JSON output path ("" = off). */
    std::string chromePath;

    /** Force the lifecycle stream on even with no file sink (tests). */
    bool traceLifecycle = false;

    /** Force the throttle stream on even with no file sink (tests). */
    bool traceThrottle = false;

    /**
     * MTP_THROTTLE_TRACE alias: mirror throttle period updates to
     * stderr as JSONL (the legacy stderr hook's replacement).
     */
    bool throttleToStderr = false;

    /**
     * Borrowed sink that additionally receives the sampler stream
     * (schema + rows). Only meaningful together with samplePeriod.
     * The Observer never owns or close()s it, and it must be
     * thread-safe: under the parallel driver many concurrent runs
     * forward into the same sink (the campaign runner aggregates live
     * progress this way). Like every ObsConfig field it never enters
     * the run-cache fingerprint.
     */
    EventSink *forwardSink = nullptr;

    /**
     * Merge host-profiler tracks (DESIGN.md §12) into this run's
     * event sinks at finish(): one Perfetto track per host thread
     * (real microseconds since the run's observer was created) plus a
     * `host.simCycle` clock-sync counter correlating host time with
     * the cycle-denominated sim tracks. Enables the process-wide
     * HostProfiler as a side effect. Like every ObsConfig field it
     * never enters the run-cache fingerprint and cannot perturb
     * simulated results. Note the profiler is global: when several
     * runs trace concurrently, each merged trace carries the host
     * activity of *all* threads over its own window, so host tracks
     * are most readable with a single traced run.
     */
    bool hostProfile = false;

    bool wantsSampling() const { return samplePeriod > 0; }

    /** True when any event stream needs a TraceRecorder. */
    bool
    wantsTracer() const
    {
        return !jsonlPath.empty() || !chromePath.empty() ||
               traceLifecycle || traceThrottle || throttleToStderr;
    }

    /** True when a request-lifecycle stream is wanted. */
    bool
    wantsLifecycle() const
    {
        return !jsonlPath.empty() || !chromePath.empty() ||
               traceLifecycle;
    }

    /** Anything at all to do? The GPU skips all hooks when false. */
    bool
    enabled() const
    {
        return wantsSampling() || wantsTracer() ||
               !timeSeriesCsv.empty() || hostProfile;
    }
};

/** Owns sinks + sampler + tracer for one simulation run. */
class Observer
{
  public:
    explicit Observer(const ObsConfig &cfg);
    ~Observer();

    Observer(const Observer &) = delete;
    Observer &operator=(const Observer &) = delete;

    const ObsConfig &config() const { return cfg_; }

    Sampler &sampler() { return sampler_; }
    const Sampler &sampler() const { return sampler_; }

    /** Null unless an event stream is configured. */
    TraceRecorder *tracer() { return tracer_.get(); }

    /**
     * Attach an in-memory capture sink (owned by the observer) that
     * receives samples and trace events; call before the run starts.
     */
    CaptureSink *addCapture();

    /** Name a Perfetto track via a process_name metadata event. */
    void declareTrack(int pid, const std::string &name);

    /**
     * Record a host-time ↔ sim-cycle correlation point (the GPU calls
     * this at sample boundaries). No-op unless hostProfile is set.
     * Must be called from the run's coordinating thread only.
     */
    void recordHostSync(Cycle simCycle);

    /** Flush histograms and close every sink; idempotent. */
    void finish();

  private:
    void addSink(std::unique_ptr<EventSink> sink, bool forSampler,
                 bool forTracer);
    void emitHostTracks();

    ObsConfig cfg_;
    std::vector<std::unique_ptr<EventSink>> owned_;
    std::vector<EventSink *> all_;
    Sampler sampler_;
    std::unique_ptr<TraceRecorder> tracer_;
    std::uint64_t hostStartNs_ = 0;
    std::vector<std::pair<std::uint64_t, Cycle>> hostSync_;
    bool finished_ = false;
};

/**
 * Derive a per-run output path from @p base by inserting ".<runTag>"
 * before the extension ("out/trace.json" + "mp" -> "out/trace.mp.json";
 * no extension appends ".<runTag>").
 */
std::string perRunPath(const std::string &base, const std::string &runTag);

/**
 * Disambiguate the per-run tags of one run matrix: any name shared by
 * several entries gets a "-<16 hex>" suffix from the corresponding
 * @p fingerprints entry (e.g. the driver's kernel content hash), so
 * perRunPath() outputs cannot collide. Unique names pass through
 * unchanged. Entries that share both name and fingerprint are the same
 * run (one cache entry, one output) and keep identical tags.
 */
std::vector<std::string>
uniqueRunTags(const std::vector<std::string> &names,
              const std::vector<std::uint64_t> &fingerprints);

/** The MTP_THROTTLE_TRACE env alias: set, non-empty, and not "0". */
bool throttleTraceEnvEnabled();

} // namespace obs
} // namespace mtp

#endif // MTP_OBS_OBSERVER_HH
