#include "common/stats.hh"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/log.hh"

namespace mtp {

void
StatSet::add(const std::string &name, double value, const std::string &desc)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        entries_[it->second].value = value;
        if (!desc.empty())
            entries_[it->second].desc = desc;
        return;
    }
    index_.emplace(name, entries_.size());
    entries_.push_back({name, value, desc});
}

bool
StatSet::has(const std::string &name) const
{
    return index_.find(name) != index_.end();
}

double
StatSet::get(const std::string &name) const
{
    auto it = index_.find(name);
    MTP_ASSERT(it != index_.end(), "unknown statistic '", name, "'");
    return entries_[it->second].value;
}

double
StatSet::getOr(const std::string &name, double fallback) const
{
    auto it = index_.find(name);
    return it == index_.end() ? fallback : entries_[it->second].value;
}

double
StatSet::sumMatching(const std::string &prefix,
                     const std::string &suffix) const
{
    double total = 0.0;
    for (const auto &e : entries_) {
        if (e.name.size() < prefix.size() + suffix.size())
            continue;
        if (e.name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (e.name.compare(e.name.size() - suffix.size(), suffix.size(),
                           suffix) != 0)
            continue;
        total += e.value;
    }
    return total;
}

void
StatSet::merge(const StatSet &other, const std::string &prefix)
{
    for (const auto &e : other.entries_)
        add(prefix + e.name, e.value, e.desc);
}

void
StatSet::dumpText(std::ostream &os) const
{
    std::size_t width = 0;
    for (const auto &e : entries_)
        width = std::max(width, e.name.size());
    for (const auto &e : entries_) {
        os << std::left << std::setw(static_cast<int>(width) + 2) << e.name
           << std::setprecision(12) << e.value;
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
}

namespace {

/** RFC 4180 field quoting: only when the field needs it. */
void
writeCsvField(std::ostream &os, const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos) {
        os << field;
        return;
    }
    os << '"';
    for (char c : field) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

/** Minimal JSON string escaping for stat names/descriptions. */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
            break;
        }
    }
    os << '"';
}

/**
 * Shortest round-trippable decimal form of @p v, independent of any
 * imbued stream locale (std::to_chars never localizes). Non-finite
 * values have no JSON representation and become null.
 */
void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    std::array<char, 64> buf;
    auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
    MTP_ASSERT(res.ec == std::errc{}, "double-to_chars overflow");
    os.write(buf.data(), res.ptr - buf.data());
}

} // namespace

void
StatSet::dumpCsv(std::ostream &os) const
{
    os << "name,value,description\n";
    for (const auto &e : entries_) {
        writeCsvField(os, e.name);
        os << ',' << std::setprecision(12) << e.value << ',';
        writeCsvField(os, e.desc);
        os << '\n';
    }
}

void
StatSet::dumpJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    for (const auto &e : entries_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  ";
        writeJsonString(os, e.name);
        os << ": {\"value\": ";
        writeJsonNumber(os, e.value);
        os << ", \"desc\": ";
        writeJsonString(os, e.desc);
        os << '}';
    }
    os << "\n}\n";
}

Histogram::Histogram(double lo, double hi, unsigned nbuckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / nbuckets), bucketCounts_(nbuckets)
{
    MTP_ASSERT(hi > lo && nbuckets > 0,
               "invalid histogram bounds [", lo, ", ", hi, ") x ", nbuckets);
}

void
Histogram::sample(double v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += count;
    sum_ += v * count;
    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        idx = std::min(idx, bucketCounts_.size() - 1);
        bucketCounts_[idx] += count;
    }
}

void
Histogram::reset()
{
    std::fill(bucketCounts_.begin(), bucketCounts_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

std::uint64_t
Histogram::bucketCount(unsigned i) const
{
    MTP_ASSERT(i < bucketCounts_.size(), "bucket ", i, " out of range");
    return bucketCounts_[i];
}

void
Histogram::exportTo(StatSet &set, const std::string &name,
                    const std::string &desc) const
{
    set.add(name + ".count", static_cast<double>(count_), desc);
    set.add(name + ".mean", mean(), desc);
    set.add(name + ".min", minValue(), desc);
    set.add(name + ".max", maxValue(), desc);
}

} // namespace mtp
