/**
 * @file
 * EpochBarrier: a coordinator/worker rendezvous for epoch-sharded
 * execution (DESIGN.md §10).
 *
 * One coordinator thread publishes a command (an opaque 64-bit word —
 * the Gpu encodes an opcode plus the cycle to advance to), every worker
 * executes it against its own shard, and the coordinator waits for all
 * of them before publishing the next. Commands are totally ordered by a
 * generation counter, so each release()/awaitAll() pair is a full
 * happens-before fence between the coordinator and every worker: state
 * written by workers during epoch N is safely read by the coordinator
 * (and vice versa) without any further synchronization.
 *
 * Waiting spins briefly and then parks on C++20 std::atomic::wait
 * (a futex on Linux), so oversubscribed hosts — including single-core
 * CI runners — make progress instead of burning the coordinator's
 * timeslice. Per-worker slots are cacheline-aligned to keep the
 * arrival stores from false-sharing, and the time each side spends
 * blocked is accounted per slot — split into spin time (the bounded
 * busy-poll) and park time (blocked in the futex) — for the
 * sim.sched.barrier* stats and the host profiler (DESIGN.md §12):
 * a high spin fraction means workers arrive almost together (healthy),
 * a high park fraction means load imbalance or oversubscription.
 */

#ifndef MTP_COMMON_EPOCH_BARRIER_HH
#define MTP_COMMON_EPOCH_BARRIER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace mtp {

class EpochBarrier
{
  public:
    explicit EpochBarrier(unsigned workers) : slots_(workers) {}

    unsigned workers() const { return static_cast<unsigned>(slots_.size()); }

    // ------------------------------------------------------------------
    // Coordinator side
    // ------------------------------------------------------------------

    /** Publish the next command and wake every worker. */
    void
    release(std::uint64_t command)
    {
        command_.store(command, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        epoch_.notify_all();
    }

    /** Block until every worker has arrive()d for the last release(). */
    void
    awaitAll()
    {
        std::uint64_t gen = epoch_.load(std::memory_order_relaxed);
        for (Slot &slot : slots_) {
            WaitNs ns = waitFor(slot.done, gen);
            coordSpinNs_ += ns.spin;
            coordParkNs_ += ns.park;
        }
    }

    // ------------------------------------------------------------------
    // Worker side (worker ids are 0-based slot indices)
    // ------------------------------------------------------------------

    /** Block until a command newer than the last one seen is published. */
    std::uint64_t
    awaitCommand(unsigned w)
    {
        Slot &slot = slots_[w];
        WaitNs ns = waitFor(epoch_, slot.seen + 1);
        if (ns.spin)
            slot.spinNs.fetch_add(ns.spin, std::memory_order_relaxed);
        if (ns.park)
            slot.parkNs.fetch_add(ns.park, std::memory_order_relaxed);
        ++slot.seen;
        return command_.load(std::memory_order_relaxed);
    }

    /** Signal that this worker finished the current command. */
    void
    arrive(unsigned w)
    {
        Slot &slot = slots_[w];
        slot.done.store(slot.seen, std::memory_order_release);
        slot.done.notify_one();
    }

    // ------------------------------------------------------------------
    // Wait-time accounting (nanoseconds spent blocked past the fast
    // path, split into bounded spinning vs futex parking)
    // ------------------------------------------------------------------

    std::uint64_t
    workerWaitNs(unsigned w) const
    {
        return workerSpinNs(w) + workerParkNs(w);
    }

    std::uint64_t
    workerSpinNs(unsigned w) const
    {
        return slots_[w].spinNs.load(std::memory_order_relaxed);
    }

    std::uint64_t
    workerParkNs(unsigned w) const
    {
        return slots_[w].parkNs.load(std::memory_order_relaxed);
    }

    std::uint64_t coordinatorWaitNs() const
    {
        return coordSpinNs_ + coordParkNs_;
    }

    std::uint64_t coordinatorSpinNs() const { return coordSpinNs_; }
    std::uint64_t coordinatorParkNs() const { return coordParkNs_; }

  private:
    struct alignas(64) Slot
    {
        /** Generation of the last command this worker completed. */
        std::atomic<std::uint64_t> done {0};
        /** Ns this worker spent busy-polling for commands. */
        std::atomic<std::uint64_t> spinNs {0};
        /** Ns this worker spent parked in the futex for commands. */
        std::atomic<std::uint64_t> parkNs {0};
        /** Worker-local: generation of the last command observed. */
        std::uint64_t seen = 0;
    };

    struct WaitNs
    {
        std::uint64_t spin = 0;
        std::uint64_t park = 0;
    };

    /**
     * Wait until @p var >= @p target; returns the nanoseconds spent
     * spinning and parked ({0,0} when the target was already reached —
     * the common case pays one acquire load and no clock reads).
     */
    static WaitNs
    waitFor(std::atomic<std::uint64_t> &var, std::uint64_t target)
    {
        if (var.load(std::memory_order_acquire) >= target)
            return {};
        auto t0 = std::chrono::steady_clock::now();
        for (int spin = 0; spin < 256; ++spin) {
            if (var.load(std::memory_order_acquire) >= target)
                return {elapsedNs(t0), 0};
        }
        auto t1 = std::chrono::steady_clock::now();
        std::uint64_t spinNs = ns(t0, t1);
        for (;;) {
            std::uint64_t cur = var.load(std::memory_order_acquire);
            if (cur >= target)
                return {spinNs, elapsedNs(t1)};
            var.wait(cur, std::memory_order_acquire);
        }
    }

    static std::uint64_t
    ns(std::chrono::steady_clock::time_point t0,
       std::chrono::steady_clock::time_point t1)
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
    }

    static std::uint64_t
    elapsedNs(std::chrono::steady_clock::time_point t0)
    {
        return ns(t0, std::chrono::steady_clock::now());
    }

    /** Bumped once per release(); workers wait for it to pass them. */
    alignas(64) std::atomic<std::uint64_t> epoch_ {0};
    /** The payload of the current epoch's command. */
    std::atomic<std::uint64_t> command_ {0};
    /** One arrival slot per worker, cacheline-aligned. */
    std::vector<Slot> slots_;
    /** Coordinator-side blocked time across awaitAll() calls. */
    std::uint64_t coordSpinNs_ = 0;
    std::uint64_t coordParkNs_ = 0;
};

} // namespace mtp

#endif // MTP_COMMON_EPOCH_BARRIER_HH
