/**
 * @file
 * Deterministic pseudo-random number generator (xorshift128+). The
 * simulator never uses std::rand or hardware entropy so that identical
 * configurations always produce identical cycle counts.
 */

#ifndef MTP_COMMON_RNG_HH
#define MTP_COMMON_RNG_HH

#include <cstdint>

#include "common/bitutils.hh"

namespace mtp {

/** Small, fast, seedable PRNG with a 128-bit state. */
class Rng
{
  public:
    /** Seed from a single 64-bit value via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 1)
        : s0_(mix64(seed)), s1_(mix64(seed + 0x9e3779b97f4a7c15ULL))
    {
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace mtp

#endif // MTP_COMMON_RNG_HH
