/**
 * @file
 * Fundamental scalar types and architectural constants shared by every
 * module of the mtprefetch simulator.
 */

#ifndef MTP_COMMON_TYPES_HH
#define MTP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace mtp {

/** A byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** A point in simulated time, measured in core clock cycles (900 MHz). */
using Cycle = std::uint64_t;

/** Signed address delta (stride). */
using Stride = std::int64_t;

/** Identifier of a SIMT core (streaming multiprocessor). */
using CoreId = std::uint32_t;

/** Hardware warp identifier, unique within a core. */
using WarpId = std::uint32_t;

/** Global (grid-wide) warp identifier, unique within a kernel launch. */
using GlobalWarpId = std::uint64_t;

/** Thread-block identifier within a kernel launch. */
using BlockId = std::uint64_t;

/** Program counter of a static (kernel) instruction. */
using Pc = std::uint64_t;

/** Number of threads executed in lockstep by one warp. */
inline constexpr unsigned warpSize = 32;

/** Cache/memory transaction granularity in bytes. */
inline constexpr unsigned blockBytes = 64;

/** log2(blockBytes); kept in sync with blockBytes. */
inline constexpr unsigned blockOffsetBits = 6;
static_assert((1u << blockOffsetBits) == blockBytes);

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no address". */
inline constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Align an address down to its cache-block base. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(blockBytes - 1);
}

/** Cache-block index of an address (address divided by block size). */
constexpr Addr
blockIndex(Addr addr)
{
    return addr >> blockOffsetBits;
}

} // namespace mtp

#endif // MTP_COMMON_TYPES_HH
