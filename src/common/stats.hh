/**
 * @file
 * Lightweight statistics package. Simulation modules keep raw counters as
 * plain members for speed and export them into a StatSet snapshot at the
 * end of a run (or at period boundaries). StatSet preserves insertion
 * order, supports hierarchical prefixes, and dumps as aligned text or CSV.
 */

#ifndef MTP_COMMON_STATS_HH
#define MTP_COMMON_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace mtp {

/** An ordered collection of named scalar statistics. */
class StatSet
{
  public:
    /** One named scalar with an optional description. */
    struct Entry
    {
        std::string name;
        double value;
        std::string desc;
    };

    /**
     * Add (or overwrite) a scalar statistic.
     * @param name dotted hierarchical name, e.g. "core0.mrq.merges"
     * @param value the sample value
     * @param desc one-line human-readable description
     */
    void add(const std::string &name, double value,
             const std::string &desc = "");

    /** @return true iff a statistic with this name exists. */
    bool has(const std::string &name) const;

    /**
     * Look up a statistic by exact name.
     * @return its value; panics if absent (use has() to probe).
     */
    double get(const std::string &name) const;

    /** Look up with a fallback instead of panicking. */
    double getOr(const std::string &name, double fallback) const;

    /**
     * Sum of all statistics whose name matches "<prefix><anything><suffix>".
     * Useful for aggregating per-core stats, e.g.
     * sumMatching("core", ".pref.issued").
     */
    double sumMatching(const std::string &prefix,
                       const std::string &suffix) const;

    /** Copy all entries of @p other, prepending @p prefix to each name. */
    void merge(const StatSet &other, const std::string &prefix);

    /** All entries in insertion order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Number of entries. */
    std::size_t size() const { return entries_.size(); }

    /** Dump as aligned "name value # desc" lines. */
    void dumpText(std::ostream &os) const;

    /**
     * Dump as "name,value,description" CSV with a header row. Fields
     * containing commas, quotes or newlines are quoted RFC 4180 style
     * (embedded quotes doubled).
     */
    void dumpCsv(std::ostream &os) const;

    /** Dump as a JSON object: {"name": {"value": v, "desc": "..."}}. */
    void dumpJson(std::ostream &os) const;

  private:
    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

/**
 * Fixed-width linear histogram with under/overflow buckets; tracks
 * count, sum, min and max of all samples.
 */
class Histogram
{
  public:
    /**
     * @param lo lower bound of the first regular bucket
     * @param hi upper bound of the last regular bucket
     * @param nbuckets number of regular buckets between lo and hi
     */
    Histogram(double lo, double hi, unsigned nbuckets);

    /** Record @p count occurrences of value @p v. */
    void sample(double v, std::uint64_t count = 1);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

    /** Number of regular buckets. */
    unsigned buckets() const
    {
        return static_cast<unsigned>(bucketCounts_.size());
    }

    /** Occurrences in regular bucket @p i. */
    std::uint64_t bucketCount(unsigned i) const;

    /** Samples below the first / at-or-above the last bucket bound. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Export summary stats (count/mean/min/max) into @p set under
     * "<name>.count" etc.
     */
    void exportTo(StatSet &set, const std::string &name,
                  const std::string &desc = "") const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> bucketCounts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace mtp

#endif // MTP_COMMON_STATS_HH
