/**
 * @file
 * Simulator configuration. SimConfig's defaults are the paper's baseline
 * GPGPU (Table II, an NVIDIA 8800GT-like part) plus the default prefetcher
 * settings used throughout the evaluation (prefetch distance 1, degree 1,
 * 16 KB 8-way prefetch cache, 100K-cycle throttle period, initial throttle
 * degree 2).
 */

#ifndef MTP_COMMON_CONFIG_HH
#define MTP_COMMON_CONFIG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mtp {

/** Which hardware prefetcher a core instantiates. */
enum class HwPrefKind
{
    None,      //!< no hardware prefetching
    StrideRPT, //!< region-indexed stride prefetcher [Iacobovici04]
    StridePC,  //!< PC-indexed stride prefetcher [Chen95, Fu92]
    Stream,    //!< Power5-like stream prefetcher [Sinharoy05]
    GHB,       //!< global history buffer AC/DC prefetcher [Nesbit04]
    MTHWP,     //!< the paper's many-thread aware prefetcher (Fig. 6)
};

/** Which software-prefetch transform a workload variant applies. */
enum class SwPrefKind
{
    None,     //!< unmodified baseline binary
    Register, //!< binding prefetch into registers [Ryoo08]
    Stride,   //!< stride prefetch into the prefetch cache
    IP,       //!< inter-thread prefetching (Sec. III-A2)
    StrideIP, //!< MT-SWP: stride + IP combined
};

/** Parse "none|register|stride|ip|mtswp" etc. */
HwPrefKind parseHwPrefKind(const std::string &s);
SwPrefKind parseSwPrefKind(const std::string &s);
std::string toString(HwPrefKind kind);
std::string toString(SwPrefKind kind);

/**
 * Complete configuration of one simulation. Aggregate-initializable;
 * every field has the paper's baseline value as default.
 */
struct SimConfig
{
    // ------------------------------------------------------------------
    // Cores (Table II: 14 cores, 8-wide SIMD, 900 MHz, in-order)
    // ------------------------------------------------------------------
    unsigned numCores = 14;       //!< number of SIMT cores
    unsigned simdWidth = 8;       //!< SIMD lanes per core
    unsigned fetchWidth = 1;      //!< warp-instructions fetched per cycle
    unsigned decodeCycles = 5;    //!< decode depth; stall on branch
    unsigned latencyOther = 4;    //!< cycles/warp for ordinary instructions
    unsigned latencyImul = 16;    //!< cycles/warp for integer multiply
    unsigned latencyFdiv = 32;    //!< cycles/warp for FP divide
    unsigned mrqEntries = 64;     //!< per-core memory request queue depth
    unsigned mshrEntries = 64;    //!< per-core in-flight demand trackers
    /**
     * In-flight prefetch trackers per core (the prefetch engine's own
     * request bookkeeping, separate from the demand MSHRs).
     */
    unsigned prefMshrEntries = 256;
    unsigned maxBlocksPerCore = 8; //!< upper bound; workloads tighten it

    // ------------------------------------------------------------------
    // Interconnect (Table II: 20-cycle fixed latency, at most one
    // request from every two cores per cycle)
    // ------------------------------------------------------------------
    unsigned icntLatency = 20;    //!< fixed network traversal latency
    unsigned icntCoresPerPort = 2; //!< cores sharing one injection port

    // ------------------------------------------------------------------
    // DRAM (Table II: 2 KB page, 16 banks, 8 channels, 57.6 GB/s,
    // 1.2 GHz memory / 900 MHz bus, tCL=11 tRCD=11 tRP=13)
    // ------------------------------------------------------------------
    unsigned dramChannels = 8;    //!< independent DRAM channels
    unsigned dramBanks = 2;       //!< banks per channel (16 total)
    unsigned dramRowBytes = 2048; //!< row-buffer (page) size
    unsigned dramTCL = 11;        //!< CAS latency (memory cycles)
    unsigned dramTRCD = 11;       //!< RAS-to-CAS delay (memory cycles)
    unsigned dramTRP = 13;        //!< row precharge (memory cycles)
    unsigned memBufEntries = 64;  //!< per-channel memory request buffer
    /**
     * Per-channel data-bus bandwidth in bytes per *core* cycle.
     * 8 B/cycle x 8 channels x 900 MHz = 57.6 GB/s aggregate.
     */
    unsigned dramBusBytesPerCycle = 8;
    /** Memory-to-core clock ratio numerator/denominator (1.2 GHz / 900 MHz). */
    unsigned memClockNum = 4;
    unsigned memClockDen = 3;
    bool demandPriority = true;   //!< demands beat prefetches in DRAM
    /**
     * Fixed pipeline latency (core cycles) added to every DRAM response:
     * controller front/back end, GDDR I/O and return path. Together with
     * the interconnect this yields the ~400-700 cycle unloaded global
     * memory latency of the modeled 8800GT-class part.
     */
    unsigned memLatencyExtra = 600;

    // ------------------------------------------------------------------
    // On-chip storage (Table II)
    // ------------------------------------------------------------------
    unsigned sharedMemBytes = 16 * 1024; //!< software-managed cache
    unsigned prefCacheBytes = 16 * 1024; //!< prefetch cache capacity
    unsigned prefCacheAssoc = 8;         //!< prefetch cache associativity

    // ------------------------------------------------------------------
    // Prefetching configuration (Sec. II-C3, VIII)
    // ------------------------------------------------------------------
    HwPrefKind hwPref = HwPrefKind::None; //!< hardware prefetcher kind
    bool hwPrefWarpTraining = true; //!< index/train tables with warp ids
    unsigned prefDistance = 1;    //!< prefetch distance (in strides)
    unsigned prefDegree = 1;      //!< requests per prefetch trigger
    /**
     * Warps ahead targeted by the hardware IP table per unit of
     * prefetch distance. Co-resident warps pass a PC nearly together,
     * so useful inter-thread prefetches target the next thread block
     * (~one block of warps ahead), which runs later on the same core.
     */
    unsigned ipDistanceWarps = 4;

    // Table V configurations of the evaluated baselines.
    unsigned strideRptEntries = 1024; //!< Stride RPT table entries
    unsigned strideRptRegionBits = 16; //!< Stride RPT region index bits
    unsigned stridePcEntries = 1024;  //!< StridePC table entries
    unsigned streamEntries = 512;     //!< stream prefetcher entries
    unsigned ghbEntries = 1024;       //!< GHB FIFO entries
    unsigned ghbCzoneBits = 12;       //!< GHB CZone tag bits
    unsigned ghbIndexEntries = 128;   //!< GHB index table entries

    // MT-HWP table sizes (Sec. VIII-B).
    unsigned pwsEntries = 32;     //!< per-warp stride table entries
    unsigned gsEntries = 8;       //!< global stride table entries
    unsigned ipEntries = 8;       //!< inter-thread prefetch table entries
    unsigned gsPromoteCount = 3;  //!< same-stride warps needed to promote
    unsigned ipTrainCount = 3;    //!< cross-warp matches needed to train

    // MT-HWP table enables (the Fig. 14 ablation).
    bool mthwpPws = true;         //!< instantiate the PWS table
    bool mthwpGs = true;          //!< instantiate the GS table
    bool mthwpIp = true;          //!< instantiate the IP table

    // ------------------------------------------------------------------
    // Adaptive prefetch throttling (Sec. V)
    // ------------------------------------------------------------------
    bool throttleEnable = false;   //!< run the adaptive throttle engine
    Cycle throttlePeriod = 100000; //!< metric/update period in cycles
    unsigned throttleInitDegree = 2; //!< initial throttle degree (of 0..5)
    /**
     * Early-eviction-rate thresholds (Eq. 5: early evictions per useful
     * prefetch). The paper used 0.02/0.01, tuned experimentally to its
     * testbed (footnote 5); this simulator's healthy equilibria sit at
     * 0.05-0.3 and its harmful ones above 1, so the recalibrated bounds
     * below separate the same populations.
     */
    double earlyEvictHigh = 1.5;   //!< "high" bound: harmful prefetching
    double earlyEvictLow = 0.5;    //!< "low" bound: healthy prefetching
    double mergeHigh = 0.15;       //!< merge-ratio "high" bound

    // Baseline feedback schemes compared in Fig. 15.
    bool ghbFeedback = false;      //!< GHB+F: accuracy-driven degree
    bool stridePcLateThrottle = false; //!< StridePC+T: lateness throttling

    // ------------------------------------------------------------------
    // Microarchitecture ablation knobs (not part of Table II; defaults
    // are the modeled baseline's behaviour)
    // ------------------------------------------------------------------
    /**
     * Warp selection: true = greedy-then-round-robin (keep issuing the
     * current warp until it stalls, Table II's "switching to another
     * warp if source operands are not ready"); false = pure round-robin
     * (switch every issue).
     */
    bool schedGreedy = true;
    /**
     * Block dispatch: true = contiguous per-core block ranges (the
     * locality inter-thread prefetching relies on; see DESIGN.md);
     * false = round-robin dispatch of blocks to free cores.
     */
    bool dispatchContiguous = true;

    // ------------------------------------------------------------------
    // Simulation control
    // ------------------------------------------------------------------
    bool perfectMemory = false;   //!< all memory requests take 1 cycle
    Cycle maxCycles = 400'000'000; //!< safety cap; runs must finish first
    std::uint64_t seed = 1;       //!< deterministic RNG seed
    /**
     * Event-driven cycle skipping: when no core, queue or DRAM bank can
     * make progress this cycle, Gpu::run() fast-forwards to the next
     * upcoming event instead of ticking dead cycles one by one. Results
     * and statistics are bit-identical either way (the naive loop is
     * kept as the oracle; see DESIGN.md on the event-horizon contract);
     * turning this off only makes runs slower.
     */
    bool fastForward = true;
    /**
     * Scheduler used when fastForward is on: true (the default) runs
     * the event-queue loop — components self-schedule their next tick
     * and only due components are ticked each stepped cycle; false
     * falls back to the legacy loop that ticks every component every
     * cycle and polls every nextEventAt() bound between steps. Results
     * are bit-identical across naive, legacy and queued (DESIGN.md §7);
     * the knob exists as a triage aid and to keep the legacy semantics
     * testable.
     */
    bool eventQueue = true;
    /**
     * Intra-run parallelism: partition cores and DRAM channels into this
     * many shards, each ticked by its own worker thread under the
     * epoch-barrier protocol (DESIGN.md §10). 1 (the default) runs the
     * serial event-queue loop unchanged; any value produces bit-identical
     * results and statistics — shards only trade wall-clock time for
     * threads. Requires fastForward and eventQueue; clamped to numCores.
     */
    unsigned shards = 1;

    /**
     * Apply a textual "key=value" override (used by bench/example CLIs).
     * Unknown keys are fatal. @return *this for chaining.
     */
    SimConfig &applyOverride(const std::string &kv);

    /** Apply a list of overrides (e.g. argv tail). */
    SimConfig &applyOverrides(const std::vector<std::string> &kvs);

    /** Validate invariants (power-of-two sizes etc.); fatal on violation. */
    void validate() const;

    /** Print every field as "key = value" lines. */
    void dump(std::ostream &os) const;
};

} // namespace mtp

#endif // MTP_COMMON_CONFIG_HH
