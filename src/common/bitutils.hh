/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef MTP_COMMON_BITUTILS_HH
#define MTP_COMMON_BITUTILS_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace mtp {

/** @return true iff @p v is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Align @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Align @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [first, first+count) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned count)
{
    return (v >> first) & ((count >= 64) ? ~0ULL : ((1ULL << count) - 1));
}

/**
 * Stateless 64-bit mixing function (splitmix64 finalizer). Used to derive
 * pseudo-random but deterministic address scatter in synthetic workloads.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * A fixed-size dynamic bitset tuned for the simulator's incremental
 * scheduling state: membership sets over warp or block-slot indices
 * where the common operations are single-bit updates and "first set
 * bit at or after i" scans (used for index-ordered iteration, which
 * must match a naive ascending loop bit for bit).
 */
class DynBitset
{
  public:
    static constexpr std::size_t npos = ~static_cast<std::size_t>(0);

    DynBitset() = default;

    /** Size to @p bits entries, all cleared. */
    explicit DynBitset(std::size_t bits) { resize(bits); }

    /** Resize to @p bits entries, clearing every bit. */
    void
    resize(std::size_t bits)
    {
        bits_ = bits;
        words_.assign((bits + 63) / 64, 0);
    }

    std::size_t size() const { return bits_; }

    bool
    test(std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
    void clear(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

    void
    assign(std::size_t i, bool v)
    {
        if (v)
            set(i);
        else
            clear(i);
    }

    /** @return true iff any bit is set. */
    bool
    any() const
    {
        for (auto w : words_) {
            if (w)
                return true;
        }
        return false;
    }

    /** Number of set bits. */
    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (auto w : words_)
            n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    /** Index of the first set bit >= @p from, or npos. */
    std::size_t
    findNextSet(std::size_t from) const
    {
        if (from >= bits_)
            return npos;
        std::size_t w = from >> 6;
        std::uint64_t word = words_[w] & (~0ULL << (from & 63));
        while (true) {
            if (word)
                return (w << 6) +
                       static_cast<std::size_t>(std::countr_zero(word));
            if (++w >= words_.size())
                return npos;
            word = words_[w];
        }
    }

    /** Legacy name of findNextSet(). */
    std::size_t findFrom(std::size_t from) const
    {
        return findNextSet(from);
    }

    /**
     * Invoke @p fn(baseIndex, word) for every non-zero 64-bit word, in
     * ascending order; bit b of @p word is entry baseIndex + b. The
     * word is passed by value, so clearing visited bits during the
     * scan does not perturb the iteration.
     */
    template <typename Fn>
    void
    forEachSetWord(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            if (words_[w])
                fn(w << 6, words_[w]);
        }
    }

    /**
     * Invoke @p fn(index) for every set bit in ascending order — the
     * word-at-a-time equivalent of a naive test() loop, visiting the
     * same indices in the same order. A bool-returning @p fn stops the
     * scan by returning false (forEachSet then returns false); a void
     * @p fn visits every set bit. Clearing the bit under the cursor
     * (e.g. while retiring) is safe: each word is scanned from a copy.
     */
    template <typename Fn>
    bool
    forEachSet(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word) {
                std::size_t i =
                    (w << 6) +
                    static_cast<std::size_t>(std::countr_zero(word));
                word &= word - 1;
                if constexpr (std::is_void_v<
                                  std::invoke_result_t<Fn, std::size_t>>) {
                    fn(i);
                } else {
                    if (!fn(i))
                        return false;
                }
            }
        }
        return true;
    }

  private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace mtp

#endif // MTP_COMMON_BITUTILS_HH
