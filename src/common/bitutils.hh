/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef MTP_COMMON_BITUTILS_HH
#define MTP_COMMON_BITUTILS_HH

#include <cstdint>

namespace mtp {

/** @return true iff @p v is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Align @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Align @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [first, first+count) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned count)
{
    return (v >> first) & ((count >= 64) ? ~0ULL : ((1ULL << count) - 1));
}

/**
 * Stateless 64-bit mixing function (splitmix64 finalizer). Used to derive
 * pseudo-random but deterministic address scatter in synthetic workloads.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace mtp

#endif // MTP_COMMON_BITUTILS_HH
