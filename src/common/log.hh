/**
 * @file
 * Status/error reporting in the gem5 style: panic() for simulator bugs,
 * fatal() for user errors, warn()/inform() for non-fatal conditions.
 */

#ifndef MTP_COMMON_LOG_HH
#define MTP_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace mtp {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Global verbosity; messages above this level are suppressed. */
LogLevel logLevel();

/** Set the global verbosity. */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Abort the simulation due to an internal simulator bug: a condition that
 * should never happen regardless of user input.
 */
#define MTP_PANIC(...) \
    ::mtp::detail::panicImpl(__FILE__, __LINE__, \
                             ::mtp::detail::concat(__VA_ARGS__))

/**
 * Terminate the simulation due to a user error (bad configuration,
 * invalid arguments) — not a simulator bug.
 */
#define MTP_FATAL(...) \
    ::mtp::detail::fatalImpl(__FILE__, __LINE__, \
                             ::mtp::detail::concat(__VA_ARGS__))

/** Alert the user to suspicious but non-fatal behaviour. */
#define MTP_WARN(...) \
    ::mtp::detail::warnImpl(::mtp::detail::concat(__VA_ARGS__))

/** Provide normal operating status to the user. */
#define MTP_INFORM(...) \
    ::mtp::detail::informImpl(::mtp::detail::concat(__VA_ARGS__))

/** Development tracing; only shown at LogLevel::Debug. */
#define MTP_DEBUG(...) \
    ::mtp::detail::debugImpl(::mtp::detail::concat(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define MTP_ASSERT(cond, ...) \
    do { \
        if (!(cond)) \
            MTP_PANIC("assertion '", #cond, "' failed: ", \
                      ::mtp::detail::concat(__VA_ARGS__)); \
    } while (0)

/**
 * MTP_SLOW_CHECKS gates O(N) consistency re-scans that cross-check the
 * simulator's incrementally-maintained counters (active-warp counts,
 * scheduler ready sets, drained()-style in-flight totals) against an
 * exhaustive walk of the underlying state. They run every cycle, so
 * they are enabled only in Debug builds (or with -DMTP_SLOW_CHECKS=1)
 * and compiled out of the default RelWithDebInfo build.
 */
#if !defined(MTP_SLOW_CHECKS) && !defined(NDEBUG)
#define MTP_SLOW_CHECKS 1
#endif

} // namespace mtp

#endif // MTP_COMMON_LOG_HH
