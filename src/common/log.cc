#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mtp {

namespace {

// The parallel driver logs from worker threads concurrently; keep the
// level a relaxed atomic and emit each message with one fwrite so lines
// from different threads never interleave (POSIX locks stream writes,
// and a single write is all-or-nothing even on other platforms).
std::atomic<LogLevel> globalLevel{LogLevel::Warn};

void
writeLine(const char *tag, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += tag;
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine("panic: ",
              msg + "\n  @ " + file + ":" + std::to_string(line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    writeLine("fatal: ",
              msg + "\n  @ " + file + ":" + std::to_string(line));
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        writeLine("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        writeLine("info: ", msg);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        writeLine("debug: ", msg);
}

} // namespace detail

} // namespace mtp
