#include "common/config.hh"

#include <functional>
#include <map>
#include <ostream>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace mtp {

HwPrefKind
parseHwPrefKind(const std::string &s)
{
    if (s == "none")
        return HwPrefKind::None;
    if (s == "stride_rpt" || s == "rpt")
        return HwPrefKind::StrideRPT;
    if (s == "stride_pc" || s == "stridepc")
        return HwPrefKind::StridePC;
    if (s == "stream")
        return HwPrefKind::Stream;
    if (s == "ghb")
        return HwPrefKind::GHB;
    if (s == "mthwp" || s == "mt_hwp")
        return HwPrefKind::MTHWP;
    MTP_FATAL("unknown hardware prefetcher '", s, "'");
}

SwPrefKind
parseSwPrefKind(const std::string &s)
{
    if (s == "none")
        return SwPrefKind::None;
    if (s == "register" || s == "reg")
        return SwPrefKind::Register;
    if (s == "stride")
        return SwPrefKind::Stride;
    if (s == "ip")
        return SwPrefKind::IP;
    if (s == "stride_ip" || s == "mtswp")
        return SwPrefKind::StrideIP;
    MTP_FATAL("unknown software prefetch scheme '", s, "'");
}

std::string
toString(HwPrefKind kind)
{
    switch (kind) {
      case HwPrefKind::None:      return "none";
      case HwPrefKind::StrideRPT: return "stride_rpt";
      case HwPrefKind::StridePC:  return "stride_pc";
      case HwPrefKind::Stream:    return "stream";
      case HwPrefKind::GHB:       return "ghb";
      case HwPrefKind::MTHWP:     return "mthwp";
    }
    MTP_PANIC("bad HwPrefKind ", static_cast<int>(kind));
}

std::string
toString(SwPrefKind kind)
{
    switch (kind) {
      case SwPrefKind::None:     return "none";
      case SwPrefKind::Register: return "register";
      case SwPrefKind::Stride:   return "stride";
      case SwPrefKind::IP:       return "ip";
      case SwPrefKind::StrideIP: return "stride_ip";
    }
    MTP_PANIC("bad SwPrefKind ", static_cast<int>(kind));
}

namespace {

using Setter = std::function<void(SimConfig &, const std::string &)>;

unsigned
parseUnsigned(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        unsigned long v = std::stoul(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return static_cast<unsigned>(v);
    } catch (const std::exception &) {
        MTP_FATAL("bad unsigned value '", value, "' for key '", key, "'");
    }
}

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        unsigned long long v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        MTP_FATAL("bad integer value '", value, "' for key '", key, "'");
    }
}

double
parseDouble(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        MTP_FATAL("bad float value '", value, "' for key '", key, "'");
    }
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "no")
        return false;
    MTP_FATAL("bad bool value '", value, "' for key '", key, "'");
}

#define UNSIGNED_FIELD(field) \
    {#field, [](SimConfig &c, const std::string &v) { \
        c.field = parseUnsigned(#field, v); }}
#define U64_FIELD(field) \
    {#field, [](SimConfig &c, const std::string &v) { \
        c.field = parseU64(#field, v); }}
#define DOUBLE_FIELD(field) \
    {#field, [](SimConfig &c, const std::string &v) { \
        c.field = parseDouble(#field, v); }}
#define BOOL_FIELD(field) \
    {#field, [](SimConfig &c, const std::string &v) { \
        c.field = parseBool(#field, v); }}

const std::map<std::string, Setter> &
setters()
{
    static const std::map<std::string, Setter> table = {
        UNSIGNED_FIELD(numCores),
        UNSIGNED_FIELD(simdWidth),
        UNSIGNED_FIELD(fetchWidth),
        UNSIGNED_FIELD(decodeCycles),
        UNSIGNED_FIELD(latencyOther),
        UNSIGNED_FIELD(latencyImul),
        UNSIGNED_FIELD(latencyFdiv),
        UNSIGNED_FIELD(mrqEntries),
        UNSIGNED_FIELD(mshrEntries),
        UNSIGNED_FIELD(prefMshrEntries),
        UNSIGNED_FIELD(maxBlocksPerCore),
        UNSIGNED_FIELD(icntLatency),
        UNSIGNED_FIELD(icntCoresPerPort),
        UNSIGNED_FIELD(dramChannels),
        UNSIGNED_FIELD(dramBanks),
        UNSIGNED_FIELD(dramRowBytes),
        UNSIGNED_FIELD(dramTCL),
        UNSIGNED_FIELD(dramTRCD),
        UNSIGNED_FIELD(dramTRP),
        UNSIGNED_FIELD(memBufEntries),
        UNSIGNED_FIELD(dramBusBytesPerCycle),
        UNSIGNED_FIELD(memClockNum),
        UNSIGNED_FIELD(memClockDen),
        BOOL_FIELD(demandPriority),
        UNSIGNED_FIELD(memLatencyExtra),
        UNSIGNED_FIELD(sharedMemBytes),
        UNSIGNED_FIELD(prefCacheBytes),
        UNSIGNED_FIELD(prefCacheAssoc),
        {"hwPref", [](SimConfig &c, const std::string &v) {
             c.hwPref = parseHwPrefKind(v); }},
        BOOL_FIELD(hwPrefWarpTraining),
        UNSIGNED_FIELD(prefDistance),
        UNSIGNED_FIELD(prefDegree),
        UNSIGNED_FIELD(ipDistanceWarps),
        UNSIGNED_FIELD(strideRptEntries),
        UNSIGNED_FIELD(strideRptRegionBits),
        UNSIGNED_FIELD(stridePcEntries),
        UNSIGNED_FIELD(streamEntries),
        UNSIGNED_FIELD(ghbEntries),
        UNSIGNED_FIELD(ghbCzoneBits),
        UNSIGNED_FIELD(ghbIndexEntries),
        UNSIGNED_FIELD(pwsEntries),
        UNSIGNED_FIELD(gsEntries),
        UNSIGNED_FIELD(ipEntries),
        UNSIGNED_FIELD(gsPromoteCount),
        UNSIGNED_FIELD(ipTrainCount),
        BOOL_FIELD(mthwpPws),
        BOOL_FIELD(mthwpGs),
        BOOL_FIELD(mthwpIp),
        BOOL_FIELD(throttleEnable),
        U64_FIELD(throttlePeriod),
        UNSIGNED_FIELD(throttleInitDegree),
        DOUBLE_FIELD(earlyEvictHigh),
        DOUBLE_FIELD(earlyEvictLow),
        DOUBLE_FIELD(mergeHigh),
        BOOL_FIELD(ghbFeedback),
        BOOL_FIELD(stridePcLateThrottle),
        BOOL_FIELD(schedGreedy),
        BOOL_FIELD(dispatchContiguous),
        BOOL_FIELD(perfectMemory),
        U64_FIELD(maxCycles),
        U64_FIELD(seed),
        BOOL_FIELD(fastForward),
        BOOL_FIELD(eventQueue),
        UNSIGNED_FIELD(shards),
    };
    return table;
}

#undef UNSIGNED_FIELD
#undef U64_FIELD
#undef DOUBLE_FIELD
#undef BOOL_FIELD

} // namespace

SimConfig &
SimConfig::applyOverride(const std::string &kv)
{
    auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0)
        MTP_FATAL("config override '", kv, "' is not of the form key=value");
    std::string key = kv.substr(0, eq);
    std::string value = kv.substr(eq + 1);
    auto it = setters().find(key);
    if (it == setters().end())
        MTP_FATAL("unknown config key '", key, "'");
    it->second(*this, value);
    return *this;
}

SimConfig &
SimConfig::applyOverrides(const std::vector<std::string> &kvs)
{
    for (const auto &kv : kvs)
        applyOverride(kv);
    return *this;
}

void
SimConfig::validate() const
{
    if (numCores == 0)
        MTP_FATAL("numCores must be > 0");
    if (simdWidth == 0 || warpSize % simdWidth != 0)
        MTP_FATAL("simdWidth must divide the warp size (32)");
    if (!isPowerOf2(prefCacheBytes) || prefCacheBytes < blockBytes)
        MTP_FATAL("prefCacheBytes must be a power of two >= ", blockBytes);
    unsigned pref_blocks = prefCacheBytes / blockBytes;
    if (prefCacheAssoc == 0 || pref_blocks % prefCacheAssoc != 0)
        MTP_FATAL("prefCacheAssoc must divide the prefetch cache blocks");
    if (!isPowerOf2(dramRowBytes) || dramRowBytes < blockBytes)
        MTP_FATAL("dramRowBytes must be a power of two >= ", blockBytes);
    if (dramChannels == 0 || dramBanks == 0)
        MTP_FATAL("dramChannels and dramBanks must be > 0");
    if (memClockNum == 0 || memClockDen == 0)
        MTP_FATAL("memory clock ratio must be positive");
    if (prefDegree == 0 || prefDistance == 0)
        MTP_FATAL("prefDegree and prefDistance must be >= 1");
    if (throttleInitDegree > 5)
        MTP_FATAL("throttleInitDegree must be in [0,5]");
    if (mrqEntries == 0 || memBufEntries == 0 || mshrEntries == 0)
        MTP_FATAL("queue sizes must be > 0");
    if (icntCoresPerPort == 0)
        MTP_FATAL("icntCoresPerPort must be > 0");
    if (shards == 0)
        MTP_FATAL("shards must be >= 1");
    if (shards > 1 && !(fastForward && eventQueue))
        MTP_FATAL("shards > 1 requires fastForward and eventQueue");
}

void
SimConfig::dump(std::ostream &os) const
{
    os << "numCores = " << numCores << '\n'
       << "simdWidth = " << simdWidth << '\n'
       << "fetchWidth = " << fetchWidth << '\n'
       << "decodeCycles = " << decodeCycles << '\n'
       << "latencyOther = " << latencyOther << '\n'
       << "latencyImul = " << latencyImul << '\n'
       << "latencyFdiv = " << latencyFdiv << '\n'
       << "mrqEntries = " << mrqEntries << '\n'
       << "mshrEntries = " << mshrEntries << '\n'
       << "prefMshrEntries = " << prefMshrEntries << '\n'
       << "maxBlocksPerCore = " << maxBlocksPerCore << '\n'
       << "icntLatency = " << icntLatency << '\n'
       << "icntCoresPerPort = " << icntCoresPerPort << '\n'
       << "dramChannels = " << dramChannels << '\n'
       << "dramBanks = " << dramBanks << '\n'
       << "dramRowBytes = " << dramRowBytes << '\n'
       << "dramTCL = " << dramTCL << '\n'
       << "dramTRCD = " << dramTRCD << '\n'
       << "dramTRP = " << dramTRP << '\n'
       << "memBufEntries = " << memBufEntries << '\n'
       << "dramBusBytesPerCycle = " << dramBusBytesPerCycle << '\n'
       << "memClock = " << memClockNum << '/' << memClockDen << '\n'
       << "demandPriority = " << demandPriority << '\n'
       << "memLatencyExtra = " << memLatencyExtra << '\n'
       << "sharedMemBytes = " << sharedMemBytes << '\n'
       << "prefCacheBytes = " << prefCacheBytes << '\n'
       << "prefCacheAssoc = " << prefCacheAssoc << '\n'
       << "hwPref = " << toString(hwPref) << '\n'
       << "hwPrefWarpTraining = " << hwPrefWarpTraining << '\n'
       << "prefDistance = " << prefDistance << '\n'
       << "prefDegree = " << prefDegree << '\n'
       << "ipDistanceWarps = " << ipDistanceWarps << '\n'
       << "strideRptEntries = " << strideRptEntries << '\n'
       << "strideRptRegionBits = " << strideRptRegionBits << '\n'
       << "stridePcEntries = " << stridePcEntries << '\n'
       << "streamEntries = " << streamEntries << '\n'
       << "ghbEntries = " << ghbEntries << '\n'
       << "ghbCzoneBits = " << ghbCzoneBits << '\n'
       << "ghbIndexEntries = " << ghbIndexEntries << '\n'
       << "pwsEntries = " << pwsEntries << '\n'
       << "gsEntries = " << gsEntries << '\n'
       << "ipEntries = " << ipEntries << '\n'
       << "gsPromoteCount = " << gsPromoteCount << '\n'
       << "ipTrainCount = " << ipTrainCount << '\n'
       << "mthwpPws = " << mthwpPws << '\n'
       << "mthwpGs = " << mthwpGs << '\n'
       << "mthwpIp = " << mthwpIp << '\n'
       << "throttleEnable = " << throttleEnable << '\n'
       << "throttlePeriod = " << throttlePeriod << '\n'
       << "throttleInitDegree = " << throttleInitDegree << '\n'
       << "earlyEvictHigh = " << earlyEvictHigh << '\n'
       << "earlyEvictLow = " << earlyEvictLow << '\n'
       << "mergeHigh = " << mergeHigh << '\n'
       << "ghbFeedback = " << ghbFeedback << '\n'
       << "stridePcLateThrottle = " << stridePcLateThrottle << '\n'
       << "schedGreedy = " << schedGreedy << '\n'
       << "dispatchContiguous = " << dispatchContiguous << '\n'
       << "perfectMemory = " << perfectMemory << '\n'
       << "maxCycles = " << maxCycles << '\n'
       << "seed = " << seed << '\n'
       << "fastForward = " << fastForward << '\n'
       << "eventQueue = " << eventQueue << '\n'
       << "shards = " << shards << '\n';
}

} // namespace mtp
