/**
 * @file
 * Umbrella public header of the mtprefetch library — a C++20
 * reproduction of "Many-Thread Aware Prefetching Mechanisms for GPGPU
 * Applications" (Lee, Lakshminarayana, Kim, Vuduc; MICRO-43, 2010).
 *
 * Quickstart:
 * @code
 *   mtp::SimConfig cfg;                       // Table II baseline
 *   cfg.hwPref = mtp::HwPrefKind::MTHWP;      // the paper's prefetcher
 *   cfg.throttleEnable = true;                // adaptive throttling
 *   mtp::Workload w = mtp::Suite::get("backprop");
 *   mtp::RunResult r = mtp::simulate(cfg, w.kernel);
 *   std::cout << r.cycles << " cycles, CPI " << r.cpi << '\n';
 * @endcode
 */

#ifndef MTP_MTPREFETCH_HH
#define MTP_MTPREFETCH_HH

#include "common/config.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/mt_hwp.hh"
#include "core/mtaml.hh"
#include "core/prefetcher.hh"
#include "core/sw_prefetch.hh"
#include "core/throttle.hh"
#include "driver/fingerprint.hh"
#include "driver/parallel_executor.hh"
#include "driver/run_cache.hh"
#include "obs/json.hh"
#include "obs/observer.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/trace.hh"
#include "sim/gpu.hh"
#include "trace/kernel.hh"
#include "workloads/workload.hh"

#endif // MTP_MTPREFETCH_HH
