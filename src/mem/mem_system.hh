/**
 * @file
 * Top-level memory system (Fig. 1): per-core MRQs drain through the
 * interconnect into per-channel DRAM controllers; responses return
 * through the interconnect to the requesting core(s). Implements the
 * injection limit (one request from every two cores per cycle) and the
 * inter-core merge level of Fig. 2b. Intra-core merging and waiter
 * bookkeeping live in the cores' MSHR files.
 */

#ifndef MTP_MEM_MEM_SYSTEM_HH
#define MTP_MEM_MEM_SYSTEM_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "mem/dram.hh"
#include "mem/icnt.hh"
#include "mem/mrq.hh"
#include "obs/trace.hh"

namespace mtp {

/** Cores' gateway to the interconnect and DRAM. */
class MemSystem
{
  public:
    explicit MemSystem(const SimConfig &cfg);

    /**
     * Enqueue one block transaction from @p core.
     * @return false if the core's MRQ is full (caller retries).
     */
    bool issue(CoreId core, Addr blockAddr, ReqType type, Cycle now,
               std::uint16_t bytes = blockBytes);

    /**
     * Promote a queued prefetch of @p addr from @p core to demand
     * priority (a demand merged with it in the core's MSHR).
     */
    void upgradeToDemand(CoreId core, Addr addr);

    /** Advance the interconnect and all DRAM channels by one cycle. */
    void tick(Cycle now);

    /**
     * Event-queue variant of tick(): identical observable behaviour,
     * but each phase runs only when it can act — network deliveries
     * are gated on the cached earliest-arrival bounds, DRAM channels
     * on their cached per-channel horizons (invalidated by
     * DramChannel::stateVersion()), and injection on MRQ occupancy. A
     * skipped phase is provably a no-op (it would neither move a
     * request nor touch a counter), so results stay bit-identical with
     * tick(); the naive and legacy loops keep calling tick() as the
     * oracle.
     */
    void tickQueued(Cycle now);

    /**
     * Enable the sharded tick protocol (DESIGN.md §10): cross-shard
     * upgradeToDemand() calls are parked in per-core mailboxes instead
     * of applied inline, and the per-cycle tick is split into the
     * parallel tickShardChannels() and the serial finishShardedTick().
     * Incompatible with an attached lifecycle tracer (hooks would fire
     * inside parallel phases).
     */
    void setSharded(bool on);

    /**
     * @return true iff upgrade requests deferred by the current cycle's
     * core phase await application. Forces the epoch loop to run a mem
     * phase this cycle so mailboxes never survive a cycle boundary
     * (their drain order — ascending core id — then matches the serial
     * call order exactly).
     */
    bool
    hasDeferredUpgrades() const
    {
        return deferredCount_.load(std::memory_order_relaxed) > 0;
    }

    /**
     * Sharded mem phase, worker side: for each owned channel in
     * [chLo, chHi), apply this cycle's deferred upgrades (ascending
     * core order), deliver due request packets, and run the
     * horizon-gated channel tick, parking load completions in the
     * channel's mailbox. Touches only channel-local state plus relaxed
     * shared counters; safe to run concurrently for disjoint channel
     * ranges between epoch barriers.
     */
    void tickShardChannels(unsigned chLo, unsigned chHi, Cycle now);

    /**
     * Sharded mem phase, coordinator tail (all workers at the barrier):
     * route parked completions into the response network in ascending
     * channel order — byte-identical to the serial channel loop's send
     * order — then run injection arbitration and response delivery
     * exactly as tickQueued() would.
     */
    void finishShardedTick(Cycle now);

    /**
     * Cores whose completion list went non-empty during the last
     * tick()/tickQueued(). The event-queue loop arms exactly these
     * cores for the next cycle (a delivered response must be drained
     * one cycle after delivery, as in the naive loop).
     */
    const std::vector<CoreId> &deliveredCores() const
    {
        return deliveredTo_;
    }

    /** Requests currently waiting in core MRQs. */
    std::uint64_t
    mrqOccupancy() const
    {
        return mrqOccupancy_.load(std::memory_order_relaxed);
    }

    /**
     * Responses delivered to @p core and not yet consumed. The core
     * drains this list every cycle and then calls clearCompletions();
     * routing consumption through that call keeps the pending-response
     * counter behind drained() in sync.
     */
    const std::vector<MemRequest> &completions(CoreId core) const;

    /** Discard @p core's (fully drained) completion list. */
    void clearCompletions(CoreId core);

    Mrq &mrq(CoreId core) { return *mrqs_[core]; }
    const Mrq &mrq(CoreId core) const { return *mrqs_[core]; }

    DramChannel &channel(unsigned ch) { return *channels_[ch]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** Which channel services @p addr (block interleaving). */
    unsigned channelOf(Addr addr) const;

    /**
     * @return true iff no request is anywhere in the memory system.
     * O(1): maintained counters; cross-checked against drainedScan()
     * in slow-check builds.
     */
    bool drained() const;

    /** Exhaustive recomputation of drained() (oracle for the counters). */
    bool drainedScan() const;

    /**
     * Earliest cycle >= @p now at which the memory system might act:
     * deliver a network packet, schedule or retire a DRAM request, or
     * hand a completion to a core. Never later than the true next state
     * change (the event-horizon contract); returns invalidCycle when
     * fully drained.
     */
    Cycle nextEventAt(Cycle now) const;

    /**
     * Self-scheduling bound for the event-queue loop: like
     * nextEventAt() but without the pending-completion pin — delivered
     * completions wake their core directly (deliveredCores()), so they
     * are the core's obligation, not the memory system's. Non-empty
     * MRQs still pin the bound to @p now (they arbitrate for injection
     * every cycle). Uses the per-channel horizon cache.
     */
    Cycle nextSelfEventAt(Cycle now) const;

    /** Horizon-cache hits (per-channel bound served from cache). */
    std::uint64_t horizonHits() const;

    /** Horizon-cache misses (per-channel bound recomputed). */
    std::uint64_t horizonMisses() const;

    /** Total bytes moved over all DRAM data buses. */
    std::uint64_t dramBytes() const;

    /**
     * Injection attempts skipped by credit gating: cycles in which a
     * port inspected a non-empty MRQ whose head could not inject
     * because its target channel had no credits. Skip-safe: a non-empty
     * MRQ already pins nextEventAt() to the current cycle, so skipped
     * cycles never hide an attempt.
     */
    std::uint64_t injCreditStalls() const { return injCreditStalls_; }

    /**
     * Attach a lifecycle trace recorder (borrowed; may be null). Also
     * forwarded to every DRAM channel.
     */
    void setTracer(obs::TraceRecorder *tracer);

    /** Export the whole memory hierarchy's stats under @p prefix. */
    void exportStats(StatSet &set, const std::string &prefix) const;

  private:
    /** Try to inject one request from one of a port's cores. */
    void injectFromPort(unsigned port, Cycle now);

    // tick() phases, shared verbatim by the gated tickQueued().
    void deliverRequests(Cycle now);
    void tickChannel(unsigned ch, Cycle now);
    void deliverResponses(Cycle now);

    /** tickChannel() variant that parks load completions in the
     *  channel's mailbox instead of sending responses (the response
     *  network is shared; the coordinator routes them). */
    void tickChannelSharded(unsigned ch, Cycle now);

    /**
     * Cached nextEventAt() of channel @p ch, recomputed only when the
     * channel's state version moved. A cached future bound proves the
     * channel need not tick now; a cached due bound is still exact
     * because every action on the channel bumps the version (see the
     * exactness argument at the cache-hit test).
     */
    Cycle channelHorizonAt(unsigned ch, Cycle now) const;

    SimConfig cfg_;
    unsigned numCores_;
    std::vector<std::unique_ptr<Mrq>> mrqs_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    Icnt reqNet_;  //!< cores -> channels
    Icnt respNet_; //!< channels -> cores
    std::vector<std::size_t> inFlightToChannel_; //!< gating counters
    std::vector<unsigned> portRR_; //!< per-port round-robin pointer
    std::vector<std::vector<MemRequest>> completions_;
    std::vector<MemRequest> completedScratch_;
    std::vector<CoreId> deliveredTo_; //!< cores woken by the last tick

    /**
     * Per-channel horizon cache entry (see channelHorizonAt()). The
     * hit/miss counters live here, plain, rather than as shared
     * atomics: horizon queries are the hottest path of a skip-heavy
     * run, and under the sharded protocol each entry is only ever
     * touched by its channel's owner within a phase (the coordinator
     * reads all entries, but only while the workers are parked), so a
     * plain increment inherits the same safety argument as the cached
     * version/horizon fields themselves.
     */
    struct ChanHorizon
    {
        std::uint64_t version = ~0ULL;
        Cycle horizon = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    mutable std::vector<ChanHorizon> chanHorizons_;

    /**
     * Requests currently in an MRQ, a network, or a channel (buffered,
     * in service, or as undelivered responses). Inter-core merges and
     * per-sharer response fan-out adjust the count so that drained()
     * is a counter comparison instead of a full scan.
     *
     * Atomic with relaxed ordering: under the sharded protocol several
     * shards adjust these inside one phase, but every adjustment is a
     * commutative sum and every read happens on the far side of an
     * epoch barrier, so the observed values are exactly the serial
     * loop's (DESIGN.md §10).
     */
    std::atomic<std::uint64_t> inTransit_ {0};
    std::atomic<std::uint64_t> mrqOccupancy_ {0}; //!< still in an MRQ
    std::atomic<std::uint64_t> completionsPending_ {0}; //!< await drain
    std::uint64_t injCreditStalls_ = 0;    //!< credit-gated inject skips

    // Sharded-protocol state (DESIGN.md §10).
    bool sharded_ = false;
    /** Per-core upgrade mailboxes: owner-written during the parallel
     *  core phase, drained same-cycle by channel owners in ascending
     *  core order, cleared by finishShardedTick(). */
    std::vector<std::vector<Addr>> deferredUpgrades_;
    std::atomic<std::uint64_t> deferredCount_ {0};
    /** Per-channel completion mailboxes for tickChannelSharded(). */
    std::vector<std::vector<MemRequest>> chanCompleted_;

    obs::TraceRecorder *tracer_ = nullptr;
};

} // namespace mtp

#endif // MTP_MEM_MEM_SYSTEM_HH
