#include "mem/mem_system.hh"

#include <algorithm>

#include "common/log.hh"

namespace mtp {

// The obs layer identifies request types by raw code so it need not
// depend on mem headers; keep the documented mapping in sync.
static_assert(static_cast<std::uint8_t>(ReqType::DemandLoad) == 0 &&
                  static_cast<std::uint8_t>(ReqType::DemandStore) == 1 &&
                  static_cast<std::uint8_t>(ReqType::SwPrefetch) == 2 &&
                  static_cast<std::uint8_t>(ReqType::HwPrefetch) == 3,
              "obs::reqTypeName() assumes this ReqType enumerator order");

MemSystem::MemSystem(const SimConfig &cfg)
    : cfg_(cfg),
      numCores_(cfg.numCores),
      reqNet_(cfg.dramChannels, cfg.icntLatency),
      respNet_(cfg.numCores, cfg.icntLatency),
      inFlightToChannel_(cfg.dramChannels, 0),
      completions_(cfg.numCores),
      deferredUpgrades_(cfg.numCores),
      chanCompleted_(cfg.dramChannels)
{
    mrqs_.reserve(numCores_);
    for (unsigned c = 0; c < numCores_; ++c)
        mrqs_.push_back(std::make_unique<Mrq>(cfg.mrqEntries));
    channels_.reserve(cfg.dramChannels);
    for (unsigned ch = 0; ch < cfg.dramChannels; ++ch)
        channels_.push_back(std::make_unique<DramChannel>(cfg, ch));
    unsigned ports = (numCores_ + cfg.icntCoresPerPort - 1) /
                     cfg.icntCoresPerPort;
    portRR_.assign(ports, 0);
    chanHorizons_.resize(cfg.dramChannels);
}

void
MemSystem::setTracer(obs::TraceRecorder *tracer)
{
    tracer_ = tracer;
    for (auto &channel : channels_)
        channel->setTracer(tracer);
}

void
MemSystem::setSharded(bool on)
{
    MTP_ASSERT(!on || !tracer_,
               "sharded ticking is incompatible with a lifecycle tracer");
    sharded_ = on;
}

unsigned
MemSystem::channelOf(Addr addr) const
{
    return static_cast<unsigned>(blockIndex(addr) % channels_.size());
}

bool
MemSystem::issue(CoreId core, Addr blockAddr, ReqType type, Cycle now,
                 std::uint16_t bytes)
{
    MTP_ASSERT(core < numCores_, "issue() from unknown core ", core);
    MTP_ASSERT(blockAlign(blockAddr) == blockAddr,
               "issue() address not block aligned");
    bool pushed = mrqs_[core]->push(
        MemRequest::make(blockAddr, type, core, now, bytes));
    if (pushed) {
        inTransit_.fetch_add(1, std::memory_order_relaxed);
        mrqOccupancy_.fetch_add(1, std::memory_order_relaxed);
    }
    return pushed;
}

void
MemSystem::upgradeToDemand(CoreId core, Addr addr)
{
    MTP_ASSERT(core < numCores_, "upgrade from unknown core ", core);
    if (mrqs_[core]->upgradeToDemand(addr))
        return;
    if (sharded_) {
        // Parallel core phase: the packet lives in the shared request
        // network or a channel buffer, possibly owned by another shard.
        // Park the upgrade in this core's mailbox; channel owners apply
        // the mailboxes in ascending core order at the start of this
        // cycle's mem phase (which hasDeferredUpgrades() forces to
        // run), reproducing the serial call order exactly — cores tick
        // in ascending id and nothing reads request types in between.
        deferredUpgrades_[core].push_back(addr);
        deferredCount_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    unsigned ch = channelOf(addr);
    if (reqNet_.upgradeToDemand(ch, addr))
        return;
    channels_[ch]->upgradeToDemand(addr);
}

void
MemSystem::injectFromPort(unsigned port, Cycle now)
{
    unsigned lo = port * cfg_.icntCoresPerPort;
    unsigned members = std::min(cfg_.icntCoresPerPort, numCores_ - lo);
    for (unsigned k = 0; k < members; ++k) {
        unsigned idx = (portRR_[port] + k) % members;
        CoreId core = lo + idx;
        Mrq &mrq = *mrqs_[core];
        if (mrq.empty())
            continue;
        unsigned ch = channelOf(mrq.head().addr);
        // Credit-based gating: never put more requests in flight than
        // the controller buffer can eventually hold.
        if (channels_[ch]->bufferOccupancy() + inFlightToChannel_[ch] >=
            cfg_.memBufEntries) {
            ++injCreditStalls_;
            continue;
        }
        MTP_OBS_HOOK(tracer_,
                     stage(obs::Stage::IcntInject, mrq.head().addr,
                           static_cast<std::uint8_t>(mrq.head().type),
                           core, ch, now));
        reqNet_.send(ch, mrq.pop(), now);
        MTP_ASSERT(mrqOccupancy_.load(std::memory_order_relaxed) > 0,
                   "MRQ occupancy underflow");
        mrqOccupancy_.fetch_sub(1, std::memory_order_relaxed);
        ++inFlightToChannel_[ch];
        portRR_[port] = (idx + 1) % members;
        return;
    }
}

void
MemSystem::deliverRequests(Cycle now)
{
    // Deliver request packets into controller buffers.
    for (unsigned ch = 0; ch < channels_.size(); ++ch) {
        while (reqNet_.frontReady(ch, now) && !channels_[ch]->bufferFull()) {
            MemRequest arrived = reqNet_.pop(ch);
            Addr addr = arrived.addr;
            auto type = static_cast<std::uint8_t>(arrived.type);
            CoreId origin = arrived.core;
            if (channels_[ch]->insert(std::move(arrived))) {
                // Inter-core merge: two in-transit requests became one.
                // The surviving buffered request keeps its own
                // DramEnqueue timestamp; no new lifecycle stage.
                MTP_ASSERT(inTransit_.load(std::memory_order_relaxed) > 0,
                           "in-transit underflow on merge");
                inTransit_.fetch_sub(1, std::memory_order_relaxed);
            } else {
                MTP_OBS_HOOK(tracer_,
                             stage(obs::Stage::DramEnqueue, addr, type,
                                   origin, ch, now));
            }
            MTP_ASSERT(inFlightToChannel_[ch] > 0, "in-flight underflow");
            --inFlightToChannel_[ch];
        }
    }
}

void
MemSystem::tickChannel(unsigned ch, Cycle now)
{
    // Advance one channel; route completions toward their sharer cores.
    DramChannel &channel = *channels_[ch];
    completedScratch_.clear();
    channel.tick(now, completedScratch_);
    for (auto &req : completedScratch_) {
        if (req.type == ReqType::DemandStore) {
            // Stores complete without a response.
            MTP_ASSERT(inTransit_.load(std::memory_order_relaxed) > 0,
                       "in-transit underflow on store");
            inTransit_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        // One response packet per sharer core.
        inTransit_.fetch_add(req.sharers.size() - 1,
                             std::memory_order_relaxed);
        for (std::size_t i = 1; i < req.sharers.size(); ++i) {
            MemRequest copy = req;
            respNet_.send(req.sharers[i], std::move(copy), now);
        }
        CoreId first = req.sharers.front();
        respNet_.send(first, std::move(req), now);
    }
}

void
MemSystem::deliverResponses(Cycle now)
{
    // Deliver responses to cores (MSHR retirement happens there).
    for (CoreId core = 0; core < numCores_; ++core) {
        while (respNet_.frontReady(core, now)) {
            if (completions_[core].empty())
                deliveredTo_.push_back(core);
            completions_[core].push_back(respNet_.pop(core));
            MTP_ASSERT(inTransit_.load(std::memory_order_relaxed) > 0,
                       "in-transit underflow on response");
            inTransit_.fetch_sub(1, std::memory_order_relaxed);
            completionsPending_.fetch_add(1, std::memory_order_relaxed);
#if MTP_OBS_ENABLED
            if (tracer_) {
                const MemRequest &resp = completions_[core].back();
                tracer_->stage(obs::Stage::Return, resp.addr,
                               static_cast<std::uint8_t>(resp.type),
                               core, channelOf(resp.addr), now);
            }
#endif
        }
    }
}

void
MemSystem::tick(Cycle now)
{
    deliveredTo_.clear();
    deliverRequests(now);
    for (unsigned ch = 0; ch < channels_.size(); ++ch)
        tickChannel(ch, now);
    for (unsigned port = 0; port < portRR_.size(); ++port)
        injectFromPort(port, now);
    deliverResponses(now);
}

void
MemSystem::tickQueued(Cycle now)
{
    deliveredTo_.clear();
    // Request delivery only when a packet's arrival time has passed; a
    // delivery blocked on a full controller buffer keeps the arrival
    // bound at or below now, so the phase re-runs every cycle until
    // the packet lands (as the ungated loop would).
    if (reqNet_.nextArrivalAt() <= now)
        deliverRequests(now);
    // Channels only when their cached horizon is due. A future horizon
    // proves the ungated tick would neither retire nor schedule (the
    // bound is never late), so skipping it is a no-op. deliverRequests
    // ran first: an insert bumps the state version and invalidates the
    // cache before this check, exactly like the ungated phase order.
    for (unsigned ch = 0; ch < channels_.size(); ++ch) {
        if (channelHorizonAt(ch, now) <= now)
            tickChannel(ch, now);
    }
    // Injection only when some MRQ is occupied; the ungated port loop
    // is a pure no-op otherwise (empty MRQs count no stalls).
    if (mrqOccupancy_ > 0) {
        for (unsigned port = 0; port < portRR_.size(); ++port)
            injectFromPort(port, now);
    }
    if (respNet_.nextArrivalAt() <= now)
        deliverResponses(now);
}

void
MemSystem::tickShardChannels(unsigned chLo, unsigned chHi, Cycle now)
{
    MTP_ASSERT(sharded_, "tickShardChannels() outside sharded mode");
    bool upgrades = hasDeferredUpgrades();
    for (unsigned ch = chLo; ch < chHi; ++ch) {
        // Deferred upgrades first, in ascending core order: the serial
        // loop applied them during this cycle's core phase in exactly
        // this order (cores tick in ascending id), and nothing read the
        // upgraded request types in between. Upgrades to different
        // channels touch disjoint pipes/buffers, so per-channel
        // application commutes with the other shards'.
        if (upgrades) {
            for (CoreId core = 0; core < numCores_; ++core) {
                for (Addr addr : deferredUpgrades_[core]) {
                    if (channelOf(addr) != ch)
                        continue;
                    if (!reqNet_.upgradeToDemand(ch, addr))
                        channels_[ch]->upgradeToDemand(addr);
                }
            }
        }
        // deliverRequests(), restricted to this channel. Pops bypass
        // the shared arrival min-cache (the coordinator marks it dirty
        // once in finishShardedTick()).
        while (reqNet_.frontReady(ch, now) && !channels_[ch]->bufferFull()) {
            MemRequest arrived = reqNet_.popSharded(ch);
            if (channels_[ch]->insert(std::move(arrived))) {
                MTP_ASSERT(inTransit_.load(std::memory_order_relaxed) > 0,
                           "in-transit underflow on merge");
                inTransit_.fetch_sub(1, std::memory_order_relaxed);
            }
            MTP_ASSERT(inFlightToChannel_[ch] > 0, "in-flight underflow");
            --inFlightToChannel_[ch];
        }
        // The same horizon gate tickQueued() applies; an insert above
        // bumped the state version and invalidated the cache entry.
        if (channelHorizonAt(ch, now) <= now)
            tickChannelSharded(ch, now);
    }
}

void
MemSystem::tickChannelSharded(unsigned ch, Cycle now)
{
    DramChannel &channel = *channels_[ch];
    std::vector<MemRequest> &completed = chanCompleted_[ch];
    MTP_ASSERT(completed.empty(), "unrouted completions in mailbox ", ch);
    channel.tick(now, completed);
    // Stores retire without a response; drop them here (their counter
    // update is a commutative sum). Load responses stay parked for the
    // coordinator to route in ascending channel order.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < completed.size(); ++i) {
        if (completed[i].type == ReqType::DemandStore) {
            MTP_ASSERT(inTransit_.load(std::memory_order_relaxed) > 0,
                       "in-transit underflow on store");
            inTransit_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        if (keep != i)
            completed[keep] = std::move(completed[i]);
        ++keep;
    }
    completed.resize(keep);
}

void
MemSystem::finishShardedTick(Cycle now)
{
    deliveredTo_.clear();
    // Shard-side pops bypassed the request net's arrival min-cache;
    // one conservative invalidation re-validates it lazily.
    reqNet_.markMinDirty();
    // Route parked completions exactly as the serial channel loop
    // would have: ascending channel order, in completion order, with
    // the per-sharer fan-out of tickChannel().
    for (unsigned ch = 0; ch < channels_.size(); ++ch) {
        for (MemRequest &req : chanCompleted_[ch]) {
            inTransit_.fetch_add(req.sharers.size() - 1,
                                 std::memory_order_relaxed);
            for (std::size_t i = 1; i < req.sharers.size(); ++i) {
                MemRequest copy = req;
                respNet_.send(req.sharers[i], std::move(copy), now);
            }
            CoreId first = req.sharers.front();
            respNet_.send(first, std::move(req), now);
        }
        chanCompleted_[ch].clear();
    }
    // Injection arbitration (shared ports, shared request net) and
    // response delivery (shared pipes) are inherently serial and
    // cheap; the gates match tickQueued()'s.
    if (mrqOccupancy_.load(std::memory_order_relaxed) > 0) {
        for (unsigned port = 0; port < portRR_.size(); ++port)
            injectFromPort(port, now);
    }
    if (respNet_.nextArrivalAt() <= now)
        deliverResponses(now);
    // This cycle's upgrade mailboxes were fully applied by the channel
    // owners above.
    if (hasDeferredUpgrades()) {
        for (auto &list : deferredUpgrades_)
            list.clear();
        deferredCount_.store(0, std::memory_order_relaxed);
    }
}

const std::vector<MemRequest> &
MemSystem::completions(CoreId core) const
{
    MTP_ASSERT(core < numCores_, "completions() for unknown core ", core);
    return completions_[core];
}

void
MemSystem::clearCompletions(CoreId core)
{
    MTP_ASSERT(core < numCores_, "clearCompletions() for unknown core ",
               core);
    MTP_ASSERT(completionsPending_.load(std::memory_order_relaxed) >=
                   completions_[core].size(),
               "pending-completion counter underflow");
    completionsPending_.fetch_sub(completions_[core].size(),
                                  std::memory_order_relaxed);
    completions_[core].clear();
}

bool
MemSystem::drained() const
{
    bool fast = inTransit_.load(std::memory_order_relaxed) == 0 &&
                completionsPending_.load(std::memory_order_relaxed) == 0;
#if MTP_SLOW_CHECKS
    MTP_ASSERT(fast == drainedScan(),
               "in-transit counters disagree with exhaustive scan");
#endif
    return fast;
}

Cycle
MemSystem::nextEventAt(Cycle now) const
{
    // Occupied MRQs arbitrate for injection every cycle, and delivered
    // completions are drained by their core next cycle: no skipping.
    if (completionsPending_.load(std::memory_order_relaxed) > 0 ||
        mrqOccupancy_.load(std::memory_order_relaxed) > 0)
        return now;
    Cycle e = std::min(reqNet_.nextArrivalAt(), respNet_.nextArrivalAt());
    if (e <= now)
        return now;
    for (const auto &channel : channels_) {
        Cycle c = channel->nextEventAt(now);
        if (c <= now)
            return now;
        if (c < e)
            e = c;
    }
    return e;
}

Cycle
MemSystem::channelHorizonAt(unsigned ch, Cycle now) const
{
    ChanHorizon &cc = chanHorizons_[ch];
    std::uint64_t v = channels_[ch]->stateVersion();
    // A version match alone validates the cache, even when the cached
    // bound is due: a DRAM channel's bound is exact (bank busyUntil and
    // service doneAt cycles, not estimates), and a due channel always
    // acts when ticked — retiring or scheduling — which bumps the
    // version. A stale due bound therefore cannot survive a tick, and
    // an untouched channel's bound cannot move.
    if (cc.version == v) {
        ++cc.hits;
#if MTP_SLOW_CHECKS
        MTP_ASSERT(cc.horizon == channels_[ch]->nextEventAt(now),
                   "stale channel horizon served from cache");
#endif
        return cc.horizon;
    }
    ++cc.misses;
    cc.version = v;
    cc.horizon = channels_[ch]->nextEventAt(now);
    return cc.horizon;
}

std::uint64_t
MemSystem::horizonHits() const
{
    std::uint64_t n = 0;
    for (const ChanHorizon &cc : chanHorizons_)
        n += cc.hits;
    return n;
}

std::uint64_t
MemSystem::horizonMisses() const
{
    std::uint64_t n = 0;
    for (const ChanHorizon &cc : chanHorizons_)
        n += cc.misses;
    return n;
}

Cycle
MemSystem::nextSelfEventAt(Cycle now) const
{
    // Occupied MRQs arbitrate for injection every cycle: no skipping.
    // Unlike nextEventAt(), pending completions do not pin the bound —
    // the event-queue loop arms the receiving cores directly and each
    // drains its list on its own next tick.
    if (mrqOccupancy_.load(std::memory_order_relaxed) > 0)
        return now;
    Cycle e = std::min(reqNet_.nextArrivalAt(), respNet_.nextArrivalAt());
    if (e <= now)
        return now;
    for (unsigned ch = 0; ch < channels_.size(); ++ch) {
        Cycle c = channelHorizonAt(ch, now);
        if (c <= now)
            return now;
        if (c < e)
            e = c;
    }
    return e;
}

bool
MemSystem::drainedScan() const
{
    for (const auto &mrq : mrqs_) {
        if (!mrq->empty())
            return false;
    }
    if (!reqNet_.drained() || !respNet_.drained())
        return false;
    for (const auto &channel : channels_) {
        if (!channel->drained())
            return false;
    }
    for (const auto &list : completions_) {
        if (!list.empty())
            return false;
    }
    return true;
}

std::uint64_t
MemSystem::dramBytes() const
{
    std::uint64_t n = 0;
    for (const auto &channel : channels_)
        n += channel->counters().bytesTransferred;
    return n;
}

void
MemSystem::exportStats(StatSet &set, const std::string &prefix) const
{
    for (unsigned c = 0; c < numCores_; ++c)
        mrqs_[c]->exportStats(set, prefix + ".core" + std::to_string(c) +
                                       ".mrq");
    for (unsigned ch = 0; ch < channels_.size(); ++ch)
        channels_[ch]->exportStats(set, prefix + ".dram" +
                                            std::to_string(ch));
    reqNet_.exportStats(set, prefix + ".reqNet");
    respNet_.exportStats(set, prefix + ".respNet");
    set.add(prefix + ".dramBytes", static_cast<double>(dramBytes()),
            "total DRAM data-bus bytes");
    set.add(prefix + ".injCreditStalls",
            static_cast<double>(injCreditStalls_),
            "injection attempts skipped by channel credit gating");
}

} // namespace mtp
