/**
 * @file
 * Per-core Miss Status Holding Registers. Every block transaction a
 * core sends to memory is tracked here for its whole flight; later
 * same-block transactions from the same core merge into the entry
 * instead of duplicating the fetch. This is the intra-core merging of
 * Fig. 2a carried end-to-end: a demand joining an in-flight prefetch
 * is precisely the paper's "late prefetch" (merged, partially hiding
 * latency), and a prefetch to an in-flight block is a redundant
 * prefetch that costs nothing further.
 */

#ifndef MTP_MEM_MSHR_HH
#define MTP_MEM_MSHR_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mtp {

/** MSHR file of one core. */
class Mshr
{
  public:
    /** A warp register waiting on the block. */
    struct Waiter
    {
        std::uint32_t warpIdx;
        std::int8_t slot;
        Cycle issued; //!< for per-demand latency accounting
    };

    /** One in-flight block. */
    struct Entry
    {
        std::vector<Waiter> waiters;
        bool prefetch = false;     //!< allocated by a prefetch
        bool demandJoined = false; //!< a demand merged in (late pref.)
        Cycle created = 0;
    };

    /** Cumulative counters (throttle engine differences snapshots). */
    struct Counters
    {
        std::uint64_t totalRequests = 0; //!< demand + prefetch lookups
        std::uint64_t merges = 0;        //!< same-block joins
        std::uint64_t demandIntoPref = 0; //!< late prefetches
        std::uint64_t prefDroppedInflight = 0; //!< redundant prefetches
        std::uint64_t fullStalls = 0;
    };

    /**
     * @param demandCapacity demand-allocated entry limit
     * @param prefetchCapacity prefetch-allocated entry limit (the
     *        prefetch engine's own tracker pool)
     */
    Mshr(unsigned demandCapacity, unsigned prefetchCapacity)
        : demandCapacity_(demandCapacity),
          prefetchCapacity_(prefetchCapacity)
    {
    }

    /** @return true iff no new demand entry can be allocated. */
    bool full() const { return demandEntries_ >= demandCapacity_; }

    /** @return true iff no new prefetch entry can be allocated. */
    bool prefetchFull() const
    {
        return prefetchEntries_ >= prefetchCapacity_;
    }

    std::size_t size() const { return map_.size(); }

    /** @return the entry tracking @p addr, or nullptr. */
    Entry *find(Addr addr);

    /**
     * Demand-load lookup/merge. If the block is in flight, the waiter
     * joins it; otherwise an entry is allocated (caller must then send
     * the request, having checked full() first).
     * @return true if merged into an existing entry.
     */
    bool demandAccess(Addr addr, const Waiter &waiter, Cycle now);

    /**
     * Prefetch lookup. If the block is in flight the prefetch is
     * redundant; otherwise an entry is allocated (caller sends the
     * request, having checked full() first).
     * @return true if redundant (caller drops the prefetch).
     */
    bool prefetchAccess(Addr addr, Cycle now);

    /**
     * Retire the entry for a returned block.
     * @return its contents; panics if absent (every tracked response
     *         must have an entry).
     */
    Entry retire(Addr addr);

    /** Record a stall caused by MSHR exhaustion. */
    void noteFullStall() { ++counters_.fullStalls; }

    const Counters &counters() const { return counters_; }

    /** Export counters under "<prefix>." into @p set. */
    void exportStats(StatSet &set, const std::string &prefix) const;

  private:
    unsigned demandCapacity_;
    unsigned prefetchCapacity_;
    unsigned demandEntries_ = 0;
    unsigned prefetchEntries_ = 0;
    std::unordered_map<Addr, Entry> map_;
    Counters counters_;
};

} // namespace mtp

#endif // MTP_MEM_MSHR_HH
