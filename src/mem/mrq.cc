#include "mem/mrq.hh"

#include "common/log.hh"

namespace mtp {

bool
Mrq::push(MemRequest &&req)
{
    if (full()) {
        ++counters_.fullStalls;
        return false;
    }
    ++counters_.pushes;
    queue_.push_back(std::move(req));
    return true;
}

std::size_t
Mrq::headIndex() const
{
    // FIFO drain: the paper applies demand-over-prefetch priority at
    // the DRAM controller (Table II), not in the core's queue — so
    // prefetch requests genuinely delay later demands here, the effect
    // Sec. IV-B describes.
    MTP_ASSERT(!queue_.empty(), "head() on empty MRQ");
    return 0;
}

const MemRequest &
Mrq::head() const
{
    return queue_[headIndex()];
}

MemRequest
Mrq::pop()
{
    std::size_t idx = headIndex();
    MemRequest req = std::move(queue_[idx]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
    return req;
}

bool
Mrq::upgradeToDemand(Addr addr)
{
    for (auto &req : queue_) {
        if (req.addr == addr && isPrefetch(req.type)) {
            req.type = ReqType::DemandLoad;
            return true;
        }
    }
    return false;
}

void
Mrq::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".pushes", static_cast<double>(counters_.pushes),
            "requests enqueued");
    set.add(prefix + ".fullStalls",
            static_cast<double>(counters_.fullStalls),
            "pushes rejected because the queue was full");
    set.add(prefix + ".gatedStalls",
            static_cast<double>(counters_.gatedStalls),
            "cycles an upstream unit stalled on the full queue");
}

} // namespace mtp
