#include "mem/mshr.hh"

#include "common/log.hh"

namespace mtp {

Mshr::Entry *
Mshr::find(Addr addr)
{
    auto it = map_.find(addr);
    return it == map_.end() ? nullptr : &it->second;
}

bool
Mshr::demandAccess(Addr addr, const Waiter &waiter, Cycle now)
{
    ++counters_.totalRequests;
    if (Entry *entry = find(addr)) {
        ++counters_.merges;
        if (entry->prefetch && !entry->demandJoined)
            ++counters_.demandIntoPref;
        entry->demandJoined = true;
        entry->waiters.push_back(waiter);
        return true;
    }
    MTP_ASSERT(!full(), "demandAccess() allocation on a full MSHR");
    Entry entry;
    entry.waiters.push_back(waiter);
    entry.created = now;
    map_.emplace(addr, std::move(entry));
    ++demandEntries_;
    return false;
}

bool
Mshr::prefetchAccess(Addr addr, Cycle now)
{
    ++counters_.totalRequests;
    if (find(addr)) {
        ++counters_.merges;
        ++counters_.prefDroppedInflight;
        return true;
    }
    MTP_ASSERT(!prefetchFull(),
               "prefetchAccess() allocation on a full prefetch pool");
    Entry entry;
    entry.prefetch = true;
    entry.created = now;
    map_.emplace(addr, std::move(entry));
    ++prefetchEntries_;
    return false;
}

Mshr::Entry
Mshr::retire(Addr addr)
{
    auto it = map_.find(addr);
    MTP_ASSERT(it != map_.end(), "response for untracked block ", addr);
    Entry entry = std::move(it->second);
    map_.erase(it);
    if (entry.prefetch) {
        MTP_ASSERT(prefetchEntries_ > 0, "prefetch entry underflow");
        --prefetchEntries_;
    } else {
        MTP_ASSERT(demandEntries_ > 0, "demand entry underflow");
        --demandEntries_;
    }
    return entry;
}

void
Mshr::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".totalRequests",
            static_cast<double>(counters_.totalRequests),
            "demand and prefetch transactions looked up");
    set.add(prefix + ".merges", static_cast<double>(counters_.merges),
            "intra-core merges with in-flight blocks");
    set.add(prefix + ".demandIntoPref",
            static_cast<double>(counters_.demandIntoPref),
            "demands joining in-flight prefetches (late prefetches)");
    set.add(prefix + ".prefDroppedInflight",
            static_cast<double>(counters_.prefDroppedInflight),
            "prefetches to blocks already in flight");
    set.add(prefix + ".fullStalls",
            static_cast<double>(counters_.fullStalls),
            "stalls because all MSHRs were busy");
}

} // namespace mtp
