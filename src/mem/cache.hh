/**
 * @file
 * Generic set-associative cache with true-LRU replacement. Used as the
 * storage substrate of the per-core prefetch cache; only tags and
 * per-line metadata flags are modeled (the simulator carries no data).
 */

#ifndef MTP_MEM_CACHE_HH
#define MTP_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace mtp {

/** Tag-only set-associative LRU cache. */
class SetAssocCache
{
  public:
    /** Per-line metadata. */
    struct Line
    {
        Addr addr = invalidAddr; //!< block-aligned address
        std::uint8_t flags = 0;  //!< caller-defined metadata bits
        bool valid = false;
        std::uint64_t lastUse = 0; //!< LRU timestamp
    };

    /**
     * @param capacityBytes total capacity (power of two)
     * @param assoc ways per set; must divide capacityBytes/blockBytes
     */
    SetAssocCache(unsigned capacityBytes, unsigned assoc);

    /**
     * Look up @p addr (any alignment).
     * @param touch update LRU state on hit
     * @return pointer to the hit line, or nullptr on miss. The pointer
     *         is invalidated by the next insert().
     */
    Line *lookup(Addr addr, bool touch = true);
    const Line *lookup(Addr addr) const;

    /** @return true without perturbing LRU state. */
    bool contains(Addr addr) const { return lookup(addr) != nullptr; }

    /**
     * Insert @p addr with metadata @p flags, evicting the set's LRU line
     * if needed. If the block is already resident its flags are replaced
     * and it becomes MRU.
     * @return the victim line's previous contents if a valid line was
     *         evicted.
     */
    std::optional<Line> insert(Addr addr, std::uint8_t flags);

    /**
     * Invalidate @p addr if resident.
     * @return the invalidated line's contents, if any.
     */
    std::optional<Line> invalidate(Addr addr);

    /** Invalidate everything and reset LRU state. */
    void reset();

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    unsigned capacityBytes() const { return numSets_ * assoc_ * blockBytes; }

    /** Number of currently valid lines (O(capacity); for tests/stats). */
    unsigned validLines() const;

  private:
    unsigned setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    unsigned numSets_;
    unsigned assoc_;
    std::uint64_t tick_ = 0; //!< monotonic LRU clock
    std::vector<Line> lines_; //!< numSets_ x assoc_, row-major
};

} // namespace mtp

#endif // MTP_MEM_CACHE_HH
