/**
 * @file
 * DRAM channel model (Table II): a memory-request buffer with inter-core
 * merging (Fig. 2b), FR-FCFS bank scheduling with demand-over-prefetch
 * priority, per-bank row buffers (2 KB pages), and a shared data bus
 * whose occupancy enforces the 57.6 GB/s aggregate bandwidth.
 *
 * All timing is kept in core cycles; the DRAM-clock parameters (tCL,
 * tRCD, tRP at 1.2 GHz) are converted with the configured memory/core
 * clock ratio at construction.
 */

#ifndef MTP_MEM_DRAM_HH
#define MTP_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "mem/mem_request.hh"
#include "obs/trace.hh"

namespace mtp {

/** Physical location of a block within a channel. */
struct DramCoord
{
    unsigned bank;
    std::uint64_t row;
};

/** One DRAM channel: request buffer + banks + data bus. */
class DramChannel
{
  public:
    /** Cumulative counters. */
    struct Counters
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t rowHits = 0;      //!< open-row accesses
        std::uint64_t rowEmpty = 0;     //!< accesses to a closed bank
        std::uint64_t rowConflicts = 0; //!< row-buffer conflicts
        std::uint64_t interCoreMerges = 0;
        std::uint64_t bytesTransferred = 0;
        std::uint64_t demandServiced = 0;
        std::uint64_t prefetchServiced = 0;
    };

    DramChannel(const SimConfig &cfg, unsigned channelId);

    /** @return true iff the request buffer has no free entry. */
    bool bufferFull() const { return buffer_.size() >= bufEntries_; }

    std::size_t bufferOccupancy() const { return buffer_.size(); }

    /**
     * Insert a request, attempting an inter-core merge with a buffered
     * request to the same block first. Caller must have checked
     * bufferFull() (merging is allowed even when full).
     * @return true if the request merged.
     */
    bool insert(MemRequest &&req);

    /**
     * Advance one core cycle: retire in-service requests whose data
     * transfer finished (appended to @p completed) and schedule at most
     * one buffered request onto a ready bank (FR-FCFS, demand first).
     */
    void tick(Cycle now, std::vector<MemRequest> &completed);

    /** @return true iff no request is buffered or in service. */
    bool drained() const { return buffer_.empty() && inService_.empty(); }

    /**
     * Promote a buffered prefetch of @p addr to demand priority (a
     * demand merged with it upstream; Fig. 2b inter-core merging does
     * the same for demands arriving from other cores).
     * @return true if a request was upgraded.
     */
    bool upgradeToDemand(Addr addr);

    /** Map a block address to its bank and row within this channel. */
    DramCoord mapAddr(Addr addr) const;

    /** Banks with an in-progress access at @p now (bank-level par.). */
    unsigned busyBanks(Cycle now) const;

    /** Attach a lifecycle trace recorder (borrowed; may be null). */
    void setTracer(obs::TraceRecorder *tracer) { tracer_ = tracer; }

    /**
     * Earliest cycle >= @p now at which this channel could act: retire
     * an in-service transfer (its doneAt) or schedule a buffered
     * request (its bank's busyUntil). A lower bound on the true next
     * state change — never later (the event-horizon contract).
     */
    Cycle nextEventAt(Cycle now) const;

    /**
     * Monotonic counter bumped whenever timing-relevant channel state
     * changes: a request entering the buffer, a request scheduled onto
     * a bank, or a transfer retired. While it is unchanged, a cached
     * nextEventAt() bound that still lies in the future remains valid
     * — the basis of MemSystem's per-channel horizon cache.
     * upgradeToDemand() deliberately does not bump it: promotion
     * changes which request is picked, never when the channel next
     * acts (the bound is type-independent).
     */
    std::uint64_t stateVersion() const { return stateVersion_; }

    const Counters &counters() const { return counters_; }

    /** Export counters under "<prefix>." into @p set. */
    void exportStats(StatSet &set, const std::string &prefix) const;

    /** tRCD converted to core cycles (exposed for tests). */
    Cycle tRcd() const { return tRcd_; }
    Cycle tCl() const { return tCl_; }
    Cycle tRp() const { return tRp_; }
    Cycle burstCycles() const { return burst_; }

  private:
    static constexpr std::uint64_t noRow = ~0ULL;

    /** Per-bank row-buffer state. */
    struct Bank
    {
        std::uint64_t openRow = noRow;
        Cycle busyUntil = 0;
    };

    /** A scheduled request waiting for its data transfer to finish. */
    struct InService
    {
        MemRequest req;
        Cycle doneAt;
    };

    /** Index of the best schedulable request, or -1. */
    int pickRequest(Cycle now) const;

    unsigned channelId_;
    unsigned channels_;
    unsigned numBanks_;
    unsigned blocksPerRow_;
    unsigned bufEntries_;
    bool demandPriority_;
    Cycle tCl_;
    Cycle tRcd_;
    Cycle tRp_;
    Cycle burst_;
    Cycle extraLatency_;

    std::deque<MemRequest> buffer_;
    /**
     * Buffered requests per block address. Lets insert() and
     * upgradeToDemand() skip the O(buffer) walk in the common case of
     * no same-block entry; the walk still resolves merge eligibility
     * and ordering when the address is present.
     */
    std::unordered_map<Addr, unsigned> bufferedByAddr_;
    std::vector<Bank> banks_;
    /** Buffered requests per bank, for the O(banks) event bound. */
    std::vector<unsigned> bankPending_;
    std::vector<InService> inService_;
    /**
     * doneAt of every in-service request, oldest first. The shared
     * data bus serializes transfers, so completion times are strictly
     * increasing in schedule order and the front is the minimum;
     * retirement pops the same prefix tick() removes from inService_.
     */
    std::deque<Cycle> serviceDoneAts_;
    Cycle busFreeAt_ = 0;
    std::uint64_t stateVersion_ = 0;
    obs::TraceRecorder *tracer_ = nullptr;
    Counters counters_;
};

} // namespace mtp

#endif // MTP_MEM_DRAM_HH
