#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace mtp {

SetAssocCache::SetAssocCache(unsigned capacityBytes, unsigned assoc)
    : assoc_(assoc)
{
    MTP_ASSERT(capacityBytes >= blockBytes && isPowerOf2(capacityBytes),
               "cache capacity must be a power of two >= ", blockBytes);
    unsigned blocks = capacityBytes / blockBytes;
    MTP_ASSERT(assoc_ > 0 && blocks % assoc_ == 0,
               "associativity ", assoc_, " must divide ", blocks, " blocks");
    numSets_ = blocks / assoc_;
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

unsigned
SetAssocCache::setIndex(Addr addr) const
{
    return static_cast<unsigned>(blockIndex(addr) % numSets_);
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr)
{
    Addr block = blockAlign(addr);
    Line *set = &lines_[static_cast<std::size_t>(setIndex(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].addr == block)
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

SetAssocCache::Line *
SetAssocCache::lookup(Addr addr, bool touch)
{
    Line *line = findLine(addr);
    if (line && touch)
        line->lastUse = ++tick_;
    return line;
}

const SetAssocCache::Line *
SetAssocCache::lookup(Addr addr) const
{
    return findLine(addr);
}

std::optional<SetAssocCache::Line>
SetAssocCache::insert(Addr addr, std::uint8_t flags)
{
    Addr block = blockAlign(addr);
    if (Line *line = findLine(addr)) {
        line->flags = flags;
        line->lastUse = ++tick_;
        return std::nullopt;
    }
    Line *set = &lines_[static_cast<std::size_t>(setIndex(addr)) * assoc_];
    Line *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    std::optional<Line> evicted;
    if (victim->valid)
        evicted = *victim;
    victim->addr = block;
    victim->flags = flags;
    victim->valid = true;
    victim->lastUse = ++tick_;
    return evicted;
}

std::optional<SetAssocCache::Line>
SetAssocCache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        Line old = *line;
        line->valid = false;
        line->addr = invalidAddr;
        line->flags = 0;
        return old;
    }
    return std::nullopt;
}

void
SetAssocCache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    tick_ = 0;
}

unsigned
SetAssocCache::validLines() const
{
    unsigned n = 0;
    for (const auto &line : lines_)
        n += line.valid ? 1 : 0;
    return n;
}

} // namespace mtp
