/**
 * @file
 * Interconnection network (Table II): fixed 20-cycle traversal latency
 * in each direction, with request-side injection limited to one request
 * from every two cores per cycle. Modeled as order-preserving delay
 * pipes per destination; injection arbitration is performed by the
 * memory system using Icnt ports.
 */

#ifndef MTP_MEM_ICNT_HH
#define MTP_MEM_ICNT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "mem/mem_request.hh"

namespace mtp {

/**
 * A set of order-preserving delay pipes, one per destination
 * (channels on the request path, cores on the response path).
 */
class Icnt
{
  public:
    /**
     * @param destinations number of delay pipes
     * @param latency fixed traversal latency in cycles
     */
    Icnt(unsigned destinations, unsigned latency);

    /** Inject @p req toward @p dest; it arrives at now + latency. */
    void send(unsigned dest, MemRequest &&req, Cycle now);

    /** @return true iff @p dest has a packet whose arrival time passed. */
    bool frontReady(unsigned dest, Cycle now) const;

    /** Pop the ready head packet of @p dest. */
    MemRequest pop(unsigned dest);

    /**
     * pop() variant for the sharded channel phase: does not touch the
     * shared arrival min-cache, so owners of disjoint destinations may
     * pop concurrently. The coordinator calls markMinDirty() once after
     * the phase to re-validate the cache lazily.
     */
    MemRequest popSharded(unsigned dest);

    /** Conservatively invalidate the cached earliest arrival. */
    void markMinDirty() { minDirty_ = true; }

    /**
     * Promote an in-flight prefetch to @p dest for block @p addr to
     * demand priority (a demand merged with it upstream).
     * @return true if a packet was upgraded.
     */
    bool upgradeToDemand(unsigned dest, Addr addr);

    /** Packets currently in flight toward @p dest. */
    std::size_t inFlight(unsigned dest) const;

    /** Total packets in flight across all destinations. */
    std::size_t totalInFlight() const;

    /**
     * Earliest arrival time of any in-flight packet, or invalidCycle
     * when the network is empty. Pipes are FIFO with a fixed latency,
     * so each pipe's front packet is its earliest; this is the
     * network's contribution to the simulation's next-event bound.
     * O(1) amortized: sends keep a cached minimum up to date (arrival
     * times are monotone per pipe), and only popping the packet that
     * held the minimum forces an O(pipes) rescan.
     */
    Cycle nextArrivalAt() const;

    /** @return true iff nothing is in flight. */
    bool drained() const { return totalInFlight() == 0; }

    std::uint64_t packetsSent() const { return packetsSent_; }

    /** Export counters under "<prefix>." into @p set. */
    void exportStats(StatSet &set, const std::string &prefix) const;

  private:
    struct Timed
    {
        MemRequest req;
        Cycle readyAt;
    };

    unsigned latency_;
    std::vector<std::deque<Timed>> pipes_;
    std::uint64_t packetsSent_ = 0;
    /** Cached earliest arrival; recomputed lazily when dirty. */
    mutable Cycle minArrival_ = invalidCycle;
    mutable bool minDirty_ = false;
};

} // namespace mtp

#endif // MTP_MEM_ICNT_HH
