#include "mem/prefetch_cache.hh"

namespace mtp {

PrefetchCache::PrefetchCache(unsigned capacityBytes, unsigned assoc)
    : cache_(capacityBytes, assoc)
{
}

bool
PrefetchCache::demandAccess(Addr addr, bool *firstUse)
{
    SetAssocCache::Line *line = cache_.lookup(addr, /*touch=*/true);
    if (!line) {
        ++counters_.demandMisses;
        return false;
    }
    ++counters_.demandHits;
    if (!(line->flags & flagUsed)) {
        line->flags |= flagUsed;
        ++counters_.useful;
        if (firstUse)
            *firstUse = true;
    }
    return true;
}

void
PrefetchCache::fill(Addr addr, Addr *earlyEvicted)
{
    if (earlyEvicted)
        *earlyEvicted = invalidAddr;
    ++counters_.fills;
    if (cache_.contains(addr)) {
        // Re-fill of a resident block: refresh recency, keep used bit.
        ++counters_.redundantFills;
        cache_.lookup(addr, /*touch=*/true);
        return;
    }
    auto evicted = cache_.insert(addr, 0);
    if (evicted && !(evicted->flags & flagUsed)) {
        ++counters_.earlyEvictions;
        if (earlyEvicted)
            *earlyEvicted = evicted->addr;
    }
}

void
PrefetchCache::reset()
{
    cache_.reset();
}

void
PrefetchCache::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".fills", static_cast<double>(counters_.fills),
            "prefetched blocks inserted");
    set.add(prefix + ".demandHits",
            static_cast<double>(counters_.demandHits),
            "demand lookups that hit the prefetch cache");
    set.add(prefix + ".demandMisses",
            static_cast<double>(counters_.demandMisses),
            "demand lookups that missed");
    set.add(prefix + ".useful", static_cast<double>(counters_.useful),
            "prefetched blocks used at least once");
    set.add(prefix + ".earlyEvictions",
            static_cast<double>(counters_.earlyEvictions),
            "prefetched blocks evicted before first use");
    set.add(prefix + ".redundantFills",
            static_cast<double>(counters_.redundantFills),
            "fills of already-resident blocks");
}

} // namespace mtp
