/**
 * @file
 * Per-core Memory Request Queue (Fig. 1). Same-block deduplication is
 * handled upstream by the core's MSHR file, so the MRQ is a bounded
 * queue whose drain order gives demands priority over prefetches
 * (Table II: demand requests have higher priority throughout).
 */

#ifndef MTP_MEM_MRQ_HH
#define MTP_MEM_MRQ_HH

#include <cstdint>
#include <deque>
#include <string>

#include "common/stats.hh"
#include "mem/mem_request.hh"

namespace mtp {

/** Bounded, demand-first memory request queue. */
class Mrq
{
  public:
    /** Cumulative counters. */
    struct Counters
    {
        std::uint64_t pushes = 0;     //!< requests enqueued
        std::uint64_t fullStalls = 0; //!< rejected pushes
        std::uint64_t gatedStalls = 0; //!< upstream cycles held on full
    };

    explicit Mrq(unsigned capacity) : capacity_(capacity) {}

    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }
    bool full() const { return queue_.size() >= capacity_; }

    /**
     * Enqueue @p req. @return false (and count a stall) if full.
     */
    bool push(MemRequest &&req);

    /**
     * Next request to inject: the oldest demand if any, else the oldest
     * prefetch. Queue must not be empty.
     */
    const MemRequest &head() const;

    /** Remove and return the request head() designates. */
    MemRequest pop();

    /**
     * Promote a queued prefetch of @p addr to demand priority (a demand
     * just merged with it in the MSHR). No-op if not queued.
     * @return true if a request was upgraded.
     */
    bool upgradeToDemand(Addr addr);

    /**
     * Count a cycle in which an upstream unit (the LSU) held a request
     * back because the queue was full — the gated counterpart of a
     * rejected push, and the per-cycle injection-backpressure signal
     * cycle accounting attributes to StallIcnt.
     */
    void noteGatedStall() { ++counters_.gatedStalls; }

    const Counters &counters() const { return counters_; }

    /** Export counters under "<prefix>." into @p set. */
    void exportStats(StatSet &set, const std::string &prefix) const;

  private:
    /** Index of the request head()/pop() select. */
    std::size_t headIndex() const;

    unsigned capacity_;
    std::deque<MemRequest> queue_;
    Counters counters_;
};

} // namespace mtp

#endif // MTP_MEM_MRQ_HH
