#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace mtp {

namespace {

/** Convert a DRAM-clock cycle count to core cycles (rounding up). */
Cycle
toCoreCycles(unsigned dram_cycles, unsigned num, unsigned den)
{
    // core_freq / mem_freq = den / num, so t_core = t_mem * den / num.
    return (static_cast<Cycle>(dram_cycles) * den + num - 1) / num;
}

} // namespace

DramChannel::DramChannel(const SimConfig &cfg, unsigned channelId)
    : channelId_(channelId),
      channels_(cfg.dramChannels),
      numBanks_(cfg.dramBanks),
      blocksPerRow_(cfg.dramRowBytes / blockBytes),
      bufEntries_(cfg.memBufEntries),
      demandPriority_(cfg.demandPriority),
      tCl_(toCoreCycles(cfg.dramTCL, cfg.memClockNum, cfg.memClockDen)),
      tRcd_(toCoreCycles(cfg.dramTRCD, cfg.memClockNum, cfg.memClockDen)),
      tRp_(toCoreCycles(cfg.dramTRP, cfg.memClockNum, cfg.memClockDen)),
      burst_(blockBytes / cfg.dramBusBytesPerCycle),
      extraLatency_(cfg.memLatencyExtra),
      banks_(cfg.dramBanks),
      bankPending_(cfg.dramBanks, 0)
{
    MTP_ASSERT(blocksPerRow_ > 0, "row smaller than a block");
    MTP_ASSERT(burst_ > 0, "bus wider than a block");
}

DramCoord
DramChannel::mapAddr(Addr addr) const
{
    // Blocks are channel-interleaved by the memory system; within a
    // channel, consecutive per-channel blocks fill a row, rows are
    // bank-interleaved.
    std::uint64_t per_chan_block = blockIndex(addr) / channels_;
    std::uint64_t global_row = per_chan_block / blocksPerRow_;
    return {static_cast<unsigned>(global_row % numBanks_),
            global_row / numBanks_};
}

bool
DramChannel::insert(MemRequest &&req)
{
    ++stateVersion_;
    if (bufferedByAddr_.count(req.addr)) {
        for (auto &queued : buffer_) {
            if (queued.addr == req.addr &&
                MemRequest::mergeable(queued.type, req.type)) {
                queued.mergeFrom(std::move(req));
                ++counters_.interCoreMerges;
                return true;
            }
        }
    }
    MTP_ASSERT(!bufferFull(), "insert() into a full DRAM request buffer");
    ++bufferedByAddr_[req.addr];
    ++bankPending_[mapAddr(req.addr).bank];
    buffer_.push_back(std::move(req));
    return false;
}

bool
DramChannel::upgradeToDemand(Addr addr)
{
    if (!bufferedByAddr_.count(addr))
        return false;
    for (auto &req : buffer_) {
        if (req.addr == addr && isPrefetch(req.type)) {
            req.type = ReqType::DemandLoad;
            return true;
        }
    }
    return false;
}

Cycle
DramChannel::nextEventAt(Cycle now) const
{
    Cycle e = invalidCycle;
    if (!serviceDoneAts_.empty())
        e = serviceDoneAts_.front();
    for (unsigned b = 0; b < banks_.size(); ++b) {
        if (bankPending_[b] == 0)
            continue;
        Cycle ready = banks_[b].busyUntil;
        if (ready <= now)
            return now;
        if (ready < e)
            e = ready;
    }
#if MTP_SLOW_CHECKS
    Cycle scan = invalidCycle;
    for (const auto &svc : inService_)
        scan = std::min(scan, svc.doneAt);
    for (const auto &req : buffer_)
        scan = std::min(scan,
                        std::max(now,
                                 banks_[mapAddr(req.addr).bank].busyUntil));
    MTP_ASSERT(std::max(e, now) == std::max(scan, now),
               "per-bank event bound disagrees with exhaustive scan");
#endif
    return e;
}

unsigned
DramChannel::busyBanks(Cycle now) const
{
    unsigned n = 0;
    for (const auto &bank : banks_)
        n += bank.busyUntil > now ? 1 : 0;
    return n;
}

int
DramChannel::pickRequest(Cycle now) const
{
    // FR-FCFS with demand priority: walk the buffer oldest-first and
    // remember, per priority class, the first row-hit and the first
    // schedulable request. Demand row-hit > demand > prefetch row-hit >
    // prefetch (Table II: demand has higher priority than prefetch).
    int best_hit[2] = {-1, -1};  // [0]: demand, [1]: prefetch
    int best_any[2] = {-1, -1};
    for (int i = 0; i < static_cast<int>(buffer_.size()); ++i) {
        const MemRequest &req = buffer_[i];
        DramCoord c = mapAddr(req.addr);
        const Bank &bank = banks_[c.bank];
        if (bank.busyUntil > now)
            continue;
        int cls = (demandPriority_ && isPrefetch(req.type)) ? 1 : 0;
        if (best_any[cls] < 0)
            best_any[cls] = i;
        if (best_hit[cls] < 0 && bank.openRow == c.row)
            best_hit[cls] = i;
    }
    for (int cls = 0; cls < 2; ++cls) {
        if (best_hit[cls] >= 0)
            return best_hit[cls];
        if (best_any[cls] >= 0)
            return best_any[cls];
    }
    return -1;
}

void
DramChannel::tick(Cycle now, std::vector<MemRequest> &completed)
{
    // Retire finished data transfers.
    for (std::size_t i = 0; i < inService_.size();) {
        if (inService_[i].doneAt <= now) {
            ++stateVersion_;
            const MemRequest &done = inService_[i].req;
            // Stamped at doneAt, not now: delayed skip-free ticks must
            // not inflate the recorded service time.
            MTP_OBS_HOOK(tracer_,
                         stage(obs::Stage::DramDone, done.addr,
                               static_cast<std::uint8_t>(done.type),
                               done.core, channelId_,
                               inService_[i].doneAt));
            completed.push_back(std::move(inService_[i].req));
            inService_[i] = std::move(inService_.back());
            inService_.pop_back();
        } else {
            ++i;
        }
    }
    while (!serviceDoneAts_.empty() && serviceDoneAts_.front() <= now)
        serviceDoneAts_.pop_front();

    // Schedule at most one request per cycle (command-bus limit).
    int pick = pickRequest(now);
    if (pick < 0)
        return;
    ++stateVersion_;

    MemRequest req = std::move(buffer_[pick]);
    buffer_.erase(buffer_.begin() + pick);
    auto by_addr = bufferedByAddr_.find(req.addr);
    MTP_ASSERT(by_addr != bufferedByAddr_.end(),
               "scheduled request missing from the address index");
    if (--by_addr->second == 0)
        bufferedByAddr_.erase(by_addr);

    DramCoord c = mapAddr(req.addr);
    MTP_ASSERT(bankPending_[c.bank] > 0, "bank pending-count underflow");
    --bankPending_[c.bank];
    Bank &bank = banks_[c.bank];

    MTP_OBS_HOOK(tracer_,
                 stage(obs::Stage::DramSchedule, req.addr,
                       static_cast<std::uint8_t>(req.type), req.core,
                       channelId_, now));

    Cycle act_cost;
    if (bank.openRow == c.row) {
        act_cost = 0;
        ++counters_.rowHits;
    } else if (bank.openRow == noRow) {
        act_cost = tRcd_;
        ++counters_.rowEmpty;
    } else {
        act_cost = tRp_ + tRcd_;
        ++counters_.rowConflicts;
    }

    Cycle cas_done = now + act_cost + tCl_;
    Cycle data_start = std::max(cas_done, busFreeAt_);
    // Sparse (32 B) transactions occupy the data bus for half a burst.
    Cycle burst = std::max<Cycle>(1, burst_ * req.bytes / blockBytes);
    Cycle done = data_start + burst;

    bank.openRow = c.row;
    bank.busyUntil = done;
    busFreeAt_ = done;

    counters_.bytesTransferred += req.bytes;
    if (req.type == ReqType::DemandStore)
        ++counters_.writes;
    else
        ++counters_.reads;
    if (isPrefetch(req.type))
        ++counters_.prefetchServiced;
    else
        ++counters_.demandServiced;

    // The response leaves the controller after the fixed pipeline
    // latency; the bank and bus are free at `done`.
    MTP_ASSERT(serviceDoneAts_.empty() ||
                   serviceDoneAts_.back() < done + extraLatency_,
               "service completion times not monotonic");
    serviceDoneAts_.push_back(done + extraLatency_);
    inService_.push_back({std::move(req), done + extraLatency_});
}

void
DramChannel::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".reads", static_cast<double>(counters_.reads),
            "read bursts serviced");
    set.add(prefix + ".writes", static_cast<double>(counters_.writes),
            "write bursts serviced");
    set.add(prefix + ".rowHits", static_cast<double>(counters_.rowHits),
            "row-buffer hits");
    set.add(prefix + ".rowEmpty", static_cast<double>(counters_.rowEmpty),
            "accesses to closed banks");
    set.add(prefix + ".rowConflicts",
            static_cast<double>(counters_.rowConflicts),
            "row-buffer conflicts");
    set.add(prefix + ".interCoreMerges",
            static_cast<double>(counters_.interCoreMerges),
            "inter-core merges in the request buffer");
    set.add(prefix + ".bytes",
            static_cast<double>(counters_.bytesTransferred),
            "bytes moved over the data bus");
    set.add(prefix + ".demandServiced",
            static_cast<double>(counters_.demandServiced),
            "demand bursts serviced");
    set.add(prefix + ".prefetchServiced",
            static_cast<double>(counters_.prefetchServiced),
            "prefetch bursts serviced");
}

} // namespace mtp
