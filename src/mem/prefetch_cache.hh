/**
 * @file
 * Per-core prefetch cache (Table II: 16 KB, 8-way). Holds prefetched
 * blocks and tracks first use, which defines the two quantities the
 * throttle engine consumes (Sec. V-A):
 *
 *  - useful prefetches: prefetched blocks hit by a demand access before
 *    eviction;
 *  - early evictions: prefetched blocks evicted before their first use.
 */

#ifndef MTP_MEM_PREFETCH_CACHE_HH
#define MTP_MEM_PREFETCH_CACHE_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "mem/cache.hh"

namespace mtp {

/** Prefetch cache with usefulness/early-eviction accounting. */
class PrefetchCache
{
  public:
    /** Cumulative counters; the throttle engine differences snapshots. */
    struct Counters
    {
        std::uint64_t fills = 0;        //!< prefetched blocks inserted
        std::uint64_t demandHits = 0;   //!< demand lookups that hit
        std::uint64_t demandMisses = 0; //!< demand lookups that missed
        std::uint64_t useful = 0;       //!< first-use hits on pref. blocks
        std::uint64_t earlyEvictions = 0; //!< evicted before first use
        std::uint64_t redundantFills = 0; //!< fill of already-present block
    };

    PrefetchCache(unsigned capacityBytes, unsigned assoc);

    /**
     * Demand access lookup. On a hit the block is touched (MRU) and, if
     * this is the block's first use, it is counted useful.
     * @param firstUse set to true when the hit is the block's first use
     *        (for lifecycle tracing); untouched on a miss
     * @return true on hit.
     */
    bool demandAccess(Addr addr, bool *firstUse = nullptr);

    /** @return true iff the block is resident (no state change). */
    bool contains(Addr addr) const { return cache_.contains(addr); }

    /**
     * Fill a returning prefetched block. An evicted not-yet-used
     * prefetched block counts as an early eviction.
     * @param earlyEvicted set to the evicted unused block's address, or
     *        invalidAddr when nothing was evicted early (for tracing)
     */
    void fill(Addr addr, Addr *earlyEvicted = nullptr);

    /** Drop all contents (kernel boundary). */
    void reset();

    const Counters &counters() const { return counters_; }

    /** Export all counters under "<prefix>." into @p set. */
    void exportStats(StatSet &set, const std::string &prefix) const;

  private:
    /** Line flag: block has satisfied at least one demand access. */
    static constexpr std::uint8_t flagUsed = 0x1;

    SetAssocCache cache_;
    Counters counters_;
};

} // namespace mtp

#endif // MTP_MEM_PREFETCH_CACHE_HH
