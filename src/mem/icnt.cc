#include "mem/icnt.hh"

#include "common/log.hh"

namespace mtp {

Icnt::Icnt(unsigned destinations, unsigned latency)
    : latency_(latency), pipes_(destinations)
{
    MTP_ASSERT(destinations > 0, "Icnt needs at least one destination");
}

void
Icnt::send(unsigned dest, MemRequest &&req, Cycle now)
{
    MTP_ASSERT(dest < pipes_.size(), "Icnt destination ", dest,
               " out of range");
    Cycle arrival = now + latency_;
    pipes_[dest].push_back({std::move(req), arrival});
    ++packetsSent_;
    if (!minDirty_ && arrival < minArrival_)
        minArrival_ = arrival;
}

bool
Icnt::frontReady(unsigned dest, Cycle now) const
{
    MTP_ASSERT(dest < pipes_.size(), "Icnt destination ", dest,
               " out of range");
    return !pipes_[dest].empty() && pipes_[dest].front().readyAt <= now;
}

MemRequest
Icnt::pop(unsigned dest)
{
    MTP_ASSERT(dest < pipes_.size() && !pipes_[dest].empty(),
               "pop() on empty Icnt pipe ", dest);
    MemRequest req = std::move(pipes_[dest].front().req);
    if (pipes_[dest].front().readyAt == minArrival_)
        minDirty_ = true; // the cached minimum may leave the network
    pipes_[dest].pop_front();
    return req;
}

MemRequest
Icnt::popSharded(unsigned dest)
{
    MTP_ASSERT(dest < pipes_.size() && !pipes_[dest].empty(),
               "popSharded() on empty Icnt pipe ", dest);
    MemRequest req = std::move(pipes_[dest].front().req);
    pipes_[dest].pop_front();
    return req;
}

bool
Icnt::upgradeToDemand(unsigned dest, Addr addr)
{
    MTP_ASSERT(dest < pipes_.size(), "Icnt destination ", dest,
               " out of range");
    for (auto &timed : pipes_[dest]) {
        if (timed.req.addr == addr && isPrefetch(timed.req.type)) {
            timed.req.type = ReqType::DemandLoad;
            return true;
        }
    }
    return false;
}

std::size_t
Icnt::inFlight(unsigned dest) const
{
    MTP_ASSERT(dest < pipes_.size(), "Icnt destination ", dest,
               " out of range");
    return pipes_[dest].size();
}

std::size_t
Icnt::totalInFlight() const
{
    std::size_t n = 0;
    for (const auto &p : pipes_)
        n += p.size();
    return n;
}

Cycle
Icnt::nextArrivalAt() const
{
    if (minDirty_) {
        minArrival_ = invalidCycle;
        for (const auto &p : pipes_) {
            if (!p.empty() && p.front().readyAt < minArrival_)
                minArrival_ = p.front().readyAt;
        }
        minDirty_ = false;
    }
#if MTP_SLOW_CHECKS
    Cycle scan = invalidCycle;
    for (const auto &p : pipes_) {
        if (!p.empty() && p.front().readyAt < scan)
            scan = p.front().readyAt;
    }
    MTP_ASSERT(scan == minArrival_,
               "cached Icnt arrival minimum out of sync");
#endif
    return minArrival_;
}

void
Icnt::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".packets", static_cast<double>(packetsSent_),
            "packets injected");
}

} // namespace mtp
