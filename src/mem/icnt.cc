#include "mem/icnt.hh"

#include "common/log.hh"

namespace mtp {

Icnt::Icnt(unsigned destinations, unsigned latency)
    : latency_(latency), pipes_(destinations)
{
    MTP_ASSERT(destinations > 0, "Icnt needs at least one destination");
}

void
Icnt::send(unsigned dest, MemRequest &&req, Cycle now)
{
    MTP_ASSERT(dest < pipes_.size(), "Icnt destination ", dest,
               " out of range");
    pipes_[dest].push_back({std::move(req), now + latency_});
    ++packetsSent_;
}

bool
Icnt::frontReady(unsigned dest, Cycle now) const
{
    MTP_ASSERT(dest < pipes_.size(), "Icnt destination ", dest,
               " out of range");
    return !pipes_[dest].empty() && pipes_[dest].front().readyAt <= now;
}

MemRequest
Icnt::pop(unsigned dest)
{
    MTP_ASSERT(dest < pipes_.size() && !pipes_[dest].empty(),
               "pop() on empty Icnt pipe ", dest);
    MemRequest req = std::move(pipes_[dest].front().req);
    pipes_[dest].pop_front();
    return req;
}

bool
Icnt::upgradeToDemand(unsigned dest, Addr addr)
{
    MTP_ASSERT(dest < pipes_.size(), "Icnt destination ", dest,
               " out of range");
    for (auto &timed : pipes_[dest]) {
        if (timed.req.addr == addr && isPrefetch(timed.req.type)) {
            timed.req.type = ReqType::DemandLoad;
            return true;
        }
    }
    return false;
}

std::size_t
Icnt::inFlight(unsigned dest) const
{
    MTP_ASSERT(dest < pipes_.size(), "Icnt destination ", dest,
               " out of range");
    return pipes_[dest].size();
}

std::size_t
Icnt::totalInFlight() const
{
    std::size_t n = 0;
    for (const auto &p : pipes_)
        n += p.size();
    return n;
}

Cycle
Icnt::nextArrivalAt() const
{
    Cycle e = invalidCycle;
    for (const auto &p : pipes_) {
        if (!p.empty() && p.front().readyAt < e)
            e = p.front().readyAt;
    }
    return e;
}

void
Icnt::exportStats(StatSet &set, const std::string &prefix) const
{
    set.add(prefix + ".packets", static_cast<double>(packetsSent_),
            "packets injected");
}

} // namespace mtp
