/**
 * @file
 * Memory transaction type shared by the MRQ, interconnect and DRAM
 * controller. All requests are block-granular; a core's waiting warps
 * are tracked core-side in its MSHR file, so the request itself only
 * carries routing and scheduling state.
 */

#ifndef MTP_MEM_MEM_REQUEST_HH
#define MTP_MEM_MEM_REQUEST_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mtp {

/** Class of a memory transaction. */
enum class ReqType : std::uint8_t
{
    DemandLoad,  //!< read needed by an executing warp
    DemandStore, //!< write; fire-and-forget
    SwPrefetch,  //!< software prefetch instruction
    HwPrefetch,  //!< hardware-prefetcher generated
};

/** @return true for either prefetch class. */
constexpr bool
isPrefetch(ReqType t)
{
    return t == ReqType::SwPrefetch || t == ReqType::HwPrefetch;
}

/** @return true for demand loads/stores. */
constexpr bool
isDemand(ReqType t)
{
    return !isPrefetch(t);
}

/**
 * One in-flight block transaction. Created at a core's MRQ, possibly
 * merged with other cores' same-block transactions at the DRAM
 * controller's request buffer (Fig. 2b), serviced by a DRAM bank and
 * returned to every sharer core, whose MSHR files know what to do
 * with the data.
 */
struct MemRequest
{
    Addr addr = 0;           //!< block-aligned address
    ReqType type = ReqType::DemandLoad; //!< merged type (demand wins)
    CoreId core = 0;         //!< originating core (first requester)
    Cycle created = 0;       //!< cycle the first transaction was issued
    std::uint16_t bytes = blockBytes; //!< transfer size (32 B segment or
                                      //!< full 64 B block)

    /** Cores that must receive the completion (inter-core merge adds). */
    std::vector<CoreId> sharers;

    /** Construct a fresh single-core request. */
    static MemRequest
    make(Addr block_addr, ReqType type, CoreId core, Cycle now,
         std::uint16_t bytes = blockBytes)
    {
        MemRequest r;
        r.addr = block_addr;
        r.type = type;
        r.core = core;
        r.created = now;
        r.bytes = bytes;
        r.sharers.push_back(core);
        return r;
    }

    /**
     * @return true iff requests of types @p a and @p b may merge: reads
     * (loads and prefetches) merge among themselves; stores only merge
     * with stores.
     */
    static constexpr bool
    mergeable(ReqType a, ReqType b)
    {
        return (a == ReqType::DemandStore) == (b == ReqType::DemandStore);
    }

    /**
     * Merge @p other (same block, mergeable type) into this request.
     * Demand requests dominate the merged type so DRAM priority is
     * preserved.
     */
    void
    mergeFrom(MemRequest &&other)
    {
        if (other.type == ReqType::DemandLoad)
            type = ReqType::DemandLoad;
        bytes = bytes > other.bytes ? bytes : other.bytes;
        for (auto s : other.sharers) {
            if (std::find(sharers.begin(), sharers.end(), s) ==
                sharers.end())
                sharers.push_back(s);
        }
        created = std::min(created, other.created);
    }
};

} // namespace mtp

#endif // MTP_MEM_MEM_REQUEST_HH
