/**
 * @file
 * Kernel descriptors and the per-warp dynamic instruction cursor.
 *
 * A KernelDesc is a compact program: an ordered list of segments, each a
 * list of StaticInsts replayed `trips` times. Every warp of the launch
 * executes the same program (no divergence modeling; the paper's
 * uncoal-type irregularity is expressed through address scattering).
 * This is the trace *generator* that substitutes for the paper's
 * GPUOcelot trace files.
 */

#ifndef MTP_TRACE_KERNEL_HH
#define MTP_TRACE_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/instruction.hh"

namespace mtp {

/** A straight-line run of instructions executed @p trips times. */
struct Segment
{
    std::vector<StaticInst> insts;
    std::uint32_t trips = 1;

    /** @return true iff this segment loops (more than one trip). */
    bool isLoop() const { return trips > 1; }
};

/** A complete kernel launch description. */
class KernelDesc
{
  public:
    std::string name;            //!< benchmark/kernel name
    unsigned warpsPerBlock = 1;  //!< warps per thread block
    std::uint64_t numBlocks = 1; //!< thread blocks in the grid
    unsigned maxBlocksPerCore = 1; //!< occupancy limit (Table III)
    std::vector<Segment> segments; //!< program body

    /**
     * Assign unique PCs to every static instruction and validate the
     * program (slot ranges, loop structure). Must be called once after
     * construction and before simulation; re-finalizing after a
     * transform is allowed and reassigns PCs.
     */
    void finalize();

    /** @return true once finalize() has run. */
    bool finalized() const { return finalized_; }

    /** Dynamic warp-instructions one warp executes (incl. repeats). */
    std::uint64_t warpInstsPerWarp() const;

    /** Dynamic demand memory instructions (Load/Store) per warp. */
    std::uint64_t memInstsPerWarp() const;

    /** Dynamic software-prefetch instructions per warp. */
    std::uint64_t prefInstsPerWarp() const;

    /** Total warps in the launch. */
    std::uint64_t totalWarps() const { return numBlocks * warpsPerBlock; }

    /** Total threads in the launch. */
    std::uint64_t totalThreads() const { return totalWarps() * warpSize; }

    /**
     * The compute-to-memory warp-instruction ratio used by the MTAML
     * analytic model (Eq. 1): #comp_inst / #mem_inst.
     */
    double compToMemRatio() const;

  private:
    bool finalized_ = false;
};

/**
 * Lazily walks one warp's dynamic instruction stream
 * (segment -> trip -> instruction -> repetition).
 */
class WarpCursor
{
  public:
    WarpCursor() = default;

    /** Bind to a finalized kernel and position at the first instruction. */
    explicit WarpCursor(const KernelDesc *kernel);

    /** @return true when the warp has retired its last instruction. */
    bool done() const { return done_; }

    /** Current static instruction; cursor must not be done. */
    const StaticInst &inst() const;

    /** Loop iteration (trip index) of the current instruction. */
    std::uint64_t iter() const { return trip_; }

    /** Move to the next dynamic instruction. */
    void advance();

  private:
    /** Skip empty segments / position on a valid instruction. */
    void normalize();

    const KernelDesc *kernel_ = nullptr;
    std::uint32_t seg_ = 0;
    std::uint32_t trip_ = 0;
    std::uint32_t idx_ = 0;
    std::uint16_t rep_ = 0;
    bool done_ = true;
};

} // namespace mtp

#endif // MTP_TRACE_KERNEL_HH
