/**
 * @file
 * Memory-access coalescing: collapses a warp's 32 lane addresses into
 * the minimal set of cache-block transactions (Sec. II-B). Coalesced
 * patterns yield 1-2 transactions per warp access; uncoalesced patterns
 * yield up to 32. Sparse transactions (few lanes touching a block) are
 * issued as 32-byte segments, matching the 8800GT-class minimum memory
 * transaction size; dense transactions fetch the full 64-byte block.
 */

#ifndef MTP_TRACE_COALESCER_HH
#define MTP_TRACE_COALESCER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/address_pattern.hh"

namespace mtp {

/** One block-aligned memory transaction of a warp access. */
struct MemTxn
{
    Addr addr;           //!< block-aligned address
    std::uint16_t bytes; //!< transfer size: 32 (sparse) or 64 (dense)
};

/** Smallest memory transaction the memory system issues. */
inline constexpr unsigned minTxnBytes = 32;

/**
 * Compute the block-aligned transactions of one warp-level memory access.
 *
 * @param pattern address generator of the memory instruction
 * @param lane0Tid global thread id of the warp's lane 0
 * @param iter loop iteration the instruction executes in
 * @param out receives unique transactions in first-touch order;
 *            cleared first
 */
void coalesceWarpAccess(const AddressPattern &pattern,
                        std::uint64_t lane0Tid, std::uint64_t iter,
                        std::vector<MemTxn> &out);

/** @return number of transactions without materializing them. */
unsigned countWarpTransactions(const AddressPattern &pattern,
                               std::uint64_t lane0Tid, std::uint64_t iter);

} // namespace mtp

#endif // MTP_TRACE_COALESCER_HH
