#include "trace/kernel.hh"

#include "common/log.hh"

namespace mtp {

void
KernelDesc::finalize()
{
    MTP_ASSERT(!segments.empty(), "kernel '", name, "' has no segments");
    if (warpsPerBlock == 0 || numBlocks == 0)
        MTP_FATAL("kernel '", name, "' has an empty launch grid");
    if (maxBlocksPerCore == 0)
        MTP_FATAL("kernel '", name, "' allows zero blocks per core");

    Pc next_pc = 4; // leave 0 free as a sentinel
    for (auto &seg : segments) {
        if (seg.trips == 0)
            MTP_FATAL("kernel '", name, "' has a zero-trip segment");
        for (auto &inst : seg.insts) {
            if (inst.repeat == 0)
                MTP_FATAL("kernel '", name, "' has a zero-repeat inst");
            if (inst.destSlot >= static_cast<int>(numValueSlots))
                MTP_FATAL("kernel '", name, "' writes slot out of range");
            for (auto s : inst.srcSlots) {
                if (s >= static_cast<int>(numValueSlots))
                    MTP_FATAL("kernel '", name,
                              "' reads slot out of range");
            }
            if (inst.regPrefetch && inst.op != Opcode::Load)
                MTP_FATAL("kernel '", name,
                          "' marks a non-load as regPrefetch");
            if (isMemOp(inst.op) && inst.pattern.elemBytes == 0)
                MTP_FATAL("kernel '", name, "' memory op with elemBytes=0");
            inst.pc = next_pc;
            next_pc += 4;
        }
    }
    finalized_ = true;
}

std::uint64_t
KernelDesc::warpInstsPerWarp() const
{
    std::uint64_t n = 0;
    for (const auto &seg : segments) {
        std::uint64_t per_trip = 0;
        for (const auto &inst : seg.insts)
            per_trip += inst.repeat;
        n += per_trip * seg.trips;
    }
    return n;
}

std::uint64_t
KernelDesc::memInstsPerWarp() const
{
    std::uint64_t n = 0;
    for (const auto &seg : segments) {
        std::uint64_t per_trip = 0;
        for (const auto &inst : seg.insts) {
            if (inst.op == Opcode::Load || inst.op == Opcode::Store)
                per_trip += inst.repeat;
        }
        n += per_trip * seg.trips;
    }
    return n;
}

std::uint64_t
KernelDesc::prefInstsPerWarp() const
{
    std::uint64_t n = 0;
    for (const auto &seg : segments) {
        std::uint64_t per_trip = 0;
        for (const auto &inst : seg.insts) {
            if (inst.op == Opcode::Prefetch)
                per_trip += inst.repeat;
        }
        n += per_trip * seg.trips;
    }
    return n;
}

double
KernelDesc::compToMemRatio() const
{
    std::uint64_t mem = memInstsPerWarp();
    std::uint64_t comp = warpInstsPerWarp() - mem - prefInstsPerWarp();
    if (mem == 0)
        return static_cast<double>(comp);
    return static_cast<double>(comp) / static_cast<double>(mem);
}

WarpCursor::WarpCursor(const KernelDesc *kernel)
    : kernel_(kernel), done_(false)
{
    MTP_ASSERT(kernel_ && kernel_->finalized(),
               "WarpCursor needs a finalized kernel");
    normalize();
}

const StaticInst &
WarpCursor::inst() const
{
    MTP_ASSERT(!done_, "inst() on a finished WarpCursor");
    return kernel_->segments[seg_].insts[idx_];
}

void
WarpCursor::advance()
{
    MTP_ASSERT(!done_, "advance() on a finished WarpCursor");
    const auto &seg = kernel_->segments[seg_];
    if (++rep_ < seg.insts[idx_].repeat)
        return;
    rep_ = 0;
    if (++idx_ < seg.insts.size())
        return;
    idx_ = 0;
    if (++trip_ < seg.trips)
        return;
    trip_ = 0;
    ++seg_;
    normalize();
}

void
WarpCursor::normalize()
{
    while (seg_ < kernel_->segments.size() &&
           kernel_->segments[seg_].insts.empty())
        ++seg_;
    if (seg_ >= kernel_->segments.size())
        done_ = true;
}

} // namespace mtp
