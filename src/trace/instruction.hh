/**
 * @file
 * Static (kernel) instruction model. A synthetic kernel is a short
 * program of these; warps replay it lazily, which stands in for the
 * paper's GPUOcelot-generated PTX traces.
 */

#ifndef MTP_TRACE_INSTRUCTION_HH
#define MTP_TRACE_INSTRUCTION_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "trace/address_pattern.hh"

namespace mtp {

/** Warp-instruction operation classes relevant to timing. */
enum class Opcode : std::uint8_t
{
    Comp,     //!< generic ALU/FPU op: 4 cycles/warp occupancy
    Imul,     //!< integer multiply: 16 cycles/warp
    Fdiv,     //!< floating divide: 32 cycles/warp
    Load,     //!< global-memory demand load
    Store,    //!< global-memory store
    Prefetch, //!< non-blocking software prefetch into the prefetch cache
    Branch,   //!< control transfer: 5-cycle decode stall
};

/** @return true for opcodes that access global memory. */
constexpr bool
isMemOp(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store ||
           op == Opcode::Prefetch;
}

/** Number of architectural "value slots" a warp tracks for dependences. */
inline constexpr unsigned numValueSlots = 16;

/**
 * One static instruction of a synthetic kernel.
 *
 * Dependences are expressed through value slots: a Load writes destSlot
 * when its last memory transaction completes; any instruction naming a
 * slot in srcSlots cannot issue while that slot has an outstanding
 * writer (in-order issue otherwise proceeds past pending loads, matching
 * the baseline core of Sec. II-B).
 */
struct StaticInst
{
    Opcode op = Opcode::Comp;

    /** Address generator; meaningful only for memory opcodes. */
    AddressPattern pattern;

    /** Value slot written by a Load (-1: none). */
    std::int8_t destSlot = -1;

    /** Value slots read before issue (-1: unused). */
    std::array<std::int8_t, 2> srcSlots = {-1, -1};

    /**
     * Binding register prefetch (Ryoo et al.): consumers of destSlot may
     * issue while the *current* instance is still in flight, i.e. they
     * consume the value loaded one loop iteration earlier (software
     * pipelining). Only meaningful on Load.
     */
    bool regPrefetch = false;

    /**
     * Repeat count: the instruction issues this many times back-to-back
     * per loop iteration. Lets kernels express "N compute instructions"
     * compactly; each repetition counts as one warp instruction.
     */
    std::uint16_t repeat = 1;

    /**
     * Software-prefetch transforms may target this load. Workloads
     * clear it for loads a programmer could not profitably prefetch.
     */
    bool swPrefetchable = true;

    /** Unique static PC, assigned by KernelDesc::finalize(). */
    Pc pc = 0;

    // ---- convenience constructors -----------------------------------

    /** @return @p n generic compute instructions. */
    static StaticInst
    comp(unsigned n = 1)
    {
        StaticInst i;
        i.op = Opcode::Comp;
        i.repeat = static_cast<std::uint16_t>(n);
        return i;
    }

    /** @return @p n compute instructions consuming slots a (and b). */
    static StaticInst
    compUse(int a, int b = -1, unsigned n = 1)
    {
        StaticInst i = comp(n);
        i.srcSlots = {static_cast<std::int8_t>(a),
                      static_cast<std::int8_t>(b)};
        return i;
    }

    /** @return an integer-multiply instruction (optionally using slots). */
    static StaticInst
    imul(int a = -1, int b = -1)
    {
        StaticInst i;
        i.op = Opcode::Imul;
        i.srcSlots = {static_cast<std::int8_t>(a),
                      static_cast<std::int8_t>(b)};
        return i;
    }

    /** @return an FP-divide instruction (optionally using slots). */
    static StaticInst
    fdiv(int a = -1, int b = -1)
    {
        StaticInst i;
        i.op = Opcode::Fdiv;
        i.srcSlots = {static_cast<std::int8_t>(a),
                      static_cast<std::int8_t>(b)};
        return i;
    }

    /** @return a load writing @p dest with addresses from @p pat. */
    static StaticInst
    load(const AddressPattern &pat, int dest)
    {
        StaticInst i;
        i.op = Opcode::Load;
        i.pattern = pat;
        i.destSlot = static_cast<std::int8_t>(dest);
        return i;
    }

    /** @return a store of slot @p src with addresses from @p pat. */
    static StaticInst
    store(const AddressPattern &pat, int src = -1)
    {
        StaticInst i;
        i.op = Opcode::Store;
        i.pattern = pat;
        i.srcSlots = {static_cast<std::int8_t>(src), -1};
        return i;
    }

    /** @return a software prefetch of @p pat (non-binding, no slot). */
    static StaticInst
    prefetch(const AddressPattern &pat)
    {
        StaticInst i;
        i.op = Opcode::Prefetch;
        i.pattern = pat;
        return i;
    }

    /** @return a branch (loop back-edge / divergence point). */
    static StaticInst
    branch()
    {
        StaticInst i;
        i.op = Opcode::Branch;
        return i;
    }
};

} // namespace mtp

#endif // MTP_TRACE_INSTRUCTION_HH
