/**
 * @file
 * Textual serialization of kernel descriptors. Lets users define
 * workloads in a small line-oriented format (and the simulator dump
 * its synthetic kernels) without recompiling — the moral equivalent of
 * feeding the paper's simulator a new trace file.
 *
 * Format (one directive per line; '#' starts a comment):
 *
 *   kernel  <name>
 *   grid    <warpsPerBlock> <numBlocks> <maxBlocksPerCore>
 *   segment <trips>
 *     comp   <repeat> [src_a src_b]
 *     imul   [src_a src_b]
 *     fdiv   [src_a src_b]
 *     branch
 *     load   <dest> <base> <threadStride> <iterStride> <elemBytes>
 *            [scatterFrac scatterSpan scatterSalt] [noswp] [regpref]
 *            [src=<slot>]
 *     store  <src> <base> <threadStride> <iterStride> <elemBytes>
 *     pref   <base> <threadStride> <iterStride> <elemBytes>
 *   end
 *
 * `segment`/`end` pairs repeat; addresses accept 0x-prefixed hex.
 */

#ifndef MTP_TRACE_KERNEL_IO_HH
#define MTP_TRACE_KERNEL_IO_HH

#include <iosfwd>
#include <string>

#include "trace/kernel.hh"

namespace mtp {

/** Serialize @p kernel to @p os in the format above. */
void writeKernel(std::ostream &os, const KernelDesc &kernel);

/**
 * Parse a kernel description from @p is.
 * @param source name used in error messages (e.g. the file path)
 * @return the finalized kernel; fatal error on malformed input.
 */
KernelDesc readKernel(std::istream &is,
                      const std::string &source = "<stream>");

/** Convenience: read a kernel from a file path. */
KernelDesc readKernelFile(const std::string &path);

} // namespace mtp

#endif // MTP_TRACE_KERNEL_IO_HH
