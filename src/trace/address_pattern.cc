#include "trace/address_pattern.hh"

#include "common/bitutils.hh"

namespace mtp {

Addr
AddressPattern::laneAddr(std::uint64_t tid, std::uint64_t iter) const
{
    if (scatterFrac > 0.0 && scatterSpan >= blockBytes) {
        // Deterministic per-(thread, iteration) scatter decision. The
        // hash is uniform in [0, 2^64); compare against the fraction.
        std::uint64_t h = mix64(tid * 0x100000001b3ULL + iter +
                                scatterSalt * 0x9e3779b97f4a7c15ULL);
        // frac >= 1 would overflow the double->u64 cast; clamp first.
        std::uint64_t threshold =
            scatterFrac >= 1.0
                ? ~0ULL
                : static_cast<std::uint64_t>(
                      scatterFrac * 18446744073709551616.0);
        if (h <= threshold) {
            std::uint64_t off = mix64(h) % (scatterSpan / elemBytes);
            return base + off * elemBytes;
        }
    }
    return regularAddr(tid, iter);
}

AddressPattern
AddressPattern::shiftedByWarps(int warps) const
{
    AddressPattern p = *this;
    p.base += static_cast<Addr>(static_cast<Stride>(warps) *
                                static_cast<Stride>(warpSize) *
                                threadStride);
    return p;
}

AddressPattern
AddressPattern::shiftedByIters(int iters) const
{
    AddressPattern p = *this;
    p.base += static_cast<Addr>(static_cast<Stride>(iters) * iterStride);
    return p;
}

} // namespace mtp
