#include "trace/kernel_io.hh"

#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace mtp {

namespace {

/** Write one address pattern as its five-or-eight field tail. */
void
writePattern(std::ostream &os, const AddressPattern &p)
{
    os << " 0x" << std::hex << p.base << std::dec << ' '
       << p.threadStride << ' ' << p.iterStride << ' ' << p.elemBytes;
    if (p.scatterFrac > 0.0)
        os << ' ' << p.scatterFrac << ' ' << p.scatterSpan << ' '
           << p.scatterSalt;
}

/** Parse an unsigned (decimal or 0x hex) token. */
std::uint64_t
parseNum(const std::string &tok, const std::string &ctx)
{
    try {
        std::size_t pos = 0;
        std::uint64_t v = std::stoull(tok, &pos, 0);
        if (pos != tok.size())
            throw std::invalid_argument(tok);
        return v;
    } catch (const std::exception &) {
        MTP_FATAL(ctx, ": bad number '", tok, "'");
    }
}

std::int64_t
parseSigned(const std::string &tok, const std::string &ctx)
{
    try {
        std::size_t pos = 0;
        std::int64_t v = std::stoll(tok, &pos, 0);
        if (pos != tok.size())
            throw std::invalid_argument(tok);
        return v;
    } catch (const std::exception &) {
        MTP_FATAL(ctx, ": bad number '", tok, "'");
    }
}

double
parseDouble(const std::string &tok, const std::string &ctx)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(tok, &pos);
        if (pos != tok.size())
            throw std::invalid_argument(tok);
        return v;
    } catch (const std::exception &) {
        MTP_FATAL(ctx, ": bad number '", tok, "'");
    }
}

/**
 * Parse the pattern fields starting at @p idx of @p toks; advances idx
 * past the consumed fields.
 */
AddressPattern
parsePattern(const std::vector<std::string> &toks, std::size_t &idx,
             const std::string &ctx)
{
    if (idx + 4 > toks.size())
        MTP_FATAL(ctx, ": truncated address pattern");
    AddressPattern p;
    p.base = parseNum(toks[idx++], ctx);
    p.threadStride = parseSigned(toks[idx++], ctx);
    p.iterStride = parseSigned(toks[idx++], ctx);
    p.elemBytes = static_cast<unsigned>(parseNum(toks[idx++], ctx));
    // Optional scatter triple: detect by a leading numeric token that
    // parses as a fraction.
    if (idx + 3 <= toks.size() && !toks[idx].empty() &&
        (std::isdigit(toks[idx][0]) || toks[idx][0] == '.')) {
        p.scatterFrac = parseDouble(toks[idx++], ctx);
        p.scatterSpan = parseNum(toks[idx++], ctx);
        p.scatterSalt = parseNum(toks[idx++], ctx);
    }
    return p;
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::istringstream ss(line);
    std::string tok;
    while (ss >> tok) {
        if (tok[0] == '#')
            break;
        toks.push_back(tok);
    }
    return toks;
}

} // namespace

void
writeKernel(std::ostream &os, const KernelDesc &kernel)
{
    os << "# mtprefetch kernel description\n";
    os << "kernel " << kernel.name << '\n';
    os << "grid " << kernel.warpsPerBlock << ' ' << kernel.numBlocks
       << ' ' << kernel.maxBlocksPerCore << '\n';
    for (const auto &seg : kernel.segments) {
        os << "segment " << seg.trips << '\n';
        for (const auto &inst : seg.insts) {
            switch (inst.op) {
              case Opcode::Comp:
                os << "  comp " << inst.repeat;
                if (inst.srcSlots[0] >= 0)
                    os << ' ' << int(inst.srcSlots[0]) << ' '
                       << int(inst.srcSlots[1]);
                break;
              case Opcode::Imul:
                os << "  imul";
                if (inst.srcSlots[0] >= 0)
                    os << ' ' << int(inst.srcSlots[0]) << ' '
                       << int(inst.srcSlots[1]);
                break;
              case Opcode::Fdiv:
                os << "  fdiv";
                if (inst.srcSlots[0] >= 0)
                    os << ' ' << int(inst.srcSlots[0]) << ' '
                       << int(inst.srcSlots[1]);
                break;
              case Opcode::Branch:
                os << "  branch";
                break;
              case Opcode::Load:
                os << "  load " << int(inst.destSlot);
                writePattern(os, inst.pattern);
                if (!inst.swPrefetchable)
                    os << " noswp";
                if (inst.regPrefetch)
                    os << " regpref";
                if (inst.srcSlots[0] >= 0)
                    os << " src=" << int(inst.srcSlots[0]);
                break;
              case Opcode::Store:
                os << "  store " << int(inst.srcSlots[0]);
                writePattern(os, inst.pattern);
                break;
              case Opcode::Prefetch:
                os << "  pref";
                writePattern(os, inst.pattern);
                break;
            }
            os << '\n';
        }
        os << "end\n";
    }
}

KernelDesc
readKernel(std::istream &is, const std::string &source)
{
    KernelDesc k;
    Segment *seg = nullptr;
    std::string line;
    unsigned lineno = 0;
    bool saw_grid = false;

    while (std::getline(is, line)) {
        ++lineno;
        std::string ctx = source + ":" + std::to_string(lineno);
        auto toks = tokenize(line);
        if (toks.empty())
            continue;
        const std::string &cmd = toks[0];

        if (cmd == "kernel") {
            if (toks.size() != 2)
                MTP_FATAL(ctx, ": 'kernel' needs a name");
            k.name = toks[1];
        } else if (cmd == "grid") {
            if (toks.size() != 4)
                MTP_FATAL(ctx, ": 'grid' needs 3 fields");
            k.warpsPerBlock =
                static_cast<unsigned>(parseNum(toks[1], ctx));
            k.numBlocks = parseNum(toks[2], ctx);
            k.maxBlocksPerCore =
                static_cast<unsigned>(parseNum(toks[3], ctx));
            saw_grid = true;
        } else if (cmd == "segment") {
            if (toks.size() != 2)
                MTP_FATAL(ctx, ": 'segment' needs a trip count");
            k.segments.emplace_back();
            seg = &k.segments.back();
            seg->trips =
                static_cast<std::uint32_t>(parseNum(toks[1], ctx));
        } else if (cmd == "end") {
            seg = nullptr;
        } else {
            if (!seg)
                MTP_FATAL(ctx, ": instruction outside a segment");
            StaticInst inst;
            std::size_t idx = 1;
            if (cmd == "comp") {
                inst = StaticInst::comp(static_cast<unsigned>(
                    parseNum(toks.at(1), ctx)));
                idx = 2;
                if (idx + 2 <= toks.size()) {
                    inst.srcSlots = {
                        static_cast<std::int8_t>(
                            parseSigned(toks[idx], ctx)),
                        static_cast<std::int8_t>(
                            parseSigned(toks[idx + 1], ctx))};
                }
            } else if (cmd == "imul" || cmd == "fdiv") {
                inst = cmd == "imul" ? StaticInst::imul()
                                     : StaticInst::fdiv();
                if (toks.size() >= 3) {
                    inst.srcSlots = {
                        static_cast<std::int8_t>(parseSigned(toks[1],
                                                             ctx)),
                        static_cast<std::int8_t>(parseSigned(toks[2],
                                                             ctx))};
                }
            } else if (cmd == "branch") {
                inst = StaticInst::branch();
            } else if (cmd == "load") {
                int dest = static_cast<int>(
                    parseSigned(toks.at(1), ctx));
                idx = 2;
                AddressPattern p = parsePattern(toks, idx, ctx);
                inst = StaticInst::load(p, dest);
                for (; idx < toks.size(); ++idx) {
                    if (toks[idx] == "noswp")
                        inst.swPrefetchable = false;
                    else if (toks[idx] == "regpref")
                        inst.regPrefetch = true;
                    else if (toks[idx].rfind("src=", 0) == 0)
                        inst.srcSlots[0] = static_cast<std::int8_t>(
                            parseSigned(toks[idx].substr(4), ctx));
                    else
                        MTP_FATAL(ctx, ": unknown load flag '",
                                  toks[idx], "'");
                }
            } else if (cmd == "store") {
                int src =
                    static_cast<int>(parseSigned(toks.at(1), ctx));
                idx = 2;
                AddressPattern p = parsePattern(toks, idx, ctx);
                inst = StaticInst::store(p, src);
            } else if (cmd == "pref") {
                idx = 1;
                AddressPattern p = parsePattern(toks, idx, ctx);
                inst = StaticInst::prefetch(p);
            } else {
                MTP_FATAL(ctx, ": unknown directive '", cmd, "'");
            }
            seg->insts.push_back(inst);
        }
    }
    if (k.name.empty())
        MTP_FATAL(source, ": missing 'kernel <name>'");
    if (!saw_grid)
        MTP_FATAL(source, ": missing 'grid' line");
    k.finalize();
    return k;
}

KernelDesc
readKernelFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        MTP_FATAL("cannot open kernel file '", path, "'");
    return readKernel(in, path);
}

} // namespace mtp
