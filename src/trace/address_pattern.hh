/**
 * @file
 * Per-lane address generation for synthetic kernel memory instructions.
 *
 * An AddressPattern is a closed-form function from (global thread id,
 * loop iteration) to a byte address. The parameterization covers the
 * paper's three benchmark classes:
 *
 *  - coalesced (stride-type / mp-type): threadStride == element size, so
 *    one warp touches a few contiguous cache blocks;
 *  - uncoalesced (uncoal-type): threadStride >= one cache block, so every
 *    lane of a warp touches a distinct block;
 *  - data-dependent (bfs-like): a deterministic pseudo-random fraction of
 *    lanes scatters into a window, destroying some of the regularity.
 */

#ifndef MTP_TRACE_ADDRESS_PATTERN_HH
#define MTP_TRACE_ADDRESS_PATTERN_HH

#include <cstdint>

#include "common/types.hh"

namespace mtp {

/** Closed-form per-lane address generator. */
struct AddressPattern
{
    /** Base byte address of the accessed array. */
    Addr base = 0;
    /** Bytes between addresses of consecutive global thread ids. */
    Stride threadStride = 4;
    /** Bytes a thread's address advances per loop iteration. */
    Stride iterStride = 0;
    /** Access size per lane in bytes (<= blockBytes). */
    unsigned elemBytes = 4;
    /**
     * Fraction of (thread, iteration) pairs whose address is replaced by
     * a deterministic pseudo-random location within scatterSpan bytes of
     * base. 0 disables scattering.
     */
    double scatterFrac = 0.0;
    /** Size of the scatter window in bytes (must be > 0 if scattering). */
    Addr scatterSpan = 0;
    /** Salt mixed into the scatter hash so distinct loads decorrelate. */
    std::uint64_t scatterSalt = 0;

    /**
     * Address accessed by global thread @p tid on iteration @p iter.
     * Deterministic: same arguments always yield the same address.
     */
    Addr laneAddr(std::uint64_t tid, std::uint64_t iter) const;

    /**
     * The regular (non-scattered) address, i.e. the affine part. Used by
     * software-prefetch transforms, which target the regular stream.
     */
    Addr
    regularAddr(std::uint64_t tid, std::uint64_t iter) const
    {
        return base + static_cast<Addr>(static_cast<Stride>(tid) *
                                        threadStride) +
               static_cast<Addr>(static_cast<Stride>(iter) * iterStride);
    }

    /**
     * @return a copy shifted by @p warps warps in the thread dimension
     * (used by inter-thread prefetch transforms: thread tid prefetches
     * for thread tid + 32*warps).
     */
    AddressPattern shiftedByWarps(int warps) const;

    /**
     * @return a copy shifted by @p iters loop iterations (used by stride
     * software-prefetch transforms).
     */
    AddressPattern shiftedByIters(int iters) const;
};

} // namespace mtp

#endif // MTP_TRACE_ADDRESS_PATTERN_HH
