#include "trace/coalescer.hh"

#include <algorithm>

namespace mtp {

namespace {

/** Accumulate @p bytes touched within the block at @p addr. */
void
touch(std::vector<MemTxn> &out, Addr addr, unsigned bytes)
{
    for (auto &txn : out) {
        if (txn.addr == addr) {
            txn.bytes = static_cast<std::uint16_t>(
                std::min<unsigned>(blockBytes, txn.bytes + bytes));
            return;
        }
    }
    out.push_back({addr, static_cast<std::uint16_t>(bytes)});
}

} // namespace

void
coalesceWarpAccess(const AddressPattern &pattern, std::uint64_t lane0Tid,
                   std::uint64_t iter, std::vector<MemTxn> &out)
{
    out.clear();
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        Addr a = pattern.laneAddr(lane0Tid + lane, iter);
        Addr first = blockAlign(a);
        Addr last = blockAlign(a + pattern.elemBytes - 1);
        if (first == last) {
            touch(out, first, pattern.elemBytes);
        } else {
            // An element straddling a block boundary touches both.
            unsigned head = static_cast<unsigned>(first + blockBytes - a);
            touch(out, first, head);
            touch(out, last, pattern.elemBytes - head);
        }
    }
    // Sparse transactions move the minimum 32-byte segment; dense ones
    // the full block.
    for (auto &txn : out)
        txn.bytes = txn.bytes <= minTxnBytes
                        ? static_cast<std::uint16_t>(minTxnBytes)
                        : static_cast<std::uint16_t>(blockBytes);
}

unsigned
countWarpTransactions(const AddressPattern &pattern, std::uint64_t lane0Tid,
                      std::uint64_t iter)
{
    std::vector<MemTxn> tmp;
    tmp.reserve(warpSize);
    coalesceWarpAccess(pattern, lane0Tid, iter, tmp);
    return static_cast<unsigned>(tmp.size());
}

} // namespace mtp
