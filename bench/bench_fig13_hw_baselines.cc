/**
 * @file
 * Figure 13: previously proposed hardware prefetchers — Stride RPT,
 * StridePC, Stream and GHB — with (a) their original indexing and
 * (b) warp-id-enhanced training. The paper's conclusion: without
 * warp-id training the tables see the scrambled pattern of Fig. 5 and
 * the prefetchers are unstable.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    const HwPrefKind kinds[] = {HwPrefKind::StrideRPT,
                                HwPrefKind::StridePC,
                                HwPrefKind::Stream, HwPrefKind::GHB};
    const char *kindNames[] = {"stride", "stridePC", "stream", "ghb"};

    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (bool warp_training : {false, true}) {
            for (HwPrefKind kind : kinds) {
                SimConfig cfg = baseConfig(opts);
                cfg.hwPref = kind;
                cfg.hwPrefWarpTraining = warp_training;
                runner.submit(cfg, w.kernel);
            }
        }
    }

    FigureResult out;
    for (bool warp_training : {false, true}) {
        Table t;
        t.name = warp_training ? "13b-warp-id-indexing"
                               : "13a-original-indexing";
        t.columns = {"bench", "type", "stride", "stridePC", "stream",
                     "ghb"};
        std::vector<double> g[4];
        for (const auto &name : names) {
            Workload w = Suite::get(name, opts.scaleDiv);
            const RunResult &base = runner.baseline(w);
            std::vector<Cell> row = {
                Cell::str(name), Cell::str(toString(w.info.type))};
            for (unsigned i = 0; i < 4; ++i) {
                SimConfig cfg = baseConfig(opts);
                cfg.hwPref = kinds[i];
                cfg.hwPrefWarpTraining = warp_training;
                const RunResult &r = runner.run(cfg, w.kernel);
                double spd =
                    static_cast<double>(base.cycles) / r.cycles;
                g[i].push_back(spd);
                row.push_back(Cell::number(spd));
            }
            t.addRow(std::move(row));
        }
        std::vector<Cell> gm = {Cell::str("geomean"), Cell::str("")};
        for (unsigned i = 0; i < 4; ++i) {
            gm.push_back(Cell::number(geomean(g[i])));
            out.metric(std::string("geomean.") +
                           (warp_training ? "warpid." : "orig.") +
                           kindNames[i],
                       geomean(g[i]));
        }
        t.addRow(std::move(gm));
        out.tables.push_back(std::move(t));
    }
    out.notes.push_back("paper: StridePC (enhanced) stands out with "
                        "wins on black / mersenne / monte / pns and a "
                        "loss on stream; GHB helps scalar and linear "
                        "but has low coverage");
    return out;
}

} // namespace

CampaignSpec
specFig13HwBaselines()
{
    return {"fig13_hw_baselines", "Baseline hardware prefetchers",
            "Fig. 13a/13b", &run};
}

} // namespace bench
} // namespace mtp
