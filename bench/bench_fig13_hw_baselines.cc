/**
 * @file
 * Figure 13: previously proposed hardware prefetchers — Stride RPT,
 * StridePC, Stream and GHB — with (a) their original indexing and
 * (b) warp-id-enhanced training. The paper's conclusion: without
 * warp-id training the tables see the scrambled pattern of Fig. 5 and
 * the prefetchers are unstable.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Baseline hardware prefetchers",
                  "Fig. 13a (original indexing) / 13b (warp-id "
                  "enhanced)",
                  opts);
    bench::Runner runner(opts);

    const HwPrefKind kinds[] = {HwPrefKind::StrideRPT,
                                HwPrefKind::StridePC, HwPrefKind::Stream,
                                HwPrefKind::GHB};

    // Submit the whole matrix up front so the runs overlap.
    auto all_names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());
    for (const auto &name : all_names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (bool warp_training : {false, true}) {
            for (HwPrefKind kind : kinds) {
                SimConfig cfg = bench::baseConfig(opts);
                cfg.hwPref = kind;
                cfg.hwPrefWarpTraining = warp_training;
                runner.submit(cfg, w.kernel);
            }
        }
    }

    for (bool warp_training : {false, true}) {
        std::printf("\n-- %s --\n",
                    warp_training ? "Fig. 13b: warp-id indexing"
                                  : "Fig. 13a: original indexing");
        std::printf("%-9s %-7s | %8s %9s %8s %8s\n", "bench", "type",
                    "stride", "stridePC", "stream", "ghb");
        std::vector<double> g[4];
        auto names = bench::selectBenchmarks(
            opts, Suite::memoryIntensiveNames());
        for (const auto &name : names) {
            Workload w = Suite::get(name, opts.scaleDiv);
            const RunResult &base = runner.baseline(w);
            double spd[4];
            for (unsigned i = 0; i < 4; ++i) {
                SimConfig cfg = bench::baseConfig(opts);
                cfg.hwPref = kinds[i];
                cfg.hwPrefWarpTraining = warp_training;
                const RunResult &r = runner.run(cfg, w.kernel);
                spd[i] = static_cast<double>(base.cycles) / r.cycles;
                g[i].push_back(spd[i]);
            }
            std::printf("%-9s %-7s | %8.2f %9.2f %8.2f %8.2f\n",
                        name.c_str(), toString(w.info.type).c_str(),
                        spd[0], spd[1], spd[2], spd[3]);
        }
        std::printf("%-17s | %8.2f %9.2f %8.2f %8.2f\n", "geomean",
                    bench::geomean(g[0]), bench::geomean(g[1]),
                    bench::geomean(g[2]), bench::geomean(g[3]));
    }
    std::printf("\n# paper: StridePC (enhanced) stands out with wins on\n"
                "# black / mersenne / monte / pns and a loss on stream;\n"
                "# GHB helps scalar and linear but has low coverage.\n");
    return 0;
}
