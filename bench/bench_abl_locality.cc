/**
 * @file
 * Ablation: the scheduling/dispatch locality that inter-thread
 * prefetching depends on (DESIGN.md). Compares MT-HWP speedups under
 *
 *   - contiguous block dispatch + greedy warp scheduling (baseline),
 *   - round-robin block dispatch (consecutive blocks scatter across
 *     cores, so IP prefetches land in the wrong prefetch cache), and
 *   - pure round-robin warp scheduling.
 *
 * This makes the paper's own caveat measurable: an IP prefetch is
 * wasted "when the target warp's block is assigned to a different
 * core" (Sec. III-A2).
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    // IP-sensitive benchmarks: the mp/uncoal classes.
    std::vector<std::string> fallback = {"backprop", "cell", "ocean",
                                         "bfs",      "cfd",  "linear",
                                         "sepia"};
    auto names = selectBenchmarks(opts, fallback);

    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        for (unsigned i = 0; i < 3; ++i) {
            SimConfig base_cfg = baseConfig(opts);
            base_cfg.dispatchContiguous = i != 1;
            base_cfg.schedGreedy = i != 2;
            runner.submit(base_cfg, w.kernel);
            SimConfig cfg = base_cfg;
            cfg.hwPref = HwPrefKind::MTHWP;
            runner.submit(cfg, w.kernel);
        }
    }

    FigureResult out;
    Table t;
    t.name = "locality";
    t.columns = {"bench", "contig", "rr-blocks", "rr-warps"};
    std::vector<double> g[3];
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        std::vector<Cell> row = {Cell::str(name)};
        for (unsigned i = 0; i < 3; ++i) {
            SimConfig base_cfg = baseConfig(opts);
            base_cfg.dispatchContiguous = i != 1;
            base_cfg.schedGreedy = i != 2;
            const RunResult &base = runner.run(base_cfg, w.kernel);
            SimConfig cfg = base_cfg;
            cfg.hwPref = HwPrefKind::MTHWP;
            const RunResult &r = runner.run(cfg, w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            g[i].push_back(spd);
            row.push_back(Cell::number(spd));
        }
        t.addRow(std::move(row));
    }
    t.addRow({Cell::str("geomean"), Cell::number(geomean(g[0])),
              Cell::number(geomean(g[1])),
              Cell::number(geomean(g[2]))});
    out.tables.push_back(std::move(t));
    out.metric("geomean.contig", geomean(g[0]));
    out.metric("geomean.rr-blocks", geomean(g[1]));
    out.metric("geomean.rr-warps", geomean(g[2]));
    out.notes.push_back("expectation: IP's benefit shrinks under "
                        "round-robin block dispatch (the target warp's "
                        "block usually runs on another core)");
    return out;
}

} // namespace

CampaignSpec
specAblLocality()
{
    return {"abl_locality",
            "Block-dispatch / warp-scheduling locality ablation",
            "Sec. III-A2", &run};
}

} // namespace bench
} // namespace mtp
