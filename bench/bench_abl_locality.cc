/**
 * @file
 * Ablation: the scheduling/dispatch locality that inter-thread
 * prefetching depends on (DESIGN.md). Compares MT-HWP speedups under
 *
 *   - contiguous block dispatch + greedy warp scheduling (baseline),
 *   - round-robin block dispatch (consecutive blocks scatter across
 *     cores, so IP prefetches land in the wrong prefetch cache), and
 *   - pure round-robin warp scheduling.
 *
 * This makes the paper's own caveat measurable: an IP prefetch is
 * wasted "when the target warp's block is assigned to a different
 * core" (Sec. III-A2).
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Block-dispatch / warp-scheduling locality ablation",
                  "Sec. III-A2's cross-core-IP caveat", opts);
    bench::Runner runner(opts);
    // IP-sensitive benchmarks: the mp/uncoal classes.
    std::vector<std::string> fallback = {"backprop", "cell",  "ocean",
                                         "bfs",      "cfd",   "linear",
                                         "sepia"};
    auto names = bench::selectBenchmarks(opts, fallback);

    std::printf("\n%-9s | %10s %10s %10s\n", "bench", "contig",
                "rr-blocks", "rr-warps");
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        for (unsigned i = 0; i < 3; ++i) {
            SimConfig base_cfg = bench::baseConfig(opts);
            base_cfg.dispatchContiguous = i != 1;
            base_cfg.schedGreedy = i != 2;
            runner.submit(base_cfg, w.kernel);
            SimConfig cfg = base_cfg;
            cfg.hwPref = HwPrefKind::MTHWP;
            runner.submit(cfg, w.kernel);
        }
    }
    std::vector<double> g[3];
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        double spd[3];
        for (unsigned i = 0; i < 3; ++i) {
            SimConfig base_cfg = bench::baseConfig(opts);
            base_cfg.dispatchContiguous = i != 1;
            base_cfg.schedGreedy = i != 2;
            const RunResult &base = runner.run(base_cfg, w.kernel);
            SimConfig cfg = base_cfg;
            cfg.hwPref = HwPrefKind::MTHWP;
            const RunResult &r = runner.run(cfg, w.kernel);
            spd[i] = static_cast<double>(base.cycles) / r.cycles;
            g[i].push_back(spd[i]);
        }
        std::printf("%-9s | %10.2f %10.2f %10.2f\n", name.c_str(),
                    spd[0], spd[1], spd[2]);
    }
    std::printf("%-9s | %10.2f %10.2f %10.2f\n", "geomean",
                bench::geomean(g[0]), bench::geomean(g[1]),
                bench::geomean(g[2]));
    std::printf("\n# expectation: IP's benefit shrinks under round-robin\n"
                "# block dispatch (the target warp's block usually runs\n"
                "# on another core).\n");
    return 0;
}
