#include "bench/campaign_diff.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace mtp {
namespace bench {
namespace {

/** True when the figure object carries "volatile": true. */
bool
isVolatile(const obs::JsonValue &fig)
{
    const obs::JsonValue *v = fig.find("volatile");
    return v && v->kind == obs::JsonValue::Kind::Bool && v->boolean;
}

std::string
figureName(const obs::JsonValue &fig)
{
    const obs::JsonValue *n = fig.find("name");
    return n && n->isString() ? n->str : std::string("<unnamed>");
}

void
addStructure(std::vector<DiffViolation> &out, std::string path,
             std::string detail)
{
    DiffViolation v;
    v.kind = DiffViolation::Kind::Structure;
    v.path = std::move(path);
    v.detail = std::move(detail);
    out.push_back(std::move(v));
}

void
addText(std::vector<DiffViolation> &out, std::string path,
        const std::string &golden, const std::string &current)
{
    DiffViolation v;
    v.kind = DiffViolation::Kind::Text;
    v.path = std::move(path);
    v.detail = "golden \"" + golden + "\" vs current \"" + current + "\"";
    out.push_back(std::move(v));
}

/**
 * Numeric comparison under the tolerance schema: pass when the
 * absolute delta is within @p tol.abs OR the relative error is within
 * the path's relative tolerance.
 */
void
checkNumber(std::vector<DiffViolation> &out, const Tolerances &tol,
            const std::string &path, double golden, double current)
{
    double absDelta = std::fabs(current - golden);
    double denom = std::fabs(golden);
    if (denom < 1e-300)
        denom = 1e-300;
    double relPct = absDelta / denom * 100.0;
    double tolRel = tol.relPctFor(path);
    if (absDelta <= tol.abs || relPct <= tolRel)
        return;
    DiffViolation v;
    v.kind = DiffViolation::Kind::Number;
    v.path = path;
    v.golden = golden;
    v.current = current;
    v.absDelta = absDelta;
    v.relPct = relPct;
    v.tolRelPct = tolRel;
    v.tolAbs = tol.abs;
    out.push_back(std::move(v));
}

/**
 * Compare two leaf values that the manifest writer may produce for a
 * cell or metric: number, string, or null (a non-finite number is
 * serialized as null).
 */
void
checkValue(std::vector<DiffViolation> &out, const Tolerances &tol,
           const std::string &path, const obs::JsonValue &golden,
           const obs::JsonValue &current)
{
    using Kind = obs::JsonValue::Kind;
    if (golden.kind == Kind::Null && current.kind == Kind::Null)
        return;
    if (golden.kind != current.kind) {
        addStructure(out, path, "value kind differs (number vs text "
                                "vs null)");
        return;
    }
    if (golden.isNumber())
        checkNumber(out, tol, path, golden.number, current.number);
    else if (golden.isString() && golden.str != current.str)
        addText(out, path, golden.str, current.str);
}

void
diffTable(std::vector<DiffViolation> &out, const Tolerances &tol,
          const std::string &figPath, const obs::JsonValue &golden,
          const obs::JsonValue &current)
{
    const obs::JsonValue *gname = golden.find("name");
    std::string path =
        figPath + "/" + (gname && gname->isString() ? gname->str : "?");

    const obs::JsonValue *gcols = golden.find("columns");
    const obs::JsonValue *ccols = current.find("columns");
    if (!gcols || !ccols || !gcols->isArray() || !ccols->isArray()) {
        addStructure(out, path, "missing columns array");
        return;
    }
    if (gcols->array.size() != ccols->array.size()) {
        addStructure(out, path,
                     "column count differs (golden " +
                         std::to_string(gcols->array.size()) +
                         " vs current " +
                         std::to_string(ccols->array.size()) + ")");
        return;
    }
    std::vector<std::string> columns;
    for (std::size_t i = 0; i < gcols->array.size(); ++i) {
        const std::string &g = gcols->array[i].str;
        if (g != ccols->array[i].str) {
            addStructure(out, path,
                         "column '" + g + "' vs '" +
                             ccols->array[i].str + "'");
            return;
        }
        columns.push_back(g);
    }
    if (columns.empty()) {
        addStructure(out, path, "table has no columns");
        return;
    }

    const obs::JsonValue *grows = golden.find("rows");
    const obs::JsonValue *crows = current.find("rows");
    if (!grows || !crows || !grows->isArray() || !crows->isArray()) {
        addStructure(out, path, "missing rows array");
        return;
    }

    // Rows are objects keyed by column name; identity = the label in
    // the first column. Sweep tables label rows with a number (warp
    // count, core count), so numeric labels format as keys too.
    auto label = [&](const obs::JsonValue &row) -> std::string {
        const obs::JsonValue *l = row.find(columns[0]);
        if (l && l->isString())
            return l->str;
        if (l && l->isNumber()) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6g", l->number);
            return buf;
        }
        return "<no-label>";
    };
    std::map<std::string, const obs::JsonValue *> curRows;
    for (const auto &row : crows->array)
        curRows[label(row)] = &row;

    for (const auto &grow : grows->array) {
        std::string rl = label(grow);
        auto it = curRows.find(rl);
        if (it == curRows.end()) {
            addStructure(out, path + "/" + rl,
                         "row missing from current manifest");
            continue;
        }
        for (std::size_t c = 1; c < columns.size(); ++c) {
            const obs::JsonValue *gv = grow.find(columns[c]);
            const obs::JsonValue *cv = it->second->find(columns[c]);
            std::string cell = path + "/" + rl + "/" + columns[c];
            if (!gv || !cv) {
                addStructure(out, cell, "cell missing");
                continue;
            }
            checkValue(out, tol, cell, *gv, *cv);
        }
        curRows.erase(it);
    }
    for (const auto &kv : curRows)
        addStructure(out, path + "/" + kv.first,
                     "row not present in golden manifest");
}

void
diffFigure(std::vector<DiffViolation> &out, const Tolerances &tol,
           const obs::JsonValue &golden, const obs::JsonValue &current)
{
    std::string fig = figureName(golden);

    const obs::JsonValue *gruns = golden.find("runs");
    const obs::JsonValue *cruns = current.find("runs");
    if (gruns && cruns && gruns->isNumber() && cruns->isNumber() &&
        gruns->number != cruns->number)
        addStructure(out, fig + "/runs",
                     "distinct run count differs (golden " +
                         std::to_string((long long)gruns->number) +
                         " vs current " +
                         std::to_string((long long)cruns->number) + ")");

    const obs::JsonValue *gfp = golden.find("fingerprints");
    const obs::JsonValue *cfp = current.find("fingerprints");
    if (gfp && cfp && gfp->isArray() && cfp->isArray()) {
        std::size_t n = gfp->array.size() < cfp->array.size()
                            ? gfp->array.size()
                            : cfp->array.size();
        for (std::size_t i = 0; i < n; ++i)
            if (gfp->array[i].str != cfp->array[i].str) {
                addStructure(out,
                             fig + "/fingerprints[" +
                                 std::to_string(i) + "]",
                             "run fingerprint drifted: golden '" +
                                 gfp->array[i].str + "' vs current '" +
                                 cfp->array[i].str + "'");
                break; // one drifted config usually shifts the rest
            }
    }

    const obs::JsonValue *gtabs = golden.find("tables");
    const obs::JsonValue *ctabs = current.find("tables");
    if (gtabs && ctabs && gtabs->isArray() && ctabs->isArray()) {
        std::map<std::string, const obs::JsonValue *> cur;
        for (const auto &t : ctabs->array) {
            const obs::JsonValue *n = t.find("name");
            if (n && n->isString())
                cur[n->str] = &t;
        }
        for (const auto &t : gtabs->array) {
            const obs::JsonValue *n = t.find("name");
            std::string tn =
                n && n->isString() ? n->str : std::string("?");
            auto it = cur.find(tn);
            if (it == cur.end()) {
                addStructure(out, fig + "/" + tn,
                             "table missing from current manifest");
                continue;
            }
            diffTable(out, tol, fig, t, *it->second);
            cur.erase(it);
        }
        for (const auto &kv : cur)
            addStructure(out, fig + "/" + kv.first,
                         "table not present in golden manifest");
    }

    const obs::JsonValue *gsum = golden.find("summary");
    const obs::JsonValue *csum = current.find("summary");
    if (gsum && csum && gsum->isObject() && csum->isObject()) {
        for (const auto &kv : gsum->object) {
            std::string path = fig + "/summary/" + kv.first;
            auto it = csum->object.find(kv.first);
            if (it == csum->object.end()) {
                addStructure(out, path,
                             "metric missing from current manifest");
                continue;
            }
            checkValue(out, tol, path, kv.second, it->second);
        }
        for (const auto &kv : csum->object)
            if (!gsum->object.count(kv.first))
                addStructure(out, fig + "/summary/" + kv.first,
                             "metric not present in golden manifest");
    }
}

} // namespace

double
Tolerances::relPctFor(const std::string &path) const
{
    for (const auto &rule : rules)
        if (globMatch(rule.pattern, path))
            return rule.relPct;
    return relPct;
}

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative '*'-only glob with backtracking to the last star.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::string
DiffViolation::describe() const
{
    if (kind == Kind::Structure)
        return path + ": " + detail;
    if (kind == Kind::Text)
        return path + ": " + detail;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ": golden %.6g vs current %.6g (delta %.3g abs, "
                  "%.3f%% rel; tolerance %.3f%% rel / %.3g abs)",
                  golden, current, absDelta, relPct, tolRelPct,
                  tolAbs);
    return path + buf;
}

bool
diffManifests(const obs::JsonValue &golden,
              const obs::JsonValue &current, const Tolerances &tol,
              std::vector<DiffViolation> &out)
{
    std::size_t before = out.size();

    const obs::JsonValue *gschema = golden.find("schema");
    const obs::JsonValue *cschema = current.find("schema");
    if (!gschema || !gschema->isString() || !cschema ||
        !cschema->isString())
        addStructure(out, "schema", "missing schema tag");
    else if (gschema->str != cschema->str)
        addText(out, "schema", gschema->str, cschema->str);

    const obs::JsonValue *gfigs = golden.find("figures");
    const obs::JsonValue *cfigs = current.find("figures");
    if (!gfigs || !gfigs->isArray() || !cfigs || !cfigs->isArray()) {
        addStructure(out, "figures", "missing figures array");
        return out.size() == before;
    }

    std::map<std::string, const obs::JsonValue *> cur;
    for (const auto &f : cfigs->array)
        if (!isVolatile(f))
            cur[figureName(f)] = &f;

    for (const auto &f : gfigs->array) {
        if (isVolatile(f))
            continue; // wall-clock figures are not gateable
        std::string name = figureName(f);
        auto it = cur.find(name);
        if (it == cur.end()) {
            addStructure(out, name,
                         "figure missing from current manifest");
            continue;
        }
        diffFigure(out, tol, f, *it->second);
        cur.erase(it);
    }
    for (const auto &kv : cur)
        addStructure(out, kv.first,
                     "figure not present in golden manifest");

    return out.size() == before;
}

bool
loadManifest(const std::string &path, obs::JsonValue &out,
             std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    std::string perr;
    if (!obs::parseJson(text, out, &perr)) {
        if (error)
            *error = "'" + path + "': " + perr;
        return false;
    }
    return true;
}

} // namespace bench
} // namespace mtp
