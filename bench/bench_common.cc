#include "bench/bench_common.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "driver/fingerprint.hh"

namespace mtp {
namespace bench {

Options
parseArgs(int argc, char **argv, const std::vector<FlagSpec> &extra,
          const std::string &extraUsage)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Harness-specific flags match first so a harness can shadow
        // a common flag with its own shape.
        const FlagSpec *matched = nullptr;
        for (const auto &spec : extra) {
            if (arg == spec.name) {
                matched = &spec;
                break;
            }
        }
        if (matched) {
            std::string value;
            if (matched->takesValue) {
                if (i + 1 >= argc)
                    MTP_FATAL("flag '", arg, "' expects a value");
                value = argv[++i];
            }
            matched->handler(value);
            continue;
        }
        if (arg == "--scale" && i + 1 < argc) {
            opts.scaleDiv = static_cast<unsigned>(
                std::stoul(argv[++i]));
            if (opts.scaleDiv == 0)
                MTP_FATAL("--scale must be >= 1");
            // Keep the throttle period proportional to run length.
            opts.throttlePeriod =
                std::max<Cycle>(1000, 40000 / opts.scaleDiv);
        } else if (arg == "--bench" && i + 1 < argc) {
            std::stringstream ss(argv[++i]);
            std::string name;
            while (std::getline(ss, name, ','))
                opts.benchmarks.push_back(name);
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = static_cast<unsigned>(std::stoul(argv[++i]));
            if (opts.jobs == 0)
                MTP_FATAL("--jobs must be >= 1");
        } else if (arg == "--shards" && i + 1 < argc) {
            opts.shards = static_cast<unsigned>(std::stoul(argv[++i]));
            if (opts.shards == 0)
                MTP_FATAL("--shards must be >= 1");
        } else if (arg == "--sample-period" && i + 1 < argc) {
            opts.samplePeriod = static_cast<Cycle>(
                std::stoull(argv[++i]));
        } else if (arg == "--trace-out" && i + 1 < argc) {
            opts.traceOut = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            opts.jsonOut = argv[++i];
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--scale N] [--bench a,b,...] "
                        "[--jobs N] [--shards N] [--sample-period N] "
                        "[--trace-out file.json] [--json file.json] "
                        "[--quiet]%s%s [key=value ...]\n",
                        argv[0], extraUsage.empty() ? "" : " ",
                        extraUsage.c_str());
            std::exit(0);
        } else if (arg.find('=') != std::string::npos &&
                   arg.rfind("--", 0) != 0) {
            opts.overrides.push_back(arg);
        } else {
            MTP_FATAL("unknown argument '", arg,
                      "' (see --help for the accepted flags)");
        }
    }
    return opts;
}

obs::ObsConfig
obsConfig(const Options &opts, const std::string &runTag)
{
    obs::ObsConfig ocfg;
    ocfg.samplePeriod = opts.samplePeriod;
    if (!opts.traceOut.empty())
        ocfg.chromePath = obs::perRunPath(opts.traceOut, runTag);
    return ocfg;
}

unsigned
effectiveJobs(const Options &opts)
{
    return driver::ParallelExecutor::budgetedThreads(opts.jobs,
                                                     opts.shards);
}

SimConfig
baseConfig(const Options &opts)
{
    SimConfig cfg;
    cfg.throttlePeriod = opts.throttlePeriod;
    cfg.shards = opts.shards;
    cfg.applyOverrides(opts.overrides);
    return cfg;
}

std::vector<std::string>
selectBenchmarks(const Options &opts,
                 const std::vector<std::string> &fallback)
{
    if (opts.benchmarks.empty())
        return fallback;
    for (const auto &n : opts.benchmarks) {
        if (!Suite::has(n))
            MTP_FATAL("unknown benchmark '", n, "'");
    }
    return opts.benchmarks;
}

const std::vector<std::string> &
sweepSubset()
{
    static const std::vector<std::string> subset = {
        "monte", "scalar", "stream", // stride-type
        "backprop",                  // mp-type
        "cfd", "sepia",              // uncoal-type
    };
    return subset;
}

void
Runner::recordFingerprint(const SimConfig &cfg, const KernelDesc &kernel)
{
    // Normalize the shard count: sharding is bit-identical by
    // construction, and manifests must not change across --shards.
    SimConfig normalized = cfg;
    normalized.shards = 1;
    driver::Fingerprint fp = driver::fingerprint(normalized, kernel);
    driver::Fnv1a cfgHash;
    cfgHash.add(fp.config);
    char tag[64];
    std::snprintf(tag, sizeof(tag), ":%016llx:%016llx",
                  static_cast<unsigned long long>(cfgHash.value()),
                  static_cast<unsigned long long>(fp.kernelHash));
    std::string key = fp.kernelName + tag;
    if (fpSeen_.insert(key).second)
        fps_.push_back(std::move(key));
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
banner(const std::string &title, const std::string &reference,
       const Options &opts)
{
    std::printf("# %s\n", title.c_str());
    std::printf("# reproduces: %s\n", reference.c_str());
    std::printf("# grid scale: 1/%u of the paper's geometry; "
                "throttle period %llu cycles\n",
                opts.scaleDiv,
                static_cast<unsigned long long>(opts.throttlePeriod));
}

} // namespace bench
} // namespace mtp
