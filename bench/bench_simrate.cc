/**
 * @file
 * Simulation-rate benchmark for the event-driven fast-forward loop.
 *
 * Runs each selected workload twice — with the naive cycle-by-cycle
 * oracle loop (fastForward = false) and with event-driven cycle
 * skipping (the default) — verifies the results are bit-identical
 * (RunResult fields and the full statistics dump), and reports
 * wall-clock time, simulated kilocycles per second and the speedup.
 * Results go to stdout and to a JSON file (--out, default
 * BENCH_simrate.json).
 *
 * The workload set is a latency-bound microkernel built to expose the
 * best case (two dependent-load warps per core, so the machine idles
 * for most of every memory round trip), one benchmark from each
 * workload class, and two event-dense full-machine kernels (a
 * bfs-style irregular pointer walk and a high-MLP streaming kernel)
 * that stress the event-queue schedule where the legacy polling loop
 * historically regressed. Exits nonzero on any fast/naive mismatch.
 *
 * A second section sweeps intra-run sharding (SimConfig::shards) over
 * the paper's Fig. 18 machine width (28 cores): the high-MLP streaming
 * benchmark is timed at every shard count of the --shards axis
 * (default 1,2,4), each run's statistics dump is checked byte-identical
 * against the serial shards=1 reference, and the self-relative speedup
 * lands in BENCH_simrate.json under "shardScaling".
 *
 * --gate additionally enforces the performance contract of the
 * event-queue scheduler: every per-workload speedup >= 1.0x and the
 * geomean >= 3.0x — measured at shards=1, so the sharded
 * infrastructure gates against any serial-path regression — plus a
 * 1.8x self-relative floor on the shards=4 scaling point whenever the
 * host has at least four hardware threads (skipped, loudly, on
 * smaller hosts where the speedup cannot physically materialize).
 * Workloads falling short are re-measured best-of-N so a CI
 * scheduling hiccup in one timing cannot fail the gate; a genuine
 * regression still does. The attempt count is tunable via the
 * MTP_BENCH_RETRIES environment variable and every re-measurement
 * draws from one monotonic-clock budget, so retries can never walk
 * the job past its CTest timeout.
 *
 * Usage: bench_simrate [--scale N] [--bench a,b] [--shards a,b,...]
 *                      [--out FILE] [--smoke] [--gate]
 *
 * The CLI is the shared harness parser (bench_common.hh) with three
 * extra flags; --shards is shadowed to mean the sweep axis rather
 * than one shard count, and --json is an alias for --out so the
 * campaign driver can address every harness uniformly.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/campaign.hh"

namespace {

using namespace mtp;

/**
 * A memory-latency-bound microkernel: one resident block of two warps
 * per core, each iterating a dependent load -> use -> branch chain
 * with a row-crossing stride. Almost every cycle of the naive loop is
 * spent waiting on DRAM round trips.
 */
KernelDesc
latencyMicroKernel(unsigned numCores, unsigned trips)
{
    KernelDesc k;
    k.name = "latency_micro";
    k.warpsPerBlock = 2;
    k.numBlocks = 2ULL * numCores;
    k.maxBlocksPerCore = 1;

    Segment loop;
    loop.trips = trips;
    AddressPattern p;
    p.base = 0x1000'0000ULL;
    p.threadStride = 4;
    p.iterStride = 1 << 20; // a fresh row every trip: no locality
    loop.insts.push_back(StaticInst::load(p, 0));
    loop.insts.push_back(StaticInst::compUse(0, -1, 2));
    loop.insts.push_back(StaticInst::branch());
    k.segments.push_back(loop);
    k.finalize();
    return k;
}

/**
 * A bfs-style irregular kernel at full machine width: every trip is a
 * dependent chain of two scattered loads, so warps stall on
 * unpredictable DRAM round trips and completions arrive at irregular
 * cycles across all cores — the event-dense regime where the legacy
 * polling loop paid the full O(cores) bound computation every cycle
 * for nothing.
 */
KernelDesc
scatterWalkKernel(unsigned numCores, unsigned trips)
{
    KernelDesc k;
    k.name = "scatter_walk";
    k.warpsPerBlock = 4;
    k.numBlocks = 4ULL * numCores;
    k.maxBlocksPerCore = 2;

    Segment loop;
    loop.trips = trips;
    AddressPattern frontier;
    frontier.base = 0x2000'0000ULL;
    frontier.threadStride = 64; // one block per lane: fully uncoalesced
    frontier.iterStride = 4096;
    frontier.scatterFrac = 0.75;
    frontier.scatterSpan = 1ULL << 26;
    frontier.scatterSalt = 1;
    AddressPattern neighbor = frontier;
    neighbor.base = 0x6000'0000ULL;
    neighbor.scatterSalt = 2;
    loop.insts.push_back(StaticInst::load(frontier, 0));
    loop.insts.push_back(StaticInst::compUse(0, -1, 1));
    loop.insts.push_back(StaticInst::load(neighbor, 1));
    loop.insts.push_back(StaticInst::compUse(1, -1, 1));
    loop.insts.push_back(StaticInst::branch());
    k.segments.push_back(loop);
    k.finalize();
    return k;
}

/**
 * A high-MLP streaming kernel at full machine width: four independent
 * coalesced loads per trip issue back-to-back before the first use, so
 * every core keeps several DRAM round trips in flight and the memory
 * system stays saturated — dense events on the memory side while cores
 * spend most cycles parked waiting.
 */
KernelDesc
mlpStreamKernel(unsigned numCores, unsigned trips)
{
    KernelDesc k;
    k.name = "mlp_stream";
    k.warpsPerBlock = 4;
    k.numBlocks = 4ULL * numCores;
    k.maxBlocksPerCore = 2;

    Segment loop;
    loop.trips = trips;
    for (int slot = 0; slot < 4; ++slot) {
        AddressPattern p;
        p.base = 0x1000'0000ULL + (static_cast<Addr>(slot) << 26);
        p.threadStride = 4;
        p.iterStride = 512;
        loop.insts.push_back(StaticInst::load(p, slot));
    }
    loop.insts.push_back(StaticInst::compUse(0, 1, 1));
    loop.insts.push_back(StaticInst::compUse(2, 3, 1));
    loop.insts.push_back(StaticInst::branch());
    k.segments.push_back(loop);
    k.finalize();
    return k;
}

struct Measurement
{
    std::string name;
    Cycle cycles = 0;
    std::uint64_t warpInsts = 0;
    double naiveSeconds = 0.0;
    double fastSeconds = 0.0;
    double speedup = 0.0;
    bool identical = false;
};

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

std::string
statDump(const RunResult &r)
{
    std::ostringstream os;
    r.stats.dumpText(os);
    return os.str();
}

bool
identicalResults(const RunResult &fast, const RunResult &naive)
{
    return fast.cycles == naive.cycles &&
           fast.warpInsts == naive.warpInsts &&
           fast.dramBytes == naive.dramBytes &&
           fast.demandTxns == naive.demandTxns &&
           fast.prefFills == naive.prefFills &&
           statDump(fast) == statDump(naive);
}

Measurement
measure(const std::string &name, const SimConfig &base,
        const KernelDesc &kernel)
{
    SimConfig naiveCfg = base;
    naiveCfg.fastForward = false;
    SimConfig fastCfg = base;
    fastCfg.fastForward = true;

    auto t0 = std::chrono::steady_clock::now();
    RunResult naive = simulate(naiveCfg, kernel);
    auto t1 = std::chrono::steady_clock::now();
    RunResult fast = simulate(fastCfg, kernel);
    auto t2 = std::chrono::steady_clock::now();

    Measurement m;
    m.name = name;
    m.cycles = naive.cycles;
    m.warpInsts = naive.warpInsts;
    m.naiveSeconds = seconds(t0, t1);
    m.fastSeconds = seconds(t1, t2);
    m.speedup = m.fastSeconds > 0.0 ? m.naiveSeconds / m.fastSeconds : 0.0;
    m.identical = identicalResults(fast, naive);
    return m;
}

double
kcyclesPerSec(Cycle cycles, double secs)
{
    return secs > 0.0 ? static_cast<double>(cycles) / secs / 1000.0 : 0.0;
}

/** One point of the intra-run sharding sweep. */
struct ScalePoint
{
    unsigned shards = 1;
    Cycle cycles = 0;
    double seconds = 0.0;
    double speedup = 0.0; //!< self-relative: shards=1 time / this time
    bool identical = false; //!< stats byte-identical to shards=1
};

/** Time one fast-forward run; @p r receives the result. */
double
timeFast(const SimConfig &cfg, const KernelDesc &kernel, RunResult &r)
{
    auto t0 = std::chrono::steady_clock::now();
    r = simulate(cfg, kernel);
    auto t1 = std::chrono::steady_clock::now();
    return seconds(t0, t1);
}

/**
 * Best-of-N attempt count for --gate re-measurements: 4 unless the
 * MTP_BENCH_RETRIES environment variable overrides it.
 */
unsigned
gateAttemptBudget()
{
    const char *env = std::getenv("MTP_BENCH_RETRIES");
    if (!env || !*env)
        return 4;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v == 0)
        MTP_FATAL("MTP_BENCH_RETRIES must be a positive integer, got '",
                  env, "'");
    return static_cast<unsigned>(v);
}

void
writeJson(const std::string &path, const bench::Options &opts,
          const std::vector<Measurement> &rows, double geomeanSpeedup,
          const std::string &scaleName, unsigned scaleCores,
          const std::vector<ScalePoint> &scaling)
{
    unsigned scaleDiv = opts.scaleDiv;
    std::string header;
    bench::appendProvenance(header, bench::collectProvenance(opts), 1);
    std::ofstream os(path);
    os << "{\n  \"bench\": \"simrate\",\n  \"volatile\": true,\n"
       << header << ",\n  \"scaleDiv\": " << scaleDiv
       << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Measurement &m = rows[i];
        os << "    {\"name\": \"" << m.name << "\", \"cycles\": "
           << m.cycles << ", \"warpInsts\": " << m.warpInsts
           << ", \"naiveSeconds\": " << m.naiveSeconds
           << ", \"fastSeconds\": " << m.fastSeconds
           << ", \"naiveKcyclesPerSec\": "
           << kcyclesPerSec(m.cycles, m.naiveSeconds)
           << ", \"fastKcyclesPerSec\": "
           << kcyclesPerSec(m.cycles, m.fastSeconds)
           << ", \"speedup\": " << m.speedup << ", \"identical\": "
           << (m.identical ? "true" : "false") << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"geomeanSpeedup\": " << geomeanSpeedup;
    if (!scaling.empty()) {
        os << ",\n  \"shardScaling\": {\n    \"workload\": \""
           << scaleName << "\",\n    \"numCores\": " << scaleCores
           << ",\n    \"hostThreads\": "
           << std::max(1u, std::thread::hardware_concurrency())
           << ",\n    \"points\": [\n";
        for (std::size_t i = 0; i < scaling.size(); ++i) {
            const ScalePoint &p = scaling[i];
            os << "      {\"shards\": " << p.shards << ", \"seconds\": "
               << p.seconds << ", \"kcyclesPerSec\": "
               << kcyclesPerSec(p.cycles, p.seconds) << ", \"speedup\": "
               << p.speedup << ", \"identical\": "
               << (p.identical ? "true" : "false") << "}"
               << (i + 1 < scaling.size() ? "," : "") << "\n";
        }
        os << "    ]\n  }";
    }
    os << "\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool gate = false;
    std::string out = "BENCH_simrate.json";
    std::vector<unsigned> shardAxis = {1, 2, 4};
    std::vector<bench::FlagSpec> extra = {
        {"--out", true, [&](const std::string &v) { out = v; }},
        {"--smoke", false, [&](const std::string &) { smoke = true; }},
        {"--gate", false, [&](const std::string &) { gate = true; }},
        // Shadows the common --shards: here it is the sweep axis.
        {"--shards", true,
         [&](const std::string &v) {
             shardAxis.clear();
             std::stringstream ss(v);
             std::string item;
             while (std::getline(ss, item, ','))
                 shardAxis.push_back(
                     static_cast<unsigned>(std::stoul(item)));
             for (unsigned s : shardAxis)
                 if (s == 0)
                     MTP_FATAL("--shards values must be >= 1");
         }},
    };
    bench::Options opts = bench::parseArgs(
        argc, argv, extra,
        "[--out FILE] [--smoke] [--gate] (--shards = sweep list)");
    if (smoke)
        opts.scaleDiv = 64;
    if (!opts.jsonOut.empty())
        out = opts.jsonOut; // --json is an alias for --out
    unsigned scaleDiv = opts.scaleDiv;
    const std::vector<std::string> &filter = opts.benchmarks;
    const bool quiet = opts.quiet;
    // The sweep is self-relative: shards=1 is the reference point.
    std::sort(shardAxis.begin(), shardAxis.end());
    shardAxis.erase(std::unique(shardAxis.begin(), shardAxis.end()),
                    shardAxis.end());
    if (shardAxis.empty() || shardAxis.front() != 1)
        shardAxis.insert(shardAxis.begin(), 1);

    SimConfig cfg; // Table II baseline, no prefetching
    cfg.throttlePeriod = 100000 / scaleDiv;
    opts.throttlePeriod = cfg.throttlePeriod; // provenance fidelity

    // The microkernel runs on a two-core machine: severe latency-bound
    // low occupancy, the regime event-driven skipping targets. The
    // suite benchmarks keep the Table II machine.
    SimConfig microCfg = cfg;
    microCfg.numCores = 2;

    // The microkernel, one benchmark per workload class, and the two
    // event-dense full-machine kernels.
    std::vector<std::pair<std::string, KernelDesc>> workloads;
    workloads.emplace_back(
        "latency_micro",
        latencyMicroKernel(microCfg.numCores, smoke ? 256 : 4096));
    if (!smoke) {
        for (WorkloadType type :
             {WorkloadType::Stride, WorkloadType::Mp, WorkloadType::Uncoal,
              WorkloadType::Compute}) {
            std::string name = Suite::namesOfType(type).front();
            workloads.emplace_back(name,
                                   Suite::get(name, scaleDiv).kernel);
        }
        unsigned denseTrips = std::max(1024u / scaleDiv, 16u);
        workloads.emplace_back("scatter_walk",
                               scatterWalkKernel(cfg.numCores, denseTrips));
        workloads.emplace_back("mlp_stream",
                               mlpStreamKernel(cfg.numCores, denseTrips));
    }
    if (!filter.empty()) {
        std::vector<std::pair<std::string, KernelDesc>> kept;
        for (auto &w : workloads)
            for (const auto &name : filter)
                if (w.first == name)
                    kept.push_back(std::move(w));
        workloads = std::move(kept);
    }

    if (!quiet) {
        std::printf("bench_simrate: naive cycle loop vs event-driven "
                    "fast-forward (scale 1/%u)\n\n",
                    scaleDiv);
        std::printf("%-16s %12s %10s %10s %12s %12s %8s %6s\n",
                    "workload", "cycles", "naive_s", "fast_s",
                    "naive_kc/s", "fast_kc/s", "speedup", "equal");
    }

    // The gate's performance contract (see the file comment).
    const double gateMinSpeedup = 1.0;
    const double gateMinGeomean = 3.0;
    const double gateMinShardSpeedup = 1.8; // shards=4, self-relative
    const unsigned gateAttempts = gateAttemptBudget();
    // All gate re-measurements draw on one monotonic-clock budget:
    // once it runs out the best timing so far stands, so retries can
    // never push the job past its CTest timeout.
    const auto retryDeadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(240);
    auto retryAllowed = [&](unsigned attempt) {
        return attempt < gateAttempts &&
               std::chrono::steady_clock::now() < retryDeadline;
    };

    std::vector<Measurement> rows;
    std::vector<double> speedups;
    bool allIdentical = true;
    for (const auto &[name, kernel] : workloads) {
        const SimConfig &wcfg =
            name == "latency_micro" ? microCfg : cfg;
        Measurement m = measure(name, wcfg, kernel);
        // Best-of-N under --gate: every workload is timed twice (a
        // single slow timing must not fail the gate), and a workload
        // still below the per-kernel floor earns further retries —
        // bounded by the attempt budget and the shared deadline. Only
        // the timing can improve — the identity verdict must hold in
        // every attempt.
        for (unsigned a = 1;
             gate && (a < 2 || m.speedup < gateMinSpeedup) &&
             retryAllowed(a);
             ++a) {
            Measurement again = measure(name, wcfg, kernel);
            bool identical = m.identical && again.identical;
            if (again.speedup > m.speedup)
                m = again;
            m.identical = identical;
        }
        if (!quiet)
            std::printf(
                "%-16s %12llu %10.3f %10.3f %12.1f %12.1f %7.2fx %6s\n",
                m.name.c_str(),
                static_cast<unsigned long long>(m.cycles),
                m.naiveSeconds, m.fastSeconds,
                kcyclesPerSec(m.cycles, m.naiveSeconds),
                kcyclesPerSec(m.cycles, m.fastSeconds), m.speedup,
                m.identical ? "yes" : "NO");
        allIdentical = allIdentical && m.identical;
        speedups.push_back(m.speedup);
        rows.push_back(std::move(m));
    }

    double gm = bench::geomean(speedups);
    if (!quiet)
        std::printf("\ngeomean speedup: %.2fx\n", gm);

    // Intra-run sharding sweep: the high-MLP streaming kernel on the
    // paper's Fig. 18 machine width, timed at each shard count.
    // shards=1 runs the unmodified serial event-queue loop and is the
    // self-relative reference; every other point must reproduce its
    // statistics dump byte for byte.
    const std::string scaleName = "mlp_stream";
    SimConfig scaleCfg = cfg;
    scaleCfg.numCores = 28;
    const unsigned hwThreads =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<ScalePoint> scaling;
    bool shardsIdentical = true;
    if (!smoke) {
        KernelDesc scaleKernel = mlpStreamKernel(
            scaleCfg.numCores, std::max(1024u / scaleDiv, 16u));
        if (!quiet) {
            std::printf("\nsharded scaling: %s, %u cores, host "
                        "threads %u (self-relative)\n",
                        scaleName.c_str(), scaleCfg.numCores,
                        hwThreads);
            std::printf("%-8s %10s %12s %8s %6s\n", "shards", "fast_s",
                        "fast_kc/s", "speedup", "equal");
        }
        std::string refDump;
        double refSeconds = 0.0;
        for (unsigned s : shardAxis) {
            SimConfig pointCfg = scaleCfg;
            pointCfg.shards = s;
            RunResult r;
            ScalePoint p;
            p.shards = s;
            p.seconds = timeFast(pointCfg, scaleKernel, r);
            p.cycles = r.cycles;
            if (s == 1)
                refDump = statDump(r);
            p.identical = statDump(r) == refDump;
            // Under --gate both ends of the contract get best-of-N
            // re-measurements like the serial workloads: the shards=1
            // reference (a slow reference would flatter every other
            // point) and the gated shards=4 point (retried while it
            // sits below the floor). Timing can improve, identity must
            // hold.
            bool gated =
                gate && (s == 1 || (s == 4 && hwThreads >= 4));
            for (unsigned a = 1;
                 gated &&
                 (a < 2 ||
                  (s == 4 &&
                   refSeconds / p.seconds < gateMinShardSpeedup)) &&
                 retryAllowed(a);
                 ++a) {
                RunResult again;
                double secs = timeFast(pointCfg, scaleKernel, again);
                p.identical =
                    p.identical && statDump(again) == refDump;
                p.seconds = std::min(p.seconds, secs);
            }
            if (s == 1)
                refSeconds = p.seconds;
            p.speedup =
                p.seconds > 0.0 ? refSeconds / p.seconds : 0.0;
            if (!quiet)
                std::printf("%-8u %10.3f %12.1f %7.2fx %6s\n",
                            p.shards, p.seconds,
                            kcyclesPerSec(p.cycles, p.seconds),
                            p.speedup, p.identical ? "yes" : "NO");
            shardsIdentical = shardsIdentical && p.identical;
            scaling.push_back(p);
        }
    }

    writeJson(out, opts, rows, gm, scaleName, scaleCfg.numCores,
              scaling);
    if (!quiet)
        std::printf("wrote %s\n", out.c_str());

    if (!allIdentical) {
        std::fprintf(stderr,
                     "FAIL: fast-forward results diverge from the naive "
                     "oracle loop\n");
        return 1;
    }
    if (!shardsIdentical) {
        std::fprintf(stderr,
                     "FAIL: sharded runs diverge from the serial "
                     "shards=1 reference\n");
        return 1;
    }
    if (gate) {
        bool ok = true;
        for (const Measurement &m : rows) {
            if (m.speedup < gateMinSpeedup) {
                std::fprintf(stderr,
                             "FAIL: %s speedup %.2fx below the %.1fx "
                             "per-workload floor\n",
                             m.name.c_str(), m.speedup, gateMinSpeedup);
                ok = false;
            }
        }
        if (gm < gateMinGeomean) {
            std::fprintf(stderr,
                         "FAIL: geomean speedup %.2fx below the %.1fx "
                         "gate\n",
                         gm, gateMinGeomean);
            ok = false;
        }
        // Sharded floor: shards=4 must reach 1.8x self-relative — a
        // physical impossibility on hosts with fewer than four
        // hardware threads, where the floor is skipped (loudly). The
        // shards=1 no-regression half of the contract is the serial
        // gate above: every workload there runs at shards=1.
        for (const ScalePoint &p : scaling) {
            if (p.shards != 4)
                continue;
            if (hwThreads < 4) {
                std::printf("gate: shards=4 floor skipped (host has "
                            "%u hardware thread%s)\n",
                            hwThreads, hwThreads == 1 ? "" : "s");
            } else if (p.speedup < gateMinShardSpeedup) {
                std::fprintf(stderr,
                             "FAIL: shards=4 speedup %.2fx below the "
                             "%.1fx scaling floor\n",
                             p.speedup, gateMinShardSpeedup);
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::printf("gate passed: all speedups >= %.1fx, geomean >= "
                    "%.1fx\n",
                    gateMinSpeedup, gateMinGeomean);
    }
    return 0;
}
