/**
 * @file
 * Overhead guard for the observability layer.
 *
 * The lifecycle hooks (MTP_OBS_HOOK) sit on the simulator's hottest
 * paths — MRQ enqueue, coalescing, DRAM scheduling, prefetch issue —
 * and the contract is that with tracing compiled in but *disabled*
 * (null tracer pointers, no observer attached) they cost nothing
 * measurable. This harness verifies that claim against a true
 * baseline: a second build of the hook-bearing layers compiled with
 * -DMTP_OBS_ENABLED=0 (target bench_obs_overhead_noobs), where the
 * hooks do not exist at all.
 *
 * Both binaries share this source. The instrumented one, given
 * --compare-with <noobs binary>, runs the disabled-path measurement in
 * both processes, computes the regression from min-of-reps wall times,
 * and fails if it exceeds the threshold (default 2%, plus a small
 * absolute slack so sub-second smoke runs don't flake on scheduler
 * noise). It also reports the cost of *enabled* tracing + sampling for
 * reference; that number is informational, not asserted.
 *
 * Usage: bench_obs_overhead [--smoke] [--scale N] [--reps N]
 *          [--out FILE] [--compare-with BIN] [--threshold PCT]
 *          [--disabled-only]
 *
 * The CLI matches the shared harness conventions (--json aliases
 * --out, --quiet, --jobs/--shards accepted as no-ops, the same
 * unknown-flag error) but is parsed by hand: this source is also
 * compiled against the no-obs stack (bench_obs_overhead_noobs), which
 * cannot link the bench_common library without colliding with the
 * instrumented simulator symbols.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "bench/provenance.hh"
#include "mtprefetch/mtprefetch.hh"
#include "obs/host_profiler.hh"

namespace {

using namespace mtp;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Min-of-reps wall time of one simulation; min rejects noise. */
template <typename Fn>
double
minSeconds(unsigned reps, Fn &&fn)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        double s = seconds(t0, t1);
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

double
kcyclesPerSec(Cycle cycles, double secs)
{
    return secs > 0.0 ? static_cast<double>(cycles) / secs / 1000.0 : 0.0;
}

/**
 * The campaign provenance header via the shared emitter
 * (bench/provenance.hh — a library both the instrumented and the
 * no-obs build of this binary can link, unlike the bench suite).
 */
std::string
provenanceJson(unsigned scaleDiv, Cycle throttlePeriod)
{
    std::string out;
    bench::appendProvenance(
        out, bench::collectProvenance(scaleDiv, throttlePeriod), 1);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned scaleDiv = 8;
    unsigned reps = 5;
    bool smoke = false;
    bool quiet = false;
    [[maybe_unused]] bool disabledOnly = false; // unused in no-obs build
    double thresholdPct = 2.0;
    std::string out = "BENCH_obs_overhead.json";
    std::string compareWith;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc) {
            scaleDiv = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if ((arg == "--out" || arg == "--json") && i + 1 < argc) {
            out = argv[++i];
        } else if (arg == "--compare-with" && i + 1 < argc) {
            compareWith = argv[++i];
        } else if (arg == "--threshold" && i + 1 < argc) {
            thresholdPct = std::atof(argv[++i]);
        } else if ((arg == "--jobs" || arg == "--shards") &&
                   i + 1 < argc) {
            ++i; // accepted for CLI uniformity; a timing harness
                 // must stay a single serial process
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--disabled-only") {
            disabledOnly = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--smoke] [--scale N] [--reps N] "
                        "[--out FILE] [--json FILE] "
                        "[--compare-with BIN] [--threshold PCT] "
                        "[--disabled-only] [--quiet]\n",
                        argv[0]);
            return 0;
        } else {
            MTP_FATAL("unknown argument '", arg,
                      "' (see --help for the accepted flags)");
        }
    }
    if (smoke) {
        scaleDiv = 64;
        reps = 3;
    }

    // A memory-intensive workload with hardware prefetching and the
    // throttle engine on exercises every hook site: coalesce, MRQ
    // enqueue, prefetch issue/drop, DRAM enqueue/schedule/done, return
    // and throttle updates.
    SimConfig cfg;
    cfg.throttlePeriod = std::max<Cycle>(1000, 40000 / scaleDiv);
    cfg.hwPref = HwPrefKind::MTHWP;
    cfg.throttleEnable = true;
    Workload w = Suite::get("stream", scaleDiv);

    RunResult warm = simulate(cfg, w.kernel); // warm caches, get cycles
    double disabledSec =
        minSeconds(reps, [&] { simulate(cfg, w.kernel); });

    double enabledSec = 0.0;
    double hostProfSec = 0.0;
#if MTP_OBS_ENABLED
    if (!disabledOnly) {
        obs::ObsConfig ocfg;
        ocfg.samplePeriod = 512;
        ocfg.chromePath = out + ".enabled.trace.json";
        enabledSec =
            minSeconds(reps, [&] { simulate(cfg, w.kernel, ocfg); });
        std::remove(ocfg.chromePath.c_str());

        // Host profiler on, sim observation off: the wall-clock cost
        // of the DESIGN.md §12 scoped timers alone. Informational —
        // the asserted gate covers only the disabled path.
        obs::HostProfiler::enable();
        hostProfSec = minSeconds(reps, [&] { simulate(cfg, w.kernel); });
        obs::HostProfiler::disable();
    }
#endif

    if (!quiet) {
        std::printf("bench_obs_overhead: stream/mthwp+throttle, "
                    "scale 1/%u, %u reps, %llu cycles%s\n",
                    scaleDiv, reps,
                    static_cast<unsigned long long>(warm.cycles),
                    MTP_OBS_ENABLED ? "" : " [no-obs build]");
        std::printf("  hooks disabled: %8.3f s  (%10.1f kcycles/s)\n",
                    disabledSec,
                    kcyclesPerSec(warm.cycles, disabledSec));
    }
    if (enabledSec > 0.0 && !quiet)
        std::printf("  tracing on:     %8.3f s  (%10.1f kcycles/s, "
                    "+%.1f%%)\n",
                    enabledSec, kcyclesPerSec(warm.cycles, enabledSec),
                    100.0 * (enabledSec / disabledSec - 1.0));
    if (hostProfSec > 0.0 && !quiet)
        std::printf("  host profiler:  %8.3f s  (%10.1f kcycles/s, "
                    "+%.1f%%)\n",
                    hostProfSec,
                    kcyclesPerSec(warm.cycles, hostProfSec),
                    100.0 * (hostProfSec / disabledSec - 1.0));

    double noobsSec = 0.0;
    double overheadPct = 0.0;
    bool compared = false;
    bool pass = true;
    if (!compareWith.empty()) {
        std::string childOut = out + ".noobs.json";
        std::string cmd = "\"" + compareWith +
                          "\" --disabled-only --quiet --reps " +
                          std::to_string(reps) + " --scale " +
                          std::to_string(scaleDiv) + " --out \"" +
                          childOut + "\"";
        if (std::system(cmd.c_str()) != 0)
            MTP_FATAL("baseline run failed: ", cmd);

        std::ifstream in(childOut);
        std::stringstream ss;
        ss << in.rdbuf();
        obs::JsonValue doc;
        std::string err;
        if (!obs::parseJson(ss.str(), doc, &err))
            MTP_FATAL("cannot parse ", childOut, ": ", err);
        const obs::JsonValue *v = doc.find("disabledSeconds");
        if (!v || !v->isNumber())
            MTP_FATAL(childOut, " has no disabledSeconds");
        noobsSec = v->number;
        std::remove(childOut.c_str());

        compared = true;
        overheadPct = 100.0 * (disabledSec / noobsSec - 1.0);
        // Small absolute slack: sub-second smoke runs see scheduler
        // noise bigger than any per-hook cost.
        pass = disabledSec <=
               noobsSec * (1.0 + thresholdPct / 100.0) + 0.05;
        if (!quiet) {
            std::printf("  no-obs build:   %8.3f s  "
                        "(%10.1f kcycles/s)\n",
                        noobsSec, kcyclesPerSec(warm.cycles, noobsSec));
            std::printf("  disabled-hook overhead: %+.2f%% (threshold "
                        "%.1f%%): %s\n",
                        overheadPct, thresholdPct,
                        pass ? "PASS" : "FAIL");
        }
    }

    std::ofstream os(out);
    os << "{\n  \"bench\": \"obs_overhead\",\n  \"volatile\": true,\n"
       << provenanceJson(scaleDiv, cfg.throttlePeriod) << ",\n"
       << "  \"obsCompiledIn\": " << (MTP_OBS_ENABLED ? "true" : "false")
       << ",\n  \"workload\": \"stream\",\n  \"scaleDiv\": " << scaleDiv
       << ",\n  \"reps\": " << reps << ",\n  \"cycles\": " << warm.cycles
       << ",\n  \"disabledSeconds\": " << disabledSec
       << ",\n  \"disabledKcyclesPerSec\": "
       << kcyclesPerSec(warm.cycles, disabledSec);
    if (enabledSec > 0.0)
        os << ",\n  \"enabledSeconds\": " << enabledSec
           << ",\n  \"enabledKcyclesPerSec\": "
           << kcyclesPerSec(warm.cycles, enabledSec)
           << ",\n  \"enabledOverheadPct\": "
           << 100.0 * (enabledSec / disabledSec - 1.0);
    if (hostProfSec > 0.0)
        os << ",\n  \"hostProfileSeconds\": " << hostProfSec
           << ",\n  \"hostProfileOverheadPct\": "
           << 100.0 * (hostProfSec / disabledSec - 1.0);
    if (compared)
        os << ",\n  \"noobsSeconds\": " << noobsSec
           << ",\n  \"overheadPct\": " << overheadPct
           << ",\n  \"thresholdPct\": " << thresholdPct
           << ",\n  \"pass\": " << (pass ? "true" : "false");
    os << "\n}\n";
    if (!quiet)
        std::printf("wrote %s\n", out.c_str());

    if (!pass) {
        std::fprintf(stderr,
                     "FAIL: disabled tracing hooks cost %.2f%% "
                     "(threshold %.1f%%)\n",
                     overheadPct, thresholdPct);
        return 1;
    }
    return 0;
}
