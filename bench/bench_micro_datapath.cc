/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulator's hot paths:
 * prefetcher training/lookup, coalescing, the LRU table, the prefetch
 * cache and whole-GPU simulation throughput. These guard the
 * simulator's own performance rather than reproducing a paper figure.
 */

#include <benchmark/benchmark.h>

#include "common/bitutils.hh"
#include "core/lru_table.hh"
#include "mtprefetch/mtprefetch.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

void
BM_CoalesceCoalesced(benchmark::State &state)
{
    AddressPattern p;
    p.base = 0x1000'0000ULL;
    p.threadStride = 4;
    std::vector<MemTxn> txns;
    std::uint64_t tid = 0;
    for (auto _ : state) {
        coalesceWarpAccess(p, tid, 0, txns);
        benchmark::DoNotOptimize(txns.data());
        tid += warpSize;
    }
}
BENCHMARK(BM_CoalesceCoalesced);

void
BM_CoalesceUncoalesced(benchmark::State &state)
{
    AddressPattern p;
    p.base = 0x1000'0000ULL;
    p.threadStride = 2112;
    std::vector<MemTxn> txns;
    std::uint64_t tid = 0;
    for (auto _ : state) {
        coalesceWarpAccess(p, tid, 0, txns);
        benchmark::DoNotOptimize(txns.data());
        tid += warpSize;
    }
}
BENCHMARK(BM_CoalesceUncoalesced);

void
BM_LruTableChurn(benchmark::State &state)
{
    LruTable<PcWid, int, PcWidHash> table(
        static_cast<unsigned>(state.range(0)));
    std::uint64_t i = 0;
    for (auto _ : state) {
        PcWid key{i % 97, static_cast<std::uint64_t>(i % 13)};
        table.findOrInsert(key) = static_cast<int>(i);
        benchmark::DoNotOptimize(table.find(key));
        ++i;
    }
}
BENCHMARK(BM_LruTableChurn)->Arg(8)->Arg(32)->Arg(1024);

void
BM_MtHwpObserve(benchmark::State &state)
{
    SimConfig cfg;
    MtHwpPrefetcher pref(cfg);
    std::vector<MemTxn> txns = {{0x1000, 64}, {0x1040, 64}};
    std::vector<Addr> out;
    std::uint64_t i = 0;
    for (auto _ : state) {
        PrefObservation obs{0x10 + (i % 4) * 4,
                            static_cast<std::uint32_t>(i % 16), i % 16,
                            0x1000 + i * 0x100, &txns};
        out.clear();
        pref.observe(obs, out);
        benchmark::DoNotOptimize(out.data());
        ++i;
    }
}
BENCHMARK(BM_MtHwpObserve);

void
BM_StridePcObserve(benchmark::State &state)
{
    SimConfig cfg;
    StridePcPrefetcher pref(cfg);
    std::vector<MemTxn> txns = {{0x1000, 64}};
    std::vector<Addr> out;
    std::uint64_t i = 0;
    for (auto _ : state) {
        PrefObservation obs{0x10, static_cast<std::uint32_t>(i % 16),
                            i % 16, 0x1000 + i * 0x100, &txns};
        out.clear();
        pref.observe(obs, out);
        benchmark::DoNotOptimize(out.data());
        ++i;
    }
}
BENCHMARK(BM_StridePcObserve);

void
BM_PrefetchCacheAccess(benchmark::State &state)
{
    PrefetchCache pc(16 * 1024, 8);
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr a = (mix64(i) % 4096) * blockBytes;
        if (i % 2)
            pc.fill(a);
        else
            benchmark::DoNotOptimize(pc.demandAccess(a));
        ++i;
    }
}
BENCHMARK(BM_PrefetchCacheAccess);

void
BM_DramChannelTick(benchmark::State &state)
{
    SimConfig cfg;
    DramChannel ch(cfg, 0);
    std::vector<MemRequest> done;
    Cycle now = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        if (!ch.bufferFull())
            ch.insert(MemRequest::make((mix64(i) % 65536) * blockBytes *
                                           cfg.dramChannels,
                                       ReqType::DemandLoad, 0, now));
        done.clear();
        ch.tick(now, done);
        benchmark::DoNotOptimize(done.data());
        ++now;
        ++i;
    }
}
BENCHMARK(BM_DramChannelTick);

void
BM_GpuSimulationThroughput(benchmark::State &state)
{
    // Cycles simulated per second on a small but realistic machine.
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    KernelDesc k = test::tinyStreamKernel(2, 16, 8, 2);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        RunResult r = simulate(cfg, k);
        cycles += r.cycles;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GpuSimulationThroughput)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mtp

BENCHMARK_MAIN();
