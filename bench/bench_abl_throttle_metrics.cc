/**
 * @file
 * Ablation: the throttle engine's two metrics in isolation (Sec. V-A).
 * "early only" neutralizes the merge rule by treating the merge ratio
 * as always high; "merge only" neutralizes the early-eviction rule by
 * moving its thresholds out of reach. Run on MT-HWP.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Throttle metric ablation",
                  "Sec. V-A (early-eviction rate vs. merge ratio)",
                  opts);
    bench::Runner runner(opts);
    auto names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());

    std::printf("\n%-9s | %9s %9s %10s %10s\n", "bench", "no-throt",
                "both", "earlyOnly", "mergeOnly");
    auto configFor = [&](unsigned i) {
        SimConfig cfg = bench::baseConfig(opts);
        cfg.hwPref = HwPrefKind::MTHWP;
        cfg.throttleEnable = i != 0;
        if (i == 2) {
            // Early-eviction rule only: merge always reads high.
            cfg.mergeHigh = -1.0;
        } else if (i == 3) {
            // Merge rule only: early rate never trips its bands.
            cfg.earlyEvictLow = 1e18;
            cfg.earlyEvictHigh = 1e19;
        }
        return cfg;
    };
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned i = 0; i < 4; ++i)
            runner.submit(configFor(i), w.kernel);
    }
    std::vector<double> g[4];
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        double spd[4];
        for (unsigned i = 0; i < 4; ++i) {
            const RunResult &r = runner.run(configFor(i), w.kernel);
            spd[i] = static_cast<double>(base.cycles) / r.cycles;
            g[i].push_back(spd[i]);
        }
        std::printf("%-9s | %9.2f %9.2f %10.2f %10.2f\n", name.c_str(),
                    spd[0], spd[1], spd[2], spd[3]);
    }
    std::printf("%-9s | %9.2f %9.2f %10.2f %10.2f\n", "geomean",
                bench::geomean(g[0]), bench::geomean(g[1]),
                bench::geomean(g[2]), bench::geomean(g[3]));
    std::printf("\n# the early-eviction rate is the primary signal\n"
                "# (Sec. V-A); the merge ratio alone cannot identify\n"
                "# harmful prefetching, it only confirms useful flow.\n");
    return 0;
}
