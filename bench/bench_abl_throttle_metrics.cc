/**
 * @file
 * Ablation: the throttle engine's two metrics in isolation (Sec. V-A).
 * "early only" neutralizes the merge rule by treating the merge ratio
 * as always high; "merge only" neutralizes the early-eviction rule by
 * moving its thresholds out of reach. Run on MT-HWP.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

SimConfig
configFor(const Options &opts, unsigned i)
{
    SimConfig cfg = baseConfig(opts);
    cfg.hwPref = HwPrefKind::MTHWP;
    cfg.throttleEnable = i != 0;
    if (i == 2) {
        // Early-eviction rule only: merge always reads high.
        cfg.mergeHigh = -1.0;
    } else if (i == 3) {
        // Merge rule only: early rate never trips its bands.
        cfg.earlyEvictLow = 1e18;
        cfg.earlyEvictHigh = 1e19;
    }
    return cfg;
}

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned i = 0; i < 4; ++i)
            runner.submit(configFor(opts, i), w.kernel);
    }

    FigureResult out;
    Table t;
    t.name = "throttle-metrics";
    t.columns = {"bench", "no-throt", "both", "earlyOnly", "mergeOnly"};
    std::vector<double> g[4];
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        std::vector<Cell> row = {Cell::str(name)};
        for (unsigned i = 0; i < 4; ++i) {
            const RunResult &r =
                runner.run(configFor(opts, i), w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            g[i].push_back(spd);
            row.push_back(Cell::number(spd));
        }
        t.addRow(std::move(row));
    }
    t.addRow({Cell::str("geomean"), Cell::number(geomean(g[0])),
              Cell::number(geomean(g[1])), Cell::number(geomean(g[2])),
              Cell::number(geomean(g[3]))});
    out.tables.push_back(std::move(t));
    out.metric("geomean.no-throt", geomean(g[0]));
    out.metric("geomean.both", geomean(g[1]));
    out.metric("geomean.earlyOnly", geomean(g[2]));
    out.metric("geomean.mergeOnly", geomean(g[3]));
    out.notes.push_back("the early-eviction rate is the primary signal "
                        "(Sec. V-A); the merge ratio alone cannot "
                        "identify harmful prefetching, it only "
                        "confirms useful flow");
    return out;
}

} // namespace

CampaignSpec
specAblThrottleMetrics()
{
    return {"abl_throttle_metrics", "Throttle metric ablation",
            "Sec. V-A", &run};
}

} // namespace bench
} // namespace mtp
