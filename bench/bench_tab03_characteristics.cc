/**
 * @file
 * Table III: characteristics of the 14 memory-intensive benchmarks —
 * launch geometry, measured base CPI and perfect-memory CPI next to
 * the published values, and the memory-intensity criterion (base CPI
 * at least 50% above perfect-memory CPI).
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Benchmark characteristics",
                  "Table III (base CPI / PMEM CPI per benchmark)", opts);
    bench::Runner runner(opts);

    std::printf("\n%-9s %-7s %-7s %8s %7s %6s | %9s %9s | %9s %9s | %s\n",
                "bench", "suite", "type", "warps", "blocks", "blk/c",
                "baseCPI", "paper", "pmemCPI", "paper", "mem-int");
    auto names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig pmem = bench::baseConfig(opts);
        pmem.perfectMemory = true;
        runner.submit(pmem, w.kernel);
    }
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig pmem = bench::baseConfig(opts);
        pmem.perfectMemory = true;
        const RunResult &perfect = runner.run(pmem, w.kernel);
        bool intense = base.cpi > 1.5 * perfect.cpi;
        std::printf(
            "%-9s %-7s %-7s %8llu %7llu %6u | %9.2f %9.2f | %9.2f %9.2f"
            " | %s\n",
            name.c_str(), w.info.suite.c_str(),
            toString(w.info.type).c_str(),
            static_cast<unsigned long long>(w.info.paperWarps),
            static_cast<unsigned long long>(w.info.paperBlocks),
            w.kernel.maxBlocksPerCore, base.cpi, w.info.paperBaseCpi,
            perfect.cpi, w.info.paperPmemCpi, intense ? "yes" : "NO");
    }
    std::printf("\n# delinquent loads (stride/IP, from Table III):\n");
    for (const auto &name : names) {
        Workload w = Suite::get(name, 64);
        std::printf("#   %-9s %u/%u\n", name.c_str(),
                    w.info.paperDelinquentStride,
                    w.info.paperDelinquentIp);
    }
    return 0;
}
