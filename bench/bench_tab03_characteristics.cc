/**
 * @file
 * Table III: characteristics of the 14 memory-intensive benchmarks —
 * launch geometry, measured base CPI and perfect-memory CPI next to
 * the published values, and the memory-intensity criterion (base CPI
 * at least 50% above perfect-memory CPI).
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig pmem = baseConfig(opts);
        pmem.perfectMemory = true;
        runner.submit(pmem, w.kernel);
    }

    FigureResult out;
    Table t;
    t.name = "characteristics";
    t.columns = {"bench",   "suite",      "type",      "warps",
                 "blocks",  "blk/core",   "baseCPI",   "paper.base",
                 "pmemCPI", "paper.pmem", "mem-intense"};
    unsigned intenseCount = 0;
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig pmem = baseConfig(opts);
        pmem.perfectMemory = true;
        const RunResult &perfect = runner.run(pmem, w.kernel);
        bool intense = base.cpi > 1.5 * perfect.cpi;
        intenseCount += intense;
        t.addRow({Cell::str(name), Cell::str(w.info.suite),
                  Cell::str(toString(w.info.type)),
                  Cell::number(
                      static_cast<double>(w.info.paperWarps), 0),
                  Cell::number(
                      static_cast<double>(w.info.paperBlocks), 0),
                  Cell::number(w.kernel.maxBlocksPerCore, 0),
                  Cell::number(base.cpi), Cell::number(w.info.paperBaseCpi),
                  Cell::number(perfect.cpi),
                  Cell::number(w.info.paperPmemCpi),
                  Cell::str(intense ? "yes" : "NO")});
    }
    out.tables.push_back(std::move(t));

    Table d;
    d.name = "delinquent-loads";
    d.columns = {"bench", "stride", "ip"};
    for (const auto &name : names) {
        Workload w = Suite::get(name, 64);
        d.addRow({Cell::str(name),
                  Cell::number(w.info.paperDelinquentStride, 0),
                  Cell::number(w.info.paperDelinquentIp, 0)});
    }
    out.tables.push_back(std::move(d));

    out.metric("memIntensive.count", intenseCount);
    out.metric("memIntensive.frac",
               names.empty() ? 0.0
                             : static_cast<double>(intenseCount) /
                                   static_cast<double>(names.size()));
    out.notes.push_back("mem-intense: base CPI > 1.5x perfect-memory "
                        "CPI (the paper's Table III criterion)");
    return out;
}

} // namespace

CampaignSpec
specTab03Characteristics()
{
    return {"tab03_characteristics", "Benchmark characteristics",
            "Table III", &run};
}

} // namespace bench
} // namespace mtp
