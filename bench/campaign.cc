#include "bench/campaign.hh"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "bench/harnesses.hh"
#include "common/log.hh"

namespace mtp {
namespace bench {

const std::vector<CampaignSpec> &
campaignSpecs()
{
    static const std::vector<CampaignSpec> specs = {
        specTab02Config(),
        specTab03Characteristics(),
        specTab04Nonmem(),
        specTab06Cost(),
        specFig07Mtaml(),
        specFig08Latency(),
        specFig10Swp(),
        specFig11SwpThrottle(),
        specFig12EarlyBw(),
        specFig13HwBaselines(),
        specFig14MthwpAblation(),
        specFig15HwThrottle(),
        specFig16PcacheSize(),
        specFig17Distance(),
        specFig18Cores(),
        specAblDegree(),
        specAblLocality(),
        specAblThrottleMetrics(),
    };
    return specs;
}

const CampaignSpec *
findSpec(const std::string &name)
{
    for (const auto &spec : campaignSpecs()) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

// --- human rendering ----------------------------------------------------

namespace {

std::string
formatCell(const Cell &c)
{
    if (c.kind == Cell::Kind::Text)
        return c.text;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", c.prec, c.num);
    return buf;
}

} // namespace

void
renderFigure(std::FILE *out, const CampaignSpec &spec,
             const FigureResult &result)
{
    std::fprintf(out, "\n== %s — %s [%s] ==\n", spec.anchor.c_str(),
                 spec.title.c_str(), spec.name.c_str());
    for (const Table &t : result.tables) {
        if (result.tables.size() > 1 && !t.name.empty())
            std::fprintf(out, "\n-- %s --\n", t.name.c_str());
        else
            std::fprintf(out, "\n");

        const std::size_t cols = t.columns.size();
        std::vector<std::size_t> width(cols);
        std::vector<bool> numeric(cols, false);
        for (std::size_t c = 0; c < cols; ++c)
            width[c] = t.columns[c].size();
        for (const auto &row : t.rows) {
            for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
                width[c] = std::max(width[c], formatCell(row[c]).size());
                if (row[c].kind == Cell::Kind::Number)
                    numeric[c] = true;
            }
        }
        auto printRow = [&](const std::vector<std::string> &cells,
                            const std::vector<bool> &right) {
            for (std::size_t c = 0; c < cells.size(); ++c) {
                int w = static_cast<int>(width[c]);
                std::fprintf(out, "%s%*s", c ? "  " : "",
                             right[c] ? w : -w, cells[c].c_str());
            }
            std::fprintf(out, "\n");
        };
        printRow(t.columns, numeric);
        for (const auto &row : t.rows) {
            std::vector<std::string> cells;
            std::vector<bool> right;
            for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
                cells.push_back(formatCell(row[c]));
                right.push_back(row[c].kind == Cell::Kind::Number);
            }
            printRow(cells, right);
        }
    }
    if (!result.summary.empty()) {
        std::fprintf(out, "\nsummary:\n");
        for (const auto &[name, value] : result.summary)
            std::fprintf(out, "  %-28s %.4f\n", name.c_str(), value);
    }
    for (const auto &note : result.notes)
        std::fprintf(out, "# %s\n", note.c_str());
}

// --- provenance ---------------------------------------------------------

Provenance
collectProvenance(const Options &opts)
{
    return collectProvenance(opts.scaleDiv, opts.throttlePeriod,
                             opts.overrides, opts.benchmarks);
}

// --- live progress ------------------------------------------------------

void
CampaignProgress::bind(const Runner *runner, Cycle period)
{
    std::lock_guard<std::mutex> lock(mutex_);
    runner_ = runner;
    period_ = period;
}

void
CampaignProgress::beginFigure(std::size_t index, std::size_t total,
                              const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    figIndex_ = index;
    figTotal_ = total;
    figure_ = name;
    figStart_ = std::chrono::steady_clock::now();
    if (runner_) {
        figStartMisses_ = runner_->cacheMisses();
        figStartExecuted_ = runner_->executed();
    }
}

void
CampaignProgress::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    runner_ = nullptr;
}

CampaignProgress::View
CampaignProgress::view() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    View v;
    v.active = runner_ != nullptr;
    v.figIndex = figIndex_;
    v.figTotal = figTotal_;
    v.figure = figure_;
    v.samplePeriod = period_;
    v.samples = samples_.load(std::memory_order_relaxed);
    if (runner_) {
        v.figSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - figStart_)
                .count();
        v.hits = runner_->cacheHits();
        v.misses = runner_->cacheMisses();
        v.executed = runner_->executed();
        v.figStartMisses = figStartMisses_;
        v.figStartExecuted = figStartExecuted_;
    }
    return v;
}

// --- campaign execution -------------------------------------------------

CampaignResult
runCampaign(const Options &opts, const std::vector<std::string> &only,
            CampaignProgress *progress,
            const std::function<void(const FigureRun &)> &onFigure)
{
    std::vector<const CampaignSpec *> selected;
    if (only.empty()) {
        for (const auto &spec : campaignSpecs())
            selected.push_back(&spec);
    } else {
        for (const auto &name : only) {
            const CampaignSpec *spec = findSpec(name);
            if (!spec)
                MTP_FATAL("unknown campaign figure '", name,
                          "' (mtp-campaign --list prints them)");
            selected.push_back(spec);
        }
    }

    CampaignResult res;
    res.provenance = collectProvenance(opts);
    res.shards = opts.shards;

    Runner runner(opts);
    res.jobs = runner.jobs();
    Cycle period =
        opts.samplePeriod ? opts.samplePeriod : opts.throttlePeriod;
    if (progress) {
        obs::ObsConfig defaults;
        defaults.samplePeriod = period;
        defaults.forwardSink = progress;
        runner.setObsDefaults(defaults);
        progress->bind(&runner, period);
    }

    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const CampaignSpec *spec = selected[i];
        if (progress)
            progress->beginFigure(i, selected.size(), spec->name);
        std::size_t fpStart = runner.fingerprints().size();
        auto f0 = std::chrono::steady_clock::now();

        FigureRun fr;
        fr.spec = spec;
        fr.result = spec->run(runner, opts);
        fr.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - f0)
                             .count();
        fr.fingerprints.assign(
            runner.fingerprints().begin() +
                static_cast<std::ptrdiff_t>(fpStart),
            runner.fingerprints().end());
        if (onFigure)
            onFigure(fr);
        res.figures.push_back(std::move(fr));
    }
    res.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    res.runsExecuted = runner.cacheMisses();
    res.cacheHits = runner.cacheHits();
    res.cacheMisses = runner.cacheMisses();
    res.steals = runner.steals();
    res.cacheEvictions = runner.cacheEvictions();
    res.executorThreads = runner.jobs();
    res.runsPerSec = res.wallSeconds > 0.0
                         ? static_cast<double>(res.runsExecuted) /
                               res.wallSeconds
                         : 0.0;
    if (progress)
        progress->finish();
    return res;
}

// --- JSON emission ------------------------------------------------------

namespace {

// Short local names for the shared emit helpers (bench/provenance.hh).
void
appendIndent(std::string &out, int indent)
{
    appendJsonIndent(out, indent);
}

void
appendString(std::string &out, const std::string &s)
{
    appendJsonString(out, s);
}

} // namespace

void
writeJsonValue(std::string &out, const obs::JsonValue &v, int indent)
{
    using Kind = obs::JsonValue::Kind;
    switch (v.kind) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
    case Kind::Number:
        appendJsonNumber(out, v.number);
        break;
    case Kind::String:
        appendString(out, v.str);
        break;
    case Kind::Array: {
        if (v.array.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            appendIndent(out, indent + 1);
            writeJsonValue(out, v.array[i], indent + 1);
            if (i + 1 < v.array.size())
                out += ',';
            out += '\n';
        }
        appendIndent(out, indent);
        out += ']';
        break;
    }
    case Kind::Object: {
        if (v.object.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        std::size_t i = 0;
        for (const auto &[key, value] : v.object) {
            appendIndent(out, indent + 1);
            appendString(out, key);
            out += ": ";
            writeJsonValue(out, value, indent + 1);
            if (++i < v.object.size())
                out += ',';
            out += '\n';
        }
        appendIndent(out, indent);
        out += '}';
        break;
    }
    }
}

namespace {

void
appendStringArray(std::string &out, const std::vector<std::string> &v,
                  int indent)
{
    if (v.empty()) {
        out += "[]";
        return;
    }
    out += "[\n";
    for (std::size_t i = 0; i < v.size(); ++i) {
        appendIndent(out, indent + 1);
        appendString(out, v[i]);
        if (i + 1 < v.size())
            out += ',';
        out += '\n';
    }
    appendIndent(out, indent);
    out += ']';
}

void
appendTableJson(std::string &out, const Table &t, int indent)
{
    appendIndent(out, indent);
    out += "{\n";
    appendIndent(out, indent + 1);
    out += "\"name\": ";
    appendString(out, t.name);
    out += ",\n";
    appendIndent(out, indent + 1);
    out += "\"columns\": ";
    appendStringArray(out, t.columns, indent + 1);
    out += ",\n";
    appendIndent(out, indent + 1);
    out += "\"rows\": [";
    if (t.rows.empty()) {
        out += "]\n";
    } else {
        out += '\n';
        for (std::size_t r = 0; r < t.rows.size(); ++r) {
            const auto &row = t.rows[r];
            appendIndent(out, indent + 2);
            out += '{';
            for (std::size_t c = 0;
                 c < row.size() && c < t.columns.size(); ++c) {
                if (c)
                    out += ", ";
                appendString(out, t.columns[c]);
                out += ": ";
                if (row[c].kind == Cell::Kind::Number)
                    appendJsonNumber(out, row[c].num);
                else
                    appendString(out, row[c].text);
            }
            out += '}';
            if (r + 1 < t.rows.size())
                out += ',';
            out += '\n';
        }
        appendIndent(out, indent + 1);
        out += "]\n";
    }
    appendIndent(out, indent);
    out += '}';
}

void
appendFigureJson(std::string &out, const CampaignSpec &spec,
                 const FigureResult &r,
                 const std::vector<std::string> &fingerprints,
                 int indent)
{
    appendIndent(out, indent);
    out += "{\n";
    appendIndent(out, indent + 1);
    out += "\"name\": ";
    appendString(out, spec.name);
    out += ",\n";
    appendIndent(out, indent + 1);
    out += "\"title\": ";
    appendString(out, spec.title);
    out += ",\n";
    appendIndent(out, indent + 1);
    out += "\"anchor\": ";
    appendString(out, spec.anchor);
    out += ",\n";
    appendIndent(out, indent + 1);
    out += "\"volatile\": false,\n";
    appendIndent(out, indent + 1);
    out += "\"runs\": ";
    out += std::to_string(fingerprints.size());
    out += ",\n";
    appendIndent(out, indent + 1);
    out += "\"fingerprints\": ";
    appendStringArray(out, fingerprints, indent + 1);
    out += ",\n";
    appendIndent(out, indent + 1);
    out += "\"tables\": [";
    if (r.tables.empty()) {
        out += "],\n";
    } else {
        out += '\n';
        for (std::size_t i = 0; i < r.tables.size(); ++i) {
            appendTableJson(out, r.tables[i], indent + 2);
            if (i + 1 < r.tables.size())
                out += ',';
            out += '\n';
        }
        appendIndent(out, indent + 1);
        out += "],\n";
    }
    appendIndent(out, indent + 1);
    out += "\"summary\": {";
    if (r.summary.empty()) {
        out += "},\n";
    } else {
        out += '\n';
        for (std::size_t i = 0; i < r.summary.size(); ++i) {
            appendIndent(out, indent + 2);
            appendString(out, r.summary[i].first);
            out += ": ";
            appendJsonNumber(out, r.summary[i].second);
            if (i + 1 < r.summary.size())
                out += ',';
            out += '\n';
        }
        appendIndent(out, indent + 1);
        out += "},\n";
    }
    appendIndent(out, indent + 1);
    out += "\"notes\": ";
    appendStringArray(out, r.notes, indent + 1);
    out += '\n';
    appendIndent(out, indent);
    out += '}';
}

} // namespace

void
writeManifest(std::ostream &os, const CampaignResult &res,
              bool includeSession)
{
    std::string out;
    out += "{\n";
    appendIndent(out, 1);
    out += "\"schema\": \"mtp-campaign-v1\",\n";
    appendProvenance(out, res.provenance, 1);
    out += ",\n";
    if (includeSession) {
        appendIndent(out, 1);
        out += "\"session\": {\n";
        appendIndent(out, 2);
        out += "\"jobs\": " + std::to_string(res.jobs) + ",\n";
        appendIndent(out, 2);
        out += "\"shards\": " + std::to_string(res.shards) + ",\n";
        appendIndent(out, 2);
        out += "\"wallSeconds\": ";
        appendJsonNumber(out, res.wallSeconds);
        out += ",\n";
        appendIndent(out, 2);
        out +=
            "\"runsExecuted\": " + std::to_string(res.runsExecuted) +
            ",\n";
        appendIndent(out, 2);
        out += "\"cacheHits\": " + std::to_string(res.cacheHits) +
               ",\n";
        appendIndent(out, 2);
        out += "\"cacheMisses\": " + std::to_string(res.cacheMisses) +
               ",\n";
        appendIndent(out, 2);
        out += "\"cacheEvictions\": " +
               std::to_string(res.cacheEvictions) + ",\n";
        appendIndent(out, 2);
        out += "\"steals\": " + std::to_string(res.steals) + ",\n";
        appendIndent(out, 2);
        out += "\"executorThreads\": " +
               std::to_string(res.executorThreads) + ",\n";
        appendIndent(out, 2);
        out += "\"runsPerSec\": ";
        appendJsonNumber(out, res.runsPerSec);
        out += ",\n";
        appendIndent(out, 2);
        out += "\"figureWallSeconds\": {";
        std::size_t entries =
            res.figures.size() + res.rawFigures.size();
        if (entries == 0) {
            out += "}\n";
        } else {
            out += '\n';
            std::size_t i = 0;
            auto one = [&](const std::string &name, double secs) {
                appendIndent(out, 3);
                appendString(out, name);
                out += ": ";
                appendJsonNumber(out, secs);
                if (++i < entries)
                    out += ',';
                out += '\n';
            };
            for (const auto &f : res.figures)
                one(f.spec->name, f.wallSeconds);
            for (const auto &f : res.rawFigures)
                one(f.name, f.wallSeconds);
            appendIndent(out, 2);
            out += "}\n";
        }
        appendIndent(out, 1);
        out += "},\n";
    }
    appendIndent(out, 1);
    out += "\"figures\": [";
    std::size_t total = res.figures.size() + res.rawFigures.size();
    if (total == 0) {
        out += "]\n";
    } else {
        out += '\n';
        std::size_t i = 0;
        for (const auto &f : res.figures) {
            appendFigureJson(out, *f.spec, f.result, f.fingerprints, 2);
            if (++i < total)
                out += ',';
            out += '\n';
        }
        for (const auto &f : res.rawFigures) {
            appendIndent(out, 2);
            out += "{\n";
            appendIndent(out, 3);
            out += "\"name\": ";
            appendString(out, f.name);
            out += ",\n";
            appendIndent(out, 3);
            out += "\"title\": ";
            appendString(out, f.title);
            out += ",\n";
            appendIndent(out, 3);
            out += "\"anchor\": ";
            appendString(out, f.anchor);
            out += ",\n";
            appendIndent(out, 3);
            out += "\"volatile\": true,\n";
            appendIndent(out, 3);
            out += "\"raw\": ";
            writeJsonValue(out, f.raw, 3);
            out += '\n';
            appendIndent(out, 2);
            out += '}';
            if (++i < total)
                out += ',';
            out += '\n';
        }
        appendIndent(out, 1);
        out += "]\n";
    }
    out += "}\n";
    os << out;
}

// --- standalone per-figure binaries -------------------------------------

int
standaloneMain(const char *specName, int argc, char **argv)
{
    const CampaignSpec *spec = findSpec(specName);
    if (!spec)
        MTP_FATAL("unknown campaign spec '", specName, "'");
    Options opts = parseArgs(argc, argv);
    if (!opts.quiet)
        banner(spec->title, spec->anchor, opts);

    Runner runner(opts);
    FigureResult result = spec->run(runner, opts);
    if (!opts.quiet)
        renderFigure(stdout, *spec, result);

    if (!opts.jsonOut.empty()) {
        std::string out;
        out += "{\n";
        appendIndent(out, 1);
        out += "\"schema\": \"mtp-figure-v1\",\n";
        appendProvenance(out, collectProvenance(opts), 1);
        out += ",\n";
        appendIndent(out, 1);
        out += "\"figure\":\n";
        appendFigureJson(out, *spec, result, runner.fingerprints(), 1);
        out += "\n}\n";
        std::FILE *f = std::fopen(opts.jsonOut.c_str(), "w");
        if (!f)
            MTP_FATAL("cannot open --json path '", opts.jsonOut, "'");
        std::fwrite(out.data(), 1, out.size(), f);
        std::fclose(f);
        if (!opts.quiet)
            std::printf("\nwrote %s\n", opts.jsonOut.c_str());
    }
    return 0;
}

} // namespace bench
} // namespace mtp
