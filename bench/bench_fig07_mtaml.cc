/**
 * @file
 * Figure 7 / Sec. IV: the MTAML analytical model. Regenerates the
 * figure's four curves — MTAML and MTAML_pref (Eq. 1-4) against
 * measured average memory latency with and without prefetching — as a
 * function of the number of active warps, and labels each point with
 * the useful / no-effect / useful-or-harmful classification.
 *
 * The latency curves are measured from the simulator by varying the
 * per-core warp count of a scalar-product-like kernel.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("MTAML analytical model",
                  "Fig. 7 and Eq. 1-4 (Sec. IV)", opts);
    bench::Runner runner(opts);

    std::printf("\n%-6s %10s %12s %12s %14s %s\n", "warps", "MTAML",
                "MTAML_pref", "avgLat", "avgLat(PREF)", "effect");

    for (unsigned warps = 2; warps <= 16; warps += 2) {
        // One block of `warps` warps per core.
        Workload w = Suite::get("scalar", opts.scaleDiv);
        KernelDesc k = w.kernel;
        k.warpsPerBlock = warps;
        k.numBlocks = std::max<std::uint64_t>(
            14, k.numBlocks * 8 / warps);
        k.maxBlocksPerCore = 1;
        k.finalize();

        SimConfig cfg = bench::baseConfig(opts);
        const RunResult &base = runner.run(cfg, k);
        KernelDesc pref_kernel =
            applySwPrefetch(k, SwPrefKind::Stride, w.info.swpOpts);
        const RunResult &pref = runner.run(cfg, pref_kernel);

        MtamlInputs in;
        in.compInsts = static_cast<double>(k.warpInstsPerWarp() -
                                           k.memInstsPerWarp());
        in.memInsts = static_cast<double>(k.memInstsPerWarp());
        in.activeWarps = warps;
        in.prefHitProb = pref.prefCoverage();

        PrefEffect effect = classify(in, base.avgDemandLatency,
                                     pref.avgDemandLatency);
        std::printf("%-6u %10.1f %12.1f %12.1f %14.1f %s\n", warps,
                    mtaml(in), mtamlPref(in), base.avgDemandLatency,
                    pref.avgDemandLatency,
                    toString(effect).c_str());
    }
    std::printf("\n# expected shape: MTAML grows linearly with warps;\n"
                "# prefetching raises the tolerable bar (MTAML_pref)\n"
                "# while measured latency also rises (Sec. IV-B).\n");
    return 0;
}
