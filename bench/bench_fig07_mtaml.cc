/**
 * @file
 * Figure 7 / Sec. IV: the MTAML analytical model. Regenerates the
 * figure's four curves — MTAML and MTAML_pref (Eq. 1-4) against
 * measured average memory latency with and without prefetching — as a
 * function of the number of active warps, labels each point with the
 * useful / no-effect / useful-or-harmful classification, and checks
 * the prediction against the measured speedup (the campaign's
 * measured-vs-MTAML delta: tolerable-latency slack per point plus an
 * overall agreement rate).
 *
 * The latency curves are measured from the simulator by varying the
 * per-core warp count of a scalar-product-like kernel.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    // Build and submit the whole warp sweep up front; the driver
    // overlaps the runs while the loop below prints in order.
    SimConfig cfg = baseConfig(opts);
    struct Point
    {
        unsigned warps;
        KernelDesc base;
        KernelDesc pref;
    };
    std::vector<Point> points;
    for (unsigned warps = 2; warps <= 16; warps += 2) {
        // One block of `warps` warps per core.
        Workload w = Suite::get("scalar", opts.scaleDiv);
        KernelDesc k = w.kernel;
        k.warpsPerBlock = warps;
        k.numBlocks =
            std::max<std::uint64_t>(14, k.numBlocks * 8 / warps);
        k.maxBlocksPerCore = 1;
        k.finalize();
        KernelDesc pref_kernel =
            applySwPrefetch(k, SwPrefKind::Stride, w.info.swpOpts);
        runner.submit(cfg, k);
        runner.submit(cfg, pref_kernel);
        points.push_back({warps, std::move(k), std::move(pref_kernel)});
    }

    FigureResult out;
    Table t;
    t.name = "model-vs-measured";
    t.columns = {"warps",        "MTAML",   "MTAML_pref", "avgLat",
                 "avgLat.pref",  "slack",   "slack.pref", "speedup",
                 "effect",       "agrees"};
    unsigned agreeCount = 0;
    for (const Point &p : points) {
        const RunResult &base = runner.run(cfg, p.base);
        const RunResult &pref = runner.run(cfg, p.pref);

        MtamlInputs in;
        in.compInsts = static_cast<double>(p.base.warpInstsPerWarp() -
                                           p.base.memInstsPerWarp());
        in.memInsts = static_cast<double>(p.base.memInstsPerWarp());
        in.activeWarps = p.warps;
        in.prefHitProb = pref.prefCoverage();

        PrefEffect effect = classify(in, base.avgDemandLatency,
                                     pref.avgDemandLatency);
        double speedup = static_cast<double>(base.cycles) / pref.cycles;
        // Did the model's call match what the simulator measured?
        // "useful" must speed up, "no-effect" must stay within 1%,
        // "useful-or-harmful" predicts a real effect either way.
        bool agrees = false;
        switch (effect) {
        case PrefEffect::Useful:
            agrees = speedup > 1.01;
            break;
        case PrefEffect::NoEffect:
            agrees = speedup >= 0.99 && speedup <= 1.01;
            break;
        case PrefEffect::Mixed:
            agrees = speedup < 0.99 || speedup > 1.01;
            break;
        }
        agreeCount += agrees;
        t.addRow({Cell::number(p.warps, 0), Cell::number(mtaml(in), 1),
                  Cell::number(mtamlPref(in), 1),
                  Cell::number(base.avgDemandLatency, 1),
                  Cell::number(pref.avgDemandLatency, 1),
                  Cell::number(mtaml(in) - base.avgDemandLatency, 1),
                  Cell::number(mtamlPref(in) - pref.avgDemandLatency,
                               1),
                  Cell::number(speedup), Cell::str(toString(effect)),
                  Cell::str(agrees ? "yes" : "NO")});
    }
    out.tables.push_back(std::move(t));
    out.metric("mtaml.agreement",
               points.empty() ? 0.0
                              : static_cast<double>(agreeCount) /
                                    static_cast<double>(points.size()));
    out.notes.push_back("expected shape: MTAML grows linearly with "
                        "warps; prefetching raises the tolerable bar "
                        "(MTAML_pref) while measured latency also "
                        "rises (Sec. IV-B)");
    return out;
}

} // namespace

CampaignSpec
specFig07Mtaml()
{
    return {"fig07_mtaml", "MTAML analytical model",
            "Fig. 7 / Eq. 1-4", &run};
}

} // namespace bench
} // namespace mtp
