/**
 * @file
 * Figure 7 / Sec. IV: the MTAML analytical model. Regenerates the
 * figure's four curves — MTAML and MTAML_pref (Eq. 1-4) against
 * measured average memory latency with and without prefetching — as a
 * function of the number of active warps, and labels each point with
 * the useful / no-effect / useful-or-harmful classification.
 *
 * The latency curves are measured from the simulator by varying the
 * per-core warp count of a scalar-product-like kernel.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("MTAML analytical model",
                  "Fig. 7 and Eq. 1-4 (Sec. IV)", opts);
    bench::Runner runner(opts);

    std::printf("\n%-6s %10s %12s %12s %14s %s\n", "warps", "MTAML",
                "MTAML_pref", "avgLat", "avgLat(PREF)", "effect");

    // Build and submit the whole warp sweep up front; the driver
    // overlaps the runs while the loop below prints in order.
    SimConfig cfg = bench::baseConfig(opts);
    struct Point
    {
        unsigned warps;
        KernelDesc base;
        KernelDesc pref;
    };
    std::vector<Point> points;
    for (unsigned warps = 2; warps <= 16; warps += 2) {
        // One block of `warps` warps per core.
        Workload w = Suite::get("scalar", opts.scaleDiv);
        KernelDesc k = w.kernel;
        k.warpsPerBlock = warps;
        k.numBlocks = std::max<std::uint64_t>(
            14, k.numBlocks * 8 / warps);
        k.maxBlocksPerCore = 1;
        k.finalize();
        KernelDesc pref_kernel =
            applySwPrefetch(k, SwPrefKind::Stride, w.info.swpOpts);
        runner.submit(cfg, k);
        runner.submit(cfg, pref_kernel);
        points.push_back({warps, std::move(k), std::move(pref_kernel)});
    }

    for (const Point &p : points) {
        const RunResult &base = runner.run(cfg, p.base);
        const RunResult &pref = runner.run(cfg, p.pref);

        MtamlInputs in;
        in.compInsts = static_cast<double>(p.base.warpInstsPerWarp() -
                                           p.base.memInstsPerWarp());
        in.memInsts = static_cast<double>(p.base.memInstsPerWarp());
        in.activeWarps = p.warps;
        in.prefHitProb = pref.prefCoverage();

        PrefEffect effect = classify(in, base.avgDemandLatency,
                                     pref.avgDemandLatency);
        std::printf("%-6u %10.1f %12.1f %12.1f %14.1f %s\n", p.warps,
                    mtaml(in), mtamlPref(in), base.avgDemandLatency,
                    pref.avgDemandLatency,
                    toString(effect).c_str());
    }
    std::printf("\n# expected shape: MTAML grows linearly with warps;\n"
                "# prefetching raises the tolerable bar (MTAML_pref)\n"
                "# while measured latency also rises (Sec. IV-B).\n");
    return 0;
}
