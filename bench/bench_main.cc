/**
 * @file
 * Shared entry point of the standalone per-figure binaries. Each
 * bench_* executable compiles this file with -DMTP_BENCH_SPEC="name"
 * and links the full harness suite; the named CampaignSpec runs
 * through the common CLI (see standaloneMain).
 */

#include "bench/campaign.hh"

#ifndef MTP_BENCH_SPEC
#error "MTP_BENCH_SPEC must name the CampaignSpec this binary runs"
#endif

int
main(int argc, char **argv)
{
    return mtp::bench::standaloneMain(MTP_BENCH_SPEC, argc, argv);
}
