/**
 * @file
 * Figure 11: MT-SWP with adaptive prefetch throttling. Columns match
 * the figure: register prefetching, stride prefetching, MT-SWP
 * (stride+IP) and MT-SWP with the throttle engine enabled.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig cfg = baseConfig(opts);
        SimConfig thr = cfg;
        thr.throttleEnable = true;
        runner.submit(cfg, w.variant(SwPrefKind::Register));
        runner.submit(cfg, w.variant(SwPrefKind::Stride));
        runner.submit(cfg, w.variant(SwPrefKind::StrideIP));
        runner.submit(thr, w.variant(SwPrefKind::StrideIP));
    }

    FigureResult out;
    Table t;
    t.name = "speedups";
    t.columns = {"bench", "type", "register", "stride", "mtswp",
                 "mtswp+T"};
    std::vector<double> g_reg, g_str, g_swp, g_thr;
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig cfg = baseConfig(opts);
        SimConfig thr = cfg;
        thr.throttleEnable = true;
        auto speedup = [&](const SimConfig &c, SwPrefKind kind) {
            const RunResult &r = runner.run(c, w.variant(kind));
            return static_cast<double>(base.cycles) / r.cycles;
        };
        double reg = speedup(cfg, SwPrefKind::Register);
        double str = speedup(cfg, SwPrefKind::Stride);
        double swp = speedup(cfg, SwPrefKind::StrideIP);
        double swpt = speedup(thr, SwPrefKind::StrideIP);
        g_reg.push_back(reg);
        g_str.push_back(str);
        g_swp.push_back(swp);
        g_thr.push_back(swpt);
        t.addRow({Cell::str(name), Cell::str(toString(w.info.type)),
                  Cell::number(reg), Cell::number(str),
                  Cell::number(swp), Cell::number(swpt)});
    }
    t.addRow({Cell::str("geomean"), Cell::str(""),
              Cell::number(geomean(g_reg)), Cell::number(geomean(g_str)),
              Cell::number(geomean(g_swp)),
              Cell::number(geomean(g_thr))});
    out.tables.push_back(std::move(t));
    out.metric("geomean.register", geomean(g_reg));
    out.metric("geomean.stride", geomean(g_str));
    out.metric("geomean.mtswp", geomean(g_swp));
    out.metric("geomean.mtswp+T", geomean(g_thr));
    out.notes.push_back("paper: throttling rescues stream/cell/cfd "
                        "(late or early prefetch floods) while leaving "
                        "winners alone; MT-SWP+T is +16% over stride, "
                        "+36% over baseline");
    return out;
}

} // namespace

CampaignSpec
specFig11SwpThrottle()
{
    return {"fig11_swp_throttle", "MT-SWP with adaptive throttling",
            "Fig. 11", &run};
}

} // namespace bench
} // namespace mtp
