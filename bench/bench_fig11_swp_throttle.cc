/**
 * @file
 * Figure 11: MT-SWP with adaptive prefetch throttling. Columns match
 * the figure: register prefetching, stride prefetching, MT-SWP
 * (stride+IP) and MT-SWP with the throttle engine enabled.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("MT-SWP with adaptive throttling",
                  "Fig. 11 (Register / Stride / MT-SWP / MT-SWP+T)",
                  opts);
    bench::Runner runner(opts);

    std::printf("\n%-9s %-7s | %8s %8s %8s %9s\n", "bench", "type",
                "register", "stride", "mtswp", "mtswp+T");
    std::vector<double> g_reg, g_str, g_swp, g_thr;
    auto names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig cfg = bench::baseConfig(opts);
        SimConfig thr = cfg;
        thr.throttleEnable = true;
        runner.submit(cfg, w.variant(SwPrefKind::Register));
        runner.submit(cfg, w.variant(SwPrefKind::Stride));
        runner.submit(cfg, w.variant(SwPrefKind::StrideIP));
        runner.submit(thr, w.variant(SwPrefKind::StrideIP));
    }
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig cfg = bench::baseConfig(opts);
        SimConfig thr = cfg;
        thr.throttleEnable = true;
        auto speedup = [&](const SimConfig &c, SwPrefKind kind) {
            const RunResult &r = runner.run(c, w.variant(kind));
            return static_cast<double>(base.cycles) / r.cycles;
        };
        double reg = speedup(cfg, SwPrefKind::Register);
        double str = speedup(cfg, SwPrefKind::Stride);
        double swp = speedup(cfg, SwPrefKind::StrideIP);
        double swpt = speedup(thr, SwPrefKind::StrideIP);
        g_reg.push_back(reg);
        g_str.push_back(str);
        g_swp.push_back(swp);
        g_thr.push_back(swpt);
        std::printf("%-9s %-7s | %8.2f %8.2f %8.2f %9.2f\n",
                    name.c_str(), toString(w.info.type).c_str(), reg,
                    str, swp, swpt);
    }
    std::printf("%-17s | %8.2f %8.2f %8.2f %9.2f\n", "geomean",
                bench::geomean(g_reg), bench::geomean(g_str),
                bench::geomean(g_swp), bench::geomean(g_thr));
    std::printf("\n# paper: throttling rescues stream/cell/cfd (late or\n"
                "# early prefetch floods) while leaving winners alone;\n"
                "# MT-SWP+T is +16%% over stride, +36%% over baseline.\n");
    return 0;
}
