/**
 * @file
 * Table II: the baseline processor configuration. Renders the
 * simulated machine's parameters next to the published ones.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    (void)runner;
    SimConfig cfg = baseConfig(opts);
    cfg.validate();

    FigureResult out;
    Table t;
    t.name = "configuration";
    t.columns = {"parameter", "paper", "simulator"};
    auto row = [&](const char *name, const char *paper,
                   const std::string &ours) {
        t.addRow({Cell::str(name), Cell::str(paper), Cell::str(ours)});
    };
    row("cores", "14, 8-wide SIMD",
        std::to_string(cfg.numCores) + ", " +
            std::to_string(cfg.simdWidth) + "-wide SIMD");
    row("fetch", "1 warp-inst/cycle",
        std::to_string(cfg.fetchWidth) + " warp-inst/cycle");
    row("decode", "5 cycles, stall on branch",
        std::to_string(cfg.decodeCycles) + " cycles, stall on branch");
    row("IMUL / FDIV / other", "16 / 32 / 4 cycles per warp",
        std::to_string(cfg.latencyImul) + " / " +
            std::to_string(cfg.latencyFdiv) + " / " +
            std::to_string(cfg.latencyOther) + " cycles per warp");
    row("prefetch cache", "16 KB, 8-way",
        std::to_string(cfg.prefCacheBytes / 1024) + " KB, " +
            std::to_string(cfg.prefCacheAssoc) + "-way");
    row("DRAM", "2 KB page, 16 banks, 8 ch",
        std::to_string(cfg.dramRowBytes / 1024) + " KB page, " +
            std::to_string(cfg.dramBanks * cfg.dramChannels) +
            " banks, " + std::to_string(cfg.dramChannels) + " ch");
    row("DRAM timing", "tCL=11 tRCD=11 tRP=13",
        "tCL=" + std::to_string(cfg.dramTCL) +
            " tRCD=" + std::to_string(cfg.dramTRCD) +
            " tRP=" + std::to_string(cfg.dramTRP));
    row("bandwidth", "57.6 GB/s",
        std::to_string(cfg.dramBusBytesPerCycle * cfg.dramChannels *
                       900 / 1000) +
            "." +
            std::to_string(cfg.dramBusBytesPerCycle *
                           cfg.dramChannels * 900 % 1000 / 100) +
            " GB/s");
    row("interconnect", "20 cycles, 1 req / 2 cores / cycle",
        std::to_string(cfg.icntLatency) + " cycles, 1 req / " +
            std::to_string(cfg.icntCoresPerPort) + " cores / cycle");
    row("priority", "demand > prefetch",
        cfg.demandPriority ? "demand > prefetch" : "none");
    out.tables.push_back(std::move(t));
    out.notes.push_back(
        "every SimConfig field accepts a key=value override on any "
        "harness or mtp-sim command line");
    return out;
}

} // namespace

CampaignSpec
specTab02Config()
{
    return {"tab02_config", "Baseline processor configuration",
            "Table II", &run};
}

} // namespace bench
} // namespace mtp
