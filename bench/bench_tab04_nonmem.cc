/**
 * @file
 * Table IV: the 12 non-memory-intensive benchmarks. Their CPIs barely
 * move under a hardware prefetcher or a perfect memory — the property
 * the table documents.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Non-memory-intensive benchmark CPIs",
                  "Table IV (base / PMEM / HWP CPI)", opts);
    bench::Runner runner(opts);

    std::printf("\n%-12s | %8s %8s | %8s %8s | %8s %8s\n", "bench",
                "baseCPI", "paper", "pmemCPI", "paper", "hwpCPI",
                "paper");
    auto names = bench::selectBenchmarks(opts, Suite::computeNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig pmem = bench::baseConfig(opts);
        pmem.perfectMemory = true;
        runner.submit(pmem, w.kernel);
        SimConfig hwp = bench::baseConfig(opts);
        hwp.hwPref = HwPrefKind::MTHWP;
        runner.submit(hwp, w.kernel);
    }
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig pmem = bench::baseConfig(opts);
        pmem.perfectMemory = true;
        const RunResult &perfect = runner.run(pmem, w.kernel);
        SimConfig hwp = bench::baseConfig(opts);
        hwp.hwPref = HwPrefKind::MTHWP;
        const RunResult &pref = runner.run(hwp, w.kernel);
        std::printf("%-12s | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f\n",
                    name.c_str(), base.cpi, w.info.paperBaseCpi,
                    perfect.cpi, w.info.paperPmemCpi, pref.cpi,
                    w.info.paperHwpCpi);
    }
    return 0;
}
