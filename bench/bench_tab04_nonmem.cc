/**
 * @file
 * Table IV: the 12 non-memory-intensive benchmarks. Their CPIs barely
 * move under a hardware prefetcher or a perfect memory — the property
 * the table documents.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::computeNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig pmem = baseConfig(opts);
        pmem.perfectMemory = true;
        runner.submit(pmem, w.kernel);
        SimConfig hwp = baseConfig(opts);
        hwp.hwPref = HwPrefKind::MTHWP;
        runner.submit(hwp, w.kernel);
    }

    FigureResult out;
    Table t;
    t.name = "cpi";
    t.columns = {"bench",   "baseCPI",    "paper.base", "pmemCPI",
                 "paper.pmem", "hwpCPI", "paper.hwp"};
    std::vector<double> hwpOverBase;
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig pmem = baseConfig(opts);
        pmem.perfectMemory = true;
        const RunResult &perfect = runner.run(pmem, w.kernel);
        SimConfig hwp = baseConfig(opts);
        hwp.hwPref = HwPrefKind::MTHWP;
        const RunResult &pref = runner.run(hwp, w.kernel);
        hwpOverBase.push_back(base.cpi / pref.cpi);
        t.addRow({Cell::str(name), Cell::number(base.cpi),
                  Cell::number(w.info.paperBaseCpi),
                  Cell::number(perfect.cpi),
                  Cell::number(w.info.paperPmemCpi),
                  Cell::number(pref.cpi),
                  Cell::number(w.info.paperHwpCpi)});
    }
    out.tables.push_back(std::move(t));
    out.metric("geomean.hwpSpeedup", geomean(hwpOverBase));
    out.notes.push_back("non-memory-intensive kernels: prefetching "
                        "and perfect memory barely move the CPI");
    return out;
}

} // namespace

CampaignSpec
specTab04Nonmem()
{
    return {"tab04_nonmem", "Non-memory-intensive benchmark CPIs",
            "Table IV", &run};
}

} // namespace bench
} // namespace mtp
