/**
 * @file
 * Figure 14: MT-HWP table ablation — GHB (reference), PWS only,
 * PWS+GS, PWS+IP and the full PWS+GS+IP — plus the GS table's
 * PWS-access savings the paper quotes (97% on stride-type).
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

struct Column
{
    const char *name;
    bool ghb, pws, gs, ip;
};

constexpr Column kColumns[] = {
    {"ghb", true, false, false, false},
    {"pws", false, true, false, false},
    {"pws+gs", false, true, true, false},
    {"pws+ip", false, true, false, true},
    {"pws+gs+ip", false, true, true, true},
};

SimConfig
configFor(const Options &opts, const Column &col)
{
    SimConfig cfg = baseConfig(opts);
    if (col.ghb) {
        cfg.hwPref = HwPrefKind::GHB;
    } else {
        cfg.hwPref = HwPrefKind::MTHWP;
        cfg.mthwpPws = col.pws;
        cfg.mthwpGs = col.gs;
        cfg.mthwpIp = col.ip;
    }
    return cfg;
}

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (const Column &col : kColumns)
            runner.submit(configFor(opts, col), w.kernel);
    }

    FigureResult out;
    Table t;
    t.name = "ablation";
    t.columns = {"bench", "type"};
    for (const Column &col : kColumns)
        t.columns.push_back(col.name);

    std::vector<double> g[5];
    double saved_sum = 0.0, probes_sum = 0.0;
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        std::vector<Cell> row = {Cell::str(name),
                                 Cell::str(toString(w.info.type))};
        for (unsigned i = 0; i < 5; ++i) {
            const RunResult &r =
                runner.run(configFor(opts, kColumns[i]), w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            g[i].push_back(spd);
            row.push_back(Cell::number(spd));
            if (i == 4 && w.info.type == WorkloadType::Stride) {
                saved_sum += r.stats.sumMatching(
                    "core", ".hwPref.pwsAccessesSaved");
                probes_sum += r.stats.sumMatching(
                    "core", ".hwPref.pwsAccesses");
            }
        }
        t.addRow(std::move(row));
    }
    std::vector<Cell> gm = {Cell::str("geomean"), Cell::str("")};
    for (unsigned i = 0; i < 5; ++i) {
        gm.push_back(Cell::number(geomean(g[i])));
        out.metric(std::string("geomean.") + kColumns[i].name,
                   geomean(g[i]));
    }
    t.addRow(std::move(gm));
    out.tables.push_back(std::move(t));

    if (saved_sum + probes_sum > 0) {
        out.metric("gs.pwsSavings%",
                   100.0 * saved_sum / (saved_sum + probes_sum));
        out.metric("gs.pwsSavings%.paper", 97.0);
    }
    out.notes.push_back("paper: PWS carries the stride-type gains; IP "
                        "adds backprop/bfs/cfd/linear; GS adds little "
                        "speed but saves almost all PWS probes once "
                        "strides promote");
    return out;
}

} // namespace

CampaignSpec
specFig14MthwpAblation()
{
    return {"fig14_mthwp_ablation", "MT-HWP table ablation vs. GHB",
            "Fig. 14", &run};
}

} // namespace bench
} // namespace mtp
