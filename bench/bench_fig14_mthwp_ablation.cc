/**
 * @file
 * Figure 14: MT-HWP table ablation — GHB (reference), PWS only,
 * PWS+GS, PWS+IP and the full PWS+GS+IP — plus the GS table's
 * PWS-access savings the paper quotes (97% on stride-type).
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("MT-HWP table ablation vs. GHB",
                  "Fig. 14 (GHB / PWS / PWS+GS / PWS+IP / PWS+GS+IP)",
                  opts);
    bench::Runner runner(opts);

    struct Column
    {
        const char *name;
        bool ghb, pws, gs, ip;
    };
    const Column cols[] = {
        {"ghb", true, false, false, false},
        {"pws", false, true, false, false},
        {"pws+gs", false, true, true, false},
        {"pws+ip", false, true, false, true},
        {"pws+gs+ip", false, true, true, true},
    };

    std::printf("\n%-9s %-7s |", "bench", "type");
    for (const auto &c : cols)
        std::printf(" %9s", c.name);
    std::printf("\n");

    std::vector<double> g[5];
    double saved_sum = 0.0, probes_sum = 0.0;
    auto names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (const Column &col : cols) {
            SimConfig cfg = bench::baseConfig(opts);
            if (col.ghb) {
                cfg.hwPref = HwPrefKind::GHB;
            } else {
                cfg.hwPref = HwPrefKind::MTHWP;
                cfg.mthwpPws = col.pws;
                cfg.mthwpGs = col.gs;
                cfg.mthwpIp = col.ip;
            }
            runner.submit(cfg, w.kernel);
        }
    }
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        std::printf("%-9s %-7s |", name.c_str(),
                    toString(w.info.type).c_str());
        for (unsigned i = 0; i < 5; ++i) {
            SimConfig cfg = bench::baseConfig(opts);
            if (cols[i].ghb) {
                cfg.hwPref = HwPrefKind::GHB;
            } else {
                cfg.hwPref = HwPrefKind::MTHWP;
                cfg.mthwpPws = cols[i].pws;
                cfg.mthwpGs = cols[i].gs;
                cfg.mthwpIp = cols[i].ip;
            }
            const RunResult &r = runner.run(cfg, w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            g[i].push_back(spd);
            std::printf(" %9.2f", spd);
            if (i == 4 && w.info.type == WorkloadType::Stride) {
                saved_sum += r.stats.sumMatching(
                    "core", ".hwPref.pwsAccessesSaved");
                probes_sum += r.stats.sumMatching(
                    "core", ".hwPref.pwsAccesses");
            }
        }
        std::printf("\n");
    }
    std::printf("%-17s |", "geomean");
    for (unsigned i = 0; i < 5; ++i)
        std::printf(" %9.2f", bench::geomean(g[i]));
    std::printf("\n");

    if (saved_sum + probes_sum > 0) {
        std::printf("\nGS table PWS-access savings on stride-type: "
                    "%.0f%% (paper: 97%%)\n",
                    100.0 * saved_sum / (saved_sum + probes_sum));
    }
    std::printf("\n# paper: PWS carries the stride-type gains; IP adds\n"
                "# backprop/bfs/cfd/linear; GS adds little speed but\n"
                "# saves almost all PWS probes once strides promote.\n");
    return 0;
}
