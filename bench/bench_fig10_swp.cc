/**
 * @file
 * Figure 10: speedup of the software prefetching schemes over the
 * baseline binary — register prefetching (Ryoo et al.), stride
 * prefetching into the prefetch cache, inter-thread prefetching (IP),
 * and their combination (static MT-SWP).
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig cfg = baseConfig(opts);
        for (SwPrefKind kind :
             {SwPrefKind::Register, SwPrefKind::Stride, SwPrefKind::IP,
              SwPrefKind::StrideIP})
            runner.submit(cfg, w.variant(kind));
    }

    FigureResult out;
    Table t;
    t.name = "speedups";
    t.columns = {"bench", "type",     "register",
                 "stride", "ip",      "stride+ip"};
    std::vector<double> g_reg, g_str, g_ip, g_sip;
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig cfg = baseConfig(opts);
        auto speedup = [&](SwPrefKind kind) {
            const RunResult &r = runner.run(cfg, w.variant(kind));
            return static_cast<double>(base.cycles) / r.cycles;
        };
        double reg = speedup(SwPrefKind::Register);
        double str = speedup(SwPrefKind::Stride);
        double ip = speedup(SwPrefKind::IP);
        double sip = speedup(SwPrefKind::StrideIP);
        g_reg.push_back(reg);
        g_str.push_back(str);
        g_ip.push_back(ip);
        g_sip.push_back(sip);
        t.addRow({Cell::str(name), Cell::str(toString(w.info.type)),
                  Cell::number(reg), Cell::number(str),
                  Cell::number(ip), Cell::number(sip)});
    }
    t.addRow({Cell::str("geomean"), Cell::str(""),
              Cell::number(geomean(g_reg)), Cell::number(geomean(g_str)),
              Cell::number(geomean(g_ip)),
              Cell::number(geomean(g_sip))});
    out.tables.push_back(std::move(t));
    out.metric("geomean.register", geomean(g_reg));
    out.metric("geomean.stride", geomean(g_str));
    out.metric("geomean.ip", geomean(g_ip));
    out.metric("geomean.stride+ip", geomean(g_sip));
    out.notes.push_back("paper: stride beats register except on "
                        "stream; IP lifts mp/uncoal (backprop, bfs, "
                        "linear, sepia) but degrades ocean; static "
                        "MT-SWP = stride+IP is +12% over stride alone");
    return out;
}

} // namespace

CampaignSpec
specFig10Swp()
{
    return {"fig10_swp", "Software GPGPU prefetching speedups",
            "Fig. 10", &run};
}

} // namespace bench
} // namespace mtp
