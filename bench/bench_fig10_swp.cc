/**
 * @file
 * Figure 10: speedup of the software prefetching schemes over the
 * baseline binary — register prefetching (Ryoo et al.), stride
 * prefetching into the prefetch cache, inter-thread prefetching (IP),
 * and their combination (static MT-SWP).
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Software GPGPU prefetching speedups",
                  "Fig. 10 (Register / Stride / IP / Stride+IP)", opts);
    bench::Runner runner(opts);

    std::printf("\n%-9s %-7s | %8s %8s %8s %8s\n", "bench", "type",
                "register", "stride", "ip", "stride+ip");
    std::vector<double> g_reg, g_str, g_ip, g_sip;
    auto names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig cfg = bench::baseConfig(opts);
        for (SwPrefKind kind :
             {SwPrefKind::Register, SwPrefKind::Stride, SwPrefKind::IP,
              SwPrefKind::StrideIP})
            runner.submit(cfg, w.variant(kind));
    }
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig cfg = bench::baseConfig(opts);
        auto speedup = [&](SwPrefKind kind) {
            const RunResult &r = runner.run(cfg, w.variant(kind));
            return static_cast<double>(base.cycles) / r.cycles;
        };
        double reg = speedup(SwPrefKind::Register);
        double str = speedup(SwPrefKind::Stride);
        double ip = speedup(SwPrefKind::IP);
        double sip = speedup(SwPrefKind::StrideIP);
        g_reg.push_back(reg);
        g_str.push_back(str);
        g_ip.push_back(ip);
        g_sip.push_back(sip);
        std::printf("%-9s %-7s | %8.2f %8.2f %8.2f %8.2f\n",
                    name.c_str(), toString(w.info.type).c_str(), reg,
                    str, ip, sip);
    }
    std::printf("%-17s | %8.2f %8.2f %8.2f %8.2f\n", "geomean",
                bench::geomean(g_reg), bench::geomean(g_str),
                bench::geomean(g_ip), bench::geomean(g_sip));
    std::printf("\n# paper: stride beats register except on stream;\n"
                "# IP lifts mp/uncoal (backprop, bfs, linear, sepia)\n"
                "# but degrades ocean; static MT-SWP = stride+IP is\n"
                "# +12%% over stride alone.\n");
    return 0;
}
