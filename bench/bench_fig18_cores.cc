/**
 * @file
 * Figure 18: sensitivity to the number of cores (8 to 20, DRAM
 * bandwidth held constant) for MT-HWP and MT-SWP with and without
 * throttling; geometric-mean speedup over the same-core-count
 * no-prefetching baseline.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, sweepSubset());

    // Submit the whole core-count sweep up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        KernelDesc swp = w.variant(SwPrefKind::StrideIP);
        for (unsigned cores = 8; cores <= 20; cores += 2) {
            SimConfig base_cfg = baseConfig(opts);
            base_cfg.numCores = cores;
            runner.submit(base_cfg, w.kernel);
            for (bool throttle : {false, true}) {
                SimConfig cfg = base_cfg;
                cfg.throttleEnable = throttle;
                runner.submit(cfg, swp);
                cfg.hwPref = HwPrefKind::MTHWP;
                runner.submit(cfg, w.kernel);
            }
        }
    }

    FigureResult out;
    Table t;
    t.name = "core-sweep";
    t.columns = {"cores", "mthwp", "mthwp+T", "mtswp", "mtswp+T"};
    for (unsigned cores = 8; cores <= 20; cores += 2) {
        std::vector<double> hw, hwt, sw, swt;
        for (const auto &name : names) {
            Workload w = Suite::get(name, opts.scaleDiv);
            SimConfig base_cfg = baseConfig(opts);
            base_cfg.numCores = cores;
            const RunResult &base = runner.run(base_cfg, w.kernel);
            auto speedup = [&](bool hw_pref, bool throttle) {
                SimConfig cfg = base_cfg;
                cfg.throttleEnable = throttle;
                if (hw_pref) {
                    cfg.hwPref = HwPrefKind::MTHWP;
                    const RunResult &r = runner.run(cfg, w.kernel);
                    return static_cast<double>(base.cycles) / r.cycles;
                }
                const RunResult &r =
                    runner.run(cfg, w.variant(SwPrefKind::StrideIP));
                return static_cast<double>(base.cycles) / r.cycles;
            };
            hw.push_back(speedup(true, false));
            hwt.push_back(speedup(true, true));
            sw.push_back(speedup(false, false));
            swt.push_back(speedup(false, true));
        }
        t.addRow({Cell::number(cores, 0), Cell::number(geomean(hw), 3),
                  Cell::number(geomean(hwt), 3),
                  Cell::number(geomean(sw), 3),
                  Cell::number(geomean(swt), 3)});
        if (cores == 14) {
            out.metric("geomean.14.mthwp+T", geomean(hwt));
            out.metric("geomean.14.mtswp+T", geomean(swt));
        }
    }
    out.tables.push_back(std::move(t));
    std::string used = "benchmarks:";
    for (const auto &n : names)
        used += " " + n;
    out.notes.push_back(used);
    out.notes.push_back("paper shape: benefits shrink slightly as "
                        "cores grow (more contention for the fixed "
                        "57.6 GB/s) but prefetching stays profitable "
                        "through 20 cores");
    return out;
}

} // namespace

CampaignSpec
specFig18Cores()
{
    return {"fig18_cores",
            "Core-count sensitivity (fixed DRAM bandwidth)",
            "Fig. 18", &run};
}

} // namespace bench
} // namespace mtp
