/**
 * @file
 * Figure 18: sensitivity to the number of cores (8 to 20, DRAM
 * bandwidth held constant) for MT-HWP and MT-SWP with and without
 * throttling; geometric-mean speedup over the same-core-count
 * no-prefetching baseline.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Core-count sensitivity (fixed DRAM bandwidth)",
                  "Fig. 18 (8..20 cores)", opts);
    bench::Runner runner(opts);
    auto names = bench::selectBenchmarks(opts, bench::sweepSubset());
    std::printf("# benchmarks:");
    for (const auto &n : names)
        std::printf(" %s", n.c_str());
    std::printf("\n\n%-6s | %8s %9s %8s %9s\n", "cores", "mthwp",
                "mthwp+T", "mtswp", "mtswp+T");

    // Submit the whole core-count sweep up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        KernelDesc swp = w.variant(SwPrefKind::StrideIP);
        for (unsigned cores = 8; cores <= 20; cores += 2) {
            SimConfig base_cfg = bench::baseConfig(opts);
            base_cfg.numCores = cores;
            runner.submit(base_cfg, w.kernel);
            for (bool throttle : {false, true}) {
                SimConfig cfg = base_cfg;
                cfg.throttleEnable = throttle;
                runner.submit(cfg, swp);
                cfg.hwPref = HwPrefKind::MTHWP;
                runner.submit(cfg, w.kernel);
            }
        }
    }

    for (unsigned cores = 8; cores <= 20; cores += 2) {
        std::vector<double> hw, hwt, sw, swt;
        for (const auto &name : names) {
            Workload w = Suite::get(name, opts.scaleDiv);
            SimConfig base_cfg = bench::baseConfig(opts);
            base_cfg.numCores = cores;
            const RunResult &base = runner.run(base_cfg, w.kernel);
            auto speedup = [&](bool hw_pref, bool throttle) {
                SimConfig cfg = base_cfg;
                cfg.throttleEnable = throttle;
                if (hw_pref) {
                    cfg.hwPref = HwPrefKind::MTHWP;
                    const RunResult &r = runner.run(cfg, w.kernel);
                    return static_cast<double>(base.cycles) / r.cycles;
                }
                const RunResult &r =
                    runner.run(cfg, w.variant(SwPrefKind::StrideIP));
                return static_cast<double>(base.cycles) / r.cycles;
            };
            hw.push_back(speedup(true, false));
            hwt.push_back(speedup(true, true));
            sw.push_back(speedup(false, false));
            swt.push_back(speedup(false, true));
        }
        std::printf("%-6u | %8.3f %9.3f %8.3f %9.3f\n", cores,
                    bench::geomean(hw), bench::geomean(hwt),
                    bench::geomean(sw), bench::geomean(swt));
    }
    std::printf("\n# paper shape: benefits shrink slightly as cores grow\n"
                "# (more contention for the fixed 57.6 GB/s) but\n"
                "# prefetching stays profitable through 20 cores.\n");
    return 0;
}
