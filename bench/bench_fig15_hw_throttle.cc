/**
 * @file
 * Figure 15: throttled hardware prefetchers — GHB vs. feedback-driven
 * GHB+F, StridePC vs. lateness-throttled StridePC+T, and MT-HWP vs.
 * MT-HWP with the paper's adaptive throttle engine.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Hardware prefetcher throttling",
                  "Fig. 15 (GHB/GHB+F, StridePC/+T, MT-HWP/+T)", opts);
    bench::Runner runner(opts);

    std::printf("\n%-9s %-7s | %7s %7s | %8s %8s | %7s %8s\n", "bench",
                "type", "ghb", "ghb+F", "stpc", "stpc+T", "mthwp",
                "mthwp+T");
    std::vector<double> g[6];
    auto names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());
    auto configFor = [&](unsigned i) {
        SimConfig cfg = bench::baseConfig(opts);
        switch (i) {
          case 0:
            cfg.hwPref = HwPrefKind::GHB;
            break;
          case 1:
            cfg.hwPref = HwPrefKind::GHB;
            cfg.ghbFeedback = true;
            break;
          case 2:
            cfg.hwPref = HwPrefKind::StridePC;
            break;
          case 3:
            cfg.hwPref = HwPrefKind::StridePC;
            cfg.stridePcLateThrottle = true;
            break;
          case 4:
            cfg.hwPref = HwPrefKind::MTHWP;
            break;
          default:
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.throttleEnable = true;
            break;
        }
        return cfg;
    };
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned i = 0; i < 6; ++i)
            runner.submit(configFor(i), w.kernel);
    }
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        double spd[6];
        for (unsigned i = 0; i < 6; ++i) {
            const RunResult &r = runner.run(configFor(i), w.kernel);
            spd[i] = static_cast<double>(base.cycles) / r.cycles;
            g[i].push_back(spd[i]);
        }
        std::printf("%-9s %-7s | %7.2f %7.2f | %8.2f %8.2f | %7.2f "
                    "%8.2f\n",
                    name.c_str(), toString(w.info.type).c_str(), spd[0],
                    spd[1], spd[2], spd[3], spd[4], spd[5]);
    }
    std::printf("%-17s | %7.2f %7.2f | %8.2f %8.2f | %7.2f %8.2f\n",
                "geomean", bench::geomean(g[0]), bench::geomean(g[1]),
                bench::geomean(g[2]), bench::geomean(g[3]),
                bench::geomean(g[4]), bench::geomean(g[5]));
    std::printf("\n# paper: throttling rescues stream (the late-prefetch\n"
                "# pathology) and small losses elsewhere; MT-HWP+T is\n"
                "# +22%%/+15%% over GHB+F/StridePC+T and +29%% overall.\n");
    return 0;
}
