/**
 * @file
 * Figure 15: throttled hardware prefetchers — GHB vs. feedback-driven
 * GHB+F, StridePC vs. lateness-throttled StridePC+T, and MT-HWP vs.
 * MT-HWP with the paper's adaptive throttle engine.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

constexpr const char *kColumnNames[6] = {"ghb",    "ghb+F",
                                         "stpc",   "stpc+T",
                                         "mthwp",  "mthwp+T"};

SimConfig
configFor(const Options &opts, unsigned i)
{
    SimConfig cfg = baseConfig(opts);
    switch (i) {
    case 0:
        cfg.hwPref = HwPrefKind::GHB;
        break;
    case 1:
        cfg.hwPref = HwPrefKind::GHB;
        cfg.ghbFeedback = true;
        break;
    case 2:
        cfg.hwPref = HwPrefKind::StridePC;
        break;
    case 3:
        cfg.hwPref = HwPrefKind::StridePC;
        cfg.stridePcLateThrottle = true;
        break;
    case 4:
        cfg.hwPref = HwPrefKind::MTHWP;
        break;
    default:
        cfg.hwPref = HwPrefKind::MTHWP;
        cfg.throttleEnable = true;
        break;
    }
    return cfg;
}

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned i = 0; i < 6; ++i)
            runner.submit(configFor(opts, i), w.kernel);
    }

    FigureResult out;
    Table t;
    t.name = "speedups";
    t.columns = {"bench", "type"};
    for (const char *c : kColumnNames)
        t.columns.push_back(c);
    std::vector<double> g[6];
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        std::vector<Cell> row = {Cell::str(name),
                                 Cell::str(toString(w.info.type))};
        for (unsigned i = 0; i < 6; ++i) {
            const RunResult &r =
                runner.run(configFor(opts, i), w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            g[i].push_back(spd);
            row.push_back(Cell::number(spd));
        }
        t.addRow(std::move(row));
    }
    std::vector<Cell> gm = {Cell::str("geomean"), Cell::str("")};
    for (unsigned i = 0; i < 6; ++i) {
        gm.push_back(Cell::number(geomean(g[i])));
        out.metric(std::string("geomean.") + kColumnNames[i],
                   geomean(g[i]));
    }
    t.addRow(std::move(gm));
    out.tables.push_back(std::move(t));
    out.notes.push_back("paper: throttling rescues stream (the "
                        "late-prefetch pathology) with small losses "
                        "elsewhere; MT-HWP+T is +22%/+15% over "
                        "GHB+F/StridePC+T and +29% overall");
    return out;
}

} // namespace

CampaignSpec
specFig15HwThrottle()
{
    return {"fig15_hw_throttle", "Hardware prefetcher throttling",
            "Fig. 15", &run};
}

} // namespace bench
} // namespace mtp
