/**
 * @file
 * Ablation: prefetch degree (requests per trigger, Sec. II-C3). The
 * paper evaluates distance explicitly (Fig. 17) and keeps degree 1 as
 * the default; this harness shows why — extra requests per trigger
 * mostly turn into early evictions at a 16 KB prefetch cache.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("MT-HWP prefetch degree ablation",
                  "Sec. II-C3 / VIII default-degree choice", opts);
    bench::Runner runner(opts);
    auto names = bench::selectBenchmarks(opts, bench::sweepSubset());

    std::printf("\n%-9s |", "bench");
    const unsigned degrees[] = {1, 2, 3, 4};
    for (unsigned d : degrees)
        std::printf("   deg%u  early%u", d, d);
    std::printf("\n");

    // Submit the whole degree sweep up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned d : degrees) {
            SimConfig cfg = bench::baseConfig(opts);
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.prefDegree = d;
            runner.submit(cfg, w.kernel);
        }
    }

    std::vector<std::vector<double>> per_degree(4);
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        std::printf("%-9s |", name.c_str());
        for (unsigned i = 0; i < 4; ++i) {
            SimConfig cfg = bench::baseConfig(opts);
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.prefDegree = degrees[i];
            const RunResult &r = runner.run(cfg, w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            per_degree[i].push_back(spd);
            std::printf(" %6.2f  %6.2f", spd, r.earlyRatio());
        }
        std::printf("\n");
    }
    std::printf("%-9s |", "geomean");
    for (unsigned i = 0; i < 4; ++i)
        std::printf(" %6.2f        ", bench::geomean(per_degree[i]));
    std::printf("\n");
    return 0;
}
