/**
 * @file
 * Ablation: prefetch degree (requests per trigger, Sec. II-C3). The
 * paper evaluates distance explicitly (Fig. 17) and keeps degree 1 as
 * the default; this harness shows why — extra requests per trigger
 * mostly turn into early evictions at a 16 KB prefetch cache.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, sweepSubset());
    const unsigned degrees[] = {1, 2, 3, 4};

    // Submit the whole degree sweep up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned d : degrees) {
            SimConfig cfg = baseConfig(opts);
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.prefDegree = d;
            runner.submit(cfg, w.kernel);
        }
    }

    FigureResult out;
    Table t;
    t.name = "degree-sweep";
    t.columns = {"bench"};
    for (unsigned d : degrees) {
        t.columns.push_back("deg" + std::to_string(d));
        t.columns.push_back("early" + std::to_string(d));
    }
    std::vector<std::vector<double>> per_degree(4);
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        std::vector<Cell> row = {Cell::str(name)};
        for (unsigned i = 0; i < 4; ++i) {
            SimConfig cfg = baseConfig(opts);
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.prefDegree = degrees[i];
            const RunResult &r = runner.run(cfg, w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            per_degree[i].push_back(spd);
            row.push_back(Cell::number(spd));
            row.push_back(Cell::number(r.earlyRatio()));
        }
        t.addRow(std::move(row));
    }
    out.tables.push_back(std::move(t));
    for (unsigned i = 0; i < 4; ++i)
        out.metric("geomean.deg" + std::to_string(degrees[i]),
                   geomean(per_degree[i]));
    out.notes.push_back("extra requests per trigger mostly turn into "
                        "early evictions at a 16 KB prefetch cache — "
                        "degree 1 stays the default");
    return out;
}

} // namespace

CampaignSpec
specAblDegree()
{
    return {"abl_degree", "MT-HWP prefetch degree ablation",
            "Sec. II-C3 / VIII", &run};
}

} // namespace bench
} // namespace mtp
