/**
 * @file
 * Table VI: the hardware cost of MT-HWP — bits per entry and total
 * storage for the evaluated 32-entry PWS / 8-entry GS / 8-entry IP
 * configuration, compared against the baseline prefetchers' tables.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    (void)runner;
    SimConfig cfg = baseConfig(opts);

    FigureResult out;
    Table t;
    t.name = "mthwp-cost";
    t.columns = {"table", "fields", "bits/entry", "entries",
                 "total bits"};
    auto row = [&](const char *name, const char *fields, unsigned bits,
                   unsigned entries) {
        t.addRow({Cell::str(name), Cell::str(fields),
                  Cell::number(bits, 0), Cell::number(entries, 0),
                  Cell::number(static_cast<double>(bits) * entries, 0)});
    };
    row("PWS", "PC (4B), wid (1B), train (1b), last (4B), stride (20b)",
        MtHwpPrefetcher::pwsEntryBits, cfg.pwsEntries);
    row("GS", "PC (4B), stride (20b)", MtHwpPrefetcher::gsEntryBits,
        cfg.gsEntries);
    row("IP", "PC (4B), stride (20b), train (1b), 2-wid (2B), 2-addr (8B)",
        MtHwpPrefetcher::ipEntryBits, cfg.ipEntries);
    t.addRow({Cell::str("total"), Cell::str(""), Cell::str(""),
              Cell::str(""),
              Cell::number(
                  static_cast<double>(MtHwpPrefetcher::costBits(cfg)),
                  0)});
    out.tables.push_back(std::move(t));

    Table b;
    b.name = "baseline-capacities";
    b.columns = {"prefetcher", "entries"};
    b.addRow({Cell::str("Stride RPT"),
              Cell::number(cfg.strideRptEntries, 0)});
    b.addRow(
        {Cell::str("StridePC"), Cell::number(cfg.stridePcEntries, 0)});
    b.addRow({Cell::str("Stream"), Cell::number(cfg.streamEntries, 0)});
    b.addRow({Cell::str("GHB"), Cell::number(cfg.ghbEntries, 0)});
    b.addRow({Cell::str("GHB index"),
              Cell::number(cfg.ghbIndexEntries, 0)});
    out.tables.push_back(std::move(b));

    out.metric("mthwp.costBytes",
               static_cast<double>(MtHwpPrefetcher::costBytes(cfg)));
    out.metric("mthwp.costBytes.paper", 557.0);
    out.notes.push_back("MT-HWP uses 1-2 orders of magnitude fewer "
                        "entries than the baselines it outperforms");
    return out;
}

} // namespace

CampaignSpec
specTab06Cost()
{
    return {"tab06_cost", "MT-HWP hardware cost", "Table VI", &run};
}

} // namespace bench
} // namespace mtp
