/**
 * @file
 * Table VI: the hardware cost of MT-HWP — bits per entry and total
 * storage for the evaluated 32-entry PWS / 8-entry GS / 8-entry IP
 * configuration, compared against the baseline prefetchers' tables.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("MT-HWP hardware cost", "Table VI", opts);
    SimConfig cfg = bench::baseConfig(opts);

    std::printf("\n%-6s %-55s %10s %8s %12s\n", "table", "fields",
                "bits/entry", "entries", "total bits");
    std::printf("%-6s %-55s %10u %8u %12llu\n", "PWS",
                "PC (4B), wid (1B), train (1b), last (4B), stride (20b)",
                MtHwpPrefetcher::pwsEntryBits, cfg.pwsEntries,
                static_cast<unsigned long long>(
                    MtHwpPrefetcher::pwsEntryBits) *
                    cfg.pwsEntries);
    std::printf("%-6s %-55s %10u %8u %12llu\n", "GS",
                "PC (4B), stride (20b)", MtHwpPrefetcher::gsEntryBits,
                cfg.gsEntries,
                static_cast<unsigned long long>(
                    MtHwpPrefetcher::gsEntryBits) *
                    cfg.gsEntries);
    std::printf("%-6s %-55s %10u %8u %12llu\n", "IP",
                "PC (4B), stride (20b), train (1b), 2-wid (2B), "
                "2-addr (8B)",
                MtHwpPrefetcher::ipEntryBits, cfg.ipEntries,
                static_cast<unsigned long long>(
                    MtHwpPrefetcher::ipEntryBits) *
                    cfg.ipEntries);
    std::printf("%-6s %-55s %10s %8s %12llu\n", "total", "", "", "",
                static_cast<unsigned long long>(
                    MtHwpPrefetcher::costBits(cfg)));
    std::printf("\nMT-HWP total storage: %llu bytes (paper: 557 bytes)\n",
                static_cast<unsigned long long>(
                    MtHwpPrefetcher::costBytes(cfg)));

    std::printf("\nbaseline table capacities (Table V):\n");
    std::printf("  Stride RPT: %u entries\n", cfg.strideRptEntries);
    std::printf("  StridePC:   %u entries\n", cfg.stridePcEntries);
    std::printf("  Stream:     %u entries\n", cfg.streamEntries);
    std::printf("  GHB:        %u-entry GHB + %u-entry index table\n",
                cfg.ghbEntries, cfg.ghbIndexEntries);
    std::printf("\n# MT-HWP uses 1-2 orders of magnitude fewer entries\n"
                "# than the baselines it outperforms.\n");
    return 0;
}
