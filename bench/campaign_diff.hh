/**
 * @file
 * Tolerance-gated comparison of campaign manifests
 * (BENCH_campaign.json) against golden snapshots. Used by
 * `mtp-report campaign diff --gate`, the CI campaign-smoke job, and
 * the campaign unit tests.
 *
 * The comparison walks only the gateable surface of the manifest:
 * non-volatile figures (their table cells and summary metrics) and the
 * schema tag. The "session" block, the provenance header (host and git
 * sha legitimately differ between the golden's producer and the
 * current machine) and figures marked "volatile": true (wall-clock
 * harnesses such as bench_simrate) are ignored.
 *
 * Tolerance schema (documented in DESIGN.md §11): every numeric
 * comparison passes when |cur - gold| <= abs OR the relative error
 * |cur - gold| / max(|gold|, tiny) <= relPct/100. Per-metric rules
 * (glob pattern on the metric path, first match wins) override the
 * default relPct. Text cells and structure (missing/extra figures,
 * tables, rows, columns) are exact.
 */

#ifndef MTP_BENCH_CAMPAIGN_DIFF_HH
#define MTP_BENCH_CAMPAIGN_DIFF_HH

#include <string>
#include <vector>

#include "obs/json.hh"

namespace mtp {
namespace bench {

/** One per-metric tolerance override: glob pattern on the path. */
struct TolRule
{
    std::string pattern; //!< e.g. "fig10_swp/summary/*" ('*' wildcard)
    double relPct = 0.0;
};

/** The gate's numeric slack. */
struct Tolerances
{
    double relPct = 0.0; //!< default relative tolerance, percent
    double abs = 1e-12;  //!< absolute floor (absorbs -0.0 vs 0.0 noise)
    std::vector<TolRule> rules; //!< first matching pattern wins

    /** Effective relative tolerance (percent) for @p path. */
    double relPctFor(const std::string &path) const;
};

/** Simple glob match: '*' matches any run (no '?', no classes). */
bool globMatch(const std::string &pattern, const std::string &text);

/** One gate failure, with enough detail to name the metric. */
struct DiffViolation
{
    enum class Kind
    {
        Structure, //!< missing/extra/mismatched element
        Text,      //!< text cell differs
        Number,    //!< numeric drift beyond tolerance
    };

    Kind kind = Kind::Number;
    std::string path; //!< "figure/table/rowLabel/column" or
                      //!< "figure/summary/metric"
    std::string detail;   //!< structure/text: what differs
    double golden = 0.0;  //!< numeric: expected value
    double current = 0.0; //!< numeric: measured value
    double absDelta = 0.0;
    double relPct = 0.0;    //!< numeric: relative error, percent
    double tolRelPct = 0.0; //!< the tolerance that applied
    double tolAbs = 0.0;

    /** Human-readable one-liner naming the metric and both deltas. */
    std::string describe() const;
};

/**
 * Compare @p current against @p golden under @p tol.
 * @return true when no violations; @p out (appended, not cleared)
 * lists every failure otherwise.
 */
bool diffManifests(const obs::JsonValue &golden,
                   const obs::JsonValue &current, const Tolerances &tol,
                   std::vector<DiffViolation> &out);

/**
 * Load @p path and parse it as a JSON document.
 * @return true on success; @p error describes the failure otherwise.
 */
bool loadManifest(const std::string &path, obs::JsonValue &out,
                  std::string *error);

} // namespace bench
} // namespace mtp

#endif // MTP_BENCH_CAMPAIGN_DIFF_HH
