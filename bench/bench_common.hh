/**
 * @file
 * Shared infrastructure for the figure/table reproduction harnesses.
 *
 * Every `bench_*` binary regenerates one table or figure of the paper's
 * evaluation. By default the launch grids run at 1/8 of the paper's
 * geometry (occupancy and per-warp behaviour unchanged; see DESIGN.md)
 * and the throttle period is scaled with them. Pass `--scale N` to
 * change the divisor (1 = the paper's full grids) and `key=value`
 * pairs to override any SimConfig field.
 */

#ifndef MTP_BENCH_BENCH_COMMON_HH
#define MTP_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "mtprefetch/mtprefetch.hh"

namespace mtp {
namespace bench {

/** Command-line options common to all harnesses. */
struct Options
{
    unsigned scaleDiv = 8;      //!< grid divisor vs. the paper
    Cycle throttlePeriod = 5000; //!< scaled from the paper's 100K
    unsigned jobs = 0;          //!< worker threads (0 = all cores)
    unsigned shards = 1;        //!< intra-run worker threads (--shards)
    Cycle samplePeriod = 0;     //!< --sample-period (0 = no sampling)
    std::string traceOut;       //!< --trace-out Chrome trace base path
    std::string jsonOut;        //!< --json machine-readable output path
    bool quiet = false;         //!< --quiet: suppress human tables
    std::vector<std::string> overrides; //!< SimConfig key=value pairs
    std::vector<std::string> benchmarks; //!< subset filter (--bench a,b)
};

/**
 * A harness-specific flag layered on top of the common CLI. Extra
 * flags are matched *before* the common set, so a harness can shadow
 * a common flag when its axis needs a different shape (bench_simrate
 * reinterprets --shards as a sweep list, for example).
 */
struct FlagSpec
{
    std::string name;        //!< e.g. "--out"
    bool takesValue = true;  //!< consumes the following argv entry
    std::function<void(const std::string &)> handler;
};

/** Parse argv; recognises --scale, --bench, --jobs, --shards,
 *  --sample-period, --trace-out, --json, --quiet, key=value overrides
 *  and any @p extra harness flags. Unknown flags are fatal with a
 *  consistent message across every harness. @p extraUsage is appended
 *  to the --help line. */
Options parseArgs(int argc, char **argv,
                  const std::vector<FlagSpec> &extra = {},
                  const std::string &extraUsage = "");

/**
 * Executor width for @p opts: the explicit --jobs value, or — when
 * intra-run sharding is on and no --jobs was given — the host core
 * count divided by the shard count, so the two parallelism axes share
 * one thread budget (jobs x shards ~ cores) instead of multiplying.
 */
unsigned effectiveJobs(const Options &opts);

/**
 * Observation settings for one run of a harness, derived from
 * --sample-period / --trace-out. @p runTag (e.g. "mthwp.stream") is
 * inserted into the output path so the many runs of one harness don't
 * clobber each other; with --trace-out the Chrome trace doubles as the
 * time-series sink. Returns a disabled config when neither flag was
 * given. Observation never enters the run fingerprint; the first
 * submission of a (config, kernel) key decides its ObsConfig.
 */
obs::ObsConfig obsConfig(const Options &opts, const std::string &runTag);

/** Table II baseline with the scaled throttle period + overrides. */
SimConfig baseConfig(const Options &opts);

/** Names to run: the subset filter or @p fallback. */
std::vector<std::string> selectBenchmarks(
    const Options &opts, const std::vector<std::string> &fallback);

/** A compact subset covering all three classes, for large sweeps. */
const std::vector<std::string> &sweepSubset();

/** Geometric mean of @p values (1.0 when empty). */
double geomean(const std::vector<double> &values);

/** Print the harness banner: title + paper reference + setup. */
void banner(const std::string &title, const std::string &reference,
            const Options &opts);

/**
 * Memoized, parallel simulation front end of every harness.
 *
 * Backed by the driver's work-stealing executor and its thread-safe
 * RunCache (keyed by the full config dump plus a content hash of the
 * kernel's instruction stream — see src/driver/fingerprint.hh).
 * Within one harness the same baseline run backs several columns, and
 * duplicate submissions cost nothing.
 *
 * Harnesses submit their entire run matrix up front (submit() /
 * submitBaseline()), then print in their natural order with run() /
 * baseline(), which block per result. Printing happens on the main
 * thread in submission order, so the output is deterministic and
 * byte-identical for every --jobs value.
 */
class Runner
{
  public:
    explicit Runner(const Options &opts)
        : opts_(opts), exec_(effectiveJobs(opts)), cache_(exec_)
    {
    }

    /** Schedule a simulation without waiting for it. */
    void
    submit(const SimConfig &cfg, const KernelDesc &kernel,
           const obs::ObsConfig &ocfg = {})
    {
        recordFingerprint(cfg, kernel);
        cache_.submit(cfg, kernel, effectiveObs(ocfg));
    }

    /** Schedule a workload's no-prefetching baseline run. */
    void
    submitBaseline(const Workload &w)
    {
        submit(baseConfig(opts_), w.kernel);
    }

    /** Run (or reuse) a simulation of @p kernel under @p cfg. */
    const RunResult &
    run(const SimConfig &cfg, const KernelDesc &kernel)
    {
        recordFingerprint(cfg, kernel);
        return cache_.result(cfg, kernel, effectiveObs({}));
    }

    /** Baseline (no prefetching) run of a workload's kernel. */
    const RunResult &
    baseline(const Workload &w)
    {
        return run(baseConfig(opts_), w.kernel);
    }

    const Options &options() const { return opts_; }

    /** Worker threads actually in use. */
    unsigned jobs() const { return exec_.threads(); }

    /**
     * Observation applied to submissions whose own ObsConfig is
     * disabled (the campaign runner's live-progress forwarding). A
     * caller-provided enabled config still wins; like every ObsConfig
     * the defaults never enter the fingerprint or change results.
     */
    void setObsDefaults(const obs::ObsConfig &ocfg) { obsDefaults_ = ocfg; }

    /** Submissions served from an existing cache entry. */
    std::uint64_t cacheHits() const { return cache_.hits(); }

    /** Distinct runs scheduled (cache misses). */
    std::uint64_t cacheMisses() const { return cache_.misses(); }

    /** Runs that have finished executing so far. */
    std::uint64_t executed() const { return exec_.executed(); }

    /** Runs stolen across worker deques (load-imbalance telemetry). */
    std::uint64_t steals() const { return exec_.steals(); }

    /** Cache entries discarded (always 0; see RunCache::evictions). */
    std::uint64_t cacheEvictions() const { return cache_.evictions(); }

    /**
     * Normalized fingerprint tag of every distinct run submitted, in
     * first-submission order: "<kernel>:<config hash>:<kernel hash>".
     * The config hash is taken with `shards` forced to 1 — sharding is
     * bit-identical by construction (DESIGN.md §10), so the manifest
     * stays byte-identical across --shards settings.
     */
    const std::vector<std::string> &fingerprints() const { return fps_; }

  private:
    void recordFingerprint(const SimConfig &cfg,
                           const KernelDesc &kernel);

    obs::ObsConfig
    effectiveObs(const obs::ObsConfig &ocfg) const
    {
        return ocfg.enabled() || ocfg.forwardSink ? ocfg : obsDefaults_;
    }

    Options opts_;
    driver::ParallelExecutor exec_;
    driver::RunCache cache_;
    obs::ObsConfig obsDefaults_;
    std::vector<std::string> fps_;
    std::unordered_set<std::string> fpSeen_;
};

} // namespace bench
} // namespace mtp

#endif // MTP_BENCH_BENCH_COMMON_HH
