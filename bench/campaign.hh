/**
 * @file
 * The paper campaign layer: every figure/table harness exposes its
 * result through a registered CampaignSpec — a name, a paper anchor,
 * and a run function that returns structured tables instead of ad-hoc
 * stdout — so one driver (tools/mtp-campaign) can execute the whole
 * Table II–VI / Fig. 7–18 suite through a single shared Runner,
 * stream live progress, and emit one consolidated manifest
 * (BENCH_campaign.json) that `mtp-report campaign diff --gate` checks
 * against golden snapshots.
 *
 * Determinism contract: the manifest body (provenance + figures) is a
 * pure function of the configuration — figure tables come from
 * bit-identical simulations, fingerprints are normalized to shards=1,
 * and all JSON numbers are written with locale-independent
 * std::to_chars — so it is byte-identical across --jobs and --shards.
 * Wall-clock and cache statistics, which legitimately vary, live in a
 * separate "session" block that the diff gate ignores and that
 * --no-session omits entirely.
 */

#ifndef MTP_BENCH_CAMPAIGN_HH
#define MTP_BENCH_CAMPAIGN_HH

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/provenance.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"

namespace mtp {
namespace bench {

/** One table cell: a number (with a display precision) or a string. */
struct Cell
{
    enum class Kind
    {
        Number,
        Text,
    };

    Kind kind = Kind::Text;
    double num = 0.0;
    int prec = 2; //!< digits after the decimal point in human output
    std::string text;

    static Cell
    number(double v, int precision = 2)
    {
        Cell c;
        c.kind = Kind::Number;
        c.num = v;
        c.prec = precision;
        return c;
    }

    static Cell
    str(std::string s)
    {
        Cell c;
        c.kind = Kind::Text;
        c.text = std::move(s);
        return c;
    }
};

/** One result table; the first column is the row label. */
struct Table
{
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<Cell>> rows;

    void
    addRow(std::vector<Cell> cells)
    {
        rows.push_back(std::move(cells));
    }
};

/** Everything one harness produces: tables + rollup metrics + notes. */
struct FigureResult
{
    std::vector<Table> tables;

    /** Named rollup metrics (geomeans, agreement rates, ...), in
     *  insertion order; these are what `campaign show` surfaces and
     *  what per-metric gate rules most often target. */
    std::vector<std::pair<std::string, double>> summary;

    /** Free-form commentary (the paper's expected shape). */
    std::vector<std::string> notes;

    void
    metric(const std::string &name, double value)
    {
        summary.emplace_back(name, value);
    }
};

/** A registered harness: how to run it and where it sits in the paper. */
struct CampaignSpec
{
    std::string name;   //!< manifest key, e.g. "fig10_swp"
    std::string title;  //!< human title
    std::string anchor; //!< paper anchor, e.g. "Fig. 10"
    FigureResult (*run)(Runner &, const Options &);
};

/** Every registered spec, in paper order (tables, then figures). */
const std::vector<CampaignSpec> &campaignSpecs();

/** Lookup by manifest name; nullptr when unknown. */
const CampaignSpec *findSpec(const std::string &name);

/** Render one figure's tables/summary/notes as human-readable text. */
void renderFigure(std::FILE *out, const CampaignSpec &spec,
                  const FigureResult &result);

/** Options overload of bench/provenance.hh's collectProvenance(). */
Provenance collectProvenance(const Options &opts);

/** One executed figure: its spec, tables, and run identities. */
struct FigureRun
{
    const CampaignSpec *spec = nullptr;
    FigureResult result;
    std::vector<std::string> fingerprints; //!< distinct runs, in order
    double wallSeconds = 0.0;              //!< session data, not gated
};

/**
 * A figure produced by a self-timing subprocess harness (bench_simrate,
 * bench_obs_overhead): its JSON artifact embedded verbatim. Marked
 * volatile in the manifest — wall-clock measurements are not gateable.
 */
struct RawFigure
{
    std::string name;
    std::string title;
    std::string anchor;
    obs::JsonValue raw;
    double wallSeconds = 0.0;
};

/** The consolidated campaign outcome behind BENCH_campaign.json. */
struct CampaignResult
{
    Provenance provenance;
    unsigned jobs = 0;
    unsigned shards = 1;
    double wallSeconds = 0.0;
    std::uint64_t runsExecuted = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    // Host-side scheduling telemetry (DESIGN.md §12). Session data:
    // legitimately varies run to run, excluded from the diff gate.
    std::uint64_t steals = 0;
    std::uint64_t cacheEvictions = 0;
    unsigned executorThreads = 0;
    double runsPerSec = 0.0;
    std::vector<FigureRun> figures;
    std::vector<RawFigure> rawFigures;
};

/**
 * Thread-safe live-progress aggregator. runCampaign() installs it as
 * the obs forwardSink of every run, so each §8 sampler boundary of
 * each concurrent simulation bumps the snapshot counters; a render
 * thread polls view() to draw the status line. All sink callbacks are
 * lock-free (relaxed atomics) — they run inside simulation workers.
 */
class CampaignProgress : public obs::EventSink
{
  public:
    struct View
    {
        bool active = false;
        std::size_t figIndex = 0; //!< 0-based index of current figure
        std::size_t figTotal = 0;
        std::string figure;
        double figSeconds = 0.0; //!< elapsed in the current figure
        Cycle samplePeriod = 0;
        std::uint64_t samples = 0; //!< sampler boundaries forwarded
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t executed = 0;
        std::uint64_t figStartMisses = 0;
        std::uint64_t figStartExecuted = 0;
    };

    /** Start publishing @p runner's counters; @p period = forward period. */
    void bind(const Runner *runner, Cycle period);

    /** Mark the start of figure @p index of @p total named @p name. */
    void beginFigure(std::size_t index, std::size_t total,
                     const std::string &name);

    /** Stop publishing (the campaign is done; runner may die). */
    void finish();

    View view() const;

    void
    sample(Cycle now, const std::vector<double> &values) override
    {
        (void)now;
        (void)values;
        samples_.fetch_add(1, std::memory_order_relaxed);
        // Campaign heartbeat: every sampler boundary of every live
        // simulation proves forward progress to the hung-run watchdog.
        obs::FlightRecorder::beat();
    }

  private:
    mutable std::mutex mutex_;
    const Runner *runner_ = nullptr;
    Cycle period_ = 0;
    std::size_t figIndex_ = 0;
    std::size_t figTotal_ = 0;
    std::string figure_;
    std::chrono::steady_clock::time_point figStart_{};
    std::uint64_t figStartMisses_ = 0;
    std::uint64_t figStartExecuted_ = 0;
    std::atomic<std::uint64_t> samples_{0};
};

/**
 * Execute the registered specs (all of them, or the @p only subset)
 * through one shared Runner — cross-figure duplicate runs hit the one
 * RunCache — and collect the consolidated result. @p progress, when
 * non-null, receives bind/beginFigure/finish calls and is installed
 * as every run's sampler forwardSink (period = --sample-period, or
 * the scaled throttle period). @p onFigure fires after each figure
 * completes, before the next starts.
 */
CampaignResult
runCampaign(const Options &opts, const std::vector<std::string> &only,
            CampaignProgress *progress = nullptr,
            const std::function<void(const FigureRun &)> &onFigure = {});

/**
 * Write the consolidated manifest. @p includeSession controls the
 * volatile "session" block (wall clock, cache stats, thread budget);
 * everything else is byte-identical across --jobs/--shards.
 */
void writeManifest(std::ostream &os, const CampaignResult &res,
                   bool includeSession);

/** Re-serialize a parsed JSON value with the campaign formatting.
 *  (appendJsonNumber / appendProvenance live in bench/provenance.hh.) */
void writeJsonValue(std::string &out, const obs::JsonValue &v,
                    int indent);

/**
 * Shared main() of the standalone per-figure binaries: parse the
 * common CLI, run the one spec named @p specName through a fresh
 * Runner, render to stdout (unless --quiet) and write a single-figure
 * manifest to --json when given.
 */
int standaloneMain(const char *specName, int argc, char **argv);

} // namespace bench
} // namespace mtp

#endif // MTP_BENCH_CAMPAIGN_HH
