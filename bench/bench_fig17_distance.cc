/**
 * @file
 * Figure 17: MT-HWP's sensitivity to prefetch distance (1 to 15).
 * The paper finds distance 1 best for most benchmarks — late
 * prefetches are rare because warp switching hides latency, while
 * large distances overflow the prefetch cache — with stream the
 * exception (its prefetches are chronically late, so distance ~5
 * helps before early evictions take over).
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, sweepSubset());
    const unsigned distances[] = {1, 3, 5, 7, 9, 11, 13, 15};

    // Submit the whole distance sweep up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned d : distances) {
            SimConfig cfg = baseConfig(opts);
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.prefDistance = d;
            runner.submit(cfg, w.kernel);
        }
    }

    FigureResult out;
    Table t;
    t.name = "distance-sweep";
    t.columns = {"bench"};
    for (unsigned d : distances)
        t.columns.push_back("d" + std::to_string(d));
    std::vector<std::vector<double>> per_distance(8);
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        std::vector<Cell> row = {Cell::str(name)};
        for (unsigned i = 0; i < 8; ++i) {
            SimConfig cfg = baseConfig(opts);
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.prefDistance = distances[i];
            const RunResult &r = runner.run(cfg, w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            per_distance[i].push_back(spd);
            row.push_back(Cell::number(spd));
        }
        t.addRow(std::move(row));
    }
    std::vector<Cell> gm = {Cell::str("geomean")};
    for (unsigned i = 0; i < 8; ++i)
        gm.push_back(Cell::number(geomean(per_distance[i])));
    t.addRow(std::move(gm));
    out.tables.push_back(std::move(t));
    out.metric("geomean.d1", geomean(per_distance[0]));
    out.metric("geomean.d15", geomean(per_distance[7]));
    out.notes.push_back("paper shape: distance 1 best overall; stream "
                        "peaks around distance 5 then decays as "
                        "prefetches turn early (the 16 KB cache cannot "
                        "hold them)");
    return out;
}

} // namespace

CampaignSpec
specFig17Distance()
{
    return {"fig17_distance", "MT-HWP prefetch distance sensitivity",
            "Fig. 17", &run};
}

} // namespace bench
} // namespace mtp
