/**
 * @file
 * Figure 17: MT-HWP's sensitivity to prefetch distance (1 to 15).
 * The paper finds distance 1 best for most benchmarks — late
 * prefetches are rare because warp switching hides latency, while
 * large distances overflow the prefetch cache — with stream the
 * exception (its prefetches are chronically late, so distance ~5
 * helps before early evictions take over).
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("MT-HWP prefetch distance sensitivity",
                  "Fig. 17 (distance 1..15)", opts);
    bench::Runner runner(opts);
    auto names = bench::selectBenchmarks(opts, bench::sweepSubset());

    std::printf("\n%-9s |", "bench");
    const unsigned distances[] = {1, 3, 5, 7, 9, 11, 13, 15};
    for (unsigned d : distances)
        std::printf(" %6u", d);
    std::printf("\n");

    // Submit the whole distance sweep up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned d : distances) {
            SimConfig cfg = bench::baseConfig(opts);
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.prefDistance = d;
            runner.submit(cfg, w.kernel);
        }
    }

    std::vector<std::vector<double>> per_distance(8);
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        std::printf("%-9s |", name.c_str());
        for (unsigned i = 0; i < 8; ++i) {
            SimConfig cfg = bench::baseConfig(opts);
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.prefDistance = distances[i];
            const RunResult &r = runner.run(cfg, w.kernel);
            double spd = static_cast<double>(base.cycles) / r.cycles;
            per_distance[i].push_back(spd);
            std::printf(" %6.2f", spd);
        }
        std::printf("\n");
    }
    std::printf("%-9s |", "geomean");
    for (unsigned i = 0; i < 8; ++i)
        std::printf(" %6.2f", bench::geomean(per_distance[i]));
    std::printf("\n");
    std::printf("\n# paper shape: distance 1 best overall; stream peaks\n"
                "# around distance 5 then decays as prefetches turn\n"
                "# early (the 16 KB cache cannot hold them).\n");
    return 0;
}
