/**
 * @file
 * Figure 8: average (demand) memory latency under software prefetching
 * normalized to the no-prefetching case (bars), with prefetch accuracy
 * (circles). The paper's point: latency can triple even at ~100%
 * accuracy, so accuracy alone cannot flag harmful prefetching.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        runner.submit(baseConfig(opts),
                      w.variant(SwPrefKind::StrideIP));
    }

    FigureResult out;
    Table t;
    t.name = "latency";
    t.columns = {"bench",   "type",    "lat.base",
                 "lat.pref", "normLat", "accuracy%"};
    std::vector<double> norms;
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        const RunResult &pref = runner.run(
            baseConfig(opts), w.variant(SwPrefKind::StrideIP));
        double norm = base.avgDemandLatency > 0
                          ? pref.avgDemandLatency /
                                base.avgDemandLatency
                          : 0.0;
        norms.push_back(norm);
        t.addRow({Cell::str(name), Cell::str(toString(w.info.type)),
                  Cell::number(base.avgDemandLatency, 1),
                  Cell::number(pref.avgDemandLatency, 1),
                  Cell::number(norm),
                  Cell::number(100.0 * pref.accuracy(), 1)});
    }
    out.tables.push_back(std::move(t));
    out.metric("geomean.normLat", geomean(norms));
    out.notes.push_back("paper shape: normalized latency 1-3.5x; high "
                        "even when accuracy approaches 100% (e.g. "
                        "stream)");
    return out;
}

} // namespace

CampaignSpec
specFig08Latency()
{
    return {"fig08_latency",
            "Normalized memory latency and prefetch accuracy under "
            "MT-SWP",
            "Fig. 8", &run};
}

} // namespace bench
} // namespace mtp
