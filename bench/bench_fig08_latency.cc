/**
 * @file
 * Figure 8: average (demand) memory latency under software prefetching
 * normalized to the no-prefetching case (bars), with prefetch accuracy
 * (circles). The paper's point: latency can triple even at ~100%
 * accuracy, so accuracy alone cannot flag harmful prefetching.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Normalized memory latency and prefetch accuracy "
                  "under MT-SWP",
                  "Fig. 8", opts);
    bench::Runner runner(opts);

    std::printf("\n%-9s %-7s | %10s %10s %9s | %9s\n", "bench", "type",
                "lat(base)", "lat(pref)", "normLat", "accuracy");
    auto names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        runner.submit(bench::baseConfig(opts),
                      w.variant(SwPrefKind::StrideIP));
    }
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        const RunResult &pref = runner.run(
            bench::baseConfig(opts), w.variant(SwPrefKind::StrideIP));
        double norm = base.avgDemandLatency > 0
                          ? pref.avgDemandLatency /
                                base.avgDemandLatency
                          : 0.0;
        std::printf("%-9s %-7s | %10.1f %10.1f %9.2f | %8.1f%%\n",
                    name.c_str(), toString(w.info.type).c_str(),
                    base.avgDemandLatency, pref.avgDemandLatency, norm,
                    100.0 * pref.accuracy());
    }
    std::printf("\n# paper shape: normalized latency 1-3.5x; high even\n"
                "# when accuracy approaches 100%% (e.g. stream).\n");
    return 0;
}
