/**
 * @file
 * Figure 12: why throttling helps — (a) the ratio of early prefetches
 * (evicted before first use) and (b) DRAM bandwidth consumption
 * normalized to the no-prefetching case, for MT-SWP with and without
 * the throttle engine.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig cfg = baseConfig(opts);
        SimConfig thr = cfg;
        thr.throttleEnable = true;
        runner.submit(cfg, w.variant(SwPrefKind::StrideIP));
        runner.submit(thr, w.variant(SwPrefKind::StrideIP));
    }

    FigureResult out;
    Table t;
    t.name = "early-and-bandwidth";
    t.columns = {"bench", "type", "early", "early+T", "bw", "bw+T"};
    std::vector<double> g_early, g_earlyT;
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig cfg = baseConfig(opts);
        SimConfig thr = cfg;
        thr.throttleEnable = true;
        const RunResult &swp =
            runner.run(cfg, w.variant(SwPrefKind::StrideIP));
        const RunResult &swpt =
            runner.run(thr, w.variant(SwPrefKind::StrideIP));
        // Normalized bandwidth: bytes per cycle vs. the baseline run.
        double base_bw = static_cast<double>(base.dramBytes) /
                         static_cast<double>(base.cycles);
        double bw = static_cast<double>(swp.dramBytes) /
                    static_cast<double>(swp.cycles) / base_bw;
        double bwt = static_cast<double>(swpt.dramBytes) /
                     static_cast<double>(swpt.cycles) / base_bw;
        g_early.push_back(swp.earlyRatio());
        g_earlyT.push_back(swpt.earlyRatio());
        t.addRow({Cell::str(name), Cell::str(toString(w.info.type)),
                  Cell::number(swp.earlyRatio()),
                  Cell::number(swpt.earlyRatio()), Cell::number(bw),
                  Cell::number(bwt)});
    }
    out.tables.push_back(std::move(t));
    out.notes.push_back("paper shape: throttling cuts both the early "
                        "ratio and bandwidth for stream, cell and cfd");
    return out;
}

} // namespace

CampaignSpec
specFig12EarlyBw()
{
    return {"fig12_early_bw",
            "Early prefetches and bandwidth under throttling",
            "Fig. 12a/12b", &run};
}

} // namespace bench
} // namespace mtp
