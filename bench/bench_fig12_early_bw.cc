/**
 * @file
 * Figure 12: why throttling helps — (a) the ratio of early prefetches
 * (evicted before first use) and (b) DRAM bandwidth consumption
 * normalized to the no-prefetching case, for MT-SWP with and without
 * the throttle engine.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Early prefetches and bandwidth under throttling",
                  "Fig. 12a (early-prefetch ratio) and 12b "
                  "(normalized bandwidth)",
                  opts);
    bench::Runner runner(opts);

    std::printf("\n%-9s %-7s | %9s %9s | %8s %8s\n", "bench", "type",
                "early", "early+T", "bw", "bw+T");
    auto names = bench::selectBenchmarks(
        opts, Suite::memoryIntensiveNames());
    // Submit the whole matrix up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        SimConfig cfg = bench::baseConfig(opts);
        SimConfig thr = cfg;
        thr.throttleEnable = true;
        runner.submit(cfg, w.variant(SwPrefKind::StrideIP));
        runner.submit(thr, w.variant(SwPrefKind::StrideIP));
    }
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        const RunResult &base = runner.baseline(w);
        SimConfig cfg = bench::baseConfig(opts);
        SimConfig thr = cfg;
        thr.throttleEnable = true;
        const RunResult &swp =
            runner.run(cfg, w.variant(SwPrefKind::StrideIP));
        const RunResult &swpt =
            runner.run(thr, w.variant(SwPrefKind::StrideIP));
        // Normalized bandwidth: bytes per cycle vs. the baseline run.
        double base_bw = static_cast<double>(base.dramBytes) /
                         static_cast<double>(base.cycles);
        double bw = static_cast<double>(swp.dramBytes) /
                    static_cast<double>(swp.cycles) / base_bw;
        double bwt = static_cast<double>(swpt.dramBytes) /
                     static_cast<double>(swpt.cycles) / base_bw;
        std::printf("%-9s %-7s | %9.2f %9.2f | %8.2f %8.2f\n",
                    name.c_str(), toString(w.info.type).c_str(),
                    swp.earlyRatio(), swpt.earlyRatio(), bw, bwt);
    }
    std::printf("\n# paper shape: throttling cuts both the early ratio\n"
                "# and bandwidth for stream, cell and cfd.\n");
    return 0;
}
