/**
 * @file
 * Spec factories of every figure/table harness. Each bench_*.cc file
 * defines one factory; campaignSpecs() lists them explicitly (an
 * explicit registry instead of static-initializer registration, so a
 * static link can never silently drop a figure).
 */

#ifndef MTP_BENCH_HARNESSES_HH
#define MTP_BENCH_HARNESSES_HH

#include "bench/campaign.hh"

namespace mtp {
namespace bench {

CampaignSpec specTab02Config();
CampaignSpec specTab03Characteristics();
CampaignSpec specTab04Nonmem();
CampaignSpec specTab06Cost();
CampaignSpec specFig07Mtaml();
CampaignSpec specFig08Latency();
CampaignSpec specFig10Swp();
CampaignSpec specFig11SwpThrottle();
CampaignSpec specFig12EarlyBw();
CampaignSpec specFig13HwBaselines();
CampaignSpec specFig14MthwpAblation();
CampaignSpec specFig15HwThrottle();
CampaignSpec specFig16PcacheSize();
CampaignSpec specFig17Distance();
CampaignSpec specFig18Cores();
CampaignSpec specAblDegree();
CampaignSpec specAblLocality();
CampaignSpec specAblThrottleMetrics();

} // namespace bench
} // namespace mtp

#endif // MTP_BENCH_HARNESSES_HH
