#include "bench/provenance.hh"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <unistd.h>

#include "obs/json.hh"

namespace mtp {
namespace bench {

Provenance
collectProvenance(unsigned scaleDiv, Cycle throttlePeriod,
                  std::vector<std::string> overrides,
                  std::vector<std::string> benchFilter)
{
    Provenance p;
    p.paper = "Many-Thread Aware Prefetching Mechanisms for GPGPU "
              "Applications (MICRO-43, 2010)";
    p.gitSha = "unknown";
    if (std::FILE *git = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[128] = {0};
        if (std::fgets(buf, sizeof(buf), git)) {
            std::string sha(buf);
            while (!sha.empty() &&
                   (sha.back() == '\n' || sha.back() == '\r'))
                sha.pop_back();
            if (sha.size() == 40 &&
                sha.find_first_not_of("0123456789abcdef") ==
                    std::string::npos)
                p.gitSha = sha;
        }
        ::pclose(git);
    }
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) == 0 && host[0])
        p.host = host;
    else
        p.host = "unknown";
    p.scaleDiv = scaleDiv;
    p.throttlePeriod = throttlePeriod;
    p.overrides = std::move(overrides);
    p.benchFilter = std::move(benchFilter);
    return p;
}

void
appendJsonIndent(std::string &out, int indent)
{
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    out += obs::jsonEscape(s);
    out += '"';
}

void
appendJsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null keeps the document parseable and
        // the diff layer treats it as "not comparable".
        out += "null";
        return;
    }
    // Locale-independent shortest round-trip (same idiom as
    // StatSet::dumpJson) so manifests never depend on the host locale.
    std::array<char, 64> buf;
    auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
    out.append(buf.data(), res.ptr);
}

namespace {

void
appendStringArray(std::string &out, const std::vector<std::string> &v,
                  int indent)
{
    if (v.empty()) {
        out += "[]";
        return;
    }
    out += "[\n";
    for (std::size_t i = 0; i < v.size(); ++i) {
        appendJsonIndent(out, indent + 1);
        appendJsonString(out, v[i]);
        if (i + 1 < v.size())
            out += ',';
        out += '\n';
    }
    appendJsonIndent(out, indent);
    out += ']';
}

} // namespace

void
appendProvenance(std::string &out, const Provenance &p, int indent)
{
    appendJsonIndent(out, indent);
    out += "\"provenance\": {\n";
    appendJsonIndent(out, indent + 1);
    out += "\"paper\": ";
    appendJsonString(out, p.paper);
    out += ",\n";
    appendJsonIndent(out, indent + 1);
    out += "\"gitSha\": ";
    appendJsonString(out, p.gitSha);
    out += ",\n";
    appendJsonIndent(out, indent + 1);
    out += "\"host\": ";
    appendJsonString(out, p.host);
    out += ",\n";
    appendJsonIndent(out, indent + 1);
    out += "\"scaleDiv\": ";
    out += std::to_string(p.scaleDiv);
    out += ",\n";
    appendJsonIndent(out, indent + 1);
    out += "\"throttlePeriod\": ";
    out += std::to_string(p.throttlePeriod);
    out += ",\n";
    appendJsonIndent(out, indent + 1);
    out += "\"overrides\": ";
    appendStringArray(out, p.overrides, indent + 1);
    out += ",\n";
    appendJsonIndent(out, indent + 1);
    out += "\"benchFilter\": ";
    appendStringArray(out, p.benchFilter, indent + 1);
    out += '\n';
    appendJsonIndent(out, indent);
    out += '}';
}

} // namespace bench
} // namespace mtp
