/**
 * @file
 * Figure 16: sensitivity to prefetch cache size, 1 KB to 128 KB, for
 * MT-HWP and MT-SWP with and without throttling (geometric-mean
 * speedup over the no-prefetching baseline). Uses the cross-class
 * sweep subset by default; pass --bench to widen.
 */

#include "bench/harnesses.hh"

namespace mtp {
namespace bench {
namespace {

SimConfig
configFor(const Options &opts, unsigned kb, bool hw_pref, bool throttle)
{
    SimConfig cfg = baseConfig(opts);
    cfg.prefCacheBytes = kb * 1024;
    cfg.throttleEnable = throttle;
    if (hw_pref)
        cfg.hwPref = HwPrefKind::MTHWP;
    return cfg;
}

FigureResult
run(Runner &runner, const Options &opts)
{
    auto names = selectBenchmarks(opts, sweepSubset());
    const unsigned sizesKb[] = {1, 2, 4, 8, 16, 32, 64, 128};
    // Submit the whole size sweep up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned kb : sizesKb) {
            for (bool throttle : {false, true}) {
                runner.submit(configFor(opts, kb, true, throttle),
                              w.kernel);
                runner.submit(configFor(opts, kb, false, throttle),
                              w.variant(SwPrefKind::StrideIP));
            }
        }
    }

    FigureResult out;
    Table t;
    t.name = "size-sweep";
    t.columns = {"size", "mthwp", "mthwp+T", "mtswp", "mtswp+T"};
    for (unsigned kb : sizesKb) {
        std::vector<double> hw, hwt, sw, swt;
        for (const auto &name : names) {
            Workload w = Suite::get(name, opts.scaleDiv);
            const RunResult &base = runner.baseline(w);
            auto speedup = [&](bool hw_pref, bool throttle) {
                SimConfig cfg = configFor(opts, kb, hw_pref, throttle);
                const RunResult &r = runner.run(
                    cfg, hw_pref ? w.kernel
                                 : w.variant(SwPrefKind::StrideIP));
                return static_cast<double>(base.cycles) / r.cycles;
            };
            hw.push_back(speedup(true, false));
            hwt.push_back(speedup(true, true));
            sw.push_back(speedup(false, false));
            swt.push_back(speedup(false, true));
        }
        t.addRow({Cell::str(std::to_string(kb) + "K"),
                  Cell::number(geomean(hw), 3),
                  Cell::number(geomean(hwt), 3),
                  Cell::number(geomean(sw), 3),
                  Cell::number(geomean(swt), 3)});
        if (kb == 16) {
            out.metric("geomean.16K.mthwp+T", geomean(hwt));
            out.metric("geomean.16K.mtswp+T", geomean(swt));
        }
    }
    out.tables.push_back(std::move(t));
    std::string used = "benchmarks:";
    for (const auto &n : names)
        used += " " + n;
    out.notes.push_back(used);
    out.notes.push_back("paper shape: performance grows with cache "
                        "size; at 1KB unthrottled prefetching degrades "
                        "performance but throttling keeps it above "
                        "1.0; the throttling margin shrinks as the "
                        "cache grows");
    return out;
}

} // namespace

CampaignSpec
specFig16PcacheSize()
{
    return {"fig16_pcache_size", "Prefetch cache size sensitivity",
            "Fig. 16", &run};
}

} // namespace bench
} // namespace mtp
