/**
 * @file
 * Figure 16: sensitivity to prefetch cache size, 1 KB to 128 KB, for
 * MT-HWP and MT-SWP with and without throttling (geometric-mean
 * speedup over the no-prefetching baseline). Uses the cross-class
 * sweep subset by default; pass --bench to widen.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Prefetch cache size sensitivity",
                  "Fig. 16 (1K..128K x MT-HWP/+T, MT-SWP/+T)", opts);
    bench::Runner runner(opts);
    auto names = bench::selectBenchmarks(opts, bench::sweepSubset());
    std::printf("# benchmarks:");
    for (const auto &n : names)
        std::printf(" %s", n.c_str());
    std::printf("\n\n%-8s | %8s %9s %8s %9s\n", "size", "mthwp",
                "mthwp+T", "mtswp", "mtswp+T");

    for (unsigned kb : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        std::vector<double> hw, hwt, sw, swt;
        for (const auto &name : names) {
            Workload w = Suite::get(name, opts.scaleDiv);
            const RunResult &base = runner.baseline(w);
            auto speedup = [&](bool hw_pref, bool throttle) {
                SimConfig cfg = bench::baseConfig(opts);
                cfg.prefCacheBytes = kb * 1024;
                cfg.throttleEnable = throttle;
                if (hw_pref) {
                    cfg.hwPref = HwPrefKind::MTHWP;
                    const RunResult &r = runner.run(cfg, w.kernel);
                    return static_cast<double>(base.cycles) / r.cycles;
                }
                const RunResult &r =
                    runner.run(cfg, w.variant(SwPrefKind::StrideIP));
                return static_cast<double>(base.cycles) / r.cycles;
            };
            hw.push_back(speedup(true, false));
            hwt.push_back(speedup(true, true));
            sw.push_back(speedup(false, false));
            swt.push_back(speedup(false, true));
        }
        std::printf("%5uK   | %8.3f %9.3f %8.3f %9.3f\n", kb,
                    bench::geomean(hw), bench::geomean(hwt),
                    bench::geomean(sw), bench::geomean(swt));
    }
    std::printf("\n# paper shape: performance grows with cache size;\n"
                "# at 1KB unthrottled prefetching degrades performance\n"
                "# but throttling keeps it above 1.0; the throttling\n"
                "# margin shrinks as the cache grows.\n");
    return 0;
}
