/**
 * @file
 * Figure 16: sensitivity to prefetch cache size, 1 KB to 128 KB, for
 * MT-HWP and MT-SWP with and without throttling (geometric-mean
 * speedup over the no-prefetching baseline). Uses the cross-class
 * sweep subset by default; pass --bench to widen.
 */

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Prefetch cache size sensitivity",
                  "Fig. 16 (1K..128K x MT-HWP/+T, MT-SWP/+T)", opts);
    bench::Runner runner(opts);
    auto names = bench::selectBenchmarks(opts, bench::sweepSubset());
    std::printf("# benchmarks:");
    for (const auto &n : names)
        std::printf(" %s", n.c_str());
    std::printf("\n\n%-8s | %8s %9s %8s %9s\n", "size", "mthwp",
                "mthwp+T", "mtswp", "mtswp+T");

    const unsigned sizesKb[] = {1, 2, 4, 8, 16, 32, 64, 128};
    auto configFor = [&](unsigned kb, bool hw_pref, bool throttle) {
        SimConfig cfg = bench::baseConfig(opts);
        cfg.prefCacheBytes = kb * 1024;
        cfg.throttleEnable = throttle;
        if (hw_pref)
            cfg.hwPref = HwPrefKind::MTHWP;
        return cfg;
    };
    // Submit the whole size sweep up front so the runs overlap.
    for (const auto &name : names) {
        Workload w = Suite::get(name, opts.scaleDiv);
        runner.submitBaseline(w);
        for (unsigned kb : sizesKb) {
            for (bool throttle : {false, true}) {
                runner.submit(configFor(kb, true, throttle), w.kernel);
                runner.submit(configFor(kb, false, throttle),
                              w.variant(SwPrefKind::StrideIP));
            }
        }
    }

    for (unsigned kb : sizesKb) {
        std::vector<double> hw, hwt, sw, swt;
        for (const auto &name : names) {
            Workload w = Suite::get(name, opts.scaleDiv);
            const RunResult &base = runner.baseline(w);
            auto speedup = [&](bool hw_pref, bool throttle) {
                SimConfig cfg = configFor(kb, hw_pref, throttle);
                const RunResult &r = runner.run(
                    cfg, hw_pref ? w.kernel
                                 : w.variant(SwPrefKind::StrideIP));
                return static_cast<double>(base.cycles) / r.cycles;
            };
            hw.push_back(speedup(true, false));
            hwt.push_back(speedup(true, true));
            sw.push_back(speedup(false, false));
            swt.push_back(speedup(false, true));
        }
        std::printf("%5uK   | %8.3f %9.3f %8.3f %9.3f\n", kb,
                    bench::geomean(hw), bench::geomean(hwt),
                    bench::geomean(sw), bench::geomean(swt));
    }
    std::printf("\n# paper shape: performance grows with cache size;\n"
                "# at 1KB unthrottled prefetching degrades performance\n"
                "# but throttling keeps it above 1.0; the throttling\n"
                "# margin shrinks as the cache grows.\n");
    return 0;
}
