/**
 * @file
 * The reproducibility header shared by every campaign-path JSON
 * artifact, plus the low-level JSON append helpers it is built from.
 *
 * Split out of bench/campaign.cc so the self-timing binaries that
 * cannot link the bench suite — bench_obs_overhead is compiled twice,
 * once against the no-obs simulator stack, and the two stacks define
 * the same symbols — still emit the exact same provenance block. The
 * library therefore depends only on mtp_common and mtp_obs, which both
 * stacks already link.
 */

#ifndef MTP_BENCH_PROVENANCE_HH
#define MTP_BENCH_PROVENANCE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace mtp {
namespace bench {

/** Reproducibility header shared by every campaign-path artifact. */
struct Provenance
{
    std::string paper;
    std::string gitSha; //!< "unknown" outside a git checkout
    std::string host;
    unsigned scaleDiv = 8;
    Cycle throttlePeriod = 0;
    std::vector<std::string> overrides;
    std::vector<std::string> benchFilter;
};

/**
 * Collect the git SHA and hostname plus the passed knobs. Field-based
 * (not Options-based) so binaries that hand-parse their CLI can call
 * it; bench/campaign.hh adds the Options overload.
 */
Provenance collectProvenance(unsigned scaleDiv, Cycle throttlePeriod,
                             std::vector<std::string> overrides = {},
                             std::vector<std::string> benchFilter = {});

/** Append @p indent levels of 2-space indentation. */
void appendJsonIndent(std::string &out, int indent);

/** Append a quoted, escaped JSON string literal. */
void appendJsonString(std::string &out, const std::string &s);

/** Append one JSON number, locale-independent (std::to_chars). */
void appendJsonNumber(std::string &out, double v);

/** Append the `"provenance": {...}` member (no trailing comma). */
void appendProvenance(std::string &out, const Provenance &p,
                      int indent);

} // namespace bench
} // namespace mtp

#endif // MTP_BENCH_PROVENANCE_HH
