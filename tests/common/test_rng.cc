#include <gtest/gtest.h>

#include "common/rng.hh"

namespace mtp {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool all_equal = true;
    Rng a2(7);
    for (int i = 0; i < 100; ++i)
        all_equal = all_equal && (a2.next() == c.next());
    EXPECT_FALSE(all_equal);
}

TEST(Rng, UniformRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(r.below(10), 10u);
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(123);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.03);
}

} // namespace
} // namespace mtp
