#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hh"

namespace mtp {
namespace {

TEST(Config, DefaultsMatchTableII)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.numCores, 14u);
    EXPECT_EQ(cfg.simdWidth, 8u);
    EXPECT_EQ(cfg.latencyImul, 16u);
    EXPECT_EQ(cfg.latencyFdiv, 32u);
    EXPECT_EQ(cfg.latencyOther, 4u);
    EXPECT_EQ(cfg.decodeCycles, 5u);
    EXPECT_EQ(cfg.icntLatency, 20u);
    EXPECT_EQ(cfg.icntCoresPerPort, 2u);
    EXPECT_EQ(cfg.dramChannels, 8u);
    EXPECT_EQ(cfg.dramBanks * cfg.dramChannels, 16u); // 16 banks total
    EXPECT_EQ(cfg.dramRowBytes, 2048u);
    EXPECT_EQ(cfg.dramTCL, 11u);
    EXPECT_EQ(cfg.dramTRCD, 11u);
    EXPECT_EQ(cfg.dramTRP, 13u);
    EXPECT_EQ(cfg.prefCacheBytes, 16u * 1024);
    EXPECT_EQ(cfg.prefCacheAssoc, 8u);
    // 8 B/cycle x 8 channels x 900 MHz = 57.6 GB/s
    EXPECT_EQ(cfg.dramBusBytesPerCycle * cfg.dramChannels * 900u,
              57600u);
    EXPECT_EQ(cfg.prefDistance, 1u);
    EXPECT_EQ(cfg.prefDegree, 1u);
    EXPECT_EQ(cfg.throttlePeriod, 100000u);
    EXPECT_EQ(cfg.throttleInitDegree, 2u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, ApplyOverride)
{
    SimConfig cfg;
    cfg.applyOverride("numCores=20");
    EXPECT_EQ(cfg.numCores, 20u);
    cfg.applyOverride("hwPref=mthwp");
    EXPECT_EQ(cfg.hwPref, HwPrefKind::MTHWP);
    cfg.applyOverride("throttleEnable=true");
    EXPECT_TRUE(cfg.throttleEnable);
    cfg.applyOverride("earlyEvictHigh=0.5");
    EXPECT_DOUBLE_EQ(cfg.earlyEvictHigh, 0.5);
    cfg.applyOverrides({"prefDistance=3", "prefDegree=2"});
    EXPECT_EQ(cfg.prefDistance, 3u);
    EXPECT_EQ(cfg.prefDegree, 2u);
}

TEST(Config, ParseKinds)
{
    EXPECT_EQ(parseHwPrefKind("stride_pc"), HwPrefKind::StridePC);
    EXPECT_EQ(parseHwPrefKind("ghb"), HwPrefKind::GHB);
    EXPECT_EQ(parseHwPrefKind("mthwp"), HwPrefKind::MTHWP);
    EXPECT_EQ(parseSwPrefKind("stride_ip"), SwPrefKind::StrideIP);
    EXPECT_EQ(parseSwPrefKind("register"), SwPrefKind::Register);
    EXPECT_EQ(toString(HwPrefKind::Stream), "stream");
    EXPECT_EQ(toString(SwPrefKind::IP), "ip");
}

TEST(Config, RoundTripThroughStrings)
{
    for (auto kind : {HwPrefKind::None, HwPrefKind::StrideRPT,
                      HwPrefKind::StridePC, HwPrefKind::Stream,
                      HwPrefKind::GHB, HwPrefKind::MTHWP})
        EXPECT_EQ(parseHwPrefKind(toString(kind)), kind);
    for (auto kind : {SwPrefKind::None, SwPrefKind::Register,
                      SwPrefKind::Stride, SwPrefKind::IP,
                      SwPrefKind::StrideIP})
        EXPECT_EQ(parseSwPrefKind(toString(kind)), kind);
}

TEST(Config, DumpContainsKeys)
{
    SimConfig cfg;
    std::ostringstream os;
    cfg.dump(os);
    EXPECT_NE(os.str().find("numCores = 14"), std::string::npos);
    EXPECT_NE(os.str().find("hwPref = none"), std::string::npos);
}

} // namespace
} // namespace mtp
