#include <gtest/gtest.h>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace mtp {
namespace {

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
    EXPECT_FALSE(isPowerOf2((1ULL << 63) + 1));
}

TEST(BitUtils, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(BitUtils, Align)
{
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(127, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(alignUp(0, 64), 0u);
}

TEST(BitUtils, Bits)
{
    EXPECT_EQ(bits(0xabcdULL, 0, 4), 0xdULL);
    EXPECT_EQ(bits(0xabcdULL, 4, 8), 0xbcULL);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

TEST(BitUtils, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Consecutive inputs should differ in many bits.
    unsigned diff = 0;
    std::uint64_t x = mix64(1) ^ mix64(2);
    while (x) {
        diff += x & 1;
        x >>= 1;
    }
    EXPECT_GT(diff, 16u);
}

TEST(BlockAlign, Basics)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(130), 128u);
    EXPECT_EQ(blockIndex(128), 2u);
}

} // namespace
} // namespace mtp
