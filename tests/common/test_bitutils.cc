#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace mtp {
namespace {

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
    EXPECT_FALSE(isPowerOf2((1ULL << 63) + 1));
}

TEST(BitUtils, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(BitUtils, Align)
{
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(127, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(alignUp(0, 64), 0u);
}

TEST(BitUtils, Bits)
{
    EXPECT_EQ(bits(0xabcdULL, 0, 4), 0xdULL);
    EXPECT_EQ(bits(0xabcdULL, 4, 8), 0xbcULL);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

TEST(BitUtils, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Consecutive inputs should differ in many bits.
    unsigned diff = 0;
    std::uint64_t x = mix64(1) ^ mix64(2);
    while (x) {
        diff += x & 1;
        x >>= 1;
    }
    EXPECT_GT(diff, 16u);
}

TEST(DynBitset, FindNextSet)
{
    DynBitset b(200);
    b.set(3);
    b.set(64);
    b.set(199);
    EXPECT_EQ(b.findNextSet(0), 3u);
    EXPECT_EQ(b.findNextSet(3), 3u);
    EXPECT_EQ(b.findNextSet(4), 64u);
    EXPECT_EQ(b.findNextSet(65), 199u);
    EXPECT_EQ(b.findNextSet(200), DynBitset::npos);
    DynBitset empty(128);
    EXPECT_EQ(empty.findNextSet(0), DynBitset::npos);
}

TEST(DynBitset, ForEachSetWordSkipsEmptyWords)
{
    DynBitset b(256);
    b.set(1);
    b.set(130);
    b.set(131);
    std::vector<std::pair<std::size_t, std::uint64_t>> seen;
    b.forEachSetWord([&](std::size_t base, std::uint64_t word) {
        seen.emplace_back(base, word);
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, 0u);
    EXPECT_EQ(seen[0].second, std::uint64_t{1} << 1);
    EXPECT_EQ(seen[1].first, 128u);
    EXPECT_EQ(seen[1].second, std::uint64_t{3} << 2);
}

TEST(DynBitset, ForEachSetVisitsAscendingIndices)
{
    DynBitset b(300);
    for (std::size_t i : {0u, 63u, 64u, 127u, 191u, 299u})
        b.set(i);
    std::vector<std::size_t> seen;
    bool completed = b.forEachSet([&](std::size_t i) { seen.push_back(i); });
    EXPECT_TRUE(completed);
    EXPECT_EQ(seen,
              (std::vector<std::size_t>{0, 63, 64, 127, 191, 299}));
}

TEST(DynBitset, ForEachSetEarlyExit)
{
    DynBitset b(128);
    for (std::size_t i : {2u, 40u, 70u, 100u})
        b.set(i);
    std::vector<std::size_t> seen;
    bool completed = b.forEachSet([&](std::size_t i) {
        seen.push_back(i);
        return i < 40; // stop after visiting 40
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(seen, (std::vector<std::size_t>{2, 40}));
}

TEST(DynBitset, ForEachSetToleratesClearingVisitedBit)
{
    // The scan iterates a copy of each word, so clearing the bit being
    // visited (what retireWarps does) must not derail it.
    DynBitset b(128);
    for (std::size_t i : {1u, 5u, 64u, 90u})
        b.set(i);
    std::vector<std::size_t> seen;
    b.forEachSet([&](std::size_t i) {
        b.clear(i);
        seen.push_back(i);
    });
    EXPECT_EQ(seen, (std::vector<std::size_t>{1, 5, 64, 90}));
    EXPECT_FALSE(b.any());
}

TEST(BlockAlign, Basics)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(130), 128u);
    EXPECT_EQ(blockIndex(128), 2u);
}

} // namespace
} // namespace mtp
