#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace mtp {
namespace {

TEST(StatSet, AddGetOverwrite)
{
    StatSet s;
    s.add("a.b", 1.0, "first");
    s.add("a.c", 2.0);
    EXPECT_TRUE(s.has("a.b"));
    EXPECT_FALSE(s.has("a.d"));
    EXPECT_DOUBLE_EQ(s.get("a.b"), 1.0);
    EXPECT_DOUBLE_EQ(s.getOr("a.d", -1.0), -1.0);
    s.add("a.b", 5.0); // overwrite keeps position
    EXPECT_DOUBLE_EQ(s.get("a.b"), 5.0);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.entries()[0].name, "a.b");
}

TEST(StatSet, SumMatching)
{
    StatSet s;
    s.add("core0.pref.issued", 3);
    s.add("core1.pref.issued", 4);
    s.add("core1.pref.dropped", 100);
    EXPECT_DOUBLE_EQ(s.sumMatching("core", ".pref.issued"), 7.0);
    EXPECT_DOUBLE_EQ(s.sumMatching("mem", ".pref.issued"), 0.0);
}

TEST(StatSet, Merge)
{
    StatSet a;
    a.add("x", 1);
    StatSet b;
    b.add("y", 2);
    a.merge(b, "sub.");
    EXPECT_DOUBLE_EQ(a.get("sub.y"), 2.0);
    EXPECT_EQ(a.size(), 2u);
}

TEST(StatSet, DumpFormats)
{
    StatSet s;
    s.add("name", 1.5, "desc");
    std::ostringstream text;
    s.dumpText(text);
    EXPECT_NE(text.str().find("name"), std::string::npos);
    EXPECT_NE(text.str().find("desc"), std::string::npos);
    std::ostringstream csv;
    s.dumpCsv(csv);
    EXPECT_NE(csv.str().find("name,1.5"), std::string::npos);
}

TEST(Histogram, BucketsAndSummary)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(5.5, 2);
    h.sample(-1.0);
    h.sample(100.0);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 2u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.minValue(), -1.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 100.0);
    EXPECT_NEAR(h.mean(), (0.5 + 5.5 * 2 - 1.0 + 100.0) / 5.0, 1e-9);
}

TEST(Histogram, ResetAndExport)
{
    Histogram h(0.0, 4.0, 4);
    h.sample(1.0, 3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    h.sample(2.0);
    StatSet s;
    h.exportTo(s, "lat");
    EXPECT_DOUBLE_EQ(s.get("lat.count"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("lat.mean"), 2.0);
}

} // namespace
} // namespace mtp
