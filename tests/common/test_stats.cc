#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <locale>
#include <sstream>

#include "common/stats.hh"
#include "obs/json.hh"

namespace mtp {
namespace {

TEST(StatSet, AddGetOverwrite)
{
    StatSet s;
    s.add("a.b", 1.0, "first");
    s.add("a.c", 2.0);
    EXPECT_TRUE(s.has("a.b"));
    EXPECT_FALSE(s.has("a.d"));
    EXPECT_DOUBLE_EQ(s.get("a.b"), 1.0);
    EXPECT_DOUBLE_EQ(s.getOr("a.d", -1.0), -1.0);
    s.add("a.b", 5.0); // overwrite keeps position
    EXPECT_DOUBLE_EQ(s.get("a.b"), 5.0);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.entries()[0].name, "a.b");
}

TEST(StatSet, SumMatching)
{
    StatSet s;
    s.add("core0.pref.issued", 3);
    s.add("core1.pref.issued", 4);
    s.add("core1.pref.dropped", 100);
    EXPECT_DOUBLE_EQ(s.sumMatching("core", ".pref.issued"), 7.0);
    EXPECT_DOUBLE_EQ(s.sumMatching("mem", ".pref.issued"), 0.0);
}

TEST(StatSet, Merge)
{
    StatSet a;
    a.add("x", 1);
    StatSet b;
    b.add("y", 2);
    a.merge(b, "sub.");
    EXPECT_DOUBLE_EQ(a.get("sub.y"), 2.0);
    EXPECT_EQ(a.size(), 2u);
}

TEST(StatSet, MergePrefixCollisionOverwrites)
{
    StatSet a;
    a.add("sub.y", 1.0, "original");
    StatSet b;
    b.add("y", 2.0, "merged");
    a.merge(b, "sub.");
    // A merge landing on an existing name overwrites in place: same
    // value semantics as add(), position preserved, no duplicate row.
    EXPECT_EQ(a.size(), 1u);
    EXPECT_DOUBLE_EQ(a.get("sub.y"), 2.0);
    EXPECT_EQ(a.entries()[0].desc, "merged");

    // Merging under an empty prefix collides with the bare name too.
    StatSet c;
    c.add("y", 7.0);
    a.merge(c, "sub.");
    EXPECT_EQ(a.size(), 1u);
    EXPECT_DOUBLE_EQ(a.get("sub.y"), 7.0);
    // An empty merged desc keeps the existing one.
    EXPECT_EQ(a.entries()[0].desc, "merged");
}

TEST(StatSet, DumpFormats)
{
    StatSet s;
    s.add("name", 1.5, "desc");
    std::ostringstream text;
    s.dumpText(text);
    EXPECT_NE(text.str().find("name"), std::string::npos);
    EXPECT_NE(text.str().find("desc"), std::string::npos);
    std::ostringstream csv;
    s.dumpCsv(csv);
    EXPECT_NE(csv.str().find("name,1.5"), std::string::npos);
}

TEST(StatSet, DumpCsvEscapesSpecialCharacters)
{
    StatSet s;
    s.add("plain", 1.0, "no escaping needed");
    s.add("commas", 2.0, "a, b, and c");
    s.add("quotes", 3.0, "the \"fast\" loop");
    s.add("newline", 4.0, "line one\nline two");
    std::ostringstream os;
    s.dumpCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name,value,description\n"), std::string::npos);
    EXPECT_NE(out.find("plain,1,no escaping needed\n"),
              std::string::npos);
    EXPECT_NE(out.find("commas,2,\"a, b, and c\"\n"), std::string::npos);
    EXPECT_NE(out.find("quotes,3,\"the \"\"fast\"\" loop\"\n"),
              std::string::npos);
    EXPECT_NE(out.find("newline,4,\"line one\nline two\"\n"),
              std::string::npos);
}

TEST(StatSet, DumpJson)
{
    StatSet s;
    s.add("core0.ipc", 0.5, "instructions per cycle");
    s.add("weird\"name", 1.0, "desc with \\ and \"quotes\"");
    std::ostringstream os;
    s.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"core0.ipc\": {\"value\": 0.5, "
                       "\"desc\": \"instructions per cycle\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"weird\\\"name\""), std::string::npos);
    EXPECT_NE(out.find("\"desc with \\\\ and \\\"quotes\\\"\""),
              std::string::npos);
    // Balanced object syntax, one entry per line.
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out[out.size() - 2], '}');
}

/** A numpunct facet with ',' as the decimal point (like de_DE). */
class CommaDecimal : public std::numpunct<char>
{
  protected:
    char
    do_decimal_point() const override
    {
        return ',';
    }
    std::string
    do_grouping() const override
    {
        return "\3";
    }
    char
    do_thousands_sep() const override
    {
        return '.';
    }
};

/**
 * dumpJson output must be valid JSON regardless of the global locale:
 * number formatting goes through std::to_chars, never operator<<, so a
 * comma-decimal locale cannot corrupt the stream.
 */
TEST(StatSet, DumpJsonIsLocaleIndependent)
{
    StatSet s;
    s.add("frac", 1234567.25, "would print '1.234.567,25' via iostream");
    s.add("tiny", 1e-300);

    std::locale old = std::locale::global(
        std::locale(std::locale::classic(), new CommaDecimal));
    std::ostringstream os;
    os.imbue(std::locale()); // pick up the hostile global locale
    s.dumpJson(os);
    std::locale::global(old);

    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::parseJson(os.str(), v, &err)) << err << "\n"
                                                   << os.str();
    EXPECT_DOUBLE_EQ(v.find("frac")->find("value")->number, 1234567.25);
}

/**
 * Round trip: every double written by dumpJson must parse back to the
 * exact same bits (to_chars emits shortest-exact representations).
 */
TEST(StatSet, DumpJsonRoundTripsExactDoubles)
{
    StatSet s;
    s.add("tenth", 0.1);
    s.add("third", 1.0 / 3.0);
    s.add("huge", 1.7976931348623157e308);
    s.add("tiny", 5e-324); // smallest subnormal
    s.add("negzero", -0.0);
    s.add("int53", 9007199254740993.0);
    s.add("inf", std::numeric_limits<double>::infinity());
    std::ostringstream os;
    s.dumpJson(os);

    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::parseJson(os.str(), v, &err)) << err;
    for (const char *name : {"tenth", "third", "huge", "tiny", "negzero",
                             "int53"}) {
        const obs::JsonValue *entry = v.find(name);
        ASSERT_NE(entry, nullptr) << name;
        EXPECT_EQ(entry->find("value")->number, s.get(name)) << name;
    }
    // Non-finite values have no JSON literal; they are emitted as null
    // so the document stays parseable.
    EXPECT_EQ(v.find("inf")->find("value")->kind,
              obs::JsonValue::Kind::Null);
}

TEST(Histogram, BucketsAndSummary)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(5.5, 2);
    h.sample(-1.0);
    h.sample(100.0);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 2u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.minValue(), -1.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 100.0);
    EXPECT_NEAR(h.mean(), (0.5 + 5.5 * 2 - 1.0 + 100.0) / 5.0, 1e-9);
}

TEST(Histogram, BucketEdgeSemantics)
{
    // [0, 10) in 5 buckets of width 2: [0,2) [2,4) [4,6) [6,8) [8,10).
    Histogram h(0.0, 10.0, 5);

    h.sample(0.0); // exactly lo: first bucket, not underflow
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.underflow(), 0u);

    h.sample(2.0); // exactly on an interior boundary: upper bucket
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);

    h.sample(8.0); // last interior boundary
    EXPECT_EQ(h.bucketCount(3), 0u);
    EXPECT_EQ(h.bucketCount(4), 1u);

    h.sample(10.0); // exactly hi: overflow, not the last bucket
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);

    double below = std::nextafter(0.0, -1.0);
    h.sample(below); // just below lo: underflow
    EXPECT_EQ(h.underflow(), 1u);

    double justUnderHi = std::nextafter(10.0, 0.0);
    h.sample(justUnderHi); // just below hi: last bucket
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_EQ(h.overflow(), 1u);

    EXPECT_EQ(h.count(), 6u);
}

TEST(Histogram, ZeroCountSampleIsIgnored)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(5.0, 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    h.sample(5.0, 3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucketCount(2), 3u);
}

TEST(Histogram, ResetAndExport)
{
    Histogram h(0.0, 4.0, 4);
    h.sample(1.0, 3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    h.sample(2.0);
    StatSet s;
    h.exportTo(s, "lat");
    EXPECT_DOUBLE_EQ(s.get("lat.count"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("lat.mean"), 2.0);
}

} // namespace
} // namespace mtp
