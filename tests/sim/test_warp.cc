#include <gtest/gtest.h>

#include "sim/warp.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

TEST(Warp, AssignInitializesState)
{
    KernelDesc k = test::tinyMpKernel();
    Warp w;
    w.assign(&k, /*gwid=*/10, /*block=*/5);
    EXPECT_TRUE(w.active);
    EXPECT_EQ(w.globalWid, 10u);
    EXPECT_EQ(w.lane0Tid, 10u * warpSize);
    EXPECT_EQ(w.block, 5u);
    EXPECT_EQ(w.outstandingTotal(), 0u);
    EXPECT_FALSE(w.cursor.done());
}

TEST(Warp, ScoreboardBlocksDependents)
{
    KernelDesc k = test::tinyMpKernel();
    Warp w;
    w.assign(&k, 0, 0);
    StaticInst use = StaticInst::compUse(0);
    EXPECT_TRUE(w.depsReady(use));
    w.outstanding[0] = 2;
    EXPECT_FALSE(w.depsReady(use));
    w.outstanding[0] = 0;
    EXPECT_TRUE(w.depsReady(use));
}

TEST(Warp, RelaxedSlotToleratesOneWriter)
{
    KernelDesc k = test::tinyMpKernel();
    Warp w;
    w.assign(&k, 0, 0);
    w.relaxedSlot[3] = true;
    w.outstanding[3] = 1;
    StaticInst use = StaticInst::compUse(3);
    EXPECT_TRUE(w.depsReady(use)); // register-prefetch pipelining
    w.outstanding[3] = 2;
    EXPECT_FALSE(w.depsReady(use));
}

TEST(Warp, RetirableRequiresDoneAndDrained)
{
    KernelDesc k = test::tinyComputeKernel(1, 1, 2);
    Warp w;
    w.assign(&k, 0, 0);
    EXPECT_FALSE(w.retirable()); // not done
    w.cursor.advance();
    w.cursor.advance();
    ASSERT_TRUE(w.cursor.done());
    w.outstanding[2] = 1;
    EXPECT_FALSE(w.retirable()); // load in flight
    w.outstanding[2] = 0;
    EXPECT_TRUE(w.retirable());
}

TEST(Warp, MultipleSourceSlots)
{
    KernelDesc k = test::tinyMpKernel();
    Warp w;
    w.assign(&k, 0, 0);
    StaticInst use = StaticInst::compUse(1, 2);
    w.outstanding[2] = 1;
    EXPECT_FALSE(w.depsReady(use));
    w.outstanding[2] = 0;
    w.outstanding[1] = 1;
    EXPECT_FALSE(w.depsReady(use));
}

} // namespace
} // namespace mtp
