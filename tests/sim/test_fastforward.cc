/**
 * @file
 * Golden-equivalence suite for event-driven cycle skipping: all three
 * scheduler modes — the naive cycle-by-cycle oracle (fastForward =
 * false), the legacy polling fast-forward (fastForward = true,
 * eventQueue = false) and the event-queue schedule (both true, the
 * default) — must be bit-identical in every RunResult field and the
 * full statistics dump, across kernels, prefetcher configurations,
 * throttling, and the scheduler/dispatch ablations. Also
 * regression-tests the O(1) done() counters against the exhaustive
 * scan at every step.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/sw_prefetch.hh"
#include "driver/run_cache.hh"
#include "sim/cycle_accounting.hh"
#include "sim/gpu.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

std::string
dumpStats(const RunResult &r)
{
    std::ostringstream os;
    r.stats.dumpText(os);
    return os.str();
}

void
expectBitIdentical(const RunResult &fast, const RunResult &naive,
                   const std::string &label)
{
    EXPECT_EQ(fast.cycles, naive.cycles) << label;
    EXPECT_EQ(fast.warpInsts, naive.warpInsts) << label;
    EXPECT_EQ(fast.dramBytes, naive.dramBytes) << label;
    EXPECT_EQ(fast.prefFills, naive.prefFills) << label;
    EXPECT_EQ(fast.prefUseful, naive.prefUseful) << label;
    EXPECT_EQ(fast.prefEarlyEvicted, naive.prefEarlyEvicted) << label;
    EXPECT_EQ(fast.prefLate, naive.prefLate) << label;
    EXPECT_EQ(fast.prefCacheHits, naive.prefCacheHits) << label;
    EXPECT_EQ(fast.demandTxns, naive.demandTxns) << label;
    EXPECT_DOUBLE_EQ(fast.cpi, naive.cpi) << label;
    EXPECT_DOUBLE_EQ(fast.avgDemandLatency, naive.avgDemandLatency)
        << label;
    EXPECT_DOUBLE_EQ(fast.avgPrefetchLatency, naive.avgPrefetchLatency)
        << label;
    EXPECT_DOUBLE_EQ(fast.avgActiveWarps, naive.avgActiveWarps) << label;
    // The strongest check: the entire hierarchical stat dump — every
    // counter of every core, channel and prefetch structure — must
    // match byte for byte.
    EXPECT_EQ(dumpStats(fast), dumpStats(naive)) << label;
}

std::vector<std::pair<std::string, KernelDesc>>
goldenKernels()
{
    std::vector<std::pair<std::string, KernelDesc>> kernels;
    kernels.emplace_back("stream", test::tinyStreamKernel(2, 4, 4, 1));
    kernels.emplace_back("stream2", test::tinyStreamKernel(2, 4, 4, 2));
    kernels.emplace_back("mp", test::tinyMpKernel(2, 8));
    kernels.emplace_back("compute", test::tinyComputeKernel());
    kernels.emplace_back(
        "swpref_stride",
        applySwPrefetch(test::tinyStreamKernel(2, 4, 6, 1),
                        SwPrefKind::Stride, SwPrefetchOptions{}));
    kernels.emplace_back(
        "swpref_mtswp",
        applySwPrefetch(test::tinyStreamKernel(2, 4, 6, 1),
                        SwPrefKind::StrideIP, SwPrefetchOptions{}));
    return kernels;
}

std::vector<std::pair<std::string, SimConfig>>
goldenConfigs()
{
    std::vector<std::pair<std::string, SimConfig>> configs;

    configs.emplace_back("baseline", test::tinyConfig());

    SimConfig mthwp = test::tinyConfig();
    mthwp.hwPref = HwPrefKind::MTHWP;
    configs.emplace_back("mthwp", mthwp);

    SimConfig throttled = test::tinyConfig();
    throttled.hwPref = HwPrefKind::MTHWP;
    throttled.throttleEnable = true;
    throttled.throttlePeriod = 500;
    configs.emplace_back("mthwp_throttle", throttled);

    SimConfig late = test::tinyConfig();
    late.hwPref = HwPrefKind::StridePC;
    late.stridePcLateThrottle = true;
    late.throttlePeriod = 500;
    configs.emplace_back("stridepc_late", late);

    SimConfig ghb = test::tinyConfig();
    ghb.hwPref = HwPrefKind::GHB;
    ghb.ghbFeedback = true;
    ghb.throttlePeriod = 500;
    configs.emplace_back("ghb_feedback", ghb);

    SimConfig ablation = test::tinyConfig();
    ablation.schedGreedy = false;
    ablation.dispatchContiguous = false;
    configs.emplace_back("rr_sched_dispatch", ablation);

    SimConfig perfect = test::tinyConfig();
    perfect.perfectMemory = true;
    configs.emplace_back("perfect_memory", perfect);

    return configs;
}

/**
 * The full golden matrix: every kernel under every configuration must
 * produce byte-identical results in all three scheduler modes — the
 * naive oracle, the legacy polling fast-forward, and the event-queue
 * schedule.
 */
TEST(FastForwardGolden, MatrixIdentical)
{
    for (const auto &[cname, cfg] : goldenConfigs()) {
        for (const auto &[kname, kernel] : goldenKernels()) {
            SimConfig naive = cfg;
            naive.fastForward = false;
            SimConfig legacy = cfg;
            legacy.fastForward = true;
            legacy.eventQueue = false;
            SimConfig queued = cfg;
            queued.fastForward = true;
            queued.eventQueue = true;
            RunResult oracle = simulate(naive, kernel);
            expectBitIdentical(simulate(legacy, kernel), oracle,
                               cname + "/" + kname + "/legacy");
            expectBitIdentical(simulate(queued, kernel), oracle,
                               cname + "/" + kname + "/queued");
        }
    }
}

/**
 * Epoch-sharded golden matrix (DESIGN.md §10): every configuration and
 * kernel of the golden matrix must reproduce the serial shards=1 run
 * byte for byte at shards = 2 and 4. The machine is widened to 5 cores
 * and 3 DRAM channels so four shards get ragged partitions — unequal
 * core counts and a shard that owns no channel at all — which is where
 * partition or mailbox-routing bugs would surface.
 */
TEST(FastForwardGolden, ShardedMatrixIdentical)
{
    for (const auto &[cname, base] : goldenConfigs()) {
        SimConfig cfg = base;
        cfg.numCores = 5;
        cfg.dramChannels = 3;
        for (const auto &[kname, kernel] : goldenKernels()) {
            RunResult serial = simulate(cfg, kernel);
            for (unsigned s : {2u, 4u}) {
                SimConfig sharded = cfg;
                sharded.shards = s;
                expectBitIdentical(simulate(sharded, kernel), serial,
                                   cname + "/" + kname + "/shards=" +
                                       std::to_string(s));
            }
        }
    }
}

/**
 * Requesting more shards than cores must clamp (two cores cannot feed
 * eight workers) and still reproduce the serial run byte for byte.
 */
TEST(FastForwardGolden, ShardsClampToCoreCount)
{
    KernelDesc kernel = test::tinyStreamKernel(2, 4, 4, 1);
    SimConfig cfg = test::tinyConfig();
    RunResult serial = simulate(cfg, kernel);
    SimConfig oversharded = cfg;
    oversharded.shards = 8;
    RunResult r = simulate(oversharded, kernel);
    expectBitIdentical(r, serial, "shards=8 on 2 cores");
    EXPECT_DOUBLE_EQ(r.sched.get("sim.sched.shards"), 2.0);
}

/**
 * Cycle accounting across the matrix: the nine exclusive categories of
 * every core must sum to the elapsed cycles in every configuration
 * (MatrixIdentical already proves fast == naive byte-for-byte on the
 * same stats; this pins the accounting identity itself).
 */
TEST(FastForwardGolden, MatrixCycleAccountingComplete)
{
    for (const auto &[cname, cfg] : goldenConfigs()) {
        for (const auto &[kname, kernel] : goldenKernels()) {
            RunResult r = simulate(cfg, kernel);
            std::string label = cname + "/" + kname;
            for (unsigned c = 0; c < cfg.numCores; ++c) {
                std::string p = "core" + std::to_string(c) + ".cycles.";
                double sum = 0.0;
                for (unsigned k = 0; k < numCycleCats; ++k)
                    sum += r.stats.get(
                        p + cycleCatName(static_cast<CycleCat>(k)));
                EXPECT_DOUBLE_EQ(sum, static_cast<double>(r.cycles))
                    << label << ": core " << c;
                EXPECT_DOUBLE_EQ(r.stats.get(p + "total"),
                                 static_cast<double>(r.cycles))
                    << label << ": core " << c;
            }
        }
    }
}

/**
 * Throttle periods that are not multiples of the sampling window (128)
 * force skips to stop exactly at observable period boundaries; an
 * off-by-one there shifts every subsequent throttle decision.
 */
TEST(FastForwardGolden, ThrottlePeriodBoundaries)
{
    KernelDesc kernel = test::tinyStreamKernel(2, 6, 8, 2);
    for (Cycle period : {137u, 500u, 777u, 2000u}) {
        SimConfig cfg = test::tinyConfig();
        cfg.hwPref = HwPrefKind::MTHWP;
        cfg.throttleEnable = true;
        cfg.throttlePeriod = period;
        SimConfig naive = cfg;
        naive.fastForward = false;
        SimConfig legacy = cfg;
        legacy.eventQueue = false;
        RunResult oracle = simulate(naive, kernel);
        expectBitIdentical(simulate(legacy, kernel), oracle,
                           "legacy period=" + std::to_string(period));
        expectBitIdentical(simulate(cfg, kernel), oracle,
                           "queued period=" + std::to_string(period));
    }
}

/**
 * The counter-based done() must agree with the exhaustive scan after
 * every single step of a naive run (the scan is the definition).
 */
TEST(DoneCounter, MatchesExhaustiveScanEveryStep)
{
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    Gpu gpu(cfg, test::tinyStreamKernel(2, 4, 4, 2));
    std::size_t steps = 0;
    while (!gpu.doneScan()) {
        EXPECT_EQ(gpu.done(), gpu.doneScan()) << "cycle " << gpu.now();
        gpu.step();
        ASSERT_LT(++steps, 1'000'000u) << "runaway simulation";
    }
    EXPECT_TRUE(gpu.done());
}

/** Same regression under the round-robin dispatch ablation. */
TEST(DoneCounter, MatchesExhaustiveScanRrDispatch)
{
    SimConfig cfg = test::tinyConfig();
    cfg.dispatchContiguous = false;
    cfg.schedGreedy = false;
    Gpu gpu(cfg, test::tinyMpKernel(2, 8));
    std::size_t steps = 0;
    while (!gpu.doneScan()) {
        EXPECT_EQ(gpu.done(), gpu.doneScan()) << "cycle " << gpu.now();
        gpu.step();
        ASSERT_LT(++steps, 1'000'000u) << "runaway simulation";
    }
    EXPECT_TRUE(gpu.done());
}

/**
 * fastForward and eventQueue feed the config dump and hence the
 * RunCache fingerprint: oracle, legacy and queued runs must be
 * distinct cache entries that agree on results. Run under the parallel
 * driver so the TSan build exercises the new counters across worker
 * threads.
 */
TEST(FastForwardGolden, DriverMatrixUnderParallelExecutor)
{
    std::vector<KernelDesc> kernels = {
        test::tinyStreamKernel(2, 6, 4),
        test::tinyMpKernel(2, 8),
    };
    SimConfig queued = test::tinyConfig();
    queued.hwPref = HwPrefKind::MTHWP;
    SimConfig legacy = queued;
    legacy.eventQueue = false;
    SimConfig naive = queued;
    naive.fastForward = false;

    driver::ParallelExecutor exec(4);
    driver::RunCache cache(exec);
    for (const auto &k : kernels) {
        cache.submit(queued, k);
        cache.submit(legacy, k);
        cache.submit(naive, k);
    }
    EXPECT_EQ(cache.misses(), 6u);
    for (const auto &k : kernels) {
        expectBitIdentical(cache.result(legacy, k),
                           cache.result(naive, k), k.name + "/legacy");
        expectBitIdentical(cache.result(queued, k),
                           cache.result(naive, k), k.name + "/queued");
    }
}

} // namespace
} // namespace mtp
