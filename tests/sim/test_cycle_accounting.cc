/**
 * @file
 * Cycle-accounting tests (DESIGN.md §9): every core cycle lands in
 * exactly one category, the categories reconcile with issueCycles and
 * the per-warp tallies, pressure scenarios are attributed to the right
 * category, fast-forwarded attribution matches the naive loop, and the
 * sampler exposes the breakdown as per-period fractions that sum to 1.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sw_prefetch.hh"
#include "obs/observer.hh"
#include "sim/cycle_accounting.hh"
#include "sim/gpu.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

double
catStat(const RunResult &r, unsigned core, CycleCat cat)
{
    return r.stats.get("core" + std::to_string(core) + ".cycles." +
                       cycleCatName(cat));
}

/** Invariants every run must satisfy, checked from the stat dump. */
void
expectAccountingInvariants(const RunResult &r, unsigned numCores,
                           const std::string &label)
{
    double issued_total = 0.0;
    for (unsigned c = 0; c < numCores; ++c) {
        std::string p = "core" + std::to_string(c);
        double sum = 0.0;
        for (unsigned k = 0; k < numCycleCats; ++k)
            sum += catStat(r, c, static_cast<CycleCat>(k));
        EXPECT_DOUBLE_EQ(sum, static_cast<double>(r.cycles))
            << label << ": core " << c
            << " categories do not sum to elapsed cycles";
        EXPECT_DOUBLE_EQ(r.stats.get(p + ".cycles.total"),
                         static_cast<double>(r.cycles))
            << label << ": core " << c;
        // Per-warp issue tallies partition the Issued category.
        double warp_issued = 0.0;
        for (unsigned w = 0;; ++w) {
            std::string wp = p + ".warp" + std::to_string(w);
            if (!r.stats.has(wp + ".issuedCycles"))
                break;
            warp_issued += r.stats.get(wp + ".issuedCycles");
        }
        EXPECT_DOUBLE_EQ(warp_issued, catStat(r, c, CycleCat::Issued))
            << label << ": core " << c;
        issued_total += catStat(r, c, CycleCat::Issued);
    }
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.issued"), issued_total)
        << label;
    // Issued cycles are issue cycles: one instruction per cycle, so
    // the per-core warpInsts total matches the Issued category.
    double warp_insts = 0.0;
    for (unsigned c = 0; c < numCores; ++c)
        warp_insts +=
            r.stats.get("core" + std::to_string(c) + ".warpInsts");
    EXPECT_DOUBLE_EQ(issued_total, warp_insts) << label;
}

TEST(CycleAccounting, InvariantsHoldAcrossKernels)
{
    SimConfig cfg = test::tinyConfig();
    std::vector<KernelDesc> kernels = {
        test::tinyStreamKernel(2, 4, 4, 1),
        test::tinyMpKernel(2, 8),
        test::tinyComputeKernel(),
    };
    for (const auto &kernel : kernels) {
        RunResult r = simulate(cfg, kernel);
        expectAccountingInvariants(r, cfg.numCores, kernel.name);
    }
}

TEST(CycleAccounting, ComputeKernelNeverBlamesMemory)
{
    SimConfig cfg = test::tinyConfig();
    RunResult r = simulate(cfg, test::tinyComputeKernel());
    EXPECT_GT(r.stats.get("sim.cycles.issued"), 0.0);
    EXPECT_GT(r.stats.get("sim.cycles.stallExecBusy"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.stallMem"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.stallMshrFull"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.stallIcnt"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.stallFetchBranch"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.throttleInhibited"), 0.0);
}

TEST(CycleAccounting, StreamKernelStallsOnMemoryAndBranches)
{
    SimConfig cfg = test::tinyConfig();
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 4, 8, 1));
    EXPECT_GT(r.stats.get("sim.cycles.stallMem"), 0.0);
    EXPECT_GT(r.stats.get("sim.cycles.stallFetchBranch"), 0.0);
    EXPECT_GT(r.stats.get("sim.cycles.idleNoWarps"), 0.0);
}

TEST(CycleAccounting, PerfectMemoryHasNoMemoryStalls)
{
    SimConfig cfg = test::tinyConfig();
    cfg.perfectMemory = true;
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 4, 8, 1));
    expectAccountingInvariants(r, cfg.numCores, "perfect_memory");
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.stallMem"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.stallMshrFull"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("sim.cycles.stallIcnt"), 0.0);
}

TEST(CycleAccounting, MshrPressureAttributedToMshrFull)
{
    SimConfig cfg = test::tinyConfig();
    cfg.mshrEntries = 2;
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 4, 8, 2));
    expectAccountingInvariants(r, cfg.numCores, "mshr_pressure");
    EXPECT_GT(r.stats.get("sim.cycles.stallMshrFull"), 0.0);
}

TEST(CycleAccounting, MrqPressureAttributedToIcntBackpressure)
{
    SimConfig cfg = test::tinyConfig();
    cfg.mrqEntries = 1;
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 4, 8, 2));
    expectAccountingInvariants(r, cfg.numCores, "mrq_pressure");
    EXPECT_GT(r.stats.get("sim.cycles.stallIcnt"), 0.0);
    // The MRQs saw the same gated cycles the LSU retried through.
    EXPECT_GT(r.stats.sumMatching("mem", ".gatedStalls"), 0.0);
}

TEST(CycleAccounting, SwPrefetchTxnsAttributedToThrottleInhibited)
{
    SimConfig cfg = test::tinyConfig();
    KernelDesc kernel =
        applySwPrefetch(test::tinyStreamKernel(2, 4, 8, 1),
                        SwPrefKind::Stride, SwPrefetchOptions{});
    RunResult r = simulate(cfg, kernel);
    expectAccountingInvariants(r, cfg.numCores, "swpref");
    EXPECT_GT(r.stats.get("sim.cycles.throttleInhibited"), 0.0);
}

/**
 * Pressure configurations exercise the LSU-retry categories, which
 * only occur in stepped cycles — the fast-forwarded run must attribute
 * them identically to the naive loop, per core and per category.
 */
TEST(CycleAccounting, FastForwardAttributionMatchesNaive)
{
    std::vector<std::pair<std::string, SimConfig>> configs;
    configs.emplace_back("tiny", test::tinyConfig());
    SimConfig mshr = test::tinyConfig();
    mshr.mshrEntries = 2;
    configs.emplace_back("mshr2", mshr);
    SimConfig mrq = test::tinyConfig();
    mrq.mrqEntries = 1;
    configs.emplace_back("mrq1", mrq);

    KernelDesc kernel = test::tinyStreamKernel(2, 4, 8, 2);
    for (const auto &[name, cfg] : configs) {
        SimConfig naive_cfg = cfg;
        naive_cfg.fastForward = false;
        RunResult fast = simulate(cfg, kernel);
        RunResult naive = simulate(naive_cfg, kernel);
        ASSERT_EQ(fast.cycles, naive.cycles) << name;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            for (unsigned k = 0; k < numCycleCats; ++k) {
                auto cat = static_cast<CycleCat>(k);
                EXPECT_DOUBLE_EQ(catStat(fast, c, cat),
                                 catStat(naive, c, cat))
                    << name << ": core " << c << " "
                    << cycleCatName(cat);
            }
        }
    }
}

/**
 * The sampled breakdown probes are per-period fractions of the nine
 * exclusive categories, so each sampled row sums to 1 (the first row
 * also covers cycle 0, hence (period + 1) / period).
 */
TEST(CycleAccounting, SampledFractionsSumToOne)
{
    obs::ObsConfig ocfg;
    ocfg.samplePeriod = 100;
    obs::Observer observer(ocfg);
    obs::CaptureSink *cap = observer.addCapture();
    SimConfig cfg = test::tinyConfig();
    Gpu gpu(cfg, test::tinyStreamKernel(2, 4, 8, 1), &observer);
    gpu.run();

    std::vector<int> cols;
    for (unsigned k = 0; k < numCycleCats; ++k) {
        int idx = cap->column(std::string("core0.cycles.") +
                              cycleCatName(static_cast<CycleCat>(k)));
        ASSERT_GE(idx, 0) << cycleCatName(static_cast<CycleCat>(k));
        cols.push_back(idx);
    }
    ASSERT_GE(cap->samples.size(), 2u);
    for (std::size_t row = 0; row < cap->samples.size(); ++row) {
        double sum = 0.0;
        for (int idx : cols)
            sum += cap->samples[row].values[static_cast<unsigned>(idx)];
        double expect =
            row == 0 ? (100.0 + 1.0) / 100.0 : 1.0; // first row quirk
        EXPECT_NEAR(sum, expect, 1e-9) << "sample row " << row;
    }
}

} // namespace
} // namespace mtp
