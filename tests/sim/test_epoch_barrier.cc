/**
 * @file
 * Unit tests for the epoch-barrier protocol behind sharded execution
 * (DESIGN.md §10): the EpochBarrier rendezvous itself (command
 * ordering, happens-before visibility, wait accounting) and the
 * sharded run loop's observable contract — the joint cross-shard
 * horizon reproduces the serial schedule stepped cycle for stepped
 * cycle, and the deferred-upgrade mailboxes drain in the serial
 * chronological order (anything else would leak into the statistics).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch_barrier.hh"
#include "sim/gpu.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

/**
 * Commands reach every worker exactly once, in release order, and
 * awaitAll() really is a rendezvous: after it returns, every worker
 * has recorded the command of the current epoch.
 */
TEST(EpochBarrier, CommandsArriveInOrderToAllWorkers)
{
    constexpr unsigned kWorkers = 3;
    constexpr std::uint64_t kExit = ~0ULL;
    EpochBarrier barrier(kWorkers);
    std::vector<std::vector<std::uint64_t>> seen(kWorkers);

    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            for (;;) {
                std::uint64_t cmd = barrier.awaitCommand(w);
                if (cmd == kExit)
                    return; // mirror the Gpu: exit without arriving
                seen[w].push_back(cmd);
                barrier.arrive(w);
            }
        });
    }

    constexpr std::uint64_t kEpochs = 200;
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
        std::uint64_t cmd = (e << 2) | (e & 1);
        barrier.release(cmd);
        barrier.awaitAll();
        for (unsigned w = 0; w < kWorkers; ++w) {
            // The rendezvous guarantee: the worker is done with this
            // epoch's command, and its log is plainly readable here.
            ASSERT_EQ(seen[w].size(), e + 1) << "worker " << w;
            EXPECT_EQ(seen[w].back(), cmd) << "worker " << w;
        }
    }
    barrier.release(kExit);
    for (auto &t : workers)
        t.join();
    for (unsigned w = 0; w < kWorkers; ++w)
        EXPECT_EQ(seen[w].size(), kEpochs);
}

/**
 * The release()/awaitAll() pair is a full fence: plain (non-atomic)
 * state written by workers inside an epoch is visible to the
 * coordinator after awaitAll(), and coordinator writes between epochs
 * are visible to workers after awaitCommand(). A TSan build of this
 * test doubles as the data-race proof for the pattern the sharded run
 * loop relies on.
 */
TEST(EpochBarrier, RendezvousPublishesPlainWrites)
{
    constexpr unsigned kWorkers = 4;
    constexpr std::uint64_t kExit = ~0ULL;
    EpochBarrier barrier(kWorkers);
    // Plain values, deliberately not atomic.
    std::vector<std::uint64_t> input(kWorkers, 0);
    std::vector<std::uint64_t> output(kWorkers, 0);

    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            for (;;) {
                std::uint64_t cmd = barrier.awaitCommand(w);
                if (cmd == kExit)
                    return;
                output[w] = input[w] * 2 + cmd;
                barrier.arrive(w);
            }
        });
    }
    for (std::uint64_t e = 1; e <= 64; ++e) {
        for (unsigned w = 0; w < kWorkers; ++w)
            input[w] = e * 100 + w;
        barrier.release(e);
        barrier.awaitAll();
        for (unsigned w = 0; w < kWorkers; ++w)
            EXPECT_EQ(output[w], (e * 100 + w) * 2 + e);
    }
    barrier.release(kExit);
    for (auto &t : workers)
        t.join();
}

/**
 * Blocked time is accounted: a worker that arrives late charges the
 * coordinator's awaitAll(), and a late coordinator charges the
 * worker's awaitCommand() slot.
 */
TEST(EpochBarrier, WaitTimeIsAccounted)
{
    EpochBarrier barrier(1);
    std::thread worker([&] {
        std::uint64_t cmd = barrier.awaitCommand(0);
        EXPECT_EQ(cmd, 7u);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        barrier.arrive(0);
    });
    // Let the worker reach awaitCommand() and block there, so its
    // wait-time slot sees a real delay.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(barrier.coordinatorWaitNs(), 0u);
    barrier.release(7);
    barrier.awaitAll(); // the worker sleeps 5 ms before arriving
    worker.join();
    EXPECT_GT(barrier.coordinatorWaitNs(), 0u);
    EXPECT_GT(barrier.workerWaitNs(0), 0u);
}

/**
 * Horizon math: the joint cross-shard horizon must reproduce the
 * serial event-queue schedule exactly — the same set of stepped
 * cycles and the same core ticks, not merely the same end state. Any
 * over- or under-shoot in the min-across-shards skip shows up here.
 */
TEST(ShardedRun, JointHorizonReproducesSerialSchedule)
{
    SimConfig cfg = test::tinyConfig();
    cfg.numCores = 5;
    cfg.dramChannels = 3;
    cfg.hwPref = HwPrefKind::MTHWP;
    KernelDesc kernel = test::tinyStreamKernel(4, 10, 4, 2);
    RunResult serial = simulate(cfg, kernel);
    for (unsigned s : {2u, 4u}) {
        SimConfig sharded = cfg;
        sharded.shards = s;
        RunResult r = simulate(sharded, kernel);
        std::string label = "shards=" + std::to_string(s);
        EXPECT_EQ(r.cycles, serial.cycles) << label;
        for (const char *key :
             {"sim.sched.cyclesStepped", "sim.sched.cyclesSkipped",
              "sim.sched.coreTicks", "sim.sched.coreTicksElided"}) {
            EXPECT_DOUBLE_EQ(r.sched.get(key), serial.sched.get(key))
                << label << ": " << key;
        }
    }
}

/**
 * Epoch accounting: one epoch per coordinator iteration, so the epoch
 * lengths telescope to the run's total cycles, and the sched StatSet
 * carries per-shard barrier wait slots.
 */
TEST(ShardedRun, BarrierStatsAreConsistent)
{
    SimConfig cfg = test::tinyConfig();
    cfg.numCores = 5;
    cfg.dramChannels = 3;
    cfg.shards = 4;
    RunResult r = simulate(cfg, test::tinyStreamKernel(4, 10, 4, 1));
    EXPECT_DOUBLE_EQ(r.sched.get("sim.sched.shards"), 4.0);
    double epochs = r.sched.get("sim.sched.barrierEpochs");
    double mean = r.sched.get("sim.sched.barrierEpochCyclesMean");
    double maxLen = r.sched.get("sim.sched.barrierEpochCyclesMax");
    EXPECT_GT(epochs, 0.0);
    EXPECT_GE(mean, 1.0);
    EXPECT_GE(maxLen, mean);
    EXPECT_LE(maxLen, static_cast<double>(r.cycles));
    // Epochs start where the previous one ended: lengths sum to the
    // final cycle count.
    EXPECT_NEAR(mean * epochs, static_cast<double>(r.cycles),
                1e-6 * static_cast<double>(r.cycles));
    // One wait slot per worker (shards - 1) plus the coordinator; the
    // values are wall-clock and may legitimately be zero.
    EXPECT_GE(r.sched.get("sim.sched.barrierWaitNs.coordinator"), 0.0);
    for (unsigned s = 1; s < 4; ++s)
        EXPECT_GE(r.sched.get("sim.sched.barrierWaitNs.shard" +
                              std::to_string(s)),
                  0.0);
}

/**
 * Mailbox drain order: MT-HWP with throttling exercises the
 * upgrade-to-demand path, whose sharded form defers cross-channel
 * upgrades into per-core mailboxes drained in ascending core order —
 * the serial chronological order. Odd shard counts make the
 * core/channel partitions maximally ragged (including a shard with no
 * DRAM channel), so a routing or ordering slip diverges the stats.
 */
TEST(ShardedRun, DeferredUpgradeMailboxesPreserveOrder)
{
    SimConfig cfg = test::tinyConfig();
    cfg.numCores = 5;
    cfg.dramChannels = 3;
    cfg.hwPref = HwPrefKind::MTHWP;
    cfg.throttleEnable = true;
    cfg.throttlePeriod = 500;
    KernelDesc kernel = test::tinyMpKernel(4, 10);
    RunResult serial = simulate(cfg, kernel);
    std::ostringstream serialDump;
    serial.stats.dumpText(serialDump);
    for (unsigned s : {3u, 5u}) {
        SimConfig sharded = cfg;
        sharded.shards = s;
        RunResult r = simulate(sharded, kernel);
        std::ostringstream dump;
        r.stats.dumpText(dump);
        EXPECT_EQ(dump.str(), serialDump.str())
            << "shards=" << s << " diverged from serial";
    }
}

} // namespace
} // namespace mtp
