#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

TEST(Gpu, ComputeOnlyKernelCpiNearIssueFloor)
{
    // With no memory instructions, CPI approaches the 4-cycle SIMD
    // occupancy of a 32-thread warp on 8-wide units (Table III PMEM).
    SimConfig cfg = test::tinyConfig();
    RunResult r = simulate(cfg, test::tinyComputeKernel(2, 8, 64));
    EXPECT_GT(r.cpi, 3.9);
    EXPECT_LT(r.cpi, 5.0);
    EXPECT_EQ(r.warpInsts, 8u * 2 * 64);
}

TEST(Gpu, PerfectMemoryMatchesComputeBound)
{
    SimConfig cfg = test::tinyConfig();
    cfg.perfectMemory = true;
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 8, 8, 2));
    EXPECT_LT(r.cpi, 6.0);
    EXPECT_EQ(r.prefFills, 0u);
    EXPECT_EQ(r.demandTxns, 0u); // no memory traffic at all
}

TEST(Gpu, RealMemorySlowerThanPerfect)
{
    SimConfig cfg = test::tinyConfig();
    KernelDesc k = test::tinyStreamKernel(2, 8, 8, 2);
    RunResult real = simulate(cfg, k);
    SimConfig pcfg = cfg;
    pcfg.perfectMemory = true;
    RunResult perfect = simulate(pcfg, k);
    EXPECT_GT(real.cycles, perfect.cycles);
    EXPECT_GT(real.avgDemandLatency, 2.0 * cfg.icntLatency);
}

TEST(Gpu, AllWarpsAndBlocksComplete)
{
    SimConfig cfg = test::tinyConfig();
    Gpu gpu(cfg, test::tinyMpKernel(2, 10));
    RunResult r = gpu.run();
    double blocks = r.stats.sumMatching("core", ".blocksCompleted");
    double warps = r.stats.sumMatching("core", ".warpsCompleted");
    EXPECT_DOUBLE_EQ(blocks, 10.0);
    EXPECT_DOUBLE_EQ(warps, 20.0);
    EXPECT_TRUE(gpu.done());
}

TEST(Gpu, DeterministicAcrossRuns)
{
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    cfg.throttleEnable = true;
    KernelDesc k = test::tinyStreamKernel(2, 12, 6, 2);
    RunResult a = simulate(cfg, k);
    RunResult b = simulate(cfg, k);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.warpInsts, b.warpInsts);
    EXPECT_EQ(a.prefFills, b.prefFills);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
}

TEST(Gpu, ContiguousBlockPartitioning)
{
    // With 2 cores and 10 blocks, each core runs 5 consecutive blocks;
    // both cores make progress from cycle 0.
    SimConfig cfg = test::tinyConfig();
    Gpu gpu(cfg, test::tinyMpKernel(2, 10));
    for (int i = 0; i < 50; ++i)
        gpu.step();
    EXPECT_GT(gpu.core(0).activeWarps(), 0u);
    EXPECT_GT(gpu.core(1).activeWarps(), 0u);
}

TEST(Gpu, OccupancyLimitRespected)
{
    SimConfig cfg = test::tinyConfig();
    KernelDesc k = test::tinyMpKernel(2, 64);
    k.maxBlocksPerCore = 2;
    Gpu gpu(cfg, k);
    for (int i = 0; i < 200; ++i) {
        gpu.step();
        EXPECT_LE(gpu.core(0).activeWarps(), 2u * k.warpsPerBlock);
        EXPECT_LE(gpu.core(0).maxActiveWarps(), 2u * k.warpsPerBlock);
    }
}

TEST(Gpu, RoundRobinDispatchAblationConservesWork)
{
    SimConfig cfg = test::tinyConfig();
    cfg.dispatchContiguous = false;
    KernelDesc k = test::tinyMpKernel(2, 10);
    RunResult r = simulate(cfg, k);
    EXPECT_EQ(r.warpInsts, k.warpInstsPerWarp() * k.totalWarps());
    double blocks = r.stats.sumMatching("core", ".blocksCompleted");
    EXPECT_DOUBLE_EQ(blocks, 10.0);
    EXPECT_EQ(simulate(cfg, k).cycles, r.cycles); // still deterministic
}

TEST(Gpu, RoundRobinSchedulingAblationConservesWork)
{
    SimConfig cfg = test::tinyConfig();
    cfg.schedGreedy = false;
    KernelDesc k = test::tinyStreamKernel(2, 8, 6, 2);
    RunResult r = simulate(cfg, k);
    EXPECT_EQ(r.warpInsts, k.warpInstsPerWarp() * k.totalWarps());
    EXPECT_EQ(simulate(cfg, k).cycles, r.cycles);
}

TEST(Gpu, MoreCoresRunFaster)
{
    KernelDesc k = test::tinyMpKernel(2, 32);
    SimConfig two = test::tinyConfig();
    SimConfig four = test::tinyConfig();
    four.numCores = 4;
    EXPECT_LT(simulate(four, k).cycles, simulate(two, k).cycles);
}

TEST(Gpu, StatsContainCoreAndMemoryHierarchy)
{
    SimConfig cfg = test::tinyConfig();
    RunResult r = simulate(cfg, test::tinyMpKernel());
    EXPECT_TRUE(r.stats.has("sim.cycles"));
    EXPECT_TRUE(r.stats.has("sim.cpi"));
    EXPECT_TRUE(r.stats.has("core0.warpInsts"));
    EXPECT_TRUE(r.stats.has("core1.mshr.totalRequests"));
    EXPECT_TRUE(r.stats.has("mem.dram0.reads"));
    EXPECT_TRUE(r.stats.has("mem.dramBytes"));
    // The latency histogram agrees with the scalar counters.
    double hist_count = r.stats.sumMatching("core",
                                            ".demandLatency.count");
    double demand_count = r.stats.sumMatching("core", ".demandTxns");
    EXPECT_GT(hist_count, 0.0);
    EXPECT_LE(hist_count, demand_count);
    EXPECT_GT(r.stats.get("core0.demandLatency.mean"), 0.0);
}

TEST(RunResult, DerivedMetrics)
{
    RunResult r;
    r.prefFills = 100;
    r.prefUseful = 60;
    r.prefEarlyEvicted = 20;
    r.prefLate = 10;
    r.prefCacheHits = 50;
    r.demandTxns = 150;
    EXPECT_DOUBLE_EQ(r.accuracy(), 0.6);
    EXPECT_DOUBLE_EQ(r.earlyRatio(), 0.2);
    EXPECT_DOUBLE_EQ(r.lateRatio(), 0.1);
    EXPECT_DOUBLE_EQ(r.prefCoverage(), 0.25);
}

} // namespace
} // namespace mtp
