/**
 * @file
 * Unit tests for the event-queue scheduling primitives: the indexed
 * priority structure (lazily cached minimum vs. a naive scan oracle)
 * and the capped skip backoff policy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace mtp {
namespace {

Cycle
naiveMin(const EventQueue &q)
{
    Cycle m = invalidCycle;
    for (std::size_t i = 0; i < q.size(); ++i)
        m = std::min(m, q.key(i));
    return m;
}

TEST(EventQueue, ResetArmsEverythingAtZero)
{
    EventQueue q;
    q.reset(5);
    EXPECT_EQ(q.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(q.key(i), 0u);
    EXPECT_EQ(q.earliest(), 0u);
    EXPECT_EQ(q.pushes(), 0u);
    EXPECT_EQ(q.pops(), 0u);
}

TEST(EventQueue, ArmMovesKeysAndTracksMinimum)
{
    EventQueue q;
    q.reset(3);
    q.arm(0, 10);
    q.arm(1, 5);
    q.arm(2, 7);
    EXPECT_EQ(q.earliest(), 5u);
    // Move the minimum later: the cached min must be rescanned.
    q.arm(1, 20);
    EXPECT_EQ(q.earliest(), 7u);
    // Move a non-minimum later: no effect on the minimum.
    q.arm(0, 30);
    EXPECT_EQ(q.earliest(), 7u);
    // Move below the minimum: tracked without a rescan.
    q.arm(0, 2);
    EXPECT_EQ(q.earliest(), 2u);
}

TEST(EventQueue, ArmEarlierNeverMovesKeysLater)
{
    EventQueue q;
    q.reset(2);
    q.arm(0, 10);
    q.armEarlier(0, 15);
    EXPECT_EQ(q.key(0), 10u);
    q.armEarlier(0, 4);
    EXPECT_EQ(q.key(0), 4u);
    EXPECT_EQ(q.earliest(), 0u); // id 1 still armed at reset's 0
}

TEST(EventQueue, ParkedComponentsUseInvalidCycle)
{
    EventQueue q;
    q.reset(2);
    q.arm(0, invalidCycle);
    q.arm(1, invalidCycle);
    EXPECT_EQ(q.earliest(), invalidCycle);
    q.arm(1, 42);
    EXPECT_EQ(q.earliest(), 42u);
}

TEST(EventQueue, MatchesNaiveMinOverOpSequence)
{
    // Deterministic pseudo-random op sequence: after every arm, the
    // cached earliest() must equal an exhaustive scan of the keys.
    EventQueue q;
    const std::size_t n = 8;
    q.reset(n);
    std::uint64_t state = 12345;
    for (int op = 0; op < 2000; ++op) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        std::size_t id = (state >> 33) % n;
        Cycle at = (state >> 40) & 0xff;
        if (((state >> 20) & 7) == 0)
            at = invalidCycle; // occasionally park
        if (state & 1)
            q.arm(id, at);
        else
            q.armEarlier(id, at);
        ASSERT_EQ(q.earliest(), naiveMin(q)) << "op " << op;
    }
}

TEST(EventQueue, CountsPushesAndPops)
{
    EventQueue q;
    q.reset(2);
    q.arm(0, 5);
    q.arm(0, 5); // no-op: key unchanged
    q.arm(1, 9);
    EXPECT_EQ(q.pushes(), 2u);
    q.notePop();
    q.notePop();
    EXPECT_EQ(q.pops(), 2u);
    q.reset(2);
    EXPECT_EQ(q.pushes(), 0u);
    EXPECT_EQ(q.pops(), 0u);
}

TEST(SkipBackoff, PausesGrowExponentiallyUpToCap)
{
    SkipBackoff b;
    EXPECT_TRUE(b.shouldAttempt());
    std::vector<unsigned> pauses;
    for (int i = 0; i < 6; ++i) {
        b.noteFailure();
        pauses.push_back(b.pause());
    }
    EXPECT_EQ(pauses, (std::vector<unsigned>{2, 4, 8, 8, 8, 8}));
}

TEST(SkipBackoff, ExponentStaysCappedUnderSustainedFailure)
{
    // Regression: an unbounded exponent shifts 1u past the width of
    // unsigned on long event-dense runs. Hundreds of consecutive
    // failures must keep the pause at the cap.
    SkipBackoff b;
    for (int i = 0; i < 100; ++i) {
        b.noteFailure();
        ASSERT_LE(b.pause(), 1u << SkipBackoff::maxExponent) << i;
    }
    EXPECT_EQ(b.pause(), 1u << SkipBackoff::maxExponent);
}

TEST(SkipBackoff, ShouldAttemptConsumesPauseCycles)
{
    SkipBackoff b;
    b.noteFailure(); // pause = 2
    EXPECT_FALSE(b.shouldAttempt());
    EXPECT_FALSE(b.shouldAttempt());
    EXPECT_TRUE(b.shouldAttempt());
}

TEST(SkipBackoff, SuccessResetsTheSchedule)
{
    SkipBackoff b;
    for (int i = 0; i < 5; ++i)
        b.noteFailure();
    b.noteSuccess();
    EXPECT_EQ(b.pause(), 0u);
    EXPECT_TRUE(b.shouldAttempt());
    b.noteFailure();
    EXPECT_EQ(b.pause(), 2u); // schedule restarted from the first step
}

} // namespace
} // namespace mtp
