#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

TEST(Core, BranchStallsDecodePipeline)
{
    // The same kernel with branches instead of plain ALU ops must take
    // longer (5-cycle stall on branch, Table II).
    SimConfig cfg = test::tinyConfig();
    cfg.perfectMemory = true;

    KernelDesc plain = test::tinyComputeKernel(1, 2, 8);

    KernelDesc branchy;
    branchy.name = "branchy";
    branchy.warpsPerBlock = 1;
    branchy.numBlocks = 2;
    branchy.maxBlocksPerCore = 2;
    Segment s;
    for (int i = 0; i < 8; ++i)
        s.insts.push_back(StaticInst::branch());
    branchy.segments.push_back(s);
    branchy.finalize();

    EXPECT_GT(simulate(cfg, branchy).cycles,
              simulate(cfg, plain).cycles);
}

TEST(Core, LongLatencyOpcodesOccupyLonger)
{
    SimConfig cfg = test::tinyConfig();
    cfg.perfectMemory = true;

    auto mk = [](Opcode op) {
        KernelDesc k;
        k.name = "ops";
        k.warpsPerBlock = 2;
        k.numBlocks = 2;
        k.maxBlocksPerCore = 1;
        Segment s;
        for (int i = 0; i < 16; ++i) {
            StaticInst inst;
            inst.op = op;
            s.insts.push_back(inst);
        }
        k.segments.push_back(s);
        k.finalize();
        return k;
    };

    Cycle comp = simulate(cfg, mk(Opcode::Comp)).cycles;
    Cycle imul = simulate(cfg, mk(Opcode::Imul)).cycles;
    Cycle fdiv = simulate(cfg, mk(Opcode::Fdiv)).cycles;
    EXPECT_GT(imul, comp);
    EXPECT_GT(fdiv, imul);
    // Occupancy ratios roughly 4 : 16 : 32.
    EXPECT_NEAR(static_cast<double>(imul) / comp, 4.0, 1.0);
}

TEST(Core, ChainedLoadsSerializeLatency)
{
    // Two chained loads must roughly double the single-load runtime of
    // a single-warp kernel (per-warp MLP 1).
    SimConfig cfg = test::tinyConfig();

    auto mk = [](bool chain) {
        KernelDesc k;
        k.name = "chain";
        k.warpsPerBlock = 1;
        k.numBlocks = 2;
        k.maxBlocksPerCore = 1;
        Segment s;
        AddressPattern a;
        a.base = 0x1000'0000ULL;
        a.threadStride = 4;
        AddressPattern b = a;
        b.base = 0x2000'0000ULL;
        s.insts.push_back(StaticInst::load(a, 0));
        StaticInst second = StaticInst::load(b, 1);
        if (chain)
            second.srcSlots = {0, -1};
        s.insts.push_back(second);
        s.insts.push_back(StaticInst::compUse(0, 1, 1));
        k.segments.push_back(s);
        k.finalize();
        return k;
    };

    Cycle parallel = simulate(cfg, mk(false)).cycles;
    Cycle chained = simulate(cfg, mk(true)).cycles;
    EXPECT_GT(chained, parallel + 100);
}

TEST(Core, UncoalescedLoadsSerializeThroughLsu)
{
    SimConfig cfg = test::tinyConfig();

    auto mk = [](Stride lane_stride) {
        KernelDesc k = test::tinyMpKernel(2, 4);
        for (auto &seg : k.segments)
            for (auto &inst : seg.insts)
                if (inst.op == Opcode::Load)
                    inst.pattern.threadStride = lane_stride;
        k.finalize();
        return k;
    };

    Cycle coalesced = simulate(cfg, mk(4)).cycles;
    Cycle uncoalesced = simulate(cfg, mk(2112)).cycles;
    EXPECT_GT(uncoalesced, coalesced);
}

TEST(Core, HwPrefetcherFillsPrefetchCache)
{
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::StridePC;
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 8, 12, 1));
    EXPECT_GT(r.prefFills, 0u);
    EXPECT_GT(r.prefUseful, 0u);
    EXPECT_GT(r.prefCoverage(), 0.0);
}

TEST(Core, SwPrefetchInstructionsIssueRequests)
{
    SimConfig cfg = test::tinyConfig();
    KernelDesc k = test::tinyStreamKernel(2, 8, 12, 1);
    SwPrefetchOptions opts;
    RunResult r = simulate(cfg, applyStridePrefetch(k, opts));
    EXPECT_GT(r.prefFills, 0u);
    double issued = r.stats.sumMatching("core", ".swPrefIssued");
    EXPECT_GT(issued, 0.0);
}

TEST(Core, ThrottleDegreeFiveStopsPrefetchFlow)
{
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::StridePC;
    cfg.throttleEnable = true;
    cfg.throttleInitDegree = 5;
    cfg.throttlePeriod = 1'000'000; // never updates during the run
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 8, 12, 1));
    EXPECT_EQ(r.prefFills, 0u);
    double dropped =
        r.stats.sumMatching("core", ".hwPrefDroppedThrottle");
    EXPECT_GT(dropped, 0.0);
}

TEST(Core, PrefetchCacheHitsSkipMemory)
{
    // Re-loading the same addresses after a prefetcher warmed the
    // cache produces prefetch-cache hit transactions.
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::StridePC;
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 8, 16, 1));
    EXPECT_GT(r.prefCacheHits, 0u);
    // Covered demands do not appear as memory transactions.
    EXPECT_LT(r.demandTxns + r.prefCacheHits,
              2 * r.demandTxns + 1000000u);
}

TEST(Core, LatenessThrottleRampsUnderLatePrefetches)
{
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::StridePC;
    cfg.stridePcLateThrottle = true;
    cfg.throttlePeriod = 1000;
    // Many warps + tiny iteration bodies: distance-1 prefetches late.
    RunResult r = simulate(cfg, test::tinyStreamKernel(4, 16, 16, 2));
    double dropped =
        r.stats.sumMatching("core", ".hwPrefDroppedThrottle");
    EXPECT_GE(dropped, 0.0); // engine exercised without crashing
}

} // namespace
} // namespace mtp
