/**
 * @file
 * Parameterized property sweeps: invariants that must hold for every
 * prefetcher, workload class and configuration point.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "tests/test_helpers.hh"

namespace mtp {
namespace {

// ---------------------------------------------------------------------
// Accounting invariants across every hardware prefetcher x kernel shape
// ---------------------------------------------------------------------

using PrefetcherParam = std::tuple<HwPrefKind, bool /*warpTraining*/>;

class PrefetcherProperty
    : public ::testing::TestWithParam<PrefetcherParam>
{
};

TEST_P(PrefetcherProperty, AccountingInvariantsHold)
{
    auto [kind, warp_training] = GetParam();
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = kind;
    cfg.hwPrefWarpTraining = warp_training;

    for (const KernelDesc &k :
         {test::tinyStreamKernel(2, 8, 8, 2), test::tinyMpKernel(2, 12),
          test::tinyComputeKernel(2, 4, 12)}) {
        RunResult r = simulate(cfg, k);
        // Every useful/early prefetch must have been filled.
        EXPECT_LE(r.prefUseful + r.prefEarlyEvicted, r.prefFills)
            << toString(kind) << " on " << k.name;
        // Derived ratios stay in [0, 1].
        EXPECT_GE(r.accuracy(), 0.0);
        EXPECT_LE(r.accuracy(), 1.0);
        EXPECT_GE(r.earlyRatio(), 0.0);
        EXPECT_LE(r.earlyRatio(), 1.0);
        EXPECT_LE(r.prefCoverage(), 1.0);
        // The machine retired every warp instruction exactly once.
        EXPECT_EQ(r.warpInsts,
                  k.warpInstsPerWarp() * k.totalWarps());
        // DRAM moved at least the demanded bytes.
        if (k.memInstsPerWarp() > 0)
            EXPECT_GT(r.dramBytes, 0u);
    }
}

TEST_P(PrefetcherProperty, DeterministicCycleCounts)
{
    auto [kind, warp_training] = GetParam();
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = kind;
    cfg.hwPrefWarpTraining = warp_training;
    KernelDesc k = test::tinyStreamKernel(2, 8, 6, 2);
    EXPECT_EQ(simulate(cfg, k).cycles, simulate(cfg, k).cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrefetchers, PrefetcherProperty,
    ::testing::Combine(::testing::Values(HwPrefKind::None,
                                         HwPrefKind::StrideRPT,
                                         HwPrefKind::StridePC,
                                         HwPrefKind::Stream,
                                         HwPrefKind::GHB,
                                         HwPrefKind::MTHWP),
                       ::testing::Bool()),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) +
               std::string(std::get<1>(info.param) ? "_warp" : "_naive");
    });

// ---------------------------------------------------------------------
// Prefetch cache size monotonicity (Fig. 16's underlying property)
// ---------------------------------------------------------------------

class CacheSizeProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheSizeProperty, GeometryValidAndEarlyEvictionsBounded)
{
    SimConfig cfg = test::tinyConfig();
    cfg.prefCacheBytes = GetParam();
    cfg.hwPref = HwPrefKind::StridePC;
    cfg.validate();
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 8, 10, 2));
    EXPECT_LE(r.prefUseful + r.prefEarlyEvicted, r.prefFills);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, CacheSizeProperty,
                         ::testing::Values(1024u, 4096u, 16384u, 65536u,
                                           131072u));

// ---------------------------------------------------------------------
// Distance/degree sweeps never break accounting (Fig. 17's substrate)
// ---------------------------------------------------------------------

using AggressivenessParam = std::tuple<unsigned, unsigned>;

class AggressivenessProperty
    : public ::testing::TestWithParam<AggressivenessParam>
{
};

TEST_P(AggressivenessProperty, SweepStaysSane)
{
    auto [distance, degree] = GetParam();
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    cfg.prefDistance = distance;
    cfg.prefDegree = degree;
    RunResult r = simulate(cfg, test::tinyStreamKernel(2, 8, 10, 1));
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LE(r.prefUseful + r.prefEarlyEvicted, r.prefFills);
    // Aggressiveness can only add traffic, never lose demand bytes.
    SimConfig base = test::tinyConfig();
    RunResult b = simulate(base, test::tinyStreamKernel(2, 8, 10, 1));
    EXPECT_GE(r.dramBytes + 1, b.dramBytes / 2);
}

INSTANTIATE_TEST_SUITE_P(
    DistanceDegree, AggressivenessProperty,
    ::testing::Combine(::testing::Values(1u, 3u, 7u, 15u),
                       ::testing::Values(1u, 2u, 4u)));

// ---------------------------------------------------------------------
// Core-count sweep (Fig. 18's substrate)
// ---------------------------------------------------------------------

class CoreCountProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoreCountProperty, WorkConservesAcrossCoreCounts)
{
    SimConfig cfg = test::tinyConfig();
    cfg.numCores = GetParam();
    KernelDesc k = test::tinyMpKernel(2, 24);
    RunResult r = simulate(cfg, k);
    EXPECT_EQ(r.warpInsts, k.warpInstsPerWarp() * k.totalWarps());
    double blocks = r.stats.sumMatching("core", ".blocksCompleted");
    EXPECT_DOUBLE_EQ(blocks, static_cast<double>(k.numBlocks));
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, CoreCountProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 14u, 20u));

// ---------------------------------------------------------------------
// Software-prefetch variants preserve demand semantics
// ---------------------------------------------------------------------

class SwVariantProperty : public ::testing::TestWithParam<SwPrefKind>
{
};

TEST_P(SwVariantProperty, DemandWorkUnchanged)
{
    SwPrefKind kind = GetParam();
    KernelDesc base = test::tinyStreamKernel(2, 6, 6, 2);
    KernelDesc variant = applySwPrefetch(base, kind, SwPrefetchOptions{});
    // Same demand loads/stores; only prefetches/compute overhead added.
    EXPECT_EQ(variant.memInstsPerWarp(), base.memInstsPerWarp());
    EXPECT_GE(variant.warpInstsPerWarp(), base.warpInstsPerWarp());
    // And it still runs to completion deterministically.
    SimConfig cfg = test::tinyConfig();
    RunResult a = simulate(cfg, variant);
    RunResult b = simulate(cfg, variant);
    EXPECT_EQ(a.cycles, b.cycles);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SwVariantProperty,
                         ::testing::Values(SwPrefKind::None,
                                           SwPrefKind::Register,
                                           SwPrefKind::Stride,
                                           SwPrefKind::IP,
                                           SwPrefKind::StrideIP),
                         [](const auto &info) {
                             return toString(info.param);
                         });

} // namespace
} // namespace mtp
