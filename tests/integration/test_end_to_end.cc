/**
 * @file
 * End-to-end behaviours the paper's evaluation rests on, checked on
 * scaled-down workloads.
 */

#include <gtest/gtest.h>

#include "tests/test_helpers.hh"

namespace mtp {
namespace {

constexpr unsigned kScale = 32; // small grids: seconds for the suite

SimConfig
benchConfig()
{
    SimConfig cfg; // full Table II machine
    cfg.throttlePeriod = 5000;
    return cfg;
}

TEST(EndToEnd, PerfectMemoryCpiNearFour)
{
    // Table III: perfect-memory CPI ~4.2 across the suite.
    SimConfig cfg = benchConfig();
    cfg.perfectMemory = true;
    for (const char *name : {"backprop", "scalar", "ocean"}) {
        RunResult r = simulate(cfg, Suite::get(name, kScale).kernel);
        EXPECT_GT(r.cpi, 3.8) << name;
        EXPECT_LT(r.cpi, 6.5) << name;
    }
}

TEST(EndToEnd, MemoryIntensityCriterion)
{
    // The paper classifies benchmarks as memory-intensive when base
    // CPI is 50% above perfect-memory CPI.
    SimConfig cfg = benchConfig();
    SimConfig pmem = cfg;
    pmem.perfectMemory = true;
    KernelDesc k = Suite::get("stream", kScale).kernel;
    RunResult base = simulate(cfg, k);
    RunResult perfect = simulate(pmem, k);
    EXPECT_GT(base.cpi, 1.5 * perfect.cpi);
}

TEST(EndToEnd, StridePrefetchingSpeedsUpStrideType)
{
    SimConfig cfg = benchConfig();
    Workload w = Suite::get("monte", kScale);
    RunResult base = simulate(cfg, w.kernel);
    RunResult pref = simulate(cfg, w.variant(SwPrefKind::Stride));
    EXPECT_GT(static_cast<double>(base.cycles) / pref.cycles, 1.15);
    EXPECT_GT(pref.accuracy(), 0.5);
}

TEST(EndToEnd, InterThreadPrefetchingSpeedsUpMpType)
{
    SimConfig cfg = benchConfig();
    Workload w = Suite::get("backprop", kScale);
    RunResult base = simulate(cfg, w.kernel);
    RunResult pref = simulate(cfg, w.variant(SwPrefKind::IP));
    EXPECT_GT(static_cast<double>(base.cycles) / pref.cycles, 1.1);
}

TEST(EndToEnd, MtHwpSpeedsUpLatencyBoundKernels)
{
    SimConfig cfg = benchConfig();
    SimConfig hw = cfg;
    hw.hwPref = HwPrefKind::MTHWP;
    Workload w = Suite::get("cfd", kScale);
    RunResult base = simulate(cfg, w.kernel);
    RunResult pref = simulate(hw, w.kernel);
    EXPECT_GT(static_cast<double>(base.cycles) / pref.cycles, 1.3);
}

TEST(EndToEnd, StreamHasLatePrefetches)
{
    // Sec. VII-A: 90% of stream's prefetches are late; prefetching
    // degrades it before throttling.
    SimConfig cfg = benchConfig();
    Workload w = Suite::get("stream", kScale);
    RunResult base = simulate(cfg, w.kernel);
    RunResult pref = simulate(cfg, w.variant(SwPrefKind::Stride));
    EXPECT_LT(static_cast<double>(base.cycles) / pref.cycles, 1.0);
    EXPECT_GT(pref.lateRatio() + pref.earlyRatio(), 0.8);
}

TEST(EndToEnd, ThrottlingRescuesHarmfulPrefetching)
{
    SimConfig cfg = benchConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    Workload w = Suite::get("stream", kScale);
    RunResult base =
        simulate(benchConfig(), w.kernel); // no prefetching
    RunResult pref = simulate(cfg, w.kernel);
    SimConfig thr = cfg;
    thr.throttleEnable = true;
    RunResult throttled = simulate(thr, w.kernel);
    // Throttling must recover part of the loss.
    EXPECT_LT(throttled.cycles, pref.cycles);
    (void)base;
}

TEST(EndToEnd, PrefetchingIncreasesAvgMemoryLatency)
{
    // Fig. 8: average (demand) memory latency grows under software
    // prefetching even at high accuracy.
    SimConfig cfg = benchConfig();
    Workload w = Suite::get("stream", kScale);
    RunResult base = simulate(cfg, w.kernel);
    RunResult pref = simulate(cfg, w.variant(SwPrefKind::StrideIP));
    EXPECT_GT(pref.avgDemandLatency, base.avgDemandLatency);
}

TEST(EndToEnd, WarpIdTrainingBeatsNaiveOnManyWarps)
{
    SimConfig naive = benchConfig();
    naive.hwPref = HwPrefKind::StridePC;
    naive.hwPrefWarpTraining = false;
    SimConfig warped = naive;
    warped.hwPrefWarpTraining = true;
    KernelDesc k = Suite::get("mersenne", kScale).kernel;
    RunResult n = simulate(naive, k);
    RunResult w = simulate(warped, k);
    EXPECT_LE(w.cycles, n.cycles);
    EXPECT_GT(w.prefCoverage(), n.prefCoverage());
}

TEST(EndToEnd, NonMemoryIntensiveUnaffectedByPrefetching)
{
    // Table IV: hardware prefetching does not move compute benchmarks.
    SimConfig cfg = benchConfig();
    SimConfig hw = cfg;
    hw.hwPref = HwPrefKind::MTHWP;
    KernelDesc k = Suite::get("binomial", kScale).kernel;
    RunResult base = simulate(cfg, k);
    RunResult pref = simulate(hw, k);
    double ratio = static_cast<double>(base.cycles) / pref.cycles;
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.25);
}

TEST(EndToEnd, MtamlModelSeparatesBenchmarkClasses)
{
    // The model's tolerance bar (Eq. 1) must sit far below the
    // measured latency for a memory-bound kernel and far above zero
    // slack for a compute-rich one.
    SimConfig cfg = benchConfig();

    Workload mem = Suite::get("stream", kScale);
    RunResult mem_r = simulate(cfg, mem.kernel);
    MtamlInputs mem_in;
    mem_in.compInsts =
        static_cast<double>(mem.kernel.warpInstsPerWarp() -
                            mem.kernel.memInstsPerWarp());
    mem_in.memInsts = static_cast<double>(mem.kernel.memInstsPerWarp());
    mem_in.activeWarps = mem_r.avgActiveWarps;
    EXPECT_LT(mtaml(mem_in), mem_r.avgDemandLatency);

    Workload comp = Suite::get("binomial", kScale);
    RunResult comp_r = simulate(cfg, comp.kernel);
    MtamlInputs comp_in;
    comp_in.compInsts =
        static_cast<double>(comp.kernel.warpInstsPerWarp() -
                            comp.kernel.memInstsPerWarp());
    comp_in.memInsts =
        static_cast<double>(comp.kernel.memInstsPerWarp());
    comp_in.activeWarps = comp_r.avgActiveWarps;
    // Far larger tolerance relative to its own class.
    EXPECT_GT(mtaml(comp_in), 5.0 * mtaml(mem_in));
}

} // namespace
} // namespace mtp
