/**
 * @file
 * Shared fixtures for the mtprefetch test suite: small kernels and
 * configurations that simulate in milliseconds.
 */

#ifndef MTP_TESTS_TEST_HELPERS_HH
#define MTP_TESTS_TEST_HELPERS_HH

#include "mtprefetch/mtprefetch.hh"

namespace mtp {
namespace test {

/** A small configuration: 2 cores, short queues, fast to simulate. */
inline SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.dramChannels = 2;
    cfg.memLatencyExtra = 100;
    cfg.throttlePeriod = 2000;
    cfg.maxCycles = 5'000'000;
    return cfg;
}

/**
 * A tiny streaming kernel: `loads` coalesced loads per loop iteration,
 * a consumer, a store, and a back-edge, over `trips` iterations.
 */
inline KernelDesc
tinyStreamKernel(unsigned warps_per_block = 2, std::uint64_t blocks = 4,
                 unsigned trips = 4, unsigned loads = 1,
                 Stride iter_stride = 4096)
{
    KernelDesc k;
    k.name = "tiny_stream";
    k.warpsPerBlock = warps_per_block;
    k.numBlocks = blocks;
    k.maxBlocksPerCore = 2;

    Segment loop;
    loop.trips = trips;
    for (unsigned l = 0; l < loads; ++l) {
        AddressPattern p;
        p.base = 0x1000'0000ULL + l * 0x100'0000ULL;
        p.threadStride = 4;
        p.iterStride = iter_stride;
        loop.insts.push_back(StaticInst::load(p, static_cast<int>(l)));
    }
    loop.insts.push_back(StaticInst::compUse(0, -1, 2));
    AddressPattern st;
    st.base = 0x2000'0000ULL;
    st.threadStride = 4;
    st.iterStride = iter_stride;
    loop.insts.push_back(StaticInst::store(st, 0));
    loop.insts.push_back(StaticInst::branch());
    k.segments.push_back(loop);
    k.finalize();
    return k;
}

/** A loop-free kernel (mp-type shape): load, compute, store. */
inline KernelDesc
tinyMpKernel(unsigned warps_per_block = 2, std::uint64_t blocks = 8)
{
    KernelDesc k;
    k.name = "tiny_mp";
    k.warpsPerBlock = warps_per_block;
    k.numBlocks = blocks;
    k.maxBlocksPerCore = 2;

    Segment body;
    body.insts.push_back(StaticInst::comp(1));
    AddressPattern p;
    p.base = 0x3000'0000ULL;
    p.threadStride = 4;
    body.insts.push_back(StaticInst::load(p, 0));
    body.insts.push_back(StaticInst::compUse(0, -1, 2));
    AddressPattern st;
    st.base = 0x4000'0000ULL;
    st.threadStride = 4;
    body.insts.push_back(StaticInst::store(st, 0));
    k.segments.push_back(body);
    k.finalize();
    return k;
}

/** A compute-only kernel (no memory instructions at all). */
inline KernelDesc
tinyComputeKernel(unsigned warps_per_block = 2, std::uint64_t blocks = 4,
                  unsigned comp = 16)
{
    KernelDesc k;
    k.name = "tiny_compute";
    k.warpsPerBlock = warps_per_block;
    k.numBlocks = blocks;
    k.maxBlocksPerCore = 2;
    Segment body;
    body.insts.push_back(StaticInst::comp(comp));
    k.segments.push_back(body);
    k.finalize();
    return k;
}

/** Observation wrapper for driving prefetchers directly in tests. */
class ObsDriver
{
  public:
    /** Feed one access; @return the prefetch addresses it generated. */
    std::vector<Addr>
    observe(HwPrefetcher &pref, Pc pc, std::uint64_t wid, Addr lead,
            std::vector<MemTxn> txns = {})
    {
        if (txns.empty())
            txns.push_back({blockAlign(lead), blockBytes});
        out_.clear();
        PrefObservation obs{pc, static_cast<std::uint32_t>(wid), wid,
                            lead, &txns};
        pref.observe(obs, out_);
        return out_;
    }

  private:
    std::vector<Addr> out_;
};

} // namespace test
} // namespace mtp

#endif // MTP_TESTS_TEST_HELPERS_HH
