#include <gtest/gtest.h>

#include <vector>

#include "driver/run_cache.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace driver {
namespace {

/** The fields a figure/table harness consumes, for exact comparison. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.warpInsts, b.warpInsts);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.prefFills, b.prefFills);
    EXPECT_EQ(a.prefUseful, b.prefUseful);
    EXPECT_EQ(a.prefEarlyEvicted, b.prefEarlyEvicted);
    EXPECT_EQ(a.prefLate, b.prefLate);
    EXPECT_EQ(a.prefCacheHits, b.prefCacheHits);
    EXPECT_EQ(a.demandTxns, b.demandTxns);
    EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
    EXPECT_DOUBLE_EQ(a.avgDemandLatency, b.avgDemandLatency);
    EXPECT_DOUBLE_EQ(a.avgPrefetchLatency, b.avgPrefetchLatency);
    EXPECT_DOUBLE_EQ(a.avgActiveWarps, b.avgActiveWarps);
}

/**
 * A 12-job matrix (3 kernels x 4 configs) must produce identical
 * RunResults whether executed sequentially (--jobs 1) or on 8 workers:
 * each run is single-threaded and seeded, so scheduling cannot leak
 * into results.
 */
TEST(DriverDeterminism, JobCountDoesNotChangeResults)
{
    std::vector<KernelDesc> kernels = {
        test::tinyStreamKernel(2, 6, 4),
        test::tinyMpKernel(2, 8),
        test::tinyStreamKernel(2, 4, 4, 2),
    };
    std::vector<SimConfig> configs;
    for (unsigned i = 0; i < 4; ++i) {
        SimConfig cfg = test::tinyConfig();
        switch (i) {
          case 0:
            break;
          case 1:
            cfg.hwPref = HwPrefKind::MTHWP;
            break;
          case 2:
            cfg.hwPref = HwPrefKind::MTHWP;
            cfg.throttleEnable = true;
            break;
          default:
            cfg.hwPref = HwPrefKind::StridePC;
            break;
        }
        configs.push_back(cfg);
    }

    ParallelExecutor serialExec(1);
    RunCache serial(serialExec);
    ParallelExecutor parallelExec(8);
    RunCache parallel(parallelExec);

    // Submit the full matrix up front on both, like a harness does.
    for (const auto &cfg : configs)
        for (const auto &k : kernels) {
            serial.submit(cfg, k);
            parallel.submit(cfg, k);
        }
    ASSERT_EQ(serial.misses(), 12u);
    ASSERT_EQ(parallel.misses(), 12u);

    for (const auto &cfg : configs)
        for (const auto &k : kernels)
            expectIdentical(serial.result(cfg, k),
                            parallel.result(cfg, k));
}

/** Submitting in a different order must not change results either. */
TEST(DriverDeterminism, SubmissionOrderDoesNotChangeResults)
{
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    std::vector<KernelDesc> kernels = {
        test::tinyStreamKernel(2, 6, 4),
        test::tinyMpKernel(2, 8),
        test::tinyComputeKernel(),
    };

    ParallelExecutor forwardExec(4);
    RunCache forward(forwardExec);
    for (auto it = kernels.begin(); it != kernels.end(); ++it)
        forward.submit(cfg, *it);

    ParallelExecutor reverseExec(4);
    RunCache reverse(reverseExec);
    for (auto it = kernels.rbegin(); it != kernels.rend(); ++it)
        reverse.submit(cfg, *it);

    for (const auto &k : kernels)
        expectIdentical(forward.result(cfg, k), reverse.result(cfg, k));
}

} // namespace
} // namespace driver
} // namespace mtp
