#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "driver/run_cache.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace driver {
namespace {

TEST(Fingerprint, StableAcrossFinalization)
{
    KernelDesc k = test::tinyStreamKernel();
    std::uint64_t before = hashKernel(k);
    k.finalize(); // re-finalizing reassigns PCs
    EXPECT_EQ(hashKernel(k), before);
}

TEST(Fingerprint, SensitiveToEveryContentDimension)
{
    KernelDesc base = test::tinyStreamKernel();
    std::uint64_t h = hashKernel(base);

    KernelDesc renamed = base;
    renamed.name = "other";
    EXPECT_NE(hashKernel(renamed), h);

    KernelDesc regrown = base;
    regrown.numBlocks += 1;
    EXPECT_NE(hashKernel(regrown), h);

    KernelDesc retripped = base;
    retripped.segments[0].trips += 1;
    EXPECT_NE(hashKernel(retripped), h);

    KernelDesc repatterned = base;
    repatterned.segments[0].insts[0].pattern.iterStride *= 2;
    EXPECT_NE(hashKernel(repatterned), h);
}

TEST(Fingerprint, ConfigChangesChangeTheKey)
{
    KernelDesc k = test::tinyMpKernel();
    SimConfig a = test::tinyConfig();
    SimConfig b = a;
    b.mthwpIp = false; // an ablation toggle, not a table size
    EXPECT_FALSE(fingerprint(a, k) == fingerprint(b, k));
    EXPECT_TRUE(fingerprint(a, k) == fingerprint(a, k));
}

/**
 * Regression test for the old bench cache key, which was
 * name|numBlocks|warpsPerBlock|warpInstsPerWarp. Two kernels that
 * agree on all four but differ in instruction content must not share
 * a cache entry.
 */
TEST(RunCache, SameNameDifferentBodyDoesNotCollide)
{
    // Identical name, geometry and instruction *count*; the second
    // kernel streams at twice the iteration stride.
    KernelDesc a = test::tinyStreamKernel(2, 4, 4, 1, 4096);
    KernelDesc b = test::tinyStreamKernel(2, 4, 4, 1, 8192);

    // The old key cannot tell them apart...
    auto oldKey = [](const KernelDesc &k) {
        std::ostringstream key;
        key << k.name << '|' << k.numBlocks << '|' << k.warpsPerBlock
            << '|' << k.warpInstsPerWarp();
        return key.str();
    };
    ASSERT_EQ(oldKey(a), oldKey(b));

    // ...the content fingerprint can.
    EXPECT_NE(hashKernel(a), hashKernel(b));

    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    ParallelExecutor exec(2);
    RunCache cache(exec);
    const RunResult &ra = cache.result(cfg, a);
    const RunResult &rb = cache.result(cfg, b);
    EXPECT_NE(&ra, &rb);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
    // Different strides really do simulate differently.
    EXPECT_NE(ra.cycles, rb.cycles);
}

TEST(RunCache, MemoizesIdenticalSubmissions)
{
    SimConfig cfg = test::tinyConfig();
    KernelDesc k = test::tinyMpKernel();
    ParallelExecutor exec(2);
    RunCache cache(exec);
    cache.submit(cfg, k);
    cache.submit(cfg, k);
    const RunResult &a = cache.result(cfg, k);
    const RunResult &b = cache.result(cfg, k);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_EQ(cache.size(), 1u);
}

/**
 * ThreadSanitizer-friendly stress: many threads concurrently submit
 * and resolve the same small key set. Exactly one simulation per
 * distinct key may run, and every thread must see the same object.
 */
TEST(RunCache, ConcurrentDuplicateSubmissionsRunOnce)
{
    SimConfig cfg = test::tinyConfig();
    std::vector<KernelDesc> kernels = {
        test::tinyMpKernel(2, 4),
        test::tinyMpKernel(2, 6),
        test::tinyStreamKernel(2, 4, 2),
        test::tinyComputeKernel(),
    };

    ParallelExecutor exec(4);
    RunCache cache(exec);

    constexpr unsigned numThreads = 8;
    constexpr unsigned rounds = 5;
    std::vector<std::vector<const RunResult *>> seen(numThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < numThreads; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned round = 0; round < rounds; ++round)
                for (const KernelDesc &k : kernels)
                    seen[t].push_back(&cache.result(cfg, k));
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(cache.misses(), kernels.size());
    EXPECT_EQ(cache.size(), kernels.size());
    // Every thread resolved every key to the same cached object.
    for (unsigned t = 1; t < numThreads; ++t)
        EXPECT_EQ(seen[t], seen[0]);
}

} // namespace
} // namespace driver
} // namespace mtp
