#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "driver/parallel_executor.hh"

namespace mtp {
namespace driver {
namespace {

TEST(ParallelExecutor, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ParallelExecutor::defaultThreads(), 1u);
    ParallelExecutor exec;
    EXPECT_GE(exec.threads(), 1u);
}

TEST(ParallelExecutor, RunsEveryTaskExactlyOnce)
{
    ParallelExecutor exec(4);
    std::atomic<int> counter{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(exec.submit([i, &counter] {
            counter.fetch_add(1);
            return i * i;
        }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(counter.load(), 100);
    EXPECT_EQ(exec.executed(), 100u);
}

TEST(ParallelExecutor, SingleWorkerPreservesSubmissionOrder)
{
    // One worker and external submission: the deques degrade to a
    // single FIFO, i.e. exactly the sequential order --jobs 1 promises.
    ParallelExecutor exec(1);
    std::vector<int> order;
    std::mutex m;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(exec.submit([i, &order, &m] {
            std::lock_guard<std::mutex> lock(m);
            order.push_back(i);
        }));
    for (auto &f : futures)
        f.get();
    std::vector<int> expected(32);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ParallelExecutor, PropagatesExceptionsThroughFutures)
{
    ParallelExecutor exec(2);
    auto fut = exec.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(exec.submit([] { return 7; }).get(), 7);
}

TEST(ParallelExecutor, WorkerSubmissionsComplete)
{
    // Recursive fan-out: tasks submitted from worker threads land on
    // the worker's own deque and still complete.
    ParallelExecutor exec(4);
    std::atomic<int> done{0};
    std::vector<std::future<std::future<void>>> outer;
    for (int i = 0; i < 16; ++i)
        outer.push_back(exec.submit([&exec, &done] {
            return exec.submit([&done] { done.fetch_add(1); });
        }));
    for (auto &f : outer)
        f.get().get();
    EXPECT_EQ(done.load(), 16);
}

TEST(ParallelExecutor, BudgetedThreadsSharesTheTwoAxes)
{
    // An explicit job count always wins, sharded or not.
    EXPECT_EQ(ParallelExecutor::budgetedThreads(3, 1), 3u);
    EXPECT_EQ(ParallelExecutor::budgetedThreads(3, 4), 3u);
    // No sharding: 0 still means "pick the default".
    EXPECT_EQ(ParallelExecutor::budgetedThreads(0, 1), 0u);
    // Sharding with no explicit jobs derates the default width so
    // jobs x shards stays near the host core count, floored at 1.
    unsigned hw = ParallelExecutor::defaultThreads();
    EXPECT_EQ(ParallelExecutor::budgetedThreads(0, 2),
              std::max(1u, hw / 2));
    EXPECT_EQ(ParallelExecutor::budgetedThreads(0, 10 * hw), 1u);
}

TEST(ParallelExecutor, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ParallelExecutor exec(2);
        for (int i = 0; i < 50; ++i)
            exec.submit([&ran] { ran.fetch_add(1); });
        // Destructor joins only after every queued task executed.
    }
    EXPECT_EQ(ran.load(), 50);
}

} // namespace
} // namespace driver
} // namespace mtp
