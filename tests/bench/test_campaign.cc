/**
 * @file
 * The campaign layer's contracts: manifests round-trip through the
 * obs JSON parser, the golden-snapshot gate passes on itself and
 * fails with a named metric when perturbed, and a two-harness
 * mini-campaign writes a byte-identical manifest at every --jobs and
 * --shards setting (the "session" block excluded).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bench/campaign.hh"
#include "bench/campaign_diff.hh"

namespace mtp {
namespace bench {
namespace {

/** The two-harness mini-campaign every test here runs: 1/64 scale,
 *  one benchmark, one table harness + one figure harness. */
Options
miniOptions()
{
    Options opts;
    opts.scaleDiv = 64;
    opts.throttlePeriod = 1000;
    opts.benchmarks = {"stream"};
    return opts;
}

const std::vector<std::string> &
miniFigures()
{
    static const std::vector<std::string> figs = {
        "tab03_characteristics", "fig11_swp_throttle"};
    return figs;
}

std::string
miniManifest(unsigned jobs, unsigned shards, bool includeSession)
{
    Options opts = miniOptions();
    opts.jobs = jobs;
    opts.shards = shards;
    CampaignResult res = runCampaign(opts, miniFigures());
    std::ostringstream os;
    writeManifest(os, res, includeSession);
    return os.str();
}

TEST(CampaignDiff, GlobMatch)
{
    EXPECT_TRUE(globMatch("abc", "abc"));
    EXPECT_FALSE(globMatch("abc", "abx"));
    EXPECT_TRUE(globMatch("*", "anything/at/all"));
    EXPECT_TRUE(globMatch("fig10_swp/*", "fig10_swp/summary/x"));
    EXPECT_FALSE(globMatch("fig10_swp/*", "fig11_swp/summary/x"));
    EXPECT_TRUE(globMatch("*/summary/*", "fig10_swp/summary/geomean"));
    EXPECT_FALSE(globMatch("*/summary", "fig10_swp/summary/geomean"));
    EXPECT_TRUE(globMatch("*geomean*", "a/summary/geomean.stride"));
}

TEST(CampaignDiff, ToleranceRulesFirstMatchWins)
{
    Tolerances tol;
    tol.relPct = 1.0;
    tol.rules = {{"fig10_swp/*", 10.0}, {"*/summary/*", 5.0}};
    EXPECT_DOUBLE_EQ(tol.relPctFor("fig10_swp/summary/x"), 10.0);
    EXPECT_DOUBLE_EQ(tol.relPctFor("fig11_swp/summary/x"), 5.0);
    EXPECT_DOUBLE_EQ(tol.relPctFor("fig11_swp/speedups/r/c"), 1.0);
}

TEST(Campaign, SpecsAreRegisteredAndNamed)
{
    ASSERT_GE(campaignSpecs().size(), 18u);
    for (const auto &spec : campaignSpecs()) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_FALSE(spec.anchor.empty());
        EXPECT_NE(spec.run, nullptr);
        EXPECT_EQ(findSpec(spec.name), &spec);
    }
    EXPECT_EQ(findSpec("no_such_figure"), nullptr);
}

TEST(Campaign, ManifestRoundTripsThroughObsJson)
{
    std::string manifest = miniManifest(1, 1, true);

    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJson(manifest, doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());

    const obs::JsonValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "mtp-campaign-v1");

    const obs::JsonValue *prov = doc.find("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_NE(prov->find("gitSha"), nullptr);
    EXPECT_NE(prov->find("host"), nullptr);

    const obs::JsonValue *session = doc.find("session");
    ASSERT_NE(session, nullptr);
    EXPECT_NE(session->find("wallSeconds"), nullptr);

    const obs::JsonValue *figs = doc.find("figures");
    ASSERT_NE(figs, nullptr);
    ASSERT_EQ(figs->array.size(), 2u);
    const obs::JsonValue &fig = figs->array[1];
    EXPECT_EQ(fig.find("name")->str, "fig11_swp_throttle");
    EXPECT_GT(fig.find("runs")->number, 0.0);
    EXPECT_FALSE(fig.find("fingerprints")->array.empty());
    ASSERT_NE(fig.find("tables"), nullptr);
    ASSERT_FALSE(fig.find("tables")->array.empty());
    const obs::JsonValue &table = fig.find("tables")->array[0];
    EXPECT_FALSE(table.find("columns")->array.empty());
    EXPECT_FALSE(table.find("rows")->array.empty());
    ASSERT_NE(fig.find("summary"), nullptr);
    EXPECT_FALSE(fig.find("summary")->object.empty());
}

TEST(Campaign, GatePassesAgainstItselfAndNamesPerturbedMetric)
{
    std::string manifest = miniManifest(1, 1, false);
    obs::JsonValue golden;
    std::string error;
    ASSERT_TRUE(obs::parseJson(manifest, golden, &error)) << error;

    // Self-diff: no violations even at zero tolerance.
    Tolerances strict;
    std::vector<DiffViolation> violations;
    EXPECT_TRUE(diffManifests(golden, golden, strict, violations));
    EXPECT_TRUE(violations.empty());

    // Perturb one summary metric by 50% in a copy.
    obs::JsonValue current = golden;
    obs::JsonValue &fig = current.object["figures"].array[1];
    auto &summary = fig.object["summary"].object;
    ASSERT_FALSE(summary.empty());
    const std::string metric = summary.begin()->first;
    summary.begin()->second.number *= 1.5;

    Tolerances tol;
    tol.relPct = 5.0;
    violations.clear();
    EXPECT_FALSE(diffManifests(golden, current, tol, violations));
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].path,
              "fig11_swp_throttle/summary/" + metric);
    EXPECT_EQ(violations[0].kind, DiffViolation::Kind::Number);
    EXPECT_NEAR(violations[0].relPct, 50.0, 1e-6);
    // The one-liner names the metric and both deltas.
    std::string line = violations[0].describe();
    EXPECT_NE(line.find(metric), std::string::npos);
    EXPECT_NE(line.find("rel"), std::string::npos);
    EXPECT_NE(line.find("abs"), std::string::npos);

    // A per-metric rule (or a loose default) absorbs the drift.
    Tolerances loose;
    loose.relPct = 60.0;
    violations.clear();
    EXPECT_TRUE(diffManifests(golden, current, loose, violations));

    Tolerances ruled;
    ruled.relPct = 1.0;
    ruled.rules = {{"*/summary/*", 60.0}};
    violations.clear();
    EXPECT_TRUE(diffManifests(golden, current, ruled, violations));
}

TEST(Campaign, GateFlagsStructuralDrift)
{
    std::string manifest = miniManifest(1, 1, false);
    obs::JsonValue golden;
    std::string error;
    ASSERT_TRUE(obs::parseJson(manifest, golden, &error)) << error;

    // Dropping a whole figure is structural drift, not numeric.
    obs::JsonValue current = golden;
    current.object["figures"].array.pop_back();

    Tolerances tol;
    tol.relPct = 100.0; // numeric slack must not hide missing figures
    std::vector<DiffViolation> violations;
    EXPECT_FALSE(diffManifests(golden, current, tol, violations));
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].kind, DiffViolation::Kind::Structure);
    EXPECT_EQ(violations[0].path, "fig11_swp_throttle");
}

TEST(Campaign, ManifestByteIdenticalAcrossJobsAndShards)
{
    std::string serial = miniManifest(1, 1, false);
    std::string parallel = miniManifest(4, 1, false);
    std::string sharded = miniManifest(2, 2, false);
    EXPECT_EQ(serial, parallel)
        << "manifest body must not depend on --jobs";
    EXPECT_EQ(serial, sharded)
        << "manifest body must not depend on --shards";

    // The session block is the one legitimate source of variation;
    // with it included the body (everything before "session") must
    // still match.
    std::string withSession = miniManifest(1, 1, true);
    EXPECT_NE(withSession.find("\"session\""), std::string::npos);
    EXPECT_EQ(serial.find("\"session\""), std::string::npos);
}

} // namespace
} // namespace bench
} // namespace mtp
