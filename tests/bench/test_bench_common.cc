#include <gtest/gtest.h>

#include "bench/bench_common.hh"

namespace mtp {
namespace bench {
namespace {

TEST(BenchCommon, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({0.5, 2.0}), 1.0, 1e-12);
}

TEST(BenchCommon, ParseArgs)
{
    const char *argv[] = {"prog",        "--scale",     "4",
                          "--bench",     "monte,stream", "--jobs",
                          "3",           "numCores=10"};
    Options opts = parseArgs(8, const_cast<char **>(argv));
    EXPECT_EQ(opts.scaleDiv, 4u);
    EXPECT_EQ(opts.jobs, 3u);
    ASSERT_EQ(opts.benchmarks.size(), 2u);
    EXPECT_EQ(opts.benchmarks[0], "monte");
    EXPECT_EQ(opts.benchmarks[1], "stream");
    ASSERT_EQ(opts.overrides.size(), 1u);
    SimConfig cfg = baseConfig(opts);
    EXPECT_EQ(cfg.numCores, 10u);
    // The throttle period scales with the grid divisor.
    EXPECT_EQ(cfg.throttlePeriod, 10000u);
}

TEST(BenchCommon, SelectBenchmarksFallsBack)
{
    Options opts;
    auto names = selectBenchmarks(opts, {"a", "b"});
    ASSERT_EQ(names.size(), 2u);
    opts.benchmarks = {"monte"};
    names = selectBenchmarks(opts, {"a", "b"});
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "monte");
}

TEST(BenchCommon, SweepSubsetCoversAllClasses)
{
    bool stride = false, mp = false, uncoal = false;
    for (const auto &name : sweepSubset()) {
        Workload w = Suite::get(name, 64);
        stride = stride || w.info.type == WorkloadType::Stride;
        mp = mp || w.info.type == WorkloadType::Mp;
        uncoal = uncoal || w.info.type == WorkloadType::Uncoal;
    }
    EXPECT_TRUE(stride);
    EXPECT_TRUE(mp);
    EXPECT_TRUE(uncoal);
}

TEST(BenchCommon, RunnerCachesIdenticalRuns)
{
    Options opts;
    opts.scaleDiv = 64;
    opts.jobs = 2;
    Runner runner(opts);
    Workload w = Suite::get("cell", opts.scaleDiv);
    const RunResult &a = runner.baseline(w);
    const RunResult &b = runner.baseline(w);
    EXPECT_EQ(&a, &b); // same cached object

    // A config that differs only in an ablation toggle must NOT hit
    // the cache (regression test for the Fig. 14 cache-key bug).
    SimConfig cfg = baseConfig(opts);
    cfg.hwPref = HwPrefKind::MTHWP;
    SimConfig ablated = cfg;
    ablated.mthwpIp = false;
    const RunResult &full = runner.run(cfg, w.kernel);
    const RunResult &pws = runner.run(ablated, w.kernel);
    EXPECT_NE(&full, &pws);
}

} // namespace
} // namespace bench
} // namespace mtp
