#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace mtp {
namespace {

TEST(Mshr, DemandAllocateAndRetire)
{
    Mshr m(2, 2);
    Mshr::Waiter w{0, 1, 100};
    EXPECT_FALSE(m.demandAccess(0x000, w, 100)); // allocated
    EXPECT_EQ(m.size(), 1u);
    auto entry = m.retire(0x000);
    EXPECT_FALSE(entry.prefetch);
    ASSERT_EQ(entry.waiters.size(), 1u);
    EXPECT_EQ(entry.waiters[0].slot, 1);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mshr, DemandMergesWithInflightDemand)
{
    Mshr m(4, 4);
    m.demandAccess(0x000, {0, 0, 10}, 10);
    EXPECT_TRUE(m.demandAccess(0x000, {1, 2, 20}, 20)); // merged
    EXPECT_EQ(m.counters().merges, 1u);
    EXPECT_EQ(m.counters().demandIntoPref, 0u);
    auto entry = m.retire(0x000);
    EXPECT_EQ(entry.waiters.size(), 2u);
}

TEST(Mshr, DemandJoiningPrefetchIsLate)
{
    Mshr m(4, 4);
    EXPECT_FALSE(m.prefetchAccess(0x040, 5));
    EXPECT_TRUE(m.demandAccess(0x040, {0, 0, 9}, 9));
    EXPECT_EQ(m.counters().demandIntoPref, 1u);
    // A second demand join is a merge but not a second "late".
    m.demandAccess(0x040, {0, 1, 11}, 11);
    EXPECT_EQ(m.counters().demandIntoPref, 1u);
    auto entry = m.retire(0x040);
    EXPECT_TRUE(entry.prefetch);
    EXPECT_TRUE(entry.demandJoined);
    EXPECT_EQ(entry.waiters.size(), 2u);
}

TEST(Mshr, RedundantPrefetchDropped)
{
    Mshr m(4, 4);
    m.demandAccess(0x080, {0, 0, 0}, 0);
    EXPECT_TRUE(m.prefetchAccess(0x080, 1)); // redundant
    EXPECT_EQ(m.counters().prefDroppedInflight, 1u);
    m.prefetchAccess(0x0c0, 1);
    EXPECT_TRUE(m.prefetchAccess(0x0c0, 2)); // redundant with prefetch
    EXPECT_EQ(m.counters().prefDroppedInflight, 2u);
}

TEST(Mshr, SeparateCapacities)
{
    Mshr m(1, 1);
    m.demandAccess(0x000, {0, 0, 0}, 0);
    EXPECT_TRUE(m.full());
    EXPECT_FALSE(m.prefetchFull()); // prefetch pool independent
    m.prefetchAccess(0x040, 0);
    EXPECT_TRUE(m.prefetchFull());
    m.retire(0x000);
    EXPECT_FALSE(m.full());
    EXPECT_TRUE(m.prefetchFull());
    m.retire(0x040);
    EXPECT_FALSE(m.prefetchFull());
}

TEST(Mshr, TotalRequestsCountsAllLookups)
{
    Mshr m(4, 4);
    m.demandAccess(0x000, {0, 0, 0}, 0);
    m.demandAccess(0x000, {0, 1, 0}, 0);
    m.prefetchAccess(0x040, 0);
    EXPECT_EQ(m.counters().totalRequests, 3u);
    m.noteFullStall();
    EXPECT_EQ(m.counters().fullStalls, 1u);
}

} // namespace
} // namespace mtp
