#include <gtest/gtest.h>

#include "mem/mrq.hh"

namespace mtp {
namespace {

MemRequest
req(Addr addr, ReqType type, CoreId core = 0)
{
    return MemRequest::make(blockAlign(addr), type, core, 0);
}

TEST(Mrq, FifoWithinCapacity)
{
    Mrq q(2);
    EXPECT_TRUE(q.push(req(0x000, ReqType::DemandLoad)));
    EXPECT_TRUE(q.push(req(0x040, ReqType::DemandLoad)));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(req(0x080, ReqType::DemandLoad)));
    EXPECT_EQ(q.counters().fullStalls, 1u);
    EXPECT_EQ(q.pop().addr, 0x000u);
    EXPECT_EQ(q.pop().addr, 0x040u);
    EXPECT_TRUE(q.empty());
}

TEST(Mrq, FifoOrderMixesDemandAndPrefetch)
{
    Mrq q(4);
    q.push(req(0x000, ReqType::SwPrefetch));
    q.push(req(0x040, ReqType::DemandLoad));
    // FIFO drain: the prefetch queued first leaves first (Sec. IV-B:
    // prefetch requests delay later demands in the core's queue).
    EXPECT_EQ(q.head().addr, 0x000u);
    EXPECT_EQ(q.pop().type, ReqType::SwPrefetch);
    EXPECT_EQ(q.pop().type, ReqType::DemandLoad);
}

TEST(Mrq, UpgradeToDemand)
{
    Mrq q(4);
    q.push(req(0x000, ReqType::HwPrefetch));
    q.push(req(0x040, ReqType::DemandStore));
    EXPECT_TRUE(q.upgradeToDemand(0x000));
    EXPECT_EQ(q.head().type, ReqType::DemandLoad);
    // Upgrading an absent or non-prefetch request is a no-op.
    EXPECT_FALSE(q.upgradeToDemand(0x080));
    EXPECT_FALSE(q.upgradeToDemand(0x040));
}

TEST(Mrq, CountersExport)
{
    Mrq q(4);
    q.push(req(0, ReqType::DemandLoad));
    StatSet s;
    q.exportStats(s, "mrq");
    EXPECT_DOUBLE_EQ(s.get("mrq.pushes"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("mrq.fullStalls"), 0.0);
}

TEST(MemRequest, MergeRules)
{
    EXPECT_TRUE(MemRequest::mergeable(ReqType::DemandLoad,
                                      ReqType::SwPrefetch));
    EXPECT_TRUE(MemRequest::mergeable(ReqType::HwPrefetch,
                                      ReqType::SwPrefetch));
    EXPECT_FALSE(MemRequest::mergeable(ReqType::DemandStore,
                                       ReqType::DemandLoad));
    EXPECT_TRUE(MemRequest::mergeable(ReqType::DemandStore,
                                      ReqType::DemandStore));

    MemRequest a = MemRequest::make(0x100 & ~63ULL, ReqType::HwPrefetch,
                                    0, 10, 32);
    MemRequest b = MemRequest::make(0x100 & ~63ULL, ReqType::DemandLoad,
                                    1, 5, 64);
    a.mergeFrom(std::move(b));
    EXPECT_EQ(a.type, ReqType::DemandLoad); // demand wins
    EXPECT_EQ(a.bytes, 64);                 // max transfer size
    EXPECT_EQ(a.created, 5u);               // earliest creation
    ASSERT_EQ(a.sharers.size(), 2u);
    EXPECT_EQ(a.sharers[0], 0u);
    EXPECT_EQ(a.sharers[1], 1u);
}

TEST(MemRequest, MergeDeduplicatesSharers)
{
    MemRequest a = MemRequest::make(0, ReqType::DemandLoad, 3, 0);
    MemRequest b = MemRequest::make(0, ReqType::DemandLoad, 3, 1);
    a.mergeFrom(std::move(b));
    EXPECT_EQ(a.sharers.size(), 1u);
}

} // namespace
} // namespace mtp
