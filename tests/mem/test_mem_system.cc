#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

SimConfig
memConfig()
{
    SimConfig cfg = test::tinyConfig();
    cfg.memLatencyExtra = 0;
    return cfg;
}

/** Tick until core @p core has at least @p n completions. */
Cycle
runUntil(MemSystem &mem, CoreId core, unsigned n, Cycle start = 0)
{
    Cycle now = start;
    while (mem.completions(core).size() < n) {
        mem.tick(now);
        ++now;
        EXPECT_LT(now, 100000u) << "memory system did not converge";
        if (now >= 100000u)
            break;
    }
    return now;
}

TEST(MemSystem, RoundTripLatencyFloor)
{
    SimConfig cfg = memConfig();
    MemSystem mem(cfg);
    EXPECT_TRUE(mem.issue(0, 0x0, ReqType::DemandLoad, 0));
    Cycle done = runUntil(mem, 0, 1);
    // At least: 2x interconnect + tRCD + tCL + burst.
    DramChannel probe(cfg, 0);
    Cycle floor = 2 * cfg.icntLatency + probe.tRcd() + probe.tCl() +
                  probe.burstCycles();
    EXPECT_GE(done, floor);
    EXPECT_LE(done, floor + 10);
    EXPECT_TRUE(mem.completions(0)[0].addr == 0x0);
    mem.clearCompletions(0);
    EXPECT_TRUE(mem.drained());
}

TEST(MemSystem, ChannelInterleavingByBlock)
{
    SimConfig cfg = memConfig();
    MemSystem mem(cfg);
    EXPECT_EQ(mem.channelOf(0x00), 0u);
    EXPECT_EQ(mem.channelOf(0x40), 1u);
    EXPECT_EQ(mem.channelOf(0x80), 0u); // 2 channels in tinyConfig
}

TEST(MemSystem, InjectionLimitOnePerPortPerCycle)
{
    // With 2 cores sharing one port, two same-cycle requests from the
    // two cores are injected on consecutive cycles.
    SimConfig cfg = memConfig();
    MemSystem mem(cfg);
    EXPECT_TRUE(mem.issue(0, 0x000, ReqType::DemandLoad, 0));
    EXPECT_TRUE(mem.issue(1, 0x100, ReqType::DemandLoad, 0));
    mem.tick(0);
    // Exactly one request left the MRQs in cycle 0.
    EXPECT_EQ(mem.mrq(0).size() + mem.mrq(1).size(), 1u);
    mem.tick(1);
    EXPECT_EQ(mem.mrq(0).size() + mem.mrq(1).size(), 0u);
}

TEST(MemSystem, StoresCompleteSilently)
{
    SimConfig cfg = memConfig();
    MemSystem mem(cfg);
    EXPECT_TRUE(mem.issue(0, 0x40, ReqType::DemandStore, 0));
    Cycle now = 0;
    while (!mem.drained() && now < 10000)
        mem.tick(now++);
    EXPECT_TRUE(mem.drained());
    EXPECT_TRUE(mem.completions(0).empty());
    EXPECT_GT(mem.dramBytes(), 0u);
}

TEST(MemSystem, InterCoreMergeDeliversToBothCores)
{
    SimConfig cfg = memConfig();
    cfg.icntCoresPerPort = 1; // let both cores inject in cycle 0
    MemSystem mem(cfg);
    EXPECT_TRUE(mem.issue(0, 0x40, ReqType::DemandLoad, 0));
    EXPECT_TRUE(mem.issue(1, 0x40, ReqType::DemandLoad, 0));
    Cycle now = 0;
    while ((mem.completions(0).empty() || mem.completions(1).empty()) &&
           now < 10000)
        mem.tick(now++);
    ASSERT_FALSE(mem.completions(0).empty());
    ASSERT_FALSE(mem.completions(1).empty());
    // One DRAM service for both cores.
    EXPECT_EQ(mem.channel(mem.channelOf(0x40)).counters().reads, 1u);
    EXPECT_EQ(mem.channel(mem.channelOf(0x40)).counters()
                  .interCoreMerges,
              1u);
    mem.clearCompletions(0);
    mem.clearCompletions(1);
}

TEST(MemSystem, UpgradeReachesQueuedPrefetch)
{
    SimConfig cfg = memConfig();
    MemSystem mem(cfg);
    EXPECT_TRUE(mem.issue(0, 0x80, ReqType::SwPrefetch, 0));
    // Still in the MRQ: upgrade must convert it.
    mem.upgradeToDemand(0, 0x80);
    EXPECT_EQ(mem.mrq(0).head().type, ReqType::DemandLoad);
}

TEST(MemSystem, BackpressureNeverLosesRequests)
{
    SimConfig cfg = memConfig();
    cfg.memBufEntries = 2;
    cfg.mrqEntries = 4;
    MemSystem mem(cfg);
    unsigned accepted = 0;
    Cycle now = 0;
    // Hammer one channel (stride of 2 blocks keeps channel 0).
    for (unsigned i = 0; i < 64; ++i) {
        if (mem.issue(0, static_cast<Addr>(i) * 2 * blockBytes,
                      ReqType::DemandLoad, now))
            ++accepted;
        mem.tick(now++);
    }
    while (!mem.drained() && now < 100000) {
        mem.clearCompletions(0);
        mem.tick(now++);
    }
    mem.clearCompletions(0);
    EXPECT_TRUE(mem.drained());
    std::uint64_t serviced = 0;
    for (unsigned ch = 0; ch < mem.numChannels(); ++ch)
        serviced += mem.channel(ch).counters().reads;
    EXPECT_EQ(serviced, accepted);
}

} // namespace
} // namespace mtp
