#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

SimConfig
dramConfig()
{
    SimConfig cfg;
    cfg.dramChannels = 1;
    cfg.dramBanks = 2;
    cfg.memBufEntries = 8;
    cfg.memLatencyExtra = 0; // expose raw bank timing to the tests
    return cfg;
}

MemRequest
mk(Addr addr, ReqType type = ReqType::DemandLoad)
{
    return MemRequest::make(blockAlign(addr), type, 0, 0);
}

/** Drive the channel until @p n requests complete; @return end cycle. */
Cycle
runUntil(DramChannel &ch, unsigned n, std::vector<MemRequest> &done,
         Cycle start = 0)
{
    Cycle now = start;
    while (done.size() < n) {
        ch.tick(now, done);
        ++now;
        EXPECT_LT(now, 100000u) << "DRAM test did not converge";
        if (now >= 100000u)
            break;
    }
    return now;
}

TEST(Dram, TimingConversionToCoreCycles)
{
    SimConfig cfg = dramConfig();
    DramChannel ch(cfg, 0);
    // 1.2 GHz DRAM / 900 MHz core: t_core = ceil(t_mem * 3 / 4).
    EXPECT_EQ(ch.tCl(), (11u * 3 + 3) / 4);
    EXPECT_EQ(ch.tRcd(), (11u * 3 + 3) / 4);
    EXPECT_EQ(ch.tRp(), (13u * 3 + 3) / 4);
    EXPECT_EQ(ch.burstCycles(), blockBytes / cfg.dramBusBytesPerCycle);
}

TEST(Dram, RowHitFasterThanConflict)
{
    SimConfig cfg = dramConfig();
    DramChannel ch(cfg, 0);
    std::vector<MemRequest> done;

    // Two accesses in the same row: the second is a row hit.
    ch.insert(mk(0x0000));
    runUntil(ch, 1, done);
    ch.insert(mk(0x0040));
    Cycle t0 = runUntil(ch, 2, done);
    EXPECT_EQ(ch.counters().rowHits, 1u);
    EXPECT_EQ(ch.counters().rowEmpty, 1u);

    // Now a far-away row in the same bank: conflict.
    std::uint64_t conflict_stride =
        static_cast<std::uint64_t>(cfg.dramRowBytes / blockBytes) *
        blockBytes * cfg.dramBanks; // next row group, same bank
    ch.insert(mk(conflict_stride * 64));
    Cycle t1 = runUntil(ch, 3, done);
    EXPECT_EQ(ch.counters().rowConflicts, 1u);
    // Conflict service must be longer than the row hit's.
    EXPECT_GT(t1 - t0, ch.tRp());
}

TEST(Dram, DemandPriorityOverPrefetch)
{
    SimConfig cfg = dramConfig();
    DramChannel ch(cfg, 0);
    std::vector<MemRequest> done;
    // Fill the buffer: prefetch first, then a demand to another bank.
    ch.insert(mk(0x00000, ReqType::HwPrefetch));
    ch.insert(mk(0x10000, ReqType::HwPrefetch));
    ch.insert(mk(0x20000, ReqType::DemandLoad));
    // The scheduler must pick the demand before the queued prefetches
    // that share its bank; service order: first prefetch was scheduled
    // at cycle 0 (buffer scan), so just check the demand beats the
    // second prefetch.
    runUntil(ch, 3, done);
    auto pos = [&](ReqType t, Addr a) {
        for (std::size_t i = 0; i < done.size(); ++i)
            if (done[i].type == t && done[i].addr == a)
                return static_cast<int>(i);
        return -1;
    };
    EXPECT_LT(pos(ReqType::DemandLoad, 0x20000),
              pos(ReqType::HwPrefetch, 0x10000));
}

TEST(Dram, SparseBurstIsShorter)
{
    SimConfig cfg = dramConfig();
    DramChannel ch(cfg, 0);
    std::vector<MemRequest> done;
    MemRequest sparse = mk(0x0000);
    sparse.bytes = 32;
    ch.insert(std::move(sparse));
    runUntil(ch, 1, done);
    EXPECT_EQ(ch.counters().bytesTransferred, 32u);
    ch.insert(mk(0x0040)); // dense, row hit
    runUntil(ch, 2, done);
    EXPECT_EQ(ch.counters().bytesTransferred, 32u + 64u);
}

TEST(Dram, InterCoreMerging)
{
    SimConfig cfg = dramConfig();
    DramChannel ch(cfg, 0);
    MemRequest a = MemRequest::make(0x40, ReqType::DemandLoad, 0, 0);
    MemRequest b = MemRequest::make(0x40, ReqType::HwPrefetch, 1, 1);
    EXPECT_FALSE(ch.insert(std::move(a)));
    EXPECT_TRUE(ch.insert(std::move(b))); // merged
    EXPECT_EQ(ch.counters().interCoreMerges, 1u);
    std::vector<MemRequest> done;
    runUntil(ch, 1, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].sharers.size(), 2u);
    EXPECT_EQ(done[0].type, ReqType::DemandLoad);
}

TEST(Dram, UpgradeBufferedPrefetch)
{
    SimConfig cfg = dramConfig();
    DramChannel ch(cfg, 0);
    ch.insert(mk(0x40, ReqType::SwPrefetch));
    EXPECT_TRUE(ch.upgradeToDemand(0x40));
    EXPECT_FALSE(ch.upgradeToDemand(0x80));
    std::vector<MemRequest> done;
    runUntil(ch, 1, done);
    EXPECT_EQ(done[0].type, ReqType::DemandLoad);
}

TEST(Dram, ExtraLatencyDelaysResponseNotBank)
{
    SimConfig cfg = dramConfig();
    DramChannel fast(cfg, 0);
    cfg.memLatencyExtra = 500;
    DramChannel slow(cfg, 0);
    std::vector<MemRequest> done_fast, done_slow;
    fast.insert(mk(0x0));
    slow.insert(mk(0x0));
    Cycle t_fast = runUntil(fast, 1, done_fast);
    Cycle t_slow = runUntil(slow, 1, done_slow);
    EXPECT_EQ(t_slow - t_fast, 500u);
}

TEST(Dram, DrainedTracksOutstandingWork)
{
    SimConfig cfg = dramConfig();
    DramChannel ch(cfg, 0);
    EXPECT_TRUE(ch.drained());
    ch.insert(mk(0x0));
    EXPECT_FALSE(ch.drained());
    std::vector<MemRequest> done;
    runUntil(ch, 1, done);
    EXPECT_TRUE(ch.drained());
}

} // namespace
} // namespace mtp
