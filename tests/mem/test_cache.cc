#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace mtp {
namespace {

TEST(SetAssocCache, Geometry)
{
    SetAssocCache c(16 * 1024, 8);
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_EQ(c.assoc(), 8u);
    EXPECT_EQ(c.capacityBytes(), 16u * 1024);
}

TEST(SetAssocCache, InsertLookupInvalidate)
{
    SetAssocCache c(1024, 2);
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.insert(0x1000, 0x3).has_value());
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x1004)); // same block
    auto *line = c.lookup(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->flags, 0x3);
    auto old = c.invalidate(0x1000);
    ASSERT_TRUE(old.has_value());
    EXPECT_EQ(old->addr, 0x1000u);
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000).has_value());
}

TEST(SetAssocCache, LruEviction)
{
    SetAssocCache c(256, 2); // 4 blocks, 2 sets, 2 ways
    unsigned sets = c.numSets();
    // Three blocks mapping to set 0: stride = sets * blockBytes.
    Addr a = 0, b = sets * blockBytes, d = 2 * sets * blockBytes;
    c.insert(a, 0);
    c.insert(b, 0);
    c.lookup(a); // make a MRU, b LRU
    auto evicted = c.insert(d, 0);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, b);
    EXPECT_TRUE(c.contains(a));
    EXPECT_TRUE(c.contains(d));
}

TEST(SetAssocCache, ReinsertRefreshesWithoutEviction)
{
    SetAssocCache c(128, 2); // one set, two ways
    c.insert(0, 1);
    c.insert(64 * c.numSets(), 2);
    auto evicted = c.insert(0, 7); // already resident
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(c.lookup(0)->flags, 7);
    EXPECT_EQ(c.validLines(), 2u);
}

TEST(SetAssocCache, ResetClearsEverything)
{
    SetAssocCache c(512, 4);
    for (Addr a = 0; a < 512; a += blockBytes)
        c.insert(a, 0);
    EXPECT_GT(c.validLines(), 0u);
    c.reset();
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_FALSE(c.contains(0));
}

/** Property: most-recently-used line is never the victim. */
TEST(SetAssocCache, MruNeverEvicted)
{
    SetAssocCache c(512, 4); // 8 blocks, 2 sets
    unsigned stride = c.numSets() * blockBytes;
    Addr mru = 0;
    c.insert(mru, 0);
    for (unsigned i = 1; i < 32; ++i) {
        c.lookup(mru); // keep hot
        auto evicted = c.insert(static_cast<Addr>(i) * stride, 0);
        if (evicted)
            EXPECT_NE(evicted->addr, mru);
    }
    EXPECT_TRUE(c.contains(mru));
}

} // namespace
} // namespace mtp
