#include <gtest/gtest.h>

#include "mem/prefetch_cache.hh"

namespace mtp {
namespace {

TEST(PrefetchCache, FillAndFirstUseHit)
{
    PrefetchCache pc(1024, 2);
    EXPECT_FALSE(pc.demandAccess(0x100));
    EXPECT_EQ(pc.counters().demandMisses, 1u);
    pc.fill(0x100);
    EXPECT_TRUE(pc.demandAccess(0x100));
    EXPECT_EQ(pc.counters().useful, 1u);
    EXPECT_EQ(pc.counters().demandHits, 1u);
    // Second hit on the same block is a hit but not "useful" again.
    EXPECT_TRUE(pc.demandAccess(0x104));
    EXPECT_EQ(pc.counters().useful, 1u);
    EXPECT_EQ(pc.counters().demandHits, 2u);
}

TEST(PrefetchCache, EarlyEvictionCountsUnusedVictims)
{
    PrefetchCache pc(128, 1); // 2 blocks, direct mapped, 2 sets
    // Two blocks in the same set.
    Addr a = 0, b = 2 * blockBytes;
    pc.fill(a);
    pc.fill(b); // evicts a unused -> early eviction
    EXPECT_EQ(pc.counters().earlyEvictions, 1u);
    // Use b, then evict it: not an early eviction.
    EXPECT_TRUE(pc.demandAccess(b));
    pc.fill(a);
    EXPECT_EQ(pc.counters().earlyEvictions, 1u);
}

TEST(PrefetchCache, RedundantFillRefreshesKeepsUsedBit)
{
    PrefetchCache pc(1024, 2);
    pc.fill(0x200);
    EXPECT_TRUE(pc.demandAccess(0x200));
    pc.fill(0x200); // redundant
    EXPECT_EQ(pc.counters().redundantFills, 1u);
    // Still counts as used: evicting it later is not early.
    EXPECT_TRUE(pc.demandAccess(0x200));
    EXPECT_EQ(pc.counters().useful, 1u);
}

TEST(PrefetchCache, ResetKeepsCounters)
{
    PrefetchCache pc(1024, 2);
    pc.fill(0x300);
    pc.reset();
    EXPECT_FALSE(pc.contains(0x300));
    EXPECT_EQ(pc.counters().fills, 1u); // counters persist
}

TEST(PrefetchCache, ExportStats)
{
    PrefetchCache pc(1024, 2);
    pc.fill(0x400);
    pc.demandAccess(0x400);
    StatSet s;
    pc.exportStats(s, "pc");
    EXPECT_DOUBLE_EQ(s.get("pc.fills"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("pc.useful"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("pc.demandMisses"), 0.0);
}

/** Invariant: useful + earlyEvictions never exceeds fills. */
TEST(PrefetchCache, AccountingInvariant)
{
    PrefetchCache pc(256, 2);
    std::uint64_t salt = 0x9e3779b9;
    for (unsigned i = 0; i < 500; ++i) {
        Addr a = ((i * salt) % 64) * blockBytes;
        if (i % 3 == 0)
            pc.fill(a);
        else
            pc.demandAccess(a);
        const auto &c = pc.counters();
        EXPECT_LE(c.useful + c.earlyEvictions,
                  c.fills - c.redundantFills);
    }
}

} // namespace
} // namespace mtp
