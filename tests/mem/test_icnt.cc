#include <gtest/gtest.h>

#include "mem/icnt.hh"

namespace mtp {
namespace {

TEST(Icnt, FixedLatencyDelivery)
{
    Icnt net(2, 20);
    net.send(0, MemRequest::make(0x000, ReqType::DemandLoad, 0, 5), 5);
    EXPECT_FALSE(net.frontReady(0, 24));
    EXPECT_TRUE(net.frontReady(0, 25));
    EXPECT_FALSE(net.frontReady(1, 100));
    MemRequest r = net.pop(0);
    EXPECT_EQ(r.addr, 0x000u);
    EXPECT_TRUE(net.drained());
}

TEST(Icnt, OrderPreservedPerDestination)
{
    Icnt net(1, 3);
    net.send(0, MemRequest::make(0x000, ReqType::DemandLoad, 0, 0), 0);
    net.send(0, MemRequest::make(0x040, ReqType::DemandLoad, 0, 1), 1);
    EXPECT_EQ(net.inFlight(0), 2u);
    ASSERT_TRUE(net.frontReady(0, 10));
    EXPECT_EQ(net.pop(0).addr, 0x000u);
    EXPECT_EQ(net.pop(0).addr, 0x040u);
}

TEST(Icnt, UpgradeInFlightPrefetch)
{
    Icnt net(1, 10);
    net.send(0, MemRequest::make(0x080, ReqType::HwPrefetch, 0, 0), 0);
    EXPECT_TRUE(net.upgradeToDemand(0, 0x080));
    EXPECT_FALSE(net.upgradeToDemand(0, 0x0c0));
    MemRequest r = net.pop(0);
    EXPECT_EQ(r.type, ReqType::DemandLoad);
    // Upgrading a demand is a no-op.
    net.send(0, MemRequest::make(0x100, ReqType::DemandLoad, 0, 0), 0);
    EXPECT_FALSE(net.upgradeToDemand(0, 0x100));
}

TEST(Icnt, Counters)
{
    Icnt net(3, 1);
    net.send(2, MemRequest::make(0, ReqType::DemandLoad, 0, 0), 0);
    EXPECT_EQ(net.packetsSent(), 1u);
    EXPECT_EQ(net.totalInFlight(), 1u);
    StatSet s;
    net.exportStats(s, "net");
    EXPECT_DOUBLE_EQ(s.get("net.packets"), 1.0);
}

} // namespace
} // namespace mtp
