#include <gtest/gtest.h>

#include "core/stream_prefetcher.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

TEST(Stream, DetectsAscendingDirection)
{
    SimConfig cfg;
    StreamPrefetcher pref(cfg);
    test::ObsDriver drv;
    EXPECT_TRUE(drv.observe(pref, 0, 0, 0x10000).empty()); // allocate
    EXPECT_TRUE(drv.observe(pref, 0, 0, 0x10040).empty()); // conf 1
    auto out = drv.observe(pref, 0, 0, 0x10080); // conf 2 -> prefetch
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x10080u + blockBytes); // next block ascending
}

TEST(Stream, DetectsDescendingDirection)
{
    SimConfig cfg;
    StreamPrefetcher pref(cfg);
    test::ObsDriver drv;
    drv.observe(pref, 0, 0, 0x20200);
    drv.observe(pref, 0, 0, 0x201c0);
    auto out = drv.observe(pref, 0, 0, 0x20180);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x20180u - blockBytes);
}

TEST(Stream, DirectionFlipResetsConfidence)
{
    SimConfig cfg;
    StreamPrefetcher pref(cfg);
    test::ObsDriver drv;
    drv.observe(pref, 0, 0, 0x30000);
    drv.observe(pref, 0, 0, 0x30040);
    drv.observe(pref, 0, 0, 0x30080);
    // Reverse: confidence resets, no prefetch on the first flip.
    EXPECT_TRUE(drv.observe(pref, 0, 0, 0x30040).empty());
}

TEST(Stream, FarJumpRestartsTracking)
{
    SimConfig cfg;
    StreamPrefetcher pref(cfg);
    test::ObsDriver drv;
    drv.observe(pref, 0, 0, 0x40000);
    drv.observe(pref, 0, 0, 0x40040);
    // Jump beyond the window: tracking restarts, no prefetch soon.
    EXPECT_TRUE(drv.observe(pref, 0, 0, 0x48000).empty());
    EXPECT_TRUE(drv.observe(pref, 0, 0, 0x48040).empty());
    auto out = drv.observe(pref, 0, 0, 0x48080);
    EXPECT_EQ(out.size(), 1u);
}

TEST(Stream, CrossesZoneBoundaries)
{
    SimConfig cfg;
    StreamPrefetcher pref(cfg);
    test::ObsDriver drv;
    // March a long stream; prefetches must keep coming across the
    // 16-block zone boundary.
    unsigned generated = 0;
    for (unsigned i = 0; i < 40; ++i)
        generated +=
            drv.observe(pref, 0, 0, 0x50000 + i * blockBytes).size();
    EXPECT_GE(generated, 36u);
}

TEST(Stream, WarpTrainingSeparatesInterleavedStreams)
{
    SimConfig cfg;
    cfg.hwPrefWarpTraining = true;
    StreamPrefetcher pref(cfg);
    test::ObsDriver drv;
    // Two warps marching opposite directions through nearby blocks.
    unsigned generated = 0;
    for (unsigned i = 0; i < 6; ++i) {
        generated +=
            drv.observe(pref, 0, 0, 0x60000 + i * blockBytes).size();
        generated +=
            drv.observe(pref, 0, 1, 0x60400 - i * blockBytes).size();
    }
    EXPECT_GE(generated, 8u);
    EXPECT_EQ(pref.name(), "stream.warp");
}

} // namespace
} // namespace mtp
