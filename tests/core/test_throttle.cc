#include <gtest/gtest.h>

#include "core/throttle.hh"

namespace mtp {
namespace {

SimConfig
throttleConfig()
{
    SimConfig cfg;
    cfg.throttleInitDegree = 2;
    cfg.earlyEvictHigh = 1.5;
    cfg.earlyEvictLow = 0.5;
    cfg.mergeHigh = 0.15;
    return cfg;
}

/** Build a cumulative snapshot from per-period values. */
class SnapshotFeeder
{
  public:
    ThrottleEngine::Snapshot
    feed(std::uint64_t early, std::uint64_t useful, std::uint64_t fills,
         std::uint64_t merges, std::uint64_t total,
         std::uint64_t hits = 0)
    {
        cum_.earlyEvictions += early;
        cum_.useful += useful;
        cum_.fills += fills;
        cum_.merges += merges;
        cum_.totalRequests += total;
        cum_.prefCacheHits += hits;
        return cum_;
    }

  private:
    ThrottleEngine::Snapshot cum_{};
};

TEST(Throttle, DropFractionTracksDegree)
{
    SimConfig cfg = throttleConfig();
    cfg.throttleInitDegree = 2;
    ThrottleEngine t(cfg);
    unsigned dropped = 0;
    for (unsigned i = 0; i < 1000; ++i)
        dropped += t.shouldDrop() ? 1 : 0;
    EXPECT_EQ(dropped, 400u); // degree 2 of 5
}

TEST(Throttle, HighEarlyRateDisablesPrefetching)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    SnapshotFeeder f;
    // 100 early evictions per 10 useful: rate 10 >> high threshold.
    t.updatePeriod(f.feed(100, 10, 200, 0, 1000));
    EXPECT_EQ(t.degree(), ThrottleEngine::noPrefetchDegree);
    unsigned dropped = 0;
    for (unsigned i = 0; i < 100; ++i)
        dropped += t.shouldDrop() ? 1 : 0;
    EXPECT_EQ(dropped, 100u);
}

TEST(Throttle, MediumEarlyRateIncrementsDegree)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    SnapshotFeeder f;
    // rate 1.0: between low (0.5) and high (1.5).
    t.updatePeriod(f.feed(50, 50, 200, 0, 1000));
    EXPECT_EQ(t.degree(), 3u);
    t.updatePeriod(f.feed(50, 50, 200, 0, 1000));
    EXPECT_EQ(t.degree(), 4u);
}

TEST(Throttle, LowEarlyHighMergeDecrementsDegree)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    SnapshotFeeder f;
    // Healthy: no early evictions, lots of merges.
    t.updatePeriod(f.feed(0, 100, 150, 400, 1000));
    EXPECT_EQ(t.degree(), 1u);
    t.updatePeriod(f.feed(0, 100, 150, 400, 1000));
    EXPECT_EQ(t.degree(), 0u);
    t.updatePeriod(f.feed(0, 100, 150, 400, 1000));
    EXPECT_EQ(t.degree(), 0u); // saturates at 0
}

TEST(Throttle, LowLowDisablesPrefetching)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    SnapshotFeeder f;
    // Warm up the merge EWMA at a high value first.
    t.updatePeriod(f.feed(0, 100, 150, 400, 1000));
    // Then: no early evictions AND negligible merging (Table I row 4).
    for (int i = 0; i < 6; ++i)
        t.updatePeriod(f.feed(0, 100, 150, 0, 100000));
    EXPECT_EQ(t.degree(), ThrottleEngine::noPrefetchDegree);
}

TEST(Throttle, PrefetchCacheHitsCountTowardMergeRatio)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    SnapshotFeeder f;
    // Perfectly covered flow: no merges at the MSHR, but every demand
    // hits the prefetch cache. The engine must keep prefetching.
    for (int i = 0; i < 4; ++i)
        t.updatePeriod(f.feed(0, 900, 1000, 0, 1100, /*hits=*/900));
    EXPECT_EQ(t.degree(), 0u);
}

TEST(Throttle, ColdStartProbesInsteadOfJudging)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    SnapshotFeeder f;
    // Fills issued but none consumed yet (cold start): unobservable;
    // the degree walks down rather than tripping the Low/Low rule.
    t.updatePeriod(f.feed(0, 0, 100, 0, 1000));
    EXPECT_EQ(t.degree(), 1u);
    t.updatePeriod(f.feed(0, 0, 100, 0, 1000));
    EXPECT_EQ(t.degree(), 0u);
}

TEST(Throttle, ProbeBackoffGrowsWhileHarmful)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    SnapshotFeeder f;
    // Harmful period: disabled, probe backoff doubles to 2.
    t.updatePeriod(f.feed(500, 10, 600, 0, 1000));
    ASSERT_EQ(t.degree(), ThrottleEngine::noPrefetchDegree);
    // Two idle periods are now needed before the first probe.
    t.updatePeriod(f.feed(0, 0, 0, 0, 1000));
    EXPECT_EQ(t.degree(), ThrottleEngine::noPrefetchDegree);
    t.updatePeriod(f.feed(0, 0, 0, 0, 1000));
    EXPECT_EQ(t.degree(), ThrottleEngine::noPrefetchDegree - 1);
    // Re-confirmed harmful: backoff doubles to 4.
    t.updatePeriod(f.feed(500, 10, 600, 0, 1000));
    ASSERT_EQ(t.degree(), ThrottleEngine::noPrefetchDegree);
    for (int i = 0; i < 3; ++i) {
        t.updatePeriod(f.feed(0, 0, 0, 0, 1000));
        EXPECT_EQ(t.degree(), ThrottleEngine::noPrefetchDegree);
    }
    t.updatePeriod(f.feed(0, 0, 0, 0, 1000));
    EXPECT_EQ(t.degree(), ThrottleEngine::noPrefetchDegree - 1);
}

TEST(Throttle, MergeRatioUsesEq8Average)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    SnapshotFeeder f;
    t.updatePeriod(f.feed(0, 100, 150, 400, 1000)); // monitored 0.4
    EXPECT_NEAR(t.currentMergeRatio(), 0.4, 1e-9);  // seeded
    t.updatePeriod(f.feed(0, 100, 150, 0, 1000));   // monitored 0.0
    EXPECT_NEAR(t.currentMergeRatio(), 0.2, 1e-9);  // (0.4 + 0) / 2
}

TEST(Throttle, ExportStats)
{
    SimConfig cfg = throttleConfig();
    ThrottleEngine t(cfg);
    t.shouldDrop();
    StatSet s;
    t.exportStats(s, "th");
    EXPECT_TRUE(s.has("th.degree"));
    EXPECT_DOUBLE_EQ(s.get("th.dropped") + s.get("th.allowed"), 1.0);
}

TEST(LatenessThrottle, RampsWithLateFraction)
{
    LatenessThrottle t;
    EXPECT_EQ(t.level(), 0u);
    t.updatePeriod(0.9);
    t.updatePeriod(0.9);
    EXPECT_EQ(t.level(), 2u);
    t.updatePeriod(0.3); // between bounds: hold
    EXPECT_EQ(t.level(), 2u);
    t.updatePeriod(0.05);
    EXPECT_EQ(t.level(), 1u);
    for (int i = 0; i < 10; ++i)
        t.updatePeriod(0.9);
    EXPECT_EQ(t.level(), LatenessThrottle::maxLevel);
    unsigned dropped = 0;
    for (int i = 0; i < 100; ++i)
        dropped += t.shouldDrop() ? 1 : 0;
    EXPECT_EQ(dropped, 100u);
}

} // namespace
} // namespace mtp
