#include <gtest/gtest.h>

#include "core/mt_hwp.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

SimConfig
hwpConfig()
{
    SimConfig cfg;
    cfg.pwsEntries = 32;
    cfg.gsEntries = 8;
    cfg.ipEntries = 8;
    cfg.ipDistanceWarps = 1; // unit distance keeps test math simple
    return cfg;
}

TEST(MtHwp, PwsTrainsPerWarp)
{
    SimConfig cfg = hwpConfig();
    MtHwpPrefetcher pref(cfg, {/*pws=*/true, /*gs=*/false, /*ip=*/false});
    test::ObsDriver drv;
    drv.observe(pref, 0x10, 3, 0x1000);
    drv.observe(pref, 0x10, 3, 0x2000);
    auto out = drv.observe(pref, 0x10, 3, 0x3000);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blockAlign(0x3000 + 0x1000));
    EXPECT_EQ(pref.pwsHits(), 1u);
    EXPECT_EQ(pref.gsHits(), 0u);
    EXPECT_EQ(pref.name(), "mthwp:pws");
}

TEST(MtHwp, StridePromotionAfterThreeAgreeingWarps)
{
    SimConfig cfg = hwpConfig();
    MtHwpPrefetcher pref(cfg, {true, true, false});
    test::ObsDriver drv;
    // Warps 0..2 each train stride 0x1000 at PC 0x1a (Fig. 5 left).
    for (unsigned w = 0; w < 3; ++w) {
        for (unsigned i = 0; i < 3; ++i)
            drv.observe(pref, 0x1a, w, w * 0x10 + i * 0x1000);
    }
    EXPECT_EQ(pref.promotions(), 1u);
    EXPECT_EQ(pref.gsStride(0x1a), 0x1000);
    // A yet-untrained warp now prefetches immediately via the GS table.
    auto out = drv.observe(pref, 0x1a, 7, 0x70);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blockAlign(0x70 + 0x1000));
    EXPECT_GE(pref.gsHits(), 1u);
    EXPECT_GE(pref.pwsAccessesSaved(), 1u);
}

TEST(MtHwp, NoPromotionWhenStridesDisagree)
{
    SimConfig cfg = hwpConfig();
    MtHwpPrefetcher pref(cfg, {true, true, false});
    test::ObsDriver drv;
    Stride strides[3] = {0x1000, 0x1000, 0x800};
    for (unsigned w = 0; w < 3; ++w) {
        for (unsigned i = 0; i < 3; ++i)
            drv.observe(pref, 0x1a, w,
                        w * 0x10 + i * static_cast<Addr>(strides[w]));
    }
    EXPECT_EQ(pref.promotions(), 0u);
    EXPECT_EQ(pref.gsStride(0x1a), 0);
}

TEST(MtHwp, IpTableTrainsAcrossWarps)
{
    SimConfig cfg = hwpConfig();
    MtHwpPrefetcher pref(cfg, {false, false, true});
    test::ObsDriver drv;
    // Warps 0..3 at the same PC, 0x80 apart: cross-warp stride 0x80.
    // ipTrainCount=3 consistent deltas are required.
    drv.observe(pref, 0x2a, 0, 0x1000);
    drv.observe(pref, 0x2a, 1, 0x1080);
    drv.observe(pref, 0x2a, 2, 0x1100);
    EXPECT_FALSE(pref.ipTrained(0x2a));
    drv.observe(pref, 0x2a, 3, 0x1180);
    EXPECT_TRUE(pref.ipTrained(0x2a));
    auto out = drv.observe(pref, 0x2a, 4, 0x1200);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blockAlign(0x1200 + 0x80)); // ipDistanceWarps=1
    EXPECT_GE(pref.ipHits(), 1u);
}

TEST(MtHwp, IpHandlesNonUnitWarpDeltas)
{
    SimConfig cfg = hwpConfig();
    MtHwpPrefetcher pref(cfg, {false, false, true});
    test::ObsDriver drv;
    // Warps observed out of order: deltas of 2 and 1 warps, same
    // per-warp stride 0x80.
    drv.observe(pref, 0x2a, 0, 0x1000);
    drv.observe(pref, 0x2a, 2, 0x1100);
    drv.observe(pref, 0x2a, 3, 0x1180);
    drv.observe(pref, 0x2a, 5, 0x1280);
    EXPECT_TRUE(pref.ipTrained(0x2a));
}

TEST(MtHwp, IpDistanceScalesTarget)
{
    SimConfig cfg = hwpConfig();
    cfg.ipDistanceWarps = 8;
    MtHwpPrefetcher pref(cfg, {false, false, true});
    test::ObsDriver drv;
    for (unsigned w = 0; w < 4; ++w)
        drv.observe(pref, 0x2a, w, 0x1000 + w * 0x80);
    auto out = drv.observe(pref, 0x2a, 4, 0x1200);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blockAlign(0x1200 + 8 * 0x80));
}

TEST(MtHwp, GsPriorityOverIpAndPws)
{
    SimConfig cfg = hwpConfig();
    MtHwpPrefetcher pref(cfg); // all tables
    test::ObsDriver drv;
    // Train IP and PWS and promote to GS at one PC.
    for (unsigned w = 0; w < 4; ++w)
        for (unsigned i = 0; i < 3; ++i)
            drv.observe(pref, 0x3a, w, w * 0x80 + i * 0x1000);
    ASSERT_GT(pref.promotions(), 0u);
    std::uint64_t gs_before = pref.gsHits();
    std::uint64_t pws_before = pref.pwsAccesses();
    drv.observe(pref, 0x3a, 9, 0x9000);
    EXPECT_EQ(pref.gsHits(), gs_before + 1);
    EXPECT_EQ(pref.pwsAccesses(), pws_before); // GS hit skips PWS probe
}

TEST(MtHwp, TableVICostModel)
{
    EXPECT_EQ(MtHwpPrefetcher::pwsEntryBits, 93u);
    EXPECT_EQ(MtHwpPrefetcher::gsEntryBits, 52u);
    EXPECT_EQ(MtHwpPrefetcher::ipEntryBits, 133u);
    SimConfig cfg; // 32 PWS, 8 GS, 8 IP (Sec. VIII-B)
    EXPECT_EQ(MtHwpPrefetcher::costBits(cfg),
              32u * 93 + 8u * 52 + 8u * 133);
    EXPECT_EQ(MtHwpPrefetcher::costBytes(cfg), 557u); // Table VI
}

TEST(MtHwp, AblationTablesIsolate)
{
    SimConfig cfg = hwpConfig();
    MtHwpPrefetcher pws_only(cfg, {true, false, false});
    MtHwpPrefetcher ip_only(cfg, {false, false, true});
    EXPECT_EQ(pws_only.name(), "mthwp:pws");
    EXPECT_EQ(ip_only.name(), "mthwp:+ip");
    test::ObsDriver drv;
    // Cross-warp-only pattern: PWS-only stays silent, IP-only fires.
    unsigned pws_gen = 0, ip_gen = 0;
    for (unsigned w = 0; w < 6; ++w) {
        pws_gen += drv.observe(pws_only, 0x4a, w, 0x2000 + w * 0x100)
                       .size();
        ip_gen += drv.observe(ip_only, 0x4a, w, 0x2000 + w * 0x100)
                      .size();
    }
    EXPECT_EQ(pws_gen, 0u);
    EXPECT_GT(ip_gen, 0u);
}

TEST(MtHwp, StatsExport)
{
    SimConfig cfg = hwpConfig();
    MtHwpPrefetcher pref(cfg);
    test::ObsDriver drv;
    for (unsigned i = 0; i < 3; ++i)
        drv.observe(pref, 0x10, 0, i * 0x100);
    StatSet s;
    pref.exportStats(s, "hwp");
    EXPECT_GT(s.get("hwp.observations"), 0.0);
    EXPECT_TRUE(s.has("hwp.promotions"));
    EXPECT_TRUE(s.has("hwp.pwsAccessesSaved"));
}

} // namespace
} // namespace mtp
