#include <gtest/gtest.h>

#include "core/ghb.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

TEST(Ghb, ConstantStrideFallback)
{
    SimConfig cfg;
    GhbPrefetcher pref(cfg);
    test::ObsDriver drv;
    drv.observe(pref, 0, 0, 0x100000);
    drv.observe(pref, 0, 0, 0x100100);
    auto out = drv.observe(pref, 0, 0, 0x100200);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blockAlign(0x100200 + 0x100));
}

TEST(Ghb, DeltaCorrelationOnRepeatingPattern)
{
    SimConfig cfg;
    GhbPrefetcher pref(cfg);
    test::ObsDriver drv;
    // Repeating delta pattern +0x40, +0x40, +0x180 within one CZone.
    Addr a = 0x200000;
    std::vector<Stride> deltas = {0x40, 0x40, 0x180,
                                  0x40, 0x40, 0x180, 0x40};
    std::vector<Addr> out;
    drv.observe(pref, 0, 0, a);
    for (auto d : deltas) {
        a += d;
        out = drv.observe(pref, 0, 0, a);
    }
    // The history now ends ... 0x180, 0x40; its previous occurrence
    // was followed by +0x40, so that is the correlated prediction.
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], blockAlign(a + 0x40));
}

TEST(Ghb, SeparateCZonesDoNotInterfere)
{
    SimConfig cfg;
    GhbPrefetcher pref(cfg);
    test::ObsDriver drv;
    // Interleave two zones with different strides.
    unsigned generated = 0;
    for (unsigned i = 0; i < 4; ++i) {
        generated += drv.observe(pref, 0, 0, 0x300000 + i * 0x80).size();
        generated += drv.observe(pref, 0, 0, 0x500000 + i * 0x200).size();
    }
    EXPECT_GE(generated, 4u);
}

TEST(Ghb, FeedbackAdjustsDegree)
{
    SimConfig cfg;
    cfg.ghbFeedback = true;
    GhbPrefetcher pref(cfg);
    EXPECT_EQ(pref.degree(), 1u);
    pref.feedback(0.9, 0.0);
    EXPECT_EQ(pref.degree(), 2u);
    pref.feedback(0.9, 0.0);
    pref.feedback(0.9, 0.0);
    pref.feedback(0.9, 0.0);
    EXPECT_EQ(pref.degree(), GhbPrefetcher::maxDegree);
    pref.feedback(0.05, 0.0);
    EXPECT_EQ(pref.degree(), GhbPrefetcher::maxDegree - 1);
    EXPECT_EQ(pref.name(), "ghb.warp+f");
}

TEST(Ghb, FeedbackDisabledIsNoOp)
{
    SimConfig cfg;
    cfg.ghbFeedback = false;
    GhbPrefetcher pref(cfg);
    pref.feedback(0.9, 0.0);
    EXPECT_EQ(pref.degree(), 1u);
}

TEST(Ghb, FifoWrapInvalidatesStaleLinks)
{
    SimConfig cfg;
    cfg.ghbEntries = 8; // tiny FIFO to force wraparound
    GhbPrefetcher pref(cfg);
    test::ObsDriver drv;
    // Fill the FIFO with one zone, then flood with another, then come
    // back: the old chain must not produce bogus predictions.
    drv.observe(pref, 0, 0, 0x600000);
    drv.observe(pref, 0, 0, 0x600100);
    for (unsigned i = 0; i < 16; ++i)
        drv.observe(pref, 0, 0, 0x700000 + i * 0x40);
    auto out = drv.observe(pref, 0, 0, 0x600200);
    // History wrapped: at most a fresh-allocation, never a confident
    // prediction from the stale chain.
    EXPECT_TRUE(out.empty());
}

TEST(Ghb, StatsExport)
{
    SimConfig cfg;
    GhbPrefetcher pref(cfg);
    test::ObsDriver drv;
    for (unsigned i = 0; i < 4; ++i)
        drv.observe(pref, 0, 0, 0x800000 + i * 0x100);
    StatSet s;
    pref.exportStats(s, "ghb");
    EXPECT_GT(s.get("ghb.observations"), 0.0);
    EXPECT_GT(s.get("ghb.strideFallbacks"), 0.0);
}

} // namespace
} // namespace mtp
