#include <gtest/gtest.h>

#include "core/stride_rpt.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

TEST(StrideRpt, TrainsPerRegionNotPerPc)
{
    SimConfig cfg;
    StrideRptPrefetcher pref(cfg);
    test::ObsDriver drv;
    // Different PCs, same 64 KB region, constant stride: still trains.
    drv.observe(pref, 0x10, 0, 0x100000);
    drv.observe(pref, 0x20, 0, 0x100200);
    auto out = drv.observe(pref, 0x30, 0, 0x100400);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blockAlign(0x100400 + 0x200));
}

TEST(StrideRpt, DifferentRegionsTrackedIndependently)
{
    SimConfig cfg;
    StrideRptPrefetcher pref(cfg);
    test::ObsDriver drv;
    // Interleave two regions with different strides.
    drv.observe(pref, 0x10, 0, 0x100000);
    drv.observe(pref, 0x10, 0, 0x900000);
    drv.observe(pref, 0x10, 0, 0x100100);
    drv.observe(pref, 0x10, 0, 0x900040);
    auto out_a = drv.observe(pref, 0x10, 0, 0x100200);
    ASSERT_EQ(out_a.size(), 1u);
    EXPECT_EQ(out_a[0], blockAlign(0x100200 + 0x100));
    auto out_b = drv.observe(pref, 0x10, 0, 0x900080);
    ASSERT_EQ(out_b.size(), 1u);
    EXPECT_EQ(out_b[0], blockAlign(0x900080 + 0x40));
}

TEST(StrideRpt, WarpTrainingNameAndSeparation)
{
    SimConfig cfg;
    cfg.hwPrefWarpTraining = false;
    StrideRptPrefetcher naive(cfg);
    EXPECT_EQ(naive.name(), "stride_rpt");
    cfg.hwPrefWarpTraining = true;
    StrideRptPrefetcher enhanced(cfg);
    EXPECT_EQ(enhanced.name(), "stride_rpt.warp");

    // Two warps in the same region with different strides confuse the
    // naive version but not the enhanced one.
    test::ObsDriver drv;
    unsigned naive_gen = 0, enhanced_gen = 0;
    for (unsigned i = 0; i < 4; ++i) {
        naive_gen += drv.observe(naive, 0x10, 0, 0x100000 + i * 0x80)
                         .size();
        naive_gen += drv.observe(naive, 0x10, 1, 0x108000 + i * 0x200)
                         .size();
        enhanced_gen +=
            drv.observe(enhanced, 0x10, 0, 0x100000 + i * 0x80).size();
        enhanced_gen +=
            drv.observe(enhanced, 0x10, 1, 0x108000 + i * 0x200).size();
    }
    EXPECT_GT(enhanced_gen, naive_gen);
}

} // namespace
} // namespace mtp
