#include <gtest/gtest.h>

#include "core/stride_pc.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

SimConfig
prefConfig()
{
    SimConfig cfg;
    cfg.stridePcEntries = 16;
    return cfg;
}

TEST(StridePc, TrainsAfterTwoMatchingDeltas)
{
    SimConfig cfg = prefConfig();
    StridePcPrefetcher pref(cfg);
    test::ObsDriver drv;
    EXPECT_TRUE(drv.observe(pref, 0x10, 0, 0x1000).empty());
    EXPECT_TRUE(drv.observe(pref, 0x10, 0, 0x1100).empty()); // 1 delta
    auto out = drv.observe(pref, 0x10, 0, 0x1200); // 2nd match: trained
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blockAlign(0x1200 + 0x100));
}

TEST(StridePc, StrideChangeResetsConfidence)
{
    SimConfig cfg = prefConfig();
    StridePcPrefetcher pref(cfg);
    test::ObsDriver drv;
    drv.observe(pref, 0x10, 0, 0x1000);
    drv.observe(pref, 0x10, 0, 0x1100);
    drv.observe(pref, 0x10, 0, 0x1200);
    // Break the pattern.
    EXPECT_TRUE(drv.observe(pref, 0x10, 0, 0x9000).empty());
    EXPECT_TRUE(drv.observe(pref, 0x10, 0, 0x9004).empty());
    auto out = drv.observe(pref, 0x10, 0, 0x9008);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blockAlign(0x9008 + 4));
}

TEST(StridePc, WarpIndexedTrainingSeparatesWarps)
{
    SimConfig cfg = prefConfig();
    cfg.hwPrefWarpTraining = true;
    StridePcPrefetcher pref(cfg);
    test::ObsDriver drv;
    // Interleaved warps, each with a clean per-warp stride of 0x1000
    // (the Fig. 5 example).
    std::vector<Addr> generated;
    for (unsigned iter = 0; iter < 3; ++iter) {
        for (unsigned w = 1; w <= 3; ++w) {
            auto out = drv.observe(pref, 0x1a, w,
                                   w * 0x10 + iter * 0x1000);
            for (auto a : out)
                generated.push_back(a);
        }
    }
    // Each warp trains by its 3rd access: 3 prefetches on iteration 2.
    EXPECT_EQ(generated.size(), 3u);
    EXPECT_EQ(pref.name(), "stride_pc.warp");
}

TEST(StridePc, NaiveTrainingConfusedByWarpInterleaving)
{
    SimConfig cfg = prefConfig();
    cfg.hwPrefWarpTraining = false;
    StridePcPrefetcher pref(cfg);
    test::ObsDriver drv;
    // The exact interleaving of Fig. 5 (right): each warp strides by
    // 0x1000 but the prefetcher sees a scrambled delta sequence.
    const std::pair<unsigned, Addr> trace[] = {
        {1, 0x0},    {2, 0x10},   {1, 0x1000}, {3, 0x20},  {2, 0x1010},
        {3, 0x1020}, {3, 0x2020}, {1, 0x2000}, {2, 0x2010},
    };
    unsigned generated = 0;
    for (const auto &[w, addr] : trace)
        generated += drv.observe(pref, 0x1a, w, addr).size();
    // No two consecutive deltas match: nothing trains, nothing fires.
    EXPECT_EQ(generated, 0u);
    EXPECT_EQ(pref.name(), "stride_pc");
}

TEST(StridePc, DistanceAndDegree)
{
    SimConfig cfg = prefConfig();
    cfg.prefDistance = 2;
    cfg.prefDegree = 3;
    StridePcPrefetcher pref(cfg);
    test::ObsDriver drv;
    drv.observe(pref, 0x20, 0, 0x0000);
    drv.observe(pref, 0x20, 0, 0x1000);
    auto out = drv.observe(pref, 0x20, 0, 0x2000);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], blockAlign(0x2000 + 2 * 0x1000));
    EXPECT_EQ(out[1], blockAlign(0x2000 + 3 * 0x1000));
    EXPECT_EQ(out[2], blockAlign(0x2000 + 4 * 0x1000));
}

TEST(StridePc, EmitsPerTransactionForUncoalescedAccesses)
{
    SimConfig cfg = prefConfig();
    StridePcPrefetcher pref(cfg);
    test::ObsDriver drv;
    std::vector<MemTxn> txns = {{0x1000, 32}, {0x1840, 32}};
    drv.observe(pref, 0x30, 0, 0x1000, txns);
    drv.observe(pref, 0x30, 0, 0x21000, txns);
    auto out = drv.observe(pref, 0x30, 0, 0x41000, txns);
    // One prefetch per transaction, each shifted by the lead stride.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], blockAlign(0x1000 + 0x20000));
    EXPECT_EQ(out[1], blockAlign(0x1840 + 0x20000));
}

TEST(StridePc, TableEvictionUnderPressure)
{
    SimConfig cfg = prefConfig();
    cfg.stridePcEntries = 2;
    StridePcPrefetcher pref(cfg);
    test::ObsDriver drv;
    for (Pc pc = 0; pc < 8; ++pc)
        drv.observe(pref, pc, 0, 0x1000 * (pc + 1));
    EXPECT_EQ(pref.table().size(), 2u);
    EXPECT_GT(pref.table().evictions(), 0u);
    StatSet s;
    pref.exportStats(s, "p");
    EXPECT_GT(s.get("p.tableEvictions"), 0.0);
}

TEST(StridePc, ZeroStrideNeverPrefetches)
{
    SimConfig cfg = prefConfig();
    StridePcPrefetcher pref(cfg);
    test::ObsDriver drv;
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(drv.observe(pref, 0x40, 0, 0x5000).empty());
}

} // namespace
} // namespace mtp
