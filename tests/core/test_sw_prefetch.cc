#include <gtest/gtest.h>

#include "core/sw_prefetch.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

unsigned
countOps(const KernelDesc &k, Opcode op)
{
    unsigned n = 0;
    for (const auto &seg : k.segments)
        for (const auto &inst : seg.insts)
            n += inst.op == op ? 1 : 0;
    return n;
}

TEST(SwPrefetch, StrideInsertsOnePrefetchPerLoopLoad)
{
    KernelDesc k = test::tinyStreamKernel(2, 4, 4, /*loads=*/2);
    SwPrefetchOptions opts;
    opts.strideDistance = 1;
    KernelDesc out = applyStridePrefetch(k, opts);
    EXPECT_EQ(countOps(out, Opcode::Prefetch), 2u);
    EXPECT_EQ(countOps(out, Opcode::Load), 2u);
    EXPECT_TRUE(out.finalized());
    EXPECT_NE(out.name.find("+swp_stride"), std::string::npos);
    // The prefetch targets the access `distance` iterations ahead.
    const auto &loop = out.segments[0];
    const StaticInst *pref = nullptr;
    const StaticInst *load = nullptr;
    for (const auto &inst : loop.insts) {
        if (inst.op == Opcode::Prefetch && !pref)
            pref = &inst;
        if (inst.op == Opcode::Load && !load)
            load = &inst;
    }
    ASSERT_NE(pref, nullptr);
    ASSERT_NE(load, nullptr);
    EXPECT_EQ(pref->pattern.laneAddr(0, 0), load->pattern.laneAddr(0, 1));
}

TEST(SwPrefetch, StrideSkipsStraightLineCode)
{
    KernelDesc k = test::tinyMpKernel();
    SwPrefetchOptions opts;
    KernelDesc out = applyStridePrefetch(k, opts);
    // No loops, so no insertion points (Fig. 3).
    EXPECT_EQ(countOps(out, Opcode::Prefetch), 0u);
}

TEST(SwPrefetch, IpTargetsWarpsAhead)
{
    KernelDesc k = test::tinyMpKernel();
    SwPrefetchOptions opts;
    opts.ipDistanceWarps = 2;
    KernelDesc out = applyInterThreadPrefetch(k, opts);
    ASSERT_EQ(countOps(out, Opcode::Prefetch), 1u);
    const StaticInst *pref = nullptr;
    const StaticInst *load = nullptr;
    for (const auto &inst : out.segments[0].insts) {
        if (inst.op == Opcode::Prefetch)
            pref = &inst;
        if (inst.op == Opcode::Load)
            load = &inst;
    }
    ASSERT_NE(pref, nullptr);
    // Thread tid prefetches the address of tid + 2*32 (Fig. 4).
    EXPECT_EQ(pref->pattern.laneAddr(0, 0),
              load->pattern.laneAddr(2 * warpSize, 0));
}

TEST(SwPrefetch, IpPrecedesItsLoad)
{
    KernelDesc k = test::tinyMpKernel();
    KernelDesc out = applyInterThreadPrefetch(k, SwPrefetchOptions{});
    const auto &insts = out.segments[0].insts;
    int pref_idx = -1, load_idx = -1;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].op == Opcode::Prefetch)
            pref_idx = static_cast<int>(i);
        if (insts[i].op == Opcode::Load && load_idx < 0)
            load_idx = static_cast<int>(i);
    }
    ASSERT_GE(pref_idx, 0);
    EXPECT_EQ(pref_idx + 1, load_idx);
}

TEST(SwPrefetch, RegisterPrefetchPipelinesLoopLoads)
{
    KernelDesc k = test::tinyStreamKernel(2, 4, 4, 1);
    SwPrefetchOptions opts;
    opts.registerBlocksLost = 1;
    KernelDesc out = applyRegisterPrefetch(k, opts);
    // Loads become binding one-iteration-ahead prefetches...
    unsigned relaxed = 0;
    for (const auto &seg : out.segments)
        for (const auto &inst : seg.insts)
            relaxed += inst.regPrefetch ? 1 : 0;
    EXPECT_EQ(relaxed, 1u);
    // ...at the cost of extra address math and occupancy.
    EXPECT_GT(out.warpInstsPerWarp(), k.warpInstsPerWarp());
    EXPECT_EQ(out.maxBlocksPerCore, k.maxBlocksPerCore - 1);
    EXPECT_EQ(countOps(out, Opcode::Prefetch), 0u);
}

TEST(SwPrefetch, RegisterPrefetchNeverDropsOccupancyToZero)
{
    KernelDesc k = test::tinyStreamKernel();
    k.maxBlocksPerCore = 1;
    SwPrefetchOptions opts;
    opts.registerBlocksLost = 3;
    KernelDesc out = applyRegisterPrefetch(k, opts);
    EXPECT_EQ(out.maxBlocksPerCore, 1u);
}

TEST(SwPrefetch, CombinedCoversEachLoadOnce)
{
    // A kernel with one loop load and one straight-line load.
    KernelDesc k = test::tinyStreamKernel(2, 4, 4, 1);
    Segment tail;
    AddressPattern p;
    p.base = 0x7000'0000ULL;
    p.threadStride = 4;
    tail.insts.push_back(StaticInst::load(p, 1));
    k.segments.push_back(tail);
    k.finalize();

    KernelDesc out = applySwPrefetch(k, SwPrefKind::StrideIP,
                                     SwPrefetchOptions{});
    // One stride prefetch (loop load) + one IP prefetch (tail load).
    EXPECT_EQ(countOps(out, Opcode::Prefetch), 2u);
}

TEST(SwPrefetch, NonPrefetchableLoadsAreSkipped)
{
    KernelDesc k = test::tinyMpKernel();
    for (auto &seg : k.segments)
        for (auto &inst : seg.insts)
            if (inst.op == Opcode::Load)
                inst.swPrefetchable = false;
    k.finalize();
    KernelDesc out = applyInterThreadPrefetch(k, SwPrefetchOptions{});
    EXPECT_EQ(countOps(out, Opcode::Prefetch), 0u);
}

TEST(SwPrefetch, NoneVariantIsIdentity)
{
    KernelDesc k = test::tinyStreamKernel();
    KernelDesc out = applySwPrefetch(k, SwPrefKind::None,
                                     SwPrefetchOptions{});
    EXPECT_EQ(out.warpInstsPerWarp(), k.warpInstsPerWarp());
    EXPECT_EQ(countOps(out, Opcode::Prefetch), 0u);
}

} // namespace
} // namespace mtp
