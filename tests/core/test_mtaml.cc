#include <gtest/gtest.h>

#include <cmath>

#include "core/mtaml.hh"

namespace mtp {
namespace {

TEST(Mtaml, Equation1)
{
    // MTAML = #comp/#mem * (#warps - 1)
    MtamlInputs in{/*comp=*/80, /*mem=*/20, /*warps=*/16};
    EXPECT_DOUBLE_EQ(mtaml(in), 4.0 * 15.0);
}

TEST(Mtaml, SingleWarpCannotTolerateAnything)
{
    MtamlInputs in{100, 10, 1};
    EXPECT_DOUBLE_EQ(mtaml(in), 0.0);
}

TEST(Mtaml, NoMemoryInstructionsMeansInfiniteTolerance)
{
    MtamlInputs in{100, 0, 16};
    EXPECT_TRUE(std::isinf(mtaml(in)));
}

TEST(Mtaml, Equations2Through4)
{
    // comp_new = comp + P*mem ; mem_new = (1-P)*mem
    MtamlInputs in{80, 20, 16, /*prefHitProb=*/0.5};
    double expected = (80 + 0.5 * 20) / (0.5 * 20) * 15.0;
    EXPECT_DOUBLE_EQ(mtamlPref(in), expected);
    // More coverage always raises the tolerable latency.
    MtamlInputs better = in;
    better.prefHitProb = 0.9;
    EXPECT_GT(mtamlPref(better), mtamlPref(in));
    // Zero coverage degenerates to Eq. 1.
    MtamlInputs none = in;
    none.prefHitProb = 0.0;
    EXPECT_DOUBLE_EQ(mtamlPref(none), mtaml(in));
    // Full coverage: nothing left to tolerate.
    MtamlInputs full = in;
    full.prefHitProb = 1.0;
    EXPECT_TRUE(std::isinf(mtamlPref(full)));
}

TEST(Mtaml, ClassificationCases)
{
    MtamlInputs in{80, 20, 16, 0.5};
    double bar = mtaml(in);          // 60
    double bar_pref = mtamlPref(in); // 135
    // Case 1: both latencies under their bars -> no effect.
    EXPECT_EQ(classify(in, bar - 10, bar_pref - 10),
              PrefEffect::NoEffect);
    // Case 2: baseline cannot tolerate, prefetching can -> useful.
    EXPECT_EQ(classify(in, bar + 50, bar_pref - 10), PrefEffect::Useful);
    // Case 3: neither tolerates -> mixed.
    EXPECT_EQ(classify(in, bar + 50, bar_pref + 50), PrefEffect::Mixed);
}

TEST(Mtaml, ToStringNames)
{
    EXPECT_EQ(toString(PrefEffect::NoEffect), "no-effect");
    EXPECT_EQ(toString(PrefEffect::Useful), "useful");
    EXPECT_EQ(toString(PrefEffect::Mixed), "useful-or-harmful");
}

} // namespace
} // namespace mtp
