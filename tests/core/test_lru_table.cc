#include <gtest/gtest.h>

#include <string>

#include "core/lru_table.hh"
#include "core/prefetcher.hh"

namespace mtp {
namespace {

TEST(LruTable, FindOrInsertAndEvictLru)
{
    LruTable<int, std::string> t(2);
    bool inserted = false;
    t.findOrInsert(1, &inserted) = "one";
    EXPECT_TRUE(inserted);
    t.findOrInsert(2, &inserted) = "two";
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*t.find(1), "one"); // 1 becomes MRU
    t.findOrInsert(3, &inserted) = "three";
    EXPECT_TRUE(inserted);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.find(2), nullptr); // 2 was LRU
    EXPECT_NE(t.find(1), nullptr);
    EXPECT_NE(t.find(3), nullptr);
    EXPECT_EQ(t.evictions(), 1u);
}

TEST(LruTable, PeekDoesNotTouch)
{
    LruTable<int, int> t(2);
    t.findOrInsert(1) = 10;
    t.findOrInsert(2) = 20;
    EXPECT_EQ(*t.peek(1), 10); // no recency update
    t.findOrInsert(3) = 30;
    // 1 stayed LRU despite the peek.
    EXPECT_EQ(t.find(1), nullptr);
}

TEST(LruTable, EraseAndClear)
{
    LruTable<int, int> t(4);
    t.findOrInsert(1) = 1;
    t.findOrInsert(2) = 2;
    EXPECT_TRUE(t.erase(1));
    EXPECT_FALSE(t.erase(1));
    EXPECT_EQ(t.size(), 1u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.find(2), nullptr);
}

TEST(LruTable, HitMissCounters)
{
    LruTable<int, int> t(4);
    EXPECT_EQ(t.find(1), nullptr);
    t.findOrInsert(1) = 1;
    t.find(1);
    EXPECT_EQ(t.hits(), 1u);
    // find(1) missed once, findOrInsert missed once more internally.
    EXPECT_EQ(t.misses(), 2u);
}

TEST(LruTable, ForEachVisitsMruFirst)
{
    LruTable<int, int> t(4);
    t.findOrInsert(1) = 1;
    t.findOrInsert(2) = 2;
    t.findOrInsert(3) = 3;
    t.find(1); // 1 MRU
    std::vector<int> order;
    t.forEach([&](const int &k, const int &) { order.push_back(k); });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[2], 2); // oldest untouched entry is last
}

TEST(LruTable, PcWidKeyEqualityAndHash)
{
    PcWid a{0x10, 3}, b{0x10, 3}, c{0x10, 4}, d{0x14, 3};
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
    EXPECT_FALSE(a == d);
    PcWidHash h;
    EXPECT_EQ(h(a), h(b));
    // Not a correctness requirement, but these should differ in
    // practice for table health.
    EXPECT_NE(h(a), h(c));
}

TEST(PrefetcherFactory, BuildsEveryKind)
{
    SimConfig cfg;
    cfg.hwPref = HwPrefKind::None;
    EXPECT_EQ(makeHwPrefetcher(cfg), nullptr);
    const std::pair<HwPrefKind, std::string> rows[] = {
        {HwPrefKind::StrideRPT, "stride_rpt.warp"},
        {HwPrefKind::StridePC, "stride_pc.warp"},
        {HwPrefKind::Stream, "stream.warp"},
        {HwPrefKind::GHB, "ghb.warp"},
        {HwPrefKind::MTHWP, "mthwp:pws+gs+ip"},
    };
    for (const auto &[kind, name] : rows) {
        cfg.hwPref = kind;
        auto pref = makeHwPrefetcher(cfg);
        ASSERT_NE(pref, nullptr);
        EXPECT_EQ(pref->name(), name);
        EXPECT_EQ(pref->distance(), cfg.prefDistance);
        EXPECT_EQ(pref->degree(), cfg.prefDegree);
    }
}

TEST(PrefetcherFactory, HonoursAblationToggles)
{
    SimConfig cfg;
    cfg.hwPref = HwPrefKind::MTHWP;
    cfg.mthwpGs = false;
    cfg.mthwpIp = false;
    auto pref = makeHwPrefetcher(cfg);
    EXPECT_EQ(pref->name(), "mthwp:pws");
}

} // namespace
} // namespace mtp
