#include <gtest/gtest.h>

#include "trace/address_pattern.hh"

namespace mtp {
namespace {

TEST(AddressPattern, RegularAffine)
{
    AddressPattern p;
    p.base = 0x1000;
    p.threadStride = 4;
    p.iterStride = 256;
    EXPECT_EQ(p.laneAddr(0, 0), 0x1000u);
    EXPECT_EQ(p.laneAddr(1, 0), 0x1004u);
    EXPECT_EQ(p.laneAddr(0, 2), 0x1000u + 512);
    EXPECT_EQ(p.laneAddr(3, 1), 0x1000u + 12 + 256);
}

TEST(AddressPattern, ShiftedByWarps)
{
    AddressPattern p;
    p.base = 0;
    p.threadStride = 4;
    AddressPattern q = p.shiftedByWarps(2);
    // Thread tid's address in q equals thread tid+64's address in p.
    EXPECT_EQ(q.laneAddr(0, 0), p.laneAddr(2 * warpSize, 0));
    EXPECT_EQ(q.laneAddr(5, 0), p.laneAddr(5 + 2 * warpSize, 0));
}

TEST(AddressPattern, ShiftedByIters)
{
    AddressPattern p;
    p.base = 0x100;
    p.threadStride = 4;
    p.iterStride = 1024;
    AddressPattern q = p.shiftedByIters(3);
    EXPECT_EQ(q.laneAddr(7, 0), p.laneAddr(7, 3));
    EXPECT_EQ(q.laneAddr(7, 5), p.laneAddr(7, 8));
}

TEST(AddressPattern, ScatterDeterministicAndBounded)
{
    AddressPattern p;
    p.base = 0x10000;
    p.threadStride = 64;
    p.elemBytes = 4;
    p.scatterFrac = 0.5;
    p.scatterSpan = 1 << 20;
    p.scatterSalt = 3;
    unsigned scattered = 0;
    for (std::uint64_t tid = 0; tid < 1000; ++tid) {
        Addr a = p.laneAddr(tid, 0);
        EXPECT_EQ(a, p.laneAddr(tid, 0)); // deterministic
        if (a != p.regularAddr(tid, 0)) {
            ++scattered;
            EXPECT_GE(a, p.base);
            EXPECT_LT(a, p.base + p.scatterSpan);
        }
    }
    // Roughly half the lanes scatter.
    EXPECT_GT(scattered, 350u);
    EXPECT_LT(scattered, 650u);
}

TEST(AddressPattern, ZeroScatterFracNeverScatters)
{
    AddressPattern p;
    p.base = 0;
    p.threadStride = 8;
    p.scatterFrac = 0.0;
    p.scatterSpan = 1 << 20;
    for (std::uint64_t tid = 0; tid < 100; ++tid)
        EXPECT_EQ(p.laneAddr(tid, 1), p.regularAddr(tid, 1));
}

TEST(AddressPattern, SaltDecorrelatesLoads)
{
    AddressPattern a, b;
    a.base = b.base = 0;
    a.threadStride = b.threadStride = 64;
    a.scatterFrac = b.scatterFrac = 1.0;
    a.scatterSpan = b.scatterSpan = 1 << 20;
    a.scatterSalt = 1;
    b.scatterSalt = 2;
    unsigned same = 0;
    for (std::uint64_t tid = 0; tid < 256; ++tid)
        same += a.laneAddr(tid, 0) == b.laneAddr(tid, 0) ? 1 : 0;
    EXPECT_LT(same, 8u);
}

} // namespace
} // namespace mtp
