#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_helpers.hh"
#include "trace/kernel_io.hh"
#include "workloads/workload.hh"

namespace mtp {
namespace {

/** Structural equality of two kernels (PCs are reassigned on read). */
void
expectSameKernel(const KernelDesc &a, const KernelDesc &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.warpsPerBlock, b.warpsPerBlock);
    EXPECT_EQ(a.numBlocks, b.numBlocks);
    EXPECT_EQ(a.maxBlocksPerCore, b.maxBlocksPerCore);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t s = 0; s < a.segments.size(); ++s) {
        const auto &sa = a.segments[s];
        const auto &sb = b.segments[s];
        EXPECT_EQ(sa.trips, sb.trips);
        ASSERT_EQ(sa.insts.size(), sb.insts.size());
        for (std::size_t i = 0; i < sa.insts.size(); ++i) {
            const auto &ia = sa.insts[i];
            const auto &ib = sb.insts[i];
            EXPECT_EQ(ia.op, ib.op);
            EXPECT_EQ(ia.repeat, ib.repeat);
            EXPECT_EQ(ia.destSlot, ib.destSlot);
            EXPECT_EQ(ia.srcSlots[0], ib.srcSlots[0]);
            EXPECT_EQ(ia.regPrefetch, ib.regPrefetch);
            EXPECT_EQ(ia.swPrefetchable, ib.swPrefetchable);
            if (isMemOp(ia.op)) {
                EXPECT_EQ(ia.pattern.base, ib.pattern.base);
                EXPECT_EQ(ia.pattern.threadStride,
                          ib.pattern.threadStride);
                EXPECT_EQ(ia.pattern.iterStride, ib.pattern.iterStride);
                EXPECT_EQ(ia.pattern.elemBytes, ib.pattern.elemBytes);
                EXPECT_NEAR(ia.pattern.scatterFrac,
                            ib.pattern.scatterFrac, 1e-9);
                EXPECT_EQ(ia.pattern.scatterSpan, ib.pattern.scatterSpan);
            }
        }
    }
}

KernelDesc
roundTrip(const KernelDesc &k)
{
    std::stringstream ss;
    writeKernel(ss, k);
    return readKernel(ss, "roundtrip");
}

TEST(KernelIo, RoundTripTinyKernels)
{
    expectSameKernel(test::tinyStreamKernel(2, 4, 4, 2),
                     roundTrip(test::tinyStreamKernel(2, 4, 4, 2)));
    expectSameKernel(test::tinyMpKernel(),
                     roundTrip(test::tinyMpKernel()));
    expectSameKernel(test::tinyComputeKernel(),
                     roundTrip(test::tinyComputeKernel()));
}

TEST(KernelIo, RoundTripEveryBenchmark)
{
    for (const auto &name : Suite::memoryIntensiveNames()) {
        Workload w = Suite::get(name, 16);
        expectSameKernel(w.kernel, roundTrip(w.kernel));
    }
    for (const auto &name : Suite::computeNames()) {
        Workload w = Suite::get(name, 16);
        expectSameKernel(w.kernel, roundTrip(w.kernel));
    }
}

TEST(KernelIo, RoundTripTransformedVariants)
{
    Workload w = Suite::get("bfs", 32); // scatter + chains + loops
    for (auto kind : {SwPrefKind::Stride, SwPrefKind::IP,
                      SwPrefKind::Register, SwPrefKind::StrideIP}) {
        KernelDesc variant = w.variant(kind);
        expectSameKernel(variant, roundTrip(variant));
    }
}

TEST(KernelIo, RoundTripPreservesSimulation)
{
    SimConfig cfg = test::tinyConfig();
    KernelDesc k = test::tinyStreamKernel(2, 6, 5, 2);
    RunResult a = simulate(cfg, k);
    RunResult b = simulate(cfg, roundTrip(k));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.warpInsts, b.warpInsts);
}

TEST(KernelIo, ParsesHandWrittenDescription)
{
    std::stringstream ss;
    ss << "# a comment\n"
          "kernel demo\n"
          "grid 4 16 2\n"
          "segment 3\n"
          "  comp 2\n"
          "  load 0 0x1000 4 256 4\n"
          "  load 1 0x2000 48 0 4 0.25 1048576 7 src=0\n"
          "  imul 1 -1\n"
          "  store 1 0x3000 4 256 4\n"
          "  branch\n"
          "end\n"
          "segment 1\n"
          "  comp 1\n"
          "end\n";
    KernelDesc k = readKernel(ss, "demo");
    EXPECT_EQ(k.name, "demo");
    EXPECT_EQ(k.warpsPerBlock, 4u);
    EXPECT_EQ(k.numBlocks, 16u);
    ASSERT_EQ(k.segments.size(), 2u);
    EXPECT_EQ(k.segments[0].trips, 3u);
    const auto &chained = k.segments[0].insts[2];
    EXPECT_EQ(chained.op, Opcode::Load);
    EXPECT_EQ(chained.srcSlots[0], 0);
    EXPECT_NEAR(chained.pattern.scatterFrac, 0.25, 1e-12);
    EXPECT_TRUE(k.finalized());
    EXPECT_EQ(k.warpInstsPerWarp(), 3u * 7u + 1u);
}

TEST(KernelIo, FlagsRoundTrip)
{
    KernelDesc k = test::tinyStreamKernel(1, 1, 2, 1);
    for (auto &seg : k.segments) {
        for (auto &inst : seg.insts) {
            if (inst.op == Opcode::Load) {
                inst.swPrefetchable = false;
                inst.regPrefetch = true;
            }
        }
    }
    k.finalize();
    expectSameKernel(k, roundTrip(k));
}

} // namespace
} // namespace mtp
