#include <gtest/gtest.h>

#include <set>

#include "trace/coalescer.hh"

namespace mtp {
namespace {

AddressPattern
pattern(Addr base, Stride thread_stride, unsigned elem = 4)
{
    AddressPattern p;
    p.base = base;
    p.threadStride = thread_stride;
    p.elemBytes = elem;
    return p;
}

TEST(Coalescer, FullyCoalescedAccessIsTwoBlocks)
{
    // 32 lanes x 4 B = 128 B starting block-aligned: exactly 2 blocks.
    std::vector<MemTxn> txns;
    coalesceWarpAccess(pattern(0x10000, 4), 0, 0, txns);
    ASSERT_EQ(txns.size(), 2u);
    EXPECT_EQ(txns[0].addr, 0x10000u);
    EXPECT_EQ(txns[1].addr, 0x10040u);
    EXPECT_EQ(txns[0].bytes, blockBytes); // dense
    EXPECT_EQ(txns[1].bytes, blockBytes);
}

TEST(Coalescer, HalfWordAccessIsOneBlock)
{
    std::vector<MemTxn> txns;
    coalesceWarpAccess(pattern(0x10000, 2, 2), 0, 0, txns);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].bytes, blockBytes);
}

TEST(Coalescer, FullyUncoalescedAccessIs32SparseTxns)
{
    std::vector<MemTxn> txns;
    coalesceWarpAccess(pattern(0x20000, 2112), 0, 0, txns);
    EXPECT_EQ(txns.size(), 32u);
    std::set<Addr> unique;
    for (const auto &t : txns) {
        EXPECT_EQ(t.addr, blockAlign(t.addr));
        EXPECT_EQ(t.bytes, minTxnBytes); // sparse: one 4 B lane
        unique.insert(t.addr);
    }
    EXPECT_EQ(unique.size(), 32u);
}

TEST(Coalescer, PartiallyCoalescedTxnSizes)
{
    // 16 B lane stride: 4 lanes per block touch 16 B -> sparse 32 B.
    std::vector<MemTxn> txns;
    coalesceWarpAccess(pattern(0x30000, 16), 0, 0, txns);
    EXPECT_EQ(txns.size(), 8u);
    for (const auto &t : txns)
        EXPECT_EQ(t.bytes, minTxnBytes);

    // 8 B lane stride: 8 lanes per block touch 32 B -> still 32 B.
    coalesceWarpAccess(pattern(0x30000, 8), 0, 0, txns);
    EXPECT_EQ(txns.size(), 4u);
    for (const auto &t : txns)
        EXPECT_EQ(t.bytes, minTxnBytes);
}

TEST(Coalescer, StraddlingElementTouchesBothBlocks)
{
    // Every lane sits 2 B before a block boundary (offset 62 with a
    // 4 KB lane stride), so each 4 B element straddles two blocks.
    AddressPattern p = pattern(0x1003E, 4096);
    std::vector<MemTxn> txns;
    coalesceWarpAccess(p, 0, 0, txns);
    EXPECT_EQ(txns.size(), 64u);
    EXPECT_EQ(txns[0].addr, 0x10000u);
    EXPECT_EQ(txns[1].addr, 0x10040u);
}

TEST(Coalescer, DuplicateBlocksMergeIntoOneTransaction)
{
    // All 32 lanes in the same block (stride 0): one transaction. The
    // per-lane byte accounting is conservative (it accumulates), so
    // the merged transaction fetches the whole block.
    std::vector<MemTxn> txns;
    coalesceWarpAccess(pattern(0x40000, 0), 0, 0, txns);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].bytes, blockBytes);
}

TEST(Coalescer, CountMatchesMaterialized)
{
    AddressPattern p = pattern(0x50000, 48);
    std::vector<MemTxn> txns;
    coalesceWarpAccess(p, 5, 2, txns);
    EXPECT_EQ(countWarpTransactions(p, 5, 2), txns.size());
}

TEST(Coalescer, LaneZeroTidOffsetsAddresses)
{
    AddressPattern p = pattern(0, 4);
    std::vector<MemTxn> a, b;
    coalesceWarpAccess(p, 0, 0, a);
    coalesceWarpAccess(p, warpSize, 0, b);
    EXPECT_EQ(b[0].addr, a[0].addr + warpSize * 4);
}

} // namespace
} // namespace mtp
